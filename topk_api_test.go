package locastream_test

import (
	"strconv"
	"testing"

	locastream "github.com/locastream/locastream"
	"github.com/locastream/locastream/internal/spacesaving"
)

// trendingTopology is the paper's motivating application end to end:
// route by region to a TopK of hashtags per region, then by hashtag to a
// global hashtag counter.
func trendingTopology(t testing.TB, parallelism int) *locastream.Topology {
	t.Helper()
	topo, err := locastream.NewTopology("trending").
		AddOperator(locastream.Operator{
			Name: "regions", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor {
				return locastream.NewTopK(0 /* region */, 1 /* hashtag */, 3, 128)
			},
		}).
		AddOperator(locastream.Operator{
			Name: "hashtags", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("regions", "hashtags", locastream.Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestTopKStateMigratesThroughProtocol(t *testing.T) {
	const parallelism = 4
	topo := trendingTopology(t, parallelism)
	app, err := locastream.NewApp(topo,
		locastream.WithServers(parallelism),
		locastream.WithOptimizer(0, 0, 23),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	// Region r_i tweets mostly about #t_i: strong correlation.
	inject := func(n int) {
		for i := 0; i < n; i++ {
			region := "r" + strconv.Itoa(i%8)
			tag := "#t" + strconv.Itoa(i%8)
			if i%5 == 0 {
				tag = "#noise" + strconv.Itoa(i%3)
			}
			if err := app.Inject(locastream.Tuple{Values: []string{region, tag}}); err != nil {
				t.Fatal(err)
			}
		}
		app.Drain()
	}
	inject(4000)

	// Capture each region's top tag before migration.
	topBefore := make(map[string]spacesaving.Counter)
	observedBefore := make(map[string]uint64)
	for inst := 0; inst < parallelism; inst++ {
		_ = app.ProcessorState("regions", inst, func(p locastream.Processor) {
			tk := p.(interface {
				StateKeys() []string
				Top(string) []spacesaving.Counter
				Observed(string) uint64
			})
			for _, region := range tk.StateKeys() {
				topBefore[region] = tk.Top(region)[0]
				observedBefore[region] = tk.Observed(region)
			}
		})
	}
	if len(topBefore) != 8 {
		t.Fatalf("%d regions with state before migration, want 8", len(topBefore))
	}

	if _, err := app.Reconfigure(); err != nil {
		t.Fatal(err)
	}

	// After migration: every region exists exactly once, with the same
	// top tag and total observations.
	seen := make(map[string]int)
	for inst := 0; inst < parallelism; inst++ {
		_ = app.ProcessorState("regions", inst, func(p locastream.Processor) {
			tk := p.(interface {
				StateKeys() []string
				Top(string) []spacesaving.Counter
				Observed(string) uint64
			})
			for _, region := range tk.StateKeys() {
				seen[region]++
				got := tk.Top(region)[0]
				want := topBefore[region]
				if got.Item != want.Item || got.Count != want.Count {
					t.Errorf("region %s: top = %+v after migration, want %+v", region, got, want)
				}
				if tk.Observed(region) != observedBefore[region] {
					t.Errorf("region %s: observed %d, want %d",
						region, tk.Observed(region), observedBefore[region])
				}
			}
		})
	}
	if len(seen) != 8 {
		t.Fatalf("%d regions after migration, want 8", len(seen))
	}
	for region, n := range seen {
		if n != 1 {
			t.Errorf("region %s present on %d instances", region, n)
		}
	}
}
