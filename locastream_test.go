package locastream_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	locastream "github.com/locastream/locastream"
)

// geoTopology is the paper's running example: route by region, then by
// hashtag, counting both.
func geoTopology(t testing.TB, parallelism int) *locastream.Topology {
	t.Helper()
	topo, err := locastream.NewTopology("geo-trends").
		AddOperator(locastream.Operator{
			Name: "regions", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "hashtags", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("regions", "hashtags", locastream.Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestAppEndToEnd(t *testing.T) {
	topo := geoTopology(t, 4)
	app, err := locastream.NewApp(topo,
		locastream.WithServers(4),
		locastream.WithOptimizer(1.03, 0, 42),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	if app.Servers() != 4 {
		t.Fatalf("Servers() = %d", app.Servers())
	}

	inject := func(n int) {
		for i := 0; i < n; i++ {
			region := "region" + strconv.Itoa(i%12)
			tag := "#tag" + strconv.Itoa(i%12)
			if err := app.Inject(locastream.Tuple{Values: []string{region, tag}}); err != nil {
				t.Fatal(err)
			}
		}
		app.Drain()
	}

	inject(2400)
	before := app.Locality()

	plan, err := app.Reconfigure()
	if err != nil {
		t.Fatal(err)
	}
	if plan.ExpectedLocality < 0.99 {
		t.Fatalf("ExpectedLocality = %f, want ~1 for perfectly correlated keys", plan.ExpectedLocality)
	}

	preTraffic := app.FieldsTraffic()
	inject(2400)
	post := app.FieldsTraffic()
	post.LocalTuples -= preTraffic.LocalTuples
	post.RemoteTuples -= preTraffic.RemoteTuples
	if post.Locality() != 1.0 {
		t.Fatalf("post-reconfiguration locality = %f (before: %f)", post.Locality(), before)
	}

	// No tuples lost across migration.
	var total uint64
	for i := 0; i < 4; i++ {
		if err := app.ProcessorState("hashtags", i, func(p locastream.Processor) {
			total += p.(interface{ TotalCount() uint64 }).TotalCount()
		}); err != nil {
			t.Fatal(err)
		}
	}
	if total != 4800 {
		t.Fatalf("hashtags total = %d, want 4800", total)
	}

	loads := app.Loads("regions")
	var sum uint64
	for _, l := range loads {
		sum += l
	}
	if sum != 4800 {
		t.Fatalf("Loads sum = %d", sum)
	}
}

func TestAppAutoReconfigure(t *testing.T) {
	topo := geoTopology(t, 2)
	app, err := locastream.NewApp(topo,
		locastream.WithServers(2),
		locastream.WithAutoReconfigure(20*time.Millisecond),
		locastream.WithOptimizer(0, 0, 7),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	deadline := time.After(5 * time.Second)
	for app.Locality() < 0.9 {
		select {
		case <-deadline:
			t.Fatalf("auto-reconfiguration never optimized: locality %f", app.Locality())
		default:
		}
		for i := 0; i < 200; i++ {
			k := strconv.Itoa(i % 8)
			_ = app.Inject(locastream.Tuple{Values: []string{"r" + k, "#" + k}})
		}
		app.Drain()
		time.Sleep(5 * time.Millisecond)
		// Measure only the most recent batch: reset by snapshotting is
		// not exposed, so rely on convergence of cumulative locality
		// being above 0.9 eventually is too slow; instead check the
		// traffic trend via a fresh window of injections after the first
		// reconfigurations have happened.
		if app.FieldsTraffic().Total() > 100000 {
			t.Fatal("auto reconfigure did not converge within traffic budget")
		}
	}
}

func TestAppStopIdempotent(t *testing.T) {
	topo := geoTopology(t, 2)
	app, err := locastream.NewApp(topo,
		locastream.WithServers(2),
		locastream.WithAutoReconfigure(time.Hour),
	)
	if err != nil {
		t.Fatal(err)
	}
	app.Stop()
	app.Stop()
	if err := app.Inject(locastream.Tuple{Values: []string{"a", "b"}}); err == nil {
		t.Fatal("Inject after Stop should fail")
	}
}

func TestAppConfigStore(t *testing.T) {
	dir := t.TempDir()
	topo := geoTopology(t, 2)
	app, err := locastream.NewApp(topo,
		locastream.WithServers(2),
		locastream.WithConfigStore(locastream.NewFileConfigStore(dir)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	for i := 0; i < 100; i++ {
		_ = app.Inject(locastream.Tuple{Values: []string{"r" + strconv.Itoa(i%4), "#x"}})
	}
	app.Drain()
	if _, err := app.Reconfigure(); err != nil {
		t.Fatal(err)
	}
	version, tables, ok, err := locastream.NewFileConfigStore(dir).Load()
	if err != nil || !ok {
		t.Fatalf("Load: %v %v", ok, err)
	}
	if version != 1 || len(tables) == 0 {
		t.Fatalf("stored: v%d %v", version, tables)
	}
}

func TestAppOptionValidation(t *testing.T) {
	if _, err := locastream.NewApp(nil); err == nil {
		t.Error("nil topology accepted")
	}
	topo := geoTopology(t, 2)
	if _, err := locastream.NewApp(topo, locastream.WithServers(0)); err == nil {
		t.Error("0 servers accepted")
	}
	if _, err := locastream.NewApp(topo,
		locastream.WithServers(2),
		locastream.WithPlacement(map[string][]int{"regions": {0, 1}}),
	); err == nil {
		t.Error("incomplete explicit placement accepted")
	}
	if _, err := locastream.NewApp(topo,
		locastream.WithServers(2),
		locastream.WithOptimizer(0.5, 0, 0),
	); err == nil {
		t.Error("alpha < 1 accepted")
	}
}

func TestSimulationThroughputAndReoptimize(t *testing.T) {
	topo := geoTopology(t, 6)
	sim, err := locastream.NewSimulation(topo,
		locastream.WithServers(6),
		locastream.WithCostModel(locastream.Model10G()),
		locastream.WithOptimizer(0, 0, 3),
	)
	if err != nil {
		t.Fatal(err)
	}

	inject := func(n int) {
		for i := 0; i < n; i++ {
			k := strconv.Itoa(i % 24)
			sim.Inject(locastream.Tuple{
				Values:  []string{"r" + k, "#" + k},
				Padding: 8192,
			})
		}
	}
	inject(6000)
	hashLocality := sim.Locality()
	hashThroughput := sim.ThroughputPerSec()
	if hashLocality > 0.5 {
		t.Fatalf("pre-optimization locality = %f, want ~1/6", hashLocality)
	}

	plan, err := sim.Reoptimize()
	if err != nil {
		t.Fatal(err)
	}
	if plan.ExpectedLocality < 0.99 {
		t.Fatalf("plan locality %f", plan.ExpectedLocality)
	}
	sim.NextWindow()
	inject(6000)
	if sim.Locality() != 1.0 {
		t.Fatalf("post-optimization locality = %f", sim.Locality())
	}
	if sim.ThroughputPerSec() <= hashThroughput {
		t.Fatalf("optimized throughput %.0f <= hash %.0f",
			sim.ThroughputPerSec(), hashThroughput)
	}
	if _, label := sim.Bottleneck(); label == "idle" {
		t.Fatal("no bottleneck reported")
	}
}

func TestSimulationExplicitTables(t *testing.T) {
	topo := geoTopology(t, 3)
	sim, err := locastream.NewSimulation(topo, locastream.WithServers(3))
	if err != nil {
		t.Fatal(err)
	}
	assign := map[string]int{}
	for i := 0; i < 3; i++ {
		assign["k"+strconv.Itoa(i)] = i
	}
	sim.SetRoutingTable("regions", assign)
	tagAssign := map[string]int{}
	for i := 0; i < 3; i++ {
		tagAssign["#k"+strconv.Itoa(i)] = i
	}
	sim.SetRoutingTable("hashtags", tagAssign)
	for i := 0; i < 300; i++ {
		k := strconv.Itoa(i % 3)
		sim.Inject(locastream.Tuple{Values: []string{"k" + k, "#k" + k}})
	}
	if sim.Locality() != 1.0 {
		t.Fatalf("explicit identity tables locality = %f", sim.Locality())
	}
	if sim.Servers() != 3 {
		t.Fatalf("Servers() = %d", sim.Servers())
	}
	loads := sim.Loads("regions")
	if len(loads) != 3 || loads[0] != 100 {
		t.Fatalf("Loads = %v", loads)
	}
	if p := sim.Processor("regions", 0); p == nil {
		t.Fatal("Processor lookup failed")
	}
}

func TestPublicWordcountPipeline(t *testing.T) {
	// The §2.1 wordcount: extract words (stateless), lowercase
	// (stateless, local-or-shuffle), count (stateful, fields).
	topo, err := locastream.NewTopology("wordcount").
		AddOperator(locastream.Operator{
			Name: "extract", Parallelism: 2,
			New: func() locastream.Processor {
				return locastream.FlatMapFunc(func(t locastream.Tuple) []locastream.Tuple {
					var out []locastream.Tuple
					for _, w := range strings.Fields(t.Field(0)) {
						out = append(out, locastream.Tuple{Values: []string{w}})
					}
					return out
				})
			},
		}).
		AddOperator(locastream.Operator{
			Name: "lower", Parallelism: 2,
			New: func() locastream.Processor {
				return locastream.MapFunc(func(t locastream.Tuple) locastream.Tuple {
					return locastream.Tuple{Values: []string{strings.ToLower(t.Field(0))}}
				})
			},
		}).
		AddOperator(locastream.Operator{
			Name: "count", Parallelism: 2, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		Connect("extract", "lower", locastream.LocalOrShuffle, 0).
		Connect("lower", "count", locastream.Fields, 0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	app, err := locastream.NewApp(topo,
		locastream.WithServers(2),
		locastream.WithSourceGrouping(locastream.Shuffle, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	for i := 0; i < 100; i++ {
		_ = app.Inject(locastream.Tuple{Values: []string{"The quick FOX jumps the fox"}})
	}
	app.Drain()

	var foxCount, theCount uint64
	for i := 0; i < 2; i++ {
		_ = app.ProcessorState("count", i, func(p locastream.Processor) {
			c := p.(interface{ Count(string) uint64 })
			foxCount += c.Count("fox")
			theCount += c.Count("the")
		})
	}
	if foxCount != 200 || theCount != 200 {
		t.Fatalf("fox=%d the=%d, want 200 each", foxCount, theCount)
	}

	// local-or-shuffle keeps extract->lower entirely local.
	if tr := app.Traffic("extract", "lower"); tr.RemoteTuples != 0 {
		t.Fatalf("extract->lower remote tuples = %d, want 0", tr.RemoteTuples)
	}
}

func TestImbalanceExported(t *testing.T) {
	if got := locastream.Imbalance([]uint64{2, 2}); got != 1.0 {
		t.Fatalf("Imbalance = %f", got)
	}
}

func ExampleNewTopology() {
	topo, err := locastream.NewTopology("example").
		AddOperator(locastream.Operator{
			Name: "count", Parallelism: 2, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		Build()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(topo.Name(), topo.Source())
	// Output: example count
}
