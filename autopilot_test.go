package locastream_test

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	locastream "github.com/locastream/locastream"
)

func injectGeo(t *testing.T, app *locastream.App, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := strconv.Itoa(i % 12)
		if err := app.Inject(locastream.Tuple{Values: []string{"region" + k, "#tag" + k}}); err != nil {
			t.Fatal(err)
		}
	}
	app.Drain()
}

func TestAutopilotClosesTheLoop(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")
	topo := geoTopology(t, 4)
	app, err := locastream.NewApp(topo,
		locastream.WithServers(4),
		locastream.WithConfigStore(locastream.NewFileConfigStore(filepath.Join(dir, "config"))),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	ap, err := app.NewAutopilot(locastream.AutopilotOptions{
		CostPerKey:  1,
		JournalPath: journalPath,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The workload is perfectly correlated; no manual Reconfigure is
	// ever called — the autopilot alone converges the application.
	injectGeo(t, app, 2400)
	if d := ap.Tick(); d.Action != locastream.Deployed {
		t.Fatalf("tick 1 = %s (%s), want deployed", d.Action, d.Reason)
	}
	injectGeo(t, app, 2400)
	if d := ap.Tick(); d.Action != locastream.Skipped {
		t.Fatalf("tick 2 = %s, want skipped (already optimal)", d.Action)
	}

	sigs := ap.Signals()
	if len(sigs) != 2 || sigs[1].WindowLocality != 1.0 {
		t.Fatalf("signals = %+v, want tick-2 window locality 1.0", sigs)
	}
	st := ap.Status()
	if st.Deploys != 1 || st.Version == 0 {
		t.Fatalf("status = %+v", st)
	}
	if got := ap.Decisions(0); len(got) != 2 {
		t.Fatalf("journal = %+v", got)
	}

	// Introspection over HTTP.
	rec := httptest.NewRecorder()
	ap.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	var hst locastream.AutopilotStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &hst); err != nil {
		t.Fatalf("GET /status: %v", err)
	}
	if hst.Deploys != 1 {
		t.Fatalf("GET /status = %+v", hst)
	}

	// The JSONL journal holds both decisions.
	if err := ap.Stop(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var actions []locastream.DecisionAction
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var d locastream.Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatal(err)
		}
		actions = append(actions, d.Action)
	}
	if len(actions) != 2 || actions[0] != locastream.Deployed || actions[1] != locastream.Skipped {
		t.Fatalf("journal file = %v", actions)
	}

	// A second application against the same store recovers the deployed
	// configuration before its first tick.
	app2, err := locastream.NewApp(geoTopology(t, 4),
		locastream.WithServers(4),
		locastream.WithConfigStore(locastream.NewFileConfigStore(filepath.Join(dir, "config"))),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer app2.Stop()
	ap2, err := app2.NewAutopilot(locastream.AutopilotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := ap2.Status(); !st.Recovered {
		t.Fatalf("second app status = %+v, want recovered", st)
	}
	injectGeo(t, app2, 2400)
	if loc := app2.Locality(); loc != 1.0 {
		t.Fatalf("locality after recovery = %f, want 1.0 with zero ticks", loc)
	}
}

func TestStartAutopilotBackgroundLoop(t *testing.T) {
	app, err := locastream.NewApp(geoTopology(t, 3), locastream.WithServers(3))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	injectGeo(t, app, 1200)
	ap, err := app.StartAutopilot(locastream.AutopilotOptions{Period: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for ap.Status().Deploys == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background autopilot never deployed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := ap.Stop(); err != nil {
		t.Fatal(err)
	}
	if ap.Status().Running {
		t.Fatal("still running after Stop")
	}
}

func TestAutopilotRejectsAutoReconfigure(t *testing.T) {
	app, err := locastream.NewApp(geoTopology(t, 2),
		locastream.WithServers(2),
		locastream.WithAutoReconfigure(time.Hour),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	if _, err := app.NewAutopilot(locastream.AutopilotOptions{}); err == nil {
		t.Fatal("autopilot accepted alongside WithAutoReconfigure")
	}
}
