// Benchmarks regenerating every figure of the paper's evaluation plus the
// ablation studies of DESIGN.md. Each benchmark runs the corresponding
// experiment driver at a reduced scale per iteration; run
// cmd/benchpaper for full-scale series output.
package locastream_test

import (
	"strconv"
	"testing"

	locastream "github.com/locastream/locastream"
	"github.com/locastream/locastream/internal/experiments"
	"github.com/locastream/locastream/internal/workload"
)

// benchScale keeps one benchmark iteration around a second.
const benchScale = experiments.Scale(0.05)

func benchFigure(b *testing.B, fn func(experiments.Scale) ([]experiments.Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		figs, err := fn(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(figs) == 0 {
			b.Fatal("no figures produced")
		}
	}
}

func one(fn func(experiments.Scale) (experiments.Figure, error)) func(experiments.Scale) ([]experiments.Figure, error) {
	return func(s experiments.Scale) ([]experiments.Figure, error) {
		f, err := fn(s)
		return []experiments.Figure{f}, err
	}
}

// BenchmarkFigure7 regenerates Fig. 7: throughput vs parallelism for
// three routing variants at two locality levels and three tuple sizes.
func BenchmarkFigure7(b *testing.B) { benchFigure(b, experiments.Figure7) }

// BenchmarkFigure8 regenerates Fig. 8: throughput vs workload locality.
func BenchmarkFigure8(b *testing.B) { benchFigure(b, experiments.Figure8) }

// BenchmarkFigure9 regenerates Fig. 9: throughput vs tuple size.
func BenchmarkFigure9(b *testing.B) { benchFigure(b, experiments.Figure9) }

// BenchmarkFigure10 regenerates Fig. 10: one hashtag's moving
// correlation across states.
func BenchmarkFigure10(b *testing.B) { benchFigure(b, one(experiments.Figure10)) }

// BenchmarkFigure11 regenerates Fig. 11: locality and load balance over
// 25 weeks for online/offline/hash strategies.
func BenchmarkFigure11(b *testing.B) { benchFigure(b, experiments.Figure11) }

// BenchmarkFigure12 regenerates Fig. 12: locality vs number of key-pair
// edges considered.
func BenchmarkFigure12(b *testing.B) { benchFigure(b, one(experiments.Figure12)) }

// BenchmarkFigure13 regenerates Fig. 13: throughput over 30 minutes with
// and without reconfiguration on the stable Flickr-like workload.
func BenchmarkFigure13(b *testing.B) { benchFigure(b, experiments.Figure13) }

// BenchmarkFigure14 regenerates Fig. 14: average throughput vs
// parallelism with and without reconfiguration.
func BenchmarkFigure14(b *testing.B) { benchFigure(b, one(experiments.Figure14)) }

// BenchmarkAblationRefinement measures the partitioner's FM refinement
// contribution.
func BenchmarkAblationRefinement(b *testing.B) {
	benchFigure(b, one(experiments.AblationRefinement))
}

// BenchmarkAblationSketchCapacity bounds SpaceSaving sketches and
// measures achieved locality.
func BenchmarkAblationSketchCapacity(b *testing.B) {
	benchFigure(b, one(experiments.AblationSketchCapacity))
}

// BenchmarkAblationAlpha sweeps the load-imbalance bound.
func BenchmarkAblationAlpha(b *testing.B) {
	benchFigure(b, one(experiments.AblationAlpha))
}

// BenchmarkAblationPeriod sweeps the reconfiguration period.
func BenchmarkAblationPeriod(b *testing.B) {
	benchFigure(b, one(experiments.AblationPeriod))
}

// BenchmarkAblationRackAware compares flat vs hierarchical partitioning
// on a two-rack cluster with an oversubscribed inter-rack link.
func BenchmarkAblationRackAware(b *testing.B) {
	benchFigure(b, one(experiments.AblationRackAware))
}

// BenchmarkSimThroughput measures the raw simulator speed (simulated
// tuples per wall second), the cost floor of all experiments above.
func BenchmarkSimThroughput(b *testing.B) {
	topo, err := locastream.NewTopology("eval").
		AddOperator(locastream.Operator{
			Name: "A", Parallelism: 6, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "B", Parallelism: 6, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("A", "B", locastream.Fields, 1).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	sim, err := locastream.NewSimulation(topo, locastream.WithServers(6))
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewSynthetic(6, 0.8, 1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Inject(gen.Next())
	}
}

// BenchmarkLivePipeline measures the live engine's end-to-end tuple rate
// on the evaluation topology.
func BenchmarkLivePipeline(b *testing.B) {
	topo, err := locastream.NewTopology("eval").
		AddOperator(locastream.Operator{
			Name: "A", Parallelism: 4, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "B", Parallelism: 4, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("A", "B", locastream.Fields, 1).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	app, err := locastream.NewApp(topo,
		locastream.WithServers(4),
		locastream.WithMaxInFlight(4096),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer app.Stop()
	tuples := benchPipelineTuples(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := app.Inject(tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
	}
	app.Drain()
}

// benchPipelineTuples prebuilds the injected tuples so pipeline
// benchmarks measure the engine, not per-iteration key formatting.
func benchPipelineTuples(n int) []locastream.Tuple {
	tuples := make([]locastream.Tuple, n)
	for i := range tuples {
		k := strconv.Itoa(i)
		tuples[i] = locastream.Tuple{Values: []string{k, "#" + k}}
	}
	return tuples
}

// BenchmarkReconfiguration measures one full protocol round (collect,
// optimize, deploy, migrate) on a loaded live application.
func BenchmarkReconfiguration(b *testing.B) {
	topo, err := locastream.NewTopology("eval").
		AddOperator(locastream.Operator{
			Name: "A", Parallelism: 4, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "B", Parallelism: 4, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("A", "B", locastream.Fields, 1).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	app, err := locastream.NewApp(topo, locastream.WithServers(4))
	if err != nil {
		b.Fatal(err)
	}
	defer app.Stop()
	for i := 0; i < 5000; i++ {
		k := strconv.Itoa(i % 128)
		_ = app.Inject(locastream.Tuple{Values: []string{k, "#" + k}})
	}
	app.Drain()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.Reconfigure(); err != nil {
			b.Fatal(err)
		}
		// Keep statistics flowing so each round has fresh data.
		b.StopTimer()
		for j := 0; j < 1000; j++ {
			k := strconv.Itoa((i + j) % 128)
			_ = app.Inject(locastream.Tuple{Values: []string{k, "#" + k}})
		}
		app.Drain()
		b.StartTimer()
	}
}

// BenchmarkLivePipelineTCP is BenchmarkLivePipeline with every
// cross-server message crossing real localhost TCP connections; the
// difference against the in-memory variant is the live engine's measured
// cost of remote transfers.
func BenchmarkLivePipelineTCP(b *testing.B) {
	topo, err := locastream.NewTopology("eval").
		AddOperator(locastream.Operator{
			Name: "A", Parallelism: 4, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "B", Parallelism: 4, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("A", "B", locastream.Fields, 1).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	app, err := locastream.NewApp(topo,
		locastream.WithServers(4),
		locastream.WithMaxInFlight(4096),
		locastream.WithTCPTransport(),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer app.Stop()
	tuples := benchPipelineTuples(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := app.Inject(tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
	}
	app.Drain()
}
