// Command locaopt performs the paper's offline analysis (§3.2): it reads
// a dataset of key pairs, computes locality-aware routing tables for a
// given cluster size, and writes them as a JSON configuration compatible
// with the engine's FileStore ("in cases where the workload is stable ...
// it is possible to perform an offline analysis on a large sample of the
// data").
//
// Usage:
//
//	locagen -workload flickr -n 200000 -out photos.tsv
//	locaopt -in photos.tsv -servers 6 -out configs/
//	locaopt -in tweets.tsv -cols 1,2 -servers 4 -alpha 1.1 -print
//
// Input is tab-separated, one tuple per line; -cols selects the two key
// columns (0-based, default "0,1").
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/core"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/spacesaving"
	"github.com/locastream/locastream/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "locaopt:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in       = flag.String("in", "", "input TSV dataset (required)")
		cols     = flag.String("cols", "0,1", "two 0-based key columns, comma separated")
		servers  = flag.Int("servers", 6, "cluster size (= parallelism of both operators)")
		alpha    = flag.Float64("alpha", 1.03, "load imbalance bound")
		maxEdges = flag.Int("maxedges", 0, "keep only the heaviest key pairs (0 = all)")
		sketch   = flag.Int("sketch", 1<<20, "SpaceSaving capacity for pair counting")
		seed     = flag.Int64("seed", 1, "partitioner seed")
		outDir   = flag.String("out", "", "write the configuration under this directory")
		show     = flag.Bool("print", false, "print the routing tables to stdout")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("missing -in dataset")
	}
	colA, colB, err := parseCols(*cols)
	if err != nil {
		return err
	}

	pairs, lines, err := countPairs(*in, colA, colB, *sketch)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "read %d tuples, %d distinct pairs monitored\n", lines, pairs.Len())

	topo, place, err := evalDeployment(*servers)
	if err != nil {
		return err
	}
	opt, err := core.NewOptimizer(topo, place, core.OptimizerOptions{
		Alpha:    *alpha,
		MaxEdges: *maxEdges,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	tables, plan, err := opt.ComputeTables([]engine.PairStat{{
		FromOp: "A", ToOp: "B", Pairs: pairs.Counters(),
	}})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "configuration v%d: %d keys, %d pairs, expected locality %.3f, imbalance %.3f\n",
		plan.Version, plan.Keys, plan.Edges, plan.ExpectedLocality, plan.Imbalance)

	if *outDir != "" {
		store := &core.FileStore{Dir: *outDir}
		if err := store.Save(plan.Version, tables); err != nil {
			return err
		}
		// An offline configuration is meant to be picked up at startup:
		// mark it deployed so ConfigStore.Load returns it.
		if err := store.MarkDeployed(plan.Version); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "configuration written under %s\n", *outDir)
	}
	if *show {
		for _, op := range []string{"A", "B"} {
			t := tables[op]
			if t == nil {
				continue
			}
			keys := make([]string, 0, len(t.Assign))
			for k := range t.Assign {
				keys = append(keys, k)
			}
			// Stable output for diffing.
			for i := 1; i < len(keys); i++ {
				for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
					keys[j], keys[j-1] = keys[j-1], keys[j]
				}
			}
			for _, k := range keys {
				fmt.Printf("%s\t%s\t%d\n", op, k, t.Assign[k])
			}
		}
	}
	return nil
}

func parseCols(spec string) (int, int, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-cols wants two comma-separated indices, got %q", spec)
	}
	a, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, err
	}
	if a < 0 || b < 0 {
		return 0, 0, fmt.Errorf("column indices must be non-negative")
	}
	return a, b, nil
}

func countPairs(path string, colA, colB, capacity int) (*spacesaving.PairSketch, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	pairs := spacesaving.NewPairs(capacity)
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for scanner.Scan() {
		fields := strings.Split(scanner.Text(), "\t")
		if colA >= len(fields) || colB >= len(fields) {
			continue
		}
		pairs.Add(fields[colA], fields[colB])
		lines++
	}
	if err := scanner.Err(); err != nil {
		return nil, 0, err
	}
	return pairs, lines, nil
}

// evalDeployment builds the canonical two-operator application the
// offline tables target.
func evalDeployment(servers int) (*topology.Topology, *cluster.Placement, error) {
	topo, err := topology.NewBuilder("offline").
		AddOperator(topology.Operator{Name: "A", Parallelism: servers, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(0) }}).
		AddOperator(topology.Operator{Name: "B", Parallelism: servers, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(1) }}).
		Connect("A", "B", topology.Fields, 1).
		Build()
	if err != nil {
		return nil, nil, err
	}
	place, err := cluster.NewRoundRobin(topo, servers)
	if err != nil {
		return nil, nil, err
	}
	return topo, place, nil
}
