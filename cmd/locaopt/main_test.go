package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseCols(t *testing.T) {
	tests := []struct {
		give    string
		wantA   int
		wantB   int
		wantErr bool
	}{
		{give: "0,1", wantA: 0, wantB: 1},
		{give: " 2 , 5 ", wantA: 2, wantB: 5},
		{give: "1", wantErr: true},
		{give: "a,b", wantErr: true},
		{give: "-1,0", wantErr: true},
		{give: "0,1,2", wantErr: true},
	}
	for _, tt := range tests {
		a, b, err := parseCols(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseCols(%q) accepted", tt.give)
			}
			continue
		}
		if err != nil || a != tt.wantA || b != tt.wantB {
			t.Errorf("parseCols(%q) = %d,%d,%v", tt.give, a, b, err)
		}
	}
}

func TestCountPairs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.tsv")
	content := "loc1\ttag1\nloc1\ttag1\nloc2\ttag2\nshort\nloc1\ttag3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	pairs, lines, err := countPairs(path, 0, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if lines != 4 {
		t.Fatalf("lines = %d, want 4 (short line skipped)", lines)
	}
	top := pairs.Top(1)
	if len(top) != 1 || top[0].In != "loc1" || top[0].Out != "tag1" || top[0].Count != 2 {
		t.Fatalf("top pair = %+v", top)
	}

	if _, _, err := countPairs(filepath.Join(dir, "missing.tsv"), 0, 1, 10); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestEvalDeployment(t *testing.T) {
	topo, place, err := evalDeployment(4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Source() != "A" || place.Servers() != 4 {
		t.Fatalf("deployment = %s/%d", topo.Source(), place.Servers())
	}
	if _, _, err := evalDeployment(0); err == nil {
		t.Fatal("0 servers accepted")
	}
}
