// Command benchgate turns `go test -bench` output into a committed
// baseline and gates CI on it.
//
// It reads benchmark output on stdin and runs in one of two modes:
//
//	benchgate -write BENCH.json
//	    Parse every benchmark result line, aggregate repeated runs of
//	    the same benchmark (-count N) by taking the fastest sample —
//	    the run least disturbed by scheduler noise — and write the
//	    baseline file.
//
//	benchgate -check BENCH.json -bench BenchmarkLiveForward -max-regress 0.20
//	    Parse the current run the same way and compare the named
//	    benchmark's ns/op against the committed baseline. Exit non-zero
//	    if it regressed by more than -max-regress (a fraction: 0.20
//	    allows up to +20% ns/op). Repeat -bench to gate several
//	    benchmarks. A gated benchmark missing from either side is an
//	    error: a silently vanished benchmark must fail the gate, not
//	    pass it.
//
// Custom ReportMetric columns (tuples/frame, wire-B/tuple, ...) are
// recorded in the baseline alongside ns/op. A specific lower-is-better
// metric can be gated with -metric:
//
//	benchgate -check BENCH.json -metric 'BenchmarkWireForwardSkewed/dict:wire-B/tuple'
//	    Compare that benchmark's named metric against the baseline under
//	    the same -max-regress budget. Used to pin the wire compression
//	    win: bytes-per-tuple creeping back up fails CI like a slowdown.
//
// The baseline file is plain JSON so reviewers can read regressions in
// the diff when the baseline is deliberately re-written.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated numbers in the baseline file.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric columns (unit -> value),
	// taken from the same sample as NsPerOp.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Samples int                `json:"samples"`
}

// Baseline is the committed benchmark file format.
type Baseline struct {
	Schema     string            `json:"schema"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

const schemaVersion = "benchgate/1"

func main() {
	var (
		writePath  = flag.String("write", "", "write the parsed baseline to this file")
		checkPath  = flag.String("check", "", "compare stdin against this baseline file")
		maxRegress = flag.Float64("max-regress", 0.20, "allowed fractional ns/op regression in -check mode")
		gated      multiFlag
		metrics    multiFlag
	)
	flag.Var(&gated, "bench", "benchmark name to gate in -check mode (repeatable)")
	flag.Var(&metrics, "metric", "Benchmark:unit lower-is-better metric to gate in -check mode (repeatable)")
	flag.Parse()

	if (*writePath == "") == (*checkPath == "") {
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -write or -check is required")
		os.Exit(2)
	}

	current, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(current.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results on stdin")
		os.Exit(2)
	}

	if *writePath != "" {
		if err := writeBaseline(*writePath, current); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		names := sortedNames(current.Benchmarks)
		for _, name := range names {
			r := current.Benchmarks[name]
			fmt.Printf("benchgate: recorded %s: %.1f ns/op (%d samples)\n", name, r.NsPerOp, r.Samples)
		}
		return
	}

	baseline, err := readBaseline(*checkPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(gated) == 0 {
		gated = sortedNames(baseline.Benchmarks)
	}
	failed := false
	for _, name := range gated {
		base, ok := baseline.Benchmarks[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: not in baseline %s\n", name, *checkPath)
			failed = true
			continue
		}
		cur, ok := current.Benchmarks[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: missing from current run\n", name)
			failed = true
			continue
		}
		ratio := cur.NsPerOp/base.NsPerOp - 1
		status := "ok"
		if ratio > *maxRegress {
			status = "FAIL"
			failed = true
		}
		out := os.Stdout
		if status == "FAIL" {
			out = os.Stderr
		}
		fmt.Fprintf(out, "benchgate: %s %s: %.1f ns/op vs baseline %.1f (%+.1f%%, limit +%.0f%%)\n",
			status, name, cur.NsPerOp, base.NsPerOp, ratio*100, *maxRegress*100)
	}
	for _, spec := range metrics {
		name, unit, ok := strings.Cut(spec, ":")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL bad -metric %q (want Benchmark:unit)\n", spec)
			failed = true
			continue
		}
		baseV, okB := baseline.Benchmarks[name].Metrics[unit]
		curV, okC := current.Benchmarks[name].Metrics[unit]
		if !okB || !okC {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s %s: missing from %s\n",
				name, unit, map[bool]string{true: "current run", false: "baseline"}[okB])
			failed = true
			continue
		}
		if baseV <= 0 {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s %s: non-positive baseline %.3f\n", name, unit, baseV)
			failed = true
			continue
		}
		ratio := curV/baseV - 1
		status := "ok"
		out := os.Stdout
		if ratio > *maxRegress {
			status, failed, out = "FAIL", true, os.Stderr
		}
		fmt.Fprintf(out, "benchgate: %s %s: %.2f %s vs baseline %.2f (%+.1f%%, limit +%.0f%%)\n",
			status, name, curV, unit, baseV, ratio*100, *maxRegress*100)
	}
	if failed {
		os.Exit(1)
	}
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// parseBench reads `go test -bench` output and aggregates result lines.
// Repeated samples of one benchmark (-count N) keep the minimum ns/op
// and the matching B/op / allocs/op columns.
func parseBench(r io.Reader) (Baseline, error) {
	out := Baseline{Schema: schemaVersion, Benchmarks: make(map[string]Result)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		name, res, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		prev, seen := out.Benchmarks[name]
		if seen {
			res.Samples += prev.Samples
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp, res.BPerOp, res.AllocsPerOp = prev.NsPerOp, prev.BPerOp, prev.AllocsPerOp
				res.Metrics = prev.Metrics
			}
		}
		out.Benchmarks[name] = res
	}
	return out, sc.Err()
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkWireForward-8   3796738   324.1 ns/op   208 B/op   5 allocs/op
//
// Unit columns other than ns/op, B/op and allocs/op (custom
// ReportMetric units such as tuples/frame or wire-B/tuple) are
// collected into Result.Metrics.
func parseLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so baselines compare across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", Result{}, false // not an iteration count
	}
	res := Result{Samples: 1}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp, sawNs = v, true
		case "B/op":
			res.BPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	if !sawNs {
		return "", Result{}, false
	}
	return name, res, true
}

func writeBaseline(path string, b Baseline) error {
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func readBaseline(path string) (Baseline, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(buf, &b); err != nil {
		return Baseline{}, fmt.Errorf("parse %s: %w", path, err)
	}
	if b.Schema != schemaVersion {
		return Baseline{}, fmt.Errorf("%s: unsupported schema %q (want %q)", path, b.Schema, schemaVersion)
	}
	return b, nil
}

func sortedNames(m map[string]Result) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
