package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/locastream/locastream/internal/transport
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkWireForward-8 	 3796738	       324.1 ns/op	        68.98 encode-ns/op	      2512 tuples/frame	     208 B/op	       5 allocs/op
BenchmarkWireForward-8 	 3610021	       331.7 ns/op	        70.10 encode-ns/op	      2498 tuples/frame	     210 B/op	       5 allocs/op
BenchmarkGobForward-8  	  465319	      2251 ns/op	     464 B/op	       9 allocs/op
BenchmarkWireEncode-8  	37339294	        32.43 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	github.com/locastream/locastream/internal/transport	3.928s
`

func TestParseBenchAggregatesMinOfSamples(t *testing.T) {
	b, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(b.Benchmarks), b.Benchmarks)
	}
	wf := b.Benchmarks["BenchmarkWireForward"]
	if wf.Samples != 2 {
		t.Fatalf("WireForward samples = %d, want 2", wf.Samples)
	}
	if wf.NsPerOp != 324.1 {
		t.Fatalf("WireForward ns/op = %v, want min sample 324.1", wf.NsPerOp)
	}
	if wf.BPerOp != 208 || wf.AllocsPerOp != 5 {
		t.Fatalf("WireForward mem columns = %v B/op %v allocs/op, want 208/5", wf.BPerOp, wf.AllocsPerOp)
	}
	// Custom ReportMetric columns ride along, taken from the min-ns/op
	// sample so they describe the same run.
	if wf.Metrics["encode-ns/op"] != 68.98 || wf.Metrics["tuples/frame"] != 2512 {
		t.Fatalf("WireForward metrics = %v, want the 324.1 sample's 68.98/2512", wf.Metrics)
	}
	if enc := b.Benchmarks["BenchmarkWireEncode"]; enc.AllocsPerOp != 0 || enc.NsPerOp != 32.43 {
		t.Fatalf("WireEncode = %+v", enc)
	}
}

func TestParseLineCollectsCustomMetrics(t *testing.T) {
	_, res, ok := parseLine("BenchmarkWireForwardSkewed/dict-8 	 1000000	 500.0 ns/op	 9.06 wire-B/tuple	 3.37 ratio")
	if !ok {
		t.Fatal("line rejected")
	}
	if res.Metrics["wire-B/tuple"] != 9.06 || res.Metrics["ratio"] != 3.37 {
		t.Fatalf("metrics = %v", res.Metrics)
	}
}

func TestParseLineRejectsNonResultLines(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	github.com/locastream/locastream/internal/transport	3.928s",
		"goos: linux",
		"BenchmarkBroken-8 	 notanumber	 324.1 ns/op",
		"BenchmarkNoUnits-8 	 100	 324.1",
		"--- BENCH: BenchmarkX-8",
	} {
		if name, _, ok := parseLine(line); ok {
			t.Fatalf("parseLine accepted %q as %q", line, name)
		}
	}
}

func TestParseLineStripsGomaxprocsSuffix(t *testing.T) {
	name, res, ok := parseLine("BenchmarkLiveForward-16 	 1000000	 1000 ns/op")
	if !ok || name != "BenchmarkLiveForward" || res.NsPerOp != 1000 {
		t.Fatalf("got %q %+v ok=%v", name, res, ok)
	}
	// A trailing -N that is part of a sub-benchmark name, not a proc
	// count, must survive.
	name, _, ok = parseLine("BenchmarkInjectWithCheckpointing/every10000-8 	 500000	 2000 ns/op")
	if !ok || name != "BenchmarkInjectWithCheckpointing/every10000" {
		t.Fatalf("sub-benchmark name = %q ok=%v", name, ok)
	}
}
