// Command benchpaper regenerates the figures of the paper's evaluation
// section (Caneill et al., Middleware'16) and prints them as text tables.
//
// Usage:
//
//	benchpaper                      # every figure, full scale
//	benchpaper -fig fig11           # one figure
//	benchpaper -fig ablations       # the ablation studies
//	benchpaper -scale 0.1           # quick run at a tenth of the budget
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/locastream/locastream/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchpaper:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig   = flag.String("fig", "all", "figure to regenerate: all, ablations, fig7..fig14, ablation-refinement, ablation-sketch, ablation-alpha, ablation-period, ablation-rack")
		scale = flag.Float64("scale", 1.0, "experiment size multiplier (tuples per measurement)")
	)
	flag.Parse()

	var (
		figs []experiments.Figure
		err  error
	)
	start := time.Now()
	switch *fig {
	case "all":
		figs, err = experiments.AllFigures(experiments.Scale(*scale))
	case "ablations":
		figs, err = experiments.AllAblations(experiments.Scale(*scale))
	default:
		figs, err = experiments.FigureByID(*fig, experiments.Scale(*scale))
	}
	if err != nil {
		return err
	}
	for i := range figs {
		if err := figs[i].Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	fmt.Printf("# %d figures in %.1fs\n", len(figs), time.Since(start).Seconds())
	return nil
}
