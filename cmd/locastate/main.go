// Command locastate inspects a queryable state store directory offline
// — the segments-and-manifest layout WithStateStore maintains — without
// a running application. It answers the same questions the live /state
// endpoints do: what operators have state, what a key held at a
// version, what the whole image looked like, plus store-level stats and
// an on-demand compaction.
//
// Usage:
//
//	locastate -dir ./state ops
//	locastate -dir ./state scan count
//	locastate -dir ./state get count key-42
//	locastate -dir ./state -version 17 get count key-42
//	locastate -dir ./state stats
//	locastate -dir ./state compact
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"github.com/locastream/locastream/internal/statestore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "locastate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dir     = flag.String("dir", "", "state store directory (required)")
		version = flag.Uint64("version", 0, "checkpoint version for get/scan (0 = latest)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: locastate -dir DIR [-version V] ops|scan OP|get OP KEY|stats|compact\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *dir == "" || flag.NArg() == 0 {
		flag.Usage()
		return errors.New("a -dir and a command are required")
	}

	s, err := statestore.Open(*dir, statestore.Options{})
	if err != nil {
		return err
	}
	defer s.Close()

	switch cmd := flag.Arg(0); cmd {
	case "ops":
		return emit(map[string]any{"ops": s.Ops(), "version": s.Version(), "base_version": s.BaseVersion()})
	case "scan":
		if flag.NArg() != 2 {
			return errors.New("scan needs an operator: locastate -dir DIR scan OP")
		}
		res, err := s.Scan(flag.Arg(1), *version)
		if err != nil {
			return err
		}
		return emit(res)
	case "get":
		if flag.NArg() != 3 {
			return errors.New("get needs an operator and a key: locastate -dir DIR get OP KEY")
		}
		res, found, err := s.Lookup(flag.Arg(1), flag.Arg(2), *version)
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("no state for %s/%s at version %d", flag.Arg(1), flag.Arg(2), res.Version)
		}
		return emit(res)
	case "stats":
		return emit(s.Stats())
	case "compact":
		st, err := s.Compact()
		if err != nil {
			return err
		}
		return emit(st)
	default:
		return fmt.Errorf("unknown command %q (want ops, scan, get, stats or compact)", cmd)
	}
}

func emit(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
