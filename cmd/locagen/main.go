// Command locagen writes workload datasets as tab-separated values, one
// tuple per line, for inspection or replay by external tools.
//
// Usage:
//
//	locagen -workload twitter -n 100000 > tweets.tsv
//	locagen -workload flickr -n 100000 -out photos.tsv
//	locagen -workload synthetic -n 10000 -parallelism 6 -locality 0.8
//	locagen -workload twitter -n 50000 -weeks 4   # week column included
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/locastream/locastream/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "locagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind        = flag.String("workload", "twitter", "workload: twitter, flickr, synthetic")
		n           = flag.Int("n", 10000, "tuples per week (twitter) or total")
		weeks       = flag.Int("weeks", 1, "weeks to generate (twitter only)")
		parallelism = flag.Int("parallelism", 6, "key range (synthetic only)")
		locality    = flag.Float64("locality", 0.8, "locality (synthetic only)")
		seed        = flag.Int64("seed", 1, "generator seed")
		out         = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	switch *kind {
	case "twitter":
		cfg := workload.DefaultTwitterConfig()
		cfg.Seed = *seed
		gen := workload.NewTwitter(cfg)
		for week := 0; week < *weeks; week++ {
			for i := 0; i < *n; i++ {
				t := gen.Next()
				fmt.Fprintf(bw, "%d\t%s\t%s\n", week, t.Values[0], t.Values[1])
			}
			gen.NextWeek()
		}
	case "flickr":
		cfg := workload.DefaultFlickrConfig()
		cfg.Seed = *seed
		gen := workload.NewFlickr(cfg)
		for i := 0; i < *n; i++ {
			t := gen.Next()
			fmt.Fprintf(bw, "%s\t%s\n", t.Values[0], t.Values[1])
		}
	case "synthetic":
		gen := workload.NewSynthetic(*parallelism, *locality, 0, *seed)
		for i := 0; i < *n; i++ {
			t := gen.Next()
			fmt.Fprintf(bw, "%s\t%s\n", t.Values[0], t.Values[1])
		}
	default:
		return fmt.Errorf("unknown workload %q (want twitter, flickr or synthetic)", *kind)
	}
	return bw.Flush()
}
