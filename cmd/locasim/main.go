// Command locasim runs one simulated configuration of the paper's
// evaluation application (two stateful counting operators) and reports
// throughput, locality, load balance and the bottleneck resource.
//
// Usage:
//
//	locasim -parallelism 6 -locality 0.8 -padding 8192 -mode locality-aware
//	locasim -mode hash -network 1g -tuples 100000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	locastream "github.com/locastream/locastream"
	"github.com/locastream/locastream/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "locasim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		parallelism = flag.Int("parallelism", 6, "instances per operator = servers")
		locality    = flag.Float64("locality", 0.8, "synthetic workload locality in [0,1]")
		padding     = flag.Int("padding", 0, "tuple payload bytes")
		tuples      = flag.Int("tuples", 50000, "tuples to stream")
		mode        = flag.String("mode", "locality-aware", "routing: locality-aware, hash, worst-case")
		network     = flag.String("network", "10g", "network model: 10g or 1g")
		seed        = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	topo, err := locastream.NewTopology("eval").
		AddOperator(locastream.Operator{
			Name: "A", Parallelism: *parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "B", Parallelism: *parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("A", "B", locastream.Fields, 1).
		Build()
	if err != nil {
		return err
	}

	model := locastream.Model10G()
	if *network == "1g" {
		model = locastream.Model1G()
	}
	opts := []locastream.Option{
		locastream.WithServers(*parallelism),
		locastream.WithCostModel(model),
	}
	switch *mode {
	case "locality-aware":
		// explicit identity tables below
	case "hash":
		opts = append(opts, locastream.WithHashRouting())
	case "worst-case":
		opts = append(opts, locastream.WithWorstCaseRouting())
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	sim, err := locastream.NewSimulation(topo, opts...)
	if err != nil {
		return err
	}
	if *mode == "locality-aware" {
		assign := make(map[string]int, *parallelism)
		for i := 0; i < *parallelism; i++ {
			assign[strconv.Itoa(i)] = i
		}
		sim.SetRoutingTable("A", assign)
		sim.SetRoutingTable("B", assign)
	}

	gen := workload.NewSynthetic(*parallelism, *locality, *padding, *seed)
	for i := 0; i < *tuples; i++ {
		sim.Inject(gen.Next())
	}

	busy, label := sim.Bottleneck()
	fmt.Printf("mode=%s parallelism=%d locality-param=%.2f padding=%d network=%s\n",
		*mode, *parallelism, *locality, *padding, *network)
	fmt.Printf("throughput   %.1f Ktuples/s\n", sim.ThroughputPerSec()/1000)
	fmt.Printf("locality     %.3f\n", sim.Locality())
	fmt.Printf("imbalance A  %.3f\n", locastream.Imbalance(sim.Loads("A")))
	fmt.Printf("imbalance B  %.3f\n", locastream.Imbalance(sim.Loads("B")))
	fmt.Printf("bottleneck   %s (%.1f ms busy)\n", label, busy/1e6)
	return nil
}
