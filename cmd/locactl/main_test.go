package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunEndToEnd drives the whole binary in-process: a short run must
// converge, survive the correlation flip, and leave a JSONL journal and
// a recoverable configuration behind.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "decisions.jsonl")
	store := filepath.Join(dir, "config")

	oldArgs := os.Args
	defer func() { os.Args = oldArgs; flag.CommandLine = flag.NewFlagSet(oldArgs[0], flag.ExitOnError) }()
	flag.CommandLine = flag.NewFlagSet("locactl", flag.ExitOnError)
	os.Args = []string{"locactl",
		"-servers", "4", "-rounds", "4", "-tuples", "4000",
		"-locality", "1", "-flip", "3", "-confirm", "2",
		"-journal", journal, "-store", store,
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 4 {
		t.Fatalf("journal holds %d decisions, want 4", lines)
	}
	if !strings.Contains(string(data), `"action":"deployed"`) {
		t.Fatal("journal records no deployment")
	}

	if _, err := os.Stat(filepath.Join(store, "latest.json")); err != nil {
		t.Fatalf("no deployed configuration persisted: %v", err)
	}

	// A second run against the same store starts from the recovered
	// configuration.
	flag.CommandLine = flag.NewFlagSet("locactl", flag.ExitOnError)
	os.Args = []string{"locactl",
		"-servers", "4", "-rounds", "1", "-tuples", "2000",
		"-locality", "1", "-store", store,
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
}

// TestRunScaleEndToEnd drives the scale verb in-process: the surge must
// widen the cluster to max and the ebb shrink it to min, with both
// decisions journaled.
func TestRunScaleEndToEnd(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "decisions.jsonl")
	err := runScale([]string{
		"-min", "1", "-max", "4", "-servers", "2",
		"-rounds", "7", "-surge", "2",
		"-heavy", "4000", "-light", "250", "-target", "600",
		"-confirm", "2", "-cooldown", "1",
		"-journal", journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), `"action":"scaled"`); got != 2 {
		t.Fatalf("journal records %d scale decisions, want 2:\n%s", got, data)
	}
}
