// Command locactl runs the §4.2 synthetic workload under the autonomous
// control plane: rounds of traffic are injected into a live application
// and the controller alone decides when to reconfigure — the closed
// measure→decide→migrate loop of the paper's online protocol, with the
// decision journal printed as it grows.
//
// Halfway through the run the key correlation flips (field j becomes a
// rotation of field i), demonstrating how the hysteresis settings —
// confirmation windows and post-migration cooldown — govern whether and
// when the controller chases the change.
//
// Usage:
//
//	locactl -servers 6 -rounds 8 -tuples 20000 -locality 0.9
//	locactl -confirm 2 -cooldown 1 -flip 4 -journal decisions.jsonl
//	locactl -serve :8080 -rounds 100
//
// The scale verb instead drives a load surge-and-ebb through an elastic
// application: the autopilot's scaler widens the cluster for the surge
// and shrinks it back when traffic ebbs, printing each membership
// change as it happens.
//
//	locactl scale -min 3 -max 8 -servers 4 -surge 3 -rounds 10
//	locactl scale -target 2600 -journal decisions.jsonl
//
// With -serve the introspection API (/status, /snapshots, /journal,
// /tables, /scale) is exposed over HTTP for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"

	locastream "github.com/locastream/locastream"
	"github.com/locastream/locastream/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "locactl:", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) > 1 && os.Args[1] == "scale" {
		return runScale(os.Args[2:])
	}
	var (
		servers  = flag.Int("servers", 6, "cluster size (= parallelism of both operators)")
		rounds   = flag.Int("rounds", 8, "statistics windows to run")
		tuples   = flag.Int("tuples", 20000, "tuples injected per window")
		locality = flag.Float64("locality", 0.9, "probability that a tuple's two keys are correlated")
		padding  = flag.Int("padding", 0, "extra payload bytes per tuple")
		seed     = flag.Int64("seed", 1, "workload seed")
		flip     = flag.Int("flip", 0, "rotate the key correlation from this round on (0 = never)")
		cost     = flag.Float64("cost", 1, "migration cost per key (tuple transfers per window)")
		minGain  = flag.Float64("mingain", 0, "minimum estimated locality gain to deploy")
		confirm  = flag.Int("confirm", 1, "consecutive worthwhile windows required to deploy")
		cooldown = flag.Int("cooldown", 0, "windows to skip after each deployment")
		journal  = flag.String("journal", "", "append decisions to this JSONL file")
		storeDir = flag.String("store", "", "persist configurations under this directory (enables recovery)")
		serve    = flag.String("serve", "", "serve the introspection API on this address during the run")
	)
	flag.Parse()

	topo, err := locastream.NewTopology("synthetic").
		AddOperator(locastream.Operator{Name: "A", Parallelism: *servers, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) }}).
		AddOperator(locastream.Operator{Name: "B", Parallelism: *servers, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) }}).
		Connect("A", "B", locastream.Fields, 1).
		Build()
	if err != nil {
		return err
	}

	opts := []locastream.Option{locastream.WithServers(*servers)}
	if *storeDir != "" {
		opts = append(opts, locastream.WithConfigStore(locastream.NewFileConfigStore(*storeDir)))
	}
	app, err := locastream.NewApp(topo, opts...)
	if err != nil {
		return err
	}
	defer app.Stop()

	ap, err := app.NewAutopilot(locastream.AutopilotOptions{
		CostPerKey:  *cost,
		MinGain:     *minGain,
		Confirm:     *confirm,
		Cooldown:    *cooldown,
		JournalPath: *journal,
	})
	if err != nil {
		return err
	}
	defer ap.Stop()
	if st := ap.Status(); st.Recovered {
		fmt.Printf("recovered configuration v%d from %s\n", st.RecoveredVersion, *storeDir)
	}

	if *serve != "" {
		srv := &http.Server{Addr: *serve, Handler: ap.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "locactl: serve:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("introspection API on http://%s\n", *serve)
	}

	gen := workload.NewSynthetic(*servers, *locality, *padding, *seed)
	for round := 1; round <= *rounds; round++ {
		rot := 0
		if *flip > 0 && round >= *flip {
			rot = *servers / 2
		}
		for i := 0; i < *tuples; i++ {
			t := gen.Next()
			if rot != 0 {
				j, _ := strconv.Atoi(t.Values[1])
				t.Values[1] = strconv.Itoa((j + rot) % *servers)
			}
			if err := app.Inject(t); err != nil {
				return err
			}
		}
		app.Drain()
		d := ap.Tick()
		fmt.Printf("round %2d  %-9s streak=%d v%-3d window locality %.3f -> candidate %.3f  %s\n",
			round, d.Action, d.Streak, d.Version,
			d.Signals.WindowLocality, d.CandidateLocality, d.Reason)
	}

	st := ap.Status()
	fmt.Printf("\n%d windows: %d deployed, %d skipped, %d in cooldown, %d errors; final locality %.3f (cumulative %.3f)\n",
		st.Ticks, st.Deploys, st.Skips, st.Cooldowns, st.Errors,
		st.SmoothedLocality, app.Locality())
	return nil
}

// runScale is the scale verb: a surge of heavy windows followed by an
// ebb of light ones, with the elastic scaler alone resizing the cluster.
func runScale(args []string) error {
	fs := flag.NewFlagSet("locactl scale", flag.ExitOnError)
	var (
		min      = fs.Int("min", 3, "minimum active servers")
		max      = fs.Int("max", 8, "maximum active servers (= parallelism of both operators)")
		servers  = fs.Int("servers", 4, "initial active servers")
		rounds   = fs.Int("rounds", 10, "statistics windows to run")
		surge    = fs.Int("surge", 3, "heavy windows at the start of the run")
		heavy    = fs.Int("heavy", 20000, "tuples per heavy (surge) window")
		light    = fs.Int("light", 2000, "tuples per light (ebb) window")
		target   = fs.Uint64("target", 2600, "fields transfers per window one server is sized for")
		confirm  = fs.Int("confirm", 2, "consecutive agreeing windows required to scale")
		cooldown = fs.Int("cooldown", 1, "windows to skip after each scale operation")
		maxMoves = fs.Int("maxmoves", 0, "voluntary key moves allowed per scale-up (0 = unbounded)")
		locality = fs.Float64("locality", 1, "probability that a tuple's two keys are correlated")
		seed     = fs.Int64("seed", 1, "workload seed")
		journal  = fs.String("journal", "", "append decisions to this JSONL file")
		serve    = fs.String("serve", "", "serve the introspection API on this address during the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	topo, err := locastream.NewTopology("elastic").
		AddOperator(locastream.Operator{Name: "A", Parallelism: *max, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) }}).
		AddOperator(locastream.Operator{Name: "B", Parallelism: *max, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) }}).
		Connect("A", "B", locastream.Fields, 1).
		Build()
	if err != nil {
		return err
	}
	app, err := locastream.NewApp(topo,
		locastream.WithAutoscale(*min, *max),
		locastream.WithServers(*servers),
		locastream.WithMaxInFlight(8192),
	)
	if err != nil {
		return err
	}
	defer app.Stop()
	ap, err := app.NewAutopilot(locastream.AutopilotOptions{
		CostPerKey:      1,
		JournalPath:     *journal,
		ScaleTargetLoad: *target,
		ScaleConfirm:    *confirm,
		ScaleCooldown:   *cooldown,
		ScaleMaxMoves:   *maxMoves,
	})
	if err != nil {
		return err
	}
	defer ap.Stop()
	// Scale-downs drain keyed state through the checkpoint subsystem.
	ft, err := app.NewFaultTolerance(locastream.FaultToleranceOptions{
		Store: locastream.NewMemoryCheckpointStore(),
	})
	if err != nil {
		return err
	}
	defer ft.Stop()

	if *serve != "" {
		srv := &http.Server{Addr: *serve, Handler: ap.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "locactl: serve:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("introspection API on http://%s\n", *serve)
	}

	gen := workload.NewSynthetic(*max, *locality, 0, *seed)
	for round := 1; round <= *rounds; round++ {
		tuples, phase := *light, "ebb"
		if round <= *surge {
			tuples, phase = *heavy, "surge"
		}
		before := app.ActiveServers()
		for i := 0; i < tuples; i++ {
			if err := app.Inject(gen.Next()); err != nil {
				return err
			}
		}
		app.Drain()
		d := ap.Tick()
		width := app.ActiveServers()
		arrow := " "
		if width != before {
			arrow = fmt.Sprintf("  %d -> %d servers", before, width)
		}
		fmt.Printf("round %2d  %-5s %6d tuples  width %d  %-9s %s%s\n",
			round, phase, tuples, width, d.Action, d.Reason, arrow)
	}

	st := ap.Status()
	if st.Scale != nil {
		fmt.Printf("\n%d scale operations; final width %d/%d; %d tuples lost\n",
			st.Scale.Scales, st.Scale.Active, st.Scale.Capacity, app.TuplesLost())
		if last := st.Scale.LastResult; last != nil {
			fmt.Printf("last: %d -> %d servers, moved %d keys (bound %d), v%d\n",
				last.From, last.To, last.MovedKeys, last.MoveBound, last.Version)
		}
	}
	return nil
}
