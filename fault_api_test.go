package locastream_test

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	locastream "github.com/locastream/locastream"
)

// TestFaultToleranceFailover drives a full failover through the public
// API alone: checkpoint, kill a server, detect on a manual clock,
// recover — with the autopilot pausing for the recovery and serving the
// subsystem's status on /checkpoints.
func TestFaultToleranceFailover(t *testing.T) {
	dir := t.TempDir()
	app, err := locastream.NewApp(geoTopology(t, 3), locastream.WithServers(3))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	ap, err := app.NewAutopilot(locastream.AutopilotOptions{CostPerKey: 1})
	if err != nil {
		t.Fatal(err)
	}

	var phases []locastream.FaultPhase
	ft, err := app.NewFaultTolerance(locastream.FaultToleranceOptions{
		SuspectAfter: time.Second,
		ConfirmAfter: 2 * time.Second,
		Dir:          dir,
		Autopilot:    ap,
		OnEvent:      func(e locastream.FaultEvent) { phases = append(phases, e.Phase) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Stop()

	// Converge the application, then checkpoint it.
	injectGeo(t, app, 2400)
	if d := ap.Tick(); d.Action != locastream.Deployed {
		t.Fatalf("tick = %s (%s), want deployed", d.Action, d.Reason)
	}
	injectGeo(t, app, 2400)
	t0 := time.Unix(5000, 0)
	if err := ft.Tick(t0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoints.jsonl")); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}

	// Kill one server and let the manual clock confirm it.
	if err := app.KillServer(2); err != nil {
		t.Fatal(err)
	}
	if app.ServerAlive(2) {
		t.Fatal("killed server still alive")
	}
	for _, d := range []time.Duration{1, 2} {
		if err := ft.Tick(t0.Add(d * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	app.Drain()

	want := []locastream.FaultPhase{
		locastream.CheckpointTaken, locastream.ServerSuspected, locastream.ServerFailed,
		locastream.CheckpointTaken, locastream.RecoveryArmed, locastream.RecoveryRouted,
		locastream.ServerRecovered,
	}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phase %d = %q, want %q", i, phases[i], want[i])
		}
	}

	st := ft.Status()
	if st.Fault.Failures != 1 || st.Fault.Recoveries != 1 {
		t.Fatalf("fault status = %+v", st.Fault)
	}
	if len(st.Liveness) != 3 || st.Liveness[2] != "confirmed" {
		t.Fatalf("liveness = %v", st.Liveness)
	}
	reports := ft.Recoveries()
	if len(reports) != 1 || reports[0].Server != 2 || reports[0].MovedKeys == 0 {
		t.Fatalf("recoveries = %+v", reports)
	}

	// The autopilot observed the failure, paused, and resumed with the
	// repair version.
	apst := ap.Status()
	if apst.Paused || apst.Failures != 1 || apst.FailureRecoveries != 1 {
		t.Fatalf("autopilot status = %+v", apst)
	}
	if apst.Version < reports[0].Version {
		t.Fatalf("autopilot version %d behind repair version %d", apst.Version, reports[0].Version)
	}

	// /checkpoints serves the subsystem's status through the autopilot.
	rec := httptest.NewRecorder()
	ap.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/checkpoints", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /checkpoints = %d: %s", rec.Code, rec.Body.String())
	}
	var served locastream.FaultStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &served); err != nil {
		t.Fatalf("GET /checkpoints: %v", err)
	}
	if served.Fault.Recoveries != 1 {
		t.Fatalf("GET /checkpoints = %+v", served)
	}

	// The stream still flows on the survivors, and the recovered keys'
	// traffic stays as local as the surviving assignment allows.
	injectGeo(t, app, 2400)
	if lost := app.TuplesLost(); lost > 0 {
		t.Logf("bounded loss across the failure: %d tuples", lost)
	}
	if err := ft.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := ft.Stop(); err != nil {
		t.Fatal("second Stop errored:", err)
	}
}

// TestStartFaultToleranceBackgroundLoop smoke-tests the background
// variant through the public API.
func TestStartFaultToleranceBackgroundLoop(t *testing.T) {
	app, err := locastream.NewApp(geoTopology(t, 2), locastream.WithServers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	injectGeo(t, app, 600)

	ft, err := app.StartFaultTolerance(locastream.FaultToleranceOptions{
		CheckpointEvery: time.Millisecond,
		ProbeEvery:      time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for ft.Status().Fault.Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never checkpointed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := ft.Stop(); err != nil {
		t.Fatal(err)
	}
}
