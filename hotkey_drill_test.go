package locastream

import (
	"strconv"
	"testing"
)

// drillResult captures one run of the skewed drill: the per-server load
// of the measured window, the end-to-end locality, and the hot-key
// bookkeeping for the loss check.
type drillResult struct {
	maxServerLoad uint64
	locality      float64 // tail-only window (see runSkewDrill)
	hotTotal      uint64
	counted       uint64 // hot occurrences summed over instances, per op (equal across ops)
	holders       int    // instances holding hot-key state at the end (max over ops)
	lost          uint64
	promotions    int
	demotions     int
}

// runSkewDrill drives the deterministic skewed workload through a 4-server
// deployment: a hot key takes hotShare% of the stream, the tail is a set
// of correlated key pairs the optimizer can still improve. Each window is
// followed by one autopilot tick, so the split run walks the full
// promote → reconfigure → demote cycle with a manual clock and no sleeps.
func runSkewDrill(t *testing.T, split bool) drillResult {
	t.Helper()
	const (
		servers  = 4
		window   = 800
		hotShare = 60
	)
	topo, err := NewTopology("drill").
		AddOperator(Operator{Name: "A", Parallelism: servers, Stateful: true,
			New: func() Processor { return NewCounter(0) }}).
		AddOperator(Operator{Name: "B", Parallelism: servers, Stateful: true,
			New: func() Processor { return NewCounter(1) }}).
		Connect("A", "B", Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{
		WithServers(servers),
		WithOptimizer(0, 0, 7),
		WithMaxInFlight(4096),
	}
	if split {
		opts = append(opts, WithKeySplitting())
	}
	app, err := NewApp(topo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	ap, err := app.NewAutopilot(AutopilotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Stop()

	res := drillResult{}
	inject := func(share int) {
		for i := 0; i < window; i++ {
			k := "t" + strconv.Itoa(i%16)
			if i%100 < share {
				k = "hot"
				res.hotTotal++
			}
			if err := app.Inject(Tuple{Values: []string{k, k}}); err != nil {
				t.Fatal(err)
			}
		}
		app.Drain()
	}

	// Two hot windows: with splitting on, the second tick promotes
	// (Confirm = 2); either way the ticks deploy routing tables for the
	// tail, so the measured window below runs on optimized routing.
	inject(hotShare)
	ap.Tick()
	inject(hotShare)
	ap.Tick()

	// Measured window: fully split (when enabled) on deployed tables.
	// Round-robin placement with parallelism == servers puts instance i
	// of both operators on server i.
	before := make([]uint64, servers)
	for _, op := range []string{"A", "B"} {
		for i, n := range app.Loads(op) {
			before[i] += n
		}
	}
	inject(hotShare)
	ap.Tick()
	after := make([]uint64, servers)
	for _, op := range []string{"A", "B"} {
		for i, n := range app.Loads(op) {
			after[i] += n
		}
	}
	for i := 0; i < servers; i++ {
		if d := after[i] - before[i]; d > res.maxServerLoad {
			res.maxServerLoad = d
		}
	}

	// Cooling windows: the hot key vanishes; with splitting on, the
	// second cold tick demotes and merges the partials back. The first
	// cold window doubles as the tail-locality measurement: pure tail
	// traffic on the deployed tables, with the split (when enabled)
	// still installed — the hot key's own 2-choice traffic is remote by
	// design, so the preservation claim is about the tail.
	tb := app.FieldsTraffic()
	inject(0)
	ta := app.FieldsTraffic()
	res.locality = float64(ta.LocalTuples-tb.LocalTuples) / float64(ta.Total()-tb.Total())
	ap.Tick()
	inject(0)
	ap.Tick()
	// One more plain window proves post-demote routing still flows.
	inject(0)
	app.Drain()
	res.lost = app.TuplesLost()
	st := ap.Status()
	res.promotions = st.Promotions
	res.demotions = st.Demotions
	for _, op := range []string{"A", "B"} {
		var total uint64
		holders := 0
		for i := 0; i < servers; i++ {
			var n uint64
			if err := app.ProcessorState(op, i, func(p Processor) {
				n = p.(interface{ Count(string) uint64 }).Count("hot")
			}); err != nil {
				t.Fatal(err)
			}
			if n > 0 {
				holders++
			}
			total += n
		}
		if res.counted == 0 {
			res.counted = total
		} else if total != res.counted {
			t.Fatalf("%s counted %d hot tuples, other op counted %d", op, total, res.counted)
		}
		if holders > res.holders {
			res.holders = holders
		}
	}
	return res
}

// TestHotKeyDrill is the acceptance drill for hot-key splitting: on an
// identical deterministic skewed stream, the split run must cut the
// hottest server's measured-window load by at least 30%, keep tail
// locality within 5 points of the unsplit run (the tail still enjoys
// the paper's routing-table treatment), and lose nothing through the
// full promote → reconfigure → demote cycle.
func TestHotKeyDrill(t *testing.T) {
	unsplit := runSkewDrill(t, false)
	split := runSkewDrill(t, true)
	t.Logf("max server load: unsplit=%d split=%d (%.0f%% relief); locality: unsplit=%.3f split=%.3f",
		unsplit.maxServerLoad, split.maxServerLoad,
		100*(1-float64(split.maxServerLoad)/float64(unsplit.maxServerLoad)),
		unsplit.locality, split.locality)

	if unsplit.promotions != 0 || split.promotions == 0 {
		t.Fatalf("promotions: unsplit=%d split=%d", unsplit.promotions, split.promotions)
	}
	if split.demotions != split.promotions {
		t.Fatalf("split run ended with %d promotions but %d demotions", split.promotions, split.demotions)
	}

	// Load relief: >= 30% off the hottest server during the split window.
	if limit := unsplit.maxServerLoad * 7 / 10; split.maxServerLoad > limit {
		t.Fatalf("max server load %d, want <= 70%% of unsplit %d",
			split.maxServerLoad, unsplit.maxServerLoad)
	}

	// The tail's locality is preserved: within 5 points of the unsplit run.
	if split.locality < unsplit.locality-0.05 {
		t.Fatalf("tail locality %.3f fell more than 5 points below unsplit %.3f",
			split.locality, unsplit.locality)
	}

	// Zero loss, exact counting, single owner after demote — for both runs.
	for name, r := range map[string]drillResult{"unsplit": unsplit, "split": split} {
		if r.lost != 0 {
			t.Fatalf("%s run lost %d tuples", name, r.lost)
		}
		if r.counted != r.hotTotal {
			t.Fatalf("%s run counted %d hot tuples, injected %d", name, r.counted, r.hotTotal)
		}
		if r.holders != 1 {
			t.Fatalf("%s run ends with hot-key state on %d instances, want 1", name, r.holders)
		}
	}
}
