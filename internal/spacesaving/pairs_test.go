package spacesaving

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodePairRoundTrip(t *testing.T) {
	tests := []struct{ in, out string }{
		{"Asia", "#java"},
		{"", ""},
		{"a\x1fb", "c"},
		{"\x1f", "\x1f\x1f"},
		{"plain", "keys"},
	}
	for _, tt := range tests {
		enc := EncodePair(tt.in, tt.out)
		in, out, ok := DecodePair(enc)
		if !ok || in != tt.in || out != tt.out {
			t.Errorf("round trip (%q,%q) -> %q -> (%q,%q,%v)", tt.in, tt.out, enc, in, out, ok)
		}
	}
}

func TestDecodePairInvalid(t *testing.T) {
	for _, give := range []string{"", "abc", ":rest", "12", "99:short", "-1:x", "1x:ab"} {
		if in, out, ok := DecodePair(give); ok {
			t.Errorf("DecodePair(%q) = (%q,%q,true), want invalid", give, in, out)
		}
	}
}

func TestPropertyEncodeDecodePair(t *testing.T) {
	f := func(in, out string) bool {
		gotIn, gotOut, ok := DecodePair(EncodePair(in, out))
		return ok && gotIn == in && gotOut == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairSketchBasics(t *testing.T) {
	p := NewPairs(10)
	p.Add("Asia", "#java")
	p.Add("Asia", "#java")
	p.Add("Asia", "#ruby")
	p.AddWeighted("Oceania", "#python", 5)

	if p.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", p.Len())
	}
	if p.Observed() != 8 {
		t.Fatalf("Observed() = %d, want 8", p.Observed())
	}
	top := p.Top(2)
	if top[0].In != "Oceania" || top[0].Out != "#python" || top[0].Count != 5 {
		t.Fatalf("Top[0] = %+v, want Oceania/#python count 5", top[0])
	}
	if top[1].In != "Asia" || top[1].Out != "#java" || top[1].Count != 2 {
		t.Fatalf("Top[1] = %+v, want Asia/#java count 2", top[1])
	}
}

func TestPairSketchMergeAndReset(t *testing.T) {
	a := NewPairs(10)
	b := NewPairs(10)
	a.Add("x", "y")
	b.Add("x", "y")
	b.Add("u", "v")
	a.Merge(b)
	if a.Observed() != 3 {
		t.Fatalf("Observed() = %d, want 3", a.Observed())
	}
	cs := a.Counters()
	if len(cs) != 2 || cs[0].Count != 2 {
		t.Fatalf("Counters() = %+v, want x/y count 2 first", cs)
	}
	a.Merge(nil)
	a.Reset()
	if a.Len() != 0 || a.Observed() != 0 {
		t.Fatalf("after Reset: Len=%d Observed=%d", a.Len(), a.Observed())
	}
}

func TestPairSketchEvictionKeepsFrequent(t *testing.T) {
	// Capacity must comfortably exceed the churn of the one-off tail
	// (200 distinct pairs over 8 counters keeps the min count below
	// Europe's true frequency of 50).
	p := NewPairs(8)
	for i := 0; i < 100; i++ {
		p.Add("Asia", "#scala")
	}
	for i := 0; i < 50; i++ {
		p.Add("Europe", "#go")
	}
	for i := 0; i < 200; i++ {
		// Long tail of one-off pairs.
		p.Add("loc", "#tag"+string(rune('a'+i%26))+string(rune('a'+i/26)))
	}
	top := p.Top(2)
	if top[0].In != "Asia" || top[1].In != "Europe" {
		t.Fatalf("Top(2) = %+v, want Asia then Europe pairs", top)
	}
}
