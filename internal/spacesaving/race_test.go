package spacesaving

import (
	"strconv"
	"sync"
	"testing"
)

// TestSketchConcurrentAddTopReset hammers Add from several goroutines
// while others call Top, Counters, Count and Reset. Run with -race it is
// the regression test for the historically unguarded Sketch internals:
// before the internal mutex, any controller snapshot concurrent with the
// hot path corrupted the bucket list.
func TestSketchConcurrentAddTopReset(t *testing.T) {
	s := New(64)
	const (
		writers = 4
		readers = 2
		rounds  = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s.Add("k" + strconv.Itoa((i*7+w)%97))
				s.AddWeighted("hot", 2)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				top := s.Top(8)
				for j := 1; j < len(top); j++ {
					if top[j].Count > top[j-1].Count {
						t.Error("Top not sorted by descending count")
						return
					}
				}
				s.Count("hot")
				s.GuaranteedCount("hot")
				if i%250 == 249 {
					s.Reset()
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() > s.Capacity() {
		t.Fatalf("sketch over capacity: %d > %d", s.Len(), s.Capacity())
	}
}

// TestPairSketchConcurrentAddTop covers the PairSketch wrapper, whose
// reusable encode buffer was a second race surface: two concurrent
// AddWeighted calls used to append into the same buf.
func TestPairSketchConcurrentAddTop(t *testing.T) {
	p := NewPairs(64)
	const rounds = 1000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				p.Add("in"+strconv.Itoa(i%31), "out"+strconv.Itoa(w))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			for _, pc := range p.Top(8) {
				if pc.In == "" && pc.Out == "" {
					t.Error("empty decoded pair")
					return
				}
			}
			if i%250 == 249 {
				p.Reset()
			}
		}
	}()
	wg.Wait()
}

// TestSketchConcurrentMerge checks Merge against a concurrently mutated
// source sketch: the snapshot-then-fold implementation must not deadlock
// or corrupt either sketch.
func TestSketchConcurrentMerge(t *testing.T) {
	src := New(32)
	dst := New(32)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			src.Add("k" + strconv.Itoa(i%17))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			dst.Merge(src)
		}
	}()
	wg.Wait()
	// Self-merge must not deadlock.
	before := dst.Observed()
	dst.Merge(dst)
	if got := dst.Observed(); got != 2*before {
		t.Fatalf("self-merge observed = %d, want %d", got, 2*before)
	}
}
