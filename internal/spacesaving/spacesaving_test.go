package spacesaving

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptySketch(t *testing.T) {
	s := New(4)
	if s.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", s.Len())
	}
	if s.Observed() != 0 {
		t.Fatalf("Observed() = %d, want 0", s.Observed())
	}
	if c, ok := s.Count("missing"); ok || c != 0 {
		t.Fatalf("Count(missing) = (%d, %v), want (0, false)", c, ok)
	}
	if got := s.Counters(); len(got) != 0 {
		t.Fatalf("Counters() = %v, want empty", got)
	}
}

func TestCapacityClamp(t *testing.T) {
	for _, give := range []int{-3, 0, 1} {
		s := New(give)
		if s.Capacity() != 1 && give < 1 {
			t.Errorf("New(%d).Capacity() = %d, want 1", give, s.Capacity())
		}
	}
}

func TestExactWhenUnderCapacity(t *testing.T) {
	s := New(10)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Add(fmt.Sprintf("k%d", i))
		}
	}
	for i := 0; i < 5; i++ {
		item := fmt.Sprintf("k%d", i)
		c, ok := s.Count(item)
		if !ok || c != uint64(i+1) {
			t.Errorf("Count(%s) = (%d, %v), want (%d, true)", item, c, ok, i+1)
		}
		if e := s.Error(item); e != 0 {
			t.Errorf("Error(%s) = %d, want 0 (no eviction happened)", item, e)
		}
	}
}

func TestTopOrdering(t *testing.T) {
	s := New(10)
	counts := map[string]int{"a": 7, "b": 3, "c": 9, "d": 1}
	for item, n := range counts {
		for i := 0; i < n; i++ {
			s.Add(item)
		}
	}
	top := s.Top(3)
	want := []string{"c", "a", "b"}
	if len(top) != 3 {
		t.Fatalf("len(Top(3)) = %d, want 3", len(top))
	}
	for i, w := range want {
		if top[i].Item != w {
			t.Errorf("Top[%d] = %q, want %q", i, top[i].Item, w)
		}
	}
}

func TestTopTieBreakDeterministic(t *testing.T) {
	s := New(10)
	for _, item := range []string{"z", "m", "a"} {
		s.Add(item)
		s.Add(item)
	}
	top := s.Top(3)
	want := []string{"a", "m", "z"}
	for i, w := range want {
		if top[i].Item != w {
			t.Errorf("Top[%d] = %q, want %q (ties by item)", i, top[i].Item, w)
		}
	}
}

func TestEvictionInheritsMinCount(t *testing.T) {
	s := New(2)
	s.Add("a") // a:1
	s.Add("a") // a:2
	s.Add("b") // b:1
	s.Add("c") // evicts b (min=1): c gets count 2, error 1
	c, ok := s.Count("c")
	if !ok || c != 2 {
		t.Fatalf("Count(c) = (%d, %v), want (2, true)", c, ok)
	}
	if e := s.Error("c"); e != 1 {
		t.Fatalf("Error(c) = %d, want 1", e)
	}
	if g := s.GuaranteedCount("c"); g != 1 {
		t.Fatalf("GuaranteedCount(c) = %d, want 1", g)
	}
	if _, ok := s.Count("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestNeverUnderestimates(t *testing.T) {
	// Core SpaceSaving guarantee: for monitored items, estimate >= truth.
	rng := rand.New(rand.NewSource(42))
	s := New(8)
	truth := make(map[string]uint64)
	for i := 0; i < 5000; i++ {
		// Zipf-ish skew over 50 items.
		item := fmt.Sprintf("item%d", int(rng.ExpFloat64()*6)%50)
		truth[item]++
		s.Add(item)
	}
	for _, c := range s.Counters() {
		if c.Count < truth[c.Item] {
			t.Errorf("item %s: estimate %d < true %d", c.Item, c.Count, truth[c.Item])
		}
		if c.Count-c.Error > truth[c.Item] {
			t.Errorf("item %s: guaranteed %d > true %d", c.Item, c.Count-c.Error, truth[c.Item])
		}
	}
}

func TestHeavyHitterAlwaysMonitored(t *testing.T) {
	// An item with frequency > observed/capacity is guaranteed monitored.
	s := New(5)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		if rng.Intn(100) < 40 { // "hot" appears 40% of the time
			s.Add("hot")
		} else {
			s.Add(fmt.Sprintf("cold%d", rng.Intn(1000)))
		}
	}
	if _, ok := s.Count("hot"); !ok {
		t.Fatal("heavy hitter evicted from sketch")
	}
	if s.Top(1)[0].Item != "hot" {
		t.Fatalf("Top(1) = %q, want hot", s.Top(1)[0].Item)
	}
}

func TestCountSumInvariant(t *testing.T) {
	// Sum of all monitored counts equals total observed when the sketch
	// never evicts, and equals observed plus inherited overestimates in
	// general; in all cases sum >= observed - (evicted weight) and the
	// sum of counts never drops below the observed count of any single
	// monitored item. We check the documented invariant: sum(Count) >=
	// Observed() is NOT generally true, but sum(Count) <= Observed() +
	// capacity*maxError holds. Simpler exact property: with no evictions
	// sum == observed.
	s := New(100)
	for i := 0; i < 1000; i++ {
		s.Add(fmt.Sprintf("k%d", i%50))
	}
	var sum uint64
	for _, c := range s.Counters() {
		sum += c.Count
	}
	if sum != s.Observed() {
		t.Fatalf("sum of counts %d != observed %d (no evictions expected)", sum, s.Observed())
	}
}

func TestAddWeighted(t *testing.T) {
	s := New(4)
	s.AddWeighted("a", 10)
	s.AddWeighted("a", 0) // ignored
	s.AddWeighted("b", 3)
	if c, _ := s.Count("a"); c != 10 {
		t.Fatalf("Count(a) = %d, want 10", c)
	}
	if c, _ := s.Count("b"); c != 3 {
		t.Fatalf("Count(b) = %d, want 3", c)
	}
	if s.Observed() != 13 {
		t.Fatalf("Observed() = %d, want 13", s.Observed())
	}
}

func TestReset(t *testing.T) {
	s := New(4)
	s.Add("a")
	s.Add("b")
	s.Reset()
	if s.Len() != 0 || s.Observed() != 0 {
		t.Fatalf("after Reset: Len=%d Observed=%d, want 0/0", s.Len(), s.Observed())
	}
	s.Add("c")
	if c, ok := s.Count("c"); !ok || c != 1 {
		t.Fatalf("Count(c) after reset = (%d,%v), want (1,true)", c, ok)
	}
}

func TestMerge(t *testing.T) {
	a := New(10)
	b := New(10)
	a.Add("x")
	a.Add("x")
	b.Add("x")
	b.Add("y")
	a.Merge(b)
	if c, _ := a.Count("x"); c != 3 {
		t.Fatalf("Count(x) = %d, want 3", c)
	}
	if c, _ := a.Count("y"); c != 1 {
		t.Fatalf("Count(y) = %d, want 1", c)
	}
	if a.Observed() != 4 {
		t.Fatalf("Observed() = %d, want 4", a.Observed())
	}
	a.Merge(nil) // must not panic
}

func TestMinBucketMaintenance(t *testing.T) {
	// Regression-style test for the linked bucket structure: interleave
	// increments so buckets are created and destroyed repeatedly.
	s := New(3)
	seq := []string{"a", "b", "c", "a", "b", "a", "d", "d", "d", "e"}
	for _, item := range seq {
		s.Add(item)
	}
	// Verify the counters are internally consistent: ascending bucket
	// order equals sorted counts.
	cs := s.Counters()
	if !sort.SliceIsSorted(cs, func(i, j int) bool {
		if cs[i].Count != cs[j].Count {
			return cs[i].Count > cs[j].Count
		}
		return cs[i].Item < cs[j].Item
	}) {
		t.Fatalf("Counters() not sorted: %v", cs)
	}
	if s.Len() != 3 {
		t.Fatalf("Len() = %d, want capacity 3", s.Len())
	}
}

func TestPropertyEstimateBounds(t *testing.T) {
	// Property: for any random stream, every monitored item satisfies
	// truth <= estimate and estimate - error <= truth, and the number of
	// monitored items never exceeds capacity.
	f := func(seed int64, capRaw uint8, length uint16) bool {
		capacity := int(capRaw)%32 + 1
		rng := rand.New(rand.NewSource(seed))
		s := New(capacity)
		truth := make(map[string]uint64)
		for i := 0; i < int(length); i++ {
			item := fmt.Sprintf("k%d", rng.Intn(40))
			truth[item]++
			s.Add(item)
		}
		if s.Len() > capacity {
			return false
		}
		for _, c := range s.Counters() {
			if c.Count < truth[c.Item] {
				return false
			}
			if c.Count-c.Error > truth[c.Item] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyObservedAccounting(t *testing.T) {
	// Property: Observed equals the number of Add calls regardless of
	// evictions.
	f := func(seed int64, length uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(4)
		for i := 0; i < int(length); i++ {
			s.Add(fmt.Sprintf("k%d", rng.Intn(100)))
		}
		return s.Observed() == uint64(length)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSketchAdd(b *testing.B) {
	s := New(1024)
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(keys[i%len(keys)])
	}
}

func BenchmarkSketchAddSkewed(b *testing.B) {
	s := New(1024)
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<16)
	keys := make([]string, 1<<16)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	idx := make([]uint64, 1<<14)
	for i := range idx {
		idx[i] = zipf.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(keys[idx[i%len(idx)]])
	}
}
