package spacesaving

import "strconv"

// EncodePair packs two routing keys into a single sketch item using a
// length-prefixed encoding that is unambiguous for arbitrary key bytes.
func EncodePair(in, out string) string {
	return strconv.Itoa(len(in)) + ":" + in + out
}

// appendPair is EncodePair into a reusable byte buffer.
func appendPair(buf []byte, in, out string) []byte {
	buf = strconv.AppendInt(buf, int64(len(in)), 10)
	buf = append(buf, ':')
	buf = append(buf, in...)
	return append(buf, out...)
}

// DecodePair is the inverse of EncodePair. ok is false when item is not a
// valid encoded pair.
func DecodePair(item string) (in, out string, ok bool) {
	colon := -1
	for i := 0; i < len(item); i++ {
		if item[i] == ':' {
			colon = i
			break
		}
		if item[i] < '0' || item[i] > '9' {
			return "", "", false
		}
	}
	if colon <= 0 {
		return "", "", false
	}
	n, err := strconv.Atoi(item[:colon])
	if err != nil || n < 0 || colon+1+n > len(item) {
		return "", "", false
	}
	return item[colon+1 : colon+1+n], item[colon+1+n:], true
}

// PairCounter reports one (input key, output key) association and its
// estimated co-occurrence count.
type PairCounter struct {
	In    string
	Out   string
	Count uint64
	Error uint64
}

// PairSketch tracks the most frequent (input key, output key) pairs seen
// by a stateful operator instance, as required by §3.2 of the paper. It is
// a thin typed wrapper over Sketch.
type PairSketch struct {
	s   *Sketch
	buf []byte // reusable encode buffer; makes Add allocation-free
}

// NewPairs returns a pair sketch monitoring at most capacity pairs.
func NewPairs(capacity int) *PairSketch {
	return &PairSketch{s: New(capacity)}
}

// Add records a co-occurrence of the in and out keys.
func (p *PairSketch) Add(in, out string) { p.AddWeighted(in, out, 1) }

// AddWeighted records weight co-occurrences of the in and out keys. The
// pair is encoded into a buffer owned by the sketch, so recording an
// already monitored pair allocates nothing. The encode buffer is guarded
// by the underlying sketch's mutex, keeping the per-tuple hot path at a
// single lock acquisition while making concurrent Add vs Top/Reset safe.
func (p *PairSketch) AddWeighted(in, out string, weight uint64) {
	if weight == 0 {
		return
	}
	p.s.mu.Lock()
	p.buf = appendPair(p.buf[:0], in, out)
	p.s.addBytesLocked(p.buf, weight)
	p.s.mu.Unlock()
}

// Len returns the number of monitored pairs.
func (p *PairSketch) Len() int { return p.s.Len() }

// Capacity returns the maximum number of monitored pairs.
func (p *PairSketch) Capacity() int { return p.s.Capacity() }

// Observed returns the total number of pairs offered.
func (p *PairSketch) Observed() uint64 { return p.s.Observed() }

// Top returns up to k pairs by descending estimated count.
func (p *PairSketch) Top(k int) []PairCounter {
	raw := p.s.Top(k)
	out := make([]PairCounter, 0, len(raw))
	for _, c := range raw {
		in, o, ok := DecodePair(c.Item)
		if !ok {
			continue
		}
		out = append(out, PairCounter{In: in, Out: o, Count: c.Count, Error: c.Error})
	}
	return out
}

// Counters returns every monitored pair by descending estimated count.
func (p *PairSketch) Counters() []PairCounter { return p.Top(p.s.Len()) }

// Reset discards all pair counters.
func (p *PairSketch) Reset() { p.s.Reset() }

// Merge folds other into p; other is left unchanged.
func (p *PairSketch) Merge(other *PairSketch) {
	if other == nil {
		return
	}
	p.s.Merge(other.s)
}
