// Package spacesaving implements the SpaceSaving algorithm of Metwally,
// Agrawal and El Abbadi ("Efficient Computation of Frequent and Top-k
// Elements in Data Streams", ICDT 2005).
//
// SpaceSaving maintains an approximate list of the most frequent items of
// a stream using a bounded number of counters. When an unmonitored item
// arrives and all counters are in use, the item with the minimum count is
// evicted and its counter (plus one) is inherited by the newcomer; the
// inherited amount is remembered as the estimation error of the new item.
//
// The implementation uses the "stream summary" layout from the paper: a
// doubly linked list of buckets in strictly increasing count order, where
// each bucket holds the items sharing that exact count. All operations are
// O(1) amortized per stream element.
//
// The paper reproduced by this repository (Caneill et al., Middleware'16,
// §3.2) uses SpaceSaving to track the most frequent pairs of consecutive
// routing keys with a bounded memory budget per operator instance.
package spacesaving

import (
	"sort"
	"sync"
)

// Counter is the externally visible record for one monitored item.
type Counter struct {
	// Item is the monitored stream element.
	Item string
	// Count is the estimated frequency of Item. It never underestimates
	// the true frequency and overestimates it by at most Error.
	Count uint64
	// Error is the maximum overestimation of Count, i.e. the count
	// inherited when Item took over an evicted counter.
	Error uint64
}

// bucket groups all items that currently share the same count value.
// Buckets form a doubly linked list in strictly increasing count order.
type bucket struct {
	count      uint64
	prev, next *bucket
	head       *node // any node of the bucket's item list
	size       int
}

// node is one monitored item. Nodes belonging to the same bucket form a
// circular doubly linked list.
type node struct {
	item       string
	err        uint64
	b          *bucket
	prev, next *node
}

// Sketch is a SpaceSaving stream summary with a fixed capacity of
// monitored items. The zero value is not usable; call New.
//
// Sketch is safe for concurrent use: every exported method takes an
// internal mutex. Operator instances still own their sketches and access
// them from one goroutine in the steady state, but control-plane readers
// (controller snapshots, the hot-key promotion path) may call Top or
// Reset while the owner keeps adding; the mutex makes those interleavings
// well-defined instead of racy.
type Sketch struct {
	mu       sync.Mutex
	capacity int
	items    map[string]*node
	min      *bucket // bucket with the smallest count, or nil when empty
	observed uint64  // total stream elements offered
	free     *bucket // freelist of emptied buckets, chained via next
}

// New returns a sketch that monitors at most capacity distinct items.
// capacity must be at least 1; smaller values are raised to 1.
func New(capacity int) *Sketch {
	if capacity < 1 {
		capacity = 1
	}
	return &Sketch{
		capacity: capacity,
		items:    make(map[string]*node, capacity),
	}
}

// Capacity returns the maximum number of monitored items.
func (s *Sketch) Capacity() int { return s.capacity }

// Len returns the number of currently monitored items.
func (s *Sketch) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Observed returns the total weight offered to the sketch.
func (s *Sketch) Observed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.observed
}

// Add records one occurrence of item.
func (s *Sketch) Add(item string) { s.AddWeighted(item, 1) }

// AddWeighted records weight occurrences of item. Zero weights are
// ignored.
func (s *Sketch) AddWeighted(item string, weight uint64) {
	if weight == 0 {
		return
	}
	s.mu.Lock()
	s.addLocked(item, weight)
	s.mu.Unlock()
}

// addLocked is AddWeighted with s.mu held.
func (s *Sketch) addLocked(item string, weight uint64) {
	s.observed += weight
	if n, ok := s.items[item]; ok {
		s.increment(n, weight)
		return
	}
	s.insertNew(item, weight)
}

// AddBytesWeighted is AddWeighted for an item encoded in a reusable byte
// buffer. Monitored items are incremented without any allocation (the
// map lookup with an inline string conversion does not copy); the string
// is materialized only when the item enters the sketch. This keeps
// high-frequency instrumentation (the engine's per-tuple key-pair
// counting) allocation-free in the steady state.
func (s *Sketch) AddBytesWeighted(item []byte, weight uint64) {
	if weight == 0 {
		return
	}
	s.mu.Lock()
	s.addBytesLocked(item, weight)
	s.mu.Unlock()
}

// addBytesLocked is AddBytesWeighted with s.mu held (PairSketch reuses
// the sketch mutex to also guard its encode buffer, keeping the per-tuple
// hot path at a single lock acquisition).
func (s *Sketch) addBytesLocked(item []byte, weight uint64) {
	s.observed += weight
	if n, ok := s.items[string(item)]; ok {
		s.increment(n, weight)
		return
	}
	s.insertNew(string(item), weight)
}

// insertNew admits an unmonitored item, evicting a minimum-count item
// when the sketch is full: the newcomer inherits min+weight and records
// min as its error bound.
func (s *Sketch) insertNew(item string, weight uint64) {
	if len(s.items) < s.capacity {
		n := &node{item: item}
		s.items[item] = n
		s.attach(n, weight)
		return
	}
	victim := s.min.head
	minCount := s.min.count
	delete(s.items, victim.item)
	s.detach(victim)
	victim.item = item
	victim.err = minCount
	s.items[item] = victim
	s.attach(victim, minCount+weight)
}

// Count returns the estimated frequency of item and whether the item is
// currently monitored. Unmonitored items report the sketch's minimum
// count as the upper bound of their true frequency, with ok == false.
func (s *Sketch) Count(item string) (count uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, found := s.items[item]; found {
		return n.b.count, true
	}
	if s.min != nil {
		return s.min.count, false
	}
	return 0, false
}

// Error returns the estimation error recorded for item (0 when the item
// is not monitored).
func (s *Sketch) Error(item string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.items[item]; ok {
		return n.err
	}
	return 0
}

// GuaranteedCount returns the lower bound Count - Error for item.
func (s *Sketch) GuaranteedCount(item string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.items[item]
	if !ok {
		return 0
	}
	return n.b.count - n.err
}

// Top returns up to k counters ordered by descending estimated count.
// Ties are broken by ascending item string so results are deterministic.
func (s *Sketch) Top(k int) []Counter {
	all := s.Counters()
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// Counters returns every monitored counter, ordered by descending count
// then ascending item.
func (s *Sketch) Counters() []Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.countersLocked()
}

// countersLocked is Counters with s.mu held.
func (s *Sketch) countersLocked() []Counter {
	out := make([]Counter, 0, len(s.items))
	for b := s.maxBucket(); b != nil; b = b.prev {
		n := b.head
		for i := 0; i < b.size; i++ {
			out = append(out, Counter{Item: n.item, Count: b.count, Error: n.err})
			n = n.next
		}
	}
	// Buckets yield descending counts already; order items inside each
	// count deterministically.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// Reset discards all counters and statistics. The paper's protocol resets
// sketches after every routing reconfiguration so that only recent data
// informs the next optimization (§3.2).
func (s *Sketch) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = make(map[string]*node, s.capacity)
	s.min = nil
	s.observed = 0
}

// Merge folds the counters of other into s (used when a single logical
// statistic is assembled from several operator threads). other is left
// unchanged. Merging a sketch into itself is a no-op-safe doubling of its
// counts; the snapshot below avoids holding both locks at once.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil {
		return
	}
	counters := other.Counters() // locks other only
	observed := other.Observed()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range counters {
		// Folded counts must not inflate observed: only the source
		// sketch's own observed total carries over.
		s.addLocked(c.Item, c.Count)
		s.observed -= c.Count
	}
	s.observed += observed
}

// --- internal linked-structure maintenance -------------------------------

// increment moves n from its current bucket to the bucket holding
// count+weight, creating it if needed.
func (s *Sketch) increment(n *node, weight uint64) {
	oldB := n.b
	target := oldB.count + weight
	hint := oldB
	// Capture before detach: when n is oldB's last item, detach unlinks
	// and recycles oldB, so its predecessor (still a live list member) is
	// the closest valid starting point.
	hintPrev := oldB.prev
	willEmpty := oldB.size == 1
	s.detach(n)
	if willEmpty {
		hint = hintPrev
	}
	s.insertWithHint(n, target, hint)
}

// attach inserts a brand-new node with the given count starting the
// search from the minimum bucket.
func (s *Sketch) attach(n *node, count uint64) {
	s.insertWithHint(n, count, nil)
}

// insertWithHint places n into the bucket with exactly count, searching
// forward from hint (or from the minimum bucket when hint is nil).
func (s *Sketch) insertWithHint(n *node, count uint64, hint *bucket) {
	cur := hint
	if cur == nil {
		cur = s.min
	}
	var prev *bucket
	if cur != nil {
		prev = cur.prev
	}
	for cur != nil && cur.count < count {
		prev = cur
		cur = cur.next
	}
	if cur != nil && cur.count == count {
		s.addToBucket(cur, n)
		return
	}
	nb := s.newBucket()
	nb.count, nb.prev, nb.next = count, prev, cur
	if prev != nil {
		prev.next = nb
	} else {
		s.min = nb
	}
	if cur != nil {
		cur.prev = nb
	}
	s.addToBucket(nb, n)
}

func (s *Sketch) addToBucket(b *bucket, n *node) {
	n.b = b
	if b.head == nil {
		n.prev, n.next = n, n
		b.head = n
	} else {
		tail := b.head.prev
		n.prev, n.next = tail, b.head
		tail.next = n
		b.head.prev = n
	}
	b.size++
}

// detach removes n from its bucket, deleting the bucket when it empties.
func (s *Sketch) detach(n *node) {
	b := n.b
	if b.size == 1 {
		b.head = nil
	} else {
		n.prev.next = n.next
		n.next.prev = n.prev
		if b.head == n {
			b.head = n.next
		}
	}
	b.size--
	n.prev, n.next, n.b = nil, nil, nil
	if b.size == 0 {
		if b.prev != nil {
			b.prev.next = b.next
		} else {
			s.min = b.next
		}
		if b.next != nil {
			b.next.prev = b.prev
		}
		s.recycleBucket(b)
	}
}

// newBucket pops a recycled bucket or allocates one. At most capacity+1
// buckets are ever live, so the freelist — fed only by emptied buckets —
// is bounded too; recycling keeps the per-increment bucket churn of a hot
// sketch allocation-free.
func (s *Sketch) newBucket() *bucket {
	if b := s.free; b != nil {
		s.free = b.next
		b.next = nil
		return b
	}
	return &bucket{}
}

func (s *Sketch) recycleBucket(b *bucket) {
	*b = bucket{next: s.free}
	s.free = b
}

func (s *Sketch) maxBucket() *bucket {
	b := s.min
	if b == nil {
		return nil
	}
	for b.next != nil {
		b = b.next
	}
	return b
}
