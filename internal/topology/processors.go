package topology

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Counter is a stateful processor that counts occurrences of the key in
// the configured tuple field and forwards tuples unchanged. It is the
// operator used throughout the paper's evaluation ("computes statistics
// based on the first field of the tuples by counting the number of
// occurrences of its different values", §4.1).
//
// Counter implements Keyed: per-key counts can be snapshotted and
// restored during state migration.
type Counter struct {
	// KeyField is the tuple field counted.
	KeyField int
	counts   map[string]uint64
}

var (
	_ Keyed     = (*Counter)(nil)
	_ Mergeable = (*Counter)(nil)
)

// NewCounter returns a Counter over the given tuple field.
func NewCounter(keyField int) *Counter {
	return &Counter{KeyField: keyField, counts: make(map[string]uint64)}
}

// Process increments the count of the tuple's key and forwards the tuple.
func (c *Counter) Process(t Tuple, emit Emit) {
	c.counts[t.Field(c.KeyField)]++
	emit(t)
}

// Count returns the current count for key.
func (c *Counter) Count(key string) uint64 { return c.counts[key] }

// SnapshotKey serializes the count of one key.
func (c *Counter) SnapshotKey(key string) ([]byte, bool) {
	v, ok := c.counts[key]
	if !ok {
		return nil, false
	}
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, v)
	return buf, true
}

// RestoreKey installs a migrated count; an existing count is added to,
// which makes restore idempotent only per migration (the protocol deletes
// before resending).
func (c *Counter) RestoreKey(key string, data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("counter: state for %q has %d bytes, want 8", key, len(data))
	}
	c.counts[key] += binary.BigEndian.Uint64(data)
	return nil
}

// MergeKey folds a partial count into the local count. Counts form a
// commutative monoid under addition, which is exactly the associative
// combine the hot-key splitting contract (Mergeable) requires.
func (c *Counter) MergeKey(key string, data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("counter: partial state for %q has %d bytes, want 8", key, len(data))
	}
	c.counts[key] += binary.BigEndian.Uint64(data)
	return nil
}

// DeleteKey drops the count of a migrated-away key.
func (c *Counter) DeleteKey(key string) { delete(c.counts, key) }

// StateKeys lists all keys with a count, sorted.
func (c *Counter) StateKeys() []string {
	keys := make([]string, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TotalCount returns the sum of all per-key counts (useful in tests to
// assert that migration lost nothing).
func (c *Counter) TotalCount() uint64 {
	var total uint64
	for _, v := range c.counts {
		total += v
	}
	return total
}

// MapFunc is a stateless processor applying fn to each tuple.
func MapFunc(fn func(Tuple) Tuple) Processor {
	return ProcessorFunc(func(t Tuple, emit Emit) { emit(fn(t)) })
}

// FlatMapFunc is a stateless processor that may emit any number of tuples
// per input.
func FlatMapFunc(fn func(Tuple) []Tuple) Processor {
	return ProcessorFunc(func(t Tuple, emit Emit) {
		for _, out := range fn(t) {
			emit(out)
		}
	})
}

// Passthrough forwards tuples unchanged.
func Passthrough() Processor {
	return ProcessorFunc(func(t Tuple, emit Emit) { emit(t) })
}
