package topology

import (
	"testing"
)

func feedTopK(t *TopK, key, value string, n int) {
	for i := 0; i < n; i++ {
		t.Process(Tuple{Values: []string{key, value}}, func(Tuple) {})
	}
}

func TestTopKRanksPerKey(t *testing.T) {
	tk := NewTopK(0, 1, 2, 64)
	feedTopK(tk, "Asia", "#java", 30)
	feedTopK(tk, "Asia", "#ruby", 20)
	feedTopK(tk, "Asia", "#go", 5)
	feedTopK(tk, "Europe", "#rust", 7)

	top := tk.Top("Asia")
	if len(top) != 2 {
		t.Fatalf("Top(Asia) = %d entries, want K=2", len(top))
	}
	if top[0].Item != "#java" || top[0].Count != 30 {
		t.Fatalf("Top(Asia)[0] = %+v", top[0])
	}
	if top[1].Item != "#ruby" {
		t.Fatalf("Top(Asia)[1] = %+v", top[1])
	}
	if got := tk.Top("Europe"); len(got) != 1 || got[0].Item != "#rust" {
		t.Fatalf("Top(Europe) = %+v", got)
	}
	if tk.Top("Mars") != nil {
		t.Fatal("unknown key should report nil")
	}
	if tk.Observed("Asia") != 55 || tk.Observed("Mars") != 0 {
		t.Fatalf("Observed = %d/%d", tk.Observed("Asia"), tk.Observed("Mars"))
	}
}

func TestTopKForwardsTuples(t *testing.T) {
	tk := NewTopK(0, 1, 3, 0)
	var out []Tuple
	tk.Process(Tuple{Values: []string{"k", "v"}, Padding: 9}, func(tu Tuple) {
		out = append(out, tu)
	})
	if len(out) != 1 || out[0].Padding != 9 {
		t.Fatalf("forwarded = %+v", out)
	}
}

func TestTopKClamping(t *testing.T) {
	tk := NewTopK(0, 1, 0, 0)
	if tk.K != 1 {
		t.Fatalf("K = %d, want clamp to 1", tk.K)
	}
	if tk.SketchCapacity < tk.K {
		t.Fatalf("capacity %d < K", tk.SketchCapacity)
	}
}

func TestTopKSnapshotRestoreRoundTrip(t *testing.T) {
	src := NewTopK(0, 1, 2, 64)
	feedTopK(src, "Asia", "#java", 30)
	feedTopK(src, "Asia", "#ruby", 20)
	feedTopK(src, "Europe", "#rust", 7)

	data, ok := src.SnapshotKey("Asia")
	if !ok {
		t.Fatal("SnapshotKey(Asia) missing")
	}
	if _, ok := src.SnapshotKey("Mars"); ok {
		t.Fatal("SnapshotKey(Mars) should be absent")
	}
	src.DeleteKey("Asia")
	if src.Top("Asia") != nil {
		t.Fatal("DeleteKey left state behind")
	}
	if src.Top("Europe") == nil {
		t.Fatal("DeleteKey removed unrelated key")
	}

	dst := NewTopK(0, 1, 2, 64)
	feedTopK(dst, "Asia", "#java", 3) // pre-existing partial state merges
	if err := dst.RestoreKey("Asia", data); err != nil {
		t.Fatal(err)
	}
	top := dst.Top("Asia")
	if top[0].Item != "#java" || top[0].Count != 33 {
		t.Fatalf("merged top = %+v, want #java 33", top[0])
	}
	if top[1].Item != "#ruby" || top[1].Count != 20 {
		t.Fatalf("merged second = %+v", top[1])
	}
}

func TestTopKRestoreBadData(t *testing.T) {
	tk := NewTopK(0, 1, 2, 64)
	if err := tk.RestoreKey("k", []byte("{not json")); err == nil {
		t.Fatal("bad payload accepted")
	}
}

func TestTopKStateKeysSorted(t *testing.T) {
	tk := NewTopK(0, 1, 2, 64)
	for _, k := range []string{"z", "a", "m"} {
		feedTopK(tk, k, "#v", 1)
	}
	keys := tk.StateKeys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "z" {
		t.Fatalf("StateKeys = %v", keys)
	}
}
