package topology

import (
	"strings"
	"testing"
)

func collect(p Processor, tuples ...Tuple) []Tuple {
	var out []Tuple
	for _, t := range tuples {
		p.Process(t, func(o Tuple) { out = append(out, o) })
	}
	return out
}

func TestCounterCountsAndForwards(t *testing.T) {
	c := NewCounter(0)
	in := []Tuple{
		{Values: []string{"a", "x"}},
		{Values: []string{"a", "y"}},
		{Values: []string{"b", "z"}},
	}
	out := collect(c, in...)
	if len(out) != 3 {
		t.Fatalf("forwarded %d tuples, want 3", len(out))
	}
	if c.Count("a") != 2 || c.Count("b") != 1 || c.Count("missing") != 0 {
		t.Fatalf("counts: a=%d b=%d", c.Count("a"), c.Count("b"))
	}
	if c.TotalCount() != 3 {
		t.Fatalf("TotalCount() = %d, want 3", c.TotalCount())
	}
}

func TestCounterSnapshotRestoreRoundTrip(t *testing.T) {
	c := NewCounter(0)
	for i := 0; i < 5; i++ {
		c.Process(Tuple{Values: []string{"k"}}, func(Tuple) {})
	}
	data, ok := c.SnapshotKey("k")
	if !ok {
		t.Fatal("SnapshotKey(k) missing")
	}
	if _, ok := c.SnapshotKey("absent"); ok {
		t.Fatal("SnapshotKey(absent) should be missing")
	}

	dst := NewCounter(0)
	if err := dst.RestoreKey("k", data); err != nil {
		t.Fatal(err)
	}
	if dst.Count("k") != 5 {
		t.Fatalf("restored count = %d, want 5", dst.Count("k"))
	}

	c.DeleteKey("k")
	if c.Count("k") != 0 {
		t.Fatal("DeleteKey did not remove state")
	}
}

func TestCounterRestoreBadData(t *testing.T) {
	c := NewCounter(0)
	if err := c.RestoreKey("k", []byte{1, 2, 3}); err == nil {
		t.Fatal("RestoreKey accepted short data")
	}
}

func TestCounterStateKeysSorted(t *testing.T) {
	c := NewCounter(0)
	for _, k := range []string{"z", "a", "m"} {
		c.Process(Tuple{Values: []string{k}}, func(Tuple) {})
	}
	keys := c.StateKeys()
	if strings.Join(keys, ",") != "a,m,z" {
		t.Fatalf("StateKeys() = %v, want sorted", keys)
	}
}

func TestMapFunc(t *testing.T) {
	lower := MapFunc(func(tu Tuple) Tuple {
		vals := make([]string, len(tu.Values))
		for i, v := range tu.Values {
			vals[i] = strings.ToLower(v)
		}
		return Tuple{Values: vals, Padding: tu.Padding}
	})
	out := collect(lower, Tuple{Values: []string{"HeLLo"}})
	if len(out) != 1 || out[0].Values[0] != "hello" {
		t.Fatalf("out = %+v", out)
	}
}

func TestFlatMapFunc(t *testing.T) {
	split := FlatMapFunc(func(tu Tuple) []Tuple {
		var outs []Tuple
		for _, w := range strings.Fields(tu.Field(0)) {
			outs = append(outs, Tuple{Values: []string{w}})
		}
		return outs
	})
	out := collect(split, Tuple{Values: []string{"the quick fox"}})
	if len(out) != 3 || out[2].Field(0) != "fox" {
		t.Fatalf("out = %+v", out)
	}
}

func TestPassthrough(t *testing.T) {
	out := collect(Passthrough(), Tuple{Values: []string{"x"}, Padding: 7})
	if len(out) != 1 || out[0].Padding != 7 {
		t.Fatalf("out = %+v", out)
	}
}
