// Package topology models stream applications as directed acyclic graphs
// of processing operators (POs), following the dataflow terminology of
// §2.1 of Caneill et al. (Middleware'16). Each PO is replicated into
// parallel instances (POIs) by the engine; each edge carries a stream and
// is labelled with the routing policy that splits it between the
// recipient's instances.
package topology

import (
	"errors"
	"fmt"
	"sort"
)

// Grouping is the routing policy of an edge (§2.2).
type Grouping int

const (
	// Shuffle distributes tuples round-robin over the recipient's
	// instances. Only appropriate for stateless recipients.
	Shuffle Grouping = iota + 1
	// LocalOrShuffle prefers a recipient instance co-located on the
	// sender's server and falls back to shuffle.
	LocalOrShuffle
	// Fields routes by a key extracted from the tuple so that every
	// tuple with the same key reaches the same instance. Required for
	// stateful recipients. The concrete policy (hash or routing table)
	// is configured on the engine.
	Fields
)

// String returns the Storm-style grouping name.
func (g Grouping) String() string {
	switch g {
	case Shuffle:
		return "shuffle"
	case LocalOrShuffle:
		return "local-or-shuffle"
	case Fields:
		return "fields"
	default:
		return fmt.Sprintf("Grouping(%d)", int(g))
	}
}

// Tuple is one unit of streaming data. Values carries the named fields
// (e.g. location, hashtag); Padding is an additional payload size in
// bytes used to model realistic tuple sizes without materializing them.
type Tuple struct {
	Values  []string
	Padding int
}

// tupleOverhead approximates the framing overhead of a serialized tuple.
const tupleOverhead = 16

// Size returns the number of bytes the tuple occupies on the wire.
func (t Tuple) Size() int {
	n := tupleOverhead + t.Padding
	for _, v := range t.Values {
		n += len(v)
	}
	return n
}

// Field returns field i, or "" when the tuple is too short.
func (t Tuple) Field(i int) string {
	if i < 0 || i >= len(t.Values) {
		return ""
	}
	return t.Values[i]
}

// Emit passes a produced tuple downstream.
type Emit func(Tuple)

// Processor is the user logic of one operator instance. Process consumes
// one input tuple and emits zero or more output tuples. Implementations
// need not be safe for concurrent use: the engine serializes calls per
// instance.
type Processor interface {
	Process(t Tuple, emit Emit)
}

// Keyed is implemented by stateful processors whose per-key state can be
// migrated between instances during reconfiguration (§3.4).
type Keyed interface {
	Processor
	// SnapshotKey serializes the state of one key; ok is false when the
	// key has no state.
	SnapshotKey(key string) (data []byte, ok bool)
	// RestoreKey installs previously snapshotted state for a key.
	RestoreKey(key string, data []byte) error
	// DeleteKey discards the state of a key after it has been migrated
	// away.
	DeleteKey(key string)
	// StateKeys lists every key that currently has state.
	StateKeys() []string
}

// Mergeable is implemented by keyed processors whose per-key state forms
// a commutative monoid under MergeKey — the "associative combine" the
// hot-key splitting path requires (Partial Key Grouping, Nasir et al.).
// When a key is promoted to split routing, each replica accumulates a
// partial state for it; demotion (and failure recovery of a replica)
// folds the partials back into the owner with MergeKey. Only operators
// whose processors implement Mergeable can have keys split.
type Mergeable interface {
	Keyed
	// MergeKey folds a serialized partial state for key into the local
	// state, which may or may not already exist. Merging must be
	// associative and commutative so that partials can arrive in any
	// order; data has the same encoding SnapshotKey produces.
	MergeKey(key string, data []byte) error
}

// ProcessorFunc adapts a function to the Processor interface (for
// stateless operators).
type ProcessorFunc func(t Tuple, emit Emit)

// Process calls f.
func (f ProcessorFunc) Process(t Tuple, emit Emit) { f(t, emit) }

// Operator describes one processing operator.
type Operator struct {
	// Name uniquely identifies the operator in its topology.
	Name string
	// Parallelism is the number of instances the engine deploys.
	Parallelism int
	// Stateful marks operators that maintain keyed state; the incoming
	// edge must use Fields grouping.
	Stateful bool
	// New constructs one fresh processor instance.
	New func() Processor
}

// Edge connects the output stream of From to the input of To.
type Edge struct {
	From, To string
	// Grouping selects the routing policy.
	Grouping Grouping
	// KeyField is the tuple field used as routing key for Fields
	// grouping (ignored otherwise).
	KeyField int
}

// Topology is an immutable, validated application DAG. Build one with a
// Builder.
type Topology struct {
	name      string
	source    string // name of the operator fed by the external source
	operators map[string]*Operator
	edges     []Edge
	order     []string // topological order
}

// Builder assembles a Topology.
type Builder struct {
	name      string
	source    string
	operators map[string]*Operator
	edges     []Edge
	errs      []error
}

// NewBuilder starts a topology with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, operators: make(map[string]*Operator)}
}

// AddOperator registers op. The first operator added is fed by the
// external source unless SetSource overrides it.
func (b *Builder) AddOperator(op Operator) *Builder {
	if op.Name == "" {
		b.errs = append(b.errs, errors.New("topology: operator with empty name"))
		return b
	}
	if _, dup := b.operators[op.Name]; dup {
		b.errs = append(b.errs, fmt.Errorf("topology: duplicate operator %q", op.Name))
		return b
	}
	if op.Parallelism < 1 {
		b.errs = append(b.errs, fmt.Errorf("topology: operator %q has parallelism %d", op.Name, op.Parallelism))
		return b
	}
	if op.New == nil {
		b.errs = append(b.errs, fmt.Errorf("topology: operator %q has no processor factory", op.Name))
		return b
	}
	copied := op
	b.operators[op.Name] = &copied
	if b.source == "" {
		b.source = op.Name
	}
	return b
}

// SetSource declares which operator receives the external input stream.
func (b *Builder) SetSource(name string) *Builder {
	b.source = name
	return b
}

// Connect adds an edge with the given grouping. keyField is only used for
// Fields grouping.
func (b *Builder) Connect(from, to string, g Grouping, keyField int) *Builder {
	b.edges = append(b.edges, Edge{From: from, To: to, Grouping: g, KeyField: keyField})
	return b
}

// Build validates the DAG and freezes it.
func (b *Builder) Build() (*Topology, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.operators) == 0 {
		return nil, errors.New("topology: no operators")
	}
	if _, ok := b.operators[b.source]; !ok {
		return nil, fmt.Errorf("topology: source operator %q not defined", b.source)
	}
	for _, e := range b.edges {
		if _, ok := b.operators[e.From]; !ok {
			return nil, fmt.Errorf("topology: edge from unknown operator %q", e.From)
		}
		if _, ok := b.operators[e.To]; !ok {
			return nil, fmt.Errorf("topology: edge to unknown operator %q", e.To)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("topology: self-edge on %q", e.From)
		}
		switch e.Grouping {
		case Shuffle, LocalOrShuffle, Fields:
		default:
			return nil, fmt.Errorf("topology: edge %s->%s has invalid grouping", e.From, e.To)
		}
		if b.operators[e.To].Stateful && e.Grouping != Fields {
			return nil, fmt.Errorf("topology: stateful operator %q requires fields grouping (got %s)",
				e.To, e.Grouping)
		}
		if e.Grouping == Fields && e.KeyField < 0 {
			return nil, fmt.Errorf("topology: edge %s->%s has negative key field", e.From, e.To)
		}
	}
	order, err := topoOrder(b.operators, b.edges, b.source)
	if err != nil {
		return nil, err
	}

	t := &Topology{
		name:      b.name,
		source:    b.source,
		operators: make(map[string]*Operator, len(b.operators)),
		edges:     append([]Edge(nil), b.edges...),
		order:     order,
	}
	for name, op := range b.operators {
		copied := *op
		t.operators[name] = &copied
	}
	return t, nil
}

// topoOrder returns operators in topological order starting from source
// and errors on cycles or operators unreachable from the source.
func topoOrder(ops map[string]*Operator, edges []Edge, source string) ([]string, error) {
	succ := make(map[string][]string)
	indeg := make(map[string]int, len(ops))
	for name := range ops {
		indeg[name] = 0
	}
	for _, e := range edges {
		succ[e.From] = append(succ[e.From], e.To)
		indeg[e.To]++
	}
	for _, list := range succ {
		sort.Strings(list)
	}

	var queue []string
	for name, d := range indeg {
		if d == 0 {
			queue = append(queue, name)
		}
	}
	sort.Strings(queue)

	var order []string
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		order = append(order, cur)
		for _, next := range succ[cur] {
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
		sort.Strings(queue)
	}
	if len(order) != len(ops) {
		return nil, errors.New("topology: cycle detected")
	}
	// Reachability from the source: every operator must be fed.
	reach := map[string]bool{source: true}
	changed := true
	for changed {
		changed = false
		for _, e := range edges {
			if reach[e.From] && !reach[e.To] {
				reach[e.To] = true
				changed = true
			}
		}
	}
	for name := range ops {
		if !reach[name] {
			return nil, fmt.Errorf("topology: operator %q unreachable from source %q", name, source)
		}
	}
	return order, nil
}

// Name returns the topology name.
func (t *Topology) Name() string { return t.name }

// Source returns the operator fed by the external stream.
func (t *Topology) Source() string { return t.source }

// Operator returns the named operator, or nil.
func (t *Topology) Operator(name string) *Operator { return t.operators[name] }

// Operators returns all operators in topological order.
func (t *Topology) Operators() []*Operator {
	out := make([]*Operator, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, t.operators[name])
	}
	return out
}

// Order returns operator names in topological order (the propagation
// order of the reconfiguration protocol).
func (t *Topology) Order() []string { return append([]string(nil), t.order...) }

// Edges returns all edges.
func (t *Topology) Edges() []Edge { return append([]Edge(nil), t.edges...) }

// OutEdges returns the edges leaving op.
func (t *Topology) OutEdges(op string) []Edge {
	var out []Edge
	for _, e := range t.edges {
		if e.From == op {
			out = append(out, e)
		}
	}
	return out
}

// InEdges returns the edges entering op.
func (t *Topology) InEdges(op string) []Edge {
	var out []Edge
	for _, e := range t.edges {
		if e.To == op {
			out = append(out, e)
		}
	}
	return out
}

// Predecessors returns the names of operators with an edge into op.
func (t *Topology) Predecessors(op string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, e := range t.edges {
		if e.To == op && !seen[e.From] {
			seen[e.From] = true
			out = append(out, e.From)
		}
	}
	sort.Strings(out)
	return out
}

// Successors returns the names of operators op feeds.
func (t *Topology) Successors(op string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, e := range t.edges {
		if e.From == op && !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	sort.Strings(out)
	return out
}

// FieldsEdges returns the edges using Fields grouping, the ones the
// locality optimizer acts on.
func (t *Topology) FieldsEdges() []Edge {
	var out []Edge
	for _, e := range t.edges {
		if e.Grouping == Fields {
			out = append(out, e)
		}
	}
	return out
}
