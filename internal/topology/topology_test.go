package topology

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func opNamed(name string, parallelism int, stateful bool) Operator {
	return Operator{
		Name:        name,
		Parallelism: parallelism,
		Stateful:    stateful,
		New:         Passthrough,
	}
}

func buildChain(t *testing.T) *Topology {
	t.Helper()
	topo, err := NewBuilder("chain").
		AddOperator(opNamed("A", 2, false)).
		AddOperator(opNamed("B", 2, true)).
		AddOperator(opNamed("C", 3, true)).
		Connect("A", "B", Fields, 0).
		Connect("B", "C", Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestBuildValidChain(t *testing.T) {
	topo := buildChain(t)
	if topo.Name() != "chain" {
		t.Errorf("Name() = %q", topo.Name())
	}
	if topo.Source() != "A" {
		t.Errorf("Source() = %q, want A (first added)", topo.Source())
	}
	order := topo.Order()
	if len(order) != 3 || order[0] != "A" || order[1] != "B" || order[2] != "C" {
		t.Errorf("Order() = %v", order)
	}
	if got := topo.Operator("B"); got == nil || !got.Stateful {
		t.Error("Operator(B) missing or not stateful")
	}
	if got := topo.Operator("nope"); got != nil {
		t.Error("Operator(nope) should be nil")
	}
	if n := len(topo.FieldsEdges()); n != 2 {
		t.Errorf("FieldsEdges() = %d, want 2", n)
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name    string
		build   func() (*Topology, error)
		wantSub string
	}{
		{
			name:    "no operators",
			build:   func() (*Topology, error) { return NewBuilder("t").Build() },
			wantSub: "no operators",
		},
		{
			name: "duplicate operator",
			build: func() (*Topology, error) {
				return NewBuilder("t").
					AddOperator(opNamed("A", 1, false)).
					AddOperator(opNamed("A", 1, false)).
					Build()
			},
			wantSub: "duplicate",
		},
		{
			name: "zero parallelism",
			build: func() (*Topology, error) {
				return NewBuilder("t").AddOperator(opNamed("A", 0, false)).Build()
			},
			wantSub: "parallelism",
		},
		{
			name: "missing factory",
			build: func() (*Topology, error) {
				return NewBuilder("t").AddOperator(Operator{Name: "A", Parallelism: 1}).Build()
			},
			wantSub: "factory",
		},
		{
			name: "empty name",
			build: func() (*Topology, error) {
				return NewBuilder("t").AddOperator(opNamed("", 1, false)).Build()
			},
			wantSub: "empty name",
		},
		{
			name: "edge to unknown",
			build: func() (*Topology, error) {
				return NewBuilder("t").
					AddOperator(opNamed("A", 1, false)).
					Connect("A", "B", Shuffle, 0).
					Build()
			},
			wantSub: "unknown",
		},
		{
			name: "edge from unknown",
			build: func() (*Topology, error) {
				return NewBuilder("t").
					AddOperator(opNamed("A", 1, false)).
					Connect("X", "A", Shuffle, 0).
					Build()
			},
			wantSub: "unknown",
		},
		{
			name: "self edge",
			build: func() (*Topology, error) {
				return NewBuilder("t").
					AddOperator(opNamed("A", 1, false)).
					Connect("A", "A", Shuffle, 0).
					Build()
			},
			wantSub: "self-edge",
		},
		{
			name: "stateful without fields",
			build: func() (*Topology, error) {
				return NewBuilder("t").
					AddOperator(opNamed("A", 1, false)).
					AddOperator(opNamed("B", 1, true)).
					Connect("A", "B", Shuffle, 0).
					Build()
			},
			wantSub: "requires fields",
		},
		{
			name: "negative key field",
			build: func() (*Topology, error) {
				return NewBuilder("t").
					AddOperator(opNamed("A", 1, false)).
					AddOperator(opNamed("B", 1, true)).
					Connect("A", "B", Fields, -1).
					Build()
			},
			wantSub: "negative key field",
		},
		{
			name: "invalid grouping",
			build: func() (*Topology, error) {
				return NewBuilder("t").
					AddOperator(opNamed("A", 1, false)).
					AddOperator(opNamed("B", 1, false)).
					Connect("A", "B", Grouping(0), 0).
					Build()
			},
			wantSub: "invalid grouping",
		},
		{
			name: "cycle",
			build: func() (*Topology, error) {
				return NewBuilder("t").
					AddOperator(opNamed("A", 1, false)).
					AddOperator(opNamed("B", 1, false)).
					Connect("A", "B", Shuffle, 0).
					Connect("B", "A", Shuffle, 0).
					Build()
			},
			wantSub: "cycle",
		},
		{
			name: "unreachable operator",
			build: func() (*Topology, error) {
				return NewBuilder("t").
					AddOperator(opNamed("A", 1, false)).
					AddOperator(opNamed("B", 1, false)).
					Build()
			},
			wantSub: "unreachable",
		},
		{
			name: "bad source",
			build: func() (*Topology, error) {
				return NewBuilder("t").
					AddOperator(opNamed("A", 1, false)).
					SetSource("missing").
					Build()
			},
			wantSub: "source",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.build()
			if err == nil {
				t.Fatal("Build() succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestDiamondDAG(t *testing.T) {
	topo, err := NewBuilder("diamond").
		AddOperator(opNamed("A", 1, false)).
		AddOperator(opNamed("B", 1, false)).
		AddOperator(opNamed("C", 1, false)).
		AddOperator(opNamed("D", 1, true)).
		Connect("A", "B", Shuffle, 0).
		Connect("A", "C", Shuffle, 0).
		Connect("B", "D", Fields, 0).
		Connect("C", "D", Fields, 0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	order := topo.Order()
	pos := make(map[string]int)
	for i, name := range order {
		pos[name] = i
	}
	if !(pos["A"] < pos["B"] && pos["A"] < pos["C"] && pos["B"] < pos["D"] && pos["C"] < pos["D"]) {
		t.Errorf("Order() = %v not topological", order)
	}
	if got := topo.Predecessors("D"); len(got) != 2 || got[0] != "B" || got[1] != "C" {
		t.Errorf("Predecessors(D) = %v", got)
	}
	if got := topo.Successors("A"); len(got) != 2 || got[0] != "B" || got[1] != "C" {
		t.Errorf("Successors(A) = %v", got)
	}
	if got := topo.InEdges("D"); len(got) != 2 {
		t.Errorf("InEdges(D) = %v", got)
	}
	if got := topo.OutEdges("A"); len(got) != 2 {
		t.Errorf("OutEdges(A) = %v", got)
	}
}

func TestTupleSizeAndField(t *testing.T) {
	tu := Tuple{Values: []string{"Asia", "#go"}, Padding: 100}
	if got := tu.Size(); got != 16+100+4+3 {
		t.Errorf("Size() = %d, want %d", got, 16+100+7)
	}
	if tu.Field(0) != "Asia" || tu.Field(1) != "#go" {
		t.Error("Field() wrong values")
	}
	if tu.Field(2) != "" || tu.Field(-1) != "" {
		t.Error("out-of-range Field() should be empty")
	}
}

func TestGroupingString(t *testing.T) {
	if Shuffle.String() != "shuffle" ||
		LocalOrShuffle.String() != "local-or-shuffle" ||
		Fields.String() != "fields" {
		t.Error("grouping names wrong")
	}
	if !strings.Contains(Grouping(42).String(), "42") {
		t.Error("unknown grouping should include its number")
	}
}

func TestTopologyImmutability(t *testing.T) {
	topo := buildChain(t)
	edges := topo.Edges()
	edges[0].From = "HACK"
	if topo.Edges()[0].From == "HACK" {
		t.Error("Edges() exposes internal slice")
	}
	order := topo.Order()
	order[0] = "HACK"
	if topo.Order()[0] == "HACK" {
		t.Error("Order() exposes internal slice")
	}
}

func TestBuilderFirstErrorWins(t *testing.T) {
	_, err := NewBuilder("t").
		AddOperator(opNamed("", 0, false)). // two problems at once
		Build()
	if err == nil || !strings.Contains(err.Error(), "empty name") {
		t.Fatalf("err = %v, want empty-name error first", err)
	}
}

func TestPropertyTopologicalOrder(t *testing.T) {
	// Property: for random DAGs (edges only forward in label order, so
	// acyclic and reachable by construction), Order() lists every
	// operator before all of its successors.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%6 + 2
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder("prop")
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = string(rune('A' + i))
			b.AddOperator(opNamed(names[i], 1, false))
		}
		for i := 1; i < n; i++ {
			// Ensure reachability: at least one in-edge from an earlier op.
			from := rng.Intn(i)
			b.Connect(names[from], names[i], Shuffle, 0)
			if rng.Intn(2) == 0 && from != i-1 {
				b.Connect(names[i-1], names[i], Shuffle, 0)
			}
		}
		topo, err := b.Build()
		if err != nil {
			return false
		}
		pos := make(map[string]int)
		for idx, name := range topo.Order() {
			pos[name] = idx
		}
		for _, e := range topo.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
