package topology

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/locastream/locastream/internal/spacesaving"
)

// TopK is a stateful processor implementing the paper's motivating
// application (§3.2): per routing key (e.g. a region), it maintains an
// approximate top-k of a second field (e.g. hashtags) with a bounded
// SpaceSaving sketch, "generating statistics about topics trending in
// geographical regions".
//
// TopK implements Keyed with non-trivial state: a whole sketch per key is
// serialized and merged during migration, exercising the reconfiguration
// protocol far beyond simple counters.
type TopK struct {
	// KeyField is the field holding the routing key (the "region").
	KeyField int
	// ValueField is the field ranked per key (the "hashtag").
	ValueField int
	// K is how many top entries Top reports.
	K int
	// SketchCapacity bounds each per-key sketch.
	SketchCapacity int

	perKey map[string]*spacesaving.Sketch
}

var _ Keyed = (*TopK)(nil)

// NewTopK builds a trending-topics operator.
func NewTopK(keyField, valueField, k, sketchCapacity int) *TopK {
	if k < 1 {
		k = 1
	}
	if sketchCapacity < k {
		sketchCapacity = 8 * k
	}
	return &TopK{
		KeyField:       keyField,
		ValueField:     valueField,
		K:              k,
		SketchCapacity: sketchCapacity,
		perKey:         make(map[string]*spacesaving.Sketch),
	}
}

// Process records the tuple's value under its key and forwards the tuple.
func (t *TopK) Process(tu Tuple, emit Emit) {
	key := tu.Field(t.KeyField)
	sk := t.perKey[key]
	if sk == nil {
		sk = spacesaving.New(t.SketchCapacity)
		t.perKey[key] = sk
	}
	sk.Add(tu.Field(t.ValueField))
	emit(tu)
}

// Top returns the current top-k values for key, heaviest first.
func (t *TopK) Top(key string) []spacesaving.Counter {
	sk := t.perKey[key]
	if sk == nil {
		return nil
	}
	return sk.Top(t.K)
}

// Observed returns how many values were recorded for key.
func (t *TopK) Observed(key string) uint64 {
	sk := t.perKey[key]
	if sk == nil {
		return 0
	}
	return sk.Observed()
}

// topKState is the wire form of one key's sketch.
type topKState struct {
	Observed uint64             `json:"observed"`
	Counters []topKStateCounter `json:"counters"`
}

type topKStateCounter struct {
	Item  string `json:"item"`
	Count uint64 `json:"count"`
}

// SnapshotKey serializes the sketch of one key.
func (t *TopK) SnapshotKey(key string) ([]byte, bool) {
	sk := t.perKey[key]
	if sk == nil {
		return nil, false
	}
	st := topKState{Observed: sk.Observed()}
	for _, c := range sk.Counters() {
		st.Counters = append(st.Counters, topKStateCounter{Item: c.Item, Count: c.Count})
	}
	data, err := json.Marshal(st)
	if err != nil {
		// Marshalling strings and integers cannot fail; treat as absent
		// state defensively.
		return nil, false
	}
	return data, true
}

// RestoreKey merges migrated sketch state for a key.
func (t *TopK) RestoreKey(key string, data []byte) error {
	var st topKState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("topk: decode state for %q: %w", key, err)
	}
	sk := t.perKey[key]
	if sk == nil {
		sk = spacesaving.New(t.SketchCapacity)
		t.perKey[key] = sk
	}
	// Merging re-adds the monitored counters; weight already evicted at
	// the sender is lost, which matches SpaceSaving's approximation
	// contract (estimates never undercount monitored items).
	for _, c := range st.Counters {
		sk.AddWeighted(c.Item, c.Count)
	}
	return nil
}

// DeleteKey drops the sketch of a migrated-away key.
func (t *TopK) DeleteKey(key string) { delete(t.perKey, key) }

// StateKeys lists every key with a sketch, sorted.
func (t *TopK) StateKeys() []string {
	keys := make([]string, 0, len(t.perKey))
	for k := range t.perKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
