package workload

import (
	"fmt"
	"math/rand"

	"github.com/locastream/locastream/internal/topology"
)

// CrossRegionConfig parameterizes the multi-region generator: the
// workload the hierarchical federation drill runs. Keys form regional
// communities — users of one region overwhelmingly discuss that
// region's topics — so a cluster-aware partition can confine almost all
// key-pair traffic inside a region's cluster. A slice of the population
// migrates between regions over epochs, re-homing its correlations,
// which is exactly the drift that produces cross-cluster move
// candidates for the federation layer to price.
type CrossRegionConfig struct {
	// Regions is the number of regions (≥ 1); users and topics are
	// partitioned among them.
	Regions int
	// UsersPerRegion and TopicsPerRegion size each region's key space.
	UsersPerRegion  int
	TopicsPerRegion int
	// UserSkew and TopicSkew are the Zipf exponents (> 1) of the
	// within-region popularity distributions.
	UserSkew  float64
	TopicSkew float64
	// HomeBias is the probability that a tuple's topic is drawn from
	// the user's home region rather than a uniformly random foreign
	// region. It bounds the cluster locality any routing can achieve.
	HomeBias float64
	// MigrantsPerEpoch is the number of users re-homed to another
	// region at each epoch boundary (their topic correlations move with
	// them).
	MigrantsPerEpoch int
	// Padding is the tuple payload size in bytes.
	Padding int
	// Seed makes the stream deterministic.
	Seed int64
}

// DefaultCrossRegionConfig mirrors the scale of the federation drill:
// two regions with strongly home-biased traffic and a visible migrant
// population.
func DefaultCrossRegionConfig() CrossRegionConfig {
	return CrossRegionConfig{
		Regions:          2,
		UsersPerRegion:   150,
		TopicsPerRegion:  150,
		UserSkew:         1.2,
		TopicSkew:        1.2,
		HomeBias:         0.9,
		MigrantsPerEpoch: 20,
		Seed:             1,
	}
}

// CrossRegion generates (user, topic) tuples with region-local
// correlations. Advance epochs with NextEpoch; a batch of users then
// migrates to a new home region. Not safe for concurrent use.
type CrossRegion struct {
	cfg CrossRegionConfig
	rng *rand.Rand

	userZipf *rand.Zipf
	tpcZipf  *rand.Zipf

	// homeOf maps a global user index to its current home region.
	homeOf []int
	epoch  int
}

var _ Generator = (*CrossRegion)(nil)

// NewCrossRegion returns a generator in epoch 0, with every user living
// in its birth region.
func NewCrossRegion(cfg CrossRegionConfig) *CrossRegion {
	if cfg.Regions < 1 {
		cfg.Regions = 1
	}
	if cfg.UsersPerRegion < 1 {
		cfg.UsersPerRegion = 1
	}
	if cfg.TopicsPerRegion < 1 {
		cfg.TopicsPerRegion = 1
	}
	if cfg.UserSkew <= 1 {
		cfg.UserSkew = 1.1
	}
	if cfg.TopicSkew <= 1 {
		cfg.TopicSkew = 1.1
	}
	if cfg.HomeBias < 0 || cfg.HomeBias > 1 {
		cfg.HomeBias = 0.9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &CrossRegion{
		cfg:      cfg,
		rng:      rng,
		userZipf: rand.NewZipf(rng, cfg.UserSkew, 1, uint64(cfg.UsersPerRegion-1)),
		tpcZipf:  rand.NewZipf(rng, cfg.TopicSkew, 1, uint64(cfg.TopicsPerRegion-1)),
		homeOf:   make([]int, cfg.Regions*cfg.UsersPerRegion),
	}
	for u := range g.homeOf {
		g.homeOf[u] = u / cfg.UsersPerRegion
	}
	return g
}

// Epoch returns the current epoch index.
func (g *CrossRegion) Epoch() int { return g.epoch }

// NextEpoch migrates MigrantsPerEpoch users to a uniformly random other
// region: their traffic is thereafter correlated with the new region's
// topics, so the optimal placement moves their state across the cluster
// boundary.
func (g *CrossRegion) NextEpoch() {
	g.epoch++
	if g.cfg.Regions < 2 {
		return
	}
	for i := 0; i < g.cfg.MigrantsPerEpoch; i++ {
		u := g.rng.Intn(len(g.homeOf))
		to := g.rng.Intn(g.cfg.Regions - 1)
		if to >= g.homeOf[u] {
			to++
		}
		g.homeOf[u] = to
	}
}

// Migrants returns the number of users currently living outside their
// birth region.
func (g *CrossRegion) Migrants() int {
	n := 0
	for u, home := range g.homeOf {
		if home != u/g.cfg.UsersPerRegion {
			n++
		}
	}
	return n
}

// Next returns the next (user, topic) tuple: a Zipf-popular user of a
// uniformly random region, paired with a Zipf-popular topic of its home
// region (HomeBias) or of a random foreign one.
func (g *CrossRegion) Next() topology.Tuple {
	region := g.rng.Intn(g.cfg.Regions)
	u := region*g.cfg.UsersPerRegion + int(g.userZipf.Uint64())
	topicRegion := g.homeOf[u]
	if g.cfg.Regions > 1 && g.rng.Float64() >= g.cfg.HomeBias {
		topicRegion = g.rng.Intn(g.cfg.Regions - 1)
		if topicRegion >= g.homeOf[u] {
			topicRegion++
		}
	}
	topic := topicRegion*g.cfg.TopicsPerRegion + int(g.tpcZipf.Uint64())
	return topology.Tuple{
		Values:  []string{fmt.Sprintf("user%d", u), fmt.Sprintf("topic%d", topic)},
		Padding: g.cfg.Padding,
	}
}
