// Package workload generates the three workloads of the paper's
// evaluation (§4):
//
//   - Synthetic: (i, j, padding) tuples with an exact locality parameter
//     (§4.2, Figs. 7-9).
//   - Twitter: (location, hashtag) pairs with Zipfian popularity,
//     location-conditioned hashtag affinities that drift over weeks,
//     flash events, and a stream of never-seen-before hashtags — the
//     dynamics that make online reoptimization necessary (§4.3,
//     Figs. 10-12). This generator substitutes for the authors' 173M-pair
//     proprietary Twitter crawl.
//   - Flickr: stable (tag, country) pairs with fixed correlation,
//     substituting for the Yahoo-gated Flickr 100M dataset (§4.4,
//     Figs. 13-14).
//
// All generators are deterministic for a fixed seed.
package workload

import (
	"math/rand"
	"strconv"

	"github.com/locastream/locastream/internal/topology"
)

// Generator produces an unbounded stream of tuples.
type Generator interface {
	// Next returns the next tuple of the stream.
	Next() topology.Tuple
}

// Take returns a func suitable for engine.Sim.InjectAll that stops after
// n tuples.
func Take(g Generator, n int) func() (topology.Tuple, bool) {
	remaining := n
	return func() (topology.Tuple, bool) {
		if remaining <= 0 {
			return topology.Tuple{}, false
		}
		remaining--
		return g.Next(), true
	}
}

// --- synthetic ---------------------------------------------------------------

// Synthetic implements the §4.2 workload: tuples carry two integer fields
// in [0, N) plus padding; with probability Locality the two fields are
// equal, so a routing table mapping key i to instance i keeps the tuple
// on one server.
type Synthetic struct {
	// N is the number of distinct key values (the experiment's
	// parallelism).
	N int
	// Locality is the probability that both fields match.
	Locality float64
	// Padding is the extra payload size in bytes.
	Padding int

	rng *rand.Rand
}

var _ Generator = (*Synthetic)(nil)

// NewSynthetic returns a synthetic generator. n must be >= 1.
func NewSynthetic(n int, locality float64, padding int, seed int64) *Synthetic {
	if n < 1 {
		n = 1
	}
	if locality < 0 {
		locality = 0
	}
	if locality > 1 {
		locality = 1
	}
	return &Synthetic{N: n, Locality: locality, Padding: padding, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next (i, j, padding) tuple.
func (s *Synthetic) Next() topology.Tuple {
	i := s.rng.Intn(s.N)
	j := i
	if s.N > 1 && s.rng.Float64() >= s.Locality {
		j = (i + 1 + s.rng.Intn(s.N-1)) % s.N
	}
	return topology.Tuple{
		Values:  []string{strconv.Itoa(i), strconv.Itoa(j)},
		Padding: s.Padding,
	}
}

// IdentityTables returns the §4.2 "locality-aware" routing tables for the
// synthetic workload: key "i" maps to instance i for both operators.
// These are exactly the tables the optimizer converges to when fed the
// generator's statistics.
func IdentityTables(n int, firstOp, secondOp string, version uint64) map[string]map[string]int {
	assign := make(map[string]int, n)
	for i := 0; i < n; i++ {
		assign[strconv.Itoa(i)] = i
	}
	return map[string]map[string]int{firstOp: assign, secondOp: assign}
}
