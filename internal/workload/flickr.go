package workload

import (
	"fmt"
	"math/rand"

	"github.com/locastream/locastream/internal/topology"
)

// FlickrConfig parameterizes the stable photo-metadata generator. The
// paper streams (tag, country) records from the Flickr 100M dataset,
// which "represents a stable workload as there is no temporal
// information" (§4.4).
type FlickrConfig struct {
	// Tags is the size of the user-tag vocabulary.
	Tags int
	// Countries is the number of distinct countries (the dataset maps
	// geolocations to countries via OpenStreetMap).
	Countries int
	// TagSkew and CountrySkew are Zipf exponents (> 1).
	TagSkew     float64
	CountrySkew float64
	// Correlation is the probability that a photo's country is drawn
	// from the tag's affine country set (tags like "eiffeltower" are
	// strongly tied to one country) rather than the global mix.
	Correlation float64
	// AffineCountries is how many countries each tag is tied to.
	AffineCountries int
	// Padding is the tuple payload size in bytes.
	Padding int
	// Seed makes the stream deterministic.
	Seed int64
}

// DefaultFlickrConfig mirrors the experiment scale.
func DefaultFlickrConfig() FlickrConfig {
	return FlickrConfig{
		Tags:            5000,
		Countries:       150,
		TagSkew:         1.1,
		CountrySkew:     1.1,
		Correlation:     0.8,
		AffineCountries: 3,
		Seed:            1,
	}
}

// Flickr generates (tag, country) tuples with a fixed correlation
// structure. Not safe for concurrent use.
type Flickr struct {
	cfg FlickrConfig
	rng *rand.Rand

	tagZipf     *rand.Zipf
	countryZipf *rand.Zipf
	affine      [][]string // tag index -> preferred countries
}

var _ Generator = (*Flickr)(nil)

// NewFlickr returns a stable generator.
func NewFlickr(cfg FlickrConfig) *Flickr {
	if cfg.Tags < 1 {
		cfg.Tags = 1
	}
	if cfg.Countries < 1 {
		cfg.Countries = 1
	}
	if cfg.AffineCountries < 1 {
		cfg.AffineCountries = 1
	}
	if cfg.TagSkew <= 1 {
		cfg.TagSkew = 1.1
	}
	if cfg.CountrySkew <= 1 {
		cfg.CountrySkew = 1.1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Flickr{
		cfg: cfg,
		rng: rng,
		// The Zipf offset (v = 6) softens the head of the distribution:
		// real country/tag popularity is skewed, but no single key is half
		// of the stream — a single un-splittable hot key would cap
		// throughput at every parallelism and mask the locality effect.
		tagZipf:     rand.NewZipf(rng, cfg.TagSkew, 6, uint64(cfg.Tags-1)),
		countryZipf: rand.NewZipf(rng, cfg.CountrySkew, 6, uint64(cfg.Countries-1)),
	}
	f.affine = make([][]string, cfg.Tags)
	for t := range f.affine {
		set := make([]string, cfg.AffineCountries)
		for i := range set {
			set[i] = countryName(int(f.countryZipf.Uint64()))
		}
		f.affine[t] = set
	}
	return f
}

// Next returns the next (tag, country) tuple.
func (f *Flickr) Next() topology.Tuple {
	tag := int(f.tagZipf.Uint64())
	var country string
	if f.rng.Float64() < f.cfg.Correlation {
		set := f.affine[tag]
		country = set[f.rng.Intn(len(set))]
	} else {
		country = countryName(int(f.countryZipf.Uint64()))
	}
	return topology.Tuple{
		Values:  []string{fmt.Sprintf("tag%d", tag), country},
		Padding: f.cfg.Padding,
	}
}

// SetPadding changes the payload size of subsequently generated tuples
// (the Fig. 13 sweep varies padding over the same dataset).
func (f *Flickr) SetPadding(padding int) { f.cfg.Padding = padding }

func countryName(i int) string { return fmt.Sprintf("country%d", i) }
