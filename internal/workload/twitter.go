package workload

import (
	"fmt"
	"math/rand"

	"github.com/locastream/locastream/internal/topology"
)

// TwitterConfig parameterizes the drifting social-stream generator.
type TwitterConfig struct {
	// Locations is the number of distinct geographic keys.
	Locations int
	// Hashtags is the size of the base hashtag vocabulary.
	Hashtags int
	// LocationSkew and HashtagSkew are the Zipf exponents (> 1) of the
	// popularity distributions; real datasets are strongly Zipfian [4].
	LocationSkew float64
	HashtagSkew  float64
	// Correlation is the probability that a tweet draws its hashtag from
	// its location's affine tag set rather than from the global
	// distribution. It bounds the locality any routing can achieve.
	Correlation float64
	// AffineTags is how many hashtags each location prefers.
	AffineTags int
	// DriftPerWeek is the fraction of every location's affine set that
	// is re-rolled at each week boundary ("associations between keys can
	// vary significantly", §1).
	DriftPerWeek float64
	// NewTagsPerWeek is the number of previously unseen hashtags mixed
	// into the vocabulary every week; the paper observes that fresh keys
	// are why achieved locality (50%) trails Metis' expectation (75%).
	NewTagsPerWeek int
	// FlashEvents is the number of short-lived location<->hashtag
	// hotspots active at any time (e.g. #nevertrump spiking in one state
	// after a primary, Fig. 10).
	FlashEvents int
	// FlashWeight is the probability that a tweet is drawn from a flash
	// event instead of the regular mix.
	FlashWeight float64
	// Padding is the tuple payload size in bytes.
	Padding int
	// Seed makes the stream deterministic.
	Seed int64
}

// DefaultTwitterConfig mirrors the scale used in the experiments: enough
// keys to be Zipf-realistic while keeping runs fast.
func DefaultTwitterConfig() TwitterConfig {
	return TwitterConfig{
		Locations:      200,
		Hashtags:       5000,
		LocationSkew:   1.2,
		HashtagSkew:    1.2,
		Correlation:    0.8,
		AffineTags:     6,
		DriftPerWeek:   0.25,
		NewTagsPerWeek: 300,
		FlashEvents:    4,
		FlashWeight:    0.05,
		Seed:           1,
	}
}

// Twitter generates (location, hashtag) tuples. Advance weeks with
// NextWeek; the affinity structure then drifts. Not safe for concurrent
// use.
type Twitter struct {
	cfg TwitterConfig
	rng *rand.Rand

	locZipf *rand.Zipf
	tagZipf *rand.Zipf

	affine  [][]string // location index -> preferred hashtags
	tagName []string   // hashtag index -> name (grows with new tags)
	week    int

	flashes []flash
}

// flash is a temporary strong (location, hashtag) association.
type flash struct {
	loc string
	tag string
}

var _ Generator = (*Twitter)(nil)

// NewTwitter returns a generator in week 0.
func NewTwitter(cfg TwitterConfig) *Twitter {
	if cfg.Locations < 1 {
		cfg.Locations = 1
	}
	if cfg.Hashtags < 1 {
		cfg.Hashtags = 1
	}
	if cfg.AffineTags < 1 {
		cfg.AffineTags = 1
	}
	if cfg.LocationSkew <= 1 {
		cfg.LocationSkew = 1.1
	}
	if cfg.HashtagSkew <= 1 {
		cfg.HashtagSkew = 1.1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tw := &Twitter{
		cfg:     cfg,
		rng:     rng,
		locZipf: rand.NewZipf(rng, cfg.LocationSkew, 1, uint64(cfg.Locations-1)),
		tagZipf: rand.NewZipf(rng, cfg.HashtagSkew, 1, uint64(cfg.Hashtags-1)),
	}
	tw.tagName = make([]string, cfg.Hashtags)
	for i := range tw.tagName {
		tw.tagName[i] = fmt.Sprintf("#tag%d", i)
	}
	tw.affine = make([][]string, cfg.Locations)
	for l := range tw.affine {
		tw.affine[l] = make([]string, cfg.AffineTags)
		for s := range tw.affine[l] {
			tw.affine[l][s] = tw.randomTag()
		}
	}
	tw.rollFlashes()
	return tw
}

// Week returns the current week index.
func (tw *Twitter) Week() int { return tw.week }

// NextWeek advances the drift: a fraction of every location's affine set
// is re-rolled, new hashtags enter the vocabulary, and flash events are
// replaced.
func (tw *Twitter) NextWeek() {
	tw.week++
	for i := 0; i < tw.cfg.NewTagsPerWeek; i++ {
		tw.tagName = append(tw.tagName, fmt.Sprintf("#w%dnew%d", tw.week, i))
	}
	for l := range tw.affine {
		for s := range tw.affine[l] {
			if tw.rng.Float64() < tw.cfg.DriftPerWeek {
				tw.affine[l][s] = tw.randomTag()
			}
		}
	}
	tw.rollFlashes()
}

// Next returns the next (location, hashtag) tuple.
func (tw *Twitter) Next() topology.Tuple {
	if len(tw.flashes) > 0 && tw.rng.Float64() < tw.cfg.FlashWeight {
		f := tw.flashes[tw.rng.Intn(len(tw.flashes))]
		return tw.tuple(f.loc, f.tag)
	}
	loc := int(tw.locZipf.Uint64())
	var tag string
	if tw.rng.Float64() < tw.cfg.Correlation {
		// Within the affine set, prefer earlier entries (min of two
		// uniform draws gives a mild triangular skew).
		set := tw.affine[loc]
		pos := tw.rng.Intn(len(set))
		if alt := tw.rng.Intn(len(set)); alt < pos {
			pos = alt
		}
		tag = set[pos]
	} else {
		tag = tw.tagName[int(tw.tagZipf.Uint64())]
	}
	return tw.tuple(tw.locName(loc), tag)
}

func (tw *Twitter) tuple(loc, tag string) topology.Tuple {
	return topology.Tuple{Values: []string{loc, tag}, Padding: tw.cfg.Padding}
}

func (tw *Twitter) locName(i int) string { return fmt.Sprintf("loc%d", i) }

// randomTag draws from the current vocabulary, Zipf-weighted over the
// base tags but uniform over newly introduced ones.
func (tw *Twitter) randomTag() string {
	if len(tw.tagName) > tw.cfg.Hashtags && tw.rng.Float64() < 0.5 {
		extra := len(tw.tagName) - tw.cfg.Hashtags
		return tw.tagName[tw.cfg.Hashtags+tw.rng.Intn(extra)]
	}
	return tw.tagName[int(tw.tagZipf.Uint64())]
}

func (tw *Twitter) rollFlashes() {
	tw.flashes = tw.flashes[:0]
	for i := 0; i < tw.cfg.FlashEvents; i++ {
		tw.flashes = append(tw.flashes, flash{
			loc: tw.locName(tw.rng.Intn(tw.cfg.Locations)),
			tag: fmt.Sprintf("#flash_w%d_%d", tw.week, i),
		})
	}
}

// Flashes exposes the currently active flash associations (used by the
// Fig. 10 characterization).
func (tw *Twitter) Flashes() []string {
	out := make([]string, len(tw.flashes))
	for i, f := range tw.flashes {
		out[i] = f.loc + " " + f.tag
	}
	return out
}
