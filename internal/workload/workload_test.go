package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSyntheticLocalityParameter(t *testing.T) {
	for _, locality := range []float64{0, 0.6, 0.8, 1.0} {
		g := NewSynthetic(6, locality, 0, 42)
		matches := 0
		const n = 20000
		for i := 0; i < n; i++ {
			tu := g.Next()
			if tu.Values[0] == tu.Values[1] {
				matches++
			}
		}
		got := float64(matches) / n
		if math.Abs(got-locality) > 0.02 {
			t.Errorf("locality param %.2f: measured %.3f", locality, got)
		}
	}
}

func TestSyntheticKeyRange(t *testing.T) {
	g := NewSynthetic(4, 0.5, 128, 7)
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		tu := g.Next()
		seen[tu.Values[0]] = true
		if tu.Padding != 128 {
			t.Fatalf("padding = %d", tu.Padding)
		}
		if len(tu.Values) != 2 {
			t.Fatalf("values = %v", tu.Values)
		}
	}
	for _, k := range []string{"0", "1", "2", "3"} {
		if !seen[k] {
			t.Errorf("key %s never generated", k)
		}
	}
	if len(seen) != 4 {
		t.Errorf("saw %d distinct keys, want 4", len(seen))
	}
}

func TestSyntheticClamping(t *testing.T) {
	g := NewSynthetic(0, -1, 0, 1)
	tu := g.Next()
	if tu.Values[0] != "0" {
		t.Fatalf("n<1 should clamp to 1, got %v", tu.Values)
	}
	g2 := NewSynthetic(3, 2.0, 0, 1)
	for i := 0; i < 100; i++ {
		tu := g2.Next()
		if tu.Values[0] != tu.Values[1] {
			t.Fatal("locality > 1 should clamp to 1 (always equal)")
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := NewSynthetic(5, 0.7, 10, 99)
	b := NewSynthetic(5, 0.7, 10, 99)
	for i := 0; i < 100; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.Values[0] != tb.Values[0] || ta.Values[1] != tb.Values[1] {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestPropertySyntheticLocalityOneAlwaysMatches(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%8 + 1
		g := NewSynthetic(n, 1.0, 0, seed)
		for i := 0; i < 50; i++ {
			tu := g.Next()
			if tu.Values[0] != tu.Values[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTake(t *testing.T) {
	g := NewSynthetic(2, 1, 0, 1)
	next := Take(g, 3)
	for i := 0; i < 3; i++ {
		if _, ok := next(); !ok {
			t.Fatalf("Take exhausted at %d", i)
		}
	}
	if _, ok := next(); ok {
		t.Fatal("Take did not stop after n")
	}
}

func TestIdentityTables(t *testing.T) {
	tables := IdentityTables(3, "A", "B", 1)
	if len(tables) != 2 {
		t.Fatalf("tables = %v", tables)
	}
	for _, op := range []string{"A", "B"} {
		for i := 0; i < 3; i++ {
			if tables[op][itoa(i)] != i {
				t.Fatalf("%s[%d] = %d", op, i, tables[op][itoa(i)])
			}
		}
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestTwitterBasicShape(t *testing.T) {
	tw := NewTwitter(DefaultTwitterConfig())
	locs := make(map[string]int)
	tags := make(map[string]int)
	for i := 0; i < 20000; i++ {
		tu := tw.Next()
		if len(tu.Values) != 2 {
			t.Fatalf("values = %v", tu.Values)
		}
		locs[tu.Values[0]]++
		tags[tu.Values[1]]++
	}
	if len(locs) < 10 {
		t.Errorf("only %d locations seen", len(locs))
	}
	if len(tags) < 50 {
		t.Errorf("only %d hashtags seen", len(tags))
	}
	// Zipf skew: the most popular location should dominate.
	max := 0
	for _, c := range locs {
		if c > max {
			max = c
		}
	}
	if float64(max)/20000 < 0.05 {
		t.Errorf("top location only %.3f of stream; expected Zipf skew", float64(max)/20000)
	}
}

func TestTwitterCorrelationCreatesHeavyPairs(t *testing.T) {
	cfg := DefaultTwitterConfig()
	cfg.Correlation = 0.95
	cfg.FlashWeight = 0
	tw := NewTwitter(cfg)
	pairs := make(map[[2]string]int)
	const n = 30000
	for i := 0; i < n; i++ {
		tu := tw.Next()
		pairs[[2]string{tu.Values[0], tu.Values[1]}]++
	}
	max := 0
	for _, c := range pairs {
		if c > max {
			max = c
		}
	}
	// With strong correlation the top pair must far exceed the uniform
	// expectation.
	if max < n/200 {
		t.Errorf("top pair count %d too small for correlated stream", max)
	}
}

func TestTwitterDriftChangesAffinities(t *testing.T) {
	cfg := DefaultTwitterConfig()
	cfg.DriftPerWeek = 1.0 // full re-roll
	tw := NewTwitter(cfg)

	topPair := func() [2]string {
		counts := make(map[[2]string]int)
		for i := 0; i < 5000; i++ {
			tu := tw.Next()
			counts[[2]string{tu.Values[0], tu.Values[1]}]++
		}
		var best [2]string
		max := 0
		for p, c := range counts {
			if c > max {
				best, max = p, c
			}
		}
		return best
	}

	week0 := topPair()
	tw.NextWeek()
	if tw.Week() != 1 {
		t.Fatalf("Week() = %d", tw.Week())
	}
	week1 := topPair()
	if week0 == week1 {
		t.Error("full drift did not change the dominant pair (flaky only with astronomically small probability)")
	}
}

func TestTwitterNewTagsAppear(t *testing.T) {
	cfg := DefaultTwitterConfig()
	cfg.NewTagsPerWeek = 500
	tw := NewTwitter(cfg)
	tw.NextWeek()
	found := false
	for i := 0; i < 50000 && !found; i++ {
		tu := tw.Next()
		if len(tu.Values[1]) > 3 && tu.Values[1][:3] == "#w1" {
			found = true
		}
	}
	if !found {
		t.Error("no week-1 hashtags in the stream after NextWeek")
	}
}

func TestTwitterFlashes(t *testing.T) {
	cfg := DefaultTwitterConfig()
	cfg.FlashEvents = 3
	cfg.FlashWeight = 0.5
	tw := NewTwitter(cfg)
	if got := len(tw.Flashes()); got != 3 {
		t.Fatalf("Flashes() = %d, want 3", got)
	}
	flashTuples := 0
	for i := 0; i < 2000; i++ {
		tu := tw.Next()
		if len(tu.Values[1]) > 7 && tu.Values[1][:7] == "#flash_" {
			flashTuples++
		}
	}
	if flashTuples < 500 {
		t.Errorf("flash tuples = %d, want roughly half of 2000", flashTuples)
	}
}

func TestTwitterDeterministic(t *testing.T) {
	a := NewTwitter(DefaultTwitterConfig())
	b := NewTwitter(DefaultTwitterConfig())
	for i := 0; i < 500; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.Values[0] != tb.Values[0] || ta.Values[1] != tb.Values[1] {
			t.Fatal("same config produced different streams")
		}
	}
}

func TestFlickrStableCorrelation(t *testing.T) {
	f := NewFlickr(DefaultFlickrConfig())
	// For a fixed tag, the country distribution must concentrate on the
	// affine set (at most AffineCountries + noise distinct countries
	// dominate).
	counts := make(map[string]map[string]int)
	for i := 0; i < 50000; i++ {
		tu := f.Next()
		if counts[tu.Values[0]] == nil {
			counts[tu.Values[0]] = make(map[string]int)
		}
		counts[tu.Values[0]][tu.Values[1]]++
	}
	// Pick the most frequent tag.
	bestTag, max := "", 0
	for tag, cs := range counts {
		total := 0
		for _, c := range cs {
			total += c
		}
		if total > max {
			bestTag, max = tag, total
		}
	}
	cs := counts[bestTag]
	cfg := DefaultFlickrConfig()
	top := topN(cs, cfg.AffineCountries)
	if float64(top)/float64(max) < 0.6 {
		t.Errorf("top-%d countries cover %.2f of tag %s, want >= 0.6 (correlation 0.8)",
			cfg.AffineCountries, float64(top)/float64(max), bestTag)
	}
}

func topN(cs map[string]int, n int) int {
	var vals []int
	for _, c := range cs {
		vals = append(vals, c)
	}
	// insertion sort descending (tiny n)
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] > vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	total := 0
	for i := 0; i < n && i < len(vals); i++ {
		total += vals[i]
	}
	return total
}

func TestFlickrDeterministicAndPadding(t *testing.T) {
	a := NewFlickr(DefaultFlickrConfig())
	b := NewFlickr(DefaultFlickrConfig())
	for i := 0; i < 200; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.Values[0] != tb.Values[0] || ta.Values[1] != tb.Values[1] {
			t.Fatal("same config produced different streams")
		}
	}
	a.SetPadding(4096)
	if tu := a.Next(); tu.Padding != 4096 {
		t.Fatalf("padding = %d after SetPadding", tu.Padding)
	}
}

func TestGeneratorsClampDegenerateConfigs(t *testing.T) {
	tw := NewTwitter(TwitterConfig{Seed: 1})
	for i := 0; i < 10; i++ {
		if tu := tw.Next(); len(tu.Values) != 2 {
			t.Fatal("degenerate twitter config broke")
		}
	}
	f := NewFlickr(FlickrConfig{Seed: 1})
	for i := 0; i < 10; i++ {
		if tu := f.Next(); len(tu.Values) != 2 {
			t.Fatal("degenerate flickr config broke")
		}
	}
}
