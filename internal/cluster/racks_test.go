package cluster

import "testing"

func TestDefaultSingleRack(t *testing.T) {
	topo := testTopo(t, 2, 2)
	p, err := NewRoundRobin(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Racks() != 1 {
		t.Fatalf("Racks() = %d, want 1 by default", p.Racks())
	}
	if p.RackOf(0) != 0 || p.RackOf(1) != 0 {
		t.Fatal("all servers should be in rack 0 by default")
	}
	if p.RackOf(-1) != -1 || p.RackOf(5) != -1 {
		t.Fatal("invalid servers should report rack -1")
	}
}

func TestAssignRacks(t *testing.T) {
	topo := testTopo(t, 4, 4)
	p, err := NewRoundRobin(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AssignRacks([]int{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if p.Racks() != 2 {
		t.Fatalf("Racks() = %d", p.Racks())
	}
	if p.RackOf(2) != 1 {
		t.Fatalf("RackOf(2) = %d", p.RackOf(2))
	}
	assignment := p.RackAssignment()
	assignment[0] = 9 // callers must not alias internals
	if p.RackOf(0) != 0 {
		t.Fatal("RackAssignment exposes internal slice")
	}
}

func TestAssignRacksValidation(t *testing.T) {
	topo := testTopo(t, 2, 2)
	p, _ := NewRoundRobin(topo, 2)
	if err := p.AssignRacks([]int{0}); err == nil {
		t.Error("wrong length accepted")
	}
	if err := p.AssignRacks([]int{0, -1}); err == nil {
		t.Error("negative rack accepted")
	}
}
