// Package cluster models the physical deployment of a topology: a set of
// servers and the static assignment of operator instances (POIs) to them.
// Following §3.1 of the paper, the placement is an input to the routing
// optimizer, not something it changes (operator scheduling is orthogonal
// related work).
package cluster

import (
	"fmt"

	"github.com/locastream/locastream/internal/topology"
)

// Placement maps every operator instance to the server hosting it, and
// every server to a rack (a single rack by default). Rack information
// feeds the hierarchical locality extension sketched in the paper's
// conclusion.
type Placement struct {
	servers  int
	serverOf map[string][]int // op -> instance index -> server
	rackOf   []int            // server -> rack
	racks    int
}

// NewRoundRobin places instance i of every operator on server i mod
// servers. With parallelism == servers this reproduces the paper's
// deployment, where each server hosts exactly one instance of each
// operator (X_i on server i, §4.1).
func NewRoundRobin(t *topology.Topology, servers int) (*Placement, error) {
	if servers < 1 {
		return nil, fmt.Errorf("cluster: %d servers, want >= 1", servers)
	}
	p := &Placement{
		servers:  servers,
		serverOf: make(map[string][]int),
		rackOf:   make([]int, servers),
		racks:    1,
	}
	for _, op := range t.Operators() {
		assign := make([]int, op.Parallelism)
		for i := range assign {
			assign[i] = i % servers
		}
		p.serverOf[op.Name] = assign
	}
	return p, nil
}

// NewExplicit builds a placement from an explicit map of operator name to
// per-instance server indices.
func NewExplicit(t *topology.Topology, servers int, assign map[string][]int) (*Placement, error) {
	if servers < 1 {
		return nil, fmt.Errorf("cluster: %d servers, want >= 1", servers)
	}
	p := &Placement{
		servers:  servers,
		serverOf: make(map[string][]int),
		rackOf:   make([]int, servers),
		racks:    1,
	}
	for _, op := range t.Operators() {
		a, ok := assign[op.Name]
		if !ok {
			return nil, fmt.Errorf("cluster: no placement for operator %q", op.Name)
		}
		if len(a) != op.Parallelism {
			return nil, fmt.Errorf("cluster: operator %q has %d instances but %d placements",
				op.Name, op.Parallelism, len(a))
		}
		for i, s := range a {
			if s < 0 || s >= servers {
				return nil, fmt.Errorf("cluster: operator %q instance %d on invalid server %d",
					op.Name, i, s)
			}
		}
		p.serverOf[op.Name] = append([]int(nil), a...)
	}
	return p, nil
}

// AssignRacks maps servers to racks. rackOf must list one non-negative
// rack per server; rack numbering may be sparse.
func (p *Placement) AssignRacks(rackOf []int) error {
	if len(rackOf) != p.servers {
		return fmt.Errorf("cluster: %d rack entries for %d servers", len(rackOf), p.servers)
	}
	racks := 0
	for s, r := range rackOf {
		if r < 0 {
			return fmt.Errorf("cluster: server %d has negative rack %d", s, r)
		}
		if r+1 > racks {
			racks = r + 1
		}
	}
	p.rackOf = append([]int(nil), rackOf...)
	p.racks = racks
	return nil
}

// Servers returns the number of servers.
func (p *Placement) Servers() int { return p.servers }

// Racks returns the number of racks (1 unless AssignRacks was called).
func (p *Placement) Racks() int { return p.racks }

// RackOf returns the rack of a server (-1 for invalid servers).
func (p *Placement) RackOf(server int) int {
	if server < 0 || server >= p.servers {
		return -1
	}
	return p.rackOf[server]
}

// RackAssignment returns a copy of the server-to-rack map.
func (p *Placement) RackAssignment() []int {
	return append([]int(nil), p.rackOf...)
}

// Parallelism returns the instance count of op (0 when unknown).
func (p *Placement) Parallelism(op string) int { return len(p.serverOf[op]) }

// ServerOf returns the server hosting instance idx of op; -1 when the
// operator or instance is unknown.
func (p *Placement) ServerOf(op string, idx int) int {
	a, ok := p.serverOf[op]
	if !ok || idx < 0 || idx >= len(a) {
		return -1
	}
	return a[idx]
}

// ServersOf returns a copy of the per-instance server assignment of op.
func (p *Placement) ServersOf(op string) []int {
	return append([]int(nil), p.serverOf[op]...)
}

// InstancesOn returns the instance indices of op hosted on server s.
func (p *Placement) InstancesOn(op string, s int) []int {
	var out []int
	for i, server := range p.serverOf[op] {
		if server == s {
			out = append(out, i)
		}
	}
	return out
}
