// Package cluster models the physical deployment of a topology: a set of
// servers and the static assignment of operator instances (POIs) to them.
// Following §3.1 of the paper, the placement is an input to the routing
// optimizer, not something it changes (operator scheduling is orthogonal
// related work).
package cluster

import (
	"fmt"

	"github.com/locastream/locastream/internal/topology"
)

// Locality tiers, cheapest first. Tier(from, to) classifies a transfer
// between two servers; TierCosts prices each class relative to a
// same-rack remote hop.
const (
	// TierServer: both instances on the same server (in-process hand-off).
	TierServer = iota
	// TierRack: different servers sharing a rack (one ToR switch hop).
	TierRack
	// TierCluster: different racks inside one cluster (aggregation layer).
	TierCluster
	// TierRegion: different clusters (the metered cross-region link).
	TierRegion
	// NumTiers is the number of locality tiers.
	NumTiers
)

// TierCosts is the relative transfer cost of each locality tier, indexed
// by the Tier* constants. Costs must be non-negative and non-decreasing
// from TierServer to TierRegion.
type TierCosts [NumTiers]float64

// DefaultTierCosts prices the hierarchy the way the federation layer
// assumes it: in-process free, rack hop 1, cross-rack 4, and the
// cross-cluster link 100× a rack hop — the gate every federated
// migration must amortize.
func DefaultTierCosts() TierCosts { return TierCosts{0, 1, 4, 100} }

// Placement maps every operator instance to the server hosting it, and
// every server to a rack and a cluster (a single rack in a single
// cluster by default). The rack and cluster tiers feed the hierarchical
// locality extension sketched in the paper's conclusion: the partitioner
// splits keys across clusters before racks before servers, and the
// federation layer prices cross-cluster moves with TierCosts.
type Placement struct {
	servers   int
	serverOf  map[string][]int // op -> instance index -> server
	rackOf    []int            // server -> rack
	racks     int
	clusterOf []int // server -> cluster
	clusters  int
	costs     TierCosts
}

// NewRoundRobin places instance i of every operator on server i mod
// servers. With parallelism == servers this reproduces the paper's
// deployment, where each server hosts exactly one instance of each
// operator (X_i on server i, §4.1).
func NewRoundRobin(t *topology.Topology, servers int) (*Placement, error) {
	if servers < 1 {
		return nil, fmt.Errorf("cluster: %d servers, want >= 1", servers)
	}
	p := newPlacement(servers)
	for _, op := range t.Operators() {
		assign := make([]int, op.Parallelism)
		for i := range assign {
			assign[i] = i % servers
		}
		p.serverOf[op.Name] = assign
	}
	return p, nil
}

func newPlacement(servers int) *Placement {
	return &Placement{
		servers:   servers,
		serverOf:  make(map[string][]int),
		rackOf:    make([]int, servers),
		racks:     1,
		clusterOf: make([]int, servers),
		clusters:  1,
		costs:     DefaultTierCosts(),
	}
}

// NewExplicit builds a placement from an explicit map of operator name to
// per-instance server indices.
func NewExplicit(t *topology.Topology, servers int, assign map[string][]int) (*Placement, error) {
	if servers < 1 {
		return nil, fmt.Errorf("cluster: %d servers, want >= 1", servers)
	}
	p := newPlacement(servers)
	for _, op := range t.Operators() {
		a, ok := assign[op.Name]
		if !ok {
			return nil, fmt.Errorf("cluster: no placement for operator %q", op.Name)
		}
		if len(a) != op.Parallelism {
			return nil, fmt.Errorf("cluster: operator %q has %d instances but %d placements",
				op.Name, op.Parallelism, len(a))
		}
		for i, s := range a {
			if s < 0 || s >= servers {
				return nil, fmt.Errorf("cluster: operator %q instance %d on invalid server %d",
					op.Name, i, s)
			}
		}
		p.serverOf[op.Name] = append([]int(nil), a...)
	}
	return p, nil
}

// AssignRacks maps servers to racks. rackOf must list one non-negative
// rack per server; rack numbering may be sparse. When clusters were
// already assigned, every rack must stay within one cluster.
func (p *Placement) AssignRacks(rackOf []int) error {
	if len(rackOf) != p.servers {
		return fmt.Errorf("cluster: %d rack entries for %d servers", len(rackOf), p.servers)
	}
	racks := 0
	for s, r := range rackOf {
		if r < 0 {
			return fmt.Errorf("cluster: server %d has negative rack %d", s, r)
		}
		if r+1 > racks {
			racks = r + 1
		}
	}
	if p.clusters > 1 && racks > 1 {
		if err := checkNesting(rackOf, p.clusterOf); err != nil {
			return err
		}
	}
	p.rackOf = append([]int(nil), rackOf...)
	p.racks = racks
	return nil
}

// AssignClusters maps servers to clusters. clusterOf must list one
// non-negative cluster per server; cluster numbering may be sparse.
// When racks were already assigned, every rack must stay within one
// cluster (a physical rack cannot straddle the cross-region link).
func (p *Placement) AssignClusters(clusterOf []int) error {
	if len(clusterOf) != p.servers {
		return fmt.Errorf("cluster: %d cluster entries for %d servers", len(clusterOf), p.servers)
	}
	clusters := 0
	for s, c := range clusterOf {
		if c < 0 {
			return fmt.Errorf("cluster: server %d has negative cluster %d", s, c)
		}
		if c+1 > clusters {
			clusters = c + 1
		}
	}
	if p.racks > 1 && clusters > 1 {
		if err := checkNesting(p.rackOf, clusterOf); err != nil {
			return err
		}
	}
	p.clusterOf = append([]int(nil), clusterOf...)
	p.clusters = clusters
	return nil
}

// AssignTiers installs the full server→rack→cluster tier list in one
// call; both lists must have one entry per server. Either may be nil to
// keep the default flat assignment for that tier. The update is atomic:
// on any validation error the placement keeps its previous tiers.
func (p *Placement) AssignTiers(rackOf, clusterOf []int) error {
	savedRackOf, savedRacks := p.rackOf, p.racks
	savedClusterOf, savedClusters := p.clusterOf, p.clusters
	restore := func() {
		p.rackOf, p.racks = savedRackOf, savedRacks
		p.clusterOf, p.clusters = savedClusterOf, savedClusters
	}
	if clusterOf != nil {
		if err := p.AssignClusters(clusterOf); err != nil {
			restore()
			return err
		}
	}
	if rackOf != nil {
		if err := p.AssignRacks(rackOf); err != nil {
			restore()
			return err
		}
	}
	return nil
}

// checkNesting rejects rack numbers that span clusters.
func checkNesting(rackOf, clusterOf []int) error {
	clusterOfRack := make(map[int]int)
	for s, r := range rackOf {
		if prev, ok := clusterOfRack[r]; ok {
			if prev != clusterOf[s] {
				return fmt.Errorf("cluster: rack %d spans clusters %d and %d", r, prev, clusterOf[s])
			}
		} else {
			clusterOfRack[r] = clusterOf[s]
		}
	}
	return nil
}

// SetTierCosts overrides the relative per-tier transfer costs. Costs
// must be non-negative and non-decreasing from TierServer to TierRegion.
func (p *Placement) SetTierCosts(costs TierCosts) error {
	if costs[0] < 0 {
		return fmt.Errorf("cluster: negative tier cost %v", costs[0])
	}
	for t := 1; t < NumTiers; t++ {
		if costs[t] < costs[t-1] {
			return fmt.Errorf("cluster: tier costs must be non-decreasing, got %v", costs)
		}
	}
	p.costs = costs
	return nil
}

// Costs returns the per-tier transfer costs.
func (p *Placement) Costs() TierCosts { return p.costs }

// Servers returns the number of servers.
func (p *Placement) Servers() int { return p.servers }

// Racks returns the number of racks (1 unless AssignRacks was called).
func (p *Placement) Racks() int { return p.racks }

// RackOf returns the rack of a server (-1 for invalid servers).
func (p *Placement) RackOf(server int) int {
	if server < 0 || server >= p.servers {
		return -1
	}
	return p.rackOf[server]
}

// RackAssignment returns a copy of the server-to-rack map.
func (p *Placement) RackAssignment() []int {
	return append([]int(nil), p.rackOf...)
}

// Clusters returns the number of clusters (1 unless AssignClusters was
// called).
func (p *Placement) Clusters() int { return p.clusters }

// ClusterOf returns the cluster of a server (-1 for invalid servers).
func (p *Placement) ClusterOf(server int) int {
	if server < 0 || server >= p.servers {
		return -1
	}
	return p.clusterOf[server]
}

// ClusterAssignment returns a copy of the server-to-cluster map.
func (p *Placement) ClusterAssignment() []int {
	return append([]int(nil), p.clusterOf...)
}

// ServersInCluster returns the server indices assigned to cluster c.
func (p *Placement) ServersInCluster(c int) []int {
	var out []int
	for s, sc := range p.clusterOf {
		if sc == c {
			out = append(out, s)
		}
	}
	return out
}

// Tier classifies a transfer between two servers into a locality tier.
// The cluster boundary dominates: two servers in different clusters are
// TierRegion regardless of rack numbering. Invalid servers map to
// TierRegion, the most conservative class.
func (p *Placement) Tier(from, to int) int {
	if from < 0 || from >= p.servers || to < 0 || to >= p.servers {
		return TierRegion
	}
	if from == to {
		return TierServer
	}
	if p.clusterOf[from] != p.clusterOf[to] {
		return TierRegion
	}
	if p.rackOf[from] != p.rackOf[to] {
		return TierCluster
	}
	return TierRack
}

// TierCost returns the relative cost of a transfer between two servers.
func (p *Placement) TierCost(from, to int) float64 {
	return p.costs[p.Tier(from, to)]
}

// Parallelism returns the instance count of op (0 when unknown).
func (p *Placement) Parallelism(op string) int { return len(p.serverOf[op]) }

// ServerOf returns the server hosting instance idx of op; -1 when the
// operator or instance is unknown.
func (p *Placement) ServerOf(op string, idx int) int {
	a, ok := p.serverOf[op]
	if !ok || idx < 0 || idx >= len(a) {
		return -1
	}
	return a[idx]
}

// ServersOf returns a copy of the per-instance server assignment of op.
func (p *Placement) ServersOf(op string) []int {
	return append([]int(nil), p.serverOf[op]...)
}

// InstancesOn returns the instance indices of op hosted on server s.
func (p *Placement) InstancesOn(op string, s int) []int {
	var out []int
	for i, server := range p.serverOf[op] {
		if server == s {
			out = append(out, i)
		}
	}
	return out
}
