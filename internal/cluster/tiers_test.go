package cluster

import "testing"

func TestDefaultSingleCluster(t *testing.T) {
	topo := testTopo(t, 2, 2)
	p, err := NewRoundRobin(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Clusters() != 1 {
		t.Fatalf("Clusters() = %d, want 1 by default", p.Clusters())
	}
	if p.ClusterOf(0) != 0 || p.ClusterOf(1) != 0 {
		t.Fatal("all servers should be in cluster 0 by default")
	}
	if p.ClusterOf(-1) != -1 || p.ClusterOf(5) != -1 {
		t.Fatal("invalid servers should report cluster -1")
	}
	if p.Costs() != DefaultTierCosts() {
		t.Fatalf("Costs() = %v, want defaults", p.Costs())
	}
}

func TestAssignClusters(t *testing.T) {
	topo := testTopo(t, 4, 4)
	p, err := NewRoundRobin(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AssignClusters([]int{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if p.Clusters() != 2 {
		t.Fatalf("Clusters() = %d", p.Clusters())
	}
	if p.ClusterOf(2) != 1 {
		t.Fatalf("ClusterOf(2) = %d", p.ClusterOf(2))
	}
	assignment := p.ClusterAssignment()
	assignment[0] = 9 // callers must not alias internals
	if p.ClusterOf(0) != 0 {
		t.Fatal("ClusterAssignment exposes internal slice")
	}
	if got := p.ServersInCluster(1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("ServersInCluster(1) = %v", got)
	}
}

func TestAssignClustersValidation(t *testing.T) {
	topo := testTopo(t, 2, 2)
	p, _ := NewRoundRobin(topo, 2)
	if err := p.AssignClusters([]int{0}); err == nil {
		t.Error("wrong length accepted")
	}
	if err := p.AssignClusters([]int{0, -1}); err == nil {
		t.Error("negative cluster accepted")
	}
}

// Sparse numbering is allowed — Clusters()/Racks() report max+1, and
// unused ids simply hold no servers.
func TestAssignTiersSparseNumbering(t *testing.T) {
	topo := testTopo(t, 4, 4)
	p, _ := NewRoundRobin(topo, 4)
	if err := p.AssignTiers([]int{0, 2, 5, 5}, []int{0, 0, 3, 3}); err != nil {
		t.Fatal(err)
	}
	if p.Racks() != 6 {
		t.Fatalf("Racks() = %d, want 6 with sparse numbering", p.Racks())
	}
	if p.Clusters() != 4 {
		t.Fatalf("Clusters() = %d, want 4 with sparse numbering", p.Clusters())
	}
	if len(p.ServersInCluster(1)) != 0 || len(p.ServersInCluster(2)) != 0 {
		t.Fatal("unused cluster ids should hold no servers")
	}
}

// Single-server racks and clusters are legal tiers.
func TestAssignTiersSingleServerTiers(t *testing.T) {
	topo := testTopo(t, 3, 3)
	p, _ := NewRoundRobin(topo, 3)
	if err := p.AssignTiers([]int{0, 1, 2}, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if p.Clusters() != 3 || p.Racks() != 3 {
		t.Fatalf("Clusters()/Racks() = %d/%d, want 3/3", p.Clusters(), p.Racks())
	}
	if p.Tier(0, 0) != TierServer || p.Tier(0, 1) != TierRegion {
		t.Fatal("single-server tiers misclassified")
	}
}

func TestAssignTiersValidation(t *testing.T) {
	topo := testTopo(t, 4, 4)
	p, _ := NewRoundRobin(topo, 4)
	// Tier-list length mismatches.
	if err := p.AssignTiers([]int{0, 0, 1}, []int{0, 0, 1, 1}); err == nil {
		t.Error("short rack list accepted")
	}
	if err := p.AssignTiers([]int{0, 0, 1, 1}, []int{0, 1}); err == nil {
		t.Error("short cluster list accepted")
	}
	// Rack 1 would span clusters 0 and 1: racks must nest.
	if err := p.AssignTiers([]int{0, 1, 1, 2}, []int{0, 0, 1, 1}); err == nil {
		t.Error("rack spanning two clusters accepted")
	}
	// Same nesting check when racks come first.
	if err := p.AssignRacks([]int{0, 1, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.AssignClusters([]int{0, 0, 1, 1}); err == nil {
		t.Error("cluster split through a rack accepted")
	}
}

func TestTierClassification(t *testing.T) {
	topo := testTopo(t, 6, 6)
	p, _ := NewRoundRobin(topo, 6)
	if err := p.AssignTiers([]int{0, 0, 1, 2, 2, 3}, []int{0, 0, 0, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		from, to, want int
	}{
		{0, 0, TierServer},
		{0, 1, TierRack},    // same rack
		{0, 2, TierCluster}, // same cluster, different rack
		{0, 3, TierRegion},  // different cluster
		{3, 4, TierRack},
		{2, 5, TierRegion},
		{-1, 0, TierRegion}, // invalid servers classify worst-case
	}
	for _, c := range cases {
		if got := p.Tier(c.from, c.to); got != c.want {
			t.Errorf("Tier(%d, %d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
	costs := p.Costs()
	if p.TierCost(0, 3) != costs[TierRegion] {
		t.Fatalf("TierCost(0, 3) = %v, want region cost", p.TierCost(0, 3))
	}
	if p.TierCost(0, 1) != costs[TierRack] {
		t.Fatalf("TierCost(0, 1) = %v, want rack cost", p.TierCost(0, 1))
	}
}

func TestSetTierCosts(t *testing.T) {
	topo := testTopo(t, 2, 2)
	p, _ := NewRoundRobin(topo, 2)
	if err := p.SetTierCosts(TierCosts{0, 1, 2, 50}); err != nil {
		t.Fatal(err)
	}
	if p.Costs() != (TierCosts{0, 1, 2, 50}) {
		t.Fatalf("Costs() = %v", p.Costs())
	}
	if err := p.SetTierCosts(TierCosts{0, -1, 2, 50}); err == nil {
		t.Error("negative cost accepted")
	}
	if err := p.SetTierCosts(TierCosts{0, 5, 2, 50}); err == nil {
		t.Error("decreasing cost accepted")
	}
}
