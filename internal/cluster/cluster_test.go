package cluster

import (
	"testing"

	"github.com/locastream/locastream/internal/topology"
)

func testTopo(t *testing.T, parA, parB int) *topology.Topology {
	t.Helper()
	topo, err := topology.NewBuilder("t").
		AddOperator(topology.Operator{Name: "A", Parallelism: parA, New: topology.Passthrough}).
		AddOperator(topology.Operator{Name: "B", Parallelism: parB, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(0) }}).
		Connect("A", "B", topology.Fields, 0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestRoundRobinPaperDeployment(t *testing.T) {
	// parallelism == servers: X_i on server i.
	topo := testTopo(t, 4, 4)
	p, err := NewRoundRobin(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Servers() != 4 {
		t.Fatalf("Servers() = %d", p.Servers())
	}
	for i := 0; i < 4; i++ {
		if got := p.ServerOf("A", i); got != i {
			t.Errorf("ServerOf(A,%d) = %d, want %d", i, got, i)
		}
		if got := p.ServerOf("B", i); got != i {
			t.Errorf("ServerOf(B,%d) = %d, want %d", i, got, i)
		}
	}
}

func TestRoundRobinWraps(t *testing.T) {
	topo := testTopo(t, 5, 2)
	p, err := NewRoundRobin(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 1, 0}
	for i, w := range want {
		if got := p.ServerOf("A", i); got != w {
			t.Errorf("ServerOf(A,%d) = %d, want %d", i, got, w)
		}
	}
	if got := p.InstancesOn("A", 0); len(got) != 3 {
		t.Errorf("InstancesOn(A,0) = %v, want 3 instances", got)
	}
	if p.Parallelism("A") != 5 || p.Parallelism("B") != 2 {
		t.Error("Parallelism wrong")
	}
	if p.Parallelism("missing") != 0 {
		t.Error("Parallelism(missing) should be 0")
	}
}

func TestRoundRobinInvalidServers(t *testing.T) {
	topo := testTopo(t, 2, 2)
	if _, err := NewRoundRobin(topo, 0); err == nil {
		t.Fatal("0 servers accepted")
	}
}

func TestServerOfOutOfRange(t *testing.T) {
	topo := testTopo(t, 2, 2)
	p, _ := NewRoundRobin(topo, 2)
	if p.ServerOf("A", -1) != -1 || p.ServerOf("A", 5) != -1 || p.ServerOf("zzz", 0) != -1 {
		t.Error("out-of-range lookups should return -1")
	}
}

func TestExplicitPlacement(t *testing.T) {
	topo := testTopo(t, 2, 3)
	p, err := NewExplicit(topo, 3, map[string][]int{
		"A": {2, 0},
		"B": {1, 1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.ServerOf("A", 0) != 2 || p.ServerOf("B", 1) != 1 {
		t.Error("explicit placement not honoured")
	}
	if got := p.InstancesOn("B", 1); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("InstancesOn(B,1) = %v", got)
	}
	servers := p.ServersOf("B")
	servers[0] = 99
	if p.ServerOf("B", 0) == 99 {
		t.Error("ServersOf exposes internal slice")
	}
}

func TestExplicitPlacementErrors(t *testing.T) {
	topo := testTopo(t, 2, 2)
	if _, err := NewExplicit(topo, 0, nil); err == nil {
		t.Error("0 servers accepted")
	}
	if _, err := NewExplicit(topo, 2, map[string][]int{"A": {0, 1}}); err == nil {
		t.Error("missing operator accepted")
	}
	if _, err := NewExplicit(topo, 2, map[string][]int{"A": {0}, "B": {0, 1}}); err == nil {
		t.Error("wrong instance count accepted")
	}
	if _, err := NewExplicit(topo, 2, map[string][]int{"A": {0, 5}, "B": {0, 1}}); err == nil {
		t.Error("invalid server index accepted")
	}
}
