package engine

import (
	"reflect"
	"strconv"
	"testing"

	"github.com/locastream/locastream/internal/topology"
	"github.com/locastream/locastream/internal/transport"
)

// killDrill is the deterministic kill-one-server drill over real TCP:
// drive a keyed stream, drain, kill server 2, keep driving, drain
// again. It returns the per-key counts accumulated on the surviving B
// instances, the number of injects rejected at the source, and the
// final stats — and asserts inside that the loss accounting settled
// exactly: every accepted tuple is either counted by B or counted lost,
// with nothing silently dropped on the wire.
func killDrill(t *testing.T, comp transport.Compression) (perKey map[string]uint64, rejected int, st Stats) {
	t.Helper()
	const servers, keys, phase = 3, 12, 900
	live := newFaultLive(t, servers, func(cfg *LiveConfig) {
		cfg.TCPTransport = true
		cfg.WireCompression = comp
	})
	injectKeys(t, live, phase, keys) // drains before returning

	if err := live.KillServer(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < phase; i++ {
		k := "k" + strconv.Itoa(i%keys)
		if err := live.Inject(topology.Tuple{Values: []string{k, k}}); err != nil {
			rejected++
		}
	}
	// Drain must not hang: each tuple bound for the dead server was
	// settled (rejected at the source, counted lost at the forward, or
	// reported by the transport's drop accounting).
	live.Drain()
	st = live.StatsSnapshot()

	if st.WireDrops != 0 {
		t.Fatalf("WireDrops = %d, want 0 (transport corrupted or misaddressed frames)", st.WireDrops)
	}
	if rejected == 0 || st.TuplesLost == 0 {
		t.Fatalf("drill never hit the dead server (rejected %d, lost %d)", rejected, st.TuplesLost)
	}
	// Exact conservation: every accepted tuple is processed by B (alive
	// or dead-before-the-kill) or counted lost, exactly once.
	var processedB uint64
	for _, n := range st.Loads["B"] {
		processedB += n
	}
	if want := uint64(2*phase-rejected) - st.TuplesLost; processedB != want {
		t.Fatalf("B processed %d tuples, want %d (= %d accepted - %d lost): loss accounting did not settle exactly",
			processedB, want, 2*phase-rejected, st.TuplesLost)
	}

	perKey = map[string]uint64{}
	for inst := 0; inst < servers; inst++ {
		if live.Placement().ServerOf("B", inst) == 2 {
			continue // the dead server's executor is not inspectable
		}
		if err := live.ProcessorState("B", inst, func(p topology.Processor) {
			c := p.(*topology.Counter)
			for i := 0; i < keys; i++ {
				k := "k" + strconv.Itoa(i)
				if n := c.Count(k); n > 0 {
					perKey[k] += n
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	return perKey, rejected, st
}

// TestTCPKillServerCompressedDrill runs the drill with and without wire
// compression and requires them to agree tuple-for-tuple: killing a
// server under the dictionary+LZ encoding loses exactly what the raw
// encoding loses, delivers exactly the same per-key counts to the
// survivors — and actually compresses while doing it.
func TestTCPKillServerCompressedDrill(t *testing.T) {
	rawKeys, rawRej, rawSt := killDrill(t, transport.CompressionOff)
	cmpKeys, cmpRej, cmpSt := killDrill(t, transport.CompressionAuto)

	if !reflect.DeepEqual(rawKeys, cmpKeys) {
		t.Fatalf("delivered tuple sets differ:\n raw: %v\ncomp: %v", rawKeys, cmpKeys)
	}
	if rawRej != cmpRej || rawSt.TuplesLost != cmpSt.TuplesLost {
		t.Fatalf("loss accounting differs: raw rejected/lost %d/%d, compressed %d/%d",
			rawRej, rawSt.TuplesLost, cmpRej, cmpSt.TuplesLost)
	}
	if rawSt.Wire.DictFramesSent != 0 || rawSt.Wire.CompressedFramesSent != 0 {
		t.Fatalf("CompressionOff sent %d dict / %d compressed frames",
			rawSt.Wire.DictFramesSent, rawSt.Wire.CompressedFramesSent)
	}
	if cmpSt.Wire.DictFramesSent == 0 {
		t.Fatal("compressed run never announced a dictionary entry")
	}
	if r := cmpSt.Wire.CompressionRatio(); r <= 1.0 {
		t.Fatalf("compression ratio %.3f on a skewed keyed stream, want > 1.0", r)
	}
}
