package engine

import (
	"fmt"
	"sort"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/metrics"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/simnet"
	"github.com/locastream/locastream/internal/spacesaving"
	"github.com/locastream/locastream/internal/topology"
)

// SimConfig configures a simulation run.
type SimConfig struct {
	// Topology is the validated application DAG.
	Topology *topology.Topology
	// Placement assigns operator instances to servers.
	Placement *cluster.Placement
	// Model is the resource cost model.
	Model simnet.Model
	// Policies maps EdgeKey(from, to) to the routing policy of that
	// edge. Build with NewPolicies.
	Policies map[string]routing.Policy
	// SourcePolicy routes externally injected tuples to the source
	// operator's instances.
	SourcePolicy routing.Policy
	// SourceGrouping is the grouping of the implicit source hop. The
	// zero value means Fields. Non-fields groupings leave tuples without
	// a routing-key context until they cross their first fields edge.
	SourceGrouping topology.Grouping
	// SourceKeyField is the tuple field used as routing key on the
	// source hop (Fields grouping only).
	SourceKeyField int
	// SketchCapacity bounds the per-instance pair sketches (the paper
	// uses ~1 MB per POI, §4). Zero disables instrumentation.
	SketchCapacity int
	// ChargeSourceHop also charges transport costs for the source hop.
	// The default (false) matches the paper's setup, where the sources
	// generate tuples and the measured pipeline starts at the first
	// operator.
	ChargeSourceHop bool
}

// Sim replays tuples through the topology, accumulating resource usage,
// traffic statistics and key-pair sketches. It is single-threaded and
// deterministic. Not safe for concurrent use.
type Sim struct {
	cfg   SimConfig
	topo  *topology.Topology
	place *cluster.Placement
	nicNs float64

	procs    map[string][]topology.Processor
	sketches map[[2]string][]*spacesaving.PairSketch // (fromOp,toOp) -> per sender instance

	usage    *simnet.Usage
	traffic  map[string]*metrics.Traffic
	received map[simnet.POI]uint64
	seq      uint64
	injected uint64
}

// NewSim validates cfg and instantiates processors and sketches.
func NewSim(cfg SimConfig) (*Sim, error) {
	if cfg.Topology == nil || cfg.Placement == nil {
		return nil, fmt.Errorf("engine: sim needs a topology and a placement")
	}
	if cfg.SourcePolicy == nil {
		return nil, fmt.Errorf("engine: sim needs a source policy")
	}
	for _, e := range cfg.Topology.Edges() {
		if cfg.Policies[EdgeKey(e.From, e.To)] == nil {
			return nil, fmt.Errorf("engine: no policy for edge %s", EdgeKey(e.From, e.To))
		}
	}

	s := &Sim{
		cfg:      cfg,
		topo:     cfg.Topology,
		place:    cfg.Placement,
		nicNs:    cfg.Model.NICNsPerByte(),
		procs:    make(map[string][]topology.Processor),
		sketches: make(map[[2]string][]*spacesaving.PairSketch),
		usage:    simnet.NewUsage(cfg.Placement.Servers()),
		traffic:  make(map[string]*metrics.Traffic),
		received: make(map[simnet.POI]uint64),
	}
	for _, op := range cfg.Topology.Operators() {
		insts := make([]topology.Processor, op.Parallelism)
		for i := range insts {
			insts[i] = op.New()
		}
		s.procs[op.Name] = insts
	}
	for _, e := range cfg.Topology.Edges() {
		s.traffic[EdgeKey(e.From, e.To)] = &metrics.Traffic{}
	}
	return s, nil
}

// Inject routes one external tuple to the source operator and processes
// it through the whole DAG.
func (s *Sim) Inject(t topology.Tuple) {
	s.injected++
	keyOp, key := "", ""
	if s.sourceFields() {
		key = t.Field(s.cfg.SourceKeyField)
		keyOp = s.topo.Source()
	}
	s.seq++
	inst := s.cfg.SourcePolicy.Route(key, -1, s.seq)
	srcOp := s.topo.Source()
	if s.cfg.ChargeSourceHop {
		// External tuples always arrive over the network.
		server := s.place.ServerOf(srcOp, inst)
		size := float64(t.Size())
		s.usage.AddNICIn(server, size*s.nicNs)
		s.usage.AddCPU(simnet.POI{Op: srcOp, Instance: inst},
			s.cfg.Model.RemoteFixedNs+size*s.cfg.Model.DeserializeNsPerByte)
	}
	s.deliver(srcOp, inst, keyOp, key, t)
}

// sourceFields reports whether the source hop routes by key.
func (s *Sim) sourceFields() bool {
	return s.cfg.SourceGrouping == 0 || s.cfg.SourceGrouping == topology.Fields
}

// InjectAll injects every tuple produced by gen until it reports done.
func (s *Sim) InjectAll(gen func() (topology.Tuple, bool)) {
	for {
		t, ok := gen()
		if !ok {
			return
		}
		s.Inject(t)
	}
}

// deliver processes a tuple at one instance and forwards the emitted
// tuples downstream. keyOp/key identify the last fields-grouping key the
// tuple was routed with (for pair instrumentation); keyOp is "" when the
// tuple has not crossed a fields edge yet.
func (s *Sim) deliver(op string, inst int, keyOp, key string, t topology.Tuple) {
	poi := simnet.POI{Op: op, Instance: inst}
	s.received[poi]++
	s.usage.AddCPU(poi, s.cfg.Model.CPUPerTupleNs)

	server := s.place.ServerOf(op, inst)
	outEdges := s.topo.OutEdges(op)
	if len(outEdges) == 0 {
		s.procs[op][inst].Process(t, func(topology.Tuple) {})
		return
	}
	s.procs[op][inst].Process(t, func(out topology.Tuple) {
		for _, e := range outEdges {
			s.forward(e, op, inst, server, keyOp, key, out)
		}
	})
}

// forward routes one emitted tuple across one edge, charging transfer
// costs and recording statistics, then processes it at the recipient.
func (s *Sim) forward(e topology.Edge, fromOp string, fromInst, fromServer int, keyOp, key string, out topology.Tuple) {
	policy := s.cfg.Policies[EdgeKey(e.From, e.To)]
	nextKeyOp, nextKey := keyOp, key
	routeKey := ""
	if e.Grouping == topology.Fields {
		routeKey = out.Field(e.KeyField)
		// Pair instrumentation (§3.2): associate the key that routed
		// this tuple on the previous fields hop with the key about to
		// route it now.
		if s.cfg.SketchCapacity > 0 && keyOp != "" {
			s.sketchFor(keyOp, e.To, fromOp, fromInst).Add(key, routeKey)
		}
		nextKeyOp, nextKey = e.To, routeKey
	}
	s.seq++
	target := policy.Route(routeKey, fromServer, s.seq)
	targetServer := s.place.ServerOf(e.To, target)
	tier := s.place.Tier(fromServer, targetServer)
	local := tier == cluster.TierServer
	sameRack := tier <= cluster.TierRack
	sameCluster := tier <= cluster.TierCluster

	size := out.Size()
	s.traffic[EdgeKey(e.From, e.To)].RecordTiers(local, sameRack, sameCluster, size)
	fromPOI := simnet.POI{Op: fromOp, Instance: fromInst}
	toPOI := simnet.POI{Op: e.To, Instance: target}
	if local {
		s.usage.AddCPU(fromPOI, s.cfg.Model.LocalHandoffNs)
	} else {
		fsize := float64(size)
		nicNs := s.nicNs
		switch {
		case !sameCluster:
			nicNs = s.cfg.Model.InterClusterNsPerByte()
		case !sameRack:
			nicNs = s.cfg.Model.InterRackNsPerByte()
		}
		s.usage.AddCPU(fromPOI, s.cfg.Model.RemoteFixedNs+fsize*s.cfg.Model.SerializeNsPerByte)
		s.usage.AddCPU(toPOI, s.cfg.Model.RemoteFixedNs+fsize*s.cfg.Model.DeserializeNsPerByte)
		s.usage.AddNICOut(fromServer, fsize*nicNs)
		s.usage.AddNICIn(targetServer, fsize*nicNs)
	}
	s.deliver(e.To, target, nextKeyOp, nextKey, out)
}

// sketchFor returns the pair sketch of the (keyOp, toOp) pair owned by
// the sending instance, creating it lazily.
func (s *Sim) sketchFor(keyOp, toOp, senderOp string, senderInst int) *spacesaving.PairSketch {
	id := [2]string{keyOp, toOp}
	list := s.sketches[id]
	if list == nil {
		// One sketch per instance of the sending operator.
		list = make([]*spacesaving.PairSketch, s.place.Parallelism(senderOp))
		s.sketches[id] = list
	}
	if senderInst >= len(list) {
		grown := make([]*spacesaving.PairSketch, senderInst+1)
		copy(grown, list)
		list = grown
		s.sketches[id] = list
	}
	if list[senderInst] == nil {
		list[senderInst] = spacesaving.NewPairs(s.cfg.SketchCapacity)
	}
	return list[senderInst]
}

// Injected returns the number of tuples injected since the last window
// reset.
func (s *Sim) Injected() uint64 { return s.injected }

// ThroughputPerSec returns the saturation throughput of the current
// window: injected tuples divided by the bottleneck resource's busy time.
func (s *Sim) ThroughputPerSec() float64 {
	return s.usage.ThroughputPerSec(s.injected)
}

// Bottleneck describes the busiest resource of the current window.
func (s *Sim) Bottleneck() (busyNs float64, label string) {
	return s.usage.MaxBusyNs()
}

// Traffic returns the accumulated traffic of one edge.
func (s *Sim) Traffic(from, to string) metrics.Traffic {
	if tr := s.traffic[EdgeKey(from, to)]; tr != nil {
		return *tr
	}
	return metrics.Traffic{}
}

// FieldsTraffic aggregates traffic over every fields-grouped edge: the
// paper's locality measure.
func (s *Sim) FieldsTraffic() metrics.Traffic {
	var agg metrics.Traffic
	for _, e := range s.topo.FieldsEdges() {
		agg.Add(*s.traffic[EdgeKey(e.From, e.To)])
	}
	return agg
}

// Loads returns the tuples received per instance of op in the current
// window.
func (s *Sim) Loads(op string) []uint64 {
	n := s.place.Parallelism(op)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = s.received[simnet.POI{Op: op, Instance: i}]
	}
	return out
}

// Processor returns instance inst of op, for example to inspect operator
// state in tests.
func (s *Sim) Processor(op string, inst int) topology.Processor {
	insts := s.procs[op]
	if inst < 0 || inst >= len(insts) {
		return nil
	}
	return insts[inst]
}

// PairStats snapshots the pair sketches of every instrumented operator
// pair, merged across sender instances, heaviest pairs first. When reset
// is true the sketches restart empty, as the protocol prescribes after a
// reconfiguration (§3.2).
func (s *Sim) PairStats(reset bool) []PairStat {
	ids := make([][2]string, 0, len(s.sketches))
	for id := range s.sketches {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i][0] != ids[j][0] {
			return ids[i][0] < ids[j][0]
		}
		return ids[i][1] < ids[j][1]
	})
	out := make([]PairStat, 0, len(ids))
	for _, id := range ids {
		merged := spacesaving.NewPairs(s.cfg.SketchCapacity * maxInt(1, len(s.sketches[id])))
		for _, sk := range s.sketches[id] {
			if sk == nil {
				continue
			}
			merged.Merge(sk)
			if reset {
				sk.Reset()
			}
		}
		out = append(out, PairStat{FromOp: id[0], ToOp: id[1], Pairs: merged.Counters()})
	}
	return out
}

// ApplyTables installs new routing tables on every table-based fields
// policy that routes into the given operators (including the source hop).
// Unknown operators and non-table policies are ignored, mirroring the
// fallback behaviour of §3.3.
func (s *Sim) ApplyTables(tables map[string]*routing.Table) {
	for op, table := range tables {
		if op == s.topo.Source() {
			if tf, ok := s.cfg.SourcePolicy.(*routing.TableFields); ok {
				tf.Update(table)
			}
		}
		for _, e := range s.topo.InEdges(op) {
			if e.Grouping != topology.Fields {
				continue
			}
			if tf, ok := s.cfg.Policies[EdgeKey(e.From, e.To)].(*routing.TableFields); ok {
				tf.Update(table)
			}
		}
	}
}

// ResetWindow clears the usage ledger, traffic counters, per-instance
// loads and the injected count, starting a new measurement window.
// Processor state and sketches persist across windows.
func (s *Sim) ResetWindow() {
	s.usage.Reset()
	for _, tr := range s.traffic {
		*tr = metrics.Traffic{}
	}
	s.received = make(map[simnet.POI]uint64)
	s.injected = 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
