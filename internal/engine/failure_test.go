package engine

import (
	"errors"
	"strconv"
	"testing"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/topology"
)

// corruptStateCounter snapshots garbage that its own RestoreKey rejects,
// simulating incompatible state between processor versions.
type corruptStateCounter struct {
	*topology.Counter
}

func (c *corruptStateCounter) SnapshotKey(key string) ([]byte, bool) {
	if _, ok := c.Counter.SnapshotKey(key); !ok {
		return nil, false
	}
	return []byte("corrupt"), true
}

func (c *corruptStateCounter) RestoreKey(string, []byte) error {
	return errors.New("corrupt state payload")
}

func TestMigrationSurvivesCorruptState(t *testing.T) {
	// The paper delegates fault guarantees to the engine ("the guarantees
	// are the ones provided by the streaming engine", §3.4): a failed
	// state restore drops that key's state but must not wedge the
	// protocol or the stream.
	const parallelism = 2
	topo, err := topology.NewBuilder("faulty").
		AddOperator(topology.Operator{Name: "A", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor {
				return &corruptStateCounter{Counter: topology.NewCounter(0)}
			}}).
		AddOperator(topology.Operator{Name: "B", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(1) }}).
		Connect("A", "B", topology.Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	place, err := cluster.NewRoundRobin(topo, parallelism)
	if err != nil {
		t.Fatal(err)
	}
	policies, _ := NewPolicies(topo, place, FieldsTable)
	src, _ := NewSourcePolicy(topo, place, topology.Fields, FieldsTable)
	live, err := NewLive(LiveConfig{
		Topology: topo, Placement: place, Policies: policies,
		SourcePolicy: src, SketchCapacity: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Stop()

	for i := 0; i < 200; i++ {
		k := strconv.Itoa(i % 4)
		_ = live.Inject(topology.Tuple{Values: []string{k, k + "'"}})
	}
	live.Drain()

	// Force every A key to move; restores will all fail.
	assign := map[string]int{}
	moves := map[string][]KeyMove{}
	for i := 0; i < 4; i++ {
		k := strconv.Itoa(i)
		from := routing.SaltedHashKey("A", k, parallelism)
		assign[k] = (from + 1) % parallelism
		moves["A"] = append(moves["A"], KeyMove{Key: k, From: from, To: (from + 1) % parallelism})
	}
	if err := live.Reconfigure(ReconfigPlan{
		Tables: map[string]*routing.Table{"A": {Version: 1, Assign: assign}},
		Moves:  moves,
	}); err != nil {
		t.Fatal(err)
	}

	// The stream must still flow and route by the new tables; migrated
	// counts were dropped (corrupt) but new ones accumulate at the new
	// owners.
	for i := 0; i < 200; i++ {
		k := strconv.Itoa(i % 4)
		_ = live.Inject(topology.Tuple{Values: []string{k, k + "'"}})
	}
	live.Drain()
	for i := 0; i < 4; i++ {
		k := strconv.Itoa(i)
		var cnt uint64
		_ = live.ProcessorState("A", assign[k], func(p topology.Processor) {
			cnt = p.(*corruptStateCounter).Count(k)
		})
		if cnt != 50 {
			t.Errorf("A[%d].Count(%s) = %d, want 50 fresh counts", assign[k], k, cnt)
		}
	}
	// B was untouched: 400 total.
	if got := liveTotalCount(t, live, "B", parallelism); got != 400 {
		t.Fatalf("B total = %d, want 400", got)
	}
}

// splitter emits one tuple per character of field 1 — fan-out through
// the protocol.
func TestReconfigureWithFanOutOperator(t *testing.T) {
	const parallelism = 2
	topo, err := topology.NewBuilder("fanout").
		AddOperator(topology.Operator{Name: "split", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor {
				return &fanOutCounter{Counter: topology.NewCounter(0)}
			}}).
		AddOperator(topology.Operator{Name: "chars", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(1) }}).
		Connect("split", "chars", topology.Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	place, _ := cluster.NewRoundRobin(topo, parallelism)
	policies, _ := NewPolicies(topo, place, FieldsTable)
	src, _ := NewSourcePolicy(topo, place, topology.Fields, FieldsTable)
	live, err := NewLive(LiveConfig{
		Topology: topo, Placement: place, Policies: policies,
		SourcePolicy: src, SketchCapacity: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Stop()

	for i := 0; i < 300; i++ {
		_ = live.Inject(topology.Tuple{Values: []string{"k" + strconv.Itoa(i%3), "xyz"}})
	}
	live.Drain()
	if err := live.Reconfigure(ReconfigPlan{}); err != nil {
		t.Fatal(err)
	}
	// 300 inputs x 3 characters each.
	if got := liveTotalCount(t, live, "chars", parallelism); got != 900 {
		t.Fatalf("chars total = %d, want 900", got)
	}
}

// fanOutCounter counts its key then emits one tuple per character of
// field 1.
type fanOutCounter struct {
	*topology.Counter
}

func (f *fanOutCounter) Process(t topology.Tuple, emit topology.Emit) {
	f.Counter.Process(t, func(topology.Tuple) {})
	for _, r := range t.Field(1) {
		emit(topology.Tuple{Values: []string{t.Field(0), string(r)}})
	}
}
