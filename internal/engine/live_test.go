package engine

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/topology"
)

func newLive(t testing.TB, parallelism int, mode FieldsMode, maxInFlight int) *Live {
	t.Helper()
	topo, place := paperTopology(t, parallelism)
	policies, err := NewPolicies(topo, place, mode)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSourcePolicy(topo, place, topology.Fields, mode)
	if err != nil {
		t.Fatal(err)
	}
	live, err := NewLive(LiveConfig{
		Topology:       topo,
		Placement:      place,
		Policies:       policies,
		SourcePolicy:   src,
		SourceKeyField: 0,
		SketchCapacity: 1024,
		MaxInFlight:    maxInFlight,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(live.Stop)
	return live
}

func liveTotalCount(t *testing.T, l *Live, op string, parallelism int) uint64 {
	t.Helper()
	var total uint64
	for i := 0; i < parallelism; i++ {
		if err := l.ProcessorState(op, i, func(p topology.Processor) {
			total += p.(*topology.Counter).TotalCount()
		}); err != nil {
			t.Fatal(err)
		}
	}
	return total
}

func TestLiveValidation(t *testing.T) {
	topo, place := paperTopology(t, 2)
	policies, _ := NewPolicies(topo, place, FieldsHash)
	src, _ := NewSourcePolicy(topo, place, topology.Fields, FieldsHash)

	if _, err := NewLive(LiveConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewLive(LiveConfig{Topology: topo, Placement: place, Policies: policies}); err == nil {
		t.Error("missing source policy accepted")
	}
	if _, err := NewLive(LiveConfig{Topology: topo, Placement: place, SourcePolicy: src}); err == nil {
		t.Error("missing edge policy accepted")
	}
}

func TestLiveProcessesAllTuples(t *testing.T) {
	const n = 1000
	live := newLive(t, 3, FieldsHash, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		if err := live.Inject(topology.Tuple{Values: []string{
			fmt.Sprintf("a%d", rng.Intn(20)),
			fmt.Sprintf("b%d", rng.Intn(20)),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	live.Drain()

	if got := liveTotalCount(t, live, "A", 3); got != n {
		t.Fatalf("A counted %d tuples, want %d", got, n)
	}
	if got := liveTotalCount(t, live, "B", 3); got != n {
		t.Fatalf("B counted %d tuples, want %d", got, n)
	}
	loads := live.Loads("A")
	var sum uint64
	for _, l := range loads {
		sum += l
	}
	if sum != n {
		t.Fatalf("Loads(A) sum = %d, want %d", sum, n)
	}
	if tr := live.Traffic("A", "B"); tr.Total() != n {
		t.Fatalf("edge traffic = %d, want %d", tr.Total(), n)
	}
}

func TestLiveKeyConsistency(t *testing.T) {
	// All tuples with the same second field must be counted by exactly
	// one B instance.
	live := newLive(t, 4, FieldsHash, 0)
	for i := 0; i < 200; i++ {
		_ = live.Inject(topology.Tuple{Values: []string{fmt.Sprintf("a%d", i%10), "hot"}})
	}
	live.Drain()
	owners := 0
	for i := 0; i < 4; i++ {
		_ = live.ProcessorState("B", i, func(p topology.Processor) {
			if p.(*topology.Counter).Count("hot") > 0 {
				owners++
			}
		})
	}
	if owners != 1 {
		t.Fatalf("key counted on %d instances, want 1", owners)
	}
}

func TestLiveHashLocality(t *testing.T) {
	const n = 6
	live := newLive(t, n, FieldsHash, 0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		_ = live.Inject(topology.Tuple{Values: []string{
			fmt.Sprintf("loc%d", rng.Intn(300)),
			fmt.Sprintf("tag%d", rng.Intn(300)),
		}})
	}
	live.Drain()
	got := live.FieldsTraffic().Locality()
	if math.Abs(got-1.0/n) > 0.04 {
		t.Fatalf("hash locality = %f, want ~%f", got, 1.0/n)
	}
}

func TestLiveReconfigureMigratesState(t *testing.T) {
	const parallelism = 4
	live := newLive(t, parallelism, FieldsTable, 0)

	// Phase 1: route with empty tables (hash fallback).
	for i := 0; i < 400; i++ {
		k := strconv.Itoa(i % 8)
		_ = live.Inject(topology.Tuple{Values: []string{k, k + "'"}})
	}
	live.Drain()

	// Build tables that move every key to a chosen instance.
	assignA := make(map[string]int)
	assignB := make(map[string]int)
	for i := 0; i < 8; i++ {
		assignA[strconv.Itoa(i)] = i % parallelism
		assignB[strconv.Itoa(i)+"'"] = i % parallelism
	}
	tables := map[string]*routing.Table{
		"A": {Version: 1, Assign: assignA},
		"B": {Version: 1, Assign: assignB},
	}
	moves := map[string][]KeyMove{}
	for k, to := range assignA {
		from := routing.SaltedHashKey("A", k, parallelism)
		if from != to {
			moves["A"] = append(moves["A"], KeyMove{Key: k, From: from, To: to})
		}
	}
	for k, to := range assignB {
		from := routing.SaltedHashKey("B", k, parallelism)
		if from != to {
			moves["B"] = append(moves["B"], KeyMove{Key: k, From: from, To: to})
		}
	}
	if err := live.Reconfigure(ReconfigPlan{Tables: tables, Moves: moves}); err != nil {
		t.Fatal(err)
	}

	// No state lost during migration.
	if got := liveTotalCount(t, live, "A", parallelism); got != 400 {
		t.Fatalf("A total after migration = %d, want 400", got)
	}
	if got := liveTotalCount(t, live, "B", parallelism); got != 400 {
		t.Fatalf("B total after migration = %d, want 400", got)
	}

	// State must now live exactly where the tables say.
	for k, inst := range assignA {
		var cnt uint64
		_ = live.ProcessorState("A", inst, func(p topology.Processor) {
			cnt = p.(*topology.Counter).Count(k)
		})
		if cnt != 50 {
			t.Errorf("A[%d].Count(%s) = %d, want 50", inst, k, cnt)
		}
	}

	// Phase 2: inject again; tuples must follow the tables (perfect
	// locality for matching pairs i -> i').
	for i := 0; i < 400; i++ {
		k := strconv.Itoa(i % 8)
		_ = live.Inject(topology.Tuple{Values: []string{k, k + "'"}})
	}
	live.Drain()
	for k, inst := range assignA {
		var cnt uint64
		_ = live.ProcessorState("A", inst, func(p topology.Processor) {
			cnt = p.(*topology.Counter).Count(k)
		})
		if cnt != 100 {
			t.Errorf("A[%d].Count(%s) = %d after phase 2, want 100", inst, k, cnt)
		}
	}
}

func TestLiveReconfigureDuringTraffic(t *testing.T) {
	// The stream is not suspended during reconfiguration (§3.4): inject
	// concurrently with a reconfiguration and verify nothing is lost.
	const parallelism = 3
	const total = 3000
	live := newLive(t, parallelism, FieldsTable, 0)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			k := strconv.Itoa(i % 12)
			_ = live.Inject(topology.Tuple{Values: []string{k, k + "'"}})
		}
	}()

	// Two overlapping-in-time reconfigurations while tuples flow.
	for round := 0; round < 2; round++ {
		assignA := make(map[string]int)
		assignB := make(map[string]int)
		for i := 0; i < 12; i++ {
			assignA[strconv.Itoa(i)] = (i + round) % parallelism
			assignB[strconv.Itoa(i)+"'"] = (i + round) % parallelism
		}
		tables := map[string]*routing.Table{
			"A": {Version: uint64(round + 1), Assign: assignA},
			"B": {Version: uint64(round + 1), Assign: assignB},
		}
		var moves map[string][]KeyMove
		if round == 0 {
			moves = map[string][]KeyMove{}
			for k, to := range assignA {
				if from := routing.SaltedHashKey("A", k, parallelism); from != to {
					moves["A"] = append(moves["A"], KeyMove{Key: k, From: from, To: to})
				}
			}
			for k, to := range assignB {
				if from := routing.SaltedHashKey("B", k, parallelism); from != to {
					moves["B"] = append(moves["B"], KeyMove{Key: k, From: from, To: to})
				}
			}
		} else {
			moves = map[string][]KeyMove{}
			for i := 0; i < 12; i++ {
				k := strconv.Itoa(i)
				moves["A"] = append(moves["A"], KeyMove{Key: k, From: i % parallelism, To: (i + 1) % parallelism})
				moves["B"] = append(moves["B"], KeyMove{Key: k + "'", From: i % parallelism, To: (i + 1) % parallelism})
			}
		}
		if err := live.Reconfigure(ReconfigPlan{Tables: tables, Moves: moves}); err != nil {
			t.Fatal(err)
		}
	}

	wg.Wait()
	live.Drain()

	if got := liveTotalCount(t, live, "A", parallelism); got != total {
		t.Fatalf("A total = %d, want %d (tuples lost in reconfiguration)", got, total)
	}
	if got := liveTotalCount(t, live, "B", parallelism); got != total {
		t.Fatalf("B total = %d, want %d", got, total)
	}
	// Per-key counts must each equal total/12 on exactly one instance.
	for i := 0; i < 12; i++ {
		k := strconv.Itoa(i)
		var sum uint64
		owners := 0
		for inst := 0; inst < parallelism; inst++ {
			_ = live.ProcessorState("A", inst, func(p topology.Processor) {
				if c := p.(*topology.Counter).Count(k); c > 0 {
					sum += c
					owners++
				}
			})
		}
		if sum != total/12 {
			t.Errorf("key %s: total count %d, want %d", k, sum, total/12)
		}
		if owners != 1 {
			t.Errorf("key %s: state on %d instances, want 1", k, owners)
		}
	}
}

func TestLiveCollectPairStats(t *testing.T) {
	live := newLive(t, 2, FieldsHash, 0)
	for i := 0; i < 60; i++ {
		_ = live.Inject(topology.Tuple{Values: []string{"Asia", "#java"}})
	}
	live.Drain()
	stats := live.CollectPairStats()
	if len(stats) != 1 || stats[0].FromOp != "A" || stats[0].ToOp != "B" {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Pairs[0].Count != 60 {
		t.Fatalf("pair count = %d, want 60", stats[0].Pairs[0].Count)
	}
	// Collection resets the sketches.
	stats = live.CollectPairStats()
	if len(stats) != 1 || len(stats[0].Pairs) != 0 {
		t.Fatalf("sketches not reset: %+v", stats)
	}
}

func TestLiveMaxInFlightBackpressure(t *testing.T) {
	live := newLive(t, 2, FieldsHash, 8)
	for i := 0; i < 500; i++ {
		if err := live.Inject(topology.Tuple{Values: []string{"a", "b"}}); err != nil {
			t.Fatal(err)
		}
	}
	live.Drain()
	if got := liveTotalCount(t, live, "B", 2); got != 500 {
		t.Fatalf("B total = %d, want 500", got)
	}
}

func TestLiveStopIdempotentAndInjectAfterStop(t *testing.T) {
	live := newLive(t, 2, FieldsHash, 0)
	_ = live.Inject(topology.Tuple{Values: []string{"a", "b"}})
	live.Stop()
	live.Stop() // must not panic or hang
	if err := live.Inject(topology.Tuple{Values: []string{"a", "b"}}); err == nil {
		t.Fatal("Inject after Stop should fail")
	}
	if err := live.Reconfigure(ReconfigPlan{}); err == nil {
		t.Fatal("Reconfigure after Stop should fail")
	}
}

func TestLiveProcessorStateUnknownInstance(t *testing.T) {
	live := newLive(t, 2, FieldsHash, 0)
	if err := live.ProcessorState("A", 9, func(topology.Processor) {}); err == nil {
		t.Fatal("unknown instance accepted")
	}
	if err := live.ProcessorState("nope", 0, func(topology.Processor) {}); err == nil {
		t.Fatal("unknown operator accepted")
	}
}

func TestMailbox(t *testing.T) {
	mb := newMailbox()
	mb.put(message{kind: msgData, key: "1"})
	mb.put(message{kind: msgData, key: "2"})
	if mb.len() != 2 {
		t.Fatalf("len = %d", mb.len())
	}
	m1, ok := mb.get()
	if !ok || m1.key != "1" {
		t.Fatalf("get 1 = %+v %v", m1, ok)
	}
	m2, _ := mb.get()
	if m2.key != "2" {
		t.Fatal("FIFO violated")
	}
	// Close with items: drain then report closed.
	mb.put(message{kind: msgData, key: "3"})
	mb.close()
	if m3, ok := mb.get(); !ok || m3.key != "3" {
		t.Fatal("close should let queued items drain")
	}
	if _, ok := mb.get(); ok {
		t.Fatal("get on drained closed mailbox should report closed")
	}
	mb.put(message{kind: msgData, key: "4"}) // dropped silently
	if mb.len() != 0 {
		t.Fatal("put after close should drop")
	}
}

func TestMailboxConcurrent(t *testing.T) {
	mb := newMailbox()
	const producers, perProducer = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				mb.put(message{kind: msgData})
			}
		}()
	}
	done := make(chan int)
	go func() {
		count := 0
		for {
			if _, ok := mb.get(); !ok {
				done <- count
				return
			}
			count++
		}
	}()
	wg.Wait()
	mb.close()
	if got := <-done; got != producers*perProducer {
		t.Fatalf("consumed %d, want %d", got, producers*perProducer)
	}
}

func TestStatsSnapshot(t *testing.T) {
	const parallelism = 3
	live := newLive(t, parallelism, FieldsHash, 0)
	const n = 900
	for i := 0; i < n; i++ {
		k := strconv.Itoa(i % 9)
		if err := live.Inject(topology.Tuple{Values: []string{k, "t" + k}}); err != nil {
			t.Fatal(err)
		}
	}
	live.Drain()

	st := live.StatsSnapshot()
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after Drain, want 0", st.InFlight)
	}
	if st.WireDrops != 0 {
		t.Fatalf("WireDrops = %d, want 0", st.WireDrops)
	}
	if got, want := st.Fields, live.FieldsTraffic(); got != want {
		t.Fatalf("Fields = %+v, want %+v", got, want)
	}
	var totalA, totalB uint64
	for _, l := range st.Loads["A"] {
		totalA += l
	}
	for _, l := range st.Loads["B"] {
		totalB += l
	}
	if totalA != n || totalB != n {
		t.Fatalf("Loads totals A=%d B=%d, want %d each", totalA, totalB, n)
	}
	if len(st.Loads["A"]) != parallelism || len(st.Loads["B"]) != parallelism {
		t.Fatalf("Loads widths = %d/%d, want %d", len(st.Loads["A"]), len(st.Loads["B"]), parallelism)
	}
}

func TestStatsSnapshotAndCollectOnStoppedEngine(t *testing.T) {
	live := newLive(t, 2, FieldsHash, 0)
	for i := 0; i < 50; i++ {
		_ = live.Inject(topology.Tuple{Values: []string{"k", "v"}})
	}
	live.Stop()
	// Neither call may block or panic on a stopped engine: the snapshot
	// reads atomics only, and the sketch collection skips closed
	// mailboxes instead of waiting for replies that cannot come.
	if st := live.StatsSnapshot(); st.InFlight != 0 {
		t.Fatalf("InFlight = %d on stopped engine", st.InFlight)
	}
	if stats := live.CollectPairStats(); len(stats) != 0 {
		t.Fatalf("CollectPairStats on stopped engine = %v, want empty", stats)
	}
}
