package engine

import (
	"errors"
	"fmt"
	"sort"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/topology"
	"github.com/locastream/locastream/internal/transport"
)

// This file is the engine side of the fault-tolerance subsystem
// (internal/checkpoint drives it): incremental checkpoint collection,
// server kill with loss accounting, liveness probing, and the two-phase
// recovery path (arm buffers, then restore state). The planned
// reconfiguration protocol of §3.4 stays untouched — recovery reuses its
// building blocks (migration buffers, migrate messages, shared routing
// policies) without entering its propagation state machine, because a
// dead server cannot participate in a propagation wave.

// CheckpointDirty collects an incremental checkpoint: the serialized
// state of every key that changed since the previous call, across all
// stateful executors. Executors with no dirty keys are skipped without
// a message round-trip, so on a quiescent stream the call touches only
// per-executor atomics and performs no allocation — the fast path that
// keeps the default checkpoint interval cheap. Snapshotting does not
// remove or mutate operator state; the stream keeps flowing.
func (l *Live) CheckpointDirty() []KeyState {
	var out []KeyState
	var replies []chan []KeyState
	for _, ex := range l.all {
		if ex.dirtyN.Load() == 0 {
			continue
		}
		reply := make(chan []KeyState, 1)
		// A killed/closed mailbox rejects the request (the executor's keys
		// will be recovered from the previous checkpoint, which is exactly
		// the bounded-loss guarantee).
		if ex.box.put(message{kind: msgCheckpoint, ckptReply: reply}) {
			replies = append(replies, reply)
		}
	}
	for _, ch := range replies {
		out = append(out, <-ch...)
	}
	// Records of split keys become per-replica partials (Split/Replicas
	// set), so the store keeps one record per replica instead of
	// collapsing them to the latest writer.
	l.annotateSplitRecords(out)
	return out
}

// KillServer simulates the crash of one server: every executor hosted
// there stops immediately (messages still queued are discarded, with
// data tuples counted as lost), its transport node — if a TCP fabric is
// attached — is closed so survivors' sends fail, and liveness probes
// (Ping) report it dead. Idempotent. The stream keeps flowing on the
// survivors; tuples routed to the dead instances are rejected and
// counted until a recovery installs new routing.
func (l *Live) KillServer(s int) error {
	if s < 0 || s >= l.place.Servers() {
		return fmt.Errorf("engine: unknown server %d", s)
	}
	if l.dead[s].Swap(true) {
		return nil
	}
	for _, ex := range l.all {
		if ex.server == s {
			l.settleKilled(ex.box.kill())
		}
	}
	if l.fabric != nil {
		// Settle the wire exactly, in three ordered steps. DropPeer severs
		// every survivor's connection to s: tuples batched but never
		// flushed are reported (DropHandler → noteWireDataDrops) and no
		// further frame can be flushed towards s, pinning wireOut[s].
		// CloseNode then joins s's reader goroutines, so every frame that
		// was going to be drained has been (each decrement of wireOut[s]
		// has happened). What remains in wireOut[s] is exactly the tuples
		// flushed onto the wire that s will never decode — kernel-buffered
		// frames and writes torn by the close — each still carrying one
		// in-flight count from its sender.
		l.fabric.DropPeer(s)
		l.fabric.CloseNode(s)
		if n := l.wireOut[s].Swap(0); n > 0 {
			l.noteWireDataDrops(int(n))
		}
	}
	return nil
}

// settleKilled accounts for messages discarded from a killed mailbox so
// no counter leaks and no caller parks forever: in-flight data tuples
// become losses, metric/checkpoint requests get empty replies, parked
// inspections are failed, and reconfiguration handshakes are released.
func (l *Live) settleKilled(msgs []message) {
	for i := range msgs {
		m := &msgs[i]
		switch m.kind {
		case msgData:
			l.inflight.dec()
			l.tuplesLost.Add(1)
		case msgGetStats:
			m.statsReply <- nil
		case msgCheckpoint:
			m.ckptReply <- nil
		case msgInspect:
			if m.inspectFn != nil {
				m.inspectFn(nil)
			}
		case msgReconf:
			if m.ack != nil {
				m.ack <- struct{}{}
			}
			if m.reconf != nil && m.reconf.done != nil {
				m.reconf.done.Done()
			}
		case msgArm:
			if m.ack != nil {
				m.ack <- struct{}{}
			}
		case msgSplit:
			if m.ack != nil {
				m.ack <- struct{}{}
			}
		}
	}
}

// ServerAlive reports whether s has not been killed.
func (l *Live) ServerAlive(s int) bool {
	return s >= 0 && s < len(l.dead) && !l.dead[s].Load()
}

// AliveServers returns the per-server liveness vector.
func (l *Live) AliveServers() []bool {
	out := make([]bool, len(l.dead))
	for i := range l.dead {
		out[i] = !l.dead[i].Load()
	}
	return out
}

// TuplesLost returns the cumulative count of data tuples lost to server
// failures.
func (l *Live) TuplesLost() uint64 { return l.tuplesLost.Load() }

// HeartbeatsReceived returns the number of heartbeat probes delivered
// through the TCP fabric (always 0 without a fabric, where probes are
// answered synchronously).
func (l *Live) HeartbeatsReceived() uint64 { return l.hbRecv.Load() }

// Ping probes the liveness of server s on behalf of the failure
// detector. Without a TCP fabric the answer is synchronous and exact.
// With a fabric a real KindHeartbeat message is pushed through the
// lowest-numbered alive peer's connection to s; the probe reports false
// once the kernel observes the closed connection, which may take a few
// probes after the crash — exactly the detection lag a heartbeat
// protocol's suspect threshold exists to absorb.
func (l *Live) Ping(s int) bool {
	if s < 0 || s >= l.place.Servers() {
		return false
	}
	if l.dead[s].Load() {
		return false
	}
	if !l.active[s].Load() {
		// A parked (decommissioned or not-yet-added) server is
		// administratively out, not failed: it may well be detached from
		// the fabric, so a probe proves nothing. Report it alive so the
		// failure detector never confirms a bogus death for it.
		return true
	}
	if l.fabric == nil {
		return true
	}
	from := -1
	for i := 0; i < l.place.Servers(); i++ {
		if i != s && !l.dead[i].Load() && l.active[i].Load() {
			from = i
			break
		}
	}
	if from == -1 {
		return true // no peer left to probe from
	}
	err := l.fabric.Send(from, s, transport.Message{Kind: transport.KindHeartbeat, From: from})
	return err == nil
}

// Placement exposes the engine's instance placement (read-only) for the
// checkpoint subsystem's repair planner.
func (l *Live) Placement() *cluster.Placement { return l.place }

// OwnerOf returns the instance that tuples keyed key for op currently
// route to, following the same table-then-hash policy the data path
// uses (every fields-grouped in-edge of an op shares one agreement on
// key ownership). ok is false for ops without fields-grouped input.
func (l *Live) OwnerOf(op, key string) (int, bool) {
	if op == l.topo.Source() &&
		(l.cfg.SourceGrouping == 0 || l.cfg.SourceGrouping == topology.Fields) {
		return l.cfg.SourcePolicy.Route(key, -1, 0), true
	}
	for _, e := range l.topo.Edges() {
		if e.To == op && e.Grouping == topology.Fields {
			return l.cfg.Policies[EdgeKey(e.From, e.To)].Route(key, -1, 0), true
		}
	}
	return 0, false
}

// StatefulOps returns the operators whose processors hold keyed state,
// in topology order — the set the checkpoint subsystem must cover.
func (l *Live) StatefulOps() []string {
	var out []string
	for _, op := range l.topo.Order() {
		insts := l.execs[op]
		if len(insts) > 0 && insts[0].keyed != nil {
			out = append(out, op)
		}
	}
	return out
}

// UpdateTables installs new routing tables directly into the shared
// per-edge policies (and the source policy), outside the propagation
// protocol. Recovery uses it after RecoverArm: the dead instances
// cannot forward a propagation wave, and because sibling senders share
// one policy object per edge, a single atomic Update is equivalent to
// the wave's per-instance update_routing step.
func (l *Live) UpdateTables(tables map[string]*routing.Table) {
	for op, table := range tables {
		if op == l.topo.Source() {
			if tf, ok := l.cfg.SourcePolicy.(*routing.TableFields); ok {
				tf.Update(table)
			}
		}
		for _, e := range l.topo.Edges() {
			if e.To != op || e.Grouping != topology.Fields {
				continue
			}
			if tf, ok := l.cfg.Policies[EdgeKey(e.From, e.To)].(*routing.TableFields); ok {
				tf.Update(table)
			}
		}
	}
}

// ApplyAliveRouting installs the current server liveness into every
// table-based routing policy, so keys without a repair table entry
// (hash-fallback keys) deterministically detour around dead instances.
// Shuffle-grouped edges are untouched: their recipients are stateless
// and LocalOrShuffle/Shuffle spread over survivors by construction of
// the recovery tables.
func (l *Live) ApplyAliveRouting() {
	for _, e := range l.topo.Edges() {
		if e.Grouping != topology.Fields {
			continue
		}
		if tf, ok := l.cfg.Policies[EdgeKey(e.From, e.To)].(*routing.TableFields); ok {
			tf.SetAlive(l.instAlive(e.To))
		}
	}
	if tf, ok := l.cfg.SourcePolicy.(*routing.TableFields); ok {
		tf.SetAlive(l.instAlive(l.topo.Source()))
	}
}

// instAlive computes the per-instance usability mask of one operator:
// an instance is routable iff its server is alive AND inside the
// elastic membership.
func (l *Live) instAlive(op string) []bool {
	n := l.place.Parallelism(op)
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		s := l.place.ServerOf(op, i)
		out[i] = !l.dead[s].Load() && l.active[s].Load()
	}
	return out
}

// RecoverArm is phase one of recovery: each adopting (op, instance)
// arms its migration buffer for the keys it is about to inherit from a
// dead server — the same buffer-then-ack step the planned protocol uses
// (§3.4) — and acknowledges. Once RecoverArm returns, new routing may
// be installed (UpdateTables/ApplyAliveRouting): any tuple reaching an
// adopting instance for a recovering key buffers until RecoverRestore
// delivers the checkpointed state, so no tuple is processed against
// missing state. expects maps op -> instance -> keys.
func (l *Live) RecoverArm(expects map[string]map[int][]string) error {
	if l.stopped.Load() {
		return errors.New("engine: recover on stopped engine")
	}
	var acks []chan struct{}
	ops := make([]string, 0, len(expects))
	for op := range expects {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		insts := l.execs[op]
		if insts == nil {
			return fmt.Errorf("engine: recover: unknown operator %q", op)
		}
		for inst, keys := range expects[op] {
			if inst < 0 || inst >= len(insts) {
				return fmt.Errorf("engine: recover: unknown instance %s[%d]", op, inst)
			}
			ack := make(chan struct{}, 1)
			if !insts[inst].box.put(message{kind: msgArm, armKeys: keys, ack: ack}) {
				return fmt.Errorf("engine: recover: instance %s[%d] is dead", op, inst)
			}
			acks = append(acks, ack)
		}
	}
	for _, ack := range acks {
		<-ack
	}
	return nil
}

// RecoverRestore is phase two of recovery: it delivers one migration
// record per recovering key to its adopting instance — Data nil for
// keys that never reached a checkpoint, which clears the pending marker
// without restoring anything — and blocks until every touched instance
// has installed its records and processed the tuples buffered for them.
// FIFO mailboxes order the completion barrier strictly after the
// restores, so when RecoverRestore returns, every buffered tuple has
// been processed against the restored state. Each record's Inst must
// already be rewritten to the adopting instance.
func (l *Live) RecoverRestore(records []KeyState) error {
	if l.stopped.Load() {
		return errors.New("engine: recover on stopped engine")
	}
	touched := make(map[*executor]struct{})
	for _, r := range records {
		insts := l.execs[r.Op]
		if insts == nil || r.Inst < 0 || r.Inst >= len(insts) {
			return fmt.Errorf("engine: restore: unknown instance %s[%d]", r.Op, r.Inst)
		}
		ex := insts[r.Inst]
		if !ex.box.put(message{
			kind: msgMigrate, migKey: r.Key, migData: r.Data,
			migHasData: r.Data != nil, migMerge: r.Merge && r.Data != nil,
		}) {
			return fmt.Errorf("engine: restore: instance %s[%d] is dead", r.Op, r.Inst)
		}
		touched[ex] = struct{}{}
	}
	done := make(chan struct{}, len(touched))
	n := 0
	for ex := range touched {
		if ex.box.put(message{kind: msgInspect, inspectFn: func(topology.Processor) {
			done <- struct{}{}
		}}) {
			n++
		}
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return nil
}
