package engine

import (
	"fmt"
	"sort"

	"github.com/locastream/locastream/internal/topology"
)

// This file is the engine half of elastic scaling: servers enter and
// leave the usable set at runtime. The placement is static and built at
// full capacity — executors on inactive servers exist from the start,
// parked with open mailboxes — so membership changes never create or
// destroy goroutines; they flip the active mask, update the alive-mask
// routing, and attach/detach transport connections. State movement is
// NOT handled here: the caller (App.ScaleTo) plans a rescale and runs
// the §3.4 reconfiguration protocol around these membership flips.

// ServerActive reports whether s is inside the elastic membership.
func (l *Live) ServerActive(s int) bool {
	return s >= 0 && s < len(l.active) && l.active[s].Load()
}

// ServerUsable reports whether s is routable: alive and active.
func (l *Live) ServerUsable(s int) bool {
	return l.ServerAlive(s) && l.ServerActive(s)
}

// UsableServers returns the per-server usability vector (alive AND
// active) — the membership the repair planner and the split-replica
// chooser must respect.
func (l *Live) UsableServers() []bool {
	out := make([]bool, len(l.dead))
	for s := range out {
		out[s] = !l.dead[s].Load() && l.active[s].Load()
	}
	return out
}

// ActiveServers counts the servers inside the elastic membership
// (including any that have since been killed — dead servers leave the
// usable set but not the administrative one).
func (l *Live) ActiveServers() int {
	n := 0
	for s := range l.active {
		if l.active[s].Load() {
			n++
		}
	}
	return n
}

// ServerCapacity returns the total number of servers the placement was
// built for — the elastic ceiling.
func (l *Live) ServerCapacity() int { return l.place.Servers() }

// StatefulKeys returns, per stateful operator, every key currently
// holding state on any instance (deduplicated across instances,
// sorted). The rescale planner feeds these to its key universe so cold
// keys — keys with state but absent from both the routing tables and
// the traffic sketches — still migrate off a leaving server.
func (l *Live) StatefulKeys() map[string][]string {
	type reply struct {
		op   string
		keys []string
	}
	ch := make(chan reply, len(l.all))
	pending := 0
	for _, ex := range l.all {
		op := ex.op.Name
		ok := ex.box.put(message{kind: msgInspect, inspectFn: func(p topology.Processor) {
			var keys []string
			if k, isKeyed := p.(topology.Keyed); isKeyed {
				keys = k.StateKeys()
			}
			ch <- reply{op: op, keys: keys}
		}})
		if ok {
			pending++
		}
	}
	sets := make(map[string]map[string]struct{})
	for i := 0; i < pending; i++ {
		r := <-ch
		if len(r.keys) == 0 {
			continue
		}
		set := sets[r.op]
		if set == nil {
			set = make(map[string]struct{})
			sets[r.op] = set
		}
		for _, k := range r.keys {
			set[k] = struct{}{}
		}
	}
	out := make(map[string][]string, len(sets))
	for op, set := range sets {
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out[op] = keys
	}
	return out
}

// AddServer brings a parked server into the elastic membership: its
// transport connections are (re-)established to every usable peer, the
// active mask flips, and the alive-mask routing update makes its
// instances routable for hash-fallback keys. Idempotent for an already
// active server. The caller then deploys a rescale plan to actually
// move keys onto it.
func (l *Live) AddServer(s int) error {
	if s < 0 || s >= len(l.active) {
		return fmt.Errorf("engine: unknown server %d", s)
	}
	if l.dead[s].Load() {
		return fmt.Errorf("engine: server %d is dead", s)
	}
	if l.active[s].Load() {
		return nil
	}
	if l.fabric != nil {
		var peers []int
		for i := 0; i < len(l.active); i++ {
			if i != s && !l.dead[i].Load() && l.active[i].Load() {
				peers = append(peers, i)
			}
		}
		if err := l.fabric.Attach(s, peers); err != nil {
			return fmt.Errorf("engine: attach server %d: %w", s, err)
		}
	}
	l.active[s].Store(true)
	l.ApplyAliveRouting()
	return nil
}

// DecommissionServer removes a server from the elastic membership. This
// is the LAST step of a decommission — the caller must already have
// demoted its split replicas, deployed a rescale plan that migrated its
// keys away (the server participates in that protocol while still
// attached), and drained its state through a checkpoint. Afterwards the
// server's executors stay parked with open mailboxes: anything still
// queued is processed normally (zero loss) and AddServer can bring the
// server back. Refuses to remove the last active server.
func (l *Live) DecommissionServer(s int) error {
	if s < 0 || s >= len(l.active) {
		return fmt.Errorf("engine: unknown server %d", s)
	}
	if !l.active[s].Load() {
		return nil
	}
	last := true
	for i := 0; i < len(l.active); i++ {
		if i != s && l.active[i].Load() && !l.dead[i].Load() {
			last = false
			break
		}
	}
	if last {
		return fmt.Errorf("engine: cannot decommission last usable server %d", s)
	}
	l.active[s].Store(false)
	l.ApplyAliveRouting()
	if l.fabric != nil && !l.dead[s].Load() {
		l.fabric.Detach(s)
	}
	return nil
}
