package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/metrics"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/spacesaving"
	"github.com/locastream/locastream/internal/state"
	"github.com/locastream/locastream/internal/topology"
	"github.com/locastream/locastream/internal/transport"
)

// KeyMove records one key changing owner instance during a
// reconfiguration.
type KeyMove struct {
	Key  string
	From int
	To   int
}

// ReconfigPlan is the deployable output of the optimizer: the new routing
// tables per recipient operator plus, for every stateful operator, the
// keys whose owner changes (the migration workload).
type ReconfigPlan struct {
	Tables map[string]*routing.Table
	Moves  map[string][]KeyMove
}

// LiveConfig configures a concurrent engine.
type LiveConfig struct {
	// Topology is the validated application DAG.
	Topology *topology.Topology
	// Placement assigns instances to servers.
	Placement *cluster.Placement
	// Policies maps EdgeKey(from, to) to the edge's routing policy.
	Policies map[string]routing.Policy
	// SourcePolicy routes injected tuples to the source operator.
	SourcePolicy routing.Policy
	// SourceGrouping is the grouping of the implicit source hop; the
	// zero value means Fields.
	SourceGrouping topology.Grouping
	// SourceKeyField is the field used as key on the source hop (Fields
	// grouping only).
	SourceKeyField int
	// SketchCapacity bounds per-instance pair sketches (0 disables
	// instrumentation).
	SketchCapacity int
	// MaxInFlight blocks Inject while this many externally injected
	// tuples are unprocessed (0 means unlimited). Internal forwards are
	// never blocked, which keeps the reconfiguration protocol
	// deadlock-free.
	MaxInFlight int
	// MaxBuffered bounds each executor's migration buffer (0 means
	// unbounded). During planned reconfigurations state arrives promptly
	// and the bound is irrelevant; during failure recovery the restore
	// may be delayed, so a bound turns unbounded memory growth into
	// counted tuple loss (see Stats.TuplesLost).
	MaxBuffered int
	// TCPTransport routes every cross-server message (tuples, state
	// migrations, propagation markers) through real localhost TCP
	// connections, one per server pair, exercising serialization and the
	// kernel network path. Same-server messages stay in memory — exactly
	// the asymmetry the paper exploits.
	TCPTransport bool
	// WireCompression selects the transport's data-frame encoding when
	// TCPTransport is on. The zero value (transport.CompressionAuto)
	// enables the per-connection dictionary plus the per-frame LZ pass;
	// transport.CompressionOff keeps the raw PR 4 encoding.
	WireCompression transport.Compression
	// FlushBytes/FlushInterval seed the transport's batching thresholds
	// when TCPTransport is on (zero values take the transport defaults).
	// They are starting points, not fixed: SetWireFlushPolicy — and the
	// control plane's adaptive flush tuner through it — retunes both
	// live.
	FlushBytes    int
	FlushInterval time.Duration
	// KeySplitting enables hot-key splitting (Partial Key Grouping):
	// promoted keys route 2-of-d-choices over a replica set and replicas'
	// partials are folded back with the operator's associative combine.
	// Enabling it turns on per-mailbox queue-depth tracking (the 2-choice
	// load signal); disabled, the data path is bit-identical to before.
	KeySplitting bool
	// ActiveServers is the initial per-server membership vector for
	// elastic scaling (nil means every server is active). The placement
	// is built at full capacity; inactive servers keep their executors
	// parked — mailboxes open, processing nothing routed to them — until
	// AddServer brings them into the usable set.
	ActiveServers []bool
}

// Live executes a topology with one goroutine per operator instance and
// real message passing, including the online reconfiguration protocol of
// §3.4. Create with NewLive, stop with Stop.
type Live struct {
	cfg   LiveConfig
	topo  *topology.Topology
	place *cluster.Placement

	execs map[string][]*executor
	all   []*executor

	inflight *inflightCounter
	wg       sync.WaitGroup
	stopped  atomic.Bool

	// wireDrops counts transport messages discarded because they could
	// not be delivered to any executor (corrupt address or unknown
	// kind). A non-zero value indicates wire corruption or a
	// sender/receiver version mismatch; the TCP pipeline tests assert it
	// stays zero.
	wireDrops atomic.Uint64

	// tuplesLost counts data tuples that could not be processed because
	// their target died: messages discarded from a killed mailbox,
	// forwards rejected by a dead instance, and migration-buffer
	// overflow. This is the "bounded loss" the checkpoint subsystem
	// trades the at-most-once guarantee for.
	tuplesLost atomic.Uint64

	// dead marks killed servers (see KillServer); hbRecv counts
	// heartbeat probes delivered over the wire.
	dead   []atomic.Bool
	hbRecv atomic.Uint64

	// active marks servers inside the elastic membership (see AddServer
	// / DecommissionServer). A server is usable — routable, eligible as
	// a split replica, counted by the repair planner — iff it is alive
	// AND active. Unlike dead, active is administrative and reversible.
	active []atomic.Bool

	// Hot-key splitting state (KeySplitting only): splits maps op -> key
	// -> replica set (replicas[0] = owner) and mirrors the split entries
	// installed in the shared routing policies; the counters feed
	// SplitStats.
	splitMu         sync.Mutex
	splits          map[string]map[string][]int
	splitPromotions atomic.Uint64
	splitDemotions  atomic.Uint64
	mergesSent      atomic.Uint64
	mergesApplied   atomic.Uint64

	fabric *transport.Fabric
	// wire accumulates the transport's frame/batch counters when a TCP
	// fabric is attached (nil otherwise).
	wire *metrics.WireMeter
	// wireOut[s] counts tuples flushed onto the wire towards server s
	// and not yet drained by s's reader — the frames sitting in kernel
	// buffers or mid-decode. When s is killed, whatever remains after
	// its node closes can never be delivered and is settled as loss
	// (KillServer); at every other time the counter is only monitoring.
	wireOut []atomic.Int64

	srcSeq atomic.Uint64
}

// message is the single envelope exchanged between executors and with the
// engine/manager, covering data tuples and the protocol messages of
// Algorithm 1.
type message struct {
	kind msgKind

	// data
	tuple topology.Tuple
	keyOp string // operator whose routing key last applied to the tuple
	key   string // that key (used for buffering and instrumentation)

	// get-metrics
	statsReply chan []instPairStat
	// statsPeek leaves the sketches un-reset (checkpoint-time retention
	// must not consume the optimizer's measurement window).
	statsPeek bool

	// checkpoint
	ckptReply chan []KeyState

	// inspect (state access from the executor goroutine)
	inspectFn func(topology.Processor)

	// send-reconfiguration
	reconf *instReconfig
	ack    chan struct{}

	// arm (recovery: buffer these keys until their state arrives)
	armKeys []string

	// migrate
	migKey  string
	migData []byte
	// migHasData marks a snapshot as present even when it is empty; the
	// payload alone cannot distinguish "no state" from "empty state",
	// so the flag crosses the wire as an explicit bit.
	migHasData bool
	// migMerge marks the payload as a split-key partial to fold with
	// MergeKey instead of installing with RestoreKey. Merge records are
	// engine-internal control traffic and never cross the wire encoder.
	migMerge bool

	// split control (hot-key promote/demote). The affected key rides in
	// migKey and the narrow types below pack into padding the struct
	// already paid for, so the hot-path message envelope does not grow.
	splitCmd   splitCmd
	splitOwner int32
}

type msgKind int

const (
	msgData msgKind = iota + 1
	msgGetStats
	msgReconf
	msgPropagate
	msgMigrate
	msgInspect
	msgCheckpoint
	msgArm
	msgSplit
)

// splitCmd selects the split-control action of a msgSplit message.
type splitCmd uint8

const (
	// splitCmdDemote makes a non-owner replica snapshot and delete its
	// partial, install a forwarding tombstone, and send the partial to
	// the owner as a merge record.
	splitCmdDemote splitCmd = iota + 1
	// splitCmdArm clears a leftover tombstone before a (re-)promotion.
	splitCmdArm
)

// KeyState is one checkpointed key: the owning operator and instance at
// snapshot time, and the serialized per-key state.
type KeyState struct {
	Op   string
	Inst int
	Key  string
	Data []byte

	// Split marks a record snapshotted while the key was promoted; the
	// record then holds only the partial accumulated at Inst, and
	// Replicas is the full replica set at snapshot time (Replicas[0] is
	// the owner). The checkpoint store keeps one record per replica for
	// split keys — and uses Replicas to prune partials from older split
	// epochs — instead of collapsing to a single owner record.
	Split    bool
	Replicas []int
	// Merge is set on restore-time records only: the payload is a
	// partial to fold with MergeKey into live state rather than a full
	// snapshot to install with RestoreKey.
	Merge bool
}

// instPairStat is one executor's sketch snapshot for one operator pair.
type instPairStat struct {
	fromOp string
	toOp   string
	pairs  []spacesaving.PairCounter
}

// instReconfig is the §3.4 reconfiguration payload for one instance:
// "reconfiguration_router, reconfiguration_send, reconfiguration_receive".
type instReconfig struct {
	tables map[string]*routing.Table // recipient op -> new table
	send   map[string]int            // key -> recipient sibling instance
	recv   map[string]int            // key -> sender sibling instance
	done   *sync.WaitGroup           // counted down once migration completes
}

// NewLive validates cfg and starts one goroutine per instance.
func NewLive(cfg LiveConfig) (*Live, error) {
	if cfg.Topology == nil || cfg.Placement == nil {
		return nil, errors.New("engine: live needs a topology and a placement")
	}
	if cfg.SourcePolicy == nil {
		return nil, errors.New("engine: live needs a source policy")
	}
	for _, e := range cfg.Topology.Edges() {
		if cfg.Policies[EdgeKey(e.From, e.To)] == nil {
			return nil, fmt.Errorf("engine: no policy for edge %s", EdgeKey(e.From, e.To))
		}
	}

	if cfg.ActiveServers != nil {
		if len(cfg.ActiveServers) != cfg.Placement.Servers() {
			return nil, fmt.Errorf("engine: %d membership entries for %d servers",
				len(cfg.ActiveServers), cfg.Placement.Servers())
		}
		any := false
		for _, on := range cfg.ActiveServers {
			any = any || on
		}
		if !any {
			return nil, errors.New("engine: no active servers")
		}
	}

	l := &Live{
		cfg:      cfg,
		topo:     cfg.Topology,
		place:    cfg.Placement,
		execs:    make(map[string][]*executor),
		inflight: newInflightCounter(cfg.MaxInFlight),
		dead:     make([]atomic.Bool, cfg.Placement.Servers()),
		active:   make([]atomic.Bool, cfg.Placement.Servers()),
	}
	someInactive := false
	for s := range l.active {
		on := cfg.ActiveServers == nil || cfg.ActiveServers[s]
		l.active[s].Store(on)
		someInactive = someInactive || !on
	}

	for _, op := range cfg.Topology.Operators() {
		// Propagation fan-in: the source operator is triggered by the
		// manager (one PROPAGATE); the others by every predecessor
		// instance.
		needed := 1
		if preds := cfg.Topology.Predecessors(op.Name); len(preds) > 0 {
			needed = 0
			for _, p := range preds {
				needed += cfg.Placement.Parallelism(p)
			}
		}
		insts := make([]*executor, op.Parallelism)
		for i := range insts {
			insts[i] = &executor{
				eng:              l,
				op:               cfg.Topology.Operator(op.Name),
				inst:             i,
				server:           cfg.Placement.ServerOf(op.Name, i),
				proc:             op.New(),
				box:              newMailbox(),
				sketches:         make(map[[2]string]*spacesaving.PairSketch),
				buf:              state.NewBuffer(),
				propagatesNeeded: needed,
			}
			insts[i].emitFn = insts[i].emit
			insts[i].buf.SetLimit(cfg.MaxBuffered)
			insts[i].box.trackDepth = cfg.KeySplitting
			// Stateful executors track which keys changed since the last
			// checkpoint, so incremental checkpoints skip clean keys.
			if keyed, ok := insts[i].proc.(topology.Keyed); ok {
				insts[i].keyed = keyed
				insts[i].dirty = make(map[string]struct{})
			}
			if m, ok := insts[i].proc.(topology.Mergeable); ok {
				insts[i].mergeable = m
			}
		}
		l.execs[op.Name] = insts
		l.all = append(l.all, insts...)
	}
	// Resolve every executor's out-edges once, now that all recipient
	// executors exist: the per-tuple forward path then runs without map
	// lookups, string building or engine-global locks.
	for _, ex := range l.all {
		ex.edges = l.resolveEdges(ex)
	}
	if cfg.KeySplitting {
		l.splits = make(map[string]map[string][]int)
		l.installLoadProbes()
	}
	if cfg.TCPTransport {
		l.wire = new(metrics.WireMeter)
		l.wireOut = make([]atomic.Int64, cfg.Placement.Servers())
		fabric, err := transport.NewFabricWith(cfg.Placement.Servers(), func(_ int, msg transport.Message) {
			l.deliverWire(msg)
		}, transport.NodeOptions{
			Compression:   cfg.WireCompression,
			FlushBytes:    cfg.FlushBytes,
			FlushInterval: cfg.FlushInterval,
			// Batched data frames are drained into mailboxes one target
			// at a time (deliverWireBatch); control traffic (migrations,
			// propagation markers, heartbeats) still arrives one message
			// at a time through deliverWire.
			BatchHandler: l.deliverWireBatch,
			// A broken connection discards the tuples batched behind it;
			// each carries one in-flight count from its sender, which must
			// be settled or Drain would wait forever on tuples that no
			// longer exist.
			DropHandler: l.noteWireDataDrops,
			// Flushed-but-undrained bookkeeping: the other half of the
			// loss accounting, settled by KillServer for frames a dead
			// server will never decode.
			FlushedHandler: func(peer, tuples int) {
				l.wireOut[peer].Add(int64(tuples))
			},
			Meter: l.wire,
			// Per-tier wire accounting: the placement's tier list is
			// immutable after construction, so the classifier is pure.
			PeerTier: cfg.Placement.Tier,
		})
		if err != nil {
			return nil, fmt.Errorf("engine: start transport: %w", err)
		}
		l.fabric = fabric
	}
	if someInactive {
		// Route around the parked servers from the first tuple on:
		// hash-fallback keys detour over the active set exactly as they
		// detour around dead servers. Parked servers also start detached
		// from the fabric — AddServer re-attaches them — keeping the
		// wire topology congruent with the membership.
		l.ApplyAliveRouting()
		if l.fabric != nil {
			for s := range l.active {
				if !l.active[s].Load() {
					l.fabric.Detach(s)
				}
			}
		}
	}
	for _, ex := range l.all {
		l.wg.Add(1)
		go ex.run()
	}
	return l, nil
}

// deliverWire converts a transport message back into an engine message
// and enqueues it at the addressed instance.
func (l *Live) deliverWire(msg transport.Message) {
	if msg.Kind == transport.KindHeartbeat {
		l.hbRecv.Add(1)
		return
	}
	insts := l.execs[msg.To.Op]
	if msg.To.Instance < 0 || msg.To.Instance >= len(insts) {
		l.wireDrops.Add(1) // corrupt address; drop, but leave a trace
		return
	}
	box := insts[msg.To.Instance].box
	switch msg.Kind {
	case transport.KindData:
		ok := box.put(message{
			kind:  msgData,
			tuple: topology.Tuple{Values: msg.Values, Padding: msg.Padding},
			keyOp: msg.KeyOp,
			key:   msg.Key,
		})
		if !ok {
			// The instance died between the wire send and delivery; the
			// sender already counted the tuple in flight.
			l.inflight.dec()
			l.tuplesLost.Add(1)
		}
	case transport.KindMigrate:
		box.put(message{kind: msgMigrate, migKey: msg.MigKey, migData: msg.MigData, migHasData: msg.MigHasData})
	case transport.KindPropagate:
		box.put(message{kind: msgPropagate})
	default:
		l.wireDrops.Add(1) // unknown kind (version mismatch); drop
	}
}

// deliverWireBatch drains one decoded data frame into mailboxes. Tuples
// are grouped into runs with the same recipient, and each run is
// enqueued under a single mailbox lock acquisition — the receive-side
// payoff of wire batching. The transport reuses msgs for the next
// frame, so everything needed is copied into engine messages before
// returning.
func (l *Live) deliverWireBatch(node int, msgs []transport.Message) {
	// The frame is off the wire: these tuples are no longer outstanding
	// towards this server, whatever happens to them below (delivery,
	// corrupt-address drop, or killed-mailbox loss — each settles the
	// in-flight count on its own path).
	l.wireOut[node].Add(-int64(len(msgs)))
	var run []message
	for i := 0; i < len(msgs); {
		to := msgs[i].To
		j := i + 1
		for j < len(msgs) && msgs[j].To == to {
			j++
		}
		insts := l.execs[to.Op]
		if to.Instance < 0 || to.Instance >= len(insts) {
			// Corrupt addresses; drop, but leave a trace (cf. deliverWire).
			l.wireDrops.Add(uint64(j - i))
			i = j
			continue
		}
		run = run[:0]
		for k := i; k < j; k++ {
			run = append(run, message{
				kind:  msgData,
				tuple: topology.Tuple{Values: msgs[k].Values, Padding: msgs[k].Padding},
				keyOp: msgs[k].KeyOp,
				key:   msgs[k].Key,
			})
		}
		if !insts[to.Instance].box.putBatch(run) {
			// The instance died between the wire send and delivery; the
			// senders already counted these tuples in flight.
			l.noteWireDataDrops(j - i)
		}
		i = j
	}
}

// noteWireDataDrops settles the accounting for data tuples that made it
// onto the wire but will never be processed: sender batches discarded
// on a broken connection, and frames delivered to a killed mailbox.
func (l *Live) noteWireDataDrops(n int) {
	for i := 0; i < n; i++ {
		l.inflight.dec()
	}
	l.tuplesLost.Add(uint64(n))
}

// WireDrops returns the number of transport messages dropped because they
// were undeliverable (corrupt address or unknown kind).
func (l *Live) WireDrops() uint64 { return l.wireDrops.Load() }

// WireStats returns the transport's frame/batch counters (zero without
// a TCP fabric).
func (l *Live) WireStats() metrics.WireStats {
	if l.wire == nil {
		return metrics.WireStats{}
	}
	return l.wire.Snapshot()
}

// WireFlushPolicy returns the transport's current batching thresholds
// (zeros without a TCP fabric).
func (l *Live) WireFlushPolicy() (bytes int, interval time.Duration) {
	if l.fabric == nil {
		return 0, 0
	}
	return l.fabric.FlushPolicy()
}

// SetWireFlushPolicy retunes the transport's batching thresholds live
// on every node (see transport.Node.SetFlushPolicy for clamping).
// No-op without a TCP fabric; a change that actually alters the policy
// is counted on the wire meter as a flush retune.
func (l *Live) SetWireFlushPolicy(bytes int, interval time.Duration) {
	if l.fabric == nil {
		return
	}
	prevBytes, prevInterval := l.fabric.FlushPolicy()
	l.fabric.SetFlushPolicy(bytes, interval)
	if newBytes, newInterval := l.fabric.FlushPolicy(); newBytes != prevBytes || newInterval != prevInterval {
		l.wire.RecordFlushRetune()
	}
}

// sendWire encodes msg for the TCP fabric and reports whether it was
// handed to the transport; false means the caller must deliver directly
// (unencodable kind, or transport failure during shutdown).
func (l *Live) sendWire(toOp string, toInst, fromServer, toServer int, msg message) bool {
	wire := transport.Message{To: transport.Addr{Op: toOp, Instance: toInst}}
	switch msg.kind {
	case msgData:
		wire.Kind = transport.KindData
		wire.Values = msg.tuple.Values
		wire.Padding = msg.tuple.Padding
		wire.KeyOp = msg.keyOp
		wire.Key = msg.key
	case msgMigrate:
		if msg.migMerge {
			// The wire encoding has no merge flag; merge records are
			// engine-internal control traffic and deliver directly.
			return false
		}
		wire.Kind = transport.KindMigrate
		wire.MigKey = msg.migKey
		wire.MigData = msg.migData
		wire.MigHasData = msg.migHasData
	case msgPropagate:
		wire.Kind = transport.KindPropagate
	default:
		return false
	}
	return l.fabric.Send(fromServer, toServer, wire) == nil
}

// send routes a data/migrate/propagate message to an instance, over TCP
// when the recipient lives on a different server and a fabric is
// attached. Transport failures (only possible during shutdown) fall back
// to direct delivery.
func (l *Live) send(toOp string, toInst, fromServer int, msg message) {
	toServer := l.place.ServerOf(toOp, toInst)
	if l.fabric != nil && fromServer >= 0 && toServer >= 0 && toServer != fromServer &&
		l.sendWire(toOp, toInst, fromServer, toServer, msg) {
		return
	}
	l.execs[toOp][toInst].box.put(msg)
}

// Inject routes one external tuple into the topology. It blocks when
// MaxInFlight is configured and reached, providing source backpressure.
// Injecting into a stopped engine returns an error.
func (l *Live) Inject(t topology.Tuple) error {
	if l.stopped.Load() {
		return errors.New("engine: inject on stopped engine")
	}
	srcOp := l.topo.Source()
	keyOp, key := "", ""
	if l.cfg.SourceGrouping == 0 || l.cfg.SourceGrouping == topology.Fields {
		key = t.Field(l.cfg.SourceKeyField)
		keyOp = srcOp
	}
	inst := l.cfg.SourcePolicy.Route(key, -1, l.srcSeq.Add(1))
	l.inflight.incExternal()
	// A concurrent Stop may close the mailbox between the stopped check
	// above and the enqueue (or the routed instance may live on a killed
	// server); the rejected put must roll the in-flight counter back, or
	// Drain/waitZero would wait forever on a tuple that was never
	// accepted.
	if !l.execs[srcOp][inst].box.put(message{kind: msgData, tuple: t, keyOp: keyOp, key: key}) {
		l.inflight.dec()
		return fmt.Errorf("engine: inject rejected: instance %s[%d] is stopped or dead", srcOp, inst)
	}
	return nil
}

// Drain blocks until every injected tuple has been fully processed
// (tuples buffered while awaiting migrated state are excluded; they are
// flushed by the in-progress reconfiguration).
func (l *Live) Drain() { l.inflight.waitZero() }

// Stop drains outstanding work, terminates all executors and waits for
// them to exit. Stop is idempotent.
func (l *Live) Stop() {
	if l.stopped.Swap(true) {
		return
	}
	l.Drain()
	for _, ex := range l.all {
		ex.box.close()
	}
	l.wg.Wait()
	if l.fabric != nil {
		l.fabric.Close()
	}
}

// Stats is a point-in-time aggregate of the engine's operational
// signals, collected without stopping the stream: every field is read
// from per-executor atomics or uncontended per-edge accumulators, so a
// snapshot costs microseconds and can be taken on every controller tick.
type Stats struct {
	// Fields is the cumulative traffic over all fields-grouped edges.
	Fields metrics.Traffic
	// Loads maps each operator to tuples processed per instance
	// (cumulative).
	Loads map[string][]uint64
	// InFlight is the number of injected-but-unprocessed tuples at the
	// moment of the snapshot.
	InFlight int64
	// WireDrops is the cumulative count of undeliverable transport
	// messages (see Live.WireDrops).
	WireDrops uint64
	// TuplesLost is the cumulative count of data tuples lost to server
	// failures (killed mailboxes, sends to dead instances, migration
	// buffer overflow).
	TuplesLost uint64
	// Alive reports, per server, whether it has not been killed.
	Alive []bool
	// Wire holds the TCP transport's frame/batch counters (all zero
	// without a fabric).
	Wire metrics.WireStats
	// Split holds the hot-key splitting counters (all zero unless
	// KeySplitting is enabled).
	Split SplitStats
}

// StatsSnapshot aggregates the engine's cheap operational signals. Unlike
// CollectPairStats it does not touch the pair sketches, does not reset
// any window and never blocks on executor mailboxes, so it is safe to
// call at any frequency, including on a stopped engine.
func (l *Live) StatsSnapshot() Stats {
	st := Stats{
		Fields:     l.FieldsTraffic(),
		Loads:      make(map[string][]uint64, len(l.execs)),
		InFlight:   l.inflight.n.Load(),
		WireDrops:  l.wireDrops.Load(),
		TuplesLost: l.tuplesLost.Load(),
		Alive:      l.AliveServers(),
		Wire:       l.WireStats(),
		Split:      l.SplitStatsSnapshot(),
	}
	for op := range l.execs {
		st.Loads[op] = l.Loads(op)
	}
	return st
}

// CollectPairStats performs steps 1-2 of Algorithm 1: every instance
// reports (and resets) its pair sketches; the results are merged per
// operator pair. On a stopped engine the rejected requests are skipped,
// so the call degrades to an empty report instead of blocking forever.
func (l *Live) CollectPairStats() []PairStat { return l.pairStats(true) }

// PeekPairStats reports the merged pair sketches WITHOUT resetting the
// per-instance measurement windows, so it can run on every checkpoint
// tick without consuming the optimizer's signal. The checkpoint
// subsystem retains the latest peek: after a server dies its sketches
// are gone, and recovery needs the last known key co-occurrence graph
// to place the dead keys next to their correlated survivors.
func (l *Live) PeekPairStats() []PairStat { return l.pairStats(false) }

func (l *Live) pairStats(reset bool) []PairStat {
	replies := make([]chan []instPairStat, len(l.all))
	for i, ex := range l.all {
		reply := make(chan []instPairStat, 1)
		// A closed mailbox rejects the request; the executor drains every
		// accepted message before exiting, so an accepted request is
		// always answered.
		if ex.box.put(message{kind: msgGetStats, statsReply: reply, statsPeek: !reset}) {
			replies[i] = reply
		}
	}
	stats := make([]instPairStat, 0, len(l.all))
	for _, ch := range replies {
		if ch == nil {
			continue
		}
		stats = append(stats, <-ch...)
	}
	return mergePairStats(stats, l.cfg.SketchCapacity, func(op string) int {
		return len(l.execs[op])
	})
}

// mergePairStats folds per-instance sketch snapshots into one sketch per
// operator pair. The merged capacity is derived only from the configured
// per-instance capacity and the parallelism of the reporting operator —
// never from the size of whichever snapshot happens to be folded first —
// so the merged sketch has room for every possible contribution, never
// evicts, and the result is independent of reply order.
func mergePairStats(stats []instPairStat, sketchCap int, parallelism func(op string) int) []PairStat {
	merged := make(map[[2]string]*spacesaving.PairSketch)
	for _, st := range stats {
		id := [2]string{st.fromOp, st.toOp}
		sk := merged[id]
		if sk == nil {
			// The (from, to) pair sketch lives on from's instances, each
			// bounded by sketchCap counters.
			sk = spacesaving.NewPairs(maxInt(1, sketchCap) * maxInt(1, parallelism(st.fromOp)))
			merged[id] = sk
		}
		for _, p := range st.pairs {
			sk.AddWeighted(p.In, p.Out, p.Count)
		}
	}
	ids := make([][2]string, 0, len(merged))
	for id := range merged {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i][0] != ids[j][0] {
			return ids[i][0] < ids[j][0]
		}
		return ids[i][1] < ids[j][1]
	})
	out := make([]PairStat, 0, len(ids))
	for _, id := range ids {
		out = append(out, PairStat{FromOp: id[0], ToOp: id[1], Pairs: merged[id].Counters()})
	}
	return out
}

// Reconfigure deploys a new configuration with the protocol of §3.4:
// reconfiguration messages to every instance (3), acknowledgements (4),
// DAG-ordered propagation (5) and state migration with buffering (6). It
// returns once every instance has propagated and received all awaited
// state. The data stream keeps flowing during the call.
func (l *Live) Reconfigure(plan ReconfigPlan) error {
	if l.stopped.Load() {
		return errors.New("engine: reconfigure on stopped engine")
	}
	var done sync.WaitGroup

	// Step 3: build and send per-instance reconfiguration messages.
	acks := make([]chan struct{}, 0, len(l.all))
	for _, opName := range l.topo.Order() {
		insts := l.execs[opName]
		sendLists, recvLists := movesByInstance(plan.Moves[opName], len(insts))
		for i, ex := range insts {
			rc := &instReconfig{
				tables: tablesForSender(l.topo, opName, plan.Tables),
				send:   sendLists[i],
				recv:   recvLists[i],
				done:   &done,
			}
			done.Add(1)
			ack := make(chan struct{}, 1)
			acks = append(acks, ack)
			ex.box.put(message{kind: msgReconf, reconf: rc, ack: ack})
		}
	}
	// Step 4: wait for all acknowledgements. After this point every
	// instance has armed its migration buffer, so tuples routed with the
	// new tables can never be processed before their state arrives.
	for _, ack := range acks {
		<-ack
	}

	// The manager-side router for the external source hop switches now,
	// before the first PROPAGATE, mirroring the manager triggering the
	// first PO.
	if table, ok := plan.Tables[l.topo.Source()]; ok {
		if tf, ok := l.cfg.SourcePolicy.(*routing.TableFields); ok {
			tf.Update(table)
		}
	}

	// Step 5: trigger the operators with no predecessors.
	for _, opName := range l.topo.Order() {
		if len(l.topo.Predecessors(opName)) == 0 {
			for _, ex := range l.execs[opName] {
				ex.box.put(message{kind: msgPropagate})
			}
		}
	}

	// Step 6 happens inside the executors; wait for full completion.
	done.Wait()
	return nil
}

// tablesForSender selects the new tables relevant to an instance of op:
// one per fields-grouped out-edge.
func tablesForSender(t *topology.Topology, op string, tables map[string]*routing.Table) map[string]*routing.Table {
	out := make(map[string]*routing.Table)
	for _, e := range t.OutEdges(op) {
		if e.Grouping != topology.Fields {
			continue
		}
		if table, ok := tables[e.To]; ok {
			out[e.To] = table
		}
	}
	return out
}

// movesByInstance splits an operator's key moves into per-instance send
// and receive lists.
func movesByInstance(moves []KeyMove, instances int) (send, recv []map[string]int) {
	send = make([]map[string]int, instances)
	recv = make([]map[string]int, instances)
	for i := 0; i < instances; i++ {
		send[i] = make(map[string]int)
		recv[i] = make(map[string]int)
	}
	for _, m := range moves {
		if m.From < 0 || m.From >= instances || m.To < 0 || m.To >= instances || m.From == m.To {
			continue
		}
		send[m.From][m.Key] = m.To
		recv[m.To][m.Key] = m.From
	}
	return send, recv
}

// Traffic returns the accumulated traffic of one edge, aggregated over
// the per-executor accumulators (each guarded by its own, uncontended
// lock — the engine takes no global lock on the data path).
func (l *Live) Traffic(from, to string) metrics.Traffic {
	key := EdgeKey(from, to)
	var agg metrics.Traffic
	for _, ex := range l.all {
		for _, re := range ex.edges {
			if re.key != key {
				continue
			}
			re.mu.Lock()
			agg.Add(re.traffic)
			re.mu.Unlock()
		}
	}
	return agg
}

// FieldsTraffic aggregates traffic over every fields-grouped edge.
func (l *Live) FieldsTraffic() metrics.Traffic {
	var agg metrics.Traffic
	for _, ex := range l.all {
		for _, re := range ex.edges {
			if re.grouping != topology.Fields {
				continue
			}
			re.mu.Lock()
			agg.Add(re.traffic)
			re.mu.Unlock()
		}
	}
	return agg
}

// Loads returns tuples processed per instance of op.
func (l *Live) Loads(op string) []uint64 {
	insts := l.execs[op]
	out := make([]uint64, len(insts))
	for i, ex := range insts {
		out[i] = ex.processed.Load()
	}
	return out
}

// ProcessorState runs fn inside the executor goroutine of (op, inst),
// giving safe access to the processor's state. It blocks until fn has
// run. It returns an error for unknown, stopped or dead instances (a
// killed server settles queued inspections with a nil processor).
func (l *Live) ProcessorState(op string, inst int, fn func(topology.Processor)) error {
	insts := l.execs[op]
	if inst < 0 || inst >= len(insts) {
		return fmt.Errorf("engine: unknown instance %s[%d]", op, inst)
	}
	doneCh := make(chan struct{})
	var ierr error
	accepted := insts[inst].box.put(message{kind: msgInspect, inspectFn: func(p topology.Processor) {
		defer close(doneCh)
		if p == nil {
			ierr = fmt.Errorf("engine: instance %s[%d] is dead", op, inst)
			return
		}
		fn(p)
	}})
	if !accepted {
		return fmt.Errorf("engine: instance %s[%d] is stopped or dead", op, inst)
	}
	<-doneCh
	return ierr
}

// --- executor ---------------------------------------------------------------

// resolvedEdge is one out-edge of one executor, fully resolved at
// construction: the routing policy, the recipient executors, the
// recipient servers and their locality relative to the sender, and a
// private traffic accumulator. With everything precomputed, the per-tuple
// forward path performs no map lookups, builds no strings and takes no
// lock shared with any other executor.
type resolvedEdge struct {
	key      string // EdgeKey(from, to)
	to       string
	grouping topology.Grouping
	keyField int
	policy   routing.Policy

	targets     []*executor // recipient instance -> executor
	server      []int       // recipient instance -> hosting server
	sameServer  []bool      // recipient instance co-located with the sender
	sameRack    []bool      // recipient instance within the sender's rack
	sameCluster []bool      // recipient instance within the sender's cluster

	// traffic is written only by the owning executor; mu is therefore
	// uncontended on the hot path and exists so Traffic()/FieldsTraffic()
	// can read a consistent snapshot concurrently.
	mu      sync.Mutex
	traffic metrics.Traffic
}

// resolveEdges precomputes e's out-edges against the placement and the
// policy map.
func (l *Live) resolveEdges(e *executor) []*resolvedEdge {
	edges := l.topo.OutEdges(e.op.Name)
	out := make([]*resolvedEdge, len(edges))
	for i, edge := range edges {
		targets := l.execs[edge.To]
		re := &resolvedEdge{
			key:         EdgeKey(edge.From, edge.To),
			to:          edge.To,
			grouping:    edge.Grouping,
			keyField:    edge.KeyField,
			policy:      l.cfg.Policies[EdgeKey(edge.From, edge.To)],
			targets:     targets,
			server:      make([]int, len(targets)),
			sameServer:  make([]bool, len(targets)),
			sameRack:    make([]bool, len(targets)),
			sameCluster: make([]bool, len(targets)),
		}
		for j := range targets {
			s := l.place.ServerOf(edge.To, j)
			re.server[j] = s
			tier := l.place.Tier(e.server, s)
			re.sameServer[j] = tier == cluster.TierServer
			re.sameRack[j] = tier <= cluster.TierRack
			re.sameCluster[j] = tier <= cluster.TierCluster
		}
		out[i] = re
	}
	return out
}

// executor runs one operator instance: it owns the processor, the pair
// sketches and the migration buffer, and implements the instance side of
// Algorithm 1.
type executor struct {
	eng    *Live
	op     *topology.Operator
	inst   int
	server int
	proc   topology.Processor
	box    *mailbox
	edges  []*resolvedEdge

	sketches map[[2]string]*spacesaving.PairSketch
	buf      *state.Buffer
	seq      uint64

	// keyed is proc's Keyed interface, resolved once (nil when the
	// processor is stateless). dirty tracks the keys whose state changed
	// since the last checkpoint; dirtyN mirrors len(dirty) atomically so
	// CheckpointDirty can skip clean executors without a message
	// round-trip.
	keyed  topology.Keyed
	dirty  map[string]struct{}
	dirtyN atomic.Int64

	// mergeable is proc's Mergeable interface, resolved once (nil unless
	// the processor declares an associative combine). Only mergeable
	// operators can have keys split.
	mergeable topology.Mergeable
	// demoted holds forwarding tombstones for keys recently demoted from
	// split routing at this replica: late in-flight tuples are forwarded
	// to the owner instead of being processed against deleted state. nil
	// until the first demotion, so onData pays one nil check.
	demoted map[string]int

	// emitFn is the emit callback handed to the processor, bound once at
	// construction so process() allocates no closure per tuple. The
	// routing context it needs is staged in emitKeyOp/emitKey (safe:
	// process never re-enters on one executor goroutine).
	emitFn    topology.Emit
	emitKeyOp string
	emitKey   string

	pendingReconf    *instReconfig
	propagatesSeen   int
	propagatesNeeded int
	propagated       bool

	processed atomic.Uint64
}

func (e *executor) run() {
	defer e.eng.wg.Done()
	// trackDepth is immutable once the executor runs; hoisting it keeps
	// the per-message depth accounting out of the unsplit hot loop.
	track := e.box.trackDepth
	var buf []message
	for {
		batch, ok := e.box.getBatch(buf)
		if !ok {
			return
		}
		for i := range batch {
			e.dispatch(batch[i])
			if track {
				e.box.depth.Add(-1)
			}
			// Drop payload references before the slice is recycled as the
			// mailbox's next backing array.
			batch[i] = message{}
		}
		buf = batch
	}
}

func (e *executor) dispatch(msg message) {
	switch msg.kind {
	case msgData:
		e.onData(msg)
	case msgGetStats:
		e.onGetStats(msg)
	case msgReconf:
		e.onReconf(msg)
	case msgPropagate:
		e.onPropagate()
	case msgMigrate:
		e.onMigrate(msg)
	case msgInspect:
		if msg.inspectFn != nil {
			msg.inspectFn(e.proc)
		}
	case msgCheckpoint:
		e.onCheckpoint(msg)
	case msgArm:
		e.buf.Expect(msg.armKeys)
		msg.ack <- struct{}{}
	case msgSplit:
		e.onSplit(msg)
	}
}

func (e *executor) onData(msg message) {
	if msg.keyOp == e.op.Name {
		// A tombstone marks a key demoted from split routing at this
		// replica: its partial already merged into the owner, so late
		// in-flight tuples forward there, carrying their in-flight count
		// with them (zero loss through a demotion). The nil check is the
		// only cost the unsplit path pays.
		if e.demoted != nil {
			if owner, ok := e.demoted[msg.key]; ok && owner != e.inst {
				e.forwardDemoted(owner, msg)
				return
			}
		}
		// Buffer tuples for keys whose state has not arrived yet (§3.4).
		if e.buf.Pending(msg.key) {
			e.buf.Hold(msg.key, msg.tuple)
			// A bounded buffer drops instead of holding once full; fold the
			// overflow into the engine's loss counter.
			if d := e.buf.TakeDropped(); d > 0 {
				e.eng.tuplesLost.Add(d)
			}
			e.eng.inflight.dec()
			return
		}
	}
	e.process(msg.tuple, msg.keyOp, msg.key)
	e.eng.inflight.dec()
}

// forwardDemoted re-sends a data tuple to the owner of a demoted split
// key. The tuple keeps its in-flight count; only a rejected delivery
// (owner died) settles it as loss.
func (e *executor) forwardDemoted(owner int, msg message) {
	toServer := e.eng.place.ServerOf(e.op.Name, owner)
	if e.eng.fabric != nil && toServer != e.server &&
		e.eng.sendWire(e.op.Name, owner, e.server, toServer, msg) {
		return
	}
	if !e.eng.execs[e.op.Name][owner].box.put(msg) {
		e.eng.inflight.dec()
		e.eng.tuplesLost.Add(1)
	}
}

// process runs the operator logic on one tuple and forwards emissions.
func (e *executor) process(t topology.Tuple, keyOp, key string) {
	e.processed.Add(1)
	// Incremental checkpointing: a tuple keyed for this operator mutates
	// the state of its key; record it as dirty so the next checkpoint
	// snapshots it (and clean keys are skipped).
	if e.dirty != nil && keyOp == e.op.Name && key != "" {
		if _, ok := e.dirty[key]; !ok {
			e.dirty[key] = struct{}{}
			e.dirtyN.Add(1)
		}
	}
	e.emitKeyOp, e.emitKey = keyOp, key
	e.proc.Process(t, e.emitFn)
}

// emit forwards one emitted tuple across every out-edge; it is bound into
// emitFn once so the hot path never allocates a closure.
func (e *executor) emit(out topology.Tuple) {
	for _, re := range e.edges {
		e.forward(re, e.emitKeyOp, e.emitKey, out)
	}
}

// forward routes one emitted tuple across one resolved out-edge. This is
// the engine's hot path: everything it touches is either executor-local
// (sketches, seq, the edge's traffic accumulator) or immutable after
// construction (policy pointer, target tables), so concurrent executors
// never contend and no per-tuple allocation occurs in the steady state.
func (e *executor) forward(re *resolvedEdge, keyOp, key string, out topology.Tuple) {
	nextKeyOp, nextKey := keyOp, key
	routeKey := ""
	if re.grouping == topology.Fields {
		routeKey = out.Field(re.keyField)
		if e.eng.cfg.SketchCapacity > 0 && keyOp != "" {
			id := [2]string{keyOp, re.to}
			sk := e.sketches[id]
			if sk == nil {
				sk = spacesaving.NewPairs(e.eng.cfg.SketchCapacity)
				e.sketches[id] = sk
			}
			sk.Add(key, routeKey)
		}
		nextKeyOp, nextKey = re.to, routeKey
	}
	e.seq++
	target := re.policy.Route(routeKey, e.server, e.seq)
	re.mu.Lock()
	re.traffic.RecordTiers(re.sameServer[target], re.sameRack[target], re.sameCluster[target], out.Size())
	re.mu.Unlock()
	e.eng.inflight.incInternal()
	msg := message{kind: msgData, tuple: out, keyOp: nextKeyOp, key: nextKey}
	if !re.sameServer[target] && e.eng.fabric != nil &&
		e.eng.sendWire(re.to, target, e.server, re.server[target], msg) {
		return
	}
	// A rejected put means the recipient died (killed server): settle the
	// in-flight count and record the loss, or Drain would wait forever.
	if !re.targets[target].box.put(msg) {
		e.eng.inflight.dec()
		e.eng.tuplesLost.Add(1)
	}
}

func (e *executor) onGetStats(msg message) {
	stats := make([]instPairStat, 0, len(e.sketches))
	for id, sk := range e.sketches {
		stats = append(stats, instPairStat{fromOp: id[0], toOp: id[1], pairs: sk.Counters()})
		if !msg.statsPeek {
			sk.Reset()
		}
	}
	msg.statsReply <- stats
}

// onCheckpoint snapshots every dirty key's state (without removing it)
// and resets the dirty set. Keys whose state vanished since they were
// marked (migrated away) are simply skipped: the record of their new
// owner supersedes them.
func (e *executor) onCheckpoint(msg message) {
	if e.keyed == nil || len(e.dirty) == 0 {
		msg.ckptReply <- nil
		return
	}
	keys := make([]string, 0, len(e.dirty))
	for k := range e.dirty {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recs := make([]KeyState, 0, len(keys))
	for _, k := range keys {
		if data, ok := e.keyed.SnapshotKey(k); ok {
			recs = append(recs, KeyState{Op: e.op.Name, Inst: e.inst, Key: k, Data: data})
		}
		delete(e.dirty, k)
	}
	e.dirtyN.Store(0)
	msg.ckptReply <- recs
}

func (e *executor) onReconf(msg message) {
	e.pendingReconf = msg.reconf
	e.propagated = false
	e.propagatesSeen = 0
	// Arm the migration buffer before acknowledging: once the manager
	// has every ACK, any instance may route with the new tables, and
	// tuples for moved keys must be buffered until their state arrives.
	keys := make([]string, 0, len(msg.reconf.recv))
	for k := range msg.reconf.recv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.buf.Expect(keys)
	msg.ack <- struct{}{}
}

func (e *executor) onPropagate() {
	e.propagatesSeen++
	if e.pendingReconf == nil || e.propagated || e.propagatesSeen < e.propagatesNeeded {
		return
	}
	rc := e.pendingReconf
	// update_routing: install the new tables on this instance's
	// fields-grouped out-edges. Shared policy objects make this
	// idempotent across sibling instances.
	for toOp, table := range rc.tables {
		for _, re := range e.edges {
			if re.to != toOp || re.grouping != topology.Fields {
				continue
			}
			if tf, ok := re.policy.(*routing.TableFields); ok {
				tf.Update(table)
			}
		}
	}
	// Migrate outgoing state. A record is sent for every planned key —
	// flagged hasData only when a snapshot exists — so recipients always
	// clear their pending markers. The explicit flag (not payload
	// nil-ness) is what survives the wire: the control codec encodes the
	// flag as its own bit, so local and TCP delivery agree on it even
	// for a zero-length snapshot.
	if len(rc.send) > 0 {
		keys := make([]string, 0, len(rc.send))
		for k := range rc.send {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		keyed, _ := e.proc.(topology.Keyed)
		for _, k := range keys {
			var data []byte
			hasData := false
			if keyed != nil {
				if snap, ok := keyed.SnapshotKey(k); ok {
					data, hasData = snap, true
					keyed.DeleteKey(k)
				}
			}
			e.eng.send(e.op.Name, rc.send[k], e.server, message{
				kind: msgMigrate, migKey: k, migData: data, migHasData: hasData,
			})
		}
	}
	// Forward the propagation wave to every successor instance.
	for _, succ := range e.eng.topo.Successors(e.op.Name) {
		for i := range e.eng.execs[succ] {
			e.eng.send(succ, i, e.server, message{kind: msgPropagate})
		}
	}
	e.propagated = true
	e.propagatesSeen = 0
	e.maybeFinishReconf()
}

func (e *executor) onMigrate(msg message) {
	if msg.migHasData {
		switch {
		case msg.migMerge && e.mergeable != nil:
			// A split-key partial: fold it into whatever state already
			// lives here with the operator's associative combine (the
			// payload is not authoritative alone, so RestoreKey semantics
			// would be wrong for processors that replace state).
			_ = e.mergeable.MergeKey(msg.migKey, msg.migData)
			e.eng.mergesApplied.Add(1)
			e.markDirty(msg.migKey)
		case e.keyed != nil:
			// Restore failures indicate incompatible processor versions;
			// the engine surfaces them as a panic in tests via the
			// processor itself. Here the state is dropped and processing
			// continues, matching the at-most-once semantics of the
			// underlying engine ("the guarantees are the ones provided
			// by the streaming engine", §3.4).
			_ = e.keyed.RestoreKey(msg.migKey, msg.migData)
			e.markDirty(msg.migKey)
		}
	}
	for _, t := range e.buf.Arrive(msg.migKey) {
		e.process(t, e.op.Name, msg.migKey)
	}
	e.maybeFinishReconf()
}

// markDirty records key as changed since the last checkpoint (the key
// now lives here; the next checkpoint must record it under this owner).
func (e *executor) markDirty(key string) {
	if e.dirty == nil {
		return
	}
	if _, ok := e.dirty[key]; !ok {
		e.dirty[key] = struct{}{}
		e.dirtyN.Add(1)
	}
}

// onSplit executes one split-control action in the executor goroutine.
func (e *executor) onSplit(msg message) {
	switch msg.splitCmd {
	case splitCmdDemote:
		if e.demoted == nil {
			e.demoted = make(map[string]int)
		}
		e.demoted[msg.migKey] = int(msg.splitOwner)
		if e.keyed != nil {
			if data, ok := e.keyed.SnapshotKey(msg.migKey); ok {
				e.keyed.DeleteKey(msg.migKey)
				if _, dirty := e.dirty[msg.migKey]; dirty {
					delete(e.dirty, msg.migKey)
					e.dirtyN.Add(-1)
				}
				e.eng.sendMerge(e.op.Name, int(msg.splitOwner), msg.migKey, data)
			}
		}
	case splitCmdArm:
		delete(e.demoted, msg.migKey)
	}
	if msg.ack != nil {
		msg.ack <- struct{}{}
	}
}

// maybeFinishReconf reports completion once this instance has propagated
// and holds no pending keys.
func (e *executor) maybeFinishReconf() {
	if e.pendingReconf == nil || !e.propagated || e.buf.PendingCount() > 0 {
		return
	}
	e.pendingReconf.done.Done()
	e.pendingReconf = nil
	e.propagated = false
}

// --- in-flight accounting -----------------------------------------------------

// inflightCounter tracks unprocessed tuples. External injections block at
// the configured high-water mark; internal forwards never block (the
// protocol's liveness depends on executors always being able to send).
//
// The counter is a plain atomic: the inc/dec pair every forwarded tuple
// pays is lock-free, and the mutex/condvar is touched only when a waiter
// (a blocked Inject or Drain) is actually parked. Go atomics are
// sequentially consistent, so the ordering argument is simple: a waiter
// registers in waiters (under mu) before re-checking n; a decrementer
// updates n before reading waiters. Whichever ran second sees the other's
// write, so either the waiter never parks or the decrementer broadcasts.
type inflightCounter struct {
	n       atomic.Int64
	waiters atomic.Int32
	max     int64

	mu   sync.Mutex
	cond *sync.Cond
}

func newInflightCounter(max int) *inflightCounter {
	c := &inflightCounter{max: int64(max)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// incExternal increments, blocking while the high-water mark is reached.
// The CAS keeps the bound exact under concurrent injectors.
func (c *inflightCounter) incExternal() {
	if c.max <= 0 {
		c.n.Add(1)
		return
	}
	for {
		cur := c.n.Load()
		if cur >= c.max {
			c.mu.Lock()
			c.waiters.Add(1)
			for c.n.Load() >= c.max {
				c.cond.Wait()
			}
			c.waiters.Add(-1)
			c.mu.Unlock()
			continue
		}
		if c.n.CompareAndSwap(cur, cur+1) {
			return
		}
	}
}

func (c *inflightCounter) incInternal() { c.n.Add(1) }

func (c *inflightCounter) dec() {
	v := c.n.Add(-1)
	if c.waiters.Load() == 0 {
		return
	}
	if v <= 0 || (c.max > 0 && v < c.max) {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

func (c *inflightCounter) waitZero() {
	if c.n.Load() <= 0 {
		return
	}
	c.mu.Lock()
	c.waiters.Add(1)
	for c.n.Load() > 0 {
		c.cond.Wait()
	}
	c.waiters.Add(-1)
	c.mu.Unlock()
}
