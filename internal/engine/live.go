package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/metrics"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/spacesaving"
	"github.com/locastream/locastream/internal/state"
	"github.com/locastream/locastream/internal/topology"
	"github.com/locastream/locastream/internal/transport"
)

// KeyMove records one key changing owner instance during a
// reconfiguration.
type KeyMove struct {
	Key  string
	From int
	To   int
}

// ReconfigPlan is the deployable output of the optimizer: the new routing
// tables per recipient operator plus, for every stateful operator, the
// keys whose owner changes (the migration workload).
type ReconfigPlan struct {
	Tables map[string]*routing.Table
	Moves  map[string][]KeyMove
}

// LiveConfig configures a concurrent engine.
type LiveConfig struct {
	// Topology is the validated application DAG.
	Topology *topology.Topology
	// Placement assigns instances to servers.
	Placement *cluster.Placement
	// Policies maps EdgeKey(from, to) to the edge's routing policy.
	Policies map[string]routing.Policy
	// SourcePolicy routes injected tuples to the source operator.
	SourcePolicy routing.Policy
	// SourceGrouping is the grouping of the implicit source hop; the
	// zero value means Fields.
	SourceGrouping topology.Grouping
	// SourceKeyField is the field used as key on the source hop (Fields
	// grouping only).
	SourceKeyField int
	// SketchCapacity bounds per-instance pair sketches (0 disables
	// instrumentation).
	SketchCapacity int
	// MaxInFlight blocks Inject while this many externally injected
	// tuples are unprocessed (0 means unlimited). Internal forwards are
	// never blocked, which keeps the reconfiguration protocol
	// deadlock-free.
	MaxInFlight int
	// TCPTransport routes every cross-server message (tuples, state
	// migrations, propagation markers) through real localhost TCP
	// connections, one per server pair, exercising serialization and the
	// kernel network path. Same-server messages stay in memory — exactly
	// the asymmetry the paper exploits.
	TCPTransport bool
}

// Live executes a topology with one goroutine per operator instance and
// real message passing, including the online reconfiguration protocol of
// §3.4. Create with NewLive, stop with Stop.
type Live struct {
	cfg   LiveConfig
	topo  *topology.Topology
	place *cluster.Placement

	execs map[string][]*executor
	all   []*executor

	inflight *inflightCounter
	wg       sync.WaitGroup
	stopped  atomic.Bool

	trafficMu sync.Mutex
	traffic   map[string]*metrics.Traffic

	fabric *transport.Fabric

	srcSeq atomic.Uint64
}

// message is the single envelope exchanged between executors and with the
// engine/manager, covering data tuples and the protocol messages of
// Algorithm 1.
type message struct {
	kind msgKind

	// data
	tuple topology.Tuple
	keyOp string // operator whose routing key last applied to the tuple
	key   string // that key (used for buffering and instrumentation)

	// get-metrics
	statsReply chan []instPairStat

	// inspect (state access from the executor goroutine)
	inspectFn func(topology.Processor)

	// send-reconfiguration
	reconf *instReconfig
	ack    chan struct{}

	// migrate
	migKey  string
	migData []byte
}

type msgKind int

const (
	msgData msgKind = iota + 1
	msgGetStats
	msgReconf
	msgPropagate
	msgMigrate
	msgInspect
)

// instPairStat is one executor's sketch snapshot for one operator pair.
type instPairStat struct {
	fromOp string
	toOp   string
	pairs  []spacesaving.PairCounter
}

// instReconfig is the §3.4 reconfiguration payload for one instance:
// "reconfiguration_router, reconfiguration_send, reconfiguration_receive".
type instReconfig struct {
	tables map[string]*routing.Table // recipient op -> new table
	send   map[string]int            // key -> recipient sibling instance
	recv   map[string]int            // key -> sender sibling instance
	done   *sync.WaitGroup           // counted down once migration completes
}

// NewLive validates cfg and starts one goroutine per instance.
func NewLive(cfg LiveConfig) (*Live, error) {
	if cfg.Topology == nil || cfg.Placement == nil {
		return nil, errors.New("engine: live needs a topology and a placement")
	}
	if cfg.SourcePolicy == nil {
		return nil, errors.New("engine: live needs a source policy")
	}
	for _, e := range cfg.Topology.Edges() {
		if cfg.Policies[EdgeKey(e.From, e.To)] == nil {
			return nil, fmt.Errorf("engine: no policy for edge %s", EdgeKey(e.From, e.To))
		}
	}

	l := &Live{
		cfg:      cfg,
		topo:     cfg.Topology,
		place:    cfg.Placement,
		execs:    make(map[string][]*executor),
		inflight: newInflightCounter(cfg.MaxInFlight),
		traffic:  make(map[string]*metrics.Traffic),
	}
	for _, e := range cfg.Topology.Edges() {
		l.traffic[EdgeKey(e.From, e.To)] = &metrics.Traffic{}
	}

	for _, op := range cfg.Topology.Operators() {
		// Propagation fan-in: the source operator is triggered by the
		// manager (one PROPAGATE); the others by every predecessor
		// instance.
		needed := 1
		if preds := cfg.Topology.Predecessors(op.Name); len(preds) > 0 {
			needed = 0
			for _, p := range preds {
				needed += cfg.Placement.Parallelism(p)
			}
		}
		insts := make([]*executor, op.Parallelism)
		for i := range insts {
			insts[i] = &executor{
				eng:              l,
				op:               cfg.Topology.Operator(op.Name),
				inst:             i,
				server:           cfg.Placement.ServerOf(op.Name, i),
				proc:             op.New(),
				box:              newMailbox(),
				outEdges:         cfg.Topology.OutEdges(op.Name),
				sketches:         make(map[[2]string]*spacesaving.PairSketch),
				buf:              state.NewBuffer(),
				propagatesNeeded: needed,
			}
		}
		l.execs[op.Name] = insts
		l.all = append(l.all, insts...)
	}
	if cfg.TCPTransport {
		fabric, err := transport.NewFabric(cfg.Placement.Servers(), func(_ int, msg transport.Message) {
			l.deliverWire(msg)
		})
		if err != nil {
			return nil, fmt.Errorf("engine: start transport: %w", err)
		}
		l.fabric = fabric
	}
	for _, ex := range l.all {
		l.wg.Add(1)
		go ex.run()
	}
	return l, nil
}

// deliverWire converts a transport message back into an engine message
// and enqueues it at the addressed instance.
func (l *Live) deliverWire(msg transport.Message) {
	insts := l.execs[msg.To.Op]
	if msg.To.Instance < 0 || msg.To.Instance >= len(insts) {
		return // corrupt address; drop
	}
	box := insts[msg.To.Instance].box
	switch msg.Kind {
	case transport.KindData:
		box.put(message{
			kind:  msgData,
			tuple: topology.Tuple{Values: msg.Values, Padding: msg.Padding},
			keyOp: msg.KeyOp,
			key:   msg.Key,
		})
	case transport.KindMigrate:
		box.put(message{kind: msgMigrate, migKey: msg.MigKey, migData: msg.MigData})
	case transport.KindPropagate:
		box.put(message{kind: msgPropagate})
	}
}

// send routes a data/migrate/propagate message to an instance, over TCP
// when the recipient lives on a different server and a fabric is
// attached. Transport failures (only possible during shutdown) fall back
// to direct delivery.
func (l *Live) send(toOp string, toInst, fromServer int, msg message) {
	toServer := l.place.ServerOf(toOp, toInst)
	if l.fabric != nil && fromServer >= 0 && toServer >= 0 && toServer != fromServer {
		wire := transport.Message{To: transport.Addr{Op: toOp, Instance: toInst}}
		switch msg.kind {
		case msgData:
			wire.Kind = transport.KindData
			wire.Values = msg.tuple.Values
			wire.Padding = msg.tuple.Padding
			wire.KeyOp = msg.keyOp
			wire.Key = msg.key
		case msgMigrate:
			wire.Kind = transport.KindMigrate
			wire.MigKey = msg.migKey
			wire.MigData = msg.migData
		case msgPropagate:
			wire.Kind = transport.KindPropagate
		default:
			l.execs[toOp][toInst].box.put(msg)
			return
		}
		if err := l.fabric.Send(fromServer, toServer, wire); err == nil {
			return
		}
	}
	l.execs[toOp][toInst].box.put(msg)
}

// Inject routes one external tuple into the topology. It blocks when
// MaxInFlight is configured and reached, providing source backpressure.
// Injecting into a stopped engine returns an error.
func (l *Live) Inject(t topology.Tuple) error {
	if l.stopped.Load() {
		return errors.New("engine: inject on stopped engine")
	}
	srcOp := l.topo.Source()
	keyOp, key := "", ""
	if l.cfg.SourceGrouping == 0 || l.cfg.SourceGrouping == topology.Fields {
		key = t.Field(l.cfg.SourceKeyField)
		keyOp = srcOp
	}
	inst := l.cfg.SourcePolicy.Route(key, -1, l.srcSeq.Add(1))
	l.inflight.incExternal()
	l.execs[srcOp][inst].box.put(message{kind: msgData, tuple: t, keyOp: keyOp, key: key})
	return nil
}

// Drain blocks until every injected tuple has been fully processed
// (tuples buffered while awaiting migrated state are excluded; they are
// flushed by the in-progress reconfiguration).
func (l *Live) Drain() { l.inflight.waitZero() }

// Stop drains outstanding work, terminates all executors and waits for
// them to exit. Stop is idempotent.
func (l *Live) Stop() {
	if l.stopped.Swap(true) {
		return
	}
	l.Drain()
	for _, ex := range l.all {
		ex.box.close()
	}
	l.wg.Wait()
	if l.fabric != nil {
		l.fabric.Close()
	}
}

// CollectPairStats performs steps 1-2 of Algorithm 1: every instance
// reports (and resets) its pair sketches; the results are merged per
// operator pair.
func (l *Live) CollectPairStats() []PairStat {
	replies := make([]chan []instPairStat, len(l.all))
	for i, ex := range l.all {
		replies[i] = make(chan []instPairStat, 1)
		ex.box.put(message{kind: msgGetStats, statsReply: replies[i]})
	}
	merged := make(map[[2]string]*spacesaving.PairSketch)
	for _, ch := range replies {
		for _, st := range <-ch {
			id := [2]string{st.fromOp, st.toOp}
			sk := merged[id]
			if sk == nil {
				sk = spacesaving.NewPairs(maxInt(l.cfg.SketchCapacity, len(st.pairs)) * maxInt(1, len(l.all)))
				merged[id] = sk
			}
			for _, p := range st.pairs {
				sk.AddWeighted(p.In, p.Out, p.Count)
			}
		}
	}
	ids := make([][2]string, 0, len(merged))
	for id := range merged {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i][0] != ids[j][0] {
			return ids[i][0] < ids[j][0]
		}
		return ids[i][1] < ids[j][1]
	})
	out := make([]PairStat, 0, len(ids))
	for _, id := range ids {
		out = append(out, PairStat{FromOp: id[0], ToOp: id[1], Pairs: merged[id].Counters()})
	}
	return out
}

// Reconfigure deploys a new configuration with the protocol of §3.4:
// reconfiguration messages to every instance (3), acknowledgements (4),
// DAG-ordered propagation (5) and state migration with buffering (6). It
// returns once every instance has propagated and received all awaited
// state. The data stream keeps flowing during the call.
func (l *Live) Reconfigure(plan ReconfigPlan) error {
	if l.stopped.Load() {
		return errors.New("engine: reconfigure on stopped engine")
	}
	var done sync.WaitGroup

	// Step 3: build and send per-instance reconfiguration messages.
	acks := make([]chan struct{}, 0, len(l.all))
	for _, opName := range l.topo.Order() {
		insts := l.execs[opName]
		sendLists, recvLists := movesByInstance(plan.Moves[opName], len(insts))
		for i, ex := range insts {
			rc := &instReconfig{
				tables: tablesForSender(l.topo, opName, plan.Tables),
				send:   sendLists[i],
				recv:   recvLists[i],
				done:   &done,
			}
			done.Add(1)
			ack := make(chan struct{}, 1)
			acks = append(acks, ack)
			ex.box.put(message{kind: msgReconf, reconf: rc, ack: ack})
		}
	}
	// Step 4: wait for all acknowledgements. After this point every
	// instance has armed its migration buffer, so tuples routed with the
	// new tables can never be processed before their state arrives.
	for _, ack := range acks {
		<-ack
	}

	// The manager-side router for the external source hop switches now,
	// before the first PROPAGATE, mirroring the manager triggering the
	// first PO.
	if table, ok := plan.Tables[l.topo.Source()]; ok {
		if tf, ok := l.cfg.SourcePolicy.(*routing.TableFields); ok {
			tf.Update(table)
		}
	}

	// Step 5: trigger the operators with no predecessors.
	for _, opName := range l.topo.Order() {
		if len(l.topo.Predecessors(opName)) == 0 {
			for _, ex := range l.execs[opName] {
				ex.box.put(message{kind: msgPropagate})
			}
		}
	}

	// Step 6 happens inside the executors; wait for full completion.
	done.Wait()
	return nil
}

// tablesForSender selects the new tables relevant to an instance of op:
// one per fields-grouped out-edge.
func tablesForSender(t *topology.Topology, op string, tables map[string]*routing.Table) map[string]*routing.Table {
	out := make(map[string]*routing.Table)
	for _, e := range t.OutEdges(op) {
		if e.Grouping != topology.Fields {
			continue
		}
		if table, ok := tables[e.To]; ok {
			out[e.To] = table
		}
	}
	return out
}

// movesByInstance splits an operator's key moves into per-instance send
// and receive lists.
func movesByInstance(moves []KeyMove, instances int) (send, recv []map[string]int) {
	send = make([]map[string]int, instances)
	recv = make([]map[string]int, instances)
	for i := 0; i < instances; i++ {
		send[i] = make(map[string]int)
		recv[i] = make(map[string]int)
	}
	for _, m := range moves {
		if m.From < 0 || m.From >= instances || m.To < 0 || m.To >= instances || m.From == m.To {
			continue
		}
		send[m.From][m.Key] = m.To
		recv[m.To][m.Key] = m.From
	}
	return send, recv
}

// Traffic returns the accumulated traffic of one edge.
func (l *Live) Traffic(from, to string) metrics.Traffic {
	l.trafficMu.Lock()
	defer l.trafficMu.Unlock()
	if tr := l.traffic[EdgeKey(from, to)]; tr != nil {
		return *tr
	}
	return metrics.Traffic{}
}

// FieldsTraffic aggregates traffic over every fields-grouped edge.
func (l *Live) FieldsTraffic() metrics.Traffic {
	l.trafficMu.Lock()
	defer l.trafficMu.Unlock()
	var agg metrics.Traffic
	for _, e := range l.topo.FieldsEdges() {
		agg.Add(*l.traffic[EdgeKey(e.From, e.To)])
	}
	return agg
}

// Loads returns tuples processed per instance of op.
func (l *Live) Loads(op string) []uint64 {
	insts := l.execs[op]
	out := make([]uint64, len(insts))
	for i, ex := range insts {
		out[i] = ex.processed.Load()
	}
	return out
}

// ProcessorState runs fn inside the executor goroutine of (op, inst),
// giving safe access to the processor's state. It blocks until fn has
// run. It returns an error for unknown instances.
func (l *Live) ProcessorState(op string, inst int, fn func(topology.Processor)) error {
	insts := l.execs[op]
	if inst < 0 || inst >= len(insts) {
		return fmt.Errorf("engine: unknown instance %s[%d]", op, inst)
	}
	doneCh := make(chan struct{})
	insts[inst].box.put(message{kind: msgInspect, inspectFn: func(p topology.Processor) {
		fn(p)
		close(doneCh)
	}})
	<-doneCh
	return nil
}

func (l *Live) recordTraffic(edge string, sameServer, sameRack bool, size int) {
	l.trafficMu.Lock()
	if tr := l.traffic[edge]; tr != nil {
		tr.RecordLevel(sameServer, sameRack, size)
	}
	l.trafficMu.Unlock()
}

// --- executor ---------------------------------------------------------------

// executor runs one operator instance: it owns the processor, the pair
// sketches and the migration buffer, and implements the instance side of
// Algorithm 1.
type executor struct {
	eng      *Live
	op       *topology.Operator
	inst     int
	server   int
	proc     topology.Processor
	box      *mailbox
	outEdges []topology.Edge

	sketches map[[2]string]*spacesaving.PairSketch
	buf      *state.Buffer
	seq      uint64

	pendingReconf    *instReconfig
	propagatesSeen   int
	propagatesNeeded int
	propagated       bool

	processed atomic.Uint64
}

func (e *executor) run() {
	defer e.eng.wg.Done()
	for {
		msg, ok := e.box.get()
		if !ok {
			return
		}
		switch msg.kind {
		case msgData:
			e.onData(msg)
		case msgGetStats:
			e.onGetStats(msg)
		case msgReconf:
			e.onReconf(msg)
		case msgPropagate:
			e.onPropagate()
		case msgMigrate:
			e.onMigrate(msg)
		case msgInspect:
			if msg.inspectFn != nil {
				msg.inspectFn(e.proc)
			}
		}
	}
}

func (e *executor) onData(msg message) {
	// Buffer tuples for keys whose state has not arrived yet (§3.4).
	if msg.keyOp == e.op.Name && e.buf.Pending(msg.key) {
		e.buf.Hold(msg.key, msg.tuple)
		e.eng.inflight.dec()
		return
	}
	e.process(msg.tuple, msg.keyOp, msg.key)
	e.eng.inflight.dec()
}

// process runs the operator logic on one tuple and forwards emissions.
func (e *executor) process(t topology.Tuple, keyOp, key string) {
	e.processed.Add(1)
	e.proc.Process(t, func(out topology.Tuple) {
		for _, edge := range e.outEdges {
			e.forward(edge, keyOp, key, out)
		}
	})
}

func (e *executor) forward(edge topology.Edge, keyOp, key string, out topology.Tuple) {
	nextKeyOp, nextKey := keyOp, key
	routeKey := ""
	if edge.Grouping == topology.Fields {
		routeKey = out.Field(edge.KeyField)
		if e.eng.cfg.SketchCapacity > 0 && keyOp != "" {
			id := [2]string{keyOp, edge.To}
			sk := e.sketches[id]
			if sk == nil {
				sk = spacesaving.NewPairs(e.eng.cfg.SketchCapacity)
				e.sketches[id] = sk
			}
			sk.Add(key, routeKey)
		}
		nextKeyOp, nextKey = edge.To, routeKey
	}
	e.seq++
	policy := e.eng.cfg.Policies[EdgeKey(edge.From, edge.To)]
	target := policy.Route(routeKey, e.server, e.seq)
	targetServer := e.eng.place.ServerOf(edge.To, target)
	sameServer := targetServer == e.server
	sameRack := sameServer || e.eng.place.RackOf(targetServer) == e.eng.place.RackOf(e.server)
	e.eng.recordTraffic(EdgeKey(edge.From, edge.To), sameServer, sameRack, out.Size())
	e.eng.inflight.incInternal()
	e.eng.send(edge.To, target, e.server, message{
		kind: msgData, tuple: out, keyOp: nextKeyOp, key: nextKey,
	})
}

func (e *executor) onGetStats(msg message) {
	stats := make([]instPairStat, 0, len(e.sketches))
	for id, sk := range e.sketches {
		stats = append(stats, instPairStat{fromOp: id[0], toOp: id[1], pairs: sk.Counters()})
		sk.Reset()
	}
	msg.statsReply <- stats
}

func (e *executor) onReconf(msg message) {
	e.pendingReconf = msg.reconf
	e.propagated = false
	e.propagatesSeen = 0
	// Arm the migration buffer before acknowledging: once the manager
	// has every ACK, any instance may route with the new tables, and
	// tuples for moved keys must be buffered until their state arrives.
	keys := make([]string, 0, len(msg.reconf.recv))
	for k := range msg.reconf.recv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.buf.Expect(keys)
	msg.ack <- struct{}{}
}

func (e *executor) onPropagate() {
	e.propagatesSeen++
	if e.pendingReconf == nil || e.propagated || e.propagatesSeen < e.propagatesNeeded {
		return
	}
	rc := e.pendingReconf
	// update_routing: install the new tables on this instance's
	// fields-grouped out-edges. Shared policy objects make this
	// idempotent across sibling instances.
	for toOp, table := range rc.tables {
		for _, edge := range e.outEdges {
			if edge.To != toOp || edge.Grouping != topology.Fields {
				continue
			}
			if tf, ok := e.eng.cfg.Policies[EdgeKey(edge.From, edge.To)].(*routing.TableFields); ok {
				tf.Update(table)
			}
		}
	}
	// Migrate outgoing state. A record is sent for every planned key —
	// with nil payload when the key has no state — so recipients always
	// clear their pending markers.
	if len(rc.send) > 0 {
		keys := make([]string, 0, len(rc.send))
		for k := range rc.send {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		keyed, _ := e.proc.(topology.Keyed)
		for _, k := range keys {
			var data []byte
			if keyed != nil {
				if snap, ok := keyed.SnapshotKey(k); ok {
					data = snap
					keyed.DeleteKey(k)
				}
			}
			e.eng.send(e.op.Name, rc.send[k], e.server, message{
				kind: msgMigrate, migKey: k, migData: data,
			})
		}
	}
	// Forward the propagation wave to every successor instance.
	for _, succ := range e.eng.topo.Successors(e.op.Name) {
		for i := range e.eng.execs[succ] {
			e.eng.send(succ, i, e.server, message{kind: msgPropagate})
		}
	}
	e.propagated = true
	e.propagatesSeen = 0
	e.maybeFinishReconf()
}

func (e *executor) onMigrate(msg message) {
	if msg.migData != nil {
		if keyed, ok := e.proc.(topology.Keyed); ok {
			// Restore failures indicate incompatible processor versions;
			// the engine surfaces them as a panic in tests via the
			// processor itself. Here the state is dropped and processing
			// continues, matching the at-most-once semantics of the
			// underlying engine ("the guarantees are the ones provided
			// by the streaming engine", §3.4).
			_ = keyed.RestoreKey(msg.migKey, msg.migData)
		}
	}
	for _, t := range e.buf.Arrive(msg.migKey) {
		e.process(t, e.op.Name, msg.migKey)
	}
	e.maybeFinishReconf()
}

// maybeFinishReconf reports completion once this instance has propagated
// and holds no pending keys.
func (e *executor) maybeFinishReconf() {
	if e.pendingReconf == nil || !e.propagated || e.buf.PendingCount() > 0 {
		return
	}
	e.pendingReconf.done.Done()
	e.pendingReconf = nil
	e.propagated = false
}

// --- in-flight accounting -----------------------------------------------------

// inflightCounter tracks unprocessed tuples. External injections block at
// the configured high-water mark; internal forwards never block (the
// protocol's liveness depends on executors always being able to send).
type inflightCounter struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int64
	max  int64
}

func newInflightCounter(max int) *inflightCounter {
	c := &inflightCounter{max: int64(max)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *inflightCounter) incExternal() {
	c.mu.Lock()
	for c.max > 0 && c.n >= c.max {
		c.cond.Wait()
	}
	c.n++
	c.mu.Unlock()
}

func (c *inflightCounter) incInternal() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *inflightCounter) dec() {
	c.mu.Lock()
	c.n--
	if c.n <= 0 || c.n < c.max {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

func (c *inflightCounter) waitZero() {
	c.mu.Lock()
	for c.n > 0 {
		c.cond.Wait()
	}
	c.mu.Unlock()
}
