package engine

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/simnet"
	"github.com/locastream/locastream/internal/topology"
)

// paperTopology builds the evaluation application of §4.1: two stateful
// counting operators A and B, fields-routed by the first and second tuple
// field respectively.
func paperTopology(t testing.TB, parallelism int) (*topology.Topology, *cluster.Placement) {
	t.Helper()
	topo, err := topology.NewBuilder("eval").
		AddOperator(topology.Operator{
			Name: "A", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(0) },
		}).
		AddOperator(topology.Operator{
			Name: "B", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(1) },
		}).
		Connect("A", "B", topology.Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	place, err := cluster.NewRoundRobin(topo, parallelism)
	if err != nil {
		t.Fatal(err)
	}
	return topo, place
}

func newSim(t testing.TB, parallelism int, mode FieldsMode) *Sim {
	t.Helper()
	topo, place := paperTopology(t, parallelism)
	policies, err := NewPolicies(topo, place, mode)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSourcePolicy(topo, place, topology.Fields, mode)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(SimConfig{
		Topology:       topo,
		Placement:      place,
		Model:          simnet.Default10G(),
		Policies:       policies,
		SourcePolicy:   src,
		SourceKeyField: 0,
		SketchCapacity: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// identityTables routes key "i" to instance i for both operators.
func identityTables(parallelism int) map[string]*routing.Table {
	assign := make(map[string]int, parallelism)
	for i := 0; i < parallelism; i++ {
		assign[strconv.Itoa(i)] = i
	}
	return map[string]*routing.Table{
		"A": {Version: 1, Assign: assign},
		"B": {Version: 1, Assign: assign},
	}
}

func injectSynthetic(s *Sim, n, parallelism int, locality float64, padding int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		a := rng.Intn(parallelism)
		b := a
		if rng.Float64() >= locality {
			b = (a + 1 + rng.Intn(parallelism-1)) % parallelism
		}
		s.Inject(topology.Tuple{
			Values:  []string{strconv.Itoa(a), strconv.Itoa(b)},
			Padding: padding,
		})
	}
}

func TestSimValidation(t *testing.T) {
	topo, place := paperTopology(t, 2)
	policies, _ := NewPolicies(topo, place, FieldsHash)
	src, _ := NewSourcePolicy(topo, place, topology.Fields, FieldsHash)

	if _, err := NewSim(SimConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewSim(SimConfig{Topology: topo, Placement: place, Policies: policies}); err == nil {
		t.Error("missing source policy accepted")
	}
	if _, err := NewSim(SimConfig{Topology: topo, Placement: place, SourcePolicy: src}); err == nil {
		t.Error("missing edge policy accepted")
	}
}

func TestSimFullLocalityNoNetwork(t *testing.T) {
	sim := newSim(t, 4, FieldsTable)
	sim.ApplyTables(identityTables(4))
	injectSynthetic(sim, 4000, 4, 1.0, 1000, 1)

	tr := sim.FieldsTraffic()
	if tr.RemoteTuples != 0 {
		t.Fatalf("remote tuples = %d, want 0 at 100%% locality", tr.RemoteTuples)
	}
	if got := tr.Locality(); got != 1.0 {
		t.Fatalf("locality = %f, want 1", got)
	}
	if _, label := sim.Bottleneck(); label == "idle" {
		t.Fatal("no resource usage recorded")
	}
}

func TestSimHashLocalityMatchesRandom(t *testing.T) {
	// With n servers, hash routing gives ~1/n locality (§4.3 observes
	// 16.6% for n=6).
	const n = 6
	sim := newSim(t, n, FieldsHash)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30000; i++ {
		sim.Inject(topology.Tuple{Values: []string{
			fmt.Sprintf("loc%d", rng.Intn(500)),
			fmt.Sprintf("tag%d", rng.Intn(500)),
		}})
	}
	got := sim.FieldsTraffic().Locality()
	if math.Abs(got-1.0/n) > 0.03 {
		t.Fatalf("hash locality = %f, want ~%f", got, 1.0/n)
	}
}

func TestSimWorstCaseZeroLocality(t *testing.T) {
	sim := newSim(t, 3, FieldsWorstCase)
	injectSynthetic(sim, 3000, 3, 1.0, 0, 3)
	tr := sim.FieldsTraffic()
	if tr.LocalTuples != 0 {
		t.Fatalf("local tuples = %d, want 0 in worst case", tr.LocalTuples)
	}
}

func TestSimLocalityAwareBeatsHash(t *testing.T) {
	const (
		n       = 6
		padding = 8192
		tuples  = 6000
	)
	aware := newSim(t, n, FieldsTable)
	aware.ApplyTables(identityTables(n))
	injectSynthetic(aware, tuples, n, 1.0, padding, 4)

	hash := newSim(t, n, FieldsHash)
	injectSynthetic(hash, tuples, n, 1.0, padding, 4)

	ta := aware.ThroughputPerSec()
	th := hash.ThroughputPerSec()
	if ta <= th {
		t.Fatalf("locality-aware %.0f <= hash %.0f tuples/s", ta, th)
	}
	if ta/th < 1.5 {
		t.Errorf("gain %.2fx, want >= 1.5x at 8kB padding", ta/th)
	}
}

func TestSimThroughputScalesWithParallelism(t *testing.T) {
	// At 100% locality the paper reports linear scaling (Fig. 7d-f).
	prev := 0.0
	for _, n := range []int{1, 2, 4} {
		sim := newSim(t, n, FieldsTable)
		sim.ApplyTables(identityTables(n))
		injectSynthetic(sim, 2000*n, n, 1.0, 4096, 5)
		tp := sim.ThroughputPerSec()
		if tp <= prev {
			t.Fatalf("throughput %.0f at n=%d not higher than %.0f", tp, n, prev)
		}
		prev = tp
	}
}

func TestSimCountsPreserved(t *testing.T) {
	// Every injected tuple must be counted exactly once by each
	// operator, whatever the routing.
	sim := newSim(t, 3, FieldsHash)
	injectSynthetic(sim, 999, 3, 0.7, 0, 6)

	var totalA, totalB uint64
	for i := 0; i < 3; i++ {
		a, ok := sim.Processor("A", i).(*topology.Counter)
		if !ok {
			t.Fatal("processor A is not a Counter")
		}
		totalA += a.TotalCount()
		b := sim.Processor("B", i).(*topology.Counter)
		totalB += b.TotalCount()
	}
	if totalA != 999 || totalB != 999 {
		t.Fatalf("counts A=%d B=%d, want 999 each", totalA, totalB)
	}
	if sim.Processor("A", 99) != nil || sim.Processor("zzz", 0) != nil {
		t.Fatal("invalid Processor lookups should return nil")
	}
}

func TestSimSameKeySameInstance(t *testing.T) {
	// Fields grouping consistency: all tuples with key k reach the same
	// B instance, so exactly one B instance has a nonzero count for k.
	sim := newSim(t, 4, FieldsHash)
	for i := 0; i < 100; i++ {
		sim.Inject(topology.Tuple{Values: []string{fmt.Sprintf("a%d", i%7), "hot"}})
	}
	owners := 0
	for i := 0; i < 4; i++ {
		if sim.Processor("B", i).(*topology.Counter).Count("hot") > 0 {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("key 'hot' counted on %d instances, want 1", owners)
	}
}

func TestSimPairStats(t *testing.T) {
	sim := newSim(t, 2, FieldsHash)
	for i := 0; i < 50; i++ {
		sim.Inject(topology.Tuple{Values: []string{"Asia", "#java"}})
	}
	for i := 0; i < 20; i++ {
		sim.Inject(topology.Tuple{Values: []string{"Oceania", "#python"}})
	}
	stats := sim.PairStats(false)
	if len(stats) != 1 {
		t.Fatalf("PairStats returned %d bundles, want 1", len(stats))
	}
	st := stats[0]
	if st.FromOp != "A" || st.ToOp != "B" {
		t.Fatalf("pair ops = %s->%s, want A->B", st.FromOp, st.ToOp)
	}
	if len(st.Pairs) != 2 {
		t.Fatalf("got %d pairs, want 2", len(st.Pairs))
	}
	if st.Pairs[0].In != "Asia" || st.Pairs[0].Out != "#java" || st.Pairs[0].Count != 50 {
		t.Fatalf("top pair = %+v", st.Pairs[0])
	}

	// Reset semantics.
	stats = sim.PairStats(true)
	if stats[0].Pairs[0].Count != 50 {
		t.Fatal("snapshot before reset lost data")
	}
	stats = sim.PairStats(false)
	if len(stats[0].Pairs) != 0 {
		t.Fatalf("sketches not reset: %+v", stats[0].Pairs)
	}
}

func TestSimSketchDisabled(t *testing.T) {
	topo, place := paperTopology(t, 2)
	policies, _ := NewPolicies(topo, place, FieldsHash)
	src, _ := NewSourcePolicy(topo, place, topology.Fields, FieldsHash)
	sim, err := NewSim(SimConfig{
		Topology: topo, Placement: place, Model: simnet.Default10G(),
		Policies: policies, SourcePolicy: src,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Inject(topology.Tuple{Values: []string{"a", "b"}})
	if got := sim.PairStats(false); len(got) != 0 {
		t.Fatalf("instrumentation should be disabled, got %d bundles", len(got))
	}
}

func TestSimLoadsAndWindowReset(t *testing.T) {
	sim := newSim(t, 2, FieldsHash)
	injectSynthetic(sim, 100, 2, 0.5, 0, 7)
	loads := sim.Loads("A")
	if len(loads) != 2 || loads[0]+loads[1] != 100 {
		t.Fatalf("Loads(A) = %v, want sum 100", loads)
	}
	if sim.Injected() != 100 {
		t.Fatalf("Injected() = %d", sim.Injected())
	}

	sim.ResetWindow()
	if sim.Injected() != 0 {
		t.Fatal("Injected not reset")
	}
	if l := sim.Loads("A"); l[0]+l[1] != 0 {
		t.Fatal("loads not reset")
	}
	if tr := sim.FieldsTraffic(); tr.Total() != 0 {
		t.Fatal("traffic not reset")
	}
	if tp := sim.ThroughputPerSec(); tp != 0 {
		t.Fatalf("throughput after reset = %f", tp)
	}
	// Operator state must survive the window reset.
	var total uint64
	for i := 0; i < 2; i++ {
		total += sim.Processor("A", i).(*topology.Counter).TotalCount()
	}
	if total != 100 {
		t.Fatalf("operator state lost on window reset: %d", total)
	}
}

func TestSimInjectAll(t *testing.T) {
	sim := newSim(t, 2, FieldsHash)
	i := 0
	sim.InjectAll(func() (topology.Tuple, bool) {
		if i >= 10 {
			return topology.Tuple{}, false
		}
		i++
		return topology.Tuple{Values: []string{"a", "b"}}, true
	})
	if sim.Injected() != 10 {
		t.Fatalf("Injected() = %d, want 10", sim.Injected())
	}
}

func TestSimTrafficPerEdge(t *testing.T) {
	sim := newSim(t, 2, FieldsHash)
	injectSynthetic(sim, 50, 2, 1.0, 0, 8)
	tr := sim.Traffic("A", "B")
	if tr.Total() != 50 {
		t.Fatalf("edge traffic total = %d, want 50", tr.Total())
	}
	if unknown := sim.Traffic("X", "Y"); unknown.Total() != 0 {
		t.Fatal("unknown edge should report zero traffic")
	}
}

func TestSimChargeSourceHop(t *testing.T) {
	topo, place := paperTopology(t, 2)
	policies, _ := NewPolicies(topo, place, FieldsHash)
	src, _ := NewSourcePolicy(topo, place, topology.Fields, FieldsHash)
	sim, err := NewSim(SimConfig{
		Topology: topo, Placement: place, Model: simnet.Default10G(),
		Policies: policies, SourcePolicy: src, ChargeSourceHop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Inject(topology.Tuple{Values: []string{"a", "b"}, Padding: 10000})
	free := newSim(t, 2, FieldsHash)
	free.Inject(topology.Tuple{Values: []string{"a", "b"}, Padding: 10000})

	chargedBusy, _ := sim.Bottleneck()
	freeBusy, _ := free.Bottleneck()
	if chargedBusy <= freeBusy {
		t.Fatalf("charged source hop busy %.0f <= free %.0f", chargedBusy, freeBusy)
	}
}

func TestFieldsModeString(t *testing.T) {
	if FieldsHash.String() != "hash-based" ||
		FieldsTable.String() != "locality-aware" ||
		FieldsWorstCase.String() != "worst-case" {
		t.Fatal("mode names wrong")
	}
	if FieldsMode(9).String() == "" {
		t.Fatal("unknown mode should still format")
	}
}

func TestNewPoliciesGroupings(t *testing.T) {
	topo, err := topology.NewBuilder("mixed").
		AddOperator(topology.Operator{Name: "A", Parallelism: 2, New: topology.Passthrough}).
		AddOperator(topology.Operator{Name: "B", Parallelism: 2, New: topology.Passthrough}).
		AddOperator(topology.Operator{Name: "C", Parallelism: 2, New: topology.Passthrough}).
		AddOperator(topology.Operator{Name: "D", Parallelism: 2, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(0) }}).
		Connect("A", "B", topology.Shuffle, 0).
		Connect("B", "C", topology.LocalOrShuffle, 0).
		Connect("C", "D", topology.Fields, 0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	place, _ := cluster.NewRoundRobin(topo, 2)
	policies, err := NewPolicies(topo, place, FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := policies[EdgeKey("A", "B")].(*routing.Shuffle); !ok {
		t.Error("A->B should be shuffle")
	}
	if _, ok := policies[EdgeKey("B", "C")].(*routing.LocalOrShuffle); !ok {
		t.Error("B->C should be local-or-shuffle")
	}
	if _, ok := policies[EdgeKey("C", "D")].(*routing.TableFields); !ok {
		t.Error("C->D should be table fields")
	}

	if _, err := NewPolicies(topo, place, FieldsMode(99)); err == nil {
		t.Error("invalid mode accepted")
	}
}
