package engine

import (
	"runtime"
	"testing"
	"time"

	"github.com/locastream/locastream/internal/topology"
)

// TestStopReleasesGoroutines starts and stops several engines (with and
// without TCP transport) and verifies the goroutine count returns to the
// baseline — every executor, transport reader and acceptor must exit.
func TestStopReleasesGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		for _, tcp := range []bool{false, true} {
			topo, place := paperTopology(t, 3)
			policies, _ := NewPolicies(topo, place, FieldsHash)
			src, _ := NewSourcePolicy(topo, place, topology.Fields, FieldsHash)
			live, err := NewLive(LiveConfig{
				Topology: topo, Placement: place, Policies: policies,
				SourcePolicy: src, SketchCapacity: 64, TCPTransport: tcp,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				_ = live.Inject(topology.Tuple{Values: []string{"a", "b"}})
			}
			live.Stop()
		}
	}

	// Allow exiting goroutines to be reaped.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
