package engine

import (
	"fmt"
	"sort"

	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/topology"
)

// This file is the engine side of hot-key splitting (Partial Key
// Grouping, Nasir et al.): a promoted key routes 2-of-d-choices over a
// small replica set instead of to its single table owner, each replica
// accumulates a partial state, and demotion (or failure recovery) folds
// the partials back into the owner with the operator's associative
// combine (topology.Mergeable). Split keys are deliberately NOT moved
// through routing tables: the optimizer pins them at their owner and the
// repair planner keeps them out of the key graph, so neither planned
// reconfiguration nor recovery ever "migrates" half a hot key.

// SplitKeyInfo describes one promoted key: its operator, the key value
// and the replica set (Replicas[0] is the owner holding the
// authoritative state; the others hold partials).
type SplitKeyInfo struct {
	Op       string `json:"op"`
	Key      string `json:"key"`
	Replicas []int  `json:"replicas"`
}

// SplitStats aggregates the hot-key splitting counters.
type SplitStats struct {
	// Keys is the number of currently split keys.
	Keys int `json:"keys"`
	// Routed counts tuples routed through split entries (cumulative).
	Routed uint64 `json:"routed"`
	// Promotions / Demotions count split-set transitions (cumulative).
	Promotions uint64 `json:"promotions"`
	Demotions  uint64 `json:"demotions"`
	// MergesSent / MergesApplied count partial-state merge records
	// produced by demoted replicas and folded by owners.
	MergesSent    uint64 `json:"merges_sent"`
	MergesApplied uint64 `json:"merges_applied"`
	// MergeBacklog is MergesSent - MergesApplied: merge records still
	// queued at owners.
	MergeBacklog int64 `json:"merge_backlog"`
	// MaxReplicaSkew is the worst instantaneous queue-depth ratio
	// (max+1)/(min+1) across any split key's replica set — 1.0 means the
	// 2-choice step is keeping replicas level; 0 when nothing is split.
	MaxReplicaSkew float64 `json:"max_replica_skew"`
}

// CanSplit reports whether op's keys are eligible for splitting: the
// engine has splitting enabled, op has at least two instances, and its
// processor declares an associative combine.
func (l *Live) CanSplit(op string) bool {
	insts := l.execs[op]
	return l.cfg.KeySplitting && len(insts) >= 2 && insts[0].mergeable != nil
}

// Parallelism returns the number of instances of op (0 when unknown).
func (l *Live) Parallelism(op string) int { return len(l.execs[op]) }

// PromoteSplit promotes (op, key) to split routing over d replicas
// (raised to 2). The replica set starts at the key's current owner and
// adds instances hosted on distinct alive servers, so the split actually
// spreads load across machines. The new replicas start from empty
// partials — associativity makes that correct — so no state moves.
// Returns the installed replica set.
func (l *Live) PromoteSplit(op, key string, d int) ([]int, error) {
	if !l.cfg.KeySplitting {
		return nil, fmt.Errorf("engine: key splitting disabled")
	}
	if !l.CanSplit(op) {
		return nil, fmt.Errorf("engine: operator %q cannot split keys (needs >= 2 instances and a Mergeable processor)", op)
	}
	if d < 2 {
		d = 2
	}
	owner, ok := l.OwnerOf(op, key)
	if !ok {
		return nil, fmt.Errorf("engine: operator %q has no fields-grouped input", op)
	}
	l.splitMu.Lock()
	defer l.splitMu.Unlock()
	if _, already := l.splits[op][key]; already {
		return nil, fmt.Errorf("engine: %s/%q is already split", op, key)
	}
	replicas := l.chooseReplicas(op, owner, d)
	if len(replicas) < 2 {
		return nil, fmt.Errorf("engine: no alive replica on a distinct server for %s/%q", op, key)
	}
	// Clear any tombstone left by a previous demotion of the same key
	// BEFORE installing split routing: a tombstoned replica would bounce
	// every routed tuple back to the owner, silently disabling the split.
	var acks []chan struct{}
	for _, r := range replicas[1:] {
		ack := make(chan struct{}, 1)
		if l.execs[op][r].box.put(message{kind: msgSplit, splitCmd: splitCmdArm, migKey: key, ack: ack}) {
			acks = append(acks, ack)
		}
	}
	for _, ack := range acks {
		<-ack
	}
	l.forEachFieldsPolicy(op, func(tf *routing.TableFields) { tf.SetSplit(key, replicas) })
	if l.splits[op] == nil {
		l.splits[op] = make(map[string][]int)
	}
	l.splits[op][key] = replicas
	l.splitPromotions.Add(1)
	return append([]int(nil), replicas...), nil
}

// chooseReplicas builds a replica set of up to d instances for op:
// the owner first, then instances on distinct usable (alive and
// active) servers (scanning forward from the owner so the choice is
// deterministic).
func (l *Live) chooseReplicas(op string, owner, d int) []int {
	insts := l.execs[op]
	n := len(insts)
	if owner < 0 || owner >= n {
		return nil
	}
	replicas := []int{owner}
	used := map[int]bool{l.place.ServerOf(op, owner): true}
	for off := 1; off < n && len(replicas) < d; off++ {
		cand := (owner + off) % n
		s := l.place.ServerOf(op, cand)
		if used[s] || !l.ServerUsable(s) {
			continue
		}
		used[s] = true
		replicas = append(replicas, cand)
	}
	return replicas
}

// DemoteSplit demotes (op, key) back to single-owner routing: the split
// entry is removed first (new tuples route to the owner via the table),
// then every non-owner replica snapshots and deletes its partial,
// installs a forwarding tombstone for late in-flight tuples, and sends
// the partial to the owner as a merge record. DemoteSplit returns only
// after the owner has folded every partial, so a caller observing the
// return sees fully merged single-owner state.
func (l *Live) DemoteSplit(op, key string) error {
	l.splitMu.Lock()
	replicas, ok := l.splits[op][key]
	if !ok {
		l.splitMu.Unlock()
		return fmt.Errorf("engine: %s/%q is not split", op, key)
	}
	delete(l.splits[op], key)
	l.forEachFieldsPolicy(op, func(tf *routing.TableFields) { tf.RemoveSplit(key) })
	l.splitMu.Unlock()

	owner := replicas[0]
	var acks []chan struct{}
	for _, r := range replicas[1:] {
		ack := make(chan struct{}, 1)
		if l.execs[op][r].box.put(message{
			kind: msgSplit, splitCmd: splitCmdDemote, migKey: key, splitOwner: int32(owner), ack: ack,
		}) {
			acks = append(acks, ack)
		}
	}
	for _, ack := range acks {
		<-ack
	}
	// Every replica acked after its demote ran, and the demote enqueued
	// the merge record into the owner's FIFO mailbox directly; a barrier
	// behind them therefore runs after every fold.
	done := make(chan struct{})
	if l.execs[op][owner].box.put(message{kind: msgInspect, inspectFn: func(topology.Processor) {
		close(done)
	}}) {
		<-done
	}
	l.splitDemotions.Add(1)
	return nil
}

// sendMerge delivers one split-key partial to the owner instance. Merge
// records never take the wire (the frame encoding has no merge flag and
// the ordering argument of DemoteSplit needs the synchronous enqueue).
func (l *Live) sendMerge(op string, owner int, key string, data []byte) {
	l.mergesSent.Add(1)
	if !l.execs[op][owner].box.put(message{
		kind: msgMigrate, migKey: key, migData: data, migHasData: true, migMerge: true,
	}) {
		// The owner died mid-demotion; its live state is gone with it and
		// the checkpointed partials are the recovery path. Settle the
		// backlog gauge so it does not leak forever.
		l.mergesApplied.Add(1)
	}
}

// SplitSnapshot lists the currently split keys, sorted by operator then
// key.
func (l *Live) SplitSnapshot() []SplitKeyInfo {
	if l.splits == nil {
		return nil
	}
	l.splitMu.Lock()
	out := make([]SplitKeyInfo, 0, 8)
	for op, keys := range l.splits {
		for key, replicas := range keys {
			out = append(out, SplitKeyInfo{Op: op, Key: key, Replicas: append([]int(nil), replicas...)})
		}
	}
	l.splitMu.Unlock()
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// PruneSplitReplicas drops dead instances from every split set after a
// failure: a set that keeps >= 2 alive replicas shrinks in place (first
// alive replica becomes the owner — the same choice PlanRepair makes);
// a set reduced to fewer than 2 is dissolved back to single-owner
// routing. Callers run it after new tables are installed so the
// dissolved keys already route to their repaired owner.
func (l *Live) PruneSplitReplicas() {
	if l.splits == nil {
		return
	}
	l.splitMu.Lock()
	defer l.splitMu.Unlock()
	for op, keys := range l.splits {
		for key, replicas := range keys {
			alive := make([]int, 0, len(replicas))
			for _, r := range replicas {
				if l.ServerUsable(l.place.ServerOf(op, r)) {
					alive = append(alive, r)
				}
			}
			if len(alive) == len(replicas) {
				continue
			}
			k := key
			if len(alive) >= 2 {
				keys[key] = alive
				l.forEachFieldsPolicy(op, func(tf *routing.TableFields) { tf.SetSplit(k, alive) })
			} else {
				delete(keys, key)
				l.forEachFieldsPolicy(op, func(tf *routing.TableFields) { tf.RemoveSplit(k) })
				l.splitDemotions.Add(1)
			}
		}
	}
}

// forEachFieldsPolicy applies fn to every table-based policy that routes
// tuples into op: each fields-grouped in-edge's shared policy object,
// plus the source policy when op is the externally fed source. Policy
// objects are shared across sender instances, so one update covers every
// sender atomically.
func (l *Live) forEachFieldsPolicy(op string, fn func(*routing.TableFields)) {
	if op == l.topo.Source() &&
		(l.cfg.SourceGrouping == 0 || l.cfg.SourceGrouping == topology.Fields) {
		if tf, ok := l.cfg.SourcePolicy.(*routing.TableFields); ok {
			fn(tf)
		}
	}
	for _, e := range l.topo.InEdges(op) {
		if e.Grouping != topology.Fields {
			continue
		}
		if tf, ok := l.cfg.Policies[EdgeKey(e.From, e.To)].(*routing.TableFields); ok {
			fn(tf)
		}
	}
}

// installLoadProbes wires every table-based fields policy to the queue
// depths of its recipient instances, the load signal of the 2-choice
// routing step. Called once from NewLive when KeySplitting is on.
func (l *Live) installLoadProbes() {
	probeFor := func(op string) func(int) int64 {
		insts := l.execs[op]
		return func(inst int) int64 {
			if inst < 0 || inst >= len(insts) {
				return 0
			}
			return insts[inst].box.queueDepth()
		}
	}
	for _, op := range l.topo.Order() {
		op := op
		l.forEachFieldsPolicy(op, func(tf *routing.TableFields) {
			tf.SetLoadProbe(probeFor(op))
		})
	}
}

// annotateSplitRecords marks checkpoint records of currently split keys:
// the record becomes a per-replica partial carrying the replica set, so
// the store keeps one record per replica instead of collapsing them.
func (l *Live) annotateSplitRecords(recs []KeyState) {
	if l.splits == nil {
		return
	}
	l.splitMu.Lock()
	defer l.splitMu.Unlock()
	for i := range recs {
		if replicas, ok := l.splits[recs[i].Op][recs[i].Key]; ok {
			recs[i].Split = true
			recs[i].Replicas = append([]int(nil), replicas...)
		}
	}
}

// SplitStatsSnapshot aggregates the splitting counters (cheap; atomics
// and one pass over the split sets).
func (l *Live) SplitStatsSnapshot() SplitStats {
	st := SplitStats{
		Promotions:    l.splitPromotions.Load(),
		Demotions:     l.splitDemotions.Load(),
		MergesSent:    l.mergesSent.Load(),
		MergesApplied: l.mergesApplied.Load(),
	}
	st.MergeBacklog = int64(st.MergesSent) - int64(st.MergesApplied)
	if tf, ok := l.cfg.SourcePolicy.(*routing.TableFields); ok {
		st.Routed += tf.SplitRouted()
	}
	for _, p := range l.cfg.Policies {
		if tf, ok := p.(*routing.TableFields); ok {
			st.Routed += tf.SplitRouted()
		}
	}
	if l.splits == nil {
		return st
	}
	l.splitMu.Lock()
	for op, keys := range l.splits {
		insts := l.execs[op]
		for _, replicas := range keys {
			st.Keys++
			minD, maxD := int64(-1), int64(0)
			for _, r := range replicas {
				if r < 0 || r >= len(insts) {
					continue
				}
				d := insts[r].box.queueDepth()
				if minD < 0 || d < minD {
					minD = d
				}
				if d > maxD {
					maxD = d
				}
			}
			if minD >= 0 {
				if skew := float64(maxD+1) / float64(minD+1); skew > st.MaxReplicaSkew {
					st.MaxReplicaSkew = skew
				}
			}
		}
	}
	l.splitMu.Unlock()
	return st
}
