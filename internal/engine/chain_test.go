package engine

import (
	"strconv"
	"testing"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/topology"
)

// chainTopology builds a three-operator stateful chain A -> B -> C with
// fields grouping on every hop (field 0, 1, 2 respectively).
func chainTopology(t testing.TB, parallelism int) (*topology.Topology, *cluster.Placement) {
	t.Helper()
	topo, err := topology.NewBuilder("chain3").
		AddOperator(topology.Operator{Name: "A", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(0) }}).
		AddOperator(topology.Operator{Name: "B", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(1) }}).
		AddOperator(topology.Operator{Name: "C", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(2) }}).
		Connect("A", "B", topology.Fields, 1).
		Connect("B", "C", topology.Fields, 2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	place, err := cluster.NewRoundRobin(topo, parallelism)
	if err != nil {
		t.Fatal(err)
	}
	return topo, place
}

func newChainLive(t testing.TB, parallelism int) *Live {
	t.Helper()
	topo, place := chainTopology(t, parallelism)
	policies, err := NewPolicies(topo, place, FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSourcePolicy(topo, place, topology.Fields, FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	live, err := NewLive(LiveConfig{
		Topology:       topo,
		Placement:      place,
		Policies:       policies,
		SourcePolicy:   src,
		SourceKeyField: 0,
		SketchCapacity: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(live.Stop)
	return live
}

func TestChainPairStatsBothHops(t *testing.T) {
	live := newChainLive(t, 2)
	for i := 0; i < 100; i++ {
		_ = live.Inject(topology.Tuple{Values: []string{"a1", "b1", "c1"}})
	}
	live.Drain()
	stats := live.CollectPairStats()
	if len(stats) != 2 {
		t.Fatalf("stats bundles = %d, want 2 (A->B and B->C)", len(stats))
	}
	if stats[0].FromOp != "A" || stats[0].ToOp != "B" {
		t.Fatalf("stats[0] = %s->%s", stats[0].FromOp, stats[0].ToOp)
	}
	if stats[1].FromOp != "B" || stats[1].ToOp != "C" {
		t.Fatalf("stats[1] = %s->%s", stats[1].FromOp, stats[1].ToOp)
	}
	if stats[0].Pairs[0].Count != 100 || stats[1].Pairs[0].Count != 100 {
		t.Fatalf("pair counts = %d/%d", stats[0].Pairs[0].Count, stats[1].Pairs[0].Count)
	}
}

func TestChainReconfigureAllThreeOperators(t *testing.T) {
	const parallelism = 3
	live := newChainLive(t, parallelism)

	inject := func(n int) {
		for i := 0; i < n; i++ {
			k := strconv.Itoa(i % 9)
			_ = live.Inject(topology.Tuple{Values: []string{"a" + k, "b" + k, "c" + k}})
		}
		live.Drain()
	}
	inject(900)

	// Move every key of every operator to instance (i+1) mod p.
	tables := map[string]*routing.Table{}
	moves := map[string][]KeyMove{}
	for opIdx, op := range []string{"A", "B", "C"} {
		prefix := []string{"a", "b", "c"}[opIdx]
		assign := map[string]int{}
		for i := 0; i < 9; i++ {
			key := prefix + strconv.Itoa(i)
			to := (routing.SaltedHashKey(op, key, parallelism) + 1) % parallelism
			assign[key] = to
			moves[op] = append(moves[op], KeyMove{
				Key:  key,
				From: routing.SaltedHashKey(op, key, parallelism),
				To:   to,
			})
		}
		tables[op] = &routing.Table{Version: 1, Assign: assign}
	}
	if err := live.Reconfigure(ReconfigPlan{Tables: tables, Moves: moves}); err != nil {
		t.Fatal(err)
	}

	// All three operators keep exact totals across migration.
	for _, op := range []string{"A", "B", "C"} {
		var total uint64
		for i := 0; i < parallelism; i++ {
			_ = live.ProcessorState(op, i, func(p topology.Processor) {
				total += p.(*topology.Counter).TotalCount()
			})
		}
		if total != 900 {
			t.Fatalf("%s total = %d, want 900", op, total)
		}
	}

	// Post-reconfiguration, each key lives exactly where its table says.
	inject(900)
	for opIdx, op := range []string{"A", "B", "C"} {
		prefix := []string{"a", "b", "c"}[opIdx]
		for i := 0; i < 9; i++ {
			key := prefix + strconv.Itoa(i)
			inst := tables[op].Assign[key]
			var cnt uint64
			_ = live.ProcessorState(op, inst, func(p topology.Processor) {
				cnt = p.(*topology.Counter).Count(key)
			})
			if cnt != 200 {
				t.Errorf("%s[%d].Count(%s) = %d, want 200", op, inst, key, cnt)
			}
		}
	}
}

func TestDiamondPropagationOrder(t *testing.T) {
	// A feeds B and C (stateless), which both feed stateful D. D must
	// wait for propagates from every instance of both B and C before
	// migrating — exercised here simply by the reconfiguration
	// completing and preserving state.
	const parallelism = 2
	topo, err := topology.NewBuilder("diamond").
		AddOperator(topology.Operator{Name: "A", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(0) }}).
		AddOperator(topology.Operator{Name: "B", Parallelism: parallelism,
			New: topology.Passthrough}).
		AddOperator(topology.Operator{Name: "C", Parallelism: parallelism,
			New: topology.Passthrough}).
		AddOperator(topology.Operator{Name: "D", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(1) }}).
		Connect("A", "B", topology.LocalOrShuffle, 0).
		Connect("A", "C", topology.LocalOrShuffle, 0).
		Connect("B", "D", topology.Fields, 1).
		Connect("C", "D", topology.Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	place, err := cluster.NewRoundRobin(topo, parallelism)
	if err != nil {
		t.Fatal(err)
	}
	policies, err := NewPolicies(topo, place, FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSourcePolicy(topo, place, topology.Fields, FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	live, err := NewLive(LiveConfig{
		Topology: topo, Placement: place, Policies: policies,
		SourcePolicy: src, SketchCapacity: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Stop()

	const n = 400
	for i := 0; i < n; i++ {
		k := strconv.Itoa(i % 4)
		_ = live.Inject(topology.Tuple{Values: []string{"a" + k, "d" + k}})
	}
	live.Drain()

	// Each injected tuple reaches D twice (via B and via C).
	moves := map[string][]KeyMove{}
	assign := map[string]int{}
	for i := 0; i < 4; i++ {
		key := "d" + strconv.Itoa(i)
		from := routing.SaltedHashKey("D", key, parallelism)
		assign[key] = (from + 1) % parallelism
		moves["D"] = append(moves["D"], KeyMove{Key: key, From: from, To: (from + 1) % parallelism})
	}
	if err := live.Reconfigure(ReconfigPlan{
		Tables: map[string]*routing.Table{"D": {Version: 1, Assign: assign}},
		Moves:  moves,
	}); err != nil {
		t.Fatal(err)
	}

	var total uint64
	for i := 0; i < parallelism; i++ {
		_ = live.ProcessorState("D", i, func(p topology.Processor) {
			total += p.(*topology.Counter).TotalCount()
		})
	}
	if total != 2*n {
		t.Fatalf("D total = %d, want %d (each tuple arrives via B and C)", total, 2*n)
	}
	for i := 0; i < 4; i++ {
		key := "d" + strconv.Itoa(i)
		var cnt uint64
		_ = live.ProcessorState("D", assign[key], func(p topology.Processor) {
			cnt = p.(*topology.Counter).Count(key)
		})
		if cnt != 2*n/4 {
			t.Errorf("D[%d].Count(%s) = %d, want %d", assign[key], key, cnt, 2*n/4)
		}
	}
}

func TestChainSimOptimizerEndToEnd(t *testing.T) {
	// The merged key graph must co-locate triples (a_k, b_k, c_k) across
	// the whole chain, driving both hops local.
	const parallelism = 4
	topo, place := chainTopology(t, parallelism)
	policies, err := NewPolicies(topo, place, FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSourcePolicy(topo, place, topology.Fields, FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(SimConfig{
		Topology: topo, Placement: place, Policies: policies,
		SourcePolicy: src, SketchCapacity: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	inject := func() {
		for i := 0; i < 4000; i++ {
			k := strconv.Itoa(i % 16)
			sim.Inject(topology.Tuple{Values: []string{"a" + k, "b" + k, "c" + k}})
		}
	}
	inject()
	stats := sim.PairStats(true)
	if len(stats) != 2 {
		t.Fatalf("stats = %d bundles, want 2", len(stats))
	}
	// Both bundles feed a single partition via the optimizer path; here
	// we verify through the sim-facing helper used by experiments: build
	// tables via core? core depends on engine; avoid the import cycle by
	// asserting on the statistics structure instead. The full end-to-end
	// chain optimization is covered in core's tests.
	for _, st := range stats {
		if len(st.Pairs) != 16 {
			t.Fatalf("%s->%s: %d pairs, want 16", st.FromOp, st.ToOp, len(st.Pairs))
		}
	}
}
