package engine

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/topology"
	"github.com/locastream/locastream/internal/transport"
)

func newTCPLive(t testing.TB, parallelism int, mode FieldsMode) *Live {
	t.Helper()
	topo, place := paperTopology(t, parallelism)
	policies, err := NewPolicies(topo, place, mode)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSourcePolicy(topo, place, topology.Fields, mode)
	if err != nil {
		t.Fatal(err)
	}
	live, err := NewLive(LiveConfig{
		Topology:       topo,
		Placement:      place,
		Policies:       policies,
		SourcePolicy:   src,
		SourceKeyField: 0,
		SketchCapacity: 1024,
		TCPTransport:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(live.Stop)
	return live
}

func TestTCPLiveProcessesAllTuples(t *testing.T) {
	const n = 2000
	live := newTCPLive(t, 3, FieldsHash)
	for i := 0; i < n; i++ {
		if err := live.Inject(topology.Tuple{Values: []string{
			fmt.Sprintf("a%d", i%20),
			fmt.Sprintf("b%d", i%20),
		}, Padding: 256}); err != nil {
			t.Fatal(err)
		}
	}
	live.Drain()
	if got := liveTotalCount(t, live, "A", 3); got != n {
		t.Fatalf("A counted %d, want %d", got, n)
	}
	if got := liveTotalCount(t, live, "B", 3); got != n {
		t.Fatalf("B counted %d, want %d", got, n)
	}
	// With hash routing on 3 servers most transfers cross the (real) TCP
	// transport; totals prove they arrived intact.
	if tr := live.FieldsTraffic(); tr.RemoteTuples == 0 {
		t.Fatal("no remote traffic recorded; transport untested")
	}
	assertNoWireDrops(t, live)
}

// assertNoWireDrops fails the test when any transport message was
// silently discarded: a healthy pipeline must deliver every message.
func assertNoWireDrops(t *testing.T, live *Live) {
	t.Helper()
	if n := live.StatsSnapshot().WireDrops; n != 0 {
		t.Fatalf("WireDrops = %d, want 0 (transport silently discarded messages)", n)
	}
}

func TestTCPLiveReconfigureMigratesState(t *testing.T) {
	const parallelism = 3
	live := newTCPLive(t, parallelism, FieldsTable)

	for i := 0; i < 600; i++ {
		k := strconv.Itoa(i % 6)
		_ = live.Inject(topology.Tuple{Values: []string{k, k + "'"}})
	}
	live.Drain()

	// Move every key: state crosses the wire.
	tables := map[string]*routing.Table{}
	moves := map[string][]KeyMove{}
	for _, spec := range []struct{ op, suffix string }{{"A", ""}, {"B", "'"}} {
		assign := map[string]int{}
		for i := 0; i < 6; i++ {
			key := strconv.Itoa(i) + spec.suffix
			from := routing.SaltedHashKey(spec.op, key, parallelism)
			to := (from + 1) % parallelism
			assign[key] = to
			moves[spec.op] = append(moves[spec.op], KeyMove{Key: key, From: from, To: to})
		}
		tables[spec.op] = &routing.Table{Version: 1, Assign: assign}
	}
	if err := live.Reconfigure(ReconfigPlan{Tables: tables, Moves: moves}); err != nil {
		t.Fatal(err)
	}

	if got := liveTotalCount(t, live, "B", parallelism); got != 600 {
		t.Fatalf("B total after TCP migration = %d, want 600", got)
	}
	for i := 0; i < 6; i++ {
		key := strconv.Itoa(i)
		inst := tables["A"].Assign[key]
		var cnt uint64
		_ = live.ProcessorState("A", inst, func(p topology.Processor) {
			cnt = p.(*topology.Counter).Count(key)
		})
		if cnt != 100 {
			t.Errorf("A[%d].Count(%s) = %d, want 100", inst, key, cnt)
		}
	}
	assertNoWireDrops(t, live)
}

func TestTCPLiveReconfigureUnderTraffic(t *testing.T) {
	const parallelism = 3
	const total = 1500
	live := newTCPLive(t, parallelism, FieldsTable)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			k := strconv.Itoa(i % 9)
			_ = live.Inject(topology.Tuple{Values: []string{k, k + "'"}})
		}
	}()

	assign := map[string]int{}
	moves := map[string][]KeyMove{}
	for i := 0; i < 9; i++ {
		k := strconv.Itoa(i)
		from := routing.SaltedHashKey("A", k, parallelism)
		to := (from + 1) % parallelism
		assign[k] = to
		moves["A"] = append(moves["A"], KeyMove{Key: k, From: from, To: to})
	}
	if err := live.Reconfigure(ReconfigPlan{
		Tables: map[string]*routing.Table{"A": {Version: 1, Assign: assign}},
		Moves:  moves,
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	live.Drain()

	if got := liveTotalCount(t, live, "A", parallelism); got != total {
		t.Fatalf("A total = %d, want %d (tuples lost over TCP during migration)", got, total)
	}
	assertNoWireDrops(t, live)
}

func TestWireDropsCountCorruptAddresses(t *testing.T) {
	live := newTCPLive(t, 2, FieldsHash)
	// Deliver messages with out-of-range instances and an unknown kind
	// directly, as a corrupted or version-skewed peer would.
	live.deliverWire(transport.Message{To: transport.Addr{Op: "A", Instance: 99}})
	live.deliverWire(transport.Message{To: transport.Addr{Op: "A", Instance: -1}})
	live.deliverWire(transport.Message{To: transport.Addr{Op: "ghost", Instance: 0}})
	live.deliverWire(transport.Message{Kind: transport.Kind(255), To: transport.Addr{Op: "A", Instance: 0}})
	if n := live.WireDrops(); n != 4 {
		t.Fatalf("WireDrops = %d, want 4", n)
	}
	if n := live.StatsSnapshot().WireDrops; n != 4 {
		t.Fatalf("StatsSnapshot().WireDrops = %d, want 4", n)
	}
}
