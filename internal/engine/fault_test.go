package engine

import (
	"strconv"
	"testing"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/topology"
)

// newFaultLive builds the standard two-operator stateful chain used by
// the fault-tolerance tests: src "A" -> "B", fields-grouped, table
// routing, one instance of each operator per server.
func newFaultLive(t testing.TB, servers int, cfgTweak func(*LiveConfig)) *Live {
	t.Helper()
	topo, err := topology.NewBuilder("fault").
		AddOperator(topology.Operator{Name: "A", Parallelism: servers, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(0) }}).
		AddOperator(topology.Operator{Name: "B", Parallelism: servers, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(1) }}).
		Connect("A", "B", topology.Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	place, err := cluster.NewRoundRobin(topo, servers)
	if err != nil {
		t.Fatal(err)
	}
	policies, err := NewPolicies(topo, place, FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSourcePolicy(topo, place, topology.Fields, FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	cfg := LiveConfig{
		Topology: topo, Placement: place, Policies: policies,
		SourcePolicy: src, SketchCapacity: 256,
	}
	if cfgTweak != nil {
		cfgTweak(&cfg)
	}
	live, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(live.Stop)
	return live
}

func injectKeys(t testing.TB, live *Live, n, mod int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := "k" + strconv.Itoa(i%mod)
		_ = live.Inject(topology.Tuple{Values: []string{k, k}})
	}
	live.Drain()
}

func TestCheckpointDirtyIncremental(t *testing.T) {
	live := newFaultLive(t, 2, nil)

	// No traffic yet: nothing dirty.
	if recs := live.CheckpointDirty(); len(recs) != 0 {
		t.Fatalf("clean engine returned %d records", len(recs))
	}

	injectKeys(t, live, 40, 4)
	recs := live.CheckpointDirty()
	// 4 keys dirty on A and 4 on B.
	if len(recs) != 8 {
		t.Fatalf("first checkpoint has %d records, want 8", len(recs))
	}
	seen := map[string]bool{}
	for _, r := range recs {
		seen[r.Op+"/"+r.Key] = true
		if len(r.Data) == 0 {
			t.Fatalf("record %s/%s has empty data", r.Op, r.Key)
		}
	}
	for _, op := range []string{"A", "B"} {
		for i := 0; i < 4; i++ {
			if !seen[op+"/k"+strconv.Itoa(i)] {
				t.Fatalf("missing record for %s/k%d", op, i)
			}
		}
	}

	// Unchanged since the snapshot: incremental checkpoint is empty.
	if recs := live.CheckpointDirty(); len(recs) != 0 {
		t.Fatalf("second checkpoint has %d records, want 0 (all clean)", len(recs))
	}

	// Touch one key: only it reappears (on both stateful ops).
	_ = live.Inject(topology.Tuple{Values: []string{"k1", "k1"}})
	live.Drain()
	recs = live.CheckpointDirty()
	if len(recs) != 2 {
		t.Fatalf("incremental checkpoint has %d records, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Key != "k1" {
			t.Fatalf("incremental checkpoint includes clean key %q", r.Key)
		}
	}
}

// TestCheckpointCleanPathNoAllocs asserts the skipped-clean-key fast
// path: checkpointing an engine with no dirty keys must not allocate.
func TestCheckpointCleanPathNoAllocs(t *testing.T) {
	live := newFaultLive(t, 2, nil)
	injectKeys(t, live, 40, 4)
	live.CheckpointDirty() // consume the dirty set

	allocs := testing.AllocsPerRun(100, func() {
		if recs := live.CheckpointDirty(); recs != nil {
			t.Fatalf("unexpected records on clean engine: %d", len(recs))
		}
	})
	if allocs != 0 {
		t.Fatalf("clean checkpoint allocates %v times per run, want 0", allocs)
	}
}

func TestKillServerAccounting(t *testing.T) {
	const servers = 2
	live := newFaultLive(t, servers, nil)
	injectKeys(t, live, 100, 8)

	if err := live.KillServer(5); err == nil {
		t.Fatal("unknown server accepted")
	}
	if err := live.KillServer(1); err != nil {
		t.Fatal(err)
	}
	if err := live.KillServer(1); err != nil {
		t.Fatal("KillServer not idempotent")
	}
	if live.Ping(1) || !live.Ping(0) {
		t.Fatal("Ping disagrees with kill state")
	}
	alive := live.AliveServers()
	if !alive[0] || alive[1] {
		t.Fatalf("AliveServers = %v", alive)
	}

	// Keep injecting: tuples routed to dead instances are rejected at
	// the source (error) or dropped mid-stream (counted), and Drain must
	// not hang on the lost ones.
	var rejected int
	for i := 0; i < 100; i++ {
		k := "k" + strconv.Itoa(i%8)
		if err := live.Inject(topology.Tuple{Values: []string{k, k}}); err != nil {
			rejected++
		}
	}
	live.Drain()

	st := live.StatsSnapshot()
	if rejected == 0 && st.TuplesLost == 0 {
		t.Fatal("no loss observed despite a dead server receiving traffic")
	}
	if len(st.Alive) != servers || st.Alive[1] {
		t.Fatalf("Stats.Alive = %v", st.Alive)
	}

	// Inspecting a dead instance errors instead of hanging.
	deadInst := -1
	for i := 0; i < servers; i++ {
		if live.Placement().ServerOf("A", i) == 1 {
			deadInst = i
		}
	}
	if err := live.ProcessorState("A", deadInst, func(topology.Processor) {}); err == nil {
		t.Fatal("ProcessorState on dead instance succeeded")
	}
}

// TestRecoverArmRestore exercises the two-phase recovery path in
// isolation: tuples for an armed key buffer, the restore installs
// checkpointed state, and the buffered tuples are processed on top of
// it, in order.
func TestRecoverArmRestore(t *testing.T) {
	const servers = 2
	live := newFaultLive(t, servers, nil)

	// Build state for k0 and checkpoint it.
	for i := 0; i < 7; i++ {
		_ = live.Inject(topology.Tuple{Values: []string{"k0", "k0"}})
	}
	live.Drain()
	recs := live.CheckpointDirty()
	var k0A *KeyState
	for i := range recs {
		if recs[i].Op == "A" && recs[i].Key == "k0" {
			k0A = &recs[i]
		}
	}
	if k0A == nil {
		t.Fatal("no checkpoint record for A/k0")
	}
	oldOwner, ok := live.OwnerOf("A", "k0")
	if !ok {
		t.Fatal("OwnerOf failed for A")
	}
	newOwner := (oldOwner + 1) % servers

	// Phase 1: the new owner arms its buffer for k0.
	if err := live.RecoverArm(map[string]map[int][]string{
		"A": {newOwner: {"k0"}},
	}); err != nil {
		t.Fatal(err)
	}
	// Reroute k0 to the new owner (what recovery's table update does).
	live.UpdateTables(map[string]*routing.Table{
		"A": {Version: 99, Assign: map[string]int{"k0": newOwner}},
	})

	// Tuples injected now reach the new owner and must buffer, not
	// process: the state is not there yet.
	for i := 0; i < 5; i++ {
		_ = live.Inject(topology.Tuple{Values: []string{"k0", "k0"}})
	}
	var cnt uint64
	_ = live.ProcessorState("A", newOwner, func(p topology.Processor) {
		cnt = p.(*topology.Counter).Count("k0")
	})
	if cnt != 0 {
		t.Fatalf("new owner processed %d tuples before restore", cnt)
	}

	// Phase 2: restore from the checkpoint; buffered tuples drain on top.
	rec := *k0A
	rec.Inst = newOwner
	if err := live.RecoverRestore([]KeyState{rec}); err != nil {
		t.Fatal(err)
	}
	live.Drain()
	_ = live.ProcessorState("A", newOwner, func(p topology.Processor) {
		cnt = p.(*topology.Counter).Count("k0")
	})
	if cnt != 12 {
		t.Fatalf("post-restore count = %d, want 7 checkpointed + 5 buffered", cnt)
	}
}

// TestRecoverRestoreWithoutCheckpoint verifies a nil-data record clears
// the pending marker so the key starts fresh instead of buffering
// forever.
func TestRecoverRestoreWithoutCheckpoint(t *testing.T) {
	live := newFaultLive(t, 2, nil)
	owner, _ := live.OwnerOf("A", "kx")
	adopt := (owner + 1) % 2
	if err := live.RecoverArm(map[string]map[int][]string{"A": {adopt: {"kx"}}}); err != nil {
		t.Fatal(err)
	}
	live.UpdateTables(map[string]*routing.Table{
		"A": {Version: 1, Assign: map[string]int{"kx": adopt}},
	})
	for i := 0; i < 3; i++ {
		_ = live.Inject(topology.Tuple{Values: []string{"kx", "kx"}})
	}
	if err := live.RecoverRestore([]KeyState{{Op: "A", Inst: adopt, Key: "kx"}}); err != nil {
		t.Fatal(err)
	}
	live.Drain()
	var cnt uint64
	_ = live.ProcessorState("A", adopt, func(p topology.Processor) {
		cnt = p.(*topology.Counter).Count("kx")
	})
	if cnt != 3 {
		t.Fatalf("count = %d, want 3 (fresh state, buffered tuples drained)", cnt)
	}
}

func TestMaxBufferedBoundsRecoveryBuffer(t *testing.T) {
	live := newFaultLive(t, 2, func(cfg *LiveConfig) { cfg.MaxBuffered = 2 })
	owner, _ := live.OwnerOf("A", "kb")
	adopt := (owner + 1) % 2
	if err := live.RecoverArm(map[string]map[int][]string{"A": {adopt: {"kb"}}}); err != nil {
		t.Fatal(err)
	}
	live.UpdateTables(map[string]*routing.Table{
		"A": {Version: 1, Assign: map[string]int{"kb": adopt}},
	})
	for i := 0; i < 10; i++ {
		_ = live.Inject(topology.Tuple{Values: []string{"kb", "kb"}})
	}
	if err := live.RecoverRestore([]KeyState{{Op: "A", Inst: adopt, Key: "kb"}}); err != nil {
		t.Fatal(err)
	}
	live.Drain()
	var cnt uint64
	_ = live.ProcessorState("A", adopt, func(p topology.Processor) {
		cnt = p.(*topology.Counter).Count("kb")
	})
	if cnt != 2 {
		t.Fatalf("count = %d, want 2 (buffer bound)", cnt)
	}
	if lost := live.TuplesLost(); lost != 8 {
		t.Fatalf("TuplesLost = %d, want 8 overflow drops", lost)
	}
}

// TestSetAliveReroutesHashFallback verifies keys without a table entry
// detour around dead instances deterministically.
func TestSetAliveReroutesHashFallback(t *testing.T) {
	tf := routing.NewTableFields(4, "X")
	key := "somekey"
	orig := tf.Route(key, -1, 0)
	alive := []bool{true, true, true, true}
	alive[orig] = false
	tf.SetAlive(alive)
	got := tf.Route(key, -1, 0)
	if got == orig {
		t.Fatal("Route returned a dead instance")
	}
	if want := (orig + 1) % 4; got != want {
		t.Fatalf("Route = %d, want first alive successor %d", got, want)
	}
	// Clearing the mask restores the original routing.
	tf.SetAlive(nil)
	if tf.Route(key, -1, 0) != orig {
		t.Fatal("nil mask did not restore routing")
	}
}

// BenchmarkCheckpointClean measures the clean-path cost of a checkpoint
// tick against a warm engine: all keys clean, so the call must only
// read one atomic per executor.
func BenchmarkCheckpointClean(b *testing.B) {
	live := newFaultLive(b, 4, nil)
	for i := 0; i < 1000; i++ {
		k := "k" + strconv.Itoa(i%32)
		_ = live.Inject(topology.Tuple{Values: []string{k, k}})
	}
	live.Drain()
	live.CheckpointDirty()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if recs := live.CheckpointDirty(); recs != nil {
			b.Fatal("engine not clean")
		}
	}
}

// BenchmarkCheckpointDirty measures the incremental-checkpoint cost
// when work actually happened since the last tick: each iteration
// injects one tuple (dirtying one key on its home executor) and then
// snapshots, so the measured cost is one dirty-key snapshot plus the
// clean-scan of every other executor. The CI bench gate tracks this
// alongside the wire and hot-path numbers in BENCH_4.json.
func BenchmarkCheckpointDirty(b *testing.B) {
	live := newFaultLive(b, 4, nil)
	for i := 0; i < 1000; i++ {
		k := "k" + strconv.Itoa(i%32)
		_ = live.Inject(topology.Tuple{Values: []string{k, k}})
	}
	live.Drain()
	live.CheckpointDirty()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := "k" + strconv.Itoa(i%32)
		_ = live.Inject(topology.Tuple{Values: []string{k, k}})
		live.Drain()
		if recs := live.CheckpointDirty(); len(recs) == 0 {
			b.Fatal("expected a dirty key to snapshot")
		}
	}
}

// BenchmarkInjectWithCheckpointing measures hot-path throughput with
// periodic checkpoints, to compare against the no-checkpoint baseline:
// the per-tuple overhead is one map lookup (dirty tracking), and the
// periodic CheckpointDirty call snapshots only dirty keys.
func BenchmarkInjectWithCheckpointing(b *testing.B) {
	for _, interval := range []int{0, 10000} {
		name := "off"
		if interval > 0 {
			name = "every" + strconv.Itoa(interval)
		}
		b.Run(name, func(b *testing.B) {
			live := newFaultLive(b, 4, func(cfg *LiveConfig) { cfg.MaxInFlight = 4096 })
			keys := make([]string, 64)
			for i := range keys {
				keys[i] = "k" + strconv.Itoa(i)
			}
			// Warm up routes and state.
			for _, k := range keys {
				_ = live.Inject(topology.Tuple{Values: []string{k, k}})
			}
			live.Drain()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[i&63]
				_ = live.Inject(topology.Tuple{Values: []string{k, k}})
				if interval > 0 && i%interval == interval-1 {
					live.CheckpointDirty()
				}
			}
			live.Drain()
		})
	}
}
