// Package engine executes topologies in two complementary modes.
//
// The simulation mode (Sim) replays tuples through the real routing
// policies, processors and statistics sketches while charging costs to a
// calibrated resource model (internal/simnet); it reproduces the paper's
// saturation-throughput experiments deterministically and in milliseconds
// instead of 30-minute cluster runs.
//
// The live mode (Live) runs one goroutine per operator instance with real
// message passing and executes the online reconfiguration protocol of
// §3.4 (Algorithm 1) — DAG-ordered propagation, state migration and
// buffering — under genuine concurrency.
package engine

import (
	"fmt"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/spacesaving"
	"github.com/locastream/locastream/internal/topology"
)

// EdgeKey names a topology edge for policy and metric maps.
func EdgeKey(from, to string) string { return from + "->" + to }

// FieldsMode selects the concrete policy used for fields-grouped edges.
type FieldsMode int

const (
	// FieldsHash is Storm's default: hash of the key (§2.2).
	FieldsHash FieldsMode = iota + 1
	// FieldsTable uses explicit routing tables with hash fallback, the
	// paper's locality-aware approach (§3.3).
	FieldsTable
	// FieldsWorstCase always crosses the network (§4.2's lower bound).
	FieldsWorstCase
)

// String names the mode as in the paper's figure legends.
func (m FieldsMode) String() string {
	switch m {
	case FieldsHash:
		return "hash-based"
	case FieldsTable:
		return "locality-aware"
	case FieldsWorstCase:
		return "worst-case"
	default:
		return fmt.Sprintf("FieldsMode(%d)", int(m))
	}
}

// NewPolicies builds one routing policy per topology edge. Fields edges
// use the given mode; shuffle and local-or-shuffle edges always use their
// standard policies.
func NewPolicies(t *topology.Topology, place *cluster.Placement, mode FieldsMode) (map[string]routing.Policy, error) {
	out := make(map[string]routing.Policy, len(t.Edges()))
	for _, e := range t.Edges() {
		p, err := policyFor(e.Grouping, e.To, place, mode)
		if err != nil {
			return nil, fmt.Errorf("edge %s: %w", EdgeKey(e.From, e.To), err)
		}
		out[EdgeKey(e.From, e.To)] = p
	}
	return out, nil
}

// NewSourcePolicy builds the policy for the implicit edge from the
// external source to the topology's source operator, using the given
// grouping.
func NewSourcePolicy(t *topology.Topology, place *cluster.Placement, g topology.Grouping, mode FieldsMode) (routing.Policy, error) {
	return policyFor(g, t.Source(), place, mode)
}

func policyFor(g topology.Grouping, to string, place *cluster.Placement, mode FieldsMode) (routing.Policy, error) {
	n := place.Parallelism(to)
	if n < 1 {
		return nil, fmt.Errorf("engine: operator %q has no placement", to)
	}
	switch g {
	case topology.Shuffle:
		return routing.NewShuffle(n), nil
	case topology.LocalOrShuffle:
		return routing.NewLocalOrShuffle(place.ServersOf(to), place.Servers()), nil
	case topology.Fields:
		switch mode {
		case FieldsHash:
			return routing.NewHashFields(n, to), nil
		case FieldsTable:
			return routing.NewTableFields(n, to), nil
		case FieldsWorstCase:
			return routing.NewWorstCase(place.ServersOf(to), place.Servers(), to), nil
		default:
			return nil, fmt.Errorf("engine: unknown fields mode %d", mode)
		}
	default:
		return nil, fmt.Errorf("engine: unknown grouping %v", g)
	}
}

// PairStat is the statistics bundle one operator pair contributes to the
// optimizer: the most frequent (key into FromOp, key into ToOp)
// associations observed since the last collection.
type PairStat struct {
	// FromOp is the operator whose input key is the pair's first
	// element.
	FromOp string
	// ToOp is the downstream operator whose routing key is the second
	// element.
	ToOp string
	// Pairs are the SpaceSaving counters, heaviest first.
	Pairs []spacesaving.PairCounter
}
