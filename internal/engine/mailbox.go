package engine

import "sync"

// mailbox is an unbounded FIFO queue feeding one executor goroutine.
//
// Unlike a bounded channel, an unbounded mailbox cannot deadlock when
// sibling instances exchange MIGRATE messages while their queues are full
// of data (the classic distributed-cycle hazard of the reconfiguration
// protocol). Storm's executors similarly rely on queues with very large
// effective capacity; callers that need flow control bound the number of
// in-flight tuples at the source instead (see Live.MaxInFlight).
type mailbox struct {
	mu     sync.Mutex
	nonEmp *sync.Cond
	items  []message
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.nonEmp = sync.NewCond(&m.mu)
	return m
}

// put enqueues a message. Messages put after close are dropped.
func (m *mailbox) put(msg message) {
	m.mu.Lock()
	if !m.closed {
		m.items = append(m.items, msg)
		m.nonEmp.Signal()
	}
	m.mu.Unlock()
}

// get blocks until a message is available or the mailbox is closed
// (ok == false).
func (m *mailbox) get() (message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed {
		m.nonEmp.Wait()
	}
	if len(m.items) == 0 {
		return message{}, false
	}
	msg := m.items[0]
	// Avoid retaining tuple payloads in the backing array.
	m.items[0] = message{}
	m.items = m.items[1:]
	if len(m.items) == 0 {
		m.items = nil // release the backing array
	}
	return msg, true
}

// close wakes the executor and makes it exit once the queue drains.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.nonEmp.Broadcast()
	m.mu.Unlock()
}

// len reports the current queue length.
func (m *mailbox) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}
