package engine

import (
	"sync"
	"sync/atomic"
)

// mailbox is an unbounded FIFO queue feeding one executor goroutine.
//
// Unlike a bounded channel, an unbounded mailbox cannot deadlock when
// sibling instances exchange MIGRATE messages while their queues are full
// of data (the classic distributed-cycle hazard of the reconfiguration
// protocol). Storm's executors similarly rely on queues with very large
// effective capacity; callers that need flow control bound the number of
// in-flight tuples at the source instead (see Live.MaxInFlight).
//
// Consumers drain in batches: getBatch hands the whole queued slice to
// the executor and installs a recycled buffer for producers to append to,
// so the executor takes one lock per burst of messages instead of one per
// message, and the two backing arrays are reused indefinitely (no
// steady-state allocation).
type mailbox struct {
	mu     sync.Mutex
	nonEmp *sync.Cond
	items  []message
	closed bool

	// trackDepth (set once before the executor starts, only when hot-key
	// splitting is enabled) maintains depth: the number of enqueued but
	// not-yet-processed messages, read lock-free by the 2-choice routing
	// step. The unsplit configuration never touches the counter, so the
	// plain hot path pays nothing.
	trackDepth bool
	depth      atomic.Int64
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.nonEmp = sync.NewCond(&m.mu)
	return m
}

// put enqueues a message and reports whether it was accepted; messages
// put after close are dropped and reported as rejected so callers can
// roll back any accounting tied to the message.
func (m *mailbox) put(msg message) bool {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return false
	}
	wasEmpty := len(m.items) == 0
	m.items = append(m.items, msg)
	if m.trackDepth {
		m.depth.Add(1)
	}
	m.mu.Unlock()
	// The executor can only be parked when it saw an empty queue, and the
	// append above happened under the lock, so signalling outside the
	// lock cannot lose a wakeup.
	if wasEmpty {
		m.nonEmp.Signal()
	}
	return true
}

// putBatch enqueues a run of messages in order under one lock
// acquisition — the receive-side half of wire batching: a decoded data
// frame of N tuples costs one mailbox lock per target instance instead
// of N. Like put it reports whether the messages were accepted; after
// close the whole run is rejected so callers can settle per-message
// accounting.
func (m *mailbox) putBatch(msgs []message) bool {
	if len(msgs) == 0 {
		return true
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return false
	}
	wasEmpty := len(m.items) == 0
	m.items = append(m.items, msgs...)
	if m.trackDepth {
		m.depth.Add(int64(len(msgs)))
	}
	m.mu.Unlock()
	if wasEmpty {
		m.nonEmp.Signal()
	}
	return true
}

// getBatch blocks until at least one message is queued or the mailbox is
// closed (ok == false once drained). It returns the entire queued slice
// and installs buf (a previously returned, fully consumed batch) as the
// new backing array, recycling allocations between producer and consumer.
func (m *mailbox) getBatch(buf []message) (batch []message, ok bool) {
	m.mu.Lock()
	for len(m.items) == 0 && !m.closed {
		m.nonEmp.Wait()
	}
	if len(m.items) == 0 {
		m.mu.Unlock()
		return nil, false
	}
	batch = m.items
	m.items = buf[:0]
	m.mu.Unlock()
	return batch, true
}

// get dequeues a single message, blocking until one is available or the
// mailbox is closed (ok == false). The executor hot path uses getBatch;
// get remains for tests and single-message call sites.
func (m *mailbox) get() (message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed {
		m.nonEmp.Wait()
	}
	if len(m.items) == 0 {
		return message{}, false
	}
	msg := m.items[0]
	// Avoid retaining tuple payloads in the backing array.
	m.items[0] = message{}
	m.items = m.items[1:]
	if len(m.items) == 0 {
		m.items = nil // release the backing array
	}
	return msg, true
}

// kill closes the mailbox and discards everything still queued,
// returning the discarded messages so the caller can settle their
// accounting (in-flight counts, parked repliers). Unlike close, queued
// work is lost rather than drained — this models a server crash, where
// messages sitting in the dead worker's queue never execute.
func (m *mailbox) kill() []message {
	m.mu.Lock()
	m.closed = true
	items := m.items
	m.items = nil
	if m.trackDepth {
		m.depth.Store(0)
	}
	m.nonEmp.Broadcast()
	m.mu.Unlock()
	return items
}

// close wakes the executor and makes it exit once the queue drains.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.nonEmp.Broadcast()
	m.mu.Unlock()
}

// len reports the current queue length.
func (m *mailbox) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

// queueDepth reports enqueued-but-unprocessed messages, lock-free.
// Always 0 unless trackDepth is set; the executor run loop decrements it
// per processed message.
func (m *mailbox) queueDepth() int64 { return m.depth.Load() }
