package engine

import (
	"strconv"
	"sync/atomic"
	"testing"

	"github.com/locastream/locastream/internal/topology"
)

// benchTuples pre-builds the injection workload so the timed loop measures
// only the engine's forward path, not tuple construction.
func benchTuples(keys int) []topology.Tuple {
	out := make([]topology.Tuple, keys)
	for i := range out {
		k := strconv.Itoa(i)
		out[i] = topology.Tuple{Values: []string{k, k + "'"}}
	}
	return out
}

// BenchmarkLiveForward measures the per-tuple cost of the live engine's
// full path — Inject, source routing, A's processing, the A->B forward
// (policy lookup, traffic accounting, mailbox hand-off) and B's
// processing — with a single injector and 4 instances per operator.
func BenchmarkLiveForward(b *testing.B) {
	live := newLive(b, 4, FieldsHash, 4096)
	tuples := benchTuples(64)
	// Warm up every executor, sketch and mailbox buffer.
	for i := 0; i < 4096; i++ {
		if err := live.Inject(tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
	}
	live.Drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := live.Inject(tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
	}
	live.Drain()
}

// BenchmarkLiveForwardParallel is BenchmarkLiveForward with concurrent
// injectors; it exposes cross-executor contention (the seed serialized
// every forward through one engine-global traffic mutex).
func BenchmarkLiveForwardParallel(b *testing.B) {
	live := newLive(b, 4, FieldsHash, 8192)
	tuples := benchTuples(64)
	for i := 0; i < 4096; i++ {
		if err := live.Inject(tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
	}
	live.Drain()
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			if err := live.Inject(tuples[i%uint64(len(tuples))]); err != nil {
				b.Fatal(err)
			}
		}
	})
	live.Drain()
}

// BenchmarkSplitForward measures the per-tuple cost of the forward path
// with hot-key splitting active on a skewed workload: a table-routed
// engine with depth tracking on, one promoted hot key taking half the
// stream through the 2-choice step, the tail through the normal table
// path. Comparing against BenchmarkLiveForward bounds the overhead the
// splitting machinery adds per tuple.
func BenchmarkSplitForward(b *testing.B) {
	live := newFaultLive(b, 4, func(cfg *LiveConfig) {
		cfg.KeySplitting = true
		cfg.MaxInFlight = 4096
	})
	if _, err := live.PromoteSplit("B", "hot", 2); err != nil {
		b.Fatal(err)
	}
	tuples := make([]topology.Tuple, 64)
	for i := range tuples {
		k := "hot"
		if i%2 == 1 {
			k = strconv.Itoa(i)
		}
		tuples[i] = topology.Tuple{Values: []string{k, k}}
	}
	for i := 0; i < 4096; i++ {
		if err := live.Inject(tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
	}
	live.Drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := live.Inject(tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
	}
	live.Drain()
}

// BenchmarkMailbox measures the raw producer/consumer hand-off of one
// executor mailbox under concurrent producers.
func BenchmarkMailbox(b *testing.B) {
	mb := newMailbox()
	done := make(chan uint64)
	go func() {
		var count uint64
		for {
			msg, ok := mb.get()
			if !ok {
				done <- count
				return
			}
			_ = msg
			count++
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mb.put(message{kind: msgData})
		}
	})
	mb.close()
	<-done
}

// BenchmarkInflightCounter measures the inc/dec pair every forwarded
// tuple pays for in-flight accounting.
func BenchmarkInflightCounter(b *testing.B) {
	c := newInflightCounter(0)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.incInternal()
			c.dec()
		}
	})
}
