package engine

import (
	"strconv"
	"testing"

	"github.com/locastream/locastream/internal/topology"
)

func counterCount(t *testing.T, live *Live, op string, inst int, key string) uint64 {
	t.Helper()
	var n uint64
	if err := live.ProcessorState(op, inst, func(p topology.Processor) {
		n = p.(*topology.Counter).Count(key)
	}); err != nil {
		t.Fatal(err)
	}
	return n
}

func injectHot(t *testing.T, live *Live, key string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := live.Inject(topology.Tuple{Values: []string{key, key}}); err != nil {
			t.Fatal(err)
		}
	}
	live.Drain()
}

// TestSplitPromoteDemoteNoLoss drives one full promote -> split-route ->
// demote cycle on a downstream operator and asserts the merge contract:
// every tuple processed exactly once, partials folded back into the
// owner, nothing lost, and the split set empty again afterwards.
func TestSplitPromoteDemoteNoLoss(t *testing.T) {
	live := newFaultLive(t, 4, func(cfg *LiveConfig) { cfg.KeySplitting = true })

	injectHot(t, live, "hot", 100)
	owner, ok := live.OwnerOf("B", "hot")
	if !ok {
		t.Fatal("no owner for B/hot")
	}
	if got := counterCount(t, live, "B", owner, "hot"); got != 100 {
		t.Fatalf("owner holds %d before split, want 100", got)
	}

	if !live.CanSplit("B") {
		t.Fatal("CanSplit(B) = false with splitting enabled and a Mergeable Counter")
	}
	replicas, err := live.PromoteSplit("B", "hot", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(replicas) != 2 || replicas[0] != owner {
		t.Fatalf("replica set %v, want [%d x]", replicas, owner)
	}
	if _, err := live.PromoteSplit("B", "hot", 2); err == nil {
		t.Fatal("double promote succeeded")
	}

	before := live.Loads("B")
	injectHot(t, live, "hot", 100)
	after := live.Loads("B")
	for _, r := range replicas {
		if after[r] == before[r] {
			t.Fatalf("replica %d processed nothing while split (loads %v -> %v)", r, before, after)
		}
	}
	st := live.SplitStatsSnapshot()
	if st.Keys != 1 || st.Routed == 0 || st.Promotions != 1 {
		t.Fatalf("split stats mid-split: %+v", st)
	}
	snap := live.SplitSnapshot()
	if len(snap) != 1 || snap[0].Op != "B" || snap[0].Key != "hot" {
		t.Fatalf("split snapshot %+v", snap)
	}

	// The two partials must cover all 200 tuples between them.
	var sum uint64
	for _, r := range replicas {
		sum += counterCount(t, live, "B", r, "hot")
	}
	if sum != 200 {
		t.Fatalf("partials sum to %d, want 200", sum)
	}

	if err := live.DemoteSplit("B", "hot"); err != nil {
		t.Fatal(err)
	}
	if got := counterCount(t, live, "B", owner, "hot"); got != 200 {
		t.Fatalf("owner holds %d after demote, want 200 (merged)", got)
	}
	if got := counterCount(t, live, "B", replicas[1], "hot"); got != 0 {
		t.Fatalf("demoted replica still holds %d", got)
	}
	if live.TuplesLost() != 0 {
		t.Fatalf("lost %d tuples through the cycle", live.TuplesLost())
	}
	st = live.SplitStatsSnapshot()
	if st.Keys != 0 || st.Demotions != 1 || st.MergeBacklog != 0 || st.MergesApplied != st.MergesSent {
		t.Fatalf("split stats after demote: %+v", st)
	}
	if live.SplitSnapshot() != nil {
		t.Fatalf("split snapshot not empty after demote: %+v", live.SplitSnapshot())
	}

	// Routing is back to single-owner.
	injectHot(t, live, "hot", 10)
	if got := counterCount(t, live, "B", owner, "hot"); got != 210 {
		t.Fatalf("owner holds %d after demote traffic, want 210", got)
	}
}

// TestSplitTombstoneForwardsLateTuples simulates a tuple that was already
// in flight towards a replica when its key demoted: the tombstone must
// forward it to the owner without losing its in-flight count.
func TestSplitTombstoneForwardsLateTuples(t *testing.T) {
	live := newFaultLive(t, 4, func(cfg *LiveConfig) { cfg.KeySplitting = true })
	injectHot(t, live, "hot", 20)
	replicas, err := live.PromoteSplit("B", "hot", 2)
	if err != nil {
		t.Fatal(err)
	}
	injectHot(t, live, "hot", 20)
	if err := live.DemoteSplit("B", "hot"); err != nil {
		t.Fatal(err)
	}
	owner, stale := replicas[0], replicas[1]

	// A late tuple keyed to the demoted key lands on the stale replica.
	live.inflight.incInternal()
	if !live.execs["B"][stale].box.put(message{
		kind: msgData, tuple: topology.Tuple{Values: []string{"hot", "hot"}}, keyOp: "B", key: "hot",
	}) {
		t.Fatal("stale replica rejected the late tuple")
	}
	live.Drain()
	if got := counterCount(t, live, "B", owner, "hot"); got != 41 {
		t.Fatalf("owner holds %d, want 41 (late tuple forwarded)", got)
	}
	if got := counterCount(t, live, "B", stale, "hot"); got != 0 {
		t.Fatalf("stale replica recounted the demoted key: %d", got)
	}
	if live.TuplesLost() != 0 {
		t.Fatalf("lost %d tuples", live.TuplesLost())
	}

	// Re-promotion clears the tombstone: the replica counts again.
	if _, err := live.PromoteSplit("B", "hot", 2); err != nil {
		t.Fatal(err)
	}
	injectHot(t, live, "hot", 40)
	if got := counterCount(t, live, "B", stale, "hot"); got == 0 {
		t.Fatal("re-promoted replica processed nothing (tombstone not cleared)")
	}
}

// TestSplitSourceOperator promotes a key of the externally fed source
// operator: Inject itself must take the 2-choice step via the source
// policy.
func TestSplitSourceOperator(t *testing.T) {
	live := newFaultLive(t, 4, func(cfg *LiveConfig) { cfg.KeySplitting = true })
	injectHot(t, live, "hot", 10)
	replicas, err := live.PromoteSplit("A", "hot", 2)
	if err != nil {
		t.Fatal(err)
	}
	injectHot(t, live, "hot", 100)
	var sum uint64
	for _, r := range replicas {
		if c := counterCount(t, live, "A", r, "hot"); c == 0 {
			t.Fatalf("source replica %d holds nothing while split", r)
		} else {
			sum += c
		}
	}
	if sum != 110 {
		t.Fatalf("source partials sum to %d, want 110", sum)
	}
	if err := live.DemoteSplit("A", "hot"); err != nil {
		t.Fatal(err)
	}
	if got := counterCount(t, live, "A", replicas[0], "hot"); got != 110 {
		t.Fatalf("source owner holds %d after demote, want 110", got)
	}
}

// TestSplitCheckpointRecordsPartials asserts that a checkpoint taken
// while a key is split produces one annotated record per dirty replica.
func TestSplitCheckpointRecordsPartials(t *testing.T) {
	live := newFaultLive(t, 4, func(cfg *LiveConfig) { cfg.KeySplitting = true })
	injectHot(t, live, "hot", 50)
	live.CheckpointDirty()
	replicas, err := live.PromoteSplit("B", "hot", 2)
	if err != nil {
		t.Fatal(err)
	}
	injectHot(t, live, "hot", 50)

	var recs []KeyState
	for _, r := range live.CheckpointDirty() {
		if r.Op == "B" && r.Key == "hot" {
			recs = append(recs, r)
		}
	}
	if len(recs) != 2 {
		t.Fatalf("%d records for the split key, want 2 (one per replica)", len(recs))
	}
	seen := map[int]bool{}
	for _, r := range recs {
		if !r.Split {
			t.Fatalf("record %+v not marked Split", r)
		}
		if len(r.Replicas) != 2 || r.Replicas[0] != replicas[0] || r.Replicas[1] != replicas[1] {
			t.Fatalf("record replicas %v, want %v", r.Replicas, replicas)
		}
		seen[r.Inst] = true
	}
	if !seen[replicas[0]] || !seen[replicas[1]] {
		t.Fatalf("records cover instances %v, want both of %v", seen, replicas)
	}
}

// TestSplitDisabledAndIneligible covers the refusal paths.
func TestSplitDisabledAndIneligible(t *testing.T) {
	plain := newFaultLive(t, 2, nil)
	if plain.CanSplit("B") {
		t.Fatal("CanSplit true with splitting disabled")
	}
	if _, err := plain.PromoteSplit("B", "hot", 2); err == nil {
		t.Fatal("promote succeeded with splitting disabled")
	}

	live := newFaultLive(t, 2, func(cfg *LiveConfig) { cfg.KeySplitting = true })
	if _, err := live.PromoteSplit("nosuch", "hot", 2); err == nil {
		t.Fatal("promote of unknown operator succeeded")
	}
	if err := live.DemoteSplit("B", "hot"); err == nil {
		t.Fatal("demote of unsplit key succeeded")
	}
	if live.Parallelism("B") != 2 {
		t.Fatalf("Parallelism(B) = %d", live.Parallelism("B"))
	}
}

// TestPruneSplitReplicasOnFailure kills the server hosting the non-owner
// replica: pruning must dissolve the split (fewer than 2 alive replicas)
// and restore single-owner routing for the key.
func TestPruneSplitReplicasOnFailure(t *testing.T) {
	live := newFaultLive(t, 4, func(cfg *LiveConfig) { cfg.KeySplitting = true })
	injectHot(t, live, "hot", 10)
	replicas, err := live.PromoteSplit("B", "hot", 2)
	if err != nil {
		t.Fatal(err)
	}
	victim := live.Placement().ServerOf("B", replicas[1])
	if err := live.KillServer(victim); err != nil {
		t.Fatal(err)
	}
	live.PruneSplitReplicas()
	if live.SplitSnapshot() != nil {
		t.Fatalf("split survived losing a replica: %+v", live.SplitSnapshot())
	}
	live.ApplyAliveRouting()

	owner := replicas[0]
	beforeLoads := live.Loads("B")
	for i := 0; i < 20; i++ {
		_ = live.Inject(topology.Tuple{Values: []string{"hot", "hot"}})
	}
	live.Drain()
	afterLoads := live.Loads("B")
	if afterLoads[owner] != beforeLoads[owner]+20 {
		t.Fatalf("owner %d processed %d new tuples, want 20 (loads %v -> %v)",
			owner, afterLoads[owner]-beforeLoads[owner], beforeLoads, afterLoads)
	}
}

// TestSplitBalancesSkewAcrossServers is the drill in miniature at engine
// level: with one key dominating the stream, splitting it must cut the
// hottest instance's share of that key's tuples roughly in half.
func TestSplitBalancesSkewAcrossServers(t *testing.T) {
	unsplit := newFaultLive(t, 4, nil)
	split := newFaultLive(t, 4, func(cfg *LiveConfig) { cfg.KeySplitting = true })

	feed := func(live *Live) {
		for i := 0; i < 400; i++ {
			var k string
			if i%2 == 0 {
				k = "hot"
			} else {
				k = "t" + strconv.Itoa(i%40)
			}
			_ = live.Inject(topology.Tuple{Values: []string{k, k}})
		}
		live.Drain()
	}

	if _, err := split.PromoteSplit("B", "hot", 2); err != nil {
		t.Fatal(err)
	}
	feed(unsplit)
	feed(split)

	maxLoad := func(live *Live) uint64 {
		var max uint64
		for _, l := range live.Loads("B") {
			if l > max {
				max = l
			}
		}
		return max
	}
	mu, ms := maxLoad(unsplit), maxLoad(split)
	if float64(ms) > 0.8*float64(mu) {
		t.Fatalf("split max load %d not below 80%% of unsplit %d", ms, mu)
	}
}
