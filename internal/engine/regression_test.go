package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/spacesaving"
	"github.com/locastream/locastream/internal/topology"
)

// presenceStore is a keyed processor whose per-key state is an
// empty-but-present blob: SnapshotKey returns a non-nil zero-length
// slice. Its presence (not its contents) is the state being migrated —
// exactly the payload gob's zero-value elision destroys on the wire.
type presenceStore struct {
	data map[string][]byte
}

func newPresenceStore() *presenceStore {
	return &presenceStore{data: make(map[string][]byte)}
}

func (p *presenceStore) Process(t topology.Tuple, _ topology.Emit) {
	p.data[t.Field(0)] = []byte{}
}

func (p *presenceStore) SnapshotKey(k string) ([]byte, bool) {
	d, ok := p.data[k]
	return d, ok
}

func (p *presenceStore) RestoreKey(k string, d []byte) error {
	if d == nil {
		d = []byte{}
	}
	p.data[k] = d
	return nil
}

func (p *presenceStore) DeleteKey(k string) { delete(p.data, k) }

func (p *presenceStore) StateKeys() []string {
	keys := make([]string, 0, len(p.data))
	for k := range p.data {
		keys = append(keys, k)
	}
	return keys
}

var _ topology.Keyed = (*presenceStore)(nil)

// TestTCPMigrateEmptySnapshot moves a key whose snapshot is []byte{}
// across servers over real TCP. gob omits zero-value fields, so without
// an explicit has-data flag on the wire the receiver sees a nil payload
// and skips the restore — state that survives same-server migration is
// silently dropped by TCP migration.
func TestTCPMigrateEmptySnapshot(t *testing.T) {
	const parallelism = 2
	topo, err := topology.NewBuilder("presence").
		AddOperator(topology.Operator{Name: "S", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return newPresenceStore() }}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	place, err := cluster.NewRoundRobin(topo, parallelism) // instance i on server i
	if err != nil {
		t.Fatal(err)
	}
	src := routing.NewTableFields(parallelism, "S")
	live, err := NewLive(LiveConfig{
		Topology:     topo,
		Placement:    place,
		SourcePolicy: src,
		TCPTransport: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Stop()

	const key = "k"
	from := routing.SaltedHashKey("S", key, parallelism) // empty table: hash fallback
	to := 1 - from                                       // round-robin placement: a different server

	if err := live.Inject(topology.Tuple{Values: []string{key}}); err != nil {
		t.Fatal(err)
	}
	live.Drain()
	_ = live.ProcessorState("S", from, func(p topology.Processor) {
		if _, ok := p.(*presenceStore).SnapshotKey(key); !ok {
			t.Errorf("instance %d has no state for %q before migration", from, key)
		}
	})

	if err := live.Reconfigure(ReconfigPlan{
		Tables: map[string]*routing.Table{"S": {Version: 1, Assign: map[string]int{key: to}}},
		Moves:  map[string][]KeyMove{"S": {{Key: key, From: from, To: to}}},
	}); err != nil {
		t.Fatal(err)
	}

	var present bool
	_ = live.ProcessorState("S", to, func(p topology.Processor) {
		_, present = p.(*presenceStore).SnapshotKey(key)
	})
	if !present {
		t.Fatalf("empty-but-present state for %q lost migrating %d -> %d over TCP", key, from, to)
	}
	_ = live.ProcessorState("S", from, func(p topology.Processor) {
		if _, ok := p.(*presenceStore).SnapshotKey(key); ok {
			t.Errorf("old owner %d still holds state for %q", from, key)
		}
	})
}

// TestInjectStopRaceDrainReturns races Inject against Stop and asserts
// the in-flight accounting converges: an injection accepted by the
// counter but rejected by a concurrently closed mailbox must be rolled
// back, or Drain blocks forever on a tuple that never existed. Run under
// -race in CI.
func TestInjectStopRaceDrainReturns(t *testing.T) {
	for round := 0; round < 10; round++ {
		live := newLive(t, 2, FieldsHash, 0)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 300; i++ {
					// Errors are expected once the engine stops.
					_ = live.Inject(topology.Tuple{Values: []string{"a", "b"}})
				}
			}()
		}
		close(start)
		live.Stop()
		wg.Wait()

		done := make(chan struct{})
		go func() {
			live.Drain()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("Drain hung after Inject raced Stop (leaked in-flight count)")
		}
	}
}

// TestInjectAfterMailboxCloseRollsBack pins the exact losing interleaving
// of the race above, which is too narrow to hit reliably with goroutines:
// an Inject that passes the stopped check before Stop flips it, but
// reaches the mailbox after Stop closed it. The rejected put must roll
// back the in-flight increment and surface an error — otherwise the
// counter stays >0 forever and every later Drain hangs.
func TestInjectAfterMailboxCloseRollsBack(t *testing.T) {
	live := newLive(t, 2, FieldsHash, 0)
	live.Stop()
	// Reopen the gate: equivalent to an injector that loaded stopped ==
	// false just before Stop swapped it. The mailboxes are already
	// closed, so the put below is rejected.
	live.stopped.Store(false)
	if err := live.Inject(topology.Tuple{Values: []string{"a", "b"}}); err == nil {
		t.Fatal("Inject into closed mailboxes reported success")
	}
	if n := live.inflight.n.Load(); n != 0 {
		t.Fatalf("in-flight count = %d after rejected Inject, want 0", n)
	}
	done := make(chan struct{})
	go func() {
		live.Drain()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain hung on the in-flight count of a dropped injection")
	}
	live.stopped.Store(true) // restore for the deferred idempotent Stop
}

// TestMergePairStatsDeterministic merges the same per-instance sketch
// snapshots in many shuffled orders and requires identical output: the
// merged sketch must be sized from the configured capacity and the
// reporting operator's parallelism, never from whichever snapshot arrives
// first.
func TestMergePairStatsDeterministic(t *testing.T) {
	const sketchCap = 4
	const instances = 3
	parallelism := func(string) int { return instances }

	// Three instances, each reporting at most sketchCap pairs, with more
	// distinct pairs in total than any single snapshot holds.
	var stats []instPairStat
	for inst := 0; inst < instances; inst++ {
		st := instPairStat{fromOp: "A", toOp: "B"}
		for j := 0; j < sketchCap; j++ {
			st.pairs = append(st.pairs, spacesaving.PairCounter{
				In:    fmt.Sprintf("in%d-%d", inst, j),
				Out:   fmt.Sprintf("out%d", j),
				Count: uint64(100*inst + 10*j + 1),
			})
		}
		stats = append(stats, st)
		// A second operator pair reported by the same instances.
		stats = append(stats, instPairStat{fromOp: "B", toOp: "C",
			pairs: []spacesaving.PairCounter{{In: fmt.Sprintf("b%d", inst), Out: "c", Count: uint64(inst + 1)}}})
	}

	want := mergePairStats(append([]instPairStat(nil), stats...), sketchCap, parallelism)
	if len(want) != 2 {
		t.Fatalf("merged %d operator pairs, want 2", len(want))
	}
	// Exact merge: every distinct pair survives with its exact count.
	if got := len(want[0].Pairs); got != instances*sketchCap {
		t.Fatalf("A->B merged %d pairs, want %d (eviction in merge sketch)", got, instances*sketchCap)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		shuffled := append([]instPairStat(nil), stats...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got := mergePairStats(shuffled, sketchCap, parallelism)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged stats depend on reply order:\ngot  %+v\nwant %+v",
				trial, got, want)
		}
	}
}
