package routing

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestHashKeyDeterministicAndInRange(t *testing.T) {
	f := func(key string, nRaw uint8) bool {
		n := int(nRaw)%16 + 1
		a := HashKey(key, n)
		b := HashKey(key, n)
		return a == b && a >= 0 && a < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleRoundRobinBalanced(t *testing.T) {
	s := NewShuffle(4)
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		counts[s.Route("ignored", 0, uint64(i))]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Errorf("instance %d received %d, want 100", i, c)
		}
	}
	if s.Name() != "shuffle" {
		t.Errorf("Name() = %q", s.Name())
	}
}

func TestShuffleConcurrentSafe(t *testing.T) {
	s := NewShuffle(3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if idx := s.Route("", 0, 0); idx < 0 || idx >= 3 {
					t.Errorf("Route out of range: %d", idx)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestLocalOrShufflePrefersLocal(t *testing.T) {
	// Instances 0,1,2 on servers 0,1,2.
	l := NewLocalOrShuffle([]int{0, 1, 2}, 3)
	for sender := 0; sender < 3; sender++ {
		for i := 0; i < 10; i++ {
			if got := l.Route("", sender, 0); got != sender {
				t.Errorf("sender %d routed to instance %d, want local %d", sender, got, sender)
			}
		}
	}
}

func TestLocalOrShuffleCyclesLocalInstances(t *testing.T) {
	// Two instances on server 0.
	l := NewLocalOrShuffle([]int{0, 0, 1}, 2)
	seen := make(map[int]int)
	for i := 0; i < 100; i++ {
		seen[l.Route("", 0, 0)]++
	}
	if seen[2] != 0 {
		t.Errorf("remote instance 2 selected %d times, want 0", seen[2])
	}
	if seen[0] == 0 || seen[1] == 0 {
		t.Errorf("local instances unevenly used: %v", seen)
	}
}

func TestLocalOrShuffleFallsBackWhenNoLocal(t *testing.T) {
	// No instance on server 2.
	l := NewLocalOrShuffle([]int{0, 1}, 3)
	seen := make(map[int]bool)
	for i := 0; i < 50; i++ {
		idx := l.Route("", 2, 0)
		if idx < 0 || idx > 1 {
			t.Fatalf("Route = %d out of range", idx)
		}
		seen[idx] = true
	}
	if !seen[0] || !seen[1] {
		t.Error("fallback shuffle should use all instances")
	}
	// Unknown sender server also falls back.
	if idx := l.Route("", -1, 0); idx < 0 || idx > 1 {
		t.Fatalf("Route(-1) = %d out of range", idx)
	}
}

func TestHashFieldsStable(t *testing.T) {
	h := NewHashFields(5, "B")
	for _, key := range []string{"Asia", "#java", "", "x"} {
		first := h.Route(key, 0, 0)
		for i := 0; i < 5; i++ {
			if h.Route(key, i, uint64(i)) != first {
				t.Errorf("key %q not routed deterministically", key)
			}
		}
	}
}

func TestTableFieldsRoutesAndFallsBack(t *testing.T) {
	tf := NewTableFields(4, "B")
	tf.Update(&Table{Version: 1, Assign: map[string]int{"Asia": 2, "Oceania": 0}})

	if got := tf.Route("Asia", 0, 0); got != 2 {
		t.Errorf("Route(Asia) = %d, want 2", got)
	}
	if got := tf.Route("Oceania", 3, 9); got != 0 {
		t.Errorf("Route(Oceania) = %d, want 0", got)
	}
	if got, want := tf.Route("Unknown", 0, 0), SaltedHashKey("B", "Unknown", 4); got != want {
		t.Errorf("Route(Unknown) = %d, want hash fallback %d", got, want)
	}
	if tf.Version() != 1 {
		t.Errorf("Version() = %d, want 1", tf.Version())
	}
}

func TestTableFieldsIgnoresInvalidEntries(t *testing.T) {
	tf := NewTableFields(2, "B")
	tf.Update(&Table{Version: 1, Assign: map[string]int{"bad": 9, "neg": -1}})
	if got, want := tf.Route("bad", 0, 0), SaltedHashKey("B", "bad", 2); got != want {
		t.Errorf("Route(bad) = %d, want hash fallback %d", got, want)
	}
	if got, want := tf.Route("neg", 0, 0), SaltedHashKey("B", "neg", 2); got != want {
		t.Errorf("Route(neg) = %d, want hash fallback %d", got, want)
	}
}

func TestTableFieldsUpdateIsolation(t *testing.T) {
	tf := NewTableFields(4, "B")
	table := &Table{Version: 1, Assign: map[string]int{"k": 1}}
	tf.Update(table)
	table.Assign["k"] = 3 // caller mutation must not affect the policy
	if got := tf.Route("k", 0, 0); got != 1 {
		t.Errorf("Route(k) = %d, want 1 (table not copied)", got)
	}
	snap := tf.Snapshot()
	snap.Assign["k"] = 2 // snapshot mutation must not affect the policy
	if got := tf.Route("k", 0, 0); got != 1 {
		t.Errorf("Route(k) = %d after snapshot mutation, want 1", got)
	}
}

func TestTableFieldsNilUpdateResets(t *testing.T) {
	tf := NewTableFields(4, "B")
	tf.Update(&Table{Version: 3, Assign: map[string]int{"k": 2}})
	tf.Update(nil)
	if got, want := tf.Route("k", 0, 0), SaltedHashKey("B", "k", 4); got != want {
		t.Errorf("Route(k) = %d, want hash %d after reset", got, want)
	}
}

func TestTableFieldsConcurrentRouteAndUpdate(t *testing.T) {
	tf := NewTableFields(4, "B")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(0); ; v++ {
			select {
			case <-stop:
				return
			default:
				tf.Update(&Table{Version: v, Assign: map[string]int{"k": int(v % 4)}})
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if idx := tf.Route("k", 0, 0); idx < 0 || idx >= 4 {
					t.Errorf("Route = %d out of range", idx)
					return
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				_ = tf.Route("k", 0, 0)
			}
		}()
	}
	// Let routers run against the updater briefly, then stop.
	for i := 0; i < 1000; i++ {
		_ = tf.Snapshot()
	}
	close(stop)
	wg.Wait()
}

func TestWorstCaseAlwaysRemote(t *testing.T) {
	w := NewWorstCase([]int{0, 1, 2}, 3, "B")
	for sender := 0; sender < 3; sender++ {
		for k := 0; k < 50; k++ {
			idx := w.Route(fmt.Sprintf("key%d", k), sender, 0)
			if idx == sender {
				t.Errorf("sender %d: key routed locally to %d", sender, idx)
			}
		}
	}
}

func TestWorstCaseDeterministicPerSender(t *testing.T) {
	w := NewWorstCase([]int{0, 1, 2}, 3, "B")
	for k := 0; k < 20; k++ {
		key := fmt.Sprintf("key%d", k)
		first := w.Route(key, 1, 0)
		for i := 0; i < 5; i++ {
			if w.Route(key, 1, uint64(i)) != first {
				t.Errorf("key %q not deterministic for fixed sender", key)
			}
		}
	}
}

func TestWorstCaseSingleServerDegradesToHash(t *testing.T) {
	w := NewWorstCase([]int{0, 0}, 1, "B")
	if got, want := w.Route("k", 0, 0), SaltedHashKey("B", "k", 2); got != want {
		t.Errorf("Route = %d, want hash %d", got, want)
	}
}

func TestTableClone(t *testing.T) {
	var nilTable *Table
	if nilTable.Clone() != nil {
		t.Error("nil Clone should be nil")
	}
	orig := &Table{Version: 2, Assign: map[string]int{"a": 1}}
	cp := orig.Clone()
	cp.Assign["a"] = 9
	if orig.Assign["a"] != 1 {
		t.Error("Clone shares the assign map")
	}
}

func TestSaltedHashDistribution(t *testing.T) {
	// The salted hash must spread many keys roughly uniformly over the
	// instances (it is the load-balance baseline of the paper's Fig. 11b).
	const n, keys = 6, 60000
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[SaltedHashKey("B", fmt.Sprintf("key-%d", i), n)]++
	}
	want := keys / n
	for inst, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("instance %d got %d keys, want %d±10%%", inst, c, want)
		}
	}
}

func TestSaltsDecorrelate(t *testing.T) {
	// Different salts must route the same key independently: the
	// agreement rate over many keys should be ~1/n, not ~1.
	const n, keys = 4, 20000
	agree := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		if SaltedHashKey("A", k, n) == SaltedHashKey("B", k, n) {
			agree++
		}
	}
	rate := float64(agree) / keys
	if rate > 0.30 || rate < 0.20 {
		t.Errorf("salt agreement rate = %.3f, want ~0.25", rate)
	}
}

func TestPropertySaltedHashInRange(t *testing.T) {
	f := func(salt, key string, nRaw uint8) bool {
		n := int(nRaw)%16 + 1
		idx := SaltedHashKey(salt, key, n)
		return idx >= 0 && idx < n && idx == SaltedHashKey(salt, key, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
