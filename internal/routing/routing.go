// Package routing implements the stream routing policies of §2.2 and the
// explicit routing tables of §3.3 of Caneill et al. (Middleware'16).
//
// A Policy decides, for every tuple crossing one edge of the topology,
// which instance of the recipient operator receives it. Policies see the
// routing key (for fields grouping), the sender's server (for locality)
// and a per-sender sequence number (for round-robin).
package routing

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Policy selects a recipient instance for a tuple.
type Policy interface {
	// Route returns the recipient instance index in [0, instances) for
	// the given routing key, sent from senderServer. seq is a per-sender
	// monotonically increasing sequence number.
	Route(key string, senderServer int, seq uint64) int
	// Name identifies the policy in logs and experiment output.
	Name() string
}

// HashKey is the deterministic hash used by fields grouping (FNV-1a with
// an avalanche finalizer), the default policy of Storm's fields grouping
// in the paper.
func HashKey(key string, instances int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(fmix32(h.Sum32()) % uint32(instances))
}

// SaltedHashKey hashes a key for one specific recipient operator. The
// salt (the operator name) reproduces Storm's behaviour where each
// operator's task indices map to servers independently: the same key
// value routed to two different operators lands on uncorrelated
// instances, so hash-based fields grouping achieves only ~1/n locality
// even on perfectly correlated data (§4.3 measures 16.6% for n = 6).
func SaltedHashKey(salt, key string, instances int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(salt))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return int(fmix32(h.Sum32()) % uint32(instances))
}

// fmix32 is MurmurHash3's 32-bit finalizer. Raw FNV-1a has weak low
// bits: per input byte the low k bits evolve as a permutation of the low
// k bits of the state, so two hashes that start from different salts can
// NEVER collide modulo a power of two — the opposite of the "random but
// deterministic" assignment fields grouping needs. The avalanche mix
// makes every output bit depend on every state bit before the modulo.
func fmix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// --- shuffle --------------------------------------------------------------

// Shuffle routes round-robin over all instances (stateless recipients
// only). Safe for concurrent use.
type Shuffle struct {
	instances int
	next      atomic.Uint64
}

// NewShuffle returns a shuffle policy over instances recipients.
func NewShuffle(instances int) *Shuffle {
	return &Shuffle{instances: instances}
}

// Route ignores the key and cycles through instances.
func (s *Shuffle) Route(string, int, uint64) int {
	return int(s.next.Add(1) % uint64(s.instances))
}

// Name returns "shuffle".
func (s *Shuffle) Name() string { return "shuffle" }

// --- local-or-shuffle ------------------------------------------------------

// LocalOrShuffle prefers an instance co-located with the sender and falls
// back to round-robin. Safe for concurrent use.
type LocalOrShuffle struct {
	serverOf []int   // instance -> server
	local    [][]int // server -> co-located instances
	servers  int
	next     atomic.Uint64
}

// NewLocalOrShuffle builds the policy from the recipient placement:
// serverOf[i] is the server hosting instance i.
func NewLocalOrShuffle(serverOf []int, servers int) *LocalOrShuffle {
	local := make([][]int, servers)
	for i, s := range serverOf {
		if s >= 0 && s < servers {
			local[s] = append(local[s], i)
		}
	}
	return &LocalOrShuffle{
		serverOf: append([]int(nil), serverOf...),
		local:    local,
		servers:  servers,
	}
}

// Route picks a co-located instance when one exists, cycling among
// several; otherwise it shuffles over all instances.
func (l *LocalOrShuffle) Route(_ string, senderServer int, _ uint64) int {
	n := l.next.Add(1)
	if senderServer >= 0 && senderServer < l.servers {
		if co := l.local[senderServer]; len(co) > 0 {
			return co[int(n)%len(co)]
		}
	}
	return int(n % uint64(len(l.serverOf)))
}

// Name returns "local-or-shuffle".
func (l *LocalOrShuffle) Name() string { return "local-or-shuffle" }

// --- fields (hash) ----------------------------------------------------------

// HashFields is the default fields grouping: deterministic hash of the
// key, salted with the recipient operator's name. Stateless and safe for
// concurrent use.
type HashFields struct {
	instances int
	salt      string
}

// NewHashFields returns hash-based fields grouping over instances of the
// operator named salt.
func NewHashFields(instances int, salt string) *HashFields {
	return &HashFields{instances: instances, salt: salt}
}

// Route hashes the key.
func (h *HashFields) Route(key string, _ int, _ uint64) int {
	return SaltedHashKey(h.salt, key, h.instances)
}

// Name returns "hash-fields".
func (h *HashFields) Name() string { return "hash-fields" }

// --- fields (routing table) --------------------------------------------------

// Table is an explicit key -> instance assignment with a version number,
// produced by the locality optimizer.
type Table struct {
	// Version increases with every reconfiguration.
	Version uint64
	// Assign maps keys to recipient instance indices.
	Assign map[string]int
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	if t == nil {
		return nil
	}
	cp := &Table{Version: t.Version, Assign: make(map[string]int, len(t.Assign))}
	for k, v := range t.Assign {
		cp.Assign[k] = v
	}
	return cp
}

// TableFields routes keys through an explicit routing table, falling back
// to hash-based routing for unknown keys (§3.3: "When a key is not
// present in the routing table, it falls back to the standard hash-based
// routing policy"). The table can be swapped atomically while routing,
// which is how online reconfiguration updates senders. Safe for
// concurrent use.
type TableFields struct {
	instances int
	salt      string

	mu    sync.RWMutex
	table *Table
	alive []bool           // nil = all instances alive
	split map[string][]int // hot keys promoted to multi-replica routing; nil = none
	load  func(int) int64  // per-instance queue-depth probe for 2-choice routing

	splitRouted atomic.Uint64 // tuples routed through a split entry
}

// NewTableFields returns table-based fields grouping for the operator
// named salt, with an initially empty table (every key falls back to
// hashing).
func NewTableFields(instances int, salt string) *TableFields {
	return &TableFields{instances: instances, salt: salt, table: &Table{Assign: map[string]int{}}}
}

// Route consults the table and falls back to the hash for missing keys.
// Table entries outside [0, instances) are ignored defensively. When an
// alive mask is installed (see SetAlive) and the chosen instance is
// dead, routing deterministically probes forward to the next alive
// instance, so hash-fallback keys survive a failure without a table
// entry.
func (t *TableFields) Route(key string, _ int, seq uint64) int {
	t.mu.RLock()
	if t.split != nil {
		// Split keys take the 2-of-d-choices path. The nil check keeps
		// the unsplit hot path at one extra branch; the per-key lookup
		// only costs anything once at least one key is promoted.
		if replicas, hot := t.split[key]; hot {
			load := t.load
			alive := t.alive
			t.mu.RUnlock()
			return t.routeSplit(replicas, alive, load, seq)
		}
	}
	idx, ok := t.table.Assign[key]
	alive := t.alive
	t.mu.RUnlock()
	if !ok || idx < 0 || idx >= t.instances {
		idx = SaltedHashKey(t.salt, key, t.instances)
	}
	if alive != nil && !alive[idx] {
		for i := 1; i < t.instances; i++ {
			if j := (idx + i) % t.instances; alive[j] {
				return j
			}
		}
	}
	return idx
}

// routeSplit picks a replica for a split key: two candidates are drawn
// round-robin from the replica set and the one with the shorter queue
// wins (power of two choices on current queue depth). Without a load
// probe the choice degrades to plain round-robin, which is still
// deterministic per sender. Dead replicas are skipped; when every
// replica is dead the first replica is returned and the caller's alive
// remapping takes over.
func (t *TableFields) routeSplit(replicas []int, alive []bool, load func(int) int64, seq uint64) int {
	t.splitRouted.Add(1)
	n := len(replicas)
	if n == 1 {
		return replicas[0]
	}
	a := replicas[seq%uint64(n)]
	b := replicas[(seq+1)%uint64(n)]
	if alive != nil {
		// Prefer an alive candidate; scan forward when both picks died.
		for i := 0; i < n && !alive[a]; i++ {
			a = replicas[(seq+uint64(i)+1)%uint64(n)]
		}
		for i := 0; i < n && !alive[b]; i++ {
			b = replicas[(seq+uint64(i)+2)%uint64(n)]
		}
		if !alive[a] {
			return replicas[0]
		}
		if !alive[b] || a == b {
			return a
		}
	}
	if load == nil || a == b {
		return a
	}
	if load(b) < load(a) {
		return b
	}
	return a
}

// SetSplit promotes key to multi-replica routing over the given replica
// set; replicas[0] is the owner that keeps the authoritative state. The
// slice is copied. An empty replica set removes the entry.
func (t *TableFields) SetSplit(key string, replicas []int) {
	if len(replicas) == 0 {
		t.RemoveSplit(key)
		return
	}
	cp := append([]int(nil), replicas...)
	t.mu.Lock()
	if t.split == nil {
		t.split = make(map[string][]int)
	}
	t.split[key] = cp
	t.mu.Unlock()
}

// RemoveSplit demotes key back to single-owner routing.
func (t *TableFields) RemoveSplit(key string) {
	t.mu.Lock()
	if t.split != nil {
		delete(t.split, key)
		if len(t.split) == 0 {
			t.split = nil // restore the one-branch hot path
		}
	}
	t.mu.Unlock()
}

// Splits returns a copy of the current split set.
func (t *TableFields) Splits() map[string][]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.split == nil {
		return nil
	}
	out := make(map[string][]int, len(t.split))
	for k, r := range t.split {
		out[k] = append([]int(nil), r...)
	}
	return out
}

// SetLoadProbe installs the per-instance queue-depth probe used by the
// 2-choice step. The probe must be safe for concurrent use.
func (t *TableFields) SetLoadProbe(load func(int) int64) {
	t.mu.Lock()
	t.load = load
	t.mu.Unlock()
}

// SplitRouted returns how many tuples were routed through split entries.
func (t *TableFields) SplitRouted() uint64 { return t.splitRouted.Load() }

// SetAlive installs a liveness mask over the recipient instances: Route
// never returns a dead instance while at least one alive instance
// exists. nil (or an all-true mask) restores normal routing. The mask
// must have length instances; other lengths are ignored defensively.
// The remap is deterministic (first alive instance scanning forward), so
// every sender sharing this policy agrees on the substitute owner — the
// property keyed state management relies on.
func (t *TableFields) SetAlive(alive []bool) {
	if alive != nil && len(alive) != t.instances {
		return
	}
	var cp []bool
	if alive != nil {
		allAlive := true
		for _, a := range alive {
			if !a {
				allAlive = false
				break
			}
		}
		if !allAlive {
			cp = append([]bool(nil), alive...)
		}
	}
	t.mu.Lock()
	t.alive = cp
	t.mu.Unlock()
}

// Update atomically installs a new routing table. A nil table resets to
// pure hashing.
func (t *TableFields) Update(table *Table) {
	if table == nil {
		table = &Table{Assign: map[string]int{}}
	}
	t.mu.Lock()
	t.table = table.Clone()
	t.mu.Unlock()
}

// Snapshot returns a copy of the current table.
func (t *TableFields) Snapshot() *Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.table.Clone()
}

// Version returns the version of the installed table.
func (t *TableFields) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.table.Version
}

// Name returns "table-fields".
func (t *TableFields) Name() string { return "table-fields" }

// --- worst case ---------------------------------------------------------------

// WorstCase deterministically routes every key to an instance on a server
// other than the sender's whenever one exists (§4.2's lower bound: "tuples
// ... are always routed through the network"). Keys are still routed
// deterministically, so stateful consistency is preserved per sender
// server; it is only used by the synthetic benchmarks.
type WorstCase struct {
	serverOf []int
	servers  int
	salt     string
}

// NewWorstCase builds the policy from the recipient placement for the
// operator named salt.
func NewWorstCase(serverOf []int, servers int, salt string) *WorstCase {
	return &WorstCase{serverOf: append([]int(nil), serverOf...), servers: servers, salt: salt}
}

// Route hashes the key over the instances not hosted on the sender's
// server; with a single server it degrades to plain hashing.
func (w *WorstCase) Route(key string, senderServer int, _ uint64) int {
	remote := make([]int, 0, len(w.serverOf))
	for i, s := range w.serverOf {
		if s != senderServer {
			remote = append(remote, i)
		}
	}
	if len(remote) == 0 {
		return SaltedHashKey(w.salt, key, len(w.serverOf))
	}
	return remote[SaltedHashKey(w.salt, key, len(remote))]
}

// Name returns "worst-case".
func (w *WorstCase) Name() string { return "worst-case" }

var (
	_ Policy = (*Shuffle)(nil)
	_ Policy = (*LocalOrShuffle)(nil)
	_ Policy = (*HashFields)(nil)
	_ Policy = (*TableFields)(nil)
	_ Policy = (*WorstCase)(nil)
)
