package routing

import "testing"

func TestSplitRouteRoundRobinWithoutProbe(t *testing.T) {
	tf := NewTableFields(4, "op")
	tf.Update(&Table{Version: 1, Assign: map[string]int{"hot": 1, "cold": 2}})
	tf.SetSplit("hot", []int{1, 3})

	var counts [4]int
	for seq := uint64(0); seq < 100; seq++ {
		counts[tf.Route("hot", 0, seq)]++
	}
	if counts[1] != 50 || counts[3] != 50 {
		t.Fatalf("round-robin split uneven: %v", counts)
	}
	if got := tf.Route("cold", 0, 0); got != 2 {
		t.Fatalf("tail key rerouted to %d, want table entry 2", got)
	}
	if tf.SplitRouted() != 100 {
		t.Fatalf("SplitRouted = %d, want 100", tf.SplitRouted())
	}
}

func TestSplitRouteTwoChoicesPrefersShorterQueue(t *testing.T) {
	tf := NewTableFields(4, "op")
	tf.SetSplit("hot", []int{0, 2})
	depth := map[int]int64{0: 10, 2: 1}
	tf.SetLoadProbe(func(inst int) int64 { return depth[inst] })

	for seq := uint64(0); seq < 10; seq++ {
		if got := tf.Route("hot", 0, seq); got != 2 {
			t.Fatalf("seq %d routed to %d despite queue depths %v", seq, got, depth)
		}
	}
	// Ties keep the round-robin pick so both replicas share load.
	depth[0], depth[2] = 5, 5
	seen := map[int]bool{}
	for seq := uint64(0); seq < 4; seq++ {
		seen[tf.Route("hot", 0, seq)] = true
	}
	if !seen[0] || !seen[2] {
		t.Fatalf("tied queues should round-robin, saw %v", seen)
	}
}

func TestSplitRouteSkipsDeadReplica(t *testing.T) {
	tf := NewTableFields(4, "op")
	tf.SetSplit("hot", []int{1, 3})
	tf.SetAlive([]bool{true, true, true, false})
	for seq := uint64(0); seq < 8; seq++ {
		if got := tf.Route("hot", 0, seq); got != 1 {
			t.Fatalf("dead replica chosen: %d", got)
		}
	}
}

func TestRemoveSplitRestoresOwnerRouting(t *testing.T) {
	tf := NewTableFields(4, "op")
	tf.Update(&Table{Version: 1, Assign: map[string]int{"hot": 1}})
	tf.SetSplit("hot", []int{1, 2})
	tf.RemoveSplit("hot")
	for seq := uint64(0); seq < 8; seq++ {
		if got := tf.Route("hot", 0, seq); got != 1 {
			t.Fatalf("demoted key routed to %d, want owner 1", got)
		}
	}
	if tf.Splits() != nil {
		t.Fatalf("split set not empty after demote: %v", tf.Splits())
	}
}
