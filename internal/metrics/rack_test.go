package metrics

import (
	"math"
	"testing"
)

func TestRecordLevelRackAccounting(t *testing.T) {
	var tr Traffic
	tr.RecordLevel(true, true, 10)   // same server
	tr.RecordLevel(false, true, 20)  // same rack, different server
	tr.RecordLevel(false, false, 30) // cross rack

	if tr.LocalTuples != 1 || tr.RemoteTuples != 2 || tr.RackTuples != 1 {
		t.Fatalf("counts = %d/%d/%d", tr.LocalTuples, tr.RemoteTuples, tr.RackTuples)
	}
	if tr.RackBytes != 20 || tr.RemoteBytes != 50 {
		t.Fatalf("bytes = rack %d remote %d", tr.RackBytes, tr.RemoteBytes)
	}
	if got := tr.Locality(); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Fatalf("Locality() = %f", got)
	}
	if got := tr.RackLocality(); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("RackLocality() = %f", got)
	}
}

func TestRackLocalityEmpty(t *testing.T) {
	var tr Traffic
	if tr.RackLocality() != 0 {
		t.Fatal("empty traffic rack locality should be 0")
	}
}

func TestAddIncludesRackFields(t *testing.T) {
	a := Traffic{RackTuples: 1, RackBytes: 10}
	a.Add(Traffic{RackTuples: 2, RackBytes: 20})
	if a.RackTuples != 3 || a.RackBytes != 30 {
		t.Fatalf("Add rack fields = %d/%d", a.RackTuples, a.RackBytes)
	}
}
