package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestTrafficRecordAndLocality(t *testing.T) {
	var tr Traffic
	if tr.Locality() != 0 {
		t.Fatal("empty traffic locality should be 0")
	}
	tr.Record(true, 100)
	tr.Record(true, 50)
	tr.Record(false, 200)
	if tr.LocalTuples != 2 || tr.RemoteTuples != 1 {
		t.Fatalf("tuples = %d/%d", tr.LocalTuples, tr.RemoteTuples)
	}
	if tr.LocalBytes != 150 || tr.RemoteBytes != 200 {
		t.Fatalf("bytes = %d/%d", tr.LocalBytes, tr.RemoteBytes)
	}
	if got := tr.Locality(); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("Locality() = %f", got)
	}
	if tr.Total() != 3 {
		t.Fatalf("Total() = %d", tr.Total())
	}
	if !strings.Contains(tr.String(), "locality=0.667") {
		t.Fatalf("String() = %q", tr.String())
	}
}

func TestTrafficAdd(t *testing.T) {
	a := Traffic{LocalTuples: 1, RemoteTuples: 2, LocalBytes: 10, RemoteBytes: 20}
	b := Traffic{LocalTuples: 3, RemoteTuples: 4, LocalBytes: 30, RemoteBytes: 40}
	a.Add(b)
	if a.LocalTuples != 4 || a.RemoteTuples != 6 || a.LocalBytes != 40 || a.RemoteBytes != 60 {
		t.Fatalf("Add result %+v", a)
	}
}

func TestImbalance(t *testing.T) {
	tests := []struct {
		name  string
		loads []uint64
		want  float64
	}{
		{"empty", nil, 1},
		{"all zero", []uint64{0, 0}, 1},
		{"perfect", []uint64{5, 5, 5}, 1},
		{"skewed", []uint64{9, 1, 2}, 9.0 / 4.0},
		{"single", []uint64{7}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Imbalance(tt.loads); math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("Imbalance(%v) = %f, want %f", tt.loads, got, tt.want)
			}
		})
	}
}

func TestPropertyImbalanceAtLeastOne(t *testing.T) {
	f := func(loads []uint64) bool {
		return Imbalance(loads) >= 1.0-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesSorted(t *testing.T) {
	s := Series{Label: "x"}
	s.Append(3, 30)
	s.Append(1, 10)
	s.Append(2, 20)
	pts := s.Sorted()
	if pts[0].X != 1 || pts[1].X != 2 || pts[2].X != 3 {
		t.Fatalf("Sorted() = %v", pts)
	}
	// Original order preserved in Points.
	if s.Points[0].X != 3 {
		t.Fatal("Sorted mutated the series")
	}
}

func TestThroughputMeter(t *testing.T) {
	var m ThroughputMeter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Inc(1)
			}
		}()
	}
	wg.Wait()
	if got := m.Snapshot(); got != 800 {
		t.Fatalf("Snapshot() = %d, want 800", got)
	}
	if got := m.Snapshot(); got != 0 {
		t.Fatalf("second Snapshot() = %d, want 0", got)
	}
}

func TestEWMA(t *testing.T) {
	var e EWMA
	e.Alpha = 0.5
	if e.Ready() || e.Value() != 0 {
		t.Fatalf("zero EWMA: ready=%v value=%f", e.Ready(), e.Value())
	}
	if got := e.Observe(10); got != 10 {
		t.Fatalf("first observation = %f, want 10 (initializes)", got)
	}
	if got := e.Observe(0); got != 5 {
		t.Fatalf("second observation = %f, want 5", got)
	}
	if got := e.Observe(5); got != 5 {
		t.Fatalf("third observation = %f, want 5", got)
	}
	if !e.Ready() {
		t.Fatal("not ready after observations")
	}
}

func TestEWMANoSmoothingDefaults(t *testing.T) {
	for _, alpha := range []float64{0, 1, 2, -0.5} {
		e := EWMA{Alpha: alpha}
		e.Observe(3)
		if got := e.Observe(7); got != 7 {
			t.Fatalf("alpha=%f: Observe = %f, want 7 (treated as alpha 1)", alpha, got)
		}
	}
}
