// Package metrics defines the measurements reported by the paper's
// evaluation: stream locality (fraction of tuples passed in memory), load
// balance (most-loaded instance vs average), and throughput series.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Traffic accumulates local/remote tuple counts and byte volumes for one
// stream edge. The zero value is ready to use. Not safe for concurrent
// use: each live-engine executor records into its own per-edge copy
// under an uncontended per-edge lock, and readers fold the copies
// together with Add on demand (Live.Traffic / Live.FieldsTraffic).
type Traffic struct {
	LocalTuples  uint64
	RemoteTuples uint64
	LocalBytes   uint64
	RemoteBytes  uint64
	// RackTuples/RackBytes count the subset of remote transfers that
	// stayed within the sender's rack (hierarchical locality extension);
	// they are included in RemoteTuples/RemoteBytes.
	RackTuples uint64
	RackBytes  uint64
	// ClusterTuples/ClusterBytes count the subset of remote transfers
	// that crossed racks but stayed within the sender's cluster; they
	// are included in RemoteTuples/RemoteBytes and disjoint from
	// RackTuples/RackBytes. Remote minus rack minus cluster is the
	// cross-cluster volume (see InterClusterTuples).
	ClusterTuples uint64
	ClusterBytes  uint64
}

// Record adds one tuple transfer.
func (t *Traffic) Record(local bool, size int) {
	t.RecordTiers(local, local, local, size)
}

// RecordLevel adds one transfer with rack detail: sameServer transfers
// are local; sameRack transfers are remote but stay inside the rack.
// Deployments without a cluster tier never cross one, so everything
// remote counts as same-cluster.
func (t *Traffic) RecordLevel(sameServer, sameRack bool, size int) {
	t.RecordTiers(sameServer, sameRack, true, size)
}

// RecordTiers adds one transfer with full hierarchy detail: sameServer
// transfers are local; sameRack transfers are remote inside the rack;
// sameCluster transfers are remote across racks but inside the cluster;
// the rest crossed the inter-cluster link.
func (t *Traffic) RecordTiers(sameServer, sameRack, sameCluster bool, size int) {
	switch {
	case sameServer:
		t.LocalTuples++
		t.LocalBytes += uint64(size)
	case sameRack:
		t.RemoteTuples++
		t.RemoteBytes += uint64(size)
		t.RackTuples++
		t.RackBytes += uint64(size)
	case sameCluster:
		t.RemoteTuples++
		t.RemoteBytes += uint64(size)
		t.ClusterTuples++
		t.ClusterBytes += uint64(size)
	default:
		t.RemoteTuples++
		t.RemoteBytes += uint64(size)
	}
}

// Add folds other into t.
func (t *Traffic) Add(other Traffic) {
	t.LocalTuples += other.LocalTuples
	t.RemoteTuples += other.RemoteTuples
	t.LocalBytes += other.LocalBytes
	t.RemoteBytes += other.RemoteBytes
	t.RackTuples += other.RackTuples
	t.RackBytes += other.RackBytes
	t.ClusterTuples += other.ClusterTuples
	t.ClusterBytes += other.ClusterBytes
}

// Total returns the number of transfers recorded.
func (t Traffic) Total() uint64 { return t.LocalTuples + t.RemoteTuples }

// Locality returns the fraction of transfers that stayed in memory
// (0 when nothing was recorded).
func (t Traffic) Locality() float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	return float64(t.LocalTuples) / float64(total)
}

// RackLocality returns the fraction of transfers that stayed on one
// server or inside one rack.
func (t Traffic) RackLocality() float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	return float64(t.LocalTuples+t.RackTuples) / float64(total)
}

// ClusterLocality returns the fraction of transfers that stayed inside
// one cluster (on one server, inside one rack, or across racks of the
// same cluster).
func (t Traffic) ClusterLocality() float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	return float64(t.LocalTuples+t.RackTuples+t.ClusterTuples) / float64(total)
}

// InterClusterTuples returns the number of transfers that crossed the
// inter-cluster link.
func (t Traffic) InterClusterTuples() uint64 {
	return t.RemoteTuples - t.RackTuples - t.ClusterTuples
}

// InterClusterBytes returns the byte volume that crossed the
// inter-cluster link.
func (t Traffic) InterClusterBytes() uint64 {
	return t.RemoteBytes - t.RackBytes - t.ClusterBytes
}

// String formats the traffic for experiment logs.
func (t Traffic) String() string {
	return fmt.Sprintf("local=%d remote=%d locality=%.3f", t.LocalTuples, t.RemoteTuples, t.Locality())
}

// Imbalance returns max(loads)/avg(loads), the paper's load-balance
// measure (Fig. 11b); 1.0 is perfect balance. Zero-total or empty loads
// report 1.0.
func Imbalance(loads []uint64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var total, max uint64
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 1
	}
	avg := float64(total) / float64(len(loads))
	return float64(max) / avg
}

// Series is a labelled sequence of (x, y) measurements, the unit the
// experiment harness prints for every figure.
type Series struct {
	Label  string
	Points []Point
}

// Point is one measurement.
type Point struct {
	X float64
	Y float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Sorted returns the points ordered by X.
func (s Series) Sorted() []Point {
	out := append([]Point(nil), s.Points...)
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return out
}

// EWMA is an exponentially weighted moving average with smoothing factor
// Alpha in (0, 1]: higher alpha weighs recent observations more. The
// first observation initializes the average. The zero value (Alpha 0)
// behaves as Alpha = 1, i.e. no smoothing. Not safe for concurrent use.
//
// The control plane smooths its locality and imbalance signals with an
// EWMA before acting on them, so a single skewed statistics window does
// not trigger (or suppress) a reconfiguration on its own.
type EWMA struct {
	// Alpha is the smoothing factor; values outside (0, 1] are treated
	// as 1.
	Alpha float64

	value float64
	ready bool
}

// Observe folds one sample into the average and returns the new value.
func (e *EWMA) Observe(x float64) float64 {
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 1
	}
	if !e.ready {
		e.value = x
		e.ready = true
		return e.value
	}
	e.value = a*x + (1-a)*e.value
	return e.value
}

// Value returns the current average (0 before the first observation).
func (e *EWMA) Value() float64 { return e.value }

// Ready reports whether at least one sample has been observed.
func (e *EWMA) Ready() bool { return e.ready }

// FaultStats is one snapshot of the fault-tolerance measurements.
type FaultStats struct {
	// Checkpoints, CheckpointKeys and CheckpointBytes count completed
	// checkpoints and their cumulative volume (incremental: only dirty
	// keys are written).
	Checkpoints     int    `json:"checkpoints"`
	CheckpointKeys  uint64 `json:"checkpoint_keys"`
	CheckpointBytes uint64 `json:"checkpoint_bytes"`
	// LastCheckpointDuration and TotalCheckpointDuration measure the
	// wall-clock cost of checkpointing (the stream keeps flowing
	// meanwhile; this is supervisor-side time, not stream stall).
	LastCheckpointDuration  time.Duration `json:"last_checkpoint_duration_ns"`
	TotalCheckpointDuration time.Duration `json:"total_checkpoint_duration_ns"`

	// Failures counts confirmed server failures;
	// LastDetectionLatency is silence-to-confirmation for the most
	// recent one.
	Failures             int           `json:"failures"`
	LastDetectionLatency time.Duration `json:"last_detection_latency_ns"`

	// Recoveries counts completed recoveries; LastRecoveryDuration is
	// the arm-to-restored wall time of the most recent one;
	// KeysRecovered and KeysRestored are cumulative reassigned keys and
	// the subset restored from a checkpoint; TuplesLost is the engine's
	// cumulative loss counter at the last recovery.
	Recoveries           int           `json:"recoveries"`
	LastRecoveryDuration time.Duration `json:"last_recovery_duration_ns"`
	KeysRecovered        uint64        `json:"keys_recovered"`
	KeysRestored         uint64        `json:"keys_restored"`
	TuplesLost           uint64        `json:"tuples_lost"`
}

// FaultMeter accumulates the fault-tolerance subsystem's measurements:
// checkpoint volume and duration, failure-detection latency, recovery
// time and tuple loss. Safe for concurrent use.
type FaultMeter struct {
	mu sync.Mutex
	st FaultStats
}

// RecordCheckpoint folds one completed checkpoint in.
func (m *FaultMeter) RecordCheckpoint(keys int, bytes uint64, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.st.Checkpoints++
	m.st.CheckpointKeys += uint64(keys)
	m.st.CheckpointBytes += bytes
	m.st.LastCheckpointDuration = d
	m.st.TotalCheckpointDuration += d
}

// RecordFailure folds one confirmed failure in.
func (m *FaultMeter) RecordFailure(detectionLatency time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.st.Failures++
	m.st.LastDetectionLatency = detectionLatency
}

// RecordRecovery folds one completed recovery in.
func (m *FaultMeter) RecordRecovery(d time.Duration, keysMoved, keysRestored int, tuplesLost uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.st.Recoveries++
	m.st.LastRecoveryDuration = d
	m.st.KeysRecovered += uint64(keysMoved)
	m.st.KeysRestored += uint64(keysRestored)
	m.st.TuplesLost = tuplesLost
}

// Snapshot returns the accumulated measurements.
func (m *FaultMeter) Snapshot() FaultStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.st
}

// ThroughputMeter counts processed tuples over externally supplied time
// windows; used by the live engine. Safe for concurrent use.
type ThroughputMeter struct {
	mu    sync.Mutex
	count uint64
}

// Inc records n processed tuples.
func (m *ThroughputMeter) Inc(n uint64) {
	m.mu.Lock()
	m.count += n
	m.mu.Unlock()
}

// Snapshot returns the count accumulated since the previous Snapshot and
// resets it.
func (m *ThroughputMeter) Snapshot() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.count
	m.count = 0
	return c
}
