package metrics

import "sync/atomic"

// FlushReason says why a pending data batch was written to the socket.
type FlushReason uint8

const (
	// FlushSize: the batch reached the configured byte threshold.
	FlushSize FlushReason = iota
	// FlushTimer: the batch aged past the configured flush interval.
	FlushTimer
	// FlushControl: a control message (migration, propagation marker,
	// heartbeat) needed the FIFO stream, forcing the batch out first.
	FlushControl
	// FlushClose: the node shut down and drained its pending batch.
	FlushClose
)

// WireStats is a snapshot of the binary wire protocol's counters.
type WireStats struct {
	// FramesSent / TuplesSent / BytesSent cover outgoing data frames
	// (batched tuples); ControlSent / ControlBytesSent cover outgoing
	// control frames (gob traffic).
	FramesSent       uint64 `json:"frames_sent"`
	TuplesSent       uint64 `json:"tuples_sent"`
	BytesSent        uint64 `json:"bytes_sent"`
	ControlSent      uint64 `json:"control_sent"`
	ControlBytesSent uint64 `json:"control_bytes_sent"`

	// FlushSize/FlushTimer/FlushControl/FlushClose count data-frame
	// flushes by reason; their sum equals FramesSent.
	FlushSize    uint64 `json:"flush_size"`
	FlushTimer   uint64 `json:"flush_timer"`
	FlushControl uint64 `json:"flush_control"`
	FlushClose   uint64 `json:"flush_close"`

	// Receive-side mirrors.
	FramesReceived   uint64 `json:"frames_received"`
	TuplesReceived   uint64 `json:"tuples_received"`
	BytesReceived    uint64 `json:"bytes_received"`
	ControlReceived  uint64 `json:"control_received"`
	ControlBytesRecv uint64 `json:"control_bytes_received"`

	// EncodeNanos is the cumulative wall time spent binary-encoding
	// tuples into batch buffers.
	EncodeNanos uint64 `json:"encode_nanos"`
}

// TuplesPerFrame is the mean data batch size actually achieved.
func (s WireStats) TuplesPerFrame() float64 {
	if s.FramesSent == 0 {
		return 0
	}
	return float64(s.TuplesSent) / float64(s.FramesSent)
}

// EncodeNsPerTuple is the mean per-tuple binary encode cost.
func (s WireStats) EncodeNsPerTuple() float64 {
	if s.TuplesSent == 0 {
		return 0
	}
	return float64(s.EncodeNanos) / float64(s.TuplesSent)
}

// WireMeter accumulates the wire protocol's counters. Every method is a
// handful of atomic adds, so the transport can call them from its send
// and receive paths without shared locks. The zero value is ready to
// use.
type WireMeter struct {
	framesSent       atomic.Uint64
	tuplesSent       atomic.Uint64
	bytesSent        atomic.Uint64
	controlSent      atomic.Uint64
	controlBytesSent atomic.Uint64

	flushSize    atomic.Uint64
	flushTimer   atomic.Uint64
	flushControl atomic.Uint64
	flushClose   atomic.Uint64

	framesReceived   atomic.Uint64
	tuplesReceived   atomic.Uint64
	bytesReceived    atomic.Uint64
	controlReceived  atomic.Uint64
	controlBytesRecv atomic.Uint64

	encodeNanos atomic.Uint64
}

// RecordFrameSent folds in one flushed data frame of tuples tuples and
// bytes total frame bytes, flushed for the given reason.
func (m *WireMeter) RecordFrameSent(tuples, bytes int, reason FlushReason) {
	m.framesSent.Add(1)
	m.tuplesSent.Add(uint64(tuples))
	m.bytesSent.Add(uint64(bytes))
	switch reason {
	case FlushSize:
		m.flushSize.Add(1)
	case FlushTimer:
		m.flushTimer.Add(1)
	case FlushControl:
		m.flushControl.Add(1)
	case FlushClose:
		m.flushClose.Add(1)
	}
}

// RecordControlSent folds in one outgoing control frame.
func (m *WireMeter) RecordControlSent(bytes int) {
	m.controlSent.Add(1)
	m.controlBytesSent.Add(uint64(bytes))
}

// RecordFrameReceived folds in one decoded data frame.
func (m *WireMeter) RecordFrameReceived(tuples, bytes int) {
	m.framesReceived.Add(1)
	m.tuplesReceived.Add(uint64(tuples))
	m.bytesReceived.Add(uint64(bytes))
}

// RecordControlReceived folds in one decoded control frame.
func (m *WireMeter) RecordControlReceived(bytes int) {
	m.controlReceived.Add(1)
	m.controlBytesRecv.Add(uint64(bytes))
}

// RecordEncode folds in the wall time of one tuple's binary encode.
func (m *WireMeter) RecordEncode(nanos int64) {
	if nanos > 0 {
		m.encodeNanos.Add(uint64(nanos))
	}
}

// Snapshot returns the accumulated counters. The fields are read one
// atomic at a time, so a snapshot taken mid-flush may be off by one
// frame — fine for monitoring, which is all this is for.
func (m *WireMeter) Snapshot() WireStats {
	return WireStats{
		FramesSent:       m.framesSent.Load(),
		TuplesSent:       m.tuplesSent.Load(),
		BytesSent:        m.bytesSent.Load(),
		ControlSent:      m.controlSent.Load(),
		ControlBytesSent: m.controlBytesSent.Load(),
		FlushSize:        m.flushSize.Load(),
		FlushTimer:       m.flushTimer.Load(),
		FlushControl:     m.flushControl.Load(),
		FlushClose:       m.flushClose.Load(),
		FramesReceived:   m.framesReceived.Load(),
		TuplesReceived:   m.tuplesReceived.Load(),
		BytesReceived:    m.bytesReceived.Load(),
		ControlReceived:  m.controlReceived.Load(),
		ControlBytesRecv: m.controlBytesRecv.Load(),
		EncodeNanos:      m.encodeNanos.Load(),
	}
}
