package metrics

import (
	"math/bits"
	"sync/atomic"
)

// FlushReason says why a pending data batch was written to the socket.
type FlushReason uint8

const (
	// FlushSize: the batch reached the configured byte threshold.
	FlushSize FlushReason = iota
	// FlushTimer: the batch aged past the configured flush interval.
	FlushTimer
	// FlushControl: a control message (migration, propagation marker,
	// heartbeat) needed the FIFO stream, forcing the batch out first.
	FlushControl
	// FlushClose: the node shut down and drained its pending batch.
	FlushClose
)

// NumWireTiers is the number of locality tiers the wire meter accounts
// separately (mirrors cluster.NumTiers): same server, same rack, same
// cluster across racks, and the inter-cluster link.
const NumWireTiers = 4

// InterClusterTier indexes the cross-cluster entry of the per-tier wire
// counters — the tier the federation layer's 100× cost gate prices.
const InterClusterTier = NumWireTiers - 1

// FlushSizeBuckets is the number of log2 buckets in the flush-size
// histogram: bucket 0 counts data frames of up to 64 wire bytes and
// each subsequent bucket doubles the bound, so the last bucket opens at
// 2 MiB. The histogram is how the adaptive flush tuner (and operators)
// see the batch-size distribution rather than just its mean.
const FlushSizeBuckets = 16

// WireStats is a snapshot of the binary wire protocol's counters.
type WireStats struct {
	// FramesSent / TuplesSent / BytesSent cover outgoing data frames
	// (batched tuples); ControlSent / ControlBytesSent cover outgoing
	// control frames (the versioned varint control codec).
	FramesSent       uint64 `json:"frames_sent"`
	TuplesSent       uint64 `json:"tuples_sent"`
	BytesSent        uint64 `json:"bytes_sent"`
	ControlSent      uint64 `json:"control_sent"`
	ControlBytesSent uint64 `json:"control_bytes_sent"`

	// FlushSize/FlushTimer/FlushControl/FlushClose count data-frame
	// flushes by reason; their sum equals FramesSent.
	FlushSize    uint64 `json:"flush_size"`
	FlushTimer   uint64 `json:"flush_timer"`
	FlushControl uint64 `json:"flush_control"`
	FlushClose   uint64 `json:"flush_close"`

	// TierTuplesSent/TierBytesSent break the sent data frames down by
	// locality tier of the (sender, receiver) pair — same server, same
	// rack, same cluster, inter-cluster — when the transport was built
	// with a PeerTier classifier; all-zero otherwise. Their sums equal
	// TuplesSent/BytesSent then.
	TierTuplesSent [NumWireTiers]uint64 `json:"tier_tuples_sent"`
	TierBytesSent  [NumWireTiers]uint64 `json:"tier_bytes_sent"`

	// WritevCalls counts vectored writes handed to the kernel and
	// WritevFrames the frames they carried; WritevFrames >= WritevCalls,
	// and the gap is the syscall batching the per-connection flusher
	// buys (a dictionary announcement, a data frame and a control frame
	// that used to cost three writes now cost one).
	WritevCalls  uint64 `json:"writev_calls"`
	WritevFrames uint64 `json:"writev_frames"`

	// FlushSizeHist is the log2 histogram of sent data-frame wire sizes
	// (bucket i counts frames of up to 64<<i bytes; the last bucket is
	// unbounded). FlushRetunes counts live flush-policy changes applied
	// through the adaptive tuner.
	FlushSizeHist [FlushSizeBuckets]uint64 `json:"flush_size_hist"`
	FlushRetunes  uint64                   `json:"flush_retunes"`

	// Compression counters. RawBytesSent is what the sent data frames
	// would have cost in the raw (un-interned, uncompressed) encoding,
	// headers included; BytesSent above is what they actually cost on
	// the wire. CompressedFramesSent counts data frames that went out LZ-
	// wrapped (the rest fell back to their raw form because compression
	// did not shrink them). DictFramesSent/DictEntriesSent/DictBytesSent
	// cover the in-band dictionary announcements; DictHits/DictMisses
	// count string fields encoded as dictionary references vs. inline.
	RawBytesSent         uint64 `json:"raw_bytes_sent"`
	CompressedFramesSent uint64 `json:"compressed_frames_sent"`
	DictFramesSent       uint64 `json:"dict_frames_sent"`
	DictEntriesSent      uint64 `json:"dict_entries_sent"`
	DictBytesSent        uint64 `json:"dict_bytes_sent"`
	DictHits             uint64 `json:"dict_hits"`
	DictMisses           uint64 `json:"dict_misses"`

	// Receive-side mirrors.
	FramesReceived       uint64 `json:"frames_received"`
	TuplesReceived       uint64 `json:"tuples_received"`
	BytesReceived        uint64 `json:"bytes_received"`
	ControlReceived      uint64 `json:"control_received"`
	ControlBytesRecv     uint64 `json:"control_bytes_received"`
	CompressedFramesRecv uint64 `json:"compressed_frames_received"`
	DictFramesRecv       uint64 `json:"dict_frames_received"`
	DictEntriesRecv      uint64 `json:"dict_entries_received"`

	// EncodeNanos is the cumulative wall time spent binary-encoding
	// tuples into batch buffers.
	EncodeNanos uint64 `json:"encode_nanos"`
}

// TuplesPerFrame is the mean data batch size actually achieved.
func (s WireStats) TuplesPerFrame() float64 {
	if s.FramesSent == 0 {
		return 0
	}
	return float64(s.TuplesSent) / float64(s.FramesSent)
}

// EncodeNsPerTuple is the mean per-tuple binary encode cost.
func (s WireStats) EncodeNsPerTuple() float64 {
	if s.TuplesSent == 0 {
		return 0
	}
	return float64(s.EncodeNanos) / float64(s.TuplesSent)
}

// CompressionRatio is raw-equivalent bytes over actual on-wire bytes
// for the data path (data frames plus the dictionary announcements that
// enable them). 1.0 means compression bought nothing; 2.0 means the
// wire carried half the raw bytes.
func (s WireStats) CompressionRatio() float64 {
	wire := s.BytesSent + s.DictBytesSent
	if wire == 0 {
		return 0
	}
	return float64(s.RawBytesSent) / float64(wire)
}

// WireBytesPerTuple is the mean on-wire cost of one data tuple,
// dictionary announcements amortized in.
func (s WireStats) WireBytesPerTuple() float64 {
	if s.TuplesSent == 0 {
		return 0
	}
	return float64(s.BytesSent+s.DictBytesSent) / float64(s.TuplesSent)
}

// InterClusterBytesPerTuple is the cross-cluster wire volume amortized
// over every sent data tuple — the figure of merit for hierarchical
// partitioning: keeping correlated keys inside one cluster drives it
// toward zero even while total traffic is unchanged. Zero when no
// PeerTier classifier was installed or nothing was sent.
func (s WireStats) InterClusterBytesPerTuple() float64 {
	if s.TuplesSent == 0 {
		return 0
	}
	return float64(s.TierBytesSent[InterClusterTier]) / float64(s.TuplesSent)
}

// SyscallsPerFlush is the mean number of vectored writes per sent data
// frame — the writev coalescing factor. The pre-writev transport paid
// at least 1.0 (one write per data frame, plus extra writes for
// dictionary and control frames); the flusher pays 1.0 only when every
// flush finds an empty queue, and strictly less whenever frames
// coalesce.
func (s WireStats) SyscallsPerFlush() float64 {
	if s.FramesSent == 0 {
		return 0
	}
	return float64(s.WritevCalls) / float64(s.FramesSent)
}

// FramesPerWritev is the mean number of frames each vectored write
// carried.
func (s WireStats) FramesPerWritev() float64 {
	if s.WritevCalls == 0 {
		return 0
	}
	return float64(s.WritevFrames) / float64(s.WritevCalls)
}

// DictHitRate is the fraction of string fields sent as dictionary
// references rather than inline bytes.
func (s WireStats) DictHitRate() float64 {
	total := s.DictHits + s.DictMisses
	if total == 0 {
		return 0
	}
	return float64(s.DictHits) / float64(total)
}

// WireMeter accumulates the wire protocol's counters. Every method is a
// handful of atomic adds, so the transport can call them from its send
// and receive paths without shared locks. The zero value is ready to
// use.
type WireMeter struct {
	framesSent       atomic.Uint64
	tuplesSent       atomic.Uint64
	bytesSent        atomic.Uint64
	controlSent      atomic.Uint64
	controlBytesSent atomic.Uint64

	flushSize    atomic.Uint64
	flushTimer   atomic.Uint64
	flushControl atomic.Uint64
	flushClose   atomic.Uint64

	tierTuplesSent [NumWireTiers]atomic.Uint64
	tierBytesSent  [NumWireTiers]atomic.Uint64

	writevCalls   atomic.Uint64
	writevFrames  atomic.Uint64
	flushSizeHist [FlushSizeBuckets]atomic.Uint64
	flushRetunes  atomic.Uint64

	rawBytesSent         atomic.Uint64
	compressedFramesSent atomic.Uint64
	dictFramesSent       atomic.Uint64
	dictEntriesSent      atomic.Uint64
	dictBytesSent        atomic.Uint64
	dictHits             atomic.Uint64
	dictMisses           atomic.Uint64

	framesReceived       atomic.Uint64
	tuplesReceived       atomic.Uint64
	bytesReceived        atomic.Uint64
	controlReceived      atomic.Uint64
	controlBytesRecv     atomic.Uint64
	compressedFramesRecv atomic.Uint64
	dictFramesRecv       atomic.Uint64
	dictEntriesRecv      atomic.Uint64

	encodeNanos atomic.Uint64
}

// RecordDataFrameSent folds in one flushed data frame: tuples tuples,
// wireBytes actually written (header included, compressed or not),
// rawBytes the raw-encoding equivalent, flushed for the given reason.
func (m *WireMeter) RecordDataFrameSent(tuples, wireBytes, rawBytes int, compressed bool, reason FlushReason) {
	m.framesSent.Add(1)
	m.tuplesSent.Add(uint64(tuples))
	m.bytesSent.Add(uint64(wireBytes))
	m.rawBytesSent.Add(uint64(rawBytes))
	m.flushSizeHist[flushSizeBucket(wireBytes)].Add(1)
	if compressed {
		m.compressedFramesSent.Add(1)
	}
	switch reason {
	case FlushSize:
		m.flushSize.Add(1)
	case FlushTimer:
		m.flushTimer.Add(1)
	case FlushControl:
		m.flushControl.Add(1)
	case FlushClose:
		m.flushClose.Add(1)
	}
}

// RecordTierSent folds one sent data frame into the per-tier
// breakdown; tier indexes the Tier* hierarchy (out-of-range tiers
// count as inter-cluster, the conservative class). Called alongside
// RecordDataFrameSent when the transport knows the peer's tier.
func (m *WireMeter) RecordTierSent(tier, tuples, wireBytes int) {
	if tier < 0 || tier >= NumWireTiers {
		tier = InterClusterTier
	}
	m.tierTuplesSent[tier].Add(uint64(tuples))
	m.tierBytesSent[tier].Add(uint64(wireBytes))
}

// RecordDictFrameSent folds in one outgoing dictionary-announce frame
// of entries new entries and bytes total frame bytes.
func (m *WireMeter) RecordDictFrameSent(entries, bytes int) {
	m.dictFramesSent.Add(1)
	m.dictEntriesSent.Add(uint64(entries))
	m.dictBytesSent.Add(uint64(bytes))
}

// RecordDictLookups folds in one batch's dictionary reference (hit) and
// inline (miss) string-field counts.
func (m *WireMeter) RecordDictLookups(hits, misses int) {
	m.dictHits.Add(uint64(hits))
	m.dictMisses.Add(uint64(misses))
}

// RecordControlSent folds in one outgoing control frame.
func (m *WireMeter) RecordControlSent(bytes int) {
	m.controlSent.Add(1)
	m.controlBytesSent.Add(uint64(bytes))
}

// RecordWritev folds in one vectored write carrying frames frames.
func (m *WireMeter) RecordWritev(frames int) {
	m.writevCalls.Add(1)
	m.writevFrames.Add(uint64(frames))
}

// RecordFlushRetune folds in one live flush-policy change.
func (m *WireMeter) RecordFlushRetune() {
	m.flushRetunes.Add(1)
}

// flushSizeBucket maps a data frame's wire size to its log2 histogram
// bucket: 0 for <=64 bytes, doubling per bucket, the last unbounded.
func flushSizeBucket(wireBytes int) int {
	if wireBytes <= 64 {
		return 0
	}
	b := bits.Len64(uint64(wireBytes-1)) - 6
	if b >= FlushSizeBuckets {
		return FlushSizeBuckets - 1
	}
	return b
}

// RecordFrameReceived folds in one decoded data frame.
func (m *WireMeter) RecordFrameReceived(tuples, bytes int) {
	m.framesReceived.Add(1)
	m.tuplesReceived.Add(uint64(tuples))
	m.bytesReceived.Add(uint64(bytes))
}

// RecordControlReceived folds in one decoded control frame.
func (m *WireMeter) RecordControlReceived(bytes int) {
	m.controlReceived.Add(1)
	m.controlBytesRecv.Add(uint64(bytes))
}

// RecordDictFrameReceived folds in one applied dictionary-announce
// frame.
func (m *WireMeter) RecordDictFrameReceived(entries, bytes int) {
	m.dictFramesRecv.Add(1)
	m.dictEntriesRecv.Add(uint64(entries))
	m.bytesReceived.Add(uint64(bytes))
}

// RecordCompressedFrameReceived marks the frame about to be recorded as
// having arrived LZ-wrapped.
func (m *WireMeter) RecordCompressedFrameReceived() {
	m.compressedFramesRecv.Add(1)
}

// RecordEncode folds in the wall time of one tuple's binary encode.
func (m *WireMeter) RecordEncode(nanos int64) {
	if nanos > 0 {
		m.encodeNanos.Add(uint64(nanos))
	}
}

// Snapshot returns the accumulated counters. The fields are read one
// atomic at a time, so a snapshot taken mid-flush may be off by one
// frame — fine for monitoring, which is all this is for.
func (m *WireMeter) Snapshot() WireStats {
	var hist [FlushSizeBuckets]uint64
	for i := range hist {
		hist[i] = m.flushSizeHist[i].Load()
	}
	var tierTuples, tierBytes [NumWireTiers]uint64
	for i := 0; i < NumWireTiers; i++ {
		tierTuples[i] = m.tierTuplesSent[i].Load()
		tierBytes[i] = m.tierBytesSent[i].Load()
	}
	return WireStats{
		WritevCalls:    m.writevCalls.Load(),
		WritevFrames:   m.writevFrames.Load(),
		FlushSizeHist:  hist,
		FlushRetunes:   m.flushRetunes.Load(),
		TierTuplesSent: tierTuples,
		TierBytesSent:  tierBytes,

		FramesSent:           m.framesSent.Load(),
		TuplesSent:           m.tuplesSent.Load(),
		BytesSent:            m.bytesSent.Load(),
		ControlSent:          m.controlSent.Load(),
		ControlBytesSent:     m.controlBytesSent.Load(),
		FlushSize:            m.flushSize.Load(),
		FlushTimer:           m.flushTimer.Load(),
		FlushControl:         m.flushControl.Load(),
		FlushClose:           m.flushClose.Load(),
		RawBytesSent:         m.rawBytesSent.Load(),
		CompressedFramesSent: m.compressedFramesSent.Load(),
		DictFramesSent:       m.dictFramesSent.Load(),
		DictEntriesSent:      m.dictEntriesSent.Load(),
		DictBytesSent:        m.dictBytesSent.Load(),
		DictHits:             m.dictHits.Load(),
		DictMisses:           m.dictMisses.Load(),
		FramesReceived:       m.framesReceived.Load(),
		TuplesReceived:       m.tuplesReceived.Load(),
		BytesReceived:        m.bytesReceived.Load(),
		ControlReceived:      m.controlReceived.Load(),
		ControlBytesRecv:     m.controlBytesRecv.Load(),
		CompressedFramesRecv: m.compressedFramesRecv.Load(),
		DictFramesRecv:       m.dictFramesRecv.Load(),
		DictEntriesRecv:      m.dictEntriesRecv.Load(),
		EncodeNanos:          m.encodeNanos.Load(),
	}
}
