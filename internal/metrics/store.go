package metrics

import (
	"sync"
	"time"
)

// StoreStats is one snapshot of the tiered checkpoint store's
// measurements, served on the control plane's /checkpoints endpoint
// (under "store") and by the public StateStoreStats API.
type StoreStats struct {
	// Segments and SegmentBytes describe the live segment set named by
	// the manifest (gauges, refreshed by the store on every mutation);
	// Version and BaseVersion are the latest stamped checkpoint version
	// and the compaction floor — point-in-time reads are served for any
	// version in [BaseVersion, Version].
	Segments     int    `json:"segments"`
	SegmentBytes uint64 `json:"segment_bytes"`
	Version      uint64 `json:"version"`
	BaseVersion  uint64 `json:"base_version"`

	// Appends, AppendRecords and AppendBytes count persisted checkpoint
	// batches and their cumulative volume.
	Appends       uint64 `json:"appends"`
	AppendRecords uint64 `json:"append_records"`
	AppendBytes   uint64 `json:"append_bytes"`

	// Compactions counts completed compaction runs; ReclaimedBytes and
	// RetiredSegments the on-disk volume and segment files they
	// superseded (reclaimed once retention lets the files go).
	Compactions     uint64 `json:"compactions"`
	ReclaimedBytes  uint64 `json:"reclaimed_bytes"`
	RetiredSegments uint64 `json:"retired_segments"`

	// ReplayedRecords counts records decoded from segments when the
	// store was (re)opened — after a compaction this is bounded by the
	// live key count, not the append history.
	ReplayedRecords uint64 `json:"replayed_records"`

	// Lookups and Scans count point-in-time reads;
	// LastLookupDuration/TotalLookupDuration measure their latency.
	Lookups             uint64        `json:"lookups"`
	Scans               uint64        `json:"scans"`
	LastLookupDuration  time.Duration `json:"last_lookup_duration_ns"`
	TotalLookupDuration time.Duration `json:"total_lookup_duration_ns"`
}

// StoreMeter accumulates the tiered checkpoint store's measurements:
// segment volume, compaction work, and read latency. Safe for
// concurrent use.
type StoreMeter struct {
	mu sync.Mutex
	st StoreStats
}

// SetGauges refreshes the manifest-shaped gauges.
func (m *StoreMeter) SetGauges(segments int, segmentBytes, version, baseVersion uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.st.Segments = segments
	m.st.SegmentBytes = segmentBytes
	m.st.Version = version
	m.st.BaseVersion = baseVersion
}

// RecordAppend folds one persisted checkpoint batch in.
func (m *StoreMeter) RecordAppend(records int, bytes uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.st.Appends++
	m.st.AppendRecords += uint64(records)
	m.st.AppendBytes += bytes
}

// RecordCompaction folds one completed compaction run in.
func (m *StoreMeter) RecordCompaction(reclaimedBytes uint64, retiredSegments int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.st.Compactions++
	m.st.ReclaimedBytes += reclaimedBytes
	m.st.RetiredSegments += uint64(retiredSegments)
}

// RecordReplay folds the records decoded while (re)opening the store.
func (m *StoreMeter) RecordReplay(records int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.st.ReplayedRecords += uint64(records)
}

// RecordLookup folds one point-in-time key lookup in.
func (m *StoreMeter) RecordLookup(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.st.Lookups++
	m.st.LastLookupDuration = d
	m.st.TotalLookupDuration += d
}

// RecordScan folds one point-in-time operator scan in.
func (m *StoreMeter) RecordScan(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.st.Scans++
	m.st.LastLookupDuration = d
	m.st.TotalLookupDuration += d
}

// Snapshot returns the accumulated measurements.
func (m *StoreMeter) Snapshot() StoreStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.st
}
