package statestore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/locastream/locastream/internal/engine"
)

// fuzzSeedSegment builds a well-formed segment stream covering every
// record shape: plain, nil-data, split with replicas.
func fuzzSeedSegment() []byte {
	buf := []byte(segMagic)
	buf = appendRecord(buf, rec{version: 1, state: engine.KeyState{Op: "count", Key: "fr", Inst: 2, Data: []byte("41")}})
	buf = appendRecord(buf, rec{version: 2, state: engine.KeyState{Op: "count", Key: "de", Inst: 0}})
	buf = appendRecord(buf, rec{version: 3, state: engine.KeyState{
		Op: "count", Key: "hot", Inst: 1, Data: []byte("x"), Split: true, Replicas: []int{1, 2},
	}})
	return buf
}

func fuzzSeedManifest() []byte {
	return encodeManifest(&manifest{
		baseVersion: 3,
		nextSegID:   5,
		live: []segmentMeta{
			{id: 3, kind: kindBase, records: 12, bytes: 900, minVer: 1, maxVer: 3},
			{id: 4, kind: kindDelta, records: 2, bytes: 120, minVer: 4, maxVer: 5},
		},
		retired: []uint64{1, 2},
	})
}

// FuzzSegmentDecode feeds arbitrary bytes to both on-disk decoders —
// the segment reader and the manifest codec. Neither may panic or
// over-allocate; whatever the segment reader accepts must re-encode to
// records the reader accepts again (decode/encode round-trip safety).
func FuzzSegmentDecode(f *testing.F) {
	f.Add(fuzzSeedSegment())
	f.Add(fuzzSeedManifest())
	f.Add([]byte(segMagic))
	f.Add([]byte(manifestMagic))
	f.Add(fuzzSeedSegment()[:len(fuzzSeedSegment())-3]) // torn tail
	f.Fuzz(func(t *testing.T, raw []byte) {
		var decoded []rec
		if err := readSegment(bytes.NewReader(raw), func(r rec) error {
			decoded = append(decoded, r)
			return nil
		}); err == nil {
			// Round-trip: re-encode everything the reader accepted and
			// read it back; the records must survive unchanged.
			buf := []byte(segMagic)
			for _, r := range decoded {
				buf = appendRecord(buf, r)
			}
			i := 0
			if err := readSegment(bytes.NewReader(buf), func(r rec) error {
				if i >= len(decoded) {
					t.Fatalf("round-trip produced extra record %+v", r)
				}
				want := decoded[i]
				if r.version != want.version || r.state.Op != want.state.Op ||
					r.state.Key != want.state.Key || r.state.Inst != want.state.Inst ||
					r.state.Split != want.state.Split ||
					!bytes.Equal(r.state.Data, want.state.Data) {
					t.Fatalf("round-trip record %d = %+v, want %+v", i, r, want)
				}
				i++
				return nil
			}); err != nil {
				t.Fatalf("round-trip re-read failed: %v", err)
			}
			if i != len(decoded) {
				t.Fatalf("round-trip kept %d of %d records", i, len(decoded))
			}
		}
		if m, err := decodeManifest(raw); err == nil {
			// Accepted manifests must round-trip through the encoder.
			if _, err := decodeManifest(encodeManifest(m)); err != nil {
				t.Fatalf("manifest round-trip failed: %v", err)
			}
		}
	})
}

// TestGenerateFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz when GEN_FUZZ_CORPUS=1 is set, mirroring the transport
// package's convention: committed seeds run on every plain `go test`
// and give -fuzz sessions known-interesting inputs to mutate.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("set GEN_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	write := func(target, name string, data []byte) {
		t.Helper()
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seg := fuzzSeedSegment()
	write("FuzzSegmentDecode", "segment_mixed_records", seg)
	write("FuzzSegmentDecode", "segment_torn_tail", seg[:len(seg)-3])
	write("FuzzSegmentDecode", "segment_bare_magic", []byte(segMagic))
	corrupt := append([]byte(nil), seg...)
	corrupt[10] ^= 0xff
	write("FuzzSegmentDecode", "segment_flipped_byte", corrupt)
	write("FuzzSegmentDecode", "manifest_two_segments", fuzzSeedManifest())
	write("FuzzSegmentDecode", "manifest_bare_magic", []byte(manifestMagic))
	write("FuzzSegmentDecode", "oversized_length_prefix",
		append([]byte(segMagic), 0xff, 0xff, 0xff, 0xff, 0x7f))
}
