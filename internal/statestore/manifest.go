package statestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// The manifest is the store's catalog: the only authority on which
// segment files are live, what the compaction floor is, and what the
// next segment id will be. It is replaced atomically (write to a temp
// file, fsync, rename), so the store's durable state always moves
// between two consistent catalogs and a crash mid-compaction leaves at
// worst orphan segment files, never a half-retired image.
//
// On-disk layout (all integers unsigned varints unless noted):
//
//	magic "LSM1"
//	baseVersion            — compaction floor (0 before any compaction)
//	nextSegID              — id the next created segment will take
//	nLive                  — live segment entries, oldest first:
//	  id, kind byte (0 delta / 1 base), records, bytes, minVer, maxVer
//	nRetired               — superseded segments kept under retention:
//	  id
//	crc32 over everything above, 4 B LE
const (
	manifestMagic = "LSM1"
	manifestName  = "MANIFEST"

	kindDelta byte = 0
	kindBase  byte = 1

	// maxManifestSegments bounds the segment count decoded from disk so
	// a corrupt counter cannot drive allocation.
	maxManifestSegments = 1 << 20
)

// segmentMeta is one live segment's catalog entry.
type segmentMeta struct {
	id      uint64
	kind    byte
	records uint64
	bytes   uint64
	minVer  uint64
	maxVer  uint64
}

// manifest is the in-memory catalog.
type manifest struct {
	baseVersion uint64
	nextSegID   uint64
	live        []segmentMeta
	retired     []uint64
}

func segmentName(id uint64) string { return fmt.Sprintf("seg-%08d.seg", id) }

func encodeManifest(m *manifest) []byte {
	buf := []byte(manifestMagic)
	buf = binary.AppendUvarint(buf, m.baseVersion)
	buf = binary.AppendUvarint(buf, m.nextSegID)
	buf = binary.AppendUvarint(buf, uint64(len(m.live)))
	for _, s := range m.live {
		buf = binary.AppendUvarint(buf, s.id)
		buf = append(buf, s.kind)
		buf = binary.AppendUvarint(buf, s.records)
		buf = binary.AppendUvarint(buf, s.bytes)
		buf = binary.AppendUvarint(buf, s.minVer)
		buf = binary.AppendUvarint(buf, s.maxVer)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.retired)))
	for _, id := range m.retired {
		buf = binary.AppendUvarint(buf, id)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func decodeManifest(p []byte) (*manifest, error) {
	if len(p) < len(manifestMagic)+4 {
		return nil, errManifestValue
	}
	if string(p[:len(manifestMagic)]) != manifestMagic {
		return nil, errManifestValue
	}
	body, crcBytes := p[:len(p)-4], p[len(p)-4:]
	if binary.LittleEndian.Uint32(crcBytes) != crc32.ChecksumIEEE(body) {
		return nil, fmt.Errorf("statestore: manifest checksum mismatch: %w", errManifestValue)
	}
	body = body[len(manifestMagic):]
	m := &manifest{}
	var u uint64
	var ok bool
	if m.baseVersion, body, ok = readUvarint(body); !ok {
		return nil, errManifestValue
	}
	if m.nextSegID, body, ok = readUvarint(body); !ok {
		return nil, errManifestValue
	}
	if u, body, ok = readUvarint(body); !ok || u > maxManifestSegments {
		return nil, errManifestValue
	}
	m.live = make([]segmentMeta, 0, u)
	for i := uint64(0); i < u; i++ {
		var s segmentMeta
		if s.id, body, ok = readUvarint(body); !ok {
			return nil, errManifestValue
		}
		if len(body) < 1 {
			return nil, errManifestValue
		}
		s.kind = body[0]
		body = body[1:]
		if s.kind != kindDelta && s.kind != kindBase {
			return nil, errManifestValue
		}
		if s.records, body, ok = readUvarint(body); !ok {
			return nil, errManifestValue
		}
		if s.bytes, body, ok = readUvarint(body); !ok {
			return nil, errManifestValue
		}
		if s.minVer, body, ok = readUvarint(body); !ok {
			return nil, errManifestValue
		}
		if s.maxVer, body, ok = readUvarint(body); !ok {
			return nil, errManifestValue
		}
		m.live = append(m.live, s)
	}
	if u, body, ok = readUvarint(body); !ok || u > maxManifestSegments {
		return nil, errManifestValue
	}
	m.retired = make([]uint64, 0, u)
	for i := uint64(0); i < u; i++ {
		var id uint64
		if id, body, ok = readUvarint(body); !ok {
			return nil, errManifestValue
		}
		m.retired = append(m.retired, id)
	}
	if len(body) != 0 {
		return nil, errManifestValue
	}
	return m, nil
}

// writeManifest atomically replaces dir's manifest: temp file, fsync,
// rename, directory fsync.
func writeManifest(dir string, m *manifest) error {
	tmp, err := os.CreateTemp(dir, "manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("statestore: write manifest: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(encodeManifest(m)); err != nil {
		cleanup()
		return fmt.Errorf("statestore: write manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("statestore: sync manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("statestore: close manifest: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("statestore: install manifest: %w", err)
	}
	_ = syncDir(dir) // best effort: the rename itself already succeeded
	return nil
}

// syncDir fsyncs a directory so freshly created or renamed entries in
// it survive a power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// readManifest loads dir's manifest; a missing file yields an empty
// catalog (fresh store).
func readManifest(dir string) (*manifest, error) {
	p, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return &manifest{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("statestore: read manifest: %w", err)
	}
	m, err := decodeManifest(p)
	if err != nil {
		return nil, err
	}
	return m, nil
}
