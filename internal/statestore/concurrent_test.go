package statestore

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/locastream/locastream/internal/engine"
)

// TestConcurrentAppendReadCompact drives appends, point-in-time reads,
// and compactions concurrently; run under -race it is the issue's
// snapshot-consistency check. Readers assert two invariants that hold
// regardless of interleaving: a Lookup result's version never runs
// ahead of the data it returns (the record for key kN at snapshot v
// must carry the value written at the last version <= v that touched
// kN), and Scan results are internally consistent (every record's
// version <= the scan's snapshot version).
func TestConcurrentAppendReadCompact(t *testing.T) {
	s := open(t, t.TempDir(), Options{MaxSegmentBytes: 512, NoSync: true})
	const (
		writers = 1 // versions are totally ordered; one writer, many readers
		appends = 300
		readers = 4
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < appends; i++ {
			err := s.Append([]engine.KeyState{
				{Op: "A", Inst: 0, Key: fmt.Sprintf("k%d", i%7), Data: []byte(fmt.Sprintf("v%d", i))},
			})
			if err != nil {
				t.Error(err)
				return
			}
			if i%25 == 0 {
				s.MaybeCompact()
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, found, err := s.Lookup("A", "k0", 0)
				if err != nil {
					t.Error(err)
					return
				}
				if found {
					for _, rc := range res.Records {
						if rc.Version > res.Version {
							t.Errorf("Lookup: record version %d beyond snapshot %d", rc.Version, res.Version)
							return
						}
					}
				}
				scan, err := s.Scan("A", 0)
				if err != nil {
					t.Error(err)
					return
				}
				for _, rc := range scan.Records {
					if rc.Version > scan.Version {
						t.Errorf("Scan: record version %d beyond snapshot %d", rc.Version, scan.Version)
						return
					}
				}
				s.Stats()
			}
		}()
	}
	wg.Wait()
	s.compactWG.Wait()
	if err := s.CompactionError(); err != nil {
		t.Fatal(err)
	}
	if v := s.Version(); v != appends {
		t.Fatalf("final version = %d, want %d", v, appends)
	}
	// The surviving image is the last write per key.
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]engine.KeyState, 0, 7)
	for k := 0; k < 7; k++ {
		last := appends - 1 - ((appends - 1 - k) % 7) // highest i with i%7 == k
		want = append(want, engine.KeyState{
			Op: "A", Inst: 0, Key: fmt.Sprintf("k%d", k), Data: []byte(fmt.Sprintf("v%d", last)),
		})
	}
	sortLikeLoad(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("final image = %+v, want %+v", got, want)
	}
}

func sortLikeLoad(recs []engine.KeyState) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Key < recs[j-1].Key; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}
