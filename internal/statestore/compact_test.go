package statestore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/locastream/locastream/internal/engine"
)

// randomBatch produces one checkpoint delta over a small keyspace so
// keys collide across batches: plain overwrites, split-epoch partials
// (fresh replica sets pruning older epochs), and post-demote collapses
// back to a single record.
func randomBatch(rng *rand.Rand, seq int) []engine.KeyState {
	n := 1 + rng.Intn(4)
	batch := make([]engine.KeyState, 0, n)
	for i := 0; i < n; i++ {
		op := string(rune('A' + rng.Intn(3)))
		key := fmt.Sprintf("k%d", rng.Intn(6))
		data := []byte(fmt.Sprintf("%s/%s@%d.%d", op, key, seq, i))
		switch rng.Intn(4) {
		case 0: // split epoch: partials for a fresh replica set
			replicas := []int{1 + rng.Intn(3), 4 + rng.Intn(3)}
			for _, inst := range replicas {
				batch = append(batch, engine.KeyState{
					Op: op, Inst: inst, Key: key,
					Data:  append([]byte(nil), data...),
					Split: true, Replicas: replicas,
				})
			}
		case 1: // partial from a surviving replica of the same epoch shape
			replicas := []int{1, 2}
			batch = append(batch, engine.KeyState{
				Op: op, Inst: replicas[rng.Intn(2)], Key: key,
				Data: data, Split: true, Replicas: replicas,
			})
		default: // non-split record: demotes/overwrites everything
			batch = append(batch, engine.KeyState{Op: op, Inst: rng.Intn(4), Key: key, Data: data})
		}
	}
	return batch
}

// TestCompactionEquivalence is the property test the issue demands:
// for random delta histories — including split-epoch partials and
// post-demote collapses — compaction preserves (a) the latest image,
// (b) every point-in-time read at or above the new floor, and (c) the
// image a reopened store serves.
func TestCompactionEquivalence(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			dir := t.TempDir()
			s := open(t, dir, Options{MaxSegmentBytes: 256, NoSync: true})

			batches := 8 + rng.Intn(20)
			versions := make([]uint64, 0, batches)
			for i := 0; i < batches; i++ {
				v, err := s.AppendVersion(randomBatch(rng, i))
				if err != nil {
					t.Fatal(err)
				}
				versions = append(versions, v)
			}
			before, err := s.Load()
			if err != nil {
				t.Fatal(err)
			}
			// Point-in-time scans per op at every version, taken pre-compaction.
			type scanKey struct {
				op string
				v  uint64
			}
			preScans := map[scanKey]ScanResult{}
			for _, v := range versions {
				for _, op := range s.Ops() {
					res, err := s.Scan(op, v)
					if err != nil {
						t.Fatalf("pre-compaction Scan(%s,%d): %v", op, v, err)
					}
					preScans[scanKey{op, v}] = res
				}
			}

			cst, err := s.Compact()
			if err != nil {
				t.Fatal(err)
			}
			after, err := s.Load()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(before, after) {
				t.Fatalf("compaction changed the image:\nbefore %+v\nafter  %+v", before, after)
			}
			// Reads at or above the floor must match the pre-compaction
			// answers byte for byte.
			for _, v := range versions {
				if v < cst.BaseVersion {
					continue
				}
				for _, op := range s.Ops() {
					res, err := s.Scan(op, v)
					if err != nil {
						t.Fatalf("post-compaction Scan(%s,%d): %v", op, v, err)
					}
					if !reflect.DeepEqual(res, preScans[scanKey{op, v}]) {
						t.Fatalf("Scan(%s,%d) changed across compaction:\nbefore %+v\nafter  %+v",
							op, v, preScans[scanKey{op, v}], res)
					}
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			re := open(t, dir, Options{NoSync: true})
			reloaded, err := re.Load()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(before, reloaded) {
				t.Fatalf("reopened image differs:\nbefore %+v\nreloaded %+v", before, reloaded)
			}
			if re.Version() != versions[len(versions)-1] {
				t.Fatalf("reopened version = %d, want %d", re.Version(), versions[len(versions)-1])
			}
			if re.BaseVersion() != cst.BaseVersion {
				t.Fatalf("reopened floor = %d, want %d", re.BaseVersion(), cst.BaseVersion)
			}
		})
	}
}

// TestCompactionIdempotent verifies a second compaction with no new
// sealed deltas is a no-op.
func TestCompactionIdempotent(t *testing.T) {
	s := open(t, t.TempDir(), Options{MaxSegmentBytes: 1, NoSync: true})
	for i := 0; i < 5; i++ {
		if err := s.Append([]engine.KeyState{ks("A", "k", 0, fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	first, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if first.FoldedSegments == 0 {
		t.Fatalf("first compaction folded nothing: %+v", first)
	}
	second, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if second.FoldedSegments != 0 || second.BaseVersion != first.BaseVersion {
		t.Fatalf("second compaction was not a no-op: %+v", second)
	}
}

// TestCompactionBoundsReplay is the O(K) reload check: a long history
// over few keys compacts to a base whose replay cost is bounded by the
// live key count, not the append count.
func TestCompactionBoundsReplay(t *testing.T) {
	const (
		appends = 400
		keys    = 5
	)
	dir := t.TempDir()
	s := open(t, dir, Options{MaxSegmentBytes: 512, NoSync: true})
	for i := 0; i < appends; i++ {
		if err := s.Append([]engine.KeyState{
			ks("A", fmt.Sprintf("k%d", i%keys), 0, fmt.Sprintf("v%d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	want, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := open(t, dir, Options{NoSync: true})
	got, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-compaction reload image differs")
	}
	replayed := re.Stats().ReplayedRecords
	// The base holds K records; only appends landing after the fold
	// point add to replay. Allow the tail the active segment kept.
	if replayed > keys+64 {
		t.Fatalf("reopen replayed %d records for %d live keys after %d appends — reload is not O(K)",
			replayed, keys, appends)
	}
	t.Logf("replayed %d records for %d keys after %d appends", replayed, keys, appends)
}

// TestMaybeCompactTriggers verifies the supervisor-facing trigger: once
// enough sealed deltas pile up MaybeCompact starts a background run
// that eventually folds them.
func TestMaybeCompactTriggers(t *testing.T) {
	s := open(t, t.TempDir(), Options{MaxSegmentBytes: 1, CompactAfter: 3, NoSync: true})
	if s.MaybeCompact() {
		t.Fatal("MaybeCompact fired on an empty store")
	}
	started := false
	for i := 0; i < 6; i++ {
		if err := s.Append([]engine.KeyState{ks("A", "k", 0, fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
		started = started || s.MaybeCompact()
	}
	if !started {
		t.Fatal("MaybeCompact never started despite 6 sealed deltas with CompactAfter=3")
	}
	s.compactWG.Wait()
	if err := s.CompactionError(); err != nil {
		t.Fatal(err)
	}
	if s.BaseVersion() == 0 {
		t.Fatal("background compaction left the floor at 0")
	}
}
