package statestore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/locastream/locastream/internal/checkpoint"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/metrics"
)

// ErrCompacted is returned by Lookup/Scan for versions older than the
// compaction floor: their history was folded into the base segment and
// can no longer be told apart from it.
var ErrCompacted = errors.New("statestore: version predates the compaction floor")

// errClosed marks mutations attempted after Close. A background
// compaction that loses the race against Close aborts with it and the
// trigger does not report that as a failure.
var errClosed = errors.New("statestore: store is closed")

// Options tune the store. The zero value is production-usable.
type Options struct {
	// MaxSegmentBytes rotates the active segment once it grows past
	// this size (default 4 MiB).
	MaxSegmentBytes uint64
	// MaxSegmentAge rotates the active segment once its first record is
	// this old, so a quiet stream still seals segments for compaction
	// (0 disables age-based rotation).
	MaxSegmentAge time.Duration
	// CompactAfter is the number of sealed delta segments that makes
	// MaybeCompact start a background compaction (default 4).
	CompactAfter int
	// RetainRetired keeps the newest N superseded segment files on disk
	// after compaction instead of deleting them immediately (default 0:
	// delete as soon as the new manifest is durable).
	RetainRetired int
	// NoSync skips the per-append fsync. Only for benchmarks and tests;
	// a production checkpoint must be durable before the supervisor
	// considers it taken.
	NoSync bool
	// Meter receives the store measurements (a private meter is used
	// otherwise; see Stats).
	Meter *metrics.StoreMeter
	// Now injects the clock used for age-based rotation and latency
	// measurements (default time.Now).
	Now func() time.Time
}

func (o *Options) defaults() {
	if o.MaxSegmentBytes == 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	if o.CompactAfter <= 0 {
		o.CompactAfter = 4
	}
	if o.Meter == nil {
		o.Meter = &metrics.StoreMeter{}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// Record is one checkpointed key state as served by reads, stamped with
// the checkpoint version of the append that last wrote it.
type Record struct {
	Op       string `json:"op"`
	Key      string `json:"key"`
	Inst     int    `json:"inst"`
	Version  uint64 `json:"version"`
	Data     []byte `json:"data"`
	Split    bool   `json:"split,omitempty"`
	Replicas []int  `json:"replicas,omitempty"`
}

// KeyResult is one point-in-time key lookup: the snapshot version the
// read was served at and the key's records (several while split — one
// partial per replica).
type KeyResult struct {
	Op      string   `json:"op"`
	Key     string   `json:"key"`
	Version uint64   `json:"version"`
	Records []Record `json:"records"`
}

// ScanResult is one point-in-time operator scan.
type ScanResult struct {
	Op      string   `json:"op"`
	Version uint64   `json:"version"`
	Keys    int      `json:"keys"`
	Records []Record `json:"records"`
}

// verEntry is one key's merged state as of one checkpoint version.
type verEntry struct {
	version uint64
	insts   []engine.KeyState // sorted by Inst; never mutated once stored
}

// keyHistory is a key's version chain, ascending. Appends extend it;
// compaction trims everything before the entry in effect at the
// compaction floor.
type keyHistory struct {
	chain []verEntry
}

// at returns the entry in effect at version v (the last entry with
// version <= v).
func (h *keyHistory) at(v uint64) (verEntry, bool) {
	i := sort.Search(len(h.chain), func(i int) bool { return h.chain[i].version > v })
	if i == 0 {
		return verEntry{}, false
	}
	return h.chain[i-1], true
}

// Store is the tiered checkpoint store. It implements
// checkpoint.Store, checkpoint.VersionedStore and
// checkpoint.StoreStatsReporter. All methods are safe for concurrent
// use; appends, reads and compaction may run concurrently.
type Store struct {
	dir  string
	opts Options

	// fileMu serializes every on-disk mutation: appends, rotation,
	// manifest installs. Reads never take it. Lock order is always
	// fileMu before mu.
	fileMu  sync.Mutex
	w       *segmentWriter
	wOpened time.Time
	// wSnapshot mirrors the active segment's id for readers that must
	// not take fileMu (the compaction fold-set snapshot); nil while no
	// active segment exists.
	wSnapshot atomic.Pointer[uint64]

	// mu guards the in-memory catalog and index. Appends hold it only
	// for the in-memory merge — never across an fsync — so reads are
	// serviced while the disk works.
	mu      sync.RWMutex
	man     manifest
	idx     map[string]map[string]*keyHistory // op -> key -> chain
	version uint64
	// closed is written with BOTH fileMu and mu held, so holders of
	// either lock read it race-free.
	closed bool

	compactMu   sync.Mutex // serializes whole compaction runs
	compactWG   sync.WaitGroup
	compactPend bool // a background compaction is queued or running (guarded by mu)
	compactErr  error

	meter *metrics.StoreMeter
}

// Open opens (creating if needed) the store rooted at dir and rebuilds
// the in-memory index from the manifest's segments. The replay cost is
// bounded by what the manifest names: after a compaction that is the
// live key count plus the un-compacted delta tail, not the full append
// history.
func Open(dir string, opts Options) (*Store, error) {
	opts.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("statestore: open %s: %w", dir, err)
	}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		man:   *man,
		idx:   make(map[string]map[string]*keyHistory),
		meter: opts.Meter,
	}
	replayed := 0
	for i := range s.man.live {
		meta := &s.man.live[i]
		n, minV, maxV, err := s.replaySegment(meta.id, meta.kind)
		if err != nil {
			return nil, err
		}
		// Normalize the entry with what the file actually holds — the
		// previously active segment was catalogued before its records
		// landed, and a torn tail may have trimmed the counts.
		meta.records, meta.minVer, meta.maxVer = uint64(n), minV, maxV
		if fi, err := os.Stat(filepath.Join(dir, segmentName(meta.id))); err == nil {
			meta.bytes = uint64(fi.Size())
		}
		if maxV > s.version {
			s.version = maxV
		}
		replayed += n
	}
	if err := s.removeOrphans(); err != nil {
		return nil, err
	}
	// Re-catalog with the normalized counts; every listed segment is now
	// sealed (a fresh active segment is created on the first append).
	if err := writeManifest(dir, &s.man); err != nil {
		return nil, err
	}
	s.meter.RecordReplay(replayed)
	s.refreshGaugesLocked()
	return s, nil
}

// replaySegment folds one segment file into the index, returning the
// record count and version bounds read. Delta records re-run the
// checkpoint merge in their original order, which reproduces the live
// append path exactly. Base records must NOT be re-merged: a folded
// image can pair a non-split record with split partials that landed
// after it, and Merge would let the non-split record wipe the partials
// on replay — so they are installed verbatim as the key's entry.
func (s *Store) replaySegment(id uint64, kind byte) (n int, minV, maxV uint64, err error) {
	f, err := os.Open(filepath.Join(s.dir, segmentName(id)))
	if err != nil {
		return 0, 0, 0, fmt.Errorf("statestore: open segment: %w", err)
	}
	defer f.Close()
	err = readSegment(f, func(r rec) error {
		if kind == kindBase {
			s.installLocked(r.version, r.state)
		} else {
			s.applyLocked(r.version, []engine.KeyState{r.state})
		}
		if n == 0 || r.version < minV {
			minV = r.version
		}
		if r.version > maxV {
			maxV = r.version
		}
		n++
		return nil
	})
	if err != nil {
		return 0, 0, 0, fmt.Errorf("statestore: segment %s: %w", segmentName(id), err)
	}
	return n, minV, maxV, nil
}

// removeOrphans deletes *.seg files the manifest references neither as
// live nor as retained — leftovers of a crash between a segment write
// and its manifest install.
func (s *Store) removeOrphans() error {
	known := make(map[string]bool, len(s.man.live)+len(s.man.retired))
	for _, meta := range s.man.live {
		known[segmentName(meta.id)] = true
	}
	for _, id := range s.man.retired {
		known[segmentName(id)] = true
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("statestore: scan %s: %w", s.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".seg" || known[name] {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
			return fmt.Errorf("statestore: remove orphan segment: %w", err)
		}
	}
	return nil
}

// applyLocked folds records stamped with version into the index. The
// caller holds mu (or, during Open, exclusive ownership). The merge
// semantics are exactly checkpoint.Image's: a key's next chain entry is
// its previous image with the new records merged in.
func (s *Store) applyLocked(version uint64, states []engine.KeyState) {
	for _, st := range states {
		keys := s.idx[st.Op]
		if keys == nil {
			keys = make(map[string]*keyHistory)
			s.idx[st.Op] = keys
		}
		h := keys[st.Key]
		if h == nil {
			h = &keyHistory{}
			keys[st.Key] = h
		}
		img := make(checkpoint.Image, 1)
		if n := len(h.chain); n > 0 {
			img.Merge(h.chain[n-1].insts)
		}
		img.Merge([]engine.KeyState{st})
		insts := img.Sorted()
		if n := len(h.chain); n > 0 && h.chain[n-1].version == version {
			// Another record of the same append batch: extend the entry.
			h.chain[n-1] = verEntry{version: version, insts: insts}
		} else {
			h.chain = append(h.chain, verEntry{version: version, insts: insts})
		}
	}
}

// installLocked places one base-segment record into the index without
// re-running the merge: compaction wrote each key's folded image
// contiguously, every record stamped with the key's original version,
// sorted by instance — appending them verbatim reconstructs the entry.
func (s *Store) installLocked(version uint64, st engine.KeyState) {
	keys := s.idx[st.Op]
	if keys == nil {
		keys = make(map[string]*keyHistory)
		s.idx[st.Op] = keys
	}
	h := keys[st.Key]
	if h == nil {
		h = &keyHistory{}
		keys[st.Key] = h
	}
	if n := len(h.chain); n > 0 && h.chain[n-1].version == version {
		h.chain[n-1].insts = append(h.chain[n-1].insts, st)
	} else {
		h.chain = append(h.chain, verEntry{version: version, insts: []engine.KeyState{st}})
	}
}

// refreshGaugesLocked pushes the manifest-shaped gauges to the meter.
// Callers hold mu (or exclusive ownership during Open). The active
// segment's catalog entry is kept current on every append, so the
// manifest alone describes the on-disk volume.
func (s *Store) refreshGaugesLocked() {
	segs := len(s.man.live)
	var bytes uint64
	for _, meta := range s.man.live {
		bytes += meta.bytes
	}
	s.meter.SetGauges(segs, bytes, s.version, s.man.baseVersion)
}

// noteActiveLocked mirrors the active writer's counters into its
// catalog entry. Caller holds both fileMu and mu.
func (s *Store) noteActiveLocked(w *segmentWriter) {
	for i := range s.man.live {
		if s.man.live[i].id == w.id {
			s.man.live[i].records = w.recs
			s.man.live[i].bytes = w.bytes
			s.man.live[i].minVer = w.minV
			s.man.live[i].maxVer = w.maxV
			return
		}
	}
}

// Append implements checkpoint.Store.
func (s *Store) Append(recs []engine.KeyState) error {
	_, err := s.AppendVersion(recs)
	return err
}

// AppendVersion implements checkpoint.VersionedStore: the batch is
// persisted to the active segment stamped with a fresh monotonically
// increasing checkpoint version, which is returned. An empty batch
// stamps nothing and returns the current version.
func (s *Store) AppendVersion(recs []engine.KeyState) (uint64, error) {
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("%w: %s", errClosed, s.dir)
	}
	if len(recs) == 0 {
		return s.Version(), nil
	}
	if err := s.rotateIfDueLocked(); err != nil {
		return 0, err
	}
	v := s.Version() + 1
	if err := s.w.append(v, recs); err != nil {
		return 0, err
	}
	var bytes uint64
	for _, r := range recs {
		bytes += uint64(len(r.Op) + len(r.Key) + len(r.Data))
	}
	s.mu.Lock()
	s.applyLocked(v, recs)
	s.version = v
	s.noteActiveLocked(s.w)
	s.refreshGaugesLocked()
	s.mu.Unlock()
	s.meter.RecordAppend(len(recs), bytes)
	return v, nil
}

// rotateIfDueLocked makes sure an active segment writer exists, sealing
// the previous one when it outgrew the size or age budget. Caller holds
// fileMu.
func (s *Store) rotateIfDueLocked() error {
	now := s.opts.Now()
	if s.w != nil {
		rotate := s.w.bytes >= s.opts.MaxSegmentBytes ||
			(s.opts.MaxSegmentAge > 0 && s.w.recs > 0 && now.Sub(s.wOpened) >= s.opts.MaxSegmentAge)
		if !rotate {
			return nil
		}
		if err := s.sealActiveLocked(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	id := s.man.nextSegID
	s.man.nextSegID++
	s.mu.Unlock()
	// Create (and sync) the segment file before the manifest names it: a
	// crash or a transient create failure in between leaves at worst an
	// orphan file, which Open's removeOrphans cleans up. The reverse
	// order could durably catalog a segment with no backing file, and
	// the store would never reopen. Records cannot be stranded in the
	// uncatalogued file either — they only land once this returns, after
	// the manifest install below. A burned id on failure is harmless.
	w, err := createSegment(filepath.Join(s.dir, segmentName(id)), id, !s.opts.NoSync)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.man.live = append(s.man.live, segmentMeta{id: id, kind: kindDelta})
	man := s.man
	s.mu.Unlock()
	if err := writeManifest(s.dir, &man); err != nil {
		// Roll the catalog entry back so a later manifest write (Close,
		// compaction) cannot name the file we are about to remove.
		w.close()
		os.Remove(filepath.Join(s.dir, segmentName(id)))
		s.mu.Lock()
		for i := len(s.man.live) - 1; i >= 0; i-- {
			if s.man.live[i].id == id {
				s.man.live = append(s.man.live[:i], s.man.live[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return err
	}
	s.w, s.wOpened = w, now
	wid := id
	s.wSnapshot.Store(&wid)
	return nil
}

// sealActiveLocked finalizes the active segment's catalog entry and
// closes its file. Caller holds fileMu.
func (s *Store) sealActiveLocked() error {
	w := s.w
	if w == nil {
		return nil
	}
	s.w = nil
	s.wSnapshot.Store(nil)
	if err := w.close(); err != nil {
		return fmt.Errorf("statestore: close segment: %w", err)
	}
	s.mu.Lock()
	s.noteActiveLocked(w)
	s.mu.Unlock()
	return nil
}

// Seal closes the active segment (the next append starts a fresh one),
// making everything appended so far foldable by an immediate Compact.
// The background trigger never seals — it folds only what rotation
// already sealed — so Seal is for explicit compact-now requests and
// orderly handoffs.
func (s *Store) Seal() error {
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	if s.closed {
		return nil
	}
	return s.sealActiveLocked()
}

// Load implements checkpoint.Store: the latest image, sorted by
// operator, key, then instance — served from the in-memory index, so
// recovery never replays history.
func (s *Store) Load() ([]engine.KeyState, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []engine.KeyState
	for _, keys := range s.idx {
		for _, h := range keys {
			if n := len(h.chain); n > 0 {
				out = append(out, h.chain[n-1].insts...)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Inst < out[j].Inst
	})
	return out, nil
}

// Version returns the latest stamped checkpoint version.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// BaseVersion returns the compaction floor: the oldest version
// point-in-time reads can still be served at.
func (s *Store) BaseVersion() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.man.baseVersion
}

// resolveLocked maps a requested version (0 = latest) to the snapshot
// version a read is served at. Caller holds mu.RLock.
func (s *Store) resolveLocked(version uint64) (uint64, error) {
	if version == 0 || version > s.version {
		return s.version, nil
	}
	if version < s.man.baseVersion {
		return 0, fmt.Errorf("%w (requested %d, floor %d)", ErrCompacted, version, s.man.baseVersion)
	}
	return version, nil
}

func toRecord(st engine.KeyState, version uint64) Record {
	return Record{
		Op: st.Op, Key: st.Key, Inst: st.Inst, Version: version,
		Data: st.Data, Split: st.Split, Replicas: st.Replicas,
	}
}

// Lookup serves one key's state as of version (0 = latest),
// snapshot-consistently against the checkpoint version the read
// resolved to. found is false when the key had no checkpointed state at
// that version.
func (s *Store) Lookup(op, key string, version uint64) (KeyResult, bool, error) {
	start := s.opts.Now()
	s.mu.RLock()
	snapV, err := s.resolveLocked(version)
	if err != nil {
		s.mu.RUnlock()
		return KeyResult{}, false, err
	}
	res := KeyResult{Op: op, Key: key, Version: snapV}
	var found bool
	if keys := s.idx[op]; keys != nil {
		if h := keys[key]; h != nil {
			if e, ok := h.at(snapV); ok {
				found = true
				res.Records = make([]Record, 0, len(e.insts))
				for _, st := range e.insts {
					res.Records = append(res.Records, toRecord(st, e.version))
				}
			}
		}
	}
	s.mu.RUnlock()
	s.meter.RecordLookup(s.opts.Now().Sub(start))
	return res, found, nil
}

// Scan serves one operator's full keyed state as of version
// (0 = latest), sorted by key then instance.
func (s *Store) Scan(op string, version uint64) (ScanResult, error) {
	start := s.opts.Now()
	s.mu.RLock()
	snapV, err := s.resolveLocked(version)
	if err != nil {
		s.mu.RUnlock()
		return ScanResult{}, err
	}
	res := ScanResult{Op: op, Version: snapV}
	for _, h := range s.idx[op] {
		if e, ok := h.at(snapV); ok {
			res.Keys++
			for _, st := range e.insts {
				res.Records = append(res.Records, toRecord(st, e.version))
			}
		}
	}
	s.mu.RUnlock()
	sort.Slice(res.Records, func(i, j int) bool {
		if res.Records[i].Key != res.Records[j].Key {
			return res.Records[i].Key < res.Records[j].Key
		}
		return res.Records[i].Inst < res.Records[j].Inst
	})
	s.meter.RecordScan(s.opts.Now().Sub(start))
	return res, nil
}

// Ops returns the operators with checkpointed state, sorted.
func (s *Store) Ops() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.idx))
	for op := range s.idx {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// Stats returns the store's measurements with fresh gauges.
func (s *Store) Stats() metrics.StoreStats {
	s.mu.RLock()
	s.refreshGaugesLocked()
	s.mu.RUnlock()
	return s.meter.Snapshot()
}

// StoreStats implements checkpoint.StoreStatsReporter.
func (s *Store) StoreStats() any { return s.Stats() }

// CompactionError returns the most recent background compaction
// failure, if any.
func (s *Store) CompactionError() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.compactErr
}

// Close marks the store closed (no new appends or compactions), waits
// for a running compaction, seals the active segment and writes the
// final manifest. Idempotent.
func (s *Store) Close() error {
	// Set closed under both locks BEFORE waiting: MaybeCompact claims
	// compactPend and registers with compactWG under mu, so once closed
	// is visible no new compaction can slip in after the Wait below and
	// write a manifest behind the final one.
	s.fileMu.Lock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.fileMu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.fileMu.Unlock()
	// Released so an in-flight compaction can finish its install.
	s.compactWG.Wait()
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	err := s.sealActiveLocked()
	s.mu.RLock()
	man := s.man
	s.mu.RUnlock()
	if werr := writeManifest(s.dir, &man); err == nil {
		err = werr
	}
	return err
}

var (
	_ checkpoint.Store              = (*Store)(nil)
	_ checkpoint.VersionedStore     = (*Store)(nil)
	_ checkpoint.StoreStatsReporter = (*Store)(nil)
)
