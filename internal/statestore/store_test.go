package statestore

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/locastream/locastream/internal/engine"
)

func ks(op, key string, inst int, data string) engine.KeyState {
	var d []byte
	if data != "" {
		d = []byte(data)
	}
	return engine.KeyState{Op: op, Inst: inst, Key: key, Data: d}
}

func splitKS(op, key string, inst int, data string, replicas ...int) engine.KeyState {
	r := ks(op, key, inst, data)
	r.Split = true
	r.Replicas = replicas
	return r
}

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestStoreContract exercises the checkpoint.Store contract: appends
// fold into a last-record-wins image sorted by operator, key, instance.
func TestStoreContract(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if recs, err := s.Load(); err != nil || len(recs) != 0 {
		t.Fatalf("empty store: recs=%v err=%v", recs, err)
	}
	if err := s.Append([]engine.KeyState{
		ks("B", "k1", 1, "b1-old"),
		ks("A", "k2", 0, "a2"),
		ks("A", "k1", 0, "a1"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]engine.KeyState{
		ks("B", "k1", 1, "b1-new"),
		ks("B", "k9", 1, ""),
	}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	want := []engine.KeyState{
		ks("A", "k1", 0, "a1"),
		ks("A", "k2", 0, "a2"),
		ks("B", "k1", 1, "b1-new"),
		ks("B", "k9", 1, ""),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged image = %+v, want %+v", got, want)
	}
	if v := s.Version(); v != 2 {
		t.Fatalf("version = %d after two appends, want 2", v)
	}
}

// TestStoreSplitPartials mirrors the checkpoint store's split-key
// exception: per-replica partials, epoch pruning through Replicas, and
// post-demote collapse.
func TestStoreSplitPartials(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if err := s.Append([]engine.KeyState{
		splitKS("B", "hot", 1, "p1", 1, 2),
		splitKS("B", "hot", 2, "p2", 1, 2),
		ks("B", "cold", 0, "c"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]engine.KeyState{splitKS("B", "hot", 3, "p3", 1, 3)}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	want := []engine.KeyState{
		ks("B", "cold", 0, "c"),
		splitKS("B", "hot", 1, "p1", 1, 2),
		splitKS("B", "hot", 3, "p3", 1, 3),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("image after epoch change = %+v, want %+v", got, want)
	}
	if err := s.Append([]engine.KeyState{ks("B", "hot", 1, "full")}); err != nil {
		t.Fatal(err)
	}
	got, err = s.Load()
	if err != nil {
		t.Fatal(err)
	}
	want = []engine.KeyState{
		ks("B", "cold", 0, "c"),
		ks("B", "hot", 1, "full"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("image after demote = %+v, want %+v", got, want)
	}
}

// TestStoreReopen verifies the restart path: the reopened store serves
// the same image, the same version, and keeps stamping after it.
func TestStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := s.Append([]engine.KeyState{
			ks("A", "k", 0, "v"+string(rune('0'+i))),
			ks("A", "other", 1, "x"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	wantImage, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if _, err := s.AppendVersion([]engine.KeyState{ks("A", "k", 0, "late")}); err == nil {
		t.Fatal("Append after Close succeeded")
	}

	re := open(t, dir, Options{})
	got, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantImage) {
		t.Fatalf("reopened image = %+v, want %+v", got, wantImage)
	}
	if v := re.Version(); v != 3 {
		t.Fatalf("reopened version = %d, want 3", v)
	}
	v, err := re.AppendVersion([]engine.KeyState{ks("A", "k", 0, "v4")})
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Fatalf("version after reopen append = %d, want 4", v)
	}
}

// TestStorePointInTime verifies Lookup/Scan serve the image as of the
// requested version, tagged with the snapshot version they resolved to.
func TestStorePointInTime(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	versions := make([]uint64, 0, 3)
	for _, val := range []string{"v1", "v2", "v3"} {
		v, err := s.AppendVersion([]engine.KeyState{ks("A", "k", 0, val)})
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, v)
	}
	// Another key appears only at the last version.
	if _, err := s.AppendVersion([]engine.KeyState{ks("A", "late", 1, "l")}); err != nil {
		t.Fatal(err)
	}

	for i, wantData := range []string{"v1", "v2", "v3"} {
		res, found, err := s.Lookup("A", "k", versions[i])
		if err != nil || !found {
			t.Fatalf("Lookup@%d: found=%v err=%v", versions[i], found, err)
		}
		if res.Version != versions[i] || len(res.Records) != 1 || string(res.Records[0].Data) != wantData {
			t.Fatalf("Lookup@%d = %+v, want %s", versions[i], res, wantData)
		}
	}
	// Version 0 means latest; a future version clamps to latest.
	for _, req := range []uint64{0, 99} {
		res, found, err := s.Lookup("A", "k", req)
		if err != nil || !found || string(res.Records[0].Data) != "v3" || res.Version != 4 {
			t.Fatalf("Lookup@%d = %+v (found=%v err=%v), want v3@4", req, res, found, err)
		}
	}
	// "late" did not exist at version 2.
	if _, found, err := s.Lookup("A", "late", versions[1]); err != nil || found {
		t.Fatalf("Lookup(late)@%d: found=%v err=%v, want absent", versions[1], found, err)
	}
	if res, found, err := s.Lookup("A", "late", 0); err != nil || !found || string(res.Records[0].Data) != "l" {
		t.Fatalf("Lookup(late)@latest = %+v found=%v err=%v", res, found, err)
	}
	// Unknown key and operator.
	if _, found, err := s.Lookup("A", "nope", 0); err != nil || found {
		t.Fatalf("Lookup unknown key: found=%v err=%v", found, err)
	}
	if _, found, err := s.Lookup("Z", "k", 0); err != nil || found {
		t.Fatalf("Lookup unknown op: found=%v err=%v", found, err)
	}

	scan, err := s.Scan("A", versions[2])
	if err != nil {
		t.Fatal(err)
	}
	if scan.Keys != 1 || len(scan.Records) != 1 || string(scan.Records[0].Data) != "v3" {
		t.Fatalf("Scan@%d = %+v, want only k=v3", versions[2], scan)
	}
	scan, err = s.Scan("A", 0)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Keys != 2 || scan.Version != 4 {
		t.Fatalf("Scan@latest = %+v, want both keys at version 4", scan)
	}
	if scan.Records[0].Key != "k" || scan.Records[1].Key != "late" {
		t.Fatalf("Scan order = %+v, want sorted by key", scan.Records)
	}
	if ops := s.Ops(); len(ops) != 1 || ops[0] != "A" {
		t.Fatalf("Ops = %v", ops)
	}
}

// TestStoreRotation verifies size-based segment rotation: small
// segments seal and the manifest names each of them.
func TestStoreRotation(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxSegmentBytes: 128})
	for i := 0; i < 6; i++ {
		if err := s.Append([]engine.KeyState{
			ks("A", "key-"+string(rune('a'+i)), 0, strings.Repeat("x", 64)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments < 3 {
		t.Fatalf("segments = %d after 6 oversized appends with a 128 B budget, want >= 3", st.Segments)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != st.Segments {
		t.Fatalf("on-disk segments = %d, manifest says %d", len(names), st.Segments)
	}
}

// TestStoreAgeRotation verifies age-based rotation on an injected
// clock: a slow trickle still seals segments so compaction has input.
func TestStoreAgeRotation(t *testing.T) {
	now := time.Unix(1000, 0)
	s := open(t, t.TempDir(), Options{
		MaxSegmentAge: time.Minute,
		Now:           func() time.Time { return now },
	})
	if err := s.Append([]engine.KeyState{ks("A", "k", 0, "v1")}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if err := s.Append([]engine.KeyState{ks("A", "k", 0, "v2")}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Segments != 2 {
		t.Fatalf("segments = %d after age rotation, want 2", st.Segments)
	}
}

// TestStoreCompactedVersionRejected verifies reads below the compaction
// floor fail with ErrCompacted instead of silently serving newer state.
func TestStoreCompactedVersionRejected(t *testing.T) {
	s := open(t, t.TempDir(), Options{MaxSegmentBytes: 1})
	for i := 0; i < 4; i++ {
		if err := s.Append([]engine.KeyState{ks("A", "k", 0, "v")}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.BaseVersion == 0 {
		t.Fatalf("compaction stats = %+v, want a floor > 0", st)
	}
	if _, _, err := s.Lookup("A", "k", st.BaseVersion-1); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Lookup below floor: err = %v, want ErrCompacted", err)
	}
	if _, err := s.Scan("A", st.BaseVersion-1); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Scan below floor: err = %v, want ErrCompacted", err)
	}
	// The floor itself and latest still serve.
	if _, found, err := s.Lookup("A", "k", st.BaseVersion); err != nil || !found {
		t.Fatalf("Lookup at floor: found=%v err=%v", found, err)
	}
}

// TestStoreTornTailTolerated verifies crash tolerance: a truncated
// final record in the active segment is skipped on reopen, every
// complete record before it still loads.
func TestStoreTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Append([]engine.KeyState{ks("A", "k1", 0, "good")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]engine.KeyState{ks("A", "k2", 0, "gone")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record: chop a few bytes off the segment.
	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(names) != 1 {
		t.Fatalf("segments = %v (%v)", names, err)
	}
	fi, err := os.Stat(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(names[0], fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	re := open(t, dir, Options{})
	got, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != "k1" {
		t.Fatalf("image after torn tail = %+v, want only the complete record", got)
	}
	if v := re.Version(); v != 1 {
		t.Fatalf("version after torn tail = %d, want 1", v)
	}
}

// TestStoreInteriorCorruptionRejected verifies a flipped byte inside a
// complete record fails the reopen instead of silently dropping state.
func TestStoreInteriorCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Append([]engine.KeyState{ks("A", "k1", 0, strings.Repeat("x", 100))}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]engine.KeyState{ks("A", "k2", 0, "tail")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	raw, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0xff // inside the first record's body
	if err := os.WriteFile(names[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a segment with interior corruption")
	} else if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corruption error = %v, want checksum/corrupt", err)
	}
}

// TestStoreOrphanSegmentRemoved verifies a segment file the manifest
// does not name (crash between segment create and manifest install) is
// cleaned up on open.
func TestStoreOrphanSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Append([]engine.KeyState{ks("A", "k", 0, "v")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, segmentName(999))
	if err := os.WriteFile(orphan, []byte(segMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	re := open(t, dir, Options{})
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan segment survived reopen: %v", err)
	}
	if got, err := re.Load(); err != nil || len(got) != 1 {
		t.Fatalf("image after orphan cleanup = %+v, %v", got, err)
	}
}

// TestStoreSegmentCreateFailureRecoverable verifies the crash-safety
// ordering of rotation: a failed segment create must not leave a
// durable manifest entry pointing at a missing file. The failure is
// injected by squatting on the next segment path with a directory; a
// later append and a reopen must both succeed.
func TestStoreSegmentCreateFailureRecoverable(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	// A fresh store creates seg 0 on the first append; make that fail.
	squat := filepath.Join(dir, segmentName(0))
	if err := os.Mkdir(squat, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]engine.KeyState{ks("A", "k", 0, "v1")}); err == nil {
		t.Fatal("append succeeded despite the segment create failing")
	}
	if err := os.Remove(squat); err != nil {
		t.Fatal(err)
	}
	// The store must recover on the next append (a fresh id) ...
	if err := s.Append([]engine.KeyState{ks("A", "k", 0, "v2")}); err != nil {
		t.Fatalf("append after transient create failure: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// ... and the manifest written along the way must never have named
	// the segment that was never created: reopen must work.
	re := open(t, dir, Options{})
	got, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Data) != "v2" {
		t.Fatalf("image after recovery = %+v, want k=v2", got)
	}
}

// TestStoreCloseCompactRace races Close against the background
// compaction trigger; under -race it pins down that closed is read and
// written consistently and that no compaction can start (and write a
// manifest) behind Close's final one. Reopen must always succeed.
func TestStoreCloseCompactRace(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		dir := t.TempDir()
		s, err := Open(dir, Options{MaxSegmentBytes: 1, CompactAfter: 1, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := s.Append([]engine.KeyState{ks("A", "k", 0, "v")}); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			s.MaybeCompact()
		}()
		go func() {
			defer wg.Done()
			if err := s.Close(); err != nil {
				t.Error(err)
			}
		}()
		wg.Wait()
		s.compactWG.Wait()
		if err := s.CompactionError(); err != nil {
			t.Fatalf("trial %d: compaction error after close race: %v", trial, err)
		}
		re := open(t, dir, Options{NoSync: true})
		if got, err := re.Load(); err != nil || len(got) != 1 {
			t.Fatalf("trial %d: reopen after close race: image=%+v err=%v", trial, got, err)
		}
	}
}

// TestDecodeRejectsIntOverflow pins the decode bound on instance and
// replica values: 2^31 would overflow a 32-bit int to a negative
// value, so the largest accepted value is 2^31-1.
func TestDecodeRejectsIntOverflow(t *testing.T) {
	encode := func(inst uint64) []byte {
		body := appendString(appendString([]byte{1, 0}, "A"), "k") // version 1, flags 0
		return binary.AppendUvarint(body, inst)
	}
	if _, err := decodeBody(encode(1 << 31)); !errors.Is(err, errSegmentCorrupt) {
		t.Fatalf("decodeBody accepted inst 2^31: err=%v", err)
	}
	r, err := decodeBody(encode(1<<31 - 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.state.Inst != 1<<31-1 {
		t.Fatalf("inst = %d, want 2^31-1", r.state.Inst)
	}
}

// TestManifestRoundTrip pins the manifest codec.
func TestManifestRoundTrip(t *testing.T) {
	m := &manifest{
		baseVersion: 7,
		nextSegID:   12,
		live: []segmentMeta{
			{id: 9, kind: kindBase, records: 41, bytes: 4096, minVer: 1, maxVer: 7},
			{id: 10, kind: kindDelta, records: 3, bytes: 210, minVer: 8, maxVer: 9},
		},
		retired: []uint64{3, 5},
	}
	got, err := decodeManifest(encodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("manifest round-trip = %+v, want %+v", got, m)
	}
	// A flipped byte must fail the checksum.
	raw := encodeManifest(m)
	raw[6] ^= 0x01
	if _, err := decodeManifest(raw); err == nil {
		t.Fatal("decodeManifest accepted a corrupt manifest")
	}
}
