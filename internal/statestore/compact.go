package statestore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/locastream/locastream/internal/engine"
)

// CompactStats summarizes one compaction run.
type CompactStats struct {
	// FoldedSegments is the number of sealed segments merged into the
	// new base; FoldedRecords their cumulative record count.
	FoldedSegments int    `json:"folded_segments"`
	FoldedRecords  uint64 `json:"folded_records"`
	// BaseRecords is the record count of the new base segment — one per
	// live (op, key, replica instance), independent of history length.
	BaseRecords int `json:"base_records"`
	// BaseVersion is the new compaction floor.
	BaseVersion uint64 `json:"base_version"`
	// ReclaimedBytes is the on-disk volume the run made reclaimable
	// (folded segment bytes minus the new base's size, never negative).
	ReclaimedBytes uint64 `json:"reclaimed_bytes"`
}

// MaybeCompact implements checkpoint.VersionedStore: when the sealed
// delta backlog reaches Options.CompactAfter and no compaction is
// running, one is started in the background. The supervisor calls it
// after every checkpoint; failures surface through CompactionError and
// the next trigger retries.
func (s *Store) MaybeCompact() bool {
	s.mu.Lock()
	if s.compactPend || s.closed {
		s.mu.Unlock()
		return false
	}
	deltas := 0
	activeID, hasActive := s.activeID()
	for _, meta := range s.man.live {
		if meta.kind == kindDelta && !(hasActive && meta.id == activeID) {
			deltas++
		}
	}
	if deltas < s.opts.CompactAfter {
		s.mu.Unlock()
		return false
	}
	s.compactPend = true
	// Register with the WaitGroup inside the critical section that saw
	// closed == false: Close sets closed under mu before it Waits, so
	// either this Add happens first and Close waits the run out, or
	// Close wins and the closed check above refuses the run. Adding
	// after unlock would let a compaction start behind Close's Wait.
	s.compactWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.compactWG.Done()
		_, err := s.Compact()
		if errors.Is(err, errClosed) {
			// Close raced ahead after this run was queued; the run did
			// nothing and there is no failure to report.
			err = nil
		}
		s.mu.Lock()
		s.compactPend = false
		s.compactErr = err
		s.mu.Unlock()
	}()
	return true
}

// activeID returns the id of the active segment writer. It reads s.w
// without fileMu, which is safe only for the advisory delta count in
// MaybeCompact and the fold-set snapshot in Compact — both re-validate
// nothing and tolerate a stale answer (a segment sealed concurrently
// just waits for the next compaction).
func (s *Store) activeID() (uint64, bool) {
	if w := s.wSnapshot.Load(); w != nil {
		return *w, true
	}
	return 0, false
}

// Compact folds every sealed segment into a fresh base segment holding
// exactly the live image at the fold point — the same merge semantics
// Load uses (checkpoint.Image) — installs a manifest naming the new
// base, retires the folded segments under the retention policy, and
// trims the in-memory version chains to the new floor. Appends and
// reads proceed concurrently: only the final manifest install takes the
// write locks, and only for an in-memory swap plus one atomic rename.
func (s *Store) Compact() (CompactStats, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	// Snapshot the fold set: every live segment except the active one.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return CompactStats{}, fmt.Errorf("%w: %s", errClosed, s.dir)
	}
	activeID, hasActive := s.activeID()
	var (
		foldIDs    = make(map[uint64]bool)
		foldBytes  uint64
		foldRecs   uint64
		foldV      uint64
		foldAny    bool
		onlyBase   = true
		newID      uint64
		basebefore = s.man.baseVersion
	)
	for _, meta := range s.man.live {
		if hasActive && meta.id == activeID {
			continue
		}
		foldIDs[meta.id] = true
		foldBytes += meta.bytes
		foldRecs += meta.records
		if meta.maxVer > foldV {
			foldV = meta.maxVer
		}
		foldAny = true
		if meta.kind != kindBase {
			onlyBase = false
		}
	}
	if !foldAny || (onlyBase && len(foldIDs) == 1) || foldV <= basebefore {
		// Nothing to fold: no sealed segments, a lone base, or deltas
		// that carry no version beyond the current floor.
		s.mu.RUnlock()
		return CompactStats{BaseVersion: basebefore}, nil
	}
	// Snapshot the image at the fold point from the version chains:
	// chain entries are immutable once stored, so value copies taken
	// under the read lock stay valid after it is released.
	type folded struct {
		version uint64
		insts   []engine.KeyState
	}
	var image []folded
	for _, keys := range s.idx {
		for _, h := range keys {
			if e, ok := h.at(foldV); ok {
				image = append(image, folded{version: e.version, insts: e.insts})
			}
		}
	}
	s.mu.RUnlock()

	sort.Slice(image, func(i, j int) bool {
		a, b := image[i].insts[0], image[j].insts[0]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Key < b.Key
	})

	// Write the new base segment. The id is reserved under the lock;
	// the file becomes reachable only when the manifest install names
	// it, so a crash before that leaves an orphan Open removes.
	s.mu.Lock()
	newID = s.man.nextSegID
	s.man.nextSegID++
	s.mu.Unlock()
	w, err := createSegment(filepath.Join(s.dir, segmentName(newID)), newID, !s.opts.NoSync)
	if err != nil {
		return CompactStats{}, err
	}
	baseRecords := 0
	var minV, maxV uint64
	for _, f := range image {
		if err := w.append(f.version, f.insts); err != nil {
			w.close()
			os.Remove(filepath.Join(s.dir, segmentName(newID)))
			return CompactStats{}, err
		}
		baseRecords += len(f.insts)
	}
	minV, maxV = w.minV, w.maxV
	newMeta := segmentMeta{
		id: newID, kind: kindBase,
		records: w.recs, bytes: w.bytes, minVer: minV, maxVer: maxV,
	}
	if err := w.close(); err != nil {
		os.Remove(filepath.Join(s.dir, segmentName(newID)))
		return CompactStats{}, fmt.Errorf("statestore: close base segment: %w", err)
	}

	// Install: swap the catalog, write the manifest, trim the chains.
	s.fileMu.Lock()
	s.mu.Lock()
	live := make([]segmentMeta, 0, len(s.man.live)+1)
	live = append(live, newMeta)
	for _, meta := range s.man.live {
		if !foldIDs[meta.id] {
			live = append(live, meta)
		}
	}
	s.man.live = live
	s.man.baseVersion = foldV
	for id := range foldIDs {
		s.man.retired = append(s.man.retired, id)
	}
	sort.Slice(s.man.retired, func(i, j int) bool { return s.man.retired[i] < s.man.retired[j] })
	var drop []uint64
	if keep := s.opts.RetainRetired; len(s.man.retired) > keep {
		drop = append(drop, s.man.retired[:len(s.man.retired)-keep]...)
		s.man.retired = append([]uint64(nil), s.man.retired[len(s.man.retired)-keep:]...)
	}
	man := s.man
	if err := writeManifest(s.dir, &man); err != nil {
		// Roll the in-memory catalog back is not possible halfway — but
		// nothing was deleted yet, so the store stays readable; report.
		s.mu.Unlock()
		s.fileMu.Unlock()
		return CompactStats{}, err
	}
	for _, keys := range s.idx {
		for _, h := range keys {
			i := sort.Search(len(h.chain), func(i int) bool { return h.chain[i].version > foldV })
			if i > 1 {
				h.chain = append([]verEntry(nil), h.chain[i-1:]...)
			}
		}
	}
	s.refreshGaugesLocked()
	s.mu.Unlock()
	s.fileMu.Unlock()

	for _, id := range drop {
		if err := os.Remove(filepath.Join(s.dir, segmentName(id))); err != nil && !os.IsNotExist(err) {
			return CompactStats{}, fmt.Errorf("statestore: remove retired segment: %w", err)
		}
	}

	st := CompactStats{
		FoldedSegments: len(foldIDs),
		FoldedRecords:  foldRecs,
		BaseRecords:    baseRecords,
		BaseVersion:    foldV,
	}
	if foldBytes > newMeta.bytes {
		st.ReclaimedBytes = foldBytes - newMeta.bytes
	}
	s.meter.RecordCompaction(st.ReclaimedBytes, st.FoldedSegments)
	return st, nil
}
