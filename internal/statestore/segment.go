// Package statestore is the tiered checkpoint store behind the
// checkpoint.Store interface: append-only segment files in the wire's
// varint/binary framing (one CRC-protected record per checkpointed
// key), a manifest naming the live segments and the monotonically
// increasing checkpoint version of every supervisor snapshot, and
// background compaction that folds incremental deltas into a base
// segment with exactly the split-partial merge semantics of
// checkpoint.Image. On top of the durable tier it keeps a multi-version
// in-memory index, so point-in-time reads — Lookup(op, key, version)
// and Scan(op, version) — are served snapshot-consistently without
// blocking appends, and reloading after a compaction costs O(live
// keys), not O(append history).
//
// The design borrows the catalog/storage/query separation of
// LSM-flavoured table stores (see SNIPPETS.md): segments are immutable
// once sealed, the manifest is the only mutable naming authority
// (replaced atomically via rename), and compaction is the same
// incremental-over-full discipline Le Merrer & Trédan apply to
// repartitioning — fold the deltas, never rewrite what didn't change.
package statestore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/locastream/locastream/internal/engine"
)

// Segment file layout. A segment starts with a 4-byte magic and holds
// length-prefixed records, each protected by a CRC over its body:
//
//	magic "LSG1"
//	record := bodyLen uvarint | body | crc32(body) 4 B LE
//	body   := version  uvarint        — checkpoint version of the append
//	          flags    byte           — bit0 split, bit1 has-data
//	          opLen    uvarint, op
//	          keyLen   uvarint, key
//	          inst     uvarint
//	          [has-data] dataLen uvarint, data
//	          [split]    nReplicas uvarint, nReplicas × uvarint
//
// The has-data flag preserves the nil-vs-empty Data distinction the
// JSONL store kept through JSON null. A record truncated at the end of
// the file (crash mid-append) is tolerated — every complete record
// before it is a valid prefix of the history; a CRC mismatch on a fully
// present record is interior corruption and fails the load.
const (
	segMagic = "LSG1"

	flagSplit   = 1 << 0
	flagHasData = 1 << 1

	// maxRecordBytes bounds one record body so a corrupt length prefix
	// cannot make the reader allocate whatever a flipped bit asks for.
	// It matches the JSONL store's 16 MiB line cap.
	maxRecordBytes = 16 << 20

	// maxIntField bounds instance numbers and replica values decoded
	// from disk so int(u) stays non-negative even where int is 32 bits.
	maxIntField = 1<<31 - 1
)

var (
	errSegmentCorrupt = errors.New("statestore: corrupt segment record")
	errManifestValue  = errors.New("statestore: corrupt manifest")
)

// rec is one decoded segment record: the checkpointed key state plus
// the checkpoint version of the append that wrote it.
type rec struct {
	version uint64
	state   engine.KeyState
}

// appendRecord appends the segment encoding of one record to buf.
func appendRecord(buf []byte, r rec) []byte {
	var flags byte
	if r.state.Split {
		flags |= flagSplit
	}
	if r.state.Data != nil {
		flags |= flagHasData
	}
	body := binary.AppendUvarint(nil, r.version)
	body = append(body, flags)
	body = appendString(body, r.state.Op)
	body = appendString(body, r.state.Key)
	body = binary.AppendUvarint(body, uint64(nonNeg(r.state.Inst)))
	if r.state.Data != nil {
		body = binary.AppendUvarint(body, uint64(len(r.state.Data)))
		body = append(body, r.state.Data...)
	}
	if r.state.Split {
		body = binary.AppendUvarint(body, uint64(len(r.state.Replicas)))
		for _, inst := range r.state.Replicas {
			body = binary.AppendUvarint(body, uint64(nonNeg(inst)))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func nonNeg(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// decodeBody decodes one record body (the bytes the CRC covers).
func decodeBody(body []byte) (rec, error) {
	var r rec
	var u uint64
	var ok bool
	if r.version, body, ok = readUvarint(body); !ok {
		return r, errSegmentCorrupt
	}
	if len(body) < 1 {
		return r, errSegmentCorrupt
	}
	flags := body[0]
	body = body[1:]
	if flags&^(flagSplit|flagHasData) != 0 {
		return r, errSegmentCorrupt
	}
	if r.state.Op, body, ok = readString(body); !ok {
		return r, errSegmentCorrupt
	}
	if r.state.Key, body, ok = readString(body); !ok {
		return r, errSegmentCorrupt
	}
	if u, body, ok = readUvarint(body); !ok || u > maxIntField {
		return r, errSegmentCorrupt
	}
	r.state.Inst = int(u)
	if flags&flagHasData != 0 {
		if u, body, ok = readUvarint(body); !ok || u > uint64(len(body)) {
			return r, errSegmentCorrupt
		}
		r.state.Data = append([]byte{}, body[:u]...)
		body = body[u:]
	}
	if flags&flagSplit != 0 {
		r.state.Split = true
		// Each replica entry costs at least one byte, so a count beyond
		// the remaining bytes is unsatisfiable.
		if u, body, ok = readUvarint(body); !ok || u > uint64(len(body)) {
			return r, errSegmentCorrupt
		}
		replicas := make([]int, u)
		for i := range replicas {
			if u, body, ok = readUvarint(body); !ok || u > maxIntField {
				return r, errSegmentCorrupt
			}
			replicas[i] = int(u)
		}
		r.state.Replicas = replicas
	}
	if len(body) != 0 {
		return r, errSegmentCorrupt
	}
	return r, nil
}

func readUvarint(p []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, p, false
	}
	return v, p[n:], true
}

func readString(p []byte) (string, []byte, bool) {
	v, rest, ok := readUvarint(p)
	if !ok || v > uint64(len(rest)) {
		return "", p, false
	}
	return string(rest[:v]), rest[v:], true
}

// readSegment replays one segment file, calling fn for every complete
// record. A record truncated at the end of the stream is tolerated (the
// torn tail of a crashed append); a CRC mismatch or a malformed body on
// a fully present record is interior corruption and returns an error.
func readSegment(r io.Reader, fn func(rec) error) error {
	br := bufio.NewReaderSize(r, 64*1024)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		if err == io.EOF {
			return nil // empty file: a segment created but never appended to
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("statestore: truncated segment header")
		}
		return err
	}
	if string(magic) != segMagic {
		return fmt.Errorf("statestore: bad segment magic %q", magic)
	}
	body := make([]byte, 0, 4096)
	crcBuf := make([]byte, 4)
	for {
		bodyLen, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // torn length prefix at EOF
			}
			return err
		}
		if bodyLen > maxRecordBytes {
			return fmt.Errorf("statestore: segment record of %d bytes exceeds the %d MiB cap (oversized or corrupt record)",
				bodyLen, maxRecordBytes>>20)
		}
		if cap(body) < int(bodyLen) {
			body = make([]byte, bodyLen)
		}
		body = body[:bodyLen]
		if _, err := io.ReadFull(br, body); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // torn body at EOF
			}
			return err
		}
		if _, err := io.ReadFull(br, crcBuf); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // torn checksum at EOF
			}
			return err
		}
		if binary.LittleEndian.Uint32(crcBuf) != crc32.ChecksumIEEE(body) {
			return fmt.Errorf("statestore: segment record checksum mismatch: %w", errSegmentCorrupt)
		}
		rc, err := decodeBody(body)
		if err != nil {
			return err
		}
		if err := fn(rc); err != nil {
			return err
		}
	}
}

// segmentWriter appends records to the active segment file, fsyncing
// per batch so a checkpoint is durable before the supervisor considers
// it taken.
type segmentWriter struct {
	id    uint64
	f     *os.File
	buf   []byte
	bytes uint64 // file size including header
	recs  uint64
	minV  uint64
	maxV  uint64
	sync  bool
}

func createSegment(path string, id uint64, sync bool) (*segmentWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("statestore: create segment: %w", err)
	}
	fail := func(what string, err error) (*segmentWriter, error) {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("statestore: %s: %w", what, err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		return fail("write segment header", err)
	}
	if sync {
		// The header and the directory entry must be durable before the
		// manifest names this segment: after a power loss the fsynced
		// manifest must never point at a missing file or a torn header,
		// either of which would make the store unopenable.
		if err := f.Sync(); err != nil {
			return fail("sync segment header", err)
		}
		if err := syncDir(filepath.Dir(path)); err != nil {
			return fail("sync segment directory", err)
		}
	}
	return &segmentWriter{id: id, f: f, bytes: uint64(len(segMagic)), sync: sync}, nil
}

// append writes one batch of records stamped with version, flushes and
// (when durability is on) fsyncs.
func (w *segmentWriter) append(version uint64, recs []engine.KeyState) error {
	w.buf = w.buf[:0]
	for _, st := range recs {
		w.buf = appendRecord(w.buf, rec{version: version, state: st})
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("statestore: write segment: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("statestore: sync segment: %w", err)
		}
	}
	if w.recs == 0 || version < w.minV {
		w.minV = version
	}
	if version > w.maxV {
		w.maxV = version
	}
	w.recs += uint64(len(recs))
	w.bytes += uint64(len(w.buf))
	return nil
}

func (w *segmentWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
