package statestore

import (
	"fmt"
	"testing"

	"github.com/locastream/locastream/internal/engine"
)

// BenchmarkStoreAppend measures the full append path — encode, write,
// in-memory merge, catalog bookkeeping — with fsync off so the gate
// tracks the store's own cost, not the filesystem's flush latency.
func BenchmarkStoreAppend(b *testing.B) {
	s, err := Open(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	batch := make([]engine.KeyState, 8)
	for i := range batch {
		batch[i] = engine.KeyState{
			Op: "count", Inst: i % 4, Key: fmt.Sprintf("key-%02d", i),
			Data: []byte(`{"n":123456,"updated":"2016-11-07T12:00:00Z"}`),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreLookup measures a point-in-time read against a store
// with a deep version history over a moderate keyspace.
func BenchmarkStoreLookup(b *testing.B) {
	s, err := Open(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const keys = 64
	versions := make([]uint64, 0, 256)
	for i := 0; i < 256; i++ {
		v, err := s.AppendVersion([]engine.KeyState{{
			Op: "count", Inst: 0, Key: fmt.Sprintf("key-%02d", i%keys),
			Data: []byte(fmt.Sprintf(`{"n":%d}`, i)),
		}})
		if err != nil {
			b.Fatal(err)
		}
		versions = append(versions, v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := versions[i%len(versions)]
		if _, _, err := s.Lookup("count", fmt.Sprintf("key-%02d", i%keys), v); err != nil {
			b.Fatal(err)
		}
	}
}
