package transport

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/locastream/locastream/internal/metrics"
)

// --- LZ codec ---

func TestLZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	random := make([]byte, 8<<10)
	rng.Read(random)
	repetitive := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog "), 256)
	overlap := bytes.Repeat([]byte{0xAB}, 1000) // offset-1 self-overlapping matches
	mixed := append(append([]byte{}, repetitive...), random...)
	big := bytes.Repeat(random[:100], 1<<10) // ~100KiB, offsets past lzMaxOffset

	cases := map[string][]byte{
		"empty":      {},
		"one-byte":   {7},
		"short":      []byte("abc"),
		"repetitive": repetitive,
		"random":     random,
		"overlap":    overlap,
		"mixed":      mixed,
		"big":        big,
	}
	var table [1 << lzHashBits]int32
	for name, src := range cases {
		comp := lzAppendCompress(nil, src, &table)
		got, err := lzAppendDecompress(nil, comp, len(src))
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: round trip mismatch: %d bytes in, %d out", name, len(src), len(got))
		}
	}
	// Sanity: the codec actually compresses what it exists for.
	if comp := lzAppendCompress(nil, repetitive, &table); len(comp) >= len(repetitive)/4 {
		t.Fatalf("repetitive text compressed to %d of %d bytes", len(comp), len(repetitive))
	}
}

// TestLZDecompressBounded hammers the decoder with truncated and
// mutated streams: it must never panic and never produce more than the
// declared limit, whatever the bytes say.
func TestLZDecompressBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := append(bytes.Repeat([]byte("hot key hot key "), 200), make([]byte, 512)...)
	rng.Read(src[len(src)-512:])
	var table [1 << lzHashBits]int32
	comp := lzAppendCompress(nil, src, &table)

	for cut := 0; cut < len(comp); cut++ {
		if out, err := lzAppendDecompress(nil, comp[:cut], len(src)); err == nil && len(out) > len(src) {
			t.Fatalf("truncation at %d produced %d bytes, limit %d", cut, len(out), len(src))
		}
	}
	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte{}, comp...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		if out, err := lzAppendDecompress(nil, mut, len(src)); err == nil && len(out) > len(src) {
			t.Fatalf("mutation trial %d produced %d bytes, limit %d", trial, len(out), len(src))
		}
	}
}

// --- dictionary ---

func TestDictInternPromotesOnSecondSighting(t *testing.T) {
	d := newSendDict()
	if _, ok := d.intern("hot"); ok {
		t.Fatal("first sighting interned")
	}
	id, ok := d.intern("hot")
	if !ok || id != 0 {
		t.Fatalf("second sighting: id=%d ok=%v, want 0 true", id, ok)
	}
	if d.pendingEntries != 1 {
		t.Fatalf("pendingEntries = %d, want 1", d.pendingEntries)
	}
	if id, ok := d.intern("hot"); !ok || id != 0 {
		t.Fatalf("third sighting: id=%d ok=%v, want 0 true", id, ok)
	}
	// Empty and oversized strings never intern, however often they recur.
	long := strings.Repeat("x", maxDictString+1)
	for i := 0; i < 3; i++ {
		if _, ok := d.intern(""); ok {
			t.Fatal("empty string interned")
		}
		if _, ok := d.intern(long); ok {
			t.Fatal("oversized string interned")
		}
	}
	// Exactly maxDictString is the longest legal entry.
	edge := strings.Repeat("y", maxDictString)
	d.intern(edge)
	if id, ok := d.intern(edge); !ok || id != 1 {
		t.Fatalf("maxDictString entry: id=%d ok=%v, want 1 true", id, ok)
	}

	var r recvDict
	n, err := r.apply(d.pending)
	if err != nil || n != 2 {
		t.Fatalf("apply: entries=%d err=%v, want 2 nil", n, err)
	}
	if r.entries[0] != "hot" || r.entries[1] != edge {
		t.Fatalf("receiver entries = %q", r.entries[:1])
	}
}

func TestRecvDictRejectsBadAnnouncements(t *testing.T) {
	good := func() []byte {
		d := newSendDict()
		d.intern("a")
		d.intern("a")
		return append([]byte{}, d.pending...)
	}()
	cases := map[string][]byte{
		"out-of-order id": {2, 1, 'a'},           // id 2 when 0 expected
		"empty string":    {0, 0},                // zero-length entry
		"truncated":       good[:len(good)-1],    // body shorter than declared
		"duplicate id":    append(good, good...), // second announce reuses id 0
	}
	for name, p := range cases {
		var r recvDict
		if _, err := r.apply(p); err == nil {
			t.Fatalf("%s: apply accepted corrupt announcement", name)
		}
	}
}

// TestDictBatchRoundTrip drives the tagged encoding directly: three
// batches through one send dictionary (so later batches reference
// entries the earlier ones promoted), announcements applied in flush
// order, every field surviving intact.
func TestDictBatchRoundTrip(t *testing.T) {
	msgs := []Message{
		{Kind: KindData, To: Addr{Op: "B", Instance: 2}, From: 1,
			KeyOp: "A", Key: "Asia", Padding: 64, Values: []string{"Asia", "#golang"}},
		{Kind: KindData, To: Addr{Op: "B"}, Key: "Asia", Values: []string{"", "Asia"}},
		{Kind: KindData, To: Addr{Op: "B", Instance: 1}, Key: "ключ", Values: nil},
		{Kind: KindData, To: Addr{Op: "B"}, Key: "ключ", Values: []string{string([]byte{0xff, 0x00, 0xfe})}},
	}
	sd := newSendDict()
	var rd recvDict
	for round := 0; round < 3; round++ {
		var buf []byte
		for i := range msgs {
			buf = appendTupleDict(buf, &msgs[i], sd)
		}
		// A real flush writes the announce frame before the data frame.
		if len(sd.pending) > 0 {
			if _, err := rd.apply(sd.pending); err != nil {
				t.Fatalf("round %d: apply: %v", round, err)
			}
			sd.pending = sd.pending[:0]
			sd.pendingEntries = 0
		}
		got, err := appendBatchDict(nil, buf, &rd)
		if err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		if !reflect.DeepEqual(got, msgs) {
			t.Fatalf("round %d: decoded batch differs:\n got %+v\nwant %+v", round, got, msgs)
		}
	}
	if sd.hits == 0 {
		t.Fatal("no dictionary hits across three identical batches")
	}
}

// --- end-to-end over real sockets ---

// wirePipe sends msgs 0 -> 1 through a two-node fabric with the given
// compression mode and returns what node 1's BatchHandler delivered (in
// order) plus the meter snapshot after everything arrived.
func wirePipe(t *testing.T, comp Compression, opts NodeOptions, msgs []Message) ([]Message, metrics.WireStats) {
	t.Helper()
	meter := new(metrics.WireMeter)
	var (
		mu       sync.Mutex
		got      []Message
		received atomic.Int64
	)
	opts.Compression = comp
	opts.Meter = meter
	opts.BatchHandler = func(_ int, batch []Message) {
		mu.Lock()
		got = append(got, batch...)
		mu.Unlock()
		received.Add(int64(len(batch)))
	}
	f, err := NewFabricWith(2, func(int, Message) {}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := range msgs {
		if err := f.Send(0, 1, msgs[i]); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitDelivered(t, &received, int64(len(msgs)))
	mu.Lock()
	defer mu.Unlock()
	return got, meter.Snapshot()
}

func waitDelivered(t *testing.T, c *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d tuples", c.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// propertyMessages generates a deterministic adversarial batch stream:
// Zipf-ish key skew, unicode and raw-binary keys and values, empty
// strings, nil value slices, strings past maxDictString (legal inline,
// never interned) and the occasional tuple bigger than the flush
// threshold.
func propertyMessages(seed int64, n int) []Message {
	rng := rand.New(rand.NewSource(seed))
	hot := []string{
		"Asia", "Europe", "#golang", "clé-européenne", "ключ-горячий", "キー",
		string([]byte{0xff, 0x00, 0xfe, 0x80, 1, 2, 3}),
	}
	msgs := make([]Message, n)
	for i := range msgs {
		m := Message{
			Kind:    KindData,
			To:      Addr{Op: "B", Instance: rng.Intn(4)},
			From:    rng.Intn(4),
			KeyOp:   "A",
			Padding: rng.Intn(512),
		}
		if rng.Intn(10) < 8 {
			m.Key = hot[rng.Intn(len(hot))]
		} else {
			m.Key = fmt.Sprintf("cold-%d", i)
		}
		if nv := rng.Intn(4); nv > 0 {
			vals := make([]string, nv)
			for j := range vals {
				switch rng.Intn(10) {
				case 0:
					vals[j] = "" // empty field
				case 1, 2:
					b := make([]byte, rng.Intn(64))
					rng.Read(b)
					vals[j] = string(b) // raw binary, almost surely not UTF-8
				case 3:
					b := make([]byte, maxDictString+1+rng.Intn(256))
					rng.Read(b)
					vals[j] = string(b) // too long to intern, rides inline
				default:
					vals[j] = hot[rng.Intn(len(hot))]
				}
			}
			m.Values = vals
		}
		msgs[i] = m
	}
	// One tuple larger than the default flush threshold, exercising the
	// single-tuple-spills-a-frame path under every encoding.
	huge := make([]byte, DefaultFlushBytes+8192)
	rng.Read(huge)
	msgs[n/2].Values = []string{string(huge)}
	return msgs
}

// TestCompressionModesRoundTripProperty is the transport's property
// test: the same adversarial stream must arrive bit-identical, in
// order, under every compression mode — and all three modes must agree
// with each other.
func TestCompressionModesRoundTripProperty(t *testing.T) {
	msgs := propertyMessages(42, 2000)
	delivered := map[Compression][]Message{}
	for _, tc := range []struct {
		name string
		comp Compression
	}{
		{"off", CompressionOff},
		{"dict", CompressionDict},
		{"auto", CompressionAuto},
	} {
		got, st := wirePipe(t, tc.comp, NodeOptions{}, msgs)
		if !reflect.DeepEqual(got, msgs) {
			for i := range msgs {
				if i >= len(got) || !reflect.DeepEqual(got[i], msgs[i]) {
					t.Fatalf("%s: first mismatch at tuple %d of %d", tc.name, i, len(msgs))
				}
			}
			t.Fatalf("%s: delivered %d tuples, want %d", tc.name, len(got), len(msgs))
		}
		delivered[tc.comp] = got
		if st.TuplesReceived != uint64(len(msgs)) {
			t.Fatalf("%s: meter counted %d tuples received, want %d", tc.name, st.TuplesReceived, len(msgs))
		}
		switch tc.comp {
		case CompressionOff:
			if st.DictFramesSent != 0 || st.CompressedFramesSent != 0 {
				t.Fatalf("off: sent %d dict / %d compressed frames", st.DictFramesSent, st.CompressedFramesSent)
			}
			if st.RawBytesSent != st.BytesSent {
				t.Fatalf("off: RawBytesSent %d != BytesSent %d", st.RawBytesSent, st.BytesSent)
			}
		case CompressionDict:
			if st.DictFramesSent == 0 || st.DictHits == 0 {
				t.Fatal("dict: dictionary never used on a skewed stream")
			}
			if st.CompressedFramesSent != 0 {
				t.Fatal("dict: LZ pass ran with CompressionDict")
			}
		case CompressionAuto:
			if st.DictFramesSent == 0 {
				t.Fatal("auto: dictionary never used on a skewed stream")
			}
			if r := st.CompressionRatio(); r <= 1.0 {
				t.Fatalf("auto: compression ratio %.3f, want > 1.0", r)
			}
		}
	}
	if !reflect.DeepEqual(delivered[CompressionOff], delivered[CompressionAuto]) ||
		!reflect.DeepEqual(delivered[CompressionOff], delivered[CompressionDict]) {
		t.Fatal("modes disagree on the delivered stream")
	}
}

// TestReconnectFreshDictionary reconnects a peer mid-stream and proves
// the dictionaries reset together: the same hot strings are announced
// again on the new connection and every tuple still decodes. (If the
// sender kept its old dictionary the receiver would see references to
// entries never announced on this connection, the decode would fail and
// the second half of the stream would never arrive.)
func TestReconnectFreshDictionary(t *testing.T) {
	meter := new(metrics.WireMeter)
	var received atomic.Int64
	opts := NodeOptions{
		Meter: meter,
		BatchHandler: func(_ int, batch []Message) {
			received.Add(int64(len(batch)))
		},
	}
	n0, err := NewNodeWith(0, func(Message) {}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := NewNodeWith(1, func(Message) {}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	addrs := map[int]string{1: n1.Addr()}
	if err := n0.Connect(addrs); err != nil {
		t.Fatal(err)
	}

	msg := Message{Kind: KindData, To: Addr{Op: "B", Instance: 1},
		KeyOp: "A", Key: "hot-key", Values: []string{"hot-value"}}
	for i := 0; i < 100; i++ {
		if err := n0.Send(1, msg); err != nil {
			t.Fatal(err)
		}
	}
	waitDelivered(t, &received, 100)
	first := meter.Snapshot()
	if first.DictEntriesSent == 0 {
		t.Fatal("no dictionary entries announced before reconnect")
	}

	// Reconnect: Connect drops the old connection first, so both ends
	// discard their dictionary state together.
	if err := n0.Connect(addrs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := n0.Send(1, msg); err != nil {
			t.Fatal(err)
		}
	}
	waitDelivered(t, &received, 200)
	second := meter.Snapshot()
	if second.DictEntriesSent < first.DictEntriesSent+1 {
		t.Fatalf("reconnect announced no new entries (%d before, %d after): dictionary bled across connections",
			first.DictEntriesSent, second.DictEntriesSent)
	}
	// Every announced entry was installed: send and receive sides agree.
	if second.DictEntriesRecv != second.DictEntriesSent {
		t.Fatalf("receiver installed %d entries, sender announced %d",
			second.DictEntriesRecv, second.DictEntriesSent)
	}
}

// TestDropPeerSettlesPendingBatchExactly pins the loss accounting the
// engine's KillServer relies on: severing a connection with a pending
// batch reports exactly the batched tuple count through DropHandler,
// exactly once, and nothing through FlushedHandler.
func TestDropPeerSettlesPendingBatchExactly(t *testing.T) {
	var dropped, flushed atomic.Int64
	opts := NodeOptions{
		FlushBytes:     1 << 20,
		FlushInterval:  time.Hour, // nothing flushes on its own
		DropHandler:    func(tuples int) { dropped.Add(int64(tuples)) },
		FlushedHandler: func(_, tuples int) { flushed.Add(int64(tuples)) },
	}
	n0, err := NewNodeWith(0, func(Message) {}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := NewNodeWith(1, func(Message) {}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	if err := n0.Connect(map[int]string{1: n1.Addr()}); err != nil {
		t.Fatal(err)
	}

	msg := Message{Kind: KindData, To: Addr{Op: "B"}, Key: "k", Values: []string{"v"}}
	const pending = 7
	for i := 0; i < pending; i++ {
		if err := n0.Send(1, msg); err != nil {
			t.Fatal(err)
		}
	}
	n0.DropPeer(1)
	if got := dropped.Load(); got != pending {
		t.Fatalf("DropHandler reported %d tuples, want exactly %d", got, pending)
	}
	if got := flushed.Load(); got != 0 {
		t.Fatalf("FlushedHandler sum = %d for tuples that never hit the wire", got)
	}
	n0.DropPeer(1) // idempotent: no double accounting
	if got := dropped.Load(); got != pending {
		t.Fatalf("second DropPeer changed the count to %d", got)
	}
	if err := n0.Send(1, msg); err == nil {
		t.Fatal("Send succeeded on a dropped peer")
	}
}

// TestWriteFailureSettlesPendingBatchExactly kills the socket under a
// pending batch (the regression this PR fixes: tuples in a
// not-yet-flushed batch must be counted when the connection breaks).
// The flush is forced by a control send, the write fails on the closed
// socket, and the accounting must settle to exactly the batched count —
// FlushedHandler's optimistic increment taken back, DropHandler told
// once.
func TestWriteFailureSettlesPendingBatchExactly(t *testing.T) {
	var dropped, flushed atomic.Int64
	opts := NodeOptions{
		FlushBytes:     1 << 20,
		FlushInterval:  time.Hour,
		DropHandler:    func(tuples int) { dropped.Add(int64(tuples)) },
		FlushedHandler: func(_, tuples int) { flushed.Add(int64(tuples)) },
	}
	n0, err := NewNodeWith(0, func(Message) {}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := NewNodeWith(1, func(Message) {}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	if err := n0.Connect(map[int]string{1: n1.Addr()}); err != nil {
		t.Fatal(err)
	}

	// Repeated keys so the batch also carries pending dictionary
	// announcements — the failing write is then the announce frame, the
	// earliest casualty on the flush path.
	msg := Message{Kind: KindData, To: Addr{Op: "B"}, Key: "hot", Values: []string{"hot"}}
	const pending = 5
	for i := 0; i < pending; i++ {
		if err := n0.Send(1, msg); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the socket out from under the batch, deterministically.
	pc := (*n0.peers.Load())[1]
	_ = pc.conn.Close()

	if err := n0.Send(1, Message{Kind: KindHeartbeat, From: 0}); err == nil {
		t.Fatal("control send succeeded on a closed socket")
	}
	if got := dropped.Load(); got != pending {
		t.Fatalf("DropHandler reported %d tuples, want exactly %d", got, pending)
	}
	if got := flushed.Load(); got != 0 {
		t.Fatalf("FlushedHandler sum = %d after failed flush, want 0", got)
	}
}

// TestSkewedWorkloadCompressionSavesBytes is the PR's headline number as
// a deterministic test: on a skewed keyed workload the dictionary+LZ
// path must cut on-wire bytes per tuple by at least 30% against the raw
// encoding (the engine-level benchmarks report the same metric for the
// bench gate).
func TestSkewedWorkloadCompressionSavesBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	hot := []string{"Asia", "Europe", "Africa", "Oceania", "#golang", "#storm", "#streams"}
	msgs := make([]Message, 4096)
	for i := range msgs {
		key := hot[rng.Intn(len(hot))]
		if rng.Intn(10) == 0 {
			key = fmt.Sprintf("cold-%d", i)
		}
		msgs[i] = Message{
			Kind: KindData, To: Addr{Op: "B", Instance: rng.Intn(4)},
			KeyOp: "A", Key: key, Padding: 64,
			Values: []string{key, hot[rng.Intn(len(hot))]},
		}
	}
	opts := NodeOptions{FlushBytes: 32 << 10, FlushInterval: 50 * time.Millisecond}
	_, off := wirePipe(t, CompressionOff, opts, msgs)
	_, auto := wirePipe(t, CompressionAuto, opts, msgs)

	offBPT, autoBPT := off.WireBytesPerTuple(), auto.WireBytesPerTuple()
	if offBPT == 0 || autoBPT == 0 {
		t.Fatalf("meter recorded no bytes (off %.1f, auto %.1f)", offBPT, autoBPT)
	}
	t.Logf("on-wire bytes/tuple: raw %.1f, compressed %.1f (ratio %.2fx, dict hit rate %.2f)",
		offBPT, autoBPT, auto.CompressionRatio(), auto.DictHitRate())
	if autoBPT > 0.7*offBPT {
		t.Fatalf("compressed path uses %.1f B/tuple, want <= 70%% of raw %.1f B/tuple", autoBPT, offBPT)
	}
	if r := auto.CompressionRatio(); r <= 1.0 {
		t.Fatalf("compression ratio %.3f, want > 1.0", r)
	}
}
