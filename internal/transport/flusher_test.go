package transport

import (
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/locastream/locastream/internal/metrics"
)

// TestWritevCoalescesQueuedFrames pins the tentpole property of the
// flusher: frames that pile up while a vectored write is (or could be)
// in flight drain in ONE net.Buffers round, not one syscall each. The
// test parks the flusher by holding the peer's batch lock, stages eight
// complete frames, releases the lock and watches the meter: all eight
// must leave through a single writev.
func TestWritevCoalescesQueuedFrames(t *testing.T) {
	meter := new(metrics.WireMeter)
	recv, err := NewNode(1, func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	n, err := NewNodeWith(0, func(Message) {}, NodeOptions{Meter: meter})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Connect(map[int]string{1: recv.Addr()}); err != nil {
		t.Fatal(err)
	}

	pc := (*n.peers.Load())[1]
	if pc == nil {
		t.Fatal("no peer connection")
	}
	const frames = 8
	msg := Message{Kind: KindData, To: Addr{Op: "B", Instance: 1}, Key: "k", Values: []string{"v"}}
	pc.mu.Lock()
	// With the lock held the flusher cannot wake from its cond.Wait, so
	// every frame staged here lands in the same queue generation.
	for i := 0; i < frames; i++ {
		buf := pc.takeBufLocked()
		buf = appendTuple(buf, &msg)
		putFrameHeader(buf, frameData)
		pc.enqueueLocked(queuedFrame{
			buf: buf, class: classData, tuples: 1,
			rawBytes: len(buf) - frameHeaderLen, reason: metrics.FlushSize,
		})
	}
	pc.mu.Unlock()

	deadline := time.Now().Add(5 * time.Second)
	var snap metrics.WireStats
	for {
		snap = meter.Snapshot()
		if snap.FramesSent >= frames || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if snap.FramesSent != frames {
		t.Fatalf("FramesSent = %d, want %d", snap.FramesSent, frames)
	}
	if snap.WritevCalls != 1 || snap.WritevFrames != frames {
		t.Fatalf("writev calls/frames = %d/%d, want 1/%d (queued frames must coalesce)",
			snap.WritevCalls, snap.WritevFrames, frames)
	}
	if spf := snap.SyscallsPerFlush(); spf >= 1 {
		t.Fatalf("syscalls/flush = %.3f, want < 1 with a backed-up queue", spf)
	}
}

// TestKillPeerMidFlushExactAccounting is the writev-queue settlement
// regression test: when the connection dies with frames still staged in
// the flusher's queue (and a partial batch behind them), every accepted
// tuple must end up exactly once on one side of the ledger —
// FlushedHandler's running sum keeps the tuples that reached the
// kernel, DropHandler gets the rest, and the two add back up to every
// Send that returned nil.
func TestKillPeerMidFlushExactAccounting(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn // hold open, never read: the writev queue backs up
		}
	}()

	var dropped, flushedNet atomic.Int64
	n, err := NewNodeWith(0, func(Message) {}, NodeOptions{
		WriteTimeout:   200 * time.Millisecond,
		FlushBytes:     1 << 10,
		DropHandler:    func(tuples int) { dropped.Add(int64(tuples)) },
		FlushedHandler: func(_, tuples int) { flushedNet.Add(int64(tuples)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Connect(map[int]string{1: ln.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		select {
		case conn := <-accepted:
			conn.Close()
		default:
		}
	}()

	// Distinct pseudo-random payloads defeat the dictionary and the LZ
	// pass, so the queue fills with real bytes until the write deadline
	// kills the connection mid-flush.
	rng := rand.New(rand.NewSource(11))
	raw := make([]byte, 1<<10)
	sent := 0
	for i := 0; i < 1<<16; i++ {
		rng.Read(raw)
		if n.Send(1, Message{Kind: KindData, Key: "k", Values: []string{string(raw)}}) != nil {
			break
		}
		sent++
	}
	if sent == 0 {
		t.Fatal("no send was ever accepted")
	}

	// The flusher settles its in-hand frames asynchronously after the
	// write error; poll until the ledger balances.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if flushedNet.Load()+dropped.Load() == int64(sent) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := flushedNet.Load() + dropped.Load(); got != int64(sent) {
		t.Fatalf("ledger off: flushed %d + dropped %d = %d, want %d accepted tuples",
			flushedNet.Load(), dropped.Load(), got, sent)
	}
	if dropped.Load() == 0 {
		t.Fatal("stalled peer lost nothing: the writev queue was never exercised")
	}
	if flushedNet.Load() < 0 {
		t.Fatalf("flushed sum went negative (%d): a frame was debited twice", flushedNet.Load())
	}
}

// TestReconnectDuringRetune is the round-3 TCP drill: live traffic, a
// concurrent tug-of-war on the flush policy (the adaptive tuner's view
// of the world), a peer drop and a reconnect in the middle — after
// which the ledger must still balance exactly and traffic must flow on
// the new connection under whatever policy won.
func TestReconnectDuringRetune(t *testing.T) {
	var received atomic.Int64
	recv, err := NewNode(1, func(m Message) {
		if m.Kind == KindData {
			received.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	var dropped, flushedNet atomic.Int64
	n, err := NewNodeWith(0, func(Message) {}, NodeOptions{
		DropHandler:    func(tuples int) { dropped.Add(int64(tuples)) },
		FlushedHandler: func(_, tuples int) { flushedNet.Add(int64(tuples)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Connect(map[int]string{1: recv.Addr()}); err != nil {
		t.Fatal(err)
	}

	var accepted atomic.Int64
	stop := make(chan struct{})
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Sends fail while the connection is down mid-drill; only
			// accepted tuples enter the ledger.
			if n.Send(1, Message{Kind: KindData, To: Addr{Op: "B"}, Key: "k", Values: []string{"vvvvvvvv"}}) == nil {
				accepted.Add(1)
			}
		}
	}()

	var beforeReconnect int64
	for i := 0; i < 60; i++ {
		// Alternate the extremes the adaptive tuner swings between.
		if i%2 == 0 {
			n.SetFlushPolicy(MinFlushBytes, MinFlushInterval)
		} else {
			n.SetFlushPolicy(1<<20, 10*time.Millisecond)
		}
		if i == 30 {
			n.DropPeer(1)
			beforeReconnect = received.Load()
			if err := n.Connect(map[int]string{1: recv.Addr()}); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-pumpDone

	// A synchronous control send drains everything staged before it on
	// the live connection.
	if err := n.Send(1, Message{Kind: KindHeartbeat, From: 0}); err != nil {
		t.Fatalf("heartbeat after reconnect: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if flushedNet.Load()+dropped.Load() == accepted.Load() || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := flushedNet.Load() + dropped.Load(); got != accepted.Load() {
		t.Fatalf("ledger off after reconnect drill: flushed %d + dropped %d = %d, want %d accepted",
			flushedNet.Load(), dropped.Load(), got, accepted.Load())
	}
	// Delivered tuples are a subset of the tuples handed to the kernel.
	if received.Load() > flushedNet.Load() {
		t.Fatalf("received %d > flushed %d: a lost frame was delivered", received.Load(), flushedNet.Load())
	}
	// The new connection must carry traffic.
	reconDeadline := time.Now().Add(5 * time.Second)
	for received.Load() <= beforeReconnect && time.Now().Before(reconDeadline) {
		time.Sleep(time.Millisecond)
	}
	if received.Load() <= beforeReconnect {
		t.Fatal("no tuple was delivered after the reconnect")
	}
	// The last retune won and survives the drill (clamped by the node).
	if bytes, interval := n.FlushPolicy(); bytes != 1<<20 || interval != 10*time.Millisecond {
		t.Fatalf("flush policy after drill = %d/%v, want %d/%v", bytes, interval, 1<<20, 10*time.Millisecond)
	}
}
