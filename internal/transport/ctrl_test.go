package transport

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

func sampleControls() []Message {
	return []Message{
		{Kind: KindMigrate, To: Addr{Op: "B", Instance: 3}, From: 1,
			MigKey: "Asia", MigData: []byte("snapshot-bytes"), MigHasData: true},
		// Empty-but-present snapshot: the case gob's zero-value elision
		// could not represent. MigData nil, flag set.
		{Kind: KindMigrate, To: Addr{Op: "B", Instance: 0}, From: 2,
			MigKey: "k", MigData: nil, MigHasData: true},
		// No snapshot at all (key had no state at the old owner).
		{Kind: KindMigrate, To: Addr{Op: "wc", Instance: 7}, From: 0,
			MigKey: "", MigData: nil, MigHasData: false},
		{Kind: KindPropagate, To: Addr{Op: "B", Instance: 2}, From: 3},
		{Kind: KindHeartbeat, To: Addr{Op: "", Instance: 0}, From: 5},
	}
}

func TestControlRoundTrip(t *testing.T) {
	for _, in := range sampleControls() {
		buf := appendControl(nil, &in)
		out, err := decodeControl(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", in, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
		}
	}
}

// TestControlEmptySnapshotSurvives pins the regression the codec was
// written to fix: an empty-but-present migration snapshot must decode
// with MigHasData=true, distinguishable from a migration with no
// snapshot. The payload alone cannot carry that distinction; the flags
// bit must.
func TestControlEmptySnapshotSurvives(t *testing.T) {
	present := Message{Kind: KindMigrate, To: Addr{Op: "B"}, MigKey: "k", MigHasData: true}
	absent := Message{Kind: KindMigrate, To: Addr{Op: "B"}, MigKey: "k", MigHasData: false}
	pb, ab := appendControl(nil, &present), appendControl(nil, &absent)
	if bytes.Equal(pb, ab) {
		t.Fatal("present and absent empty snapshots encode identically")
	}
	pd, err1 := decodeControl(pb)
	ad, err2 := decodeControl(ab)
	if err1 != nil || err2 != nil {
		t.Fatalf("decode: %v / %v", err1, err2)
	}
	if !pd.MigHasData || ad.MigHasData {
		t.Fatalf("MigHasData lost: present=%v absent=%v", pd.MigHasData, ad.MigHasData)
	}
}

// TestControlDecodeCorrupt feeds the decoder malformed payloads; every
// one must error out cleanly with errFrameCorrupt, never panic, never
// accept.
func TestControlDecodeCorrupt(t *testing.T) {
	valid := appendControl(nil, &sampleControls()[0])
	hb := appendControl(nil, &Message{Kind: KindHeartbeat, From: 1})

	cases := map[string][]byte{
		"empty":              {},
		"version only":       {ctrlVersion},
		"future version":     append([]byte{ctrlVersion + 1}, valid[1:]...),
		"zero version":       append([]byte{0}, valid[1:]...),
		"kind data":          {ctrlVersion, byte(KindData), 0, 0, 0, 0},
		"kind unknown":       {ctrlVersion, 0x7f, 0, 0, 0, 0},
		"trailing byte":      append(append([]byte{}, valid...), 0),
		"hb trailing":        append(append([]byte{}, hb...), 0),
		"hb nonzero flags":   {ctrlVersion, byte(KindHeartbeat), 0, 0, 0, 1},
		"hb migrate fields":  append(append([]byte{}, hb...), 1, 'k', 0),
		"mig unknown flag":   {ctrlVersion, byte(KindMigrate), 0, 0, 0, 0x02, 0, 0},
		"mig len overrun":    {ctrlVersion, byte(KindMigrate), 0, 0, 0, 1, 0, 5, 'a'},
		"mig len absurd":     append([]byte{ctrlVersion, byte(KindMigrate), 0, 0, 0, 1, 0}, binary.AppendUvarint(nil, 1<<40)...),
		"op len overrun":     {ctrlVersion, byte(KindHeartbeat), 200},
		"instance ten bytes": append([]byte{ctrlVersion, byte(KindHeartbeat), 0}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02),
	}
	for name, p := range cases {
		if _, err := decodeControl(p); err == nil {
			t.Errorf("%s: corrupt payload accepted", name)
		}
	}

	// Every strict prefix of a valid migrate encoding is a truncation
	// and must be rejected.
	for cut := 0; cut < len(valid); cut++ {
		if _, err := decodeControl(valid[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// FuzzControlFrameDecode drives the control-frame decoder — the exact
// function Node.serve hands a frameControlV2 payload to — with
// arbitrary bytes. It must never panic, and everything it accepts must
// satisfy the codec's invariants and survive a re-encode round trip.
func FuzzControlFrameDecode(f *testing.F) {
	for _, m := range sampleControls() {
		f.Add(appendControl(nil, &m))
	}
	valid := appendControl(nil, &sampleControls()[0])
	f.Add(valid[:len(valid)-3])                          // torn mid-snapshot
	f.Add(append([]byte{ctrlVersion + 1}, valid[1:]...)) // future version
	f.Add([]byte{ctrlVersion, byte(KindData), 0, 0, 0, 0})
	f.Add(append(append([]byte{}, valid...), 0xee)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeControl(data)
		if err != nil {
			return
		}
		switch m.Kind {
		case KindMigrate, KindPropagate, KindHeartbeat:
		default:
			t.Fatalf("decoded illegal control kind %d", m.Kind)
		}
		if m.To.Instance < 0 || m.From < 0 {
			t.Fatalf("decoded negative int field: %+v", m)
		}
		if m.Kind != KindMigrate && (m.MigKey != "" || m.MigData != nil || m.MigHasData) {
			t.Fatalf("non-migrate decoded migration fields: %+v", m)
		}
		// Accepted payloads must round-trip: re-encoding the decoded
		// message and decoding again yields the identical message (the
		// encodings may differ only if the input used non-minimal
		// varints; the decoded values may not).
		again, err := decodeControl(appendControl(nil, &m))
		if err != nil {
			t.Fatalf("re-encode of accepted message rejected: %v (%+v)", err, m)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("re-encode round trip mismatch:\n in: %+v\nout: %+v", m, again)
		}
	})
}
