package transport

import (
	"encoding/binary"
	"errors"
)

// A small LZ77 pass for frame payloads, stdlib-only (ROADMAP rules out
// pulling in snappy/lz4; compress/flate's Huffman stage costs too much
// on a 1ms-flush hot path). The format is the LZ4 block idea reduced to
// what a 64KiB batch needs:
//
//	token: 1 byte — hi nibble literal-length code, lo nibble match-length code
//	[literal-length extension: uvarint, present when hi nibble == 15]
//	literals: that many raw bytes
//	match offset: 2 bytes LE, 1..65535 back from the write position
//	[match-length extension: uvarint, present when lo nibble == 15]
//
// Match length is code+4 (minimum match lzMinMatch). The final sequence
// carries literals only: it ends the block without an offset, signalled
// by offset bytes being absent because the input is exhausted.
//
// The compressor is greedy with a single 8K-entry hash table and spends
// ~1 byte of bookkeeping per 16 input bytes on incompressible data —
// cheap enough to attempt on every frame and keep only when it shrinks.
const (
	lzMinMatch  = 4
	lzMaxOffset = 65535
	lzHashBits  = 13
	lzHashShift = 64 - lzHashBits
)

var errLZCorrupt = errors.New("transport: corrupt compressed payload")

func lzHash(v uint32) uint32 {
	// Knuth multiplicative hashing on the 4 candidate bytes.
	return (v * 2654435761) >> (32 - lzHashBits)
}

func lzLoad32(p []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(p[i:])
}

// lzAppendCompress appends the compressed form of src to dst and
// returns it. The caller compares lengths and keeps the raw payload
// when compression did not help.
func lzAppendCompress(dst, src []byte, table *[1 << lzHashBits]int32) []byte {
	// Positions stored +1 so the zero value means "empty"; stale entries
	// from a previous frame are validated by byte comparison anyway, but
	// a stale position can exceed the current src, so each frame clears
	// the table. 32KiB memset per frame is ~1µs — noise next to the scan.
	clear(table[:])

	var (
		pos     int // next byte to process
		litFrom int // start of the unemitted literal run
	)
	for pos+4 <= len(src) { // lzLoad32 needs 4 readable bytes at pos
		h := lzHash(lzLoad32(src, pos))
		cand := int(table[h]) - 1
		table[h] = int32(pos + 1)
		if cand < 0 || pos-cand > lzMaxOffset || lzLoad32(src, cand) != lzLoad32(src, pos) {
			pos++
			continue
		}
		// Extend the match forward.
		matchLen := lzMinMatch
		for pos+matchLen < len(src) && src[cand+matchLen] == src[pos+matchLen] {
			matchLen++
		}
		dst = lzAppendSeq(dst, src[litFrom:pos], pos-cand, matchLen)
		pos += matchLen
		litFrom = pos
	}
	// Trailing literals (no offset follows: decoder sees input end).
	if litFrom < len(src) || len(src) == 0 {
		dst = lzAppendSeq(dst, src[litFrom:], 0, 0)
	}
	return dst
}

// lzAppendSeq emits one sequence. matchLen == 0 means the terminal
// literals-only sequence.
func lzAppendSeq(dst, lits []byte, offset, matchLen int) []byte {
	litCode := len(lits)
	if litCode > 14 {
		litCode = 15
	}
	matchCode := 0
	if matchLen > 0 {
		matchCode = matchLen - lzMinMatch
		if matchCode > 14 {
			matchCode = 15
		}
	}
	dst = append(dst, byte(litCode<<4|matchCode))
	if litCode == 15 {
		dst = binary.AppendUvarint(dst, uint64(len(lits)-15))
	}
	dst = append(dst, lits...)
	if matchLen == 0 {
		return dst
	}
	dst = append(dst, byte(offset), byte(offset>>8))
	if matchCode == 15 {
		dst = binary.AppendUvarint(dst, uint64(matchLen-lzMinMatch-15))
	}
	return dst
}

// lzAppendDecompress appends the decompressed form of src to dst,
// failing if the output would exceed limit bytes (the declared raw
// length, which readFrame has already bounded by maxFramePayload) or if
// any sequence is malformed. Matches may overlap their own output —
// copied byte-by-byte for exactly that reason.
func lzAppendDecompress(dst, src []byte, limit int) ([]byte, error) {
	base := len(dst)
	for len(src) > 0 {
		token := src[0]
		src = src[1:]
		litLen := int(token >> 4)
		if litLen == 15 {
			ext, n := binary.Uvarint(src)
			if n <= 0 || ext > uint64(limit) {
				return dst, errLZCorrupt
			}
			litLen += int(ext)
			src = src[n:]
		}
		if litLen > len(src) || len(dst)-base+litLen > limit {
			return dst, errLZCorrupt
		}
		dst = append(dst, src[:litLen]...)
		src = src[litLen:]
		if len(src) == 0 {
			return dst, nil // terminal literals-only sequence
		}
		if len(src) < 2 {
			return dst, errLZCorrupt
		}
		offset := int(src[0]) | int(src[1])<<8
		src = src[2:]
		matchLen := int(token&0x0f) + lzMinMatch
		if matchLen == 15+lzMinMatch {
			ext, n := binary.Uvarint(src)
			if n <= 0 || ext > uint64(limit) {
				return dst, errLZCorrupt
			}
			matchLen += int(ext)
			src = src[n:]
		}
		if offset == 0 || offset > len(dst)-base || len(dst)-base+matchLen > limit {
			return dst, errLZCorrupt
		}
		from := len(dst) - offset
		for i := 0; i < matchLen; i++ {
			dst = append(dst, dst[from+i])
		}
	}
	return dst, nil
}
