package transport

import (
	"encoding/gob"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/locastream/locastream/internal/metrics"
)

// benchMessage mirrors the engine's typical data tuple: two short
// values, a routing key, and synthetic padding.
func benchMessage() Message {
	return Message{
		Kind: KindData, To: Addr{Op: "B", Instance: 1},
		Values: []string{"Asia", "#golang"}, Padding: 64,
		KeyOp: "A", Key: "Asia",
	}
}

// benchWireForward measures tuples through the binary framed transport
// over real TCP loopback: encode into the per-peer batch, flush, kernel
// round trip, frame decode, batched hand-off — under the given
// compression mode.
func benchWireForward(b *testing.B, comp Compression) {
	var (
		received atomic.Int64
		target   atomic.Int64
	)
	done := make(chan struct{}, 1)
	meter := new(metrics.WireMeter)
	f, err := NewFabricWith(2, func(int, Message) {}, NodeOptions{
		Compression: comp,
		Meter:       meter,
		BatchHandler: func(_ int, msgs []Message) {
			if t := target.Load(); t > 0 && received.Add(int64(len(msgs))) >= t {
				select {
				case done <- struct{}{}:
				default:
				}
			}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()

	msg := benchMessage()
	// Warm up the connection, batch buffers and pools, and drain fully
	// so the timed region starts clean.
	target.Store(4096)
	for i := 0; i < 4096; i++ {
		if err := f.Send(0, 1, msg); err != nil {
			b.Fatal(err)
		}
	}
	awaitBench(b, done)

	b.ReportAllocs()
	b.ResetTimer()
	target.Store(received.Load() + int64(b.N))
	for i := 0; i < b.N; i++ {
		if err := f.Send(0, 1, msg); err != nil {
			b.Fatal(err)
		}
	}
	awaitBench(b, done)
	b.StopTimer()
	if st := meter.Snapshot(); st.FramesSent > 0 {
		b.ReportMetric(st.TuplesPerFrame(), "tuples/frame")
		b.ReportMetric(st.EncodeNsPerTuple(), "encode-ns/op")
		b.ReportMetric(st.WireBytesPerTuple(), "wire-B/tuple")
	}
}

// BenchmarkWireForward is the gated end-to-end number (BENCH_5.json):
// the default encoding, dictionary interning plus the opportunistic LZ
// pass. Compare with BenchmarkWireForwardRaw for the CPU cost of
// compression and with BenchmarkGobForward — the per-message gob path
// this protocol replaced — for the batching/binary speedup.
func BenchmarkWireForward(b *testing.B) { benchWireForward(b, CompressionAuto) }

// BenchmarkWireForwardRaw is the same pipeline with compression off:
// the PR 4 wire format, kept measurable so the Auto-vs-raw CPU trade
// stays visible.
func BenchmarkWireForwardRaw(b *testing.B) { benchWireForward(b, CompressionOff) }

// BenchmarkWireForwardSkewed drives a Zipf-ish keyed stream (16 hot
// keys, the workload the dictionary exists for) under each compression
// mode and reports wire-B/tuple — the on-wire bytes-per-tuple number
// the bench gate pins so compression wins cannot silently regress.
func BenchmarkWireForwardSkewed(b *testing.B) {
	keys := [16]string{
		"Asia", "Europe", "Africa", "Oceania", "Americas", "Antarctica",
		"#golang", "#storm", "#streams", "#kafka", "#flink", "#samza",
		"hot-0", "hot-1", "hot-2", "hot-3",
	}
	for _, mode := range []struct {
		name string
		comp Compression
	}{{"off", CompressionOff}, {"dict", CompressionDict}, {"auto", CompressionAuto}} {
		b.Run(mode.name, func(b *testing.B) {
			var (
				received atomic.Int64
				target   atomic.Int64
			)
			done := make(chan struct{}, 1)
			meter := new(metrics.WireMeter)
			f, err := NewFabricWith(2, func(int, Message) {}, NodeOptions{
				Compression: mode.comp,
				Meter:       meter,
				BatchHandler: func(_ int, msgs []Message) {
					if t := target.Load(); t > 0 && received.Add(int64(len(msgs))) >= t {
						select {
						case done <- struct{}{}:
						default:
						}
					}
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()

			msg := benchMessage()
			target.Store(4096)
			for i := 0; i < 4096; i++ {
				msg.Key = keys[i&15]
				msg.Values[0] = keys[i&15]
				if err := f.Send(0, 1, msg); err != nil {
					b.Fatal(err)
				}
			}
			awaitBench(b, done)

			b.ReportAllocs()
			b.ResetTimer()
			target.Store(received.Load() + int64(b.N))
			for i := 0; i < b.N; i++ {
				msg.Key = keys[i&15]
				msg.Values[0] = keys[i&15]
				if err := f.Send(0, 1, msg); err != nil {
					b.Fatal(err)
				}
			}
			awaitBench(b, done)
			b.StopTimer()
			if st := meter.Snapshot(); st.TuplesSent > 0 {
				b.ReportMetric(st.WireBytesPerTuple(), "wire-B/tuple")
				b.ReportMetric(st.CompressionRatio(), "ratio")
			}
		})
	}
}

// BenchmarkWireForwardTiered drives one sender across three peers — a
// rack-mate, a cluster-mate across racks, and a peer behind the
// inter-cluster link — with a PeerTier classifier installed, and
// reports the per-tier wire accounting the federation drill asserts on:
// xcluster-B/tuple is the inter-cluster wire volume amortized over all
// sent tuples, and xcluster-share the tier's tuple fraction (exactly
// 1/3 by construction — the round-robin target pattern — so a broken
// classifier shows up as a step change, not noise).
func BenchmarkWireForwardTiered(b *testing.B) {
	rackOf := []int{0, 0, 1, 2}
	clusterOf := []int{0, 0, 0, 1}
	tier := func(from, to int) int {
		switch {
		case from == to:
			return 0
		case clusterOf[from] != clusterOf[to]:
			return metrics.InterClusterTier
		case rackOf[from] != rackOf[to]:
			return 2
		default:
			return 1
		}
	}
	var (
		received atomic.Int64
		target   atomic.Int64
	)
	done := make(chan struct{}, 1)
	meter := new(metrics.WireMeter)
	f, err := NewFabricWith(4, func(int, Message) {}, NodeOptions{
		Meter:    meter,
		PeerTier: tier,
		BatchHandler: func(_ int, msgs []Message) {
			if t := target.Load(); t > 0 && received.Add(int64(len(msgs))) >= t {
				select {
				case done <- struct{}{}:
				default:
				}
			}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()

	msg := benchMessage()
	target.Store(4095)
	for i := 0; i < 4095; i++ {
		if err := f.Send(0, 1+i%3, msg); err != nil {
			b.Fatal(err)
		}
	}
	awaitBench(b, done)

	b.ReportAllocs()
	b.ResetTimer()
	target.Store(received.Load() + int64(b.N))
	for i := 0; i < b.N; i++ {
		if err := f.Send(0, 1+i%3, msg); err != nil {
			b.Fatal(err)
		}
	}
	awaitBench(b, done)
	b.StopTimer()
	if st := meter.Snapshot(); st.TuplesSent > 0 {
		b.ReportMetric(st.InterClusterBytesPerTuple(), "xcluster-B/tuple")
		b.ReportMetric(
			float64(st.TierTuplesSent[metrics.InterClusterTier])/float64(st.TuplesSent),
			"xcluster-share")
	}
}

// BenchmarkGobForward is the retained baseline: the pre-batching wire
// path, one gob-encoded Message per Send over the same TCP loopback.
// It exists so the BenchmarkWireForward speedup stays measurable
// forever, not just in this PR's description.
func BenchmarkGobForward(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()

	var (
		received atomic.Int64
		target   atomic.Int64
	)
	done := make(chan struct{}, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := gob.NewDecoder(conn)
		for {
			var msg Message
			if err := dec.Decode(&msg); err != nil {
				return
			}
			if t := target.Load(); t > 0 && received.Add(1) >= t {
				select {
				case done <- struct{}{}:
				default:
				}
			}
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)

	msg := benchMessage()
	target.Store(4096)
	for i := 0; i < 4096; i++ {
		if err := enc.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
	awaitBench(b, done)

	b.ReportAllocs()
	b.ResetTimer()
	target.Store(received.Load() + int64(b.N))
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
	awaitBench(b, done)
}

// BenchmarkWireWritev measures the flusher's vectored-write batching at
// a fixed queue depth: each round stages eight complete frames while
// the flusher is parked on the peer's lock, releases it, and waits for
// the vectored write to hand all eight to the kernel. One writev per
// eight frames, by construction — so the gated syscalls/flush metric
// sits at 1/8 deterministically (1.0 is the pre-writev transport's
// floor: one write syscall per frame), and ns/op prices the drain path
// itself.
func BenchmarkWireWritev(b *testing.B) {
	const depth = 8
	meter := new(metrics.WireMeter)
	recv, err := NewNode(1, func(Message) {})
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	n, err := NewNodeWith(0, func(Message) {}, NodeOptions{Meter: meter})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	if err := n.Connect(map[int]string{1: recv.Addr()}); err != nil {
		b.Fatal(err)
	}
	pc := (*n.peers.Load())[1]
	msg := benchMessage()

	b.ReportAllocs()
	b.ResetTimer()
	for staged := 0; staged < b.N; {
		batch := depth
		if left := b.N - staged; left < batch {
			batch = left
		}
		pc.mu.Lock()
		for i := 0; i < batch; i++ {
			buf := pc.takeBufLocked()
			buf = appendTuple(buf, &msg)
			putFrameHeader(buf, frameData)
			pc.enqueueLocked(queuedFrame{
				buf: buf, class: classData, tuples: 1,
				rawBytes: len(buf) - frameHeaderLen, reason: metrics.FlushSize,
			})
		}
		// Wait for the single vectored write that drains the batch.
		for pc.wroteSeq < pc.enqSeq && !pc.broken {
			pc.cond.Wait()
		}
		pc.mu.Unlock()
		staged += batch
	}
	b.StopTimer()
	if st := meter.Snapshot(); st.WritevCalls > 0 {
		b.ReportMetric(st.SyscallsPerFlush(), "syscalls/flush")
		b.ReportMetric(st.FramesPerWritev(), "frames/writev")
	}
}

// BenchmarkWireAdaptiveFlush is the adaptive-flush end-to-end number:
// tuples stream while a background goroutine retunes the flush policy
// between its extremes every few hundred microseconds — the adaptive
// tuner's steady thrash, compressed in time. The ns/op shows what a
// mid-stream retune costs the data path (it should cost nothing: the
// policy is two atomics).
func BenchmarkWireAdaptiveFlush(b *testing.B) {
	var (
		received atomic.Int64
		target   atomic.Int64
	)
	done := make(chan struct{}, 1)
	f, err := NewFabricWith(2, func(int, Message) {}, NodeOptions{
		BatchHandler: func(_ int, msgs []Message) {
			if t := target.Load(); t > 0 && received.Add(int64(len(msgs))) >= t {
				select {
				case done <- struct{}{}:
				default:
				}
			}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		wide := false
		for {
			select {
			case <-stop:
				return
			case <-time.After(500 * time.Microsecond):
			}
			if wide {
				f.SetFlushPolicy(MaxFlushBytes, 10*time.Millisecond)
			} else {
				f.SetFlushPolicy(MinFlushBytes, MinFlushInterval)
			}
			wide = !wide
		}
	}()

	msg := benchMessage()
	target.Store(4096)
	for i := 0; i < 4096; i++ {
		if err := f.Send(0, 1, msg); err != nil {
			b.Fatal(err)
		}
	}
	awaitBench(b, done)

	b.ReportAllocs()
	b.ResetTimer()
	target.Store(received.Load() + int64(b.N))
	for i := 0; i < b.N; i++ {
		if err := f.Send(0, 1, msg); err != nil {
			b.Fatal(err)
		}
	}
	awaitBench(b, done)
}

// BenchmarkWireEncode isolates the steady-state encode path — one tuple
// appended to a warm batch buffer — which must run allocation-free
// (also pinned by TestEncodeSteadyStateZeroAlloc).
func BenchmarkWireEncode(b *testing.B) {
	msg := benchMessage()
	buf := make([]byte, frameHeaderLen, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(buf) >= 1<<19 {
			buf = buf[:frameHeaderLen]
		}
		buf = appendTuple(buf, &msg)
	}
}

func awaitBench(b *testing.B, done chan struct{}) {
	b.Helper()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		b.Fatal("timed out waiting for deliveries")
	}
}
