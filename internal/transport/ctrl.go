package transport

import "encoding/binary"

// Control-frame codec (frameControlV2). Control traffic — migration
// snapshots, propagation markers, heartbeats — used to ride gob behind
// frameControl; this codec replaces it with the same uvarint primitives
// the data path uses, dropping the last reflective encoder from the
// wire. Each frame is self-contained (no cross-frame state, unlike the
// data path's dictionary), so a reconnect needs no codec handshake:
// the first control frame on a fresh connection decodes exactly like
// the hundredth.
//
// frameControlV2 payload layout (all integers unsigned varints unless
// noted):
//
//	version                — 1 byte, ctrlVersion; a decoder seeing a
//	                         newer version drops the connection rather
//	                         than guess at fields it does not know
//	kind                   — 1 byte, KindMigrate/KindPropagate/
//	                         KindHeartbeat (KindData never uses control
//	                         frames)
//	opLen, op bytes        — To.Op
//	instance               — To.Instance
//	from                   — origin server
//	flags                  — 1 byte; bit0 = migration snapshot present
//	                         (ctrlFlagHasData)
//	migKeyLen, key bytes   — KindMigrate only: the migrating key
//	migDataLen, data bytes — KindMigrate only: the state snapshot
//
// The explicit presence flag is what gob could not give us: gob elides
// zero-value fields, so an empty-but-present snapshot decoded as nil
// and "no state" vs "empty state" was indistinguishable from the
// payload alone (Message.MigHasData exists for exactly that reason).
// Here the flag is one bit on the wire and the ambiguity is gone.
const (
	// ctrlVersion is the control-frame layout version. Bump it when the
	// layout changes incompatibly; decoders reject frames from the
	// future instead of misparsing them.
	ctrlVersion = 1

	// ctrlFlagHasData marks a migration snapshot as present even when
	// it is zero-length.
	ctrlFlagHasData = 0x01
)

// appendControl appends the frameControlV2 payload encoding of one
// control message to buf and returns the extended slice. The caller
// stamps the frame header.
func appendControl(buf []byte, m *Message) []byte {
	buf = append(buf, ctrlVersion, byte(m.Kind))
	buf = appendString(buf, m.To.Op)
	buf = binary.AppendUvarint(buf, uint64(nonNeg(m.To.Instance)))
	buf = binary.AppendUvarint(buf, uint64(nonNeg(m.From)))
	if m.Kind != KindMigrate {
		buf = append(buf, 0)
		return buf
	}
	var flags byte
	if m.MigHasData {
		flags |= ctrlFlagHasData
	}
	buf = append(buf, flags)
	buf = appendString(buf, m.MigKey)
	buf = binary.AppendUvarint(buf, uint64(len(m.MigData)))
	return append(buf, m.MigData...)
}

// decodeControl decodes one frameControlV2 payload. The payload must be
// consumed exactly — trailing bytes, short fields, an unknown version
// or a kind that never rides control frames all mean the stream is
// corrupt and the connection must be dropped, the same contract the
// batch decoder enforces. MigData is copied out of p so the frame
// buffer can be recycled immediately.
func decodeControl(p []byte) (Message, error) {
	var m Message
	if len(p) < 2 || p[0] != ctrlVersion {
		return m, errFrameCorrupt
	}
	m.Kind = Kind(p[1])
	if m.Kind != KindMigrate && m.Kind != KindPropagate && m.Kind != KindHeartbeat {
		return m, errFrameCorrupt
	}
	p = p[2:]
	var (
		u  uint64
		ok bool
	)
	if m.To.Op, p, ok = readString(p); !ok {
		return m, errFrameCorrupt
	}
	if u, p, ok = readUvarint(p); !ok || u > maxIntField {
		return m, errFrameCorrupt
	}
	m.To.Instance = int(u)
	if u, p, ok = readUvarint(p); !ok || u > maxIntField {
		return m, errFrameCorrupt
	}
	m.From = int(u)
	if len(p) < 1 {
		return m, errFrameCorrupt
	}
	flags := p[0]
	p = p[1:]
	if m.Kind != KindMigrate {
		if flags != 0 || len(p) != 0 {
			return m, errFrameCorrupt
		}
		return m, nil
	}
	m.MigHasData = flags&ctrlFlagHasData != 0
	if flags&^byte(ctrlFlagHasData) != 0 {
		return m, errFrameCorrupt
	}
	if m.MigKey, p, ok = readString(p); !ok {
		return m, errFrameCorrupt
	}
	if u, p, ok = readUvarint(p); !ok || u > uint64(len(p)) {
		return m, errFrameCorrupt
	}
	if u > 0 {
		m.MigData = append([]byte(nil), p[:u]...)
	}
	p = p[u:]
	if len(p) != 0 {
		return m, errFrameCorrupt
	}
	return m, nil
}
