package transport

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

// TestControlGobParity is the codec-migration property test: for random
// keyed state images, the legacy gob encoding (the wire format of PRs
// 4–8, replicated here test-locally) and the varint control framing
// must decode to the identical migration state — same key, same
// presence flag, same snapshot bytes. Treating nil and empty snapshots
// as equal on the gob side is deliberate: gob's zero-value elision
// collapses the two, which is exactly why MigHasData carries presence
// as its own bit and why the varint codec is held to the stricter
// check against the original message.
func TestControlGobParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randKey := func() string {
		n := rng.Intn(24)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return string(b)
	}

	type migState struct {
		key     string
		hasData bool
		data    string // canonical: nil and empty both ""
	}
	stateOf := func(m Message) migState {
		return migState{key: m.MigKey, hasData: m.MigHasData, data: string(m.MigData)}
	}

	for i := 0; i < 500; i++ {
		in := Message{
			Kind: KindMigrate,
			To:   Addr{Op: randKey(), Instance: rng.Intn(16)},
			From: rng.Intn(16),
		}
		in.MigKey = randKey()
		switch rng.Intn(4) {
		case 0: // no snapshot
		case 1: // empty but present — the case gob cannot carry in the payload
			in.MigHasData = true
		default: // real snapshot
			data := make([]byte, 1+rng.Intn(1024))
			rng.Read(data)
			in.MigData = data
			in.MigHasData = true
		}

		// Legacy path: one gob-encoded Message per control frame.
		var gobBuf bytes.Buffer
		if err := gob.NewEncoder(&gobBuf).Encode(&in); err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		var viaGob Message
		if err := gob.NewDecoder(&gobBuf).Decode(&viaGob); err != nil {
			t.Fatalf("gob decode: %v", err)
		}

		// Current path: frameControlV2 varint payload.
		viaVarint, err := decodeControl(appendControl(nil, &in))
		if err != nil {
			t.Fatalf("varint decode: %v", err)
		}

		want := stateOf(in)
		if got := stateOf(viaVarint); got != want {
			t.Fatalf("varint migration state diverged:\nwant %+v\n got %+v", want, got)
		}
		if got := stateOf(viaGob); got != want {
			t.Fatalf("gob migration state diverged (parity baseline broken):\nwant %+v\n got %+v", want, got)
		}
		if viaVarint.To != in.To || viaVarint.From != in.From || viaVarint.Kind != in.Kind {
			t.Fatalf("varint header fields diverged: want %+v got %+v", in, viaVarint)
		}
		// The stricter varint-only property: a present-but-empty
		// snapshot keeps its presence bit across the wire.
		if in.MigHasData && len(in.MigData) == 0 && !viaVarint.MigHasData {
			t.Fatal("varint codec lost the empty-but-present snapshot flag")
		}
	}
}
