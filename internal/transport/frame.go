package transport

import (
	"encoding/binary"
	"errors"
	"io"
	"sync"
)

// Wire framing. Every message crosses the socket inside a
// length-prefixed frame:
//
//	+------+----------------+=================+
//	| type | payload length |     payload     |
//	| 1 B  | 4 B, LE uint32 | length bytes    |
//	+------+----------------+=================+
//
// frameData carries a batch of KindData messages in the compact binary
// tuple encoding below; frameControlV2 carries exactly one control
// Message (migration snapshots, propagation markers, heartbeats) in
// the versioned varint layout of ctrl.go. frameDict announces
// per-connection dictionary entries, frameDataDict is the
// dictionary-tagged batch encoding, and frameCompressed wraps an
// LZ-compressed frameData/frameDataDict payload (see dict.go and
// lz.go; byte layouts in PROTOCOL.md).
//
// A reader that cannot parse a frame — truncated header or payload,
// length prefix beyond maxFramePayload, unknown type byte, malformed
// tuple encoding — drops the whole connection. Frames are applied only
// after being read and decoded completely, so a torn frame can never
// deliver a partial tuple.
const (
	frameHeaderLen = 5

	frameData byte = 0x01
	// 0x02 is retired: it carried the PR 4–8 gob control encoding and
	// is rejected as corrupt today. Do not reuse the id — a frame from
	// a stale peer must fail loudly, not misparse.
	frameDict       byte = 0x03
	frameDataDict   byte = 0x04
	frameCompressed byte = 0x05
	frameControlV2  byte = 0x06

	// maxFramePayload bounds a frame's declared payload length. A reader
	// seeing a larger prefix treats the stream as corrupt and drops the
	// connection instead of allocating whatever a flipped bit asks for.
	// Control frames carry whole migration snapshots, so the cap is
	// generous; data frames flush far earlier (NodeOptions.FlushBytes).
	maxFramePayload = 64 << 20

	// maxIntField bounds the integer fields of a tuple record (instance,
	// origin server, padding) so a corrupt varint cannot overflow int on
	// any platform.
	maxIntField = 1 << 31
)

var errFrameCorrupt = errors.New("transport: corrupt frame")

// putFrameHeader stamps the type byte and payload length over the
// frameHeaderLen bytes reserved at the front of buf.
func putFrameHeader(buf []byte, typ byte) {
	buf[0] = typ
	binary.LittleEndian.PutUint32(buf[1:frameHeaderLen], uint32(len(buf)-frameHeaderLen))
}

// appendTuple appends the binary encoding of one KindData message to
// buf and returns the extended slice. Every field is varint-prefixed;
// the encoding allocates nothing beyond buf's own growth, which the
// per-peer batch buffer amortizes to zero in steady state.
//
// Tuple record layout (all integers unsigned varints):
//
//	opLen, op bytes        — To.Op
//	instance               — To.Instance
//	from                   — origin server
//	keyOpLen, keyOp bytes  — operator whose key last applied
//	keyLen, key bytes      — that key
//	padding                — synthetic payload size
//	nvalues                — len(Values)
//	nvalues × (len, bytes) — the values
func appendTuple(buf []byte, m *Message) []byte {
	buf = appendString(buf, m.To.Op)
	buf = binary.AppendUvarint(buf, uint64(nonNeg(m.To.Instance)))
	buf = binary.AppendUvarint(buf, uint64(nonNeg(m.From)))
	buf = appendString(buf, m.KeyOp)
	buf = appendString(buf, m.Key)
	buf = binary.AppendUvarint(buf, uint64(nonNeg(m.Padding)))
	buf = binary.AppendUvarint(buf, uint64(len(m.Values)))
	for _, v := range m.Values {
		buf = appendString(buf, v)
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func nonNeg(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// appendBatch decodes a frameData payload, appending one KindData
// Message per tuple record to dst. The payload is consumed to its end;
// any leftover or short field means the frame is corrupt and the
// connection must be dropped. Every declared length is validated
// against the bytes actually remaining before any allocation, so a
// corrupt length prefix can never make the decoder allocate more than
// O(len(p)).
func appendBatch(dst []Message, p []byte) ([]Message, error) {
	for len(p) > 0 {
		var (
			m  Message
			u  uint64
			ok bool
		)
		m.Kind = KindData
		if m.To.Op, p, ok = readString(p); !ok {
			return dst, errFrameCorrupt
		}
		if u, p, ok = readUvarint(p); !ok || u > maxIntField {
			return dst, errFrameCorrupt
		}
		m.To.Instance = int(u)
		if u, p, ok = readUvarint(p); !ok || u > maxIntField {
			return dst, errFrameCorrupt
		}
		m.From = int(u)
		if m.KeyOp, p, ok = readString(p); !ok {
			return dst, errFrameCorrupt
		}
		if m.Key, p, ok = readString(p); !ok {
			return dst, errFrameCorrupt
		}
		if u, p, ok = readUvarint(p); !ok || u > maxIntField {
			return dst, errFrameCorrupt
		}
		m.Padding = int(u)
		if u, p, ok = readUvarint(p); !ok {
			return dst, errFrameCorrupt
		}
		// Each value costs at least its one-byte length prefix, so a
		// count beyond the remaining bytes is unsatisfiable.
		if u > uint64(len(p)) {
			return dst, errFrameCorrupt
		}
		if u > 0 {
			vals := make([]string, u)
			for i := range vals {
				if vals[i], p, ok = readString(p); !ok {
					return dst, errFrameCorrupt
				}
			}
			m.Values = vals
		}
		dst = append(dst, m)
	}
	return dst, nil
}

func readUvarint(p []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, p, false
	}
	return v, p[n:], true
}

// readString reads one varint-prefixed string, copying it out of p so
// the frame buffer can be recycled immediately after decoding.
func readString(p []byte) (string, []byte, bool) {
	v, rest, ok := readUvarint(p)
	if !ok || v > uint64(len(rest)) {
		return "", p, false
	}
	return string(rest[:v]), rest[v:], true
}

// readFrame reads one complete frame from r: the fixed header into hdr,
// then the payload into a pooled buffer (return it with putBuf). Any
// error — including a corrupt type byte or an oversized length prefix —
// means the stream is unusable and the connection must be dropped.
func readFrame(r io.Reader, hdr []byte) (typ byte, payload *[]byte, err error) {
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	typ = hdr[0]
	switch typ {
	case frameData, frameDict, frameDataDict, frameCompressed, frameControlV2:
	default:
		return 0, nil, errFrameCorrupt
	}
	length := binary.LittleEndian.Uint32(hdr[1:frameHeaderLen])
	if length > maxFramePayload {
		return 0, nil, errFrameCorrupt
	}
	bp := getBuf(int(length))
	if _, err := io.ReadFull(r, *bp); err != nil {
		putBuf(bp)
		return 0, nil, err
	}
	return typ, bp, nil
}

// unwrapCompressed decodes a frameCompressed payload: one inner type
// byte (only data batches are ever compressed), the uvarint raw length,
// then the LZ stream. The declared raw length is enforced exactly — a
// stream that inflates short or long is corrupt — and bounded by
// maxFramePayload before any allocation, so a flipped length byte can
// never balloon memory. The returned buffer holds the raw payload;
// release it with putBuf.
func unwrapCompressed(p []byte) (inner byte, raw *[]byte, err error) {
	if len(p) < 2 {
		return 0, nil, errFrameCorrupt
	}
	inner = p[0]
	if inner != frameData && inner != frameDataDict {
		return 0, nil, errFrameCorrupt
	}
	rawLen, rest, ok := readUvarint(p[1:])
	if !ok || rawLen > maxFramePayload {
		return 0, nil, errFrameCorrupt
	}
	bp := getBuf(int(rawLen))
	out, err := lzAppendDecompress((*bp)[:0], rest, int(rawLen))
	*bp = out
	if err != nil || len(out) != int(rawLen) {
		putBuf(bp)
		return 0, nil, errFrameCorrupt
	}
	return inner, bp, nil
}

// bufPool recycles frame payload buffers between reads (and control
// frame encodes), so the steady-state wire path allocates nothing per
// frame.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// maxPooledBuf keeps occasional giant buffers (large migration
// snapshots) from being pinned in the pool forever.
const maxPooledBuf = 1 << 20

func getBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putBuf(bp *[]byte) {
	if cap(*bp) > maxPooledBuf {
		return
	}
	bufPool.Put(bp)
}
