// Package transport moves engine messages between servers over real TCP
// connections, using a length-prefixed binary wire protocol with tuple
// batching. The live engine keeps every operator instance in one process
// (like a single Storm worker per server), but with a Fabric attached,
// every cross-server tuple, state migration and propagation marker is
// encoded, written to a localhost socket, read back and decoded —
// exercising the serialization and kernel network path that makes remote
// transfers expensive in the paper's measurements.
//
// Data tuples (KindData) are packed into per-peer batches with a compact
// varint encoding and staged for the connection's flusher once the batch
// reaches FlushBytes or ages past FlushInterval — the amortization
// Storm's batched Netty transport applies to the same cost. Each
// connection owns one flusher goroutine that drains every staged frame —
// dictionary announcements, data batches, control frames — through a
// single vectored write (net.Buffers, writev on Linux), so a flush that
// used to cost one syscall per frame now hands the whole backlog to the
// kernel at once. Control traffic (state migrations, propagation
// markers, heartbeats) rides the same versioned varint framing as data
// (see ctrl.go); a control Send stages the pending batch first and then
// waits for its own frame to reach the kernel, so control errors stay
// synchronous and the per-pair FIFO order the reconfiguration protocol
// relies on (§3.4) is preserved exactly.
//
// FlushBytes and FlushInterval are live-tunable (SetFlushPolicy): the
// control plane widens batches under load and shrinks the interval when
// the stream idles, trading latency for throughput the same way it
// trades locality for migration cost.
//
// One Node is created per simulated server. Each ordered pair of nodes
// shares one TCP connection, so messages between two servers are
// delivered in FIFO order.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/locastream/locastream/internal/metrics"
)

// Kind distinguishes wire message types.
type Kind byte

// Wire message kinds.
const (
	KindData Kind = iota + 1
	KindMigrate
	KindPropagate
	KindHeartbeat
)

// Addr identifies a recipient operator instance.
type Addr struct {
	Op       string
	Instance int
}

// Message is the wire form of one engine message.
type Message struct {
	Kind Kind
	To   Addr

	// From is the sending server's id. Only heartbeats set it today, but
	// any kind may carry it.
	From int

	// KindData
	Values  []string
	Padding int
	KeyOp   string
	Key     string

	// KindMigrate
	MigKey  string
	MigData []byte
	// MigHasData distinguishes "no state for this key" from an
	// empty-but-present snapshot. It rides the wire as an explicit flag
	// bit (ctrl.go), so the two cases stay distinguishable even when
	// the snapshot is zero-length.
	MigHasData bool
}

// Handler consumes messages received by a node. It is called from the
// per-connection reader goroutines and must be safe for concurrent use.
type Handler func(Message)

// BatchHandler consumes one decoded data frame: a batch of KindData
// messages that crossed the wire together, delivered to node (the
// receiving server's id — senders tracking per-destination in-flight
// tuples match it against FlushedHandler's peer). The slice (not the
// strings inside it) is reused for the connection's next frame, so the
// handler must finish with it — or copy it — before returning. Like
// Handler it runs on per-connection reader goroutines and must be safe
// for concurrent use.
type BatchHandler func(node int, msgs []Message)

// Compression selects the data-frame encoding (see PROTOCOL.md).
type Compression int

const (
	// CompressionAuto interns repeated strings through the per-connection
	// dictionary and additionally LZ-compresses each flushed batch when —
	// and only when — that makes the frame smaller on the wire. The
	// default: skewed workloads are what this transport exists for.
	CompressionAuto Compression = iota
	// CompressionOff emits plain frameData frames (the PR 4 encoding).
	CompressionOff
	// CompressionDict interns through the dictionary but never runs the
	// per-frame LZ pass — the configuration to measure the two layers
	// separately.
	CompressionDict
)

// lzMinTry is the smallest batch payload worth an LZ attempt: below it
// the token overhead eats the win and the scan cost is pure loss.
const lzMinTry = 512

// lzDeferFlushes is the back-off after an unproductive LZ attempt: skip
// this many flushes before trying again. Dictionary-interned payloads
// are often already dense; the back-off keeps the encoder from
// re-proving that on every frame while still noticing when the stream
// turns compressible again.
const lzDeferFlushes = 8

// Default batching parameters (see NodeOptions).
const (
	DefaultFlushBytes    = 64 << 10
	DefaultFlushInterval = time.Millisecond
)

// Flush-policy clamps for SetFlushPolicy: whatever the adaptive tuner
// asks for, the transport never batches below MinFlushBytes (the frame
// header would dominate) nor above MaxFlushBytes, and the interval
// stays inside [MinFlushInterval, MaxFlushInterval] so a runaway policy
// cannot park tuples forever or busy-flush per tuple.
const (
	MinFlushBytes    = 1 << 9
	MaxFlushBytes    = 1 << 22
	MinFlushInterval = 50 * time.Microsecond
	MaxFlushInterval = time.Second
)

// maxFreeBufs bounds each connection's staging-buffer free list; beyond
// it buffers are left to the garbage collector.
const maxFreeBufs = 8

// NodeOptions tune a node's network behaviour. The zero value makes a
// single no-timeout dial attempt per peer, blocks writes until the
// kernel accepts them, and batches data tuples with the default
// FlushBytes/FlushInterval thresholds.
type NodeOptions struct {
	// WriteTimeout bounds each vectored write the flusher hands to the
	// kernel: if the peer's socket stays unwritable (stalled reader,
	// dead host with a full window) past the deadline, the write fails
	// instead of hanging the flusher. The connection is dropped on any
	// write error — a partially written frame cannot be resumed — so
	// subsequent Sends to that peer fail fast.
	WriteTimeout time.Duration
	// DialTimeout bounds each individual dial attempt in Connect.
	DialTimeout time.Duration
	// DialRetries is the number of additional dial attempts after the
	// first fails, so cluster startup is not order-sensitive when a
	// peer's listener is slow to come up.
	DialRetries int
	// DialBackoff is the delay before the first retry, doubling on each
	// subsequent one (default 10ms when DialRetries > 0).
	DialBackoff time.Duration

	// FlushBytes stages a peer's pending data batch once its encoded
	// payload reaches this many bytes (default DefaultFlushBytes).
	// Live-tunable afterwards with SetFlushPolicy.
	FlushBytes int
	// FlushInterval bounds how long a pending batch waits for more
	// tuples before being staged anyway (default DefaultFlushInterval).
	// Batching therefore delays a tuple by at most this much; it never
	// reorders anything. Live-tunable afterwards with SetFlushPolicy.
	FlushInterval time.Duration

	// Compression selects the data-frame encoding; the zero value
	// (CompressionAuto) enables the per-connection dictionary plus the
	// per-frame LZ pass. See the Compression constants.
	Compression Compression

	// BatchHandler, when set, receives each decoded data frame as one
	// call instead of the per-message Handler — the receive-side half of
	// batching (the engine drains a whole frame into mailboxes in one
	// lock acquisition per target).
	BatchHandler BatchHandler
	// DropHandler, when set, is called with the number of batched
	// KindData messages discarded because their connection broke before
	// they could reach the kernel — whether they were still in the
	// pending batch or already staged in the flusher's writev queue.
	// Senders that count tuples in flight need this to settle their
	// accounting; the callback must be cheap and must not call back
	// into the transport.
	DropHandler func(tuples int)
	// FlushedHandler, when set, is called with the number of KindData
	// tuples in each data frame staged for the flusher, keyed by the
	// destination peer — the sender-side half of exactly-once loss
	// accounting (BatchHandler's node is the matching receive side). If
	// the frame then fails to reach the kernel — the vectored write
	// breaks before it, or the connection is dropped with the frame
	// still queued — it is called again with the negated count before
	// DropHandler reports the loss, so the running sum per peer counts
	// only frames actually handed to the kernel. Called under the
	// peer's batch lock: must be cheap and must not call back into the
	// transport.
	FlushedHandler func(peer, tuples int)
	// Meter, when set, accumulates wire statistics (frames, tuples per
	// frame, bytes, flush reasons, writev batching, encode time) across
	// all of the node's connections.
	Meter *metrics.WireMeter
	// PeerTier, when set alongside Meter, classifies the locality tier
	// of the link from this node to each peer (0 same server, 1 same
	// rack, 2 same cluster across racks, 3 inter-cluster — the indices
	// of the meter's per-tier counters). Each written data frame is then
	// additionally folded into the meter's TierTuplesSent/TierBytesSent
	// breakdown. Must be pure and cheap: it runs on the flusher
	// goroutine once per written frame.
	PeerTier func(from, to int) int
}

// Node is one server's endpoint: a listener plus one outgoing connection
// per peer.
type Node struct {
	id      int
	ln      net.Listener
	handler Handler
	opts    NodeOptions

	// flushBytes/flushIntervalNs hold the live flush policy; they are
	// atomics so SetFlushPolicy can retune them mid-stream without
	// stalling the per-tuple send path.
	flushBytes      atomic.Int64
	flushIntervalNs atomic.Int64

	// peers is copy-on-write: Send loads it with one atomic read (the
	// per-tuple fast path takes no node-wide lock); Connect, connection
	// drops and Close rebuild it under mu.
	peers atomic.Pointer[map[int]*peerConn]

	mu      sync.Mutex
	inbound []net.Conn

	wg     sync.WaitGroup
	closed bool
}

// setPeer/removePeer rebuild the copy-on-write peer map. Callers must
// hold n.mu.
func (n *Node) setPeerLocked(id int, pc *peerConn) {
	old := *n.peers.Load()
	next := make(map[int]*peerConn, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = pc
	n.peers.Store(&next)
}

func (n *Node) removePeerLocked(id int, pc *peerConn) {
	old := *n.peers.Load()
	if old[id] != pc {
		return
	}
	next := make(map[int]*peerConn, len(old))
	for k, v := range old {
		if k != id {
			next[k] = v
		}
	}
	n.peers.Store(&next)
}

// frameClass says what a staged frame carries, for the flusher's meter
// accounting and loss settlement.
type frameClass uint8

const (
	classData frameClass = iota
	classDict
	classControl
)

// queuedFrame is one complete frame (header stamped) staged for the
// connection's flusher.
type queuedFrame struct {
	buf                  []byte
	class                frameClass
	tuples               int // KindData tuples inside (classData only)
	rawBytes             int // raw-encoding equivalent, for the meter's ratio
	compressed           bool
	reason               metrics.FlushReason
	dictEntries          int // classDict: entries announced
	dictHits, dictMisses int // classData: lookup counts for the meter
}

// peerConn serializes staging to one peer and owns the pending data
// batch, the flusher's frame queue, and — with compression enabled —
// the connection's send dictionary and LZ scratch state. All of it is
// created with the connection and discarded with it, so a reconnect
// always starts from empty state on both ends.
//
// Lifecycle of a frame: Send appends tuples into buf under mu; a full
// or expired batch is staged — header stamped, FlushedHandler credited,
// appended to q — and the flusher is signalled. The flusher swaps q out
// under mu, writes every staged frame with one vectored write outside
// mu, then advances wroteSeq and recycles the buffers. Control senders
// wait on cond until wroteSeq covers their frame, which keeps their
// error reporting synchronous. Loss settlement on a broken connection
// is exact: whoever transitions broken (flusher write error, DropPeer,
// Close) settles the frames still in q plus the unstaged batch, and the
// flusher settles whatever was in its hands when the write failed.
type peerConn struct {
	mu   sync.Mutex
	cond *sync.Cond // signalled on q/wroteSeq/broken transitions
	conn net.Conn

	buf    []byte // frameHeaderLen reserved bytes + encoded tuples
	batchN int    // tuples currently in buf
	timer  *time.Timer
	broken bool

	q        []queuedFrame // staged frames awaiting the flusher
	qSpare   []queuedFrame // flusher's previous queue, reused
	qBytes   int           // sum of len(buf) over q
	enqSeq   uint64        // frames ever staged
	wroteSeq uint64        // frames fully handed to the kernel
	writeErr error         // first write error, for control senders

	free [][]byte // recycled staging buffers

	// dict is non-nil when the node interns strings (CompressionAuto or
	// CompressionDict); rawBytes accumulates what the current batch
	// would have cost in the raw encoding, for the meter's ratio.
	dict     *sendDict
	rawBytes int

	// LZ scratch, allocated lazily on the first attempt. lzDefer counts
	// flushes to skip after an unproductive attempt.
	lzBuf   []byte
	lzTable *[1 << lzHashBits]int32
	lzDefer int
}

// takeBufLocked returns a staging buffer with the frame header
// reserved, recycled from the flusher when possible.
func (pc *peerConn) takeBufLocked() []byte {
	for len(pc.free) > 0 {
		b := pc.free[len(pc.free)-1]
		pc.free = pc.free[:len(pc.free)-1]
		if cap(b) >= frameHeaderLen {
			return b[:frameHeaderLen]
		}
	}
	return make([]byte, frameHeaderLen, frameHeaderLen+4096)
}

// recycleBufLocked returns a written frame's buffer to the free list.
func (pc *peerConn) recycleBufLocked(b []byte) {
	if cap(b) > maxPooledBuf || len(pc.free) >= maxFreeBufs {
		return
	}
	pc.free = append(pc.free, b[:0])
}

// enqueueLocked stages one complete frame for the flusher.
func (pc *peerConn) enqueueLocked(f queuedFrame) {
	pc.q = append(pc.q, f)
	pc.qBytes += len(f.buf)
	pc.enqSeq++
	pc.cond.Broadcast()
}

// NewNode starts a node listening on an ephemeral localhost port.
// handler receives every inbound message.
func NewNode(id int, handler Handler) (*Node, error) {
	return NewNodeWith(id, handler, NodeOptions{})
}

// NewNodeWith is NewNode with explicit network options.
func NewNodeWith(id int, handler Handler, opts NodeOptions) (*Node, error) {
	if handler == nil {
		return nil, errors.New("transport: nil handler")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	n := &Node{id: id, ln: ln, handler: handler, opts: opts}
	empty := make(map[int]*peerConn)
	n.peers.Store(&empty)
	fb := opts.FlushBytes
	if fb <= 0 {
		fb = DefaultFlushBytes
	}
	n.flushBytes.Store(int64(fb))
	fi := opts.FlushInterval
	if fi <= 0 {
		fi = DefaultFlushInterval
	}
	n.flushIntervalNs.Store(int64(fi))
	n.wg.Add(1)
	go n.accept()
	return n, nil
}

// ID returns the node's server id.
func (n *Node) ID() int { return n.id }

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// FlushPolicy returns the node's current flush thresholds.
func (n *Node) FlushPolicy() (bytes int, interval time.Duration) {
	return int(n.flushBytes.Load()), time.Duration(n.flushIntervalNs.Load())
}

// SetFlushPolicy retunes the batching thresholds live, for every
// current and future connection. Non-positive values leave the
// corresponding knob unchanged; the rest are clamped into
// [MinFlushBytes, MaxFlushBytes] and [MinFlushInterval,
// MaxFlushInterval]. In-flight batches finish under the policy they
// started with; the new thresholds apply from the next tuple on. Safe
// for concurrent use with Send.
func (n *Node) SetFlushPolicy(bytes int, interval time.Duration) {
	if bytes > 0 {
		if bytes < MinFlushBytes {
			bytes = MinFlushBytes
		}
		if bytes > MaxFlushBytes {
			bytes = MaxFlushBytes
		}
		n.flushBytes.Store(int64(bytes))
	}
	if interval > 0 {
		if interval < MinFlushInterval {
			interval = MinFlushInterval
		}
		if interval > MaxFlushInterval {
			interval = MaxFlushInterval
		}
		n.flushIntervalNs.Store(int64(interval))
	}
}

// Connect dials every peer in the map (peer id -> address). Peers may be
// connected before they have connected back; each direction uses its own
// connection. Each dial honours the node's DialTimeout and is retried
// DialRetries times with exponential backoff, so a peer whose listener
// is slow to come up does not fail cluster startup.
func (n *Node) Connect(peers map[int]string) error {
	for id, addr := range peers {
		if id == n.id {
			continue
		}
		conn, err := n.dial(addr)
		if err != nil {
			return fmt.Errorf("transport: dial peer %d: %w", id, err)
		}
		// Re-connecting to an already-connected peer replaces the old
		// connection: sever it first so its pending batch is accounted
		// and its timer disarmed, and so both ends discard their
		// dictionaries together (the new connection starts empty).
		n.DropPeer(id)
		pc := &peerConn{
			conn: conn,
			buf:  make([]byte, frameHeaderLen, frameHeaderLen+int(n.flushBytes.Load())+4096),
		}
		pc.cond = sync.NewCond(&pc.mu)
		if n.opts.Compression != CompressionOff {
			pc.dict = newSendDict()
		}
		pc.timer = time.AfterFunc(time.Hour, func() { n.flushExpired(id, pc) })
		pc.timer.Stop()
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return errors.New("transport: node is closed")
		}
		n.setPeerLocked(id, pc)
		n.wg.Add(1)
		n.mu.Unlock()
		go n.flusher(id, pc)
	}
	return nil
}

func (n *Node) dial(addr string) (net.Conn, error) {
	backoff := n.opts.DialBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= n.opts.DialRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		var conn net.Conn
		var err error
		if n.opts.DialTimeout > 0 {
			conn, err = net.DialTimeout("tcp", addr, n.opts.DialTimeout)
		} else {
			conn, err = net.Dial("tcp", addr)
		}
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Send hands msg to the given peer. Messages between the same pair of
// nodes are delivered in order.
//
// KindData messages are appended to the peer's pending batch and return
// immediately; the batch is staged for the flusher when it reaches
// FlushBytes, ages past FlushInterval, or a control message needs the
// stream. Once accepted, a data tuple's fate is reported through
// FlushedHandler/DropHandler, never through a later Send's error — Send
// fails only when the connection is already gone. All other kinds are
// control traffic: they stage the pending batch, then wait until their
// own frame has been handed to the kernel, so their errors are
// synchronous.
//
// With a WriteTimeout configured, a flusher write that cannot make
// progress within the deadline fails — and the connection is dropped,
// since a truncated frame cannot carry further messages — so senders
// are never blocked forever on a stalled peer.
func (n *Node) Send(peer int, msg Message) error {
	pc := (*n.peers.Load())[peer]
	if pc == nil {
		return fmt.Errorf("transport: node %d has no connection to peer %d", n.id, peer)
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.broken {
		return fmt.Errorf("transport: node %d: connection to peer %d is dropped", n.id, peer)
	}
	if msg.Kind == KindData {
		return n.sendDataLocked(peer, pc, &msg)
	}
	return n.sendControlLocked(peer, pc, &msg)
}

// encodeSampleMask makes encode-time metering sample 1-in-64 tuples:
// two clock reads per tuple would cost more than the encode itself, so
// the sampled duration is recorded with 64× weight instead. The
// resulting EncodeNanos is an estimate — fine for a monitoring counter.
const encodeSampleMask = 63

// sendDataLocked encodes one tuple into the peer's batch, staging on
// the size threshold and arming the flush timer when the batch opens.
// With a dictionary attached the tuple is encoded in tagged form and
// the raw-equivalent size accumulated for the meter's ratio. When the
// flusher's queue is saturated the sender waits here — backpressure,
// not loss.
func (n *Node) sendDataLocked(peer int, pc *peerConn, msg *Message) error {
	if m := n.opts.Meter; m != nil && pc.batchN&encodeSampleMask == 0 {
		start := time.Now()
		pc.appendLocked(msg)
		m.RecordEncode(int64(time.Since(start)) * (encodeSampleMask + 1))
	} else {
		pc.appendLocked(msg)
	}
	pc.batchN++
	flushBytes := int(n.flushBytes.Load())
	if len(pc.buf)-frameHeaderLen >= flushBytes {
		if err := n.stageBatchLocked(peer, pc, metrics.FlushSize); err != nil {
			return err
		}
		// Backpressure: the queue bound is a small multiple of the flush
		// threshold, so a sender that outruns the kernel parks here until
		// the flusher drains (or the connection breaks, which settles the
		// staged tuples through DropHandler).
		limit := 4 * flushBytes
		if limit < 256<<10 {
			limit = 256 << 10
		}
		for pc.qBytes > limit && !pc.broken {
			pc.cond.Wait()
		}
		return nil
	}
	if pc.batchN == 1 {
		pc.timer.Reset(time.Duration(n.flushIntervalNs.Load()))
	}
	return nil
}

// sendControlLocked stages one binary control frame — after the pending
// data batch, preserving the connection's FIFO order — and waits until
// the flusher has handed it to the kernel, so the caller observes write
// failures synchronously.
func (n *Node) sendControlLocked(peer int, pc *peerConn, msg *Message) error {
	if err := n.stageBatchLocked(peer, pc, metrics.FlushControl); err != nil {
		return err
	}
	b := pc.takeBufLocked()
	b = appendControl(b, msg)
	if len(b)-frameHeaderLen > maxFramePayload {
		pc.recycleBufLocked(b)
		return fmt.Errorf("transport: control frame for %d exceeds %d bytes", peer, maxFramePayload)
	}
	putFrameHeader(b, frameControlV2)
	pc.enqueueLocked(queuedFrame{buf: b, class: classControl})
	seq := pc.enqSeq
	for !pc.broken && pc.wroteSeq < seq {
		pc.cond.Wait()
	}
	if pc.wroteSeq >= seq {
		return nil
	}
	err := pc.writeErr
	if err == nil {
		err = errors.New("connection dropped")
	}
	return fmt.Errorf("transport: send to %d: %w", peer, err)
}

// appendLocked encodes one tuple into the batch buffer, raw or
// dictionary-tagged depending on the connection's mode.
func (pc *peerConn) appendLocked(msg *Message) {
	if pc.dict != nil {
		pc.buf = appendTupleDict(pc.buf, msg, pc.dict)
		pc.rawBytes += rawTupleSize(msg)
		return
	}
	pc.buf = appendTuple(pc.buf, msg)
}

// stageBatchLocked hands the peer's pending batch to the flusher as one
// data frame — preceded by a dictionary-announce frame when tuples in
// the batch promoted new entries, and wrapped in a compressed frame
// when the LZ pass actually shrank it. The tuples are credited to
// FlushedHandler here, before the flusher can possibly write them (the
// receiver decrements on delivery, so the credit must come first); a
// later write failure takes the credit back and reports the loss.
func (n *Node) stageBatchLocked(peer int, pc *peerConn, reason metrics.FlushReason) error {
	if pc.batchN == 0 {
		return nil
	}
	if len(pc.buf)-frameHeaderLen > maxFramePayload {
		// Unreachable with sane FlushBytes; guard anyway so a giant tuple
		// can never emit a frame the receiver is obliged to reject.
		err := fmt.Errorf("transport: batch for %d exceeds %d bytes", peer, maxFramePayload)
		n.breakConnLocked(peer, pc, err)
		return err
	}
	tuples := pc.batchN
	rawBytes := len(pc.buf) // raw-equivalent frame size, header included
	typ := frameData
	var dictHits, dictMisses int
	if pc.dict != nil {
		typ = frameDataDict
		rawBytes = frameHeaderLen + pc.rawBytes
		dictHits, dictMisses = pc.dict.hits, pc.dict.misses
		pc.dict.hits, pc.dict.misses = 0, 0
		// Entries promoted by this batch must be installed at the receiver
		// before the batch's references to them decode: announce first, on
		// the same FIFO stream (the flusher writes the queue in order).
		if pc.dict.pendingEntries > 0 {
			entries := pc.dict.pendingEntries
			db := pc.takeBufLocked()
			db = append(db, pc.dict.pending...)
			putFrameHeader(db, frameDict)
			pc.dict.pending = pc.dict.pending[:0]
			pc.dict.pendingEntries = 0
			pc.enqueueLocked(queuedFrame{buf: db, class: classDict, dictEntries: entries})
		}
	}
	frame := pc.buf
	compressed := false
	if n.opts.Compression == CompressionAuto && len(pc.buf)-frameHeaderLen >= lzMinTry {
		if pc.lzDefer > 0 {
			pc.lzDefer--
		} else {
			if pc.lzTable == nil {
				pc.lzTable = new([1 << lzHashBits]int32)
			}
			payload := pc.buf[frameHeaderLen:]
			lz := append(pc.lzBuf[:0], 0, 0, 0, 0, 0, typ)
			lz = binary.AppendUvarint(lz, uint64(len(payload)))
			lz = lzAppendCompress(lz, payload, pc.lzTable)
			pc.lzBuf = lz
			if len(lz) < len(pc.buf) {
				putFrameHeader(lz, frameCompressed)
				frame = lz
				compressed = true
			} else {
				pc.lzDefer = lzDeferFlushes
			}
		}
	}
	if compressed {
		// The queue takes ownership of the LZ buffer; the batch buffer is
		// immediately reusable. The next LZ attempt re-grows its scratch.
		pc.lzBuf = nil
		pc.buf = pc.buf[:frameHeaderLen]
	} else {
		putFrameHeader(frame, typ)
		pc.buf = pc.takeBufLocked()
	}
	pc.batchN = 0
	pc.rawBytes = 0
	if n.opts.FlushedHandler != nil {
		n.opts.FlushedHandler(peer, tuples)
	}
	pc.enqueueLocked(queuedFrame{
		buf:        frame,
		class:      classData,
		tuples:     tuples,
		rawBytes:   rawBytes,
		compressed: compressed,
		reason:     reason,
		dictHits:   dictHits,
		dictMisses: dictMisses,
	})
	return nil
}

// flushExpired is the FlushInterval timer callback: stage whatever the
// batch holds. No socket write happens on the timer goroutine — the
// flusher owns all I/O.
func (n *Node) flushExpired(peer int, pc *peerConn) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.broken {
		return
	}
	_ = n.stageBatchLocked(peer, pc, metrics.FlushTimer)
}

// flusher is the connection's single writer: it drains every staged
// frame through one vectored write (writev), so a backlog of
// dictionary announcements, data batches and control frames reaches
// the kernel as one syscall instead of one per frame. It exits when
// the connection breaks — including by its own write failing.
func (n *Node) flusher(peer int, pc *peerConn) {
	defer n.wg.Done()
	var (
		batch   []queuedFrame
		scratch [][]byte
	)
	for {
		pc.mu.Lock()
		for len(pc.q) == 0 && !pc.broken {
			pc.cond.Wait()
		}
		if pc.broken {
			pc.mu.Unlock()
			return
		}
		batch, pc.q = pc.q, pc.qSpare[:0]
		pc.qSpare = batch
		pc.qBytes = 0
		conn := pc.conn
		// Senders parked on the queue bound can refill while the write is
		// in flight.
		pc.cond.Broadcast()
		pc.mu.Unlock()

		scratch = scratch[:0]
		for i := range batch {
			scratch = append(scratch, batch[i].buf)
		}
		wv := net.Buffers(scratch)
		if wt := n.opts.WriteTimeout; wt > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(wt))
		}
		written, err := wv.WriteTo(conn)
		if n.opts.WriteTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Time{})
		}

		if err == nil {
			n.recordWritten(peer, batch, len(batch))
			pc.mu.Lock()
			pc.wroteSeq += uint64(len(batch))
			for i := range batch {
				pc.recycleBufLocked(batch[i].buf)
			}
			pc.cond.Broadcast()
			pc.mu.Unlock()
			continue
		}

		// The stream is dead mid-queue. Frames fully handed to the kernel
		// count as written (their FlushedHandler credit stands); the
		// partially-written frame and everything after it is lost and must
		// be settled exactly once — these frames are in our hands, not in
		// pc.q, so whoever broke the connection (possibly us, below) has
		// not already counted them.
		k := 0
		rem := written
		for k < len(batch) && rem >= int64(len(batch[k].buf)) {
			rem -= int64(len(batch[k].buf))
			k++
		}
		n.recordWritten(peer, batch[:k], len(batch[:k]))
		pc.mu.Lock()
		pc.wroteSeq += uint64(k)
		if !pc.broken {
			n.breakConnLocked(peer, pc, err)
		} else if pc.writeErr == nil {
			pc.writeErr = err
		}
		n.settleFramesLocked(peer, batch[k:])
		pc.cond.Broadcast()
		pc.mu.Unlock()
		return
	}
}

// recordWritten folds written frames into the meter: one writev call
// covering frames frames, then the per-frame counters (with the data
// frames broken down by the peer link's locality tier when the node
// has a PeerTier classifier).
func (n *Node) recordWritten(peer int, frames []queuedFrame, count int) {
	m := n.opts.Meter
	if m == nil {
		return
	}
	if count > 0 {
		m.RecordWritev(count)
	}
	tier := -1
	if n.opts.PeerTier != nil {
		tier = n.opts.PeerTier(n.id, peer)
	}
	for i := range frames {
		f := &frames[i]
		switch f.class {
		case classData:
			m.RecordDataFrameSent(f.tuples, len(f.buf), f.rawBytes, f.compressed, f.reason)
			if tier >= 0 {
				m.RecordTierSent(tier, f.tuples, len(f.buf))
			}
			if f.dictHits|f.dictMisses != 0 {
				m.RecordDictLookups(f.dictHits, f.dictMisses)
			}
		case classDict:
			m.RecordDictFrameSent(f.dictEntries, len(f.buf))
		case classControl:
			m.RecordControlSent(len(f.buf))
		}
	}
}

// settleFramesLocked accounts for staged frames that will never reach
// the kernel: each data frame's FlushedHandler credit is taken back,
// then the total tuple loss is reported once through DropHandler — the
// same negate-then-drop order a failed single-frame flush always used.
func (n *Node) settleFramesLocked(peer int, frames []queuedFrame) {
	lost := 0
	for i := range frames {
		if frames[i].class == classData && frames[i].tuples > 0 {
			if n.opts.FlushedHandler != nil {
				n.opts.FlushedHandler(peer, -frames[i].tuples)
			}
			lost += frames[i].tuples
		}
	}
	if lost > 0 && n.opts.DropHandler != nil {
		n.opts.DropHandler(lost)
	}
}

// breakConnLocked is the single transition to the broken state: it
// settles every frame still in the queue and the unstaged batch,
// closes the socket and forgets the peer. Exactly-once settlement
// hinges on this running once — every caller checks pc.broken first —
// and on the flusher settling its own in-hand frames separately.
// Callers hold pc.mu.
func (n *Node) breakConnLocked(peer int, pc *peerConn, err error) {
	pc.broken = true
	if pc.writeErr == nil {
		pc.writeErr = err
	}
	pc.timer.Stop()
	q := pc.q
	pc.q = nil
	pc.qBytes = 0
	n.settleFramesLocked(peer, q)
	if pc.batchN > 0 {
		tuples := pc.batchN
		pc.buf = pc.buf[:frameHeaderLen]
		pc.batchN = 0
		pc.rawBytes = 0
		if n.opts.DropHandler != nil {
			n.opts.DropHandler(tuples)
		}
	}
	_ = pc.conn.Close()
	n.mu.Lock()
	n.removePeerLocked(peer, pc)
	n.mu.Unlock()
	pc.cond.Broadcast()
}

// DropPeer severs this node's outgoing connection to peer without
// waiting for a write to fail. Tuples batched or staged but not yet
// handed to the kernel are reported through DropHandler — exactly once,
// with staged frames' FlushedHandler credits taken back first, matching
// the accounting a failed flush would have done. Used when a peer is
// known dead (the engine's KillServer) so loss is settled
// deterministically, and before a Connect that re-dials the same peer.
// Safe to call when no connection to peer exists.
func (n *Node) DropPeer(peer int) {
	pc := (*n.peers.Load())[peer]
	if pc == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.broken {
		return
	}
	n.breakConnLocked(peer, pc, errors.New("peer dropped"))
}

// DetachPeer cleanly removes this node's outgoing connection to peer:
// the pending batch is staged and the flusher drained first, so —
// unlike DropPeer — a detach from a live, draining peer loses nothing.
// The listener stays up and a later Connect re-establishes the link
// (fresh dictionaries both ends). Used when a peer leaves the cluster
// administratively (the engine's DecommissionServer) rather than by
// dying. Safe to call when no connection to peer exists. A flush
// failure is accounted through DropHandler exactly as a failed data
// flush is.
func (n *Node) DetachPeer(peer int) {
	pc := (*n.peers.Load())[peer]
	if pc == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.broken {
		return
	}
	_ = n.stageBatchLocked(peer, pc, metrics.FlushClose)
	for !pc.broken && pc.wroteSeq < pc.enqSeq {
		pc.cond.Wait()
	}
	if !pc.broken { // a failed drain already dropped the connection
		n.breakConnLocked(peer, pc, errors.New("peer detached"))
	}
}

func (n *Node) accept() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.inbound = append(n.inbound, conn)
		n.wg.Add(1)
		n.mu.Unlock()
		go n.serve(conn)
	}
}

// serve decodes frames off one inbound connection. A frame is delivered
// only after it has been read and decoded completely; any read or
// decode error — including a torn frame from a peer that died mid-write
// — drops the connection without delivering anything partial. The
// receive dictionary lives and dies with the connection, mirroring the
// sender's: a reconnecting peer starts announcing from id 0 again.
func (n *Node) serve(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	hdr := make([]byte, frameHeaderLen)
	var (
		batch []Message
		rd    recvDict
	)
	for {
		typ, bp, err := readFrame(br, hdr)
		if err != nil {
			return // connection closed, torn frame, or corrupt stream
		}
		wireBytes := frameHeaderLen + len(*bp)
		payload := *bp
		var rawBp *[]byte
		if typ == frameCompressed {
			typ, rawBp, err = unwrapCompressed(payload)
			if err != nil {
				putBuf(bp)
				return
			}
			payload = *rawBp
			if m := n.opts.Meter; m != nil {
				m.RecordCompressedFrameReceived()
			}
		}
		switch typ {
		case frameData, frameDataDict:
			if typ == frameData {
				batch, err = appendBatch(batch[:0], payload)
			} else {
				batch, err = appendBatchDict(batch[:0], payload, &rd)
			}
			if err != nil {
				break
			}
			if m := n.opts.Meter; m != nil {
				m.RecordFrameReceived(len(batch), wireBytes)
			}
			if n.opts.BatchHandler != nil {
				n.opts.BatchHandler(n.id, batch)
			} else {
				for i := range batch {
					n.handler(batch[i])
				}
			}
		case frameDict:
			var entries int
			if entries, err = rd.apply(payload); err != nil {
				break
			}
			if m := n.opts.Meter; m != nil {
				m.RecordDictFrameReceived(entries, wireBytes)
			}
		case frameControlV2:
			var msg Message
			if msg, err = decodeControl(payload); err != nil {
				break
			}
			if m := n.opts.Meter; m != nil {
				m.RecordControlReceived(wireBytes)
			}
			n.handler(msg)
		}
		if rawBp != nil {
			putBuf(rawBp)
		}
		putBuf(bp)
		if err != nil {
			return
		}
	}
}

// Close stops accepting, drains and closes every outgoing connection
// and waits for the reader and flusher goroutines to exit. Idempotent.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	peers := *n.peers.Load()
	inbound := n.inbound
	empty := make(map[int]*peerConn)
	n.peers.Store(&empty)
	n.inbound = nil
	n.mu.Unlock()

	_ = n.ln.Close()
	for peer, pc := range peers {
		pc.mu.Lock()
		if !pc.broken {
			// Best-effort drain of the pending batch and staged queue; a
			// write failure is accounted through DropHandler by the flusher
			// and wakes this wait via the broken flag.
			_ = n.stageBatchLocked(peer, pc, metrics.FlushClose)
			for !pc.broken && pc.wroteSeq < pc.enqSeq {
				pc.cond.Wait()
			}
			if !pc.broken {
				n.breakConnLocked(peer, pc, errors.New("node closed"))
			}
		}
		pc.mu.Unlock()
	}
	for _, conn := range inbound {
		_ = conn.Close()
	}
	n.wg.Wait()
}

// Fabric is a fully connected set of nodes, one per server.
type Fabric struct {
	nodes []*Node
	addrs map[int]string
}

// NewFabric starts servers nodes and fully connects them. handler
// receives every message, along with the id of the receiving server.
func NewFabric(servers int, handler func(server int, msg Message)) (*Fabric, error) {
	return NewFabricWith(servers, handler, NodeOptions{})
}

// NewFabricWith is NewFabric with explicit per-node network options
// (including, when set, the shared BatchHandler/DropHandler/Meter).
func NewFabricWith(servers int, handler func(server int, msg Message), opts NodeOptions) (*Fabric, error) {
	if servers < 1 {
		return nil, errors.New("transport: fabric needs at least one server")
	}
	f := &Fabric{nodes: make([]*Node, servers), addrs: make(map[int]string, servers)}
	for i := 0; i < servers; i++ {
		id := i
		node, err := NewNodeWith(id, func(msg Message) { handler(id, msg) }, opts)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.nodes[i] = node
		f.addrs[i] = node.Addr()
	}
	for _, node := range f.nodes {
		if err := node.Connect(f.addrs); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// Send routes msg from one server to another.
func (f *Fabric) Send(from, to int, msg Message) error {
	if from < 0 || from >= len(f.nodes) {
		return fmt.Errorf("transport: invalid sender %d", from)
	}
	return f.nodes[from].Send(to, msg)
}

// SetFlushPolicy retunes every node's batching thresholds live (see
// Node.SetFlushPolicy for clamping and semantics).
func (f *Fabric) SetFlushPolicy(bytes int, interval time.Duration) {
	for _, node := range f.nodes {
		if node != nil {
			node.SetFlushPolicy(bytes, interval)
		}
	}
}

// FlushPolicy returns the fabric's current flush thresholds (every
// node shares the same policy).
func (f *Fabric) FlushPolicy() (bytes int, interval time.Duration) {
	for _, node := range f.nodes {
		if node != nil {
			return node.FlushPolicy()
		}
	}
	return 0, 0
}

// DropPeer severs every surviving node's outgoing connection to server,
// reporting batched and queue-staged tuples through DropHandler. Called
// before CloseNode when a server is killed: afterwards no survivor can
// flush another frame to it, which pins the flushed-but-undelivered
// count for exact loss settlement.
func (f *Fabric) DropPeer(server int) {
	for i, node := range f.nodes {
		if node != nil && i != server {
			node.DropPeer(server)
		}
	}
}

// CloseNode shuts down a single server's node — its listener, outgoing
// connections and inbound readers — leaving the rest of the fabric
// running. Used to simulate a server crash: survivors' subsequent sends
// to the dead node fail instead of being delivered. Safe to call more
// than once.
func (f *Fabric) CloseNode(server int) {
	if server < 0 || server >= len(f.nodes) {
		return
	}
	if node := f.nodes[server]; node != nil {
		node.Close()
	}
}

// Attach (re)connects server to every listed peer in both directions,
// using the addresses recorded at fabric construction. Peers whose
// nodes are closed are skipped. Used when a server joins the elastic
// membership: its listener has been up the whole time, only the
// outgoing connections need (re-)dialing.
func (f *Fabric) Attach(server int, peers []int) error {
	if server < 0 || server >= len(f.nodes) || f.nodes[server] == nil {
		return fmt.Errorf("transport: attach unknown server %d", server)
	}
	want := make(map[int]string, len(peers))
	for _, p := range peers {
		if p == server || p < 0 || p >= len(f.nodes) || f.nodes[p] == nil {
			continue
		}
		want[p] = f.addrs[p]
	}
	if err := f.nodes[server].Connect(want); err != nil {
		return err
	}
	back := map[int]string{server: f.addrs[server]}
	for p := range want {
		if err := f.nodes[p].Connect(back); err != nil {
			return err
		}
	}
	return nil
}

// Detach cleanly disconnects server from every other node in both
// directions, draining pending batches first (DetachPeer), so a detach
// from a live peer loses nothing. Listeners stay up; a later Attach
// re-establishes the connections.
func (f *Fabric) Detach(server int) {
	if server < 0 || server >= len(f.nodes) || f.nodes[server] == nil {
		return
	}
	for i, node := range f.nodes {
		if node == nil || i == server {
			continue
		}
		node.DetachPeer(server)
		f.nodes[server].DetachPeer(i)
	}
}

// Servers returns the number of nodes.
func (f *Fabric) Servers() int { return len(f.nodes) }

// Close shuts every node down.
func (f *Fabric) Close() {
	for _, node := range f.nodes {
		if node != nil {
			node.Close()
		}
	}
}
