// Package transport moves engine messages between servers over real TCP
// connections, using a length-prefixed binary wire protocol with tuple
// batching. The live engine keeps every operator instance in one process
// (like a single Storm worker per server), but with a Fabric attached,
// every cross-server tuple, state migration and propagation marker is
// encoded, written to a localhost socket, read back and decoded —
// exercising the serialization and kernel network path that makes remote
// transfers expensive in the paper's measurements.
//
// Data tuples (KindData) are packed into per-peer batches with a compact
// varint encoding and flushed when the batch reaches FlushBytes or ages
// past FlushInterval — the amortization Storm's batched Netty transport
// applies to the same cost. Control traffic (state migrations,
// propagation markers, heartbeats) stays gob-encoded behind its own
// frame type: it is rare, its payloads are irregular, and gob's
// self-describing encoding keeps those paths simple. A control send
// first flushes the pending data batch on the same connection, so the
// per-pair FIFO order the reconfiguration protocol relies on (§3.4) is
// preserved exactly.
//
// One Node is created per simulated server. Each ordered pair of nodes
// shares one TCP connection, so messages between two servers are
// delivered in FIFO order.
package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/locastream/locastream/internal/metrics"
)

// Kind distinguishes wire message types.
type Kind byte

// Wire message kinds.
const (
	KindData Kind = iota + 1
	KindMigrate
	KindPropagate
	KindHeartbeat
)

// Addr identifies a recipient operator instance.
type Addr struct {
	Op       string
	Instance int
}

// Message is the wire form of one engine message.
type Message struct {
	Kind Kind
	To   Addr

	// From is the sending server's id. Only heartbeats set it today, but
	// any kind may carry it.
	From int

	// KindData
	Values  []string
	Padding int
	KeyOp   string
	Key     string

	// KindMigrate
	MigKey  string
	MigData []byte
	// MigHasData distinguishes "no state for this key" from an
	// empty-but-present snapshot: gob omits zero-value fields, so a
	// non-nil empty MigData decodes as nil at the receiver and the two
	// cases are indistinguishable from the payload alone.
	MigHasData bool
}

// Handler consumes messages received by a node. It is called from the
// per-connection reader goroutines and must be safe for concurrent use.
type Handler func(Message)

// BatchHandler consumes one decoded data frame: a batch of KindData
// messages that crossed the wire together, delivered to node (the
// receiving server's id — senders tracking per-destination in-flight
// tuples match it against FlushedHandler's peer). The slice (not the
// strings inside it) is reused for the connection's next frame, so the
// handler must finish with it — or copy it — before returning. Like
// Handler it runs on per-connection reader goroutines and must be safe
// for concurrent use.
type BatchHandler func(node int, msgs []Message)

// Compression selects the data-frame encoding (see PROTOCOL.md).
type Compression int

const (
	// CompressionAuto interns repeated strings through the per-connection
	// dictionary and additionally LZ-compresses each flushed batch when —
	// and only when — that makes the frame smaller on the wire. The
	// default: skewed workloads are what this transport exists for.
	CompressionAuto Compression = iota
	// CompressionOff emits plain frameData frames (the PR 4 encoding).
	CompressionOff
	// CompressionDict interns through the dictionary but never runs the
	// per-frame LZ pass — the configuration to measure the two layers
	// separately.
	CompressionDict
)

// lzMinTry is the smallest batch payload worth an LZ attempt: below it
// the token overhead eats the win and the scan cost is pure loss.
const lzMinTry = 512

// lzDeferFlushes is the back-off after an unproductive LZ attempt: skip
// this many flushes before trying again. Dictionary-interned payloads
// are often already dense; the back-off keeps the encoder from
// re-proving that on every frame while still noticing when the stream
// turns compressible again.
const lzDeferFlushes = 8

// Default batching parameters (see NodeOptions).
const (
	DefaultFlushBytes    = 64 << 10
	DefaultFlushInterval = time.Millisecond
)

// NodeOptions tune a node's network behaviour. The zero value makes a
// single no-timeout dial attempt per peer, blocks writes until the
// kernel accepts them, and batches data tuples with the default
// FlushBytes/FlushInterval thresholds.
type NodeOptions struct {
	// WriteTimeout bounds each socket write (batch flushes and control
	// frames): if the peer's socket stays unwritable (stalled reader,
	// dead host with a full window) past the deadline, the write fails
	// instead of hanging the caller. The connection is dropped on any
	// write error — a partially written frame cannot be resumed — so
	// subsequent Sends to that peer fail fast.
	WriteTimeout time.Duration
	// DialTimeout bounds each individual dial attempt in Connect.
	DialTimeout time.Duration
	// DialRetries is the number of additional dial attempts after the
	// first fails, so cluster startup is not order-sensitive when a
	// peer's listener is slow to come up.
	DialRetries int
	// DialBackoff is the delay before the first retry, doubling on each
	// subsequent one (default 10ms when DialRetries > 0).
	DialBackoff time.Duration

	// FlushBytes flushes a peer's pending data batch once its encoded
	// payload reaches this many bytes (default DefaultFlushBytes).
	FlushBytes int
	// FlushInterval bounds how long a pending batch waits for more
	// tuples before being flushed anyway (default DefaultFlushInterval).
	// Batching therefore delays a tuple by at most this much; it never
	// reorders anything.
	FlushInterval time.Duration

	// Compression selects the data-frame encoding; the zero value
	// (CompressionAuto) enables the per-connection dictionary plus the
	// per-frame LZ pass. See the Compression constants.
	Compression Compression

	// BatchHandler, when set, receives each decoded data frame as one
	// call instead of the per-message Handler — the receive-side half of
	// batching (the engine drains a whole frame into mailboxes in one
	// lock acquisition per target).
	BatchHandler BatchHandler
	// DropHandler, when set, is called with the number of batched
	// KindData messages discarded because their connection broke before
	// the batch could be flushed. Senders that count tuples in flight
	// need this to settle their accounting; the callback must be cheap
	// and must not call back into the transport.
	DropHandler func(tuples int)
	// FlushedHandler, when set, is called with the number of KindData
	// tuples in each data frame handed to the kernel, keyed by the
	// destination peer — the sender-side half of exactly-once loss
	// accounting (BatchHandler's node is the matching receive side). If
	// the write then fails it is called again with the negated count
	// before DropHandler reports the loss, so the running sum per peer
	// counts only frames actually on the wire. Called under the peer's
	// batch lock: must be cheap and must not call back into the
	// transport.
	FlushedHandler func(peer, tuples int)
	// Meter, when set, accumulates wire statistics (frames, tuples per
	// frame, bytes, flush reasons, encode time) across all of the node's
	// connections.
	Meter *metrics.WireMeter
}

// Node is one server's endpoint: a listener plus one outgoing connection
// per peer.
type Node struct {
	id      int
	ln      net.Listener
	handler Handler
	opts    NodeOptions

	flushBytes    int
	flushInterval time.Duration

	// peers is copy-on-write: Send loads it with one atomic read (the
	// per-tuple fast path takes no node-wide lock); Connect, connection
	// drops and Close rebuild it under mu.
	peers atomic.Pointer[map[int]*peerConn]

	mu      sync.Mutex
	inbound []net.Conn

	wg     sync.WaitGroup
	closed bool
}

// setPeer/removePeer rebuild the copy-on-write peer map. Callers must
// hold n.mu.
func (n *Node) setPeerLocked(id int, pc *peerConn) {
	old := *n.peers.Load()
	next := make(map[int]*peerConn, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = pc
	n.peers.Store(&next)
}

func (n *Node) removePeerLocked(id int, pc *peerConn) {
	old := *n.peers.Load()
	if old[id] != pc {
		return
	}
	next := make(map[int]*peerConn, len(old))
	for k, v := range old {
		if k != id {
			next[k] = v
		}
	}
	n.peers.Store(&next)
}

// peerConn serializes writes to one peer and owns the pending data
// batch: a single reusable buffer holding the frame header placeholder
// followed by the tuples encoded so far. With compression enabled it
// also owns the connection's send dictionary and the LZ scratch state —
// all of it created with the connection and discarded with it, so a
// reconnect always starts from empty state on both ends.
type peerConn struct {
	mu     sync.Mutex
	conn   net.Conn
	buf    []byte // frameHeaderLen reserved bytes + encoded tuples
	batchN int    // tuples currently in buf
	timer  *time.Timer
	broken bool

	// dict is non-nil when the node interns strings (CompressionAuto or
	// CompressionDict); rawBytes accumulates what the current batch
	// would have cost in the raw encoding, for the meter's ratio.
	dict     *sendDict
	rawBytes int

	// LZ scratch, allocated lazily on the first attempt. lzDefer counts
	// flushes to skip after an unproductive attempt.
	lzBuf   []byte
	lzTable *[1 << lzHashBits]int32
	lzDefer int
}

// NewNode starts a node listening on an ephemeral localhost port.
// handler receives every inbound message.
func NewNode(id int, handler Handler) (*Node, error) {
	return NewNodeWith(id, handler, NodeOptions{})
}

// NewNodeWith is NewNode with explicit network options.
func NewNodeWith(id int, handler Handler, opts NodeOptions) (*Node, error) {
	if handler == nil {
		return nil, errors.New("transport: nil handler")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	n := &Node{id: id, ln: ln, handler: handler, opts: opts}
	empty := make(map[int]*peerConn)
	n.peers.Store(&empty)
	n.flushBytes = opts.FlushBytes
	if n.flushBytes <= 0 {
		n.flushBytes = DefaultFlushBytes
	}
	n.flushInterval = opts.FlushInterval
	if n.flushInterval <= 0 {
		n.flushInterval = DefaultFlushInterval
	}
	n.wg.Add(1)
	go n.accept()
	return n, nil
}

// ID returns the node's server id.
func (n *Node) ID() int { return n.id }

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Connect dials every peer in the map (peer id -> address). Peers may be
// connected before they have connected back; each direction uses its own
// connection. Each dial honours the node's DialTimeout and is retried
// DialRetries times with exponential backoff, so a peer whose listener
// is slow to come up does not fail cluster startup.
func (n *Node) Connect(peers map[int]string) error {
	for id, addr := range peers {
		if id == n.id {
			continue
		}
		conn, err := n.dial(addr)
		if err != nil {
			return fmt.Errorf("transport: dial peer %d: %w", id, err)
		}
		// Re-connecting to an already-connected peer replaces the old
		// connection: sever it first so its pending batch is accounted
		// and its timer disarmed, and so both ends discard their
		// dictionaries together (the new connection starts empty).
		n.DropPeer(id)
		pc := &peerConn{
			conn: conn,
			buf:  make([]byte, frameHeaderLen, frameHeaderLen+n.flushBytes+4096),
		}
		if n.opts.Compression != CompressionOff {
			pc.dict = newSendDict()
		}
		pc.timer = time.AfterFunc(time.Hour, func() { n.flushExpired(id, pc) })
		pc.timer.Stop()
		n.mu.Lock()
		n.setPeerLocked(id, pc)
		n.mu.Unlock()
	}
	return nil
}

func (n *Node) dial(addr string) (net.Conn, error) {
	backoff := n.opts.DialBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= n.opts.DialRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		var conn net.Conn
		var err error
		if n.opts.DialTimeout > 0 {
			conn, err = net.DialTimeout("tcp", addr, n.opts.DialTimeout)
		} else {
			conn, err = net.Dial("tcp", addr)
		}
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Send hands msg to the given peer. Messages between the same pair of
// nodes are delivered in order.
//
// KindData messages are appended to the peer's pending batch and return
// immediately; the batch is written as one data frame when it reaches
// FlushBytes, ages past FlushInterval, or a control message needs the
// stream. A batched tuple whose flush later fails is reported through
// DropHandler, not through Send's error. All other kinds are control
// traffic: they flush the pending batch, then write their own gob frame
// before returning, so their errors are synchronous.
//
// With a WriteTimeout configured, a write that cannot make progress
// within the deadline fails — and the connection is dropped, since a
// truncated frame cannot carry further messages — instead of blocking
// the caller forever.
func (n *Node) Send(peer int, msg Message) error {
	pc := (*n.peers.Load())[peer]
	if pc == nil {
		return fmt.Errorf("transport: node %d has no connection to peer %d", n.id, peer)
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.broken {
		return fmt.Errorf("transport: node %d: connection to peer %d is dropped", n.id, peer)
	}
	if msg.Kind == KindData {
		return n.sendDataLocked(peer, pc, &msg)
	}
	return n.sendControlLocked(peer, pc, &msg)
}

// encodeSampleMask makes encode-time metering sample 1-in-64 tuples:
// two clock reads per tuple would cost more than the encode itself, so
// the sampled duration is recorded with 64× weight instead. The
// resulting EncodeNanos is an estimate — fine for a monitoring counter.
const encodeSampleMask = 63

// sendDataLocked encodes one tuple into the peer's batch, flushing on
// the size threshold and arming the flush timer when the batch opens.
// With a dictionary attached the tuple is encoded in tagged form and
// the raw-equivalent size accumulated for the meter's ratio.
func (n *Node) sendDataLocked(peer int, pc *peerConn, msg *Message) error {
	if m := n.opts.Meter; m != nil && pc.batchN&encodeSampleMask == 0 {
		start := time.Now()
		pc.appendLocked(msg)
		m.RecordEncode(int64(time.Since(start)) * (encodeSampleMask + 1))
	} else {
		pc.appendLocked(msg)
	}
	pc.batchN++
	if len(pc.buf)-frameHeaderLen >= n.flushBytes {
		return n.flushLocked(peer, pc, metrics.FlushSize)
	}
	if pc.batchN == 1 {
		pc.timer.Reset(n.flushInterval)
	}
	return nil
}

// sendControlLocked writes one gob-encoded control frame, after pushing
// out any batched tuples so the connection's FIFO order is preserved.
func (n *Node) sendControlLocked(peer int, pc *peerConn, msg *Message) error {
	if err := n.flushLocked(peer, pc, metrics.FlushControl); err != nil {
		return err
	}
	bp := getBuf(frameHeaderLen)
	defer putBuf(bp)
	bb := bytes.NewBuffer((*bp)[:frameHeaderLen])
	// Each control frame is a self-contained gob stream: control traffic
	// is rare enough that re-sending type descriptors costs little, and
	// self-contained frames keep torn-stream recovery trivial.
	if err := gob.NewEncoder(bb).Encode(msg); err != nil {
		return fmt.Errorf("transport: encode control for %d: %w", peer, err)
	}
	frame := bb.Bytes()
	if len(frame)-frameHeaderLen > maxFramePayload {
		return fmt.Errorf("transport: control frame for %d exceeds %d bytes", peer, maxFramePayload)
	}
	putFrameHeader(frame, frameControl)
	if err := n.writeLocked(pc, frame); err != nil {
		n.dropConnLocked(peer, pc)
		return fmt.Errorf("transport: send to %d: %w", peer, err)
	}
	*bp = frame[:0] // return the (possibly grown) buffer to the pool
	if m := n.opts.Meter; m != nil {
		m.RecordControlSent(len(frame))
	}
	return nil
}

// appendLocked encodes one tuple into the batch buffer, raw or
// dictionary-tagged depending on the connection's mode.
func (pc *peerConn) appendLocked(msg *Message) {
	if pc.dict != nil {
		pc.buf = appendTupleDict(pc.buf, msg, pc.dict)
		pc.rawBytes += rawTupleSize(msg)
		return
	}
	pc.buf = appendTuple(pc.buf, msg)
}

// flushLocked writes the peer's pending batch as one data frame —
// preceded by a dictionary-announce frame when tuples in the batch
// promoted new entries, and wrapped in a compressed frame when the LZ
// pass actually shrank it. On a write error the connection is dropped
// and the batched tuples are reported to DropHandler — they were
// accepted by earlier Sends and are now gone.
func (n *Node) flushLocked(peer int, pc *peerConn, reason metrics.FlushReason) error {
	if pc.batchN == 0 {
		return nil
	}
	if len(pc.buf)-frameHeaderLen > maxFramePayload {
		// Unreachable with sane FlushBytes; guard anyway so a giant tuple
		// can never emit a frame the receiver is obliged to reject.
		tuples := pc.batchN
		n.resetBatchLocked(pc)
		n.dropConnLocked(peer, pc)
		if n.opts.DropHandler != nil {
			n.opts.DropHandler(tuples)
		}
		return fmt.Errorf("transport: batch for %d exceeds %d bytes", peer, maxFramePayload)
	}
	tuples := pc.batchN
	rawBytes := len(pc.buf) // raw-equivalent frame size, header included
	typ := frameData
	var dictHits, dictMisses int
	if pc.dict != nil {
		typ = frameDataDict
		rawBytes = frameHeaderLen + pc.rawBytes
		dictHits, dictMisses = pc.dict.hits, pc.dict.misses
		pc.dict.hits, pc.dict.misses = 0, 0
		// Entries promoted by this batch must be installed at the receiver
		// before the batch's references to them decode: announce first,
		// on the same FIFO stream.
		if pc.dict.pendingEntries > 0 {
			entries := pc.dict.pendingEntries
			bp := getBuf(frameHeaderLen)
			frame := append(*bp, pc.dict.pending...)
			putFrameHeader(frame, frameDict)
			err := n.writeLocked(pc, frame)
			*bp = frame[:0]
			putBuf(bp)
			if err != nil {
				n.resetBatchLocked(pc)
				n.dropConnLocked(peer, pc)
				if n.opts.DropHandler != nil {
					n.opts.DropHandler(tuples)
				}
				return fmt.Errorf("transport: send to %d: %w", peer, err)
			}
			pc.dict.pending = pc.dict.pending[:0]
			pc.dict.pendingEntries = 0
			if m := n.opts.Meter; m != nil {
				m.RecordDictFrameSent(entries, len(frame))
			}
		}
	}
	frame := pc.buf
	compressed := false
	if n.opts.Compression == CompressionAuto && len(pc.buf)-frameHeaderLen >= lzMinTry {
		if pc.lzDefer > 0 {
			pc.lzDefer--
		} else {
			if pc.lzTable == nil {
				pc.lzTable = new([1 << lzHashBits]int32)
			}
			payload := pc.buf[frameHeaderLen:]
			lz := append(pc.lzBuf[:0], 0, 0, 0, 0, 0, typ)
			lz = binary.AppendUvarint(lz, uint64(len(payload)))
			lz = lzAppendCompress(lz, payload, pc.lzTable)
			pc.lzBuf = lz
			if len(lz) < len(pc.buf) {
				putFrameHeader(lz, frameCompressed)
				frame = lz
				compressed = true
			} else {
				pc.lzDefer = lzDeferFlushes
			}
		}
	}
	if !compressed {
		putFrameHeader(frame, typ)
	}
	// The flushed count must be visible before the receiver can possibly
	// deliver the frame (it is decremented on delivery), so it is
	// recorded before the write and taken back if the write fails.
	if n.opts.FlushedHandler != nil {
		n.opts.FlushedHandler(peer, tuples)
	}
	err := n.writeLocked(pc, frame)
	frameBytes := len(frame)
	n.resetBatchLocked(pc)
	if err != nil {
		if n.opts.FlushedHandler != nil {
			n.opts.FlushedHandler(peer, -tuples)
		}
		n.dropConnLocked(peer, pc)
		if n.opts.DropHandler != nil {
			n.opts.DropHandler(tuples)
		}
		return fmt.Errorf("transport: send to %d: %w", peer, err)
	}
	if m := n.opts.Meter; m != nil {
		m.RecordDataFrameSent(tuples, frameBytes, rawBytes, compressed, reason)
		if dictHits|dictMisses != 0 {
			m.RecordDictLookups(dictHits, dictMisses)
		}
	}
	return nil
}

// resetBatchLocked empties the pending batch state after a flush
// attempt, successful or not.
func (n *Node) resetBatchLocked(pc *peerConn) {
	pc.buf = pc.buf[:frameHeaderLen]
	pc.batchN = 0
	pc.rawBytes = 0
}

// writeLocked writes one frame under the node's write deadline.
func (n *Node) writeLocked(pc *peerConn, frame []byte) error {
	if n.opts.WriteTimeout > 0 {
		_ = pc.conn.SetWriteDeadline(time.Now().Add(n.opts.WriteTimeout))
	}
	_, err := pc.conn.Write(frame)
	if n.opts.WriteTimeout > 0 {
		_ = pc.conn.SetWriteDeadline(time.Time{})
	}
	return err
}

// flushExpired is the FlushInterval timer callback: write out whatever
// the batch holds. A failure is reported through DropHandler (there is
// no caller to return an error to).
func (n *Node) flushExpired(peer int, pc *peerConn) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.broken {
		return
	}
	_ = n.flushLocked(peer, pc, metrics.FlushTimer)
}

// dropConnLocked closes and forgets a peer connection whose stream is no
// longer usable (a write failed or timed out mid-frame). Callers hold
// pc.mu.
func (n *Node) dropConnLocked(peer int, pc *peerConn) {
	pc.broken = true
	pc.timer.Stop()
	_ = pc.conn.Close()
	n.mu.Lock()
	n.removePeerLocked(peer, pc)
	n.mu.Unlock()
}

// DropPeer severs this node's outgoing connection to peer without
// waiting for a write to fail. Tuples batched but not yet flushed are
// reported through DropHandler — exactly once, matching the accounting
// a failed flush would have done. Used when a peer is known dead (the
// engine's KillServer) so loss is settled deterministically, and before
// a Connect that re-dials the same peer. Safe to call when no
// connection to peer exists.
func (n *Node) DropPeer(peer int) {
	pc := (*n.peers.Load())[peer]
	if pc == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.broken {
		return
	}
	tuples := pc.batchN
	n.resetBatchLocked(pc)
	n.dropConnLocked(peer, pc)
	if tuples > 0 && n.opts.DropHandler != nil {
		n.opts.DropHandler(tuples)
	}
}

// DetachPeer cleanly removes this node's outgoing connection to peer:
// the pending batch is flushed first, so — unlike DropPeer — a detach
// from a live, draining peer loses nothing. The listener stays up and a
// later Connect re-establishes the link (fresh dictionaries both ends).
// Used when a peer leaves the cluster administratively (the engine's
// DecommissionServer) rather than by dying. Safe to call when no
// connection to peer exists. A flush failure is accounted through
// DropHandler inside flushLocked, exactly as a failed data flush is.
func (n *Node) DetachPeer(peer int) {
	pc := (*n.peers.Load())[peer]
	if pc == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.broken {
		return
	}
	_ = n.flushLocked(peer, pc, metrics.FlushClose)
	if !pc.broken { // a failed flush already dropped the connection
		n.dropConnLocked(peer, pc)
	}
}

func (n *Node) accept() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.inbound = append(n.inbound, conn)
		n.wg.Add(1)
		n.mu.Unlock()
		go n.serve(conn)
	}
}

// serve decodes frames off one inbound connection. A frame is delivered
// only after it has been read and decoded completely; any read or
// decode error — including a torn frame from a peer that died mid-write
// — drops the connection without delivering anything partial. The
// receive dictionary lives and dies with the connection, mirroring the
// sender's: a reconnecting peer starts announcing from id 0 again.
func (n *Node) serve(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	hdr := make([]byte, frameHeaderLen)
	var (
		batch []Message
		rd    recvDict
	)
	for {
		typ, bp, err := readFrame(br, hdr)
		if err != nil {
			return // connection closed, torn frame, or corrupt stream
		}
		wireBytes := frameHeaderLen + len(*bp)
		payload := *bp
		var rawBp *[]byte
		if typ == frameCompressed {
			typ, rawBp, err = unwrapCompressed(payload)
			if err != nil {
				putBuf(bp)
				return
			}
			payload = *rawBp
			if m := n.opts.Meter; m != nil {
				m.RecordCompressedFrameReceived()
			}
		}
		switch typ {
		case frameData, frameDataDict:
			if typ == frameData {
				batch, err = appendBatch(batch[:0], payload)
			} else {
				batch, err = appendBatchDict(batch[:0], payload, &rd)
			}
			if err != nil {
				break
			}
			if m := n.opts.Meter; m != nil {
				m.RecordFrameReceived(len(batch), wireBytes)
			}
			if n.opts.BatchHandler != nil {
				n.opts.BatchHandler(n.id, batch)
			} else {
				for i := range batch {
					n.handler(batch[i])
				}
			}
		case frameDict:
			var entries int
			if entries, err = rd.apply(payload); err != nil {
				break
			}
			if m := n.opts.Meter; m != nil {
				m.RecordDictFrameReceived(entries, wireBytes)
			}
		case frameControl:
			var msg Message
			if err = gob.NewDecoder(bytes.NewReader(payload)).Decode(&msg); err != nil {
				break
			}
			if m := n.opts.Meter; m != nil {
				m.RecordControlReceived(wireBytes)
			}
			n.handler(msg)
		}
		if rawBp != nil {
			putBuf(rawBp)
		}
		putBuf(bp)
		if err != nil {
			return
		}
	}
}

// Close stops accepting, flushes and closes every outgoing connection
// and waits for the reader goroutines to exit. Idempotent.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	peers := *n.peers.Load()
	inbound := n.inbound
	empty := make(map[int]*peerConn)
	n.peers.Store(&empty)
	n.inbound = nil
	n.mu.Unlock()

	_ = n.ln.Close()
	for peer, pc := range peers {
		pc.mu.Lock()
		if !pc.broken {
			// Best-effort drain of the pending batch; a failure is already
			// accounted through DropHandler inside flushLocked.
			_ = n.flushLocked(peer, pc, metrics.FlushClose)
			pc.broken = true
			pc.timer.Stop()
			_ = pc.conn.Close()
		}
		pc.mu.Unlock()
	}
	for _, conn := range inbound {
		_ = conn.Close()
	}
	n.wg.Wait()
}

// Fabric is a fully connected set of nodes, one per server.
type Fabric struct {
	nodes []*Node
	addrs map[int]string
}

// NewFabric starts servers nodes and fully connects them. handler
// receives every message, along with the id of the receiving server.
func NewFabric(servers int, handler func(server int, msg Message)) (*Fabric, error) {
	return NewFabricWith(servers, handler, NodeOptions{})
}

// NewFabricWith is NewFabric with explicit per-node network options
// (including, when set, the shared BatchHandler/DropHandler/Meter).
func NewFabricWith(servers int, handler func(server int, msg Message), opts NodeOptions) (*Fabric, error) {
	if servers < 1 {
		return nil, errors.New("transport: fabric needs at least one server")
	}
	f := &Fabric{nodes: make([]*Node, servers), addrs: make(map[int]string, servers)}
	for i := 0; i < servers; i++ {
		id := i
		node, err := NewNodeWith(id, func(msg Message) { handler(id, msg) }, opts)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.nodes[i] = node
		f.addrs[i] = node.Addr()
	}
	for _, node := range f.nodes {
		if err := node.Connect(f.addrs); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// Send routes msg from one server to another.
func (f *Fabric) Send(from, to int, msg Message) error {
	if from < 0 || from >= len(f.nodes) {
		return fmt.Errorf("transport: invalid sender %d", from)
	}
	return f.nodes[from].Send(to, msg)
}

// DropPeer severs every surviving node's outgoing connection to server,
// reporting not-yet-flushed batches through DropHandler. Called before
// CloseNode when a server is killed: afterwards no survivor can flush
// another frame to it, which pins the flushed-but-undelivered count for
// exact loss settlement.
func (f *Fabric) DropPeer(server int) {
	for i, node := range f.nodes {
		if node != nil && i != server {
			node.DropPeer(server)
		}
	}
}

// CloseNode shuts down a single server's node — its listener, outgoing
// connections and inbound readers — leaving the rest of the fabric
// running. Used to simulate a server crash: survivors' subsequent sends
// to the dead node fail instead of being delivered. Safe to call more
// than once.
func (f *Fabric) CloseNode(server int) {
	if server < 0 || server >= len(f.nodes) {
		return
	}
	if node := f.nodes[server]; node != nil {
		node.Close()
	}
}

// Attach (re)connects server to every listed peer in both directions,
// using the addresses recorded at fabric construction. Peers whose
// nodes are closed are skipped. Used when a server joins the elastic
// membership: its listener has been up the whole time, only the
// outgoing connections need (re-)dialing.
func (f *Fabric) Attach(server int, peers []int) error {
	if server < 0 || server >= len(f.nodes) || f.nodes[server] == nil {
		return fmt.Errorf("transport: attach unknown server %d", server)
	}
	want := make(map[int]string, len(peers))
	for _, p := range peers {
		if p == server || p < 0 || p >= len(f.nodes) || f.nodes[p] == nil {
			continue
		}
		want[p] = f.addrs[p]
	}
	if err := f.nodes[server].Connect(want); err != nil {
		return err
	}
	back := map[int]string{server: f.addrs[server]}
	for p := range want {
		if err := f.nodes[p].Connect(back); err != nil {
			return err
		}
	}
	return nil
}

// Detach cleanly disconnects server from every other node in both
// directions, flushing pending batches first (DetachPeer), so a detach
// from a live peer loses nothing. Listeners stay up; a later Attach
// re-establishes the connections.
func (f *Fabric) Detach(server int) {
	if server < 0 || server >= len(f.nodes) || f.nodes[server] == nil {
		return
	}
	for i, node := range f.nodes {
		if node == nil || i == server {
			continue
		}
		node.DetachPeer(server)
		f.nodes[server].DetachPeer(i)
	}
}

// Servers returns the number of nodes.
func (f *Fabric) Servers() int { return len(f.nodes) }

// Close shuts every node down.
func (f *Fabric) Close() {
	for _, node := range f.nodes {
		if node != nil {
			node.Close()
		}
	}
}
