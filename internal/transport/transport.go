// Package transport moves engine messages between servers over real TCP
// connections. The live engine keeps every operator instance in one
// process (like a single Storm worker per server), but with a Fabric
// attached, every cross-server tuple, state migration and propagation
// marker is gob-encoded, written to a localhost socket, read back and
// decoded — exercising the serialization and kernel network path that
// makes remote transfers expensive in the paper's measurements.
//
// One Node is created per simulated server. Each ordered pair of nodes
// shares one TCP connection, so messages between two servers are
// delivered in FIFO order — the ordering assumption the reconfiguration
// protocol's correctness argument relies on (§3.4).
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Kind distinguishes wire message types.
type Kind byte

// Wire message kinds.
const (
	KindData Kind = iota + 1
	KindMigrate
	KindPropagate
	KindHeartbeat
)

// Addr identifies a recipient operator instance.
type Addr struct {
	Op       string
	Instance int
}

// Message is the wire form of one engine message.
type Message struct {
	Kind Kind
	To   Addr

	// From is the sending server's id. Only heartbeats set it today, but
	// any kind may carry it.
	From int

	// KindData
	Values  []string
	Padding int
	KeyOp   string
	Key     string

	// KindMigrate
	MigKey  string
	MigData []byte
	// MigHasData distinguishes "no state for this key" from an
	// empty-but-present snapshot: gob omits zero-value fields, so a
	// non-nil empty MigData decodes as nil at the receiver and the two
	// cases are indistinguishable from the payload alone.
	MigHasData bool
}

// Handler consumes messages received by a node. It is called from the
// per-connection reader goroutines and must be safe for concurrent use.
type Handler func(Message)

// NodeOptions tune a node's network behaviour. The zero value preserves
// the historical semantics: writes block until the kernel accepts them
// and Connect makes a single dial attempt with no timeout.
type NodeOptions struct {
	// WriteTimeout bounds each Send: if the peer's socket stays
	// unwritable (stalled reader, dead host with a full window) past the
	// deadline, Send fails instead of hanging the caller. The connection
	// is dropped on timeout — a partially written gob stream cannot be
	// resumed — so subsequent Sends to that peer fail fast.
	WriteTimeout time.Duration
	// DialTimeout bounds each individual dial attempt in Connect.
	DialTimeout time.Duration
	// DialRetries is the number of additional dial attempts after the
	// first fails, so cluster startup is not order-sensitive when a
	// peer's listener is slow to come up.
	DialRetries int
	// DialBackoff is the delay before the first retry, doubling on each
	// subsequent one (default 10ms when DialRetries > 0).
	DialBackoff time.Duration
}

// Node is one server's endpoint: a listener plus one outgoing connection
// per peer.
type Node struct {
	id      int
	ln      net.Listener
	handler Handler
	opts    NodeOptions

	mu      sync.Mutex
	peers   map[int]*peerConn
	inbound []net.Conn

	wg     sync.WaitGroup
	closed bool
}

// peerConn serializes writes to one peer.
type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// NewNode starts a node listening on an ephemeral localhost port.
// handler receives every inbound message.
func NewNode(id int, handler Handler) (*Node, error) {
	return NewNodeWith(id, handler, NodeOptions{})
}

// NewNodeWith is NewNode with explicit network options.
func NewNodeWith(id int, handler Handler, opts NodeOptions) (*Node, error) {
	if handler == nil {
		return nil, errors.New("transport: nil handler")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	n := &Node{id: id, ln: ln, handler: handler, opts: opts, peers: make(map[int]*peerConn)}
	n.wg.Add(1)
	go n.accept()
	return n, nil
}

// ID returns the node's server id.
func (n *Node) ID() int { return n.id }

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Connect dials every peer in the map (peer id -> address). Peers may be
// connected before they have connected back; each direction uses its own
// connection. Each dial honours the node's DialTimeout and is retried
// DialRetries times with exponential backoff, so a peer whose listener
// is slow to come up does not fail cluster startup.
func (n *Node) Connect(peers map[int]string) error {
	for id, addr := range peers {
		if id == n.id {
			continue
		}
		conn, err := n.dial(addr)
		if err != nil {
			return fmt.Errorf("transport: dial peer %d: %w", id, err)
		}
		n.mu.Lock()
		n.peers[id] = &peerConn{conn: conn, enc: gob.NewEncoder(conn)}
		n.mu.Unlock()
	}
	return nil
}

func (n *Node) dial(addr string) (net.Conn, error) {
	backoff := n.opts.DialBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= n.opts.DialRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		var conn net.Conn
		var err error
		if n.opts.DialTimeout > 0 {
			conn, err = net.DialTimeout("tcp", addr, n.opts.DialTimeout)
		} else {
			conn, err = net.Dial("tcp", addr)
		}
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Send encodes msg to the given peer. Messages between the same pair of
// nodes are delivered in order. With a WriteTimeout configured, a send
// that cannot make progress within the deadline fails — and the
// connection is dropped, since a truncated gob stream cannot carry
// further messages — instead of blocking the caller forever.
func (n *Node) Send(peer int, msg Message) error {
	n.mu.Lock()
	pc := n.peers[peer]
	n.mu.Unlock()
	if pc == nil {
		return fmt.Errorf("transport: node %d has no connection to peer %d", n.id, peer)
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if n.opts.WriteTimeout > 0 {
		_ = pc.conn.SetWriteDeadline(time.Now().Add(n.opts.WriteTimeout))
	}
	err := pc.enc.Encode(msg)
	if n.opts.WriteTimeout > 0 {
		_ = pc.conn.SetWriteDeadline(time.Time{})
	}
	if err != nil {
		if n.opts.WriteTimeout > 0 {
			n.dropPeer(peer, pc)
		}
		return fmt.Errorf("transport: send to %d: %w", peer, err)
	}
	return nil
}

// dropPeer closes and forgets a peer connection whose stream is no
// longer usable (e.g. a write deadline fired mid-message).
func (n *Node) dropPeer(peer int, pc *peerConn) {
	_ = pc.conn.Close()
	n.mu.Lock()
	if n.peers[peer] == pc {
		delete(n.peers, peer)
	}
	n.mu.Unlock()
}

func (n *Node) accept() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.inbound = append(n.inbound, conn)
		n.wg.Add(1)
		n.mu.Unlock()
		go n.serve(conn)
	}
}

func (n *Node) serve(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			return // connection closed (or peer gone)
		}
		n.handler(msg)
	}
}

// Close stops accepting, closes every outgoing connection and waits for
// the reader goroutines to exit. Idempotent.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	peers := n.peers
	inbound := n.inbound
	n.peers = make(map[int]*peerConn)
	n.inbound = nil
	n.mu.Unlock()

	_ = n.ln.Close()
	for _, pc := range peers {
		_ = pc.conn.Close()
	}
	for _, conn := range inbound {
		_ = conn.Close()
	}
	n.wg.Wait()
}

// Fabric is a fully connected set of nodes, one per server.
type Fabric struct {
	nodes []*Node
}

// NewFabric starts servers nodes and fully connects them. handler
// receives every message, along with the id of the receiving server.
func NewFabric(servers int, handler func(server int, msg Message)) (*Fabric, error) {
	return NewFabricWith(servers, handler, NodeOptions{})
}

// NewFabricWith is NewFabric with explicit per-node network options.
func NewFabricWith(servers int, handler func(server int, msg Message), opts NodeOptions) (*Fabric, error) {
	if servers < 1 {
		return nil, errors.New("transport: fabric needs at least one server")
	}
	f := &Fabric{nodes: make([]*Node, servers)}
	addrs := make(map[int]string, servers)
	for i := 0; i < servers; i++ {
		id := i
		node, err := NewNodeWith(id, func(msg Message) { handler(id, msg) }, opts)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.nodes[i] = node
		addrs[i] = node.Addr()
	}
	for _, node := range f.nodes {
		if err := node.Connect(addrs); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// Send routes msg from one server to another.
func (f *Fabric) Send(from, to int, msg Message) error {
	if from < 0 || from >= len(f.nodes) {
		return fmt.Errorf("transport: invalid sender %d", from)
	}
	return f.nodes[from].Send(to, msg)
}

// CloseNode shuts down a single server's node — its listener, outgoing
// connections and inbound readers — leaving the rest of the fabric
// running. Used to simulate a server crash: survivors' subsequent sends
// to the dead node fail instead of being delivered. Safe to call more
// than once.
func (f *Fabric) CloseNode(server int) {
	if server < 0 || server >= len(f.nodes) {
		return
	}
	if node := f.nodes[server]; node != nil {
		node.Close()
	}
}

// Servers returns the number of nodes.
func (f *Fabric) Servers() int { return len(f.nodes) }

// Close shuts every node down.
func (f *Fabric) Close() {
	for _, node := range f.nodes {
		if node != nil {
			node.Close()
		}
	}
}
