package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"
)

func sampleTuples() []Message {
	return []Message{
		{Kind: KindData, To: Addr{Op: "B", Instance: 2}, From: 1,
			Values: []string{"Asia", "#golang"}, Padding: 64, KeyOp: "A", Key: "Asia"},
		{Kind: KindData, To: Addr{Op: "B", Instance: 0},
			Values: []string{""}, KeyOp: "", Key: ""},
		{Kind: KindData, To: Addr{Op: "C", Instance: 7},
			Values: nil, Padding: 1 << 20, KeyOp: "B", Key: "k'"},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	in := sampleTuples()
	buf := make([]byte, frameHeaderLen)
	for i := range in {
		buf = appendTuple(buf, &in[i])
	}
	out, err := appendBatch(nil, buf[frameHeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestBatchRejectsNegativeFieldEncoding(t *testing.T) {
	// Negative ints are not representable on the wire; encode clamps
	// them to zero rather than producing a 10-byte two's-complement
	// varint the decoder would reject as out of range.
	m := Message{Kind: KindData, To: Addr{Op: "B", Instance: -1}, Padding: -7}
	buf := appendTuple(nil, &m)
	out, err := appendBatch(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].To.Instance != 0 || out[0].Padding != 0 {
		t.Fatalf("clamped fields = %+v", out[0])
	}
}

// TestBatchDecodeCorrupt feeds the decoder truncations and corrupt
// length prefixes of a valid batch; every one must error out cleanly,
// never panic, and never deliver a partially decoded tuple as valid.
func TestBatchDecodeCorrupt(t *testing.T) {
	in := sampleTuples()
	var valid []byte
	for i := range in {
		valid = appendTuple(valid, &in[i])
	}
	// Every strict prefix of the payload is a truncation: the final
	// tuple record is cut short, so decode must fail (a cut exactly on a
	// tuple boundary is legitimate — skip those by checking decode of
	// the prefix against re-encode).
	onBoundary := map[int]bool{0: true}
	var b []byte
	for i := range in {
		b = appendTuple(b, &in[i])
		onBoundary[len(b)] = true
	}
	for cut := 0; cut < len(valid); cut++ {
		got, err := appendBatch(nil, valid[:cut])
		if onBoundary[cut] {
			if err != nil {
				t.Fatalf("cut %d on tuple boundary: %v", cut, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("cut %d decoded %d tuples without error", cut, len(got))
		}
	}
	// A huge declared value count must be rejected before allocating.
	p := binary.AppendUvarint(nil, 6)  // len("remote")
	p = append(p, "remote"...)         // To.Op
	p = binary.AppendUvarint(p, 0)     // Instance
	p = binary.AppendUvarint(p, 0)     // From
	p = binary.AppendUvarint(p, 0)     // KeyOp
	p = binary.AppendUvarint(p, 0)     // Key
	p = binary.AppendUvarint(p, 0)     // Padding
	p = binary.AppendUvarint(p, 1<<40) // nvalues: absurd
	if _, err := appendBatch(nil, p); err == nil {
		t.Fatal("absurd value count accepted")
	}
}

func TestReadFrameRejectsOversizedAndUnknown(t *testing.T) {
	hdr := make([]byte, frameHeaderLen)
	// Oversized length prefix.
	over := make([]byte, frameHeaderLen)
	over[0] = frameData
	binary.LittleEndian.PutUint32(over[1:], maxFramePayload+1)
	if _, _, err := readFrame(bytes.NewReader(over), hdr); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Unknown frame type.
	unk := make([]byte, frameHeaderLen)
	unk[0] = 0x7f
	if _, _, err := readFrame(bytes.NewReader(unk), hdr); err == nil {
		t.Fatal("unknown frame type accepted")
	}
	// Truncated payload.
	short := make([]byte, frameHeaderLen, frameHeaderLen+3)
	short[0] = frameData
	binary.LittleEndian.PutUint32(short[1:], 8)
	short = append(short, 1, 2, 3)
	if _, _, err := readFrame(bytes.NewReader(short), hdr); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated payload: err = %v, want %v", err, io.ErrUnexpectedEOF)
	}
}

// TestEncodeSteadyStateZeroAlloc pins the acceptance criterion for the
// wire hot path: once the per-peer batch buffer has grown to its
// working size, encoding a tuple into it performs no allocation.
func TestEncodeSteadyStateZeroAlloc(t *testing.T) {
	msg := Message{Kind: KindData, To: Addr{Op: "B", Instance: 3}, From: 1,
		Values: []string{"Asia", "#golang"}, Padding: 64, KeyOp: "A", Key: "Asia"}
	buf := make([]byte, frameHeaderLen, 1<<20)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = appendTuple(buf[:frameHeaderLen], &msg)
	})
	if allocs != 0 {
		t.Fatalf("appendTuple allocates %.1f/op in steady state, want 0", allocs)
	}
}

// FuzzFrameDecode drives the whole receive-side parse path — frame
// header, length prefix, batch decoder — with arbitrary bytes. The
// decoder must never panic and must never allocate out of proportion to
// its input, no matter what a corrupt or malicious peer sends.
func FuzzFrameDecode(f *testing.F) {
	// Seed with a valid two-frame stream and a few mutations.
	var payload []byte
	for _, m := range sampleTuples() {
		payload = appendTuple(payload, &m)
	}
	frame := make([]byte, frameHeaderLen)
	frame = append(frame, payload...)
	putFrameHeader(frame, frameData)
	f.Add(append(append([]byte{}, frame...), frame...))
	f.Add(frame[:len(frame)-3]) // torn mid-payload
	f.Add([]byte{frameData, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{frameControl, 4, 0, 0, 0, 1, 2, 3, 4})
	f.Add(payload)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The stream path: parse frames until the reader errors out.
		r := bytes.NewReader(data)
		hdr := make([]byte, frameHeaderLen)
		for {
			typ, bp, err := readFrame(r, hdr)
			if err != nil {
				break
			}
			if typ == frameData {
				if msgs, err := appendBatch(nil, *bp); err == nil {
					for i := range msgs {
						if msgs[i].To.Instance < 0 || msgs[i].Padding < 0 || msgs[i].From < 0 {
							t.Fatalf("decoded negative int field: %+v", msgs[i])
						}
					}
				}
			}
			putBuf(bp)
		}
		// The raw payload path, independent of framing.
		_, _ = appendBatch(nil, data)
	})
}
