package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"
)

func sampleTuples() []Message {
	return []Message{
		{Kind: KindData, To: Addr{Op: "B", Instance: 2}, From: 1,
			Values: []string{"Asia", "#golang"}, Padding: 64, KeyOp: "A", Key: "Asia"},
		{Kind: KindData, To: Addr{Op: "B", Instance: 0},
			Values: []string{""}, KeyOp: "", Key: ""},
		{Kind: KindData, To: Addr{Op: "C", Instance: 7},
			Values: nil, Padding: 1 << 20, KeyOp: "B", Key: "k'"},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	in := sampleTuples()
	buf := make([]byte, frameHeaderLen)
	for i := range in {
		buf = appendTuple(buf, &in[i])
	}
	out, err := appendBatch(nil, buf[frameHeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestBatchRejectsNegativeFieldEncoding(t *testing.T) {
	// Negative ints are not representable on the wire; encode clamps
	// them to zero rather than producing a 10-byte two's-complement
	// varint the decoder would reject as out of range.
	m := Message{Kind: KindData, To: Addr{Op: "B", Instance: -1}, Padding: -7}
	buf := appendTuple(nil, &m)
	out, err := appendBatch(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].To.Instance != 0 || out[0].Padding != 0 {
		t.Fatalf("clamped fields = %+v", out[0])
	}
}

// TestBatchDecodeCorrupt feeds the decoder truncations and corrupt
// length prefixes of a valid batch; every one must error out cleanly,
// never panic, and never deliver a partially decoded tuple as valid.
func TestBatchDecodeCorrupt(t *testing.T) {
	in := sampleTuples()
	var valid []byte
	for i := range in {
		valid = appendTuple(valid, &in[i])
	}
	// Every strict prefix of the payload is a truncation: the final
	// tuple record is cut short, so decode must fail (a cut exactly on a
	// tuple boundary is legitimate — skip those by checking decode of
	// the prefix against re-encode).
	onBoundary := map[int]bool{0: true}
	var b []byte
	for i := range in {
		b = appendTuple(b, &in[i])
		onBoundary[len(b)] = true
	}
	for cut := 0; cut < len(valid); cut++ {
		got, err := appendBatch(nil, valid[:cut])
		if onBoundary[cut] {
			if err != nil {
				t.Fatalf("cut %d on tuple boundary: %v", cut, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("cut %d decoded %d tuples without error", cut, len(got))
		}
	}
	// A huge declared value count must be rejected before allocating.
	p := binary.AppendUvarint(nil, 6)  // len("remote")
	p = append(p, "remote"...)         // To.Op
	p = binary.AppendUvarint(p, 0)     // Instance
	p = binary.AppendUvarint(p, 0)     // From
	p = binary.AppendUvarint(p, 0)     // KeyOp
	p = binary.AppendUvarint(p, 0)     // Key
	p = binary.AppendUvarint(p, 0)     // Padding
	p = binary.AppendUvarint(p, 1<<40) // nvalues: absurd
	if _, err := appendBatch(nil, p); err == nil {
		t.Fatal("absurd value count accepted")
	}
}

func TestReadFrameRejectsOversizedAndUnknown(t *testing.T) {
	hdr := make([]byte, frameHeaderLen)
	// Oversized length prefix.
	over := make([]byte, frameHeaderLen)
	over[0] = frameData
	binary.LittleEndian.PutUint32(over[1:], maxFramePayload+1)
	if _, _, err := readFrame(bytes.NewReader(over), hdr); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Unknown frame type.
	unk := make([]byte, frameHeaderLen)
	unk[0] = 0x7f
	if _, _, err := readFrame(bytes.NewReader(unk), hdr); err == nil {
		t.Fatal("unknown frame type accepted")
	}
	// Truncated payload.
	short := make([]byte, frameHeaderLen, frameHeaderLen+3)
	short[0] = frameData
	binary.LittleEndian.PutUint32(short[1:], 8)
	short = append(short, 1, 2, 3)
	if _, _, err := readFrame(bytes.NewReader(short), hdr); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated payload: err = %v, want %v", err, io.ErrUnexpectedEOF)
	}
}

// TestEncodeSteadyStateZeroAlloc pins the acceptance criterion for the
// wire hot path: once the per-peer batch buffer has grown to its
// working size, encoding a tuple into it performs no allocation.
func TestEncodeSteadyStateZeroAlloc(t *testing.T) {
	msg := Message{Kind: KindData, To: Addr{Op: "B", Instance: 3}, From: 1,
		Values: []string{"Asia", "#golang"}, Padding: 64, KeyOp: "A", Key: "Asia"}
	buf := make([]byte, frameHeaderLen, 1<<20)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = appendTuple(buf[:frameHeaderLen], &msg)
	})
	if allocs != 0 {
		t.Fatalf("appendTuple allocates %.1f/op in steady state, want 0", allocs)
	}
}

// fuzzSeedStream builds a valid stream exercising every data-path frame
// type with the real encoders: a dictionary announce, a tagged batch
// referencing it, and an LZ-wrapped tagged batch.
func fuzzSeedStream() []byte {
	sd := newSendDict()
	msgs := sampleTuples()
	encode := func() []byte {
		buf := make([]byte, frameHeaderLen)
		for i := range msgs {
			buf = appendTupleDict(buf, &msgs[i], sd)
		}
		return buf
	}
	first := encode()
	second := encode() // references the entries the first pass promoted

	var stream []byte
	dict := make([]byte, frameHeaderLen)
	dict = append(dict, sd.pending...)
	putFrameHeader(dict, frameDict)
	stream = append(stream, dict...)

	putFrameHeader(first, frameDataDict)
	stream = append(stream, first...)

	var table [1 << lzHashBits]int32
	lz := []byte{0, 0, 0, 0, 0, frameDataDict}
	lz = binary.AppendUvarint(lz, uint64(len(second)-frameHeaderLen))
	lz = lzAppendCompress(lz, second[frameHeaderLen:], &table)
	putFrameHeader(lz, frameCompressed)
	return append(stream, lz...)
}

// FuzzFrameDecode drives the whole receive-side parse path — frame
// header, length prefix, LZ unwrap, dictionary install, batch decoder —
// with arbitrary bytes, mirroring Node.serve. The decoder must never
// panic and must never allocate out of proportion to its input, no
// matter what a corrupt or malicious peer sends.
func FuzzFrameDecode(f *testing.F) {
	// Seed with a valid two-frame stream and a few mutations.
	var payload []byte
	for _, m := range sampleTuples() {
		payload = appendTuple(payload, &m)
	}
	frame := make([]byte, frameHeaderLen)
	frame = append(frame, payload...)
	putFrameHeader(frame, frameData)
	f.Add(append(append([]byte{}, frame...), frame...))
	f.Add(frame[:len(frame)-3]) // torn mid-payload
	f.Add([]byte{frameData, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x02, 4, 0, 0, 0, 1, 2, 3, 4}) // retired gob-control id: must be rejected
	f.Add(payload)
	// Compressed/dictionary-era seeds.
	seed := fuzzSeedStream()
	f.Add(seed)
	f.Add(seed[:len(seed)-2])                                // torn inside the compressed frame
	f.Add([]byte{frameCompressed, 2, 0, 0, 0, frameDict, 0}) // illegal inner type
	f.Add([]byte{frameDict, 3, 0, 0, 0, 2, 1, 'a'})          // out-of-order dict id

	f.Fuzz(func(t *testing.T, data []byte) {
		// The stream path: parse frames until the reader errors out,
		// carrying the per-connection receive dictionary like serve does.
		r := bytes.NewReader(data)
		hdr := make([]byte, frameHeaderLen)
		var rd recvDict
		for {
			typ, bp, err := readFrame(r, hdr)
			if err != nil {
				break
			}
			payload := *bp
			var rawBp *[]byte
			if typ == frameCompressed {
				typ, rawBp, err = unwrapCompressed(payload)
				if err != nil {
					putBuf(bp)
					break
				}
				payload = *rawBp
			}
			var (
				msgs []Message
				derr error
			)
			switch typ {
			case frameData:
				msgs, derr = appendBatch(nil, payload)
			case frameDataDict:
				msgs, derr = appendBatchDict(nil, payload, &rd)
			case frameDict:
				_, derr = rd.apply(payload)
			}
			if derr == nil {
				for i := range msgs {
					if msgs[i].To.Instance < 0 || msgs[i].Padding < 0 || msgs[i].From < 0 {
						t.Fatalf("decoded negative int field: %+v", msgs[i])
					}
				}
			}
			if rawBp != nil {
				putBuf(rawBp)
			}
			putBuf(bp)
			if derr != nil {
				break
			}
		}
		// The raw payload paths, independent of framing.
		_, _ = appendBatch(nil, data)
		var rd2 recvDict
		_, _ = appendBatchDict(nil, data, &rd2)
	})
}

// FuzzDictDecode targets the dictionary layer in isolation: an
// arbitrary announce payload installed into a fresh receive dictionary,
// an arbitrary tagged batch decoded against it, and the LZ decoder over
// the same bytes. Nothing may panic; every accepted decode must respect
// the layer's invariants.
func FuzzDictDecode(f *testing.F) {
	sd := newSendDict()
	var batch []byte
	msgs := sampleTuples()
	for round := 0; round < 2; round++ {
		for i := range msgs {
			batch = appendTupleDict(batch, &msgs[i], sd)
		}
	}
	f.Add(append([]byte{}, sd.pending...), append([]byte{}, batch...))
	f.Add([]byte{2, 1, 'a'}, append([]byte{}, batch...)) // bad announce, good batch
	f.Add(append([]byte{}, sd.pending...), []byte{0xff, 0xff, 0xff})
	var table [1 << lzHashBits]int32
	f.Add(append([]byte{}, sd.pending...), lzAppendCompress(nil, batch, &table))

	f.Fuzz(func(t *testing.T, dict, batch []byte) {
		var rd recvDict
		if _, err := rd.apply(dict); err == nil {
			for _, e := range rd.entries {
				if len(e) == 0 || len(e) > maxDictString {
					t.Fatalf("installed illegal dictionary entry of %d bytes", len(e))
				}
			}
		}
		if msgs, err := appendBatchDict(nil, batch, &rd); err == nil {
			for i := range msgs {
				if msgs[i].To.Instance < 0 || msgs[i].Padding < 0 || msgs[i].From < 0 {
					t.Fatalf("decoded negative int field: %+v", msgs[i])
				}
			}
		}
		const lzLimit = 1 << 16
		if out, err := lzAppendDecompress(nil, batch, lzLimit); err == nil && len(out) > lzLimit {
			t.Fatalf("LZ decoder exceeded its limit: %d > %d", len(out), lzLimit)
		}
	})
}
