package transport

import "encoding/binary"

// Per-connection wire dictionary. Skewed workloads make data frames
// highly repetitive: the same operator names ride in every tuple record
// and a handful of hot keys dominate the key fields (the Zipf skew that
// motivates Partial Key Grouping). The dictionary interns those strings
// once per connection and replaces every later occurrence with a 1-2
// byte reference.
//
// Sync discipline: the send side assigns ids 0,1,2,... in promotion
// order and announces each entry in-band, inside a frameDict frame
// written on the same connection *before* the first data frame that
// references it. The stream is FIFO, so the receiver always installs an
// entry before seeing a reference to it. Both sides are created with the
// connection and die with it: a reconnect starts from two empty
// dictionaries, which makes desync structurally impossible — there is no
// cross-connection state to disagree about.
const (
	// maxDictEntries bounds one connection's dictionary. Promotion stops
	// when the table is full; later strings ride inline. 4096 entries
	// comfortably hold every operator name plus the hot tail of a skewed
	// key distribution while bounding receiver memory.
	maxDictEntries = 4096

	// maxDictCandidates bounds the "seen once" recency window. When the
	// window fills — a flood of one-off keys — it is cleared wholesale,
	// so only strings that recur within a window earn a dictionary slot.
	// This is what keeps the dictionary biased to *recently hot* keys.
	maxDictCandidates = 8192

	// maxDictString bounds one interned string. Longer strings are
	// legal on the wire (inline) but never interned, bounding both the
	// announce traffic and the receiver's per-entry memory.
	maxDictString = 1024
)

// sendDict is the sender half: string -> id, plus the not-yet-announced
// entries. One per outgoing connection; guarded by the peerConn mutex.
type sendDict struct {
	ids        map[string]uint32
	candidates map[string]struct{}

	// pending holds the encoded announcements (the next frameDict
	// payload) for entries promoted since the last flush. It is written
	// to the socket before the data frame whose tuples reference them.
	pending        []byte
	pendingEntries int

	// hits/misses count interned vs inline string fields since the last
	// flush; the flush folds them into the WireMeter in one shot so the
	// per-field hot path touches no atomics.
	hits, misses int
}

func newSendDict() *sendDict {
	return &sendDict{
		ids:        make(map[string]uint32),
		candidates: make(map[string]struct{}),
	}
}

// intern returns the dictionary id for s, promoting s on its second
// sighting within the candidate window. ok is false when s must ride
// inline (not seen twice yet, too long, empty, or the table is full).
func (d *sendDict) intern(s string) (uint32, bool) {
	if len(s) == 0 || len(s) > maxDictString {
		d.misses++
		return 0, false
	}
	if id, ok := d.ids[s]; ok {
		d.hits++
		return id, true
	}
	d.misses++
	if len(d.ids) >= maxDictEntries {
		return 0, false
	}
	if _, seen := d.candidates[s]; !seen {
		if len(d.candidates) >= maxDictCandidates {
			// Recency reset: drop the whole window rather than tracking
			// per-entry ages. One-off keys never survive two windows.
			clear(d.candidates)
		}
		d.candidates[s] = struct{}{}
		return 0, false
	}
	// Second sighting: promote. The announcement is queued now and the
	// current field already rides as a reference — safe because the
	// flush writes the queued frameDict frame before the data frame
	// whose tuples reference it, on the same FIFO stream.
	delete(d.candidates, s)
	id := uint32(len(d.ids))
	d.ids[s] = id
	d.pending = binary.AppendUvarint(d.pending, uint64(id))
	d.pending = binary.AppendUvarint(d.pending, uint64(len(s)))
	d.pending = append(d.pending, s...)
	d.pendingEntries++
	return id, true
}

// recvDict is the receiver half: id -> string, fed by frameDict frames.
// One per inbound connection, touched only by that connection's reader
// goroutine.
type recvDict struct {
	entries []string
}

// apply installs one frameDict payload. Ids must continue the strictly
// sequential assignment the sender uses; anything else means the stream
// is corrupt and the connection must be dropped.
func (d *recvDict) apply(p []byte) (entries int, err error) {
	for len(p) > 0 {
		id, rest, ok := readUvarint(p)
		if !ok || id != uint64(len(d.entries)) || id >= maxDictEntries {
			return entries, errFrameCorrupt
		}
		s, rest, ok := readString(rest)
		if !ok || len(s) == 0 || len(s) > maxDictString {
			return entries, errFrameCorrupt
		}
		d.entries = append(d.entries, s)
		entries++
		p = rest
	}
	return entries, nil
}

// Tagged string encoding, used by every string field of a frameDataDict
// tuple record:
//
//	uvarint (id<<1)|1            — dictionary reference
//	uvarint (len<<1), len bytes  — inline string
//
// The tag costs nothing extra for inline strings shorter than 64 bytes
// (the uvarint still fits one byte) and turns every interned field into
// one or two bytes.

// appendDictString appends s in tagged form, as a reference when the
// dictionary already holds (or just promoted) it.
func appendDictString(buf []byte, s string, d *sendDict) []byte {
	if id, ok := d.intern(s); ok {
		return binary.AppendUvarint(buf, uint64(id)<<1|1)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s))<<1)
	return append(buf, s...)
}

// readDictString reads one tagged string. References resolve against the
// connection's dictionary and share its backing memory (strings are
// immutable, and the dictionary entry outlives the frame buffer);
// inline strings are copied out like readString does.
func readDictString(p []byte, d *recvDict) (string, []byte, bool) {
	v, rest, ok := readUvarint(p)
	if !ok {
		return "", p, false
	}
	if v&1 == 1 {
		id := v >> 1
		if id >= uint64(len(d.entries)) {
			return "", p, false
		}
		return d.entries[id], rest, true
	}
	n := v >> 1
	if n > uint64(len(rest)) {
		return "", p, false
	}
	return string(rest[:n]), rest[n:], true
}

// appendTupleDict is appendTuple with every string field in tagged form.
// The record layout and integer fields are identical to the raw
// encoding (see appendTuple).
func appendTupleDict(buf []byte, m *Message, d *sendDict) []byte {
	buf = appendDictString(buf, m.To.Op, d)
	buf = binary.AppendUvarint(buf, uint64(nonNeg(m.To.Instance)))
	buf = binary.AppendUvarint(buf, uint64(nonNeg(m.From)))
	buf = appendDictString(buf, m.KeyOp, d)
	buf = appendDictString(buf, m.Key, d)
	buf = binary.AppendUvarint(buf, uint64(nonNeg(m.Padding)))
	buf = binary.AppendUvarint(buf, uint64(len(m.Values)))
	for _, v := range m.Values {
		buf = appendDictString(buf, v, d)
	}
	return buf
}

// rawTupleSize is the raw (un-interned, uncompressed) encoded size of m
// — what appendTuple would emit. The compressed send path accumulates it
// per batch so the meter can report a true raw-vs-on-wire ratio without
// encoding everything twice.
func rawTupleSize(m *Message) int {
	n := uvarintSize(uint64(len(m.To.Op))) + len(m.To.Op)
	n += uvarintSize(uint64(nonNeg(m.To.Instance)))
	n += uvarintSize(uint64(nonNeg(m.From)))
	n += uvarintSize(uint64(len(m.KeyOp))) + len(m.KeyOp)
	n += uvarintSize(uint64(len(m.Key))) + len(m.Key)
	n += uvarintSize(uint64(nonNeg(m.Padding)))
	n += uvarintSize(uint64(len(m.Values)))
	for _, v := range m.Values {
		n += uvarintSize(uint64(len(v))) + len(v)
	}
	return n
}

func uvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendBatchDict decodes a frameDataDict payload against the
// connection's dictionary — the tagged-string sibling of appendBatch,
// with the same corruption discipline: every declared length is
// validated before allocation and any leftover means the frame (and the
// connection) is bad.
func appendBatchDict(dst []Message, p []byte, d *recvDict) ([]Message, error) {
	for len(p) > 0 {
		var (
			m  Message
			u  uint64
			ok bool
		)
		m.Kind = KindData
		if m.To.Op, p, ok = readDictString(p, d); !ok {
			return dst, errFrameCorrupt
		}
		if u, p, ok = readUvarint(p); !ok || u > maxIntField {
			return dst, errFrameCorrupt
		}
		m.To.Instance = int(u)
		if u, p, ok = readUvarint(p); !ok || u > maxIntField {
			return dst, errFrameCorrupt
		}
		m.From = int(u)
		if m.KeyOp, p, ok = readDictString(p, d); !ok {
			return dst, errFrameCorrupt
		}
		if m.Key, p, ok = readDictString(p, d); !ok {
			return dst, errFrameCorrupt
		}
		if u, p, ok = readUvarint(p); !ok || u > maxIntField {
			return dst, errFrameCorrupt
		}
		m.Padding = int(u)
		if u, p, ok = readUvarint(p); !ok {
			return dst, errFrameCorrupt
		}
		// Each value costs at least one tag byte, so a count beyond the
		// remaining bytes is unsatisfiable.
		if u > uint64(len(p)) {
			return dst, errFrameCorrupt
		}
		if u > 0 {
			vals := make([]string, u)
			for i := range vals {
				if vals[i], p, ok = readDictString(p, d); !ok {
					return dst, errFrameCorrupt
				}
			}
			m.Values = vals
		}
		dst = append(dst, m)
	}
	return dst, nil
}
