package transport

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGenerateFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz when GEN_FUZZ_CORPUS=1 is set. The files mirror the
// f.Add seeds built with the real encoders; committing them means a
// plain `go test` run (CI included) executes every seed against the
// fuzz targets, and a `-fuzz` session starts from known-interesting
// frames instead of rediscovering the format.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("set GEN_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	write := func(target, name string, args ...[]byte) {
		t.Helper()
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := "go test fuzz v1\n"
		for _, a := range args {
			body += fmt.Sprintf("[]byte(%q)\n", a)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// FuzzFrameDecode: one []byte, a whole inbound stream.
	var payload []byte
	for _, m := range sampleTuples() {
		payload = appendTuple(payload, &m)
	}
	frame := make([]byte, frameHeaderLen)
	frame = append(frame, payload...)
	putFrameHeader(frame, frameData)
	stream := fuzzSeedStream()
	write("FuzzFrameDecode", "raw_two_frames", append(append([]byte{}, frame...), frame...))
	write("FuzzFrameDecode", "torn_frame", frame[:len(frame)-3])
	write("FuzzFrameDecode", "oversized_header", []byte{frameData, 0xff, 0xff, 0xff, 0xff})
	write("FuzzFrameDecode", "control_frame", []byte{0x02, 4, 0, 0, 0, 1, 2, 3, 4})
	write("FuzzFrameDecode", "bare_payload", payload)
	write("FuzzFrameDecode", "dict_compressed_stream", stream)
	write("FuzzFrameDecode", "torn_compressed", stream[:len(stream)-2])
	write("FuzzFrameDecode", "illegal_inner_type", []byte{frameCompressed, 2, 0, 0, 0, frameDict, 0})
	write("FuzzFrameDecode", "out_of_order_dict", []byte{frameDict, 3, 0, 0, 0, 2, 1, 'a'})

	// FuzzDictDecode: (announce payload, batch payload) pairs.
	sd := newSendDict()
	var batch []byte
	msgs := sampleTuples()
	for round := 0; round < 2; round++ {
		for i := range msgs {
			batch = appendTupleDict(batch, &msgs[i], sd)
		}
	}
	var table [1 << lzHashBits]int32
	write("FuzzDictDecode", "valid_announce_batch", sd.pending, batch)
	write("FuzzDictDecode", "bad_announce", []byte{2, 1, 'a'}, batch)
	write("FuzzDictDecode", "corrupt_batch", sd.pending, []byte{0xff, 0xff, 0xff})
	write("FuzzDictDecode", "lz_wrapped_batch", sd.pending, lzAppendCompress(nil, batch, &table))

	// FuzzControlFrameDecode: one []byte, a frameControlV2 payload.
	ctrls := sampleControls()
	names := []string{"migrate_with_data", "migrate_empty_present", "migrate_no_data", "propagate", "heartbeat"}
	for i := range ctrls {
		write("FuzzControlFrameDecode", names[i], appendControl(nil, &ctrls[i]))
	}
	valid := appendControl(nil, &ctrls[0])
	write("FuzzControlFrameDecode", "torn_snapshot", valid[:len(valid)-3])
	write("FuzzControlFrameDecode", "future_version", append([]byte{ctrlVersion + 1}, valid[1:]...))
	write("FuzzControlFrameDecode", "data_kind_rejected", []byte{ctrlVersion, byte(KindData), 0, 0, 0, 0})
	write("FuzzControlFrameDecode", "trailing_garbage", append(append([]byte{}, valid...), 0xee))
}
