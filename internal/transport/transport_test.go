package transport

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/locastream/locastream/internal/metrics"
)

func TestNodeValidation(t *testing.T) {
	if _, err := NewNode(0, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestFabricValidation(t *testing.T) {
	if _, err := NewFabric(0, func(int, Message) {}); err == nil {
		t.Fatal("0 servers accepted")
	}
}

func collectFabric(t *testing.T, servers int) (*Fabric, func() []Message, *sync.WaitGroup) {
	t.Helper()
	var (
		mu  sync.Mutex
		got []Message
		wg  sync.WaitGroup
	)
	f, err := NewFabric(servers, func(server int, msg Message) {
		mu.Lock()
		got = append(got, msg)
		mu.Unlock()
		wg.Done()
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	snapshot := func() []Message {
		mu.Lock()
		defer mu.Unlock()
		return append([]Message(nil), got...)
	}
	return f, snapshot, &wg
}

func TestFabricDeliversAllKinds(t *testing.T) {
	f, snapshot, wg := collectFabric(t, 2)

	wg.Add(3)
	msgs := []Message{
		{Kind: KindData, To: Addr{Op: "B", Instance: 1},
			Values: []string{"Asia", "#go"}, Padding: 64, KeyOp: "A", Key: "Asia"},
		{Kind: KindMigrate, To: Addr{Op: "B", Instance: 0},
			MigKey: "k", MigData: []byte{1, 2, 3}},
		{Kind: KindPropagate, To: Addr{Op: "B", Instance: 1}},
	}
	for _, m := range msgs {
		if err := f.Send(0, 1, m); err != nil {
			t.Fatal(err)
		}
	}
	waitGroupWithin(t, wg, 5*time.Second)

	got := snapshot()
	if len(got) != 3 {
		t.Fatalf("received %d messages", len(got))
	}
	// FIFO per pair: order preserved.
	if got[0].Kind != KindData || got[1].Kind != KindMigrate || got[2].Kind != KindPropagate {
		t.Fatalf("order = %v %v %v", got[0].Kind, got[1].Kind, got[2].Kind)
	}
	if got[0].Values[0] != "Asia" || got[0].Padding != 64 || got[0].KeyOp != "A" {
		t.Fatalf("data payload = %+v", got[0])
	}
	if string(got[1].MigData) != "\x01\x02\x03" || got[1].MigKey != "k" {
		t.Fatalf("migrate payload = %+v", got[1])
	}
}

func TestFabricFIFOUnderLoad(t *testing.T) {
	const n = 5000
	var (
		mu   sync.Mutex
		keys []string
		wg   sync.WaitGroup
	)
	f, err := NewFabric(2, func(_ int, msg Message) {
		mu.Lock()
		keys = append(keys, msg.Key)
		mu.Unlock()
		wg.Done()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	wg.Add(n)
	for i := 0; i < n; i++ {
		if err := f.Send(0, 1, Message{Kind: KindData, Key: fmt.Sprintf("%08d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitGroupWithin(t, &wg, 10*time.Second)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("FIFO violated at %d: %s before %s", i, keys[i-1], keys[i])
		}
	}
}

func TestFabricConcurrentSenders(t *testing.T) {
	const senders, per = 4, 500
	var wg sync.WaitGroup
	var count sync.WaitGroup
	count.Add(senders * per)
	f, err := NewFabric(3, func(int, Message) { count.Done() })
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := f.Send(s%3, (s+1)%3, Message{Kind: KindData, Key: "k"}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	waitGroupWithin(t, &count, 10*time.Second)
}

func TestLargePayload(t *testing.T) {
	var wg sync.WaitGroup
	var got Message
	f, err := NewFabric(2, func(_ int, msg Message) {
		got = msg
		wg.Done()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	wg.Add(1)
	big := []byte(strings.Repeat("x", 1<<20))
	if err := f.Send(1, 0, Message{Kind: KindMigrate, MigKey: "big", MigData: big}); err != nil {
		t.Fatal(err)
	}
	waitGroupWithin(t, &wg, 5*time.Second)
	if len(got.MigData) != 1<<20 {
		t.Fatalf("payload size = %d", len(got.MigData))
	}
}

func TestSendErrors(t *testing.T) {
	f, _, _ := collectFabric(t, 2)
	if err := f.Send(-1, 0, Message{}); err == nil {
		t.Error("invalid sender accepted")
	}
	if err := f.Send(0, 9, Message{}); err == nil {
		t.Error("unknown peer accepted")
	}
}

func TestCloseIdempotentAndSendAfterClose(t *testing.T) {
	f, _, _ := collectFabric(t, 2)
	f.Close()
	f.Close() // must not panic or hang
	if err := f.Send(0, 1, Message{Kind: KindData}); err == nil {
		t.Error("send after close should fail")
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	f, snapshot, wg := collectFabric(t, 2)
	wg.Add(1)
	if err := f.Send(1, 0, Message{Kind: KindHeartbeat, From: 1}); err != nil {
		t.Fatal(err)
	}
	waitGroupWithin(t, wg, 5*time.Second)
	got := snapshot()
	if len(got) != 1 || got[0].Kind != KindHeartbeat || got[0].From != 1 {
		t.Fatalf("heartbeat = %+v", got)
	}
}

// TestSendWriteDeadline verifies a sender facing a stalled peer errors
// out within the write deadline instead of blocking forever, and that
// subsequent sends to the dropped peer fail fast.
func TestSendWriteDeadline(t *testing.T) {
	// A raw listener that accepts but never reads, so the sender's
	// kernel buffer eventually fills.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn
		}
	}()

	n, err := NewNodeWith(0, func(Message) {}, NodeOptions{WriteTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Connect(map[int]string{1: ln.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		select {
		case conn := <-accepted:
			conn.Close()
		default:
		}
	}()

	// Push large payloads until the socket buffers fill and the
	// deadline fires. Bound the loop so a broken implementation fails
	// the test instead of hanging it.
	payload := bytes.Repeat([]byte{0xab}, 1<<20)
	var sendErr error
	for i := 0; i < 64; i++ {
		if sendErr = n.Send(1, Message{Kind: KindMigrate, MigKey: "k", MigData: payload}); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("Send never surfaced an error against a stalled peer")
	}
	// The stream is truncated mid-message; the peer must be dropped so
	// the next send fails immediately rather than writing garbage.
	start := time.Now()
	if err := n.Send(1, Message{Kind: KindData}); err == nil {
		t.Fatal("send after deadline drop succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("send after drop took %v, want fast failure", elapsed)
	}
}

// TestConnectRetriesSlowListener verifies Connect succeeds when the
// peer's listener comes up only after the first dial attempts fail.
func TestConnectRetriesSlowListener(t *testing.T) {
	// Reserve a port, then free it so the first dials fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	n, err := NewNodeWith(0, func(Message) {}, NodeOptions{
		DialTimeout: time.Second,
		DialRetries: 50,
		DialBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Bring the listener up late, on the reserved address.
	go func() {
		time.Sleep(100 * time.Millisecond)
		late, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		conn, err := late.Accept()
		if err == nil {
			defer conn.Close()
		}
		late.Close()
	}()

	if err := n.Connect(map[int]string{1: addr}); err != nil {
		t.Fatalf("Connect did not survive a slow listener: %v", err)
	}
}

// TestConnectBoundedRetries verifies Connect gives up after its retry
// budget when the peer never appears.
func TestConnectBoundedRetries(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nobody will ever listen here

	n, err := NewNodeWith(0, func(Message) {}, NodeOptions{
		DialTimeout: 100 * time.Millisecond,
		DialRetries: 2,
		DialBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	start := time.Now()
	if err := n.Connect(map[int]string{1: addr}); err == nil {
		t.Fatal("Connect succeeded with no listener")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Connect took %v, retries not bounded", elapsed)
	}
}

// TestStalledPeerDropsBatch is the stalled-mid-frame case: a peer that
// accepts the connection but never reads. The sender's batched tuples
// must be discarded with the connection (reported via DropHandler, so
// in-flight accounting can settle), the next send must fail fast, and
// the stall must never block a sender forever.
func TestStalledPeerDropsBatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn // hold it open, never read
		}
	}()

	var dropped atomic.Int64
	n, err := NewNodeWith(0, func(Message) {}, NodeOptions{
		WriteTimeout: 200 * time.Millisecond,
		FlushBytes:   1 << 10,
		DropHandler:  func(tuples int) { dropped.Add(int64(tuples)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Connect(map[int]string{1: ln.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		select {
		case conn := <-accepted:
			conn.Close()
		default:
		}
	}()

	// Pump data until the kernel buffers fill and a flush hits the write
	// deadline. Bound the loop so a broken implementation fails instead
	// of hanging. Each tuple carries a distinct pseudo-random payload so
	// neither the dictionary nor the LZ pass can shrink the stream — the
	// stall must come from real bytes hitting a full socket.
	rng := rand.New(rand.NewSource(7))
	raw := make([]byte, 1<<10)
	var sendErr error
	for i := 0; i < 1<<16; i++ {
		rng.Read(raw)
		if sendErr = n.Send(1, Message{Kind: KindData, Key: "k", Values: []string{string(raw)}}); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("Send never surfaced an error against a stalled peer")
	}
	if dropped.Load() == 0 {
		t.Fatal("DropHandler never reported the discarded batch")
	}
	// The connection is gone: the next send must fail immediately.
	start := time.Now()
	if err := n.Send(1, Message{Kind: KindData}); err == nil {
		t.Fatal("send after deadline drop succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("send after drop took %v, want fast failure", elapsed)
	}
}

// TestTornFrameDeliversNothing writes a complete frame followed by a
// truncated one straight into a node's listener: the complete frame
// must be delivered, the torn one must drop the connection without the
// handler ever seeing a partial tuple.
func TestTornFrameDeliversNothing(t *testing.T) {
	var (
		mu  sync.Mutex
		got []Message
	)
	n, err := NewNode(0, func(msg Message) {
		mu.Lock()
		got = append(got, msg)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	conn, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	whole := Message{Kind: KindData, To: Addr{Op: "B", Instance: 1}, Key: "whole", Values: []string{"v"}}
	torn := Message{Kind: KindData, To: Addr{Op: "B", Instance: 2}, Key: "torn", Values: []string{"vvvvvvvv"}}
	frame := make([]byte, frameHeaderLen)
	frame = appendTuple(frame, &whole)
	putFrameHeader(frame, frameData)
	tornFrame := make([]byte, frameHeaderLen)
	tornFrame = appendTuple(tornFrame, &torn)
	putFrameHeader(tornFrame, frameData)
	if _, err := conn.Write(append(frame, tornFrame[:len(tornFrame)-4]...)); err != nil {
		t.Fatal(err)
	}
	conn.Close() // tear the stream mid-frame

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := len(got) >= 1
		mu.Unlock()
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Key != "whole" {
		t.Fatalf("delivered %+v, want exactly the complete frame's tuple", got)
	}
}

// TestBatchHandlerReceivesFrames verifies the receive-side batching
// contract: tuples that crossed in one frame arrive in one BatchHandler
// call, in order, and size-triggered flushes happen without waiting for
// the timer.
func TestBatchHandlerReceivesFrames(t *testing.T) {
	const tuples = 100
	var (
		mu     sync.Mutex
		frames [][]Message
		total  int
	)
	done := make(chan struct{})
	opts := NodeOptions{
		FlushBytes:    1 << 20,
		FlushInterval: 5 * time.Millisecond,
		BatchHandler: func(_ int, msgs []Message) {
			mu.Lock()
			frames = append(frames, append([]Message(nil), msgs...))
			total += len(msgs)
			if total == tuples {
				close(done)
			}
			mu.Unlock()
		},
	}
	f, err := NewFabricWith(2, func(int, Message) {}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < tuples; i++ {
		if err := f.Send(0, 1, Message{Kind: KindData, To: Addr{Op: "B"}, Key: fmt.Sprintf("%04d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for batched delivery")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(frames) >= tuples {
		t.Fatalf("got %d frames for %d tuples; batching is not happening", len(frames), tuples)
	}
	var keys []string
	for _, fr := range frames {
		for _, m := range fr {
			keys = append(keys, m.Key)
		}
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("FIFO violated across frames at %d: %s before %s", i, keys[i-1], keys[i])
		}
	}
}

// TestWireMeterCounts checks that the meter sees frames on both sides
// and attributes flush reasons.
func TestWireMeterCounts(t *testing.T) {
	meter := new(metrics.WireMeter)
	var wg sync.WaitGroup
	f, err := NewFabricWith(2, func(int, Message) { wg.Done() }, NodeOptions{
		FlushBytes: 1 << 20, // force timer flushes
		Meter:      meter,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	wg.Add(3)
	for i := 0; i < 2; i++ {
		if err := f.Send(0, 1, Message{Kind: KindData, Key: "k"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Send(0, 1, Message{Kind: KindHeartbeat, From: 0}); err != nil {
		t.Fatal(err)
	}
	waitGroupWithin(t, &wg, 5*time.Second)

	st := meter.Snapshot()
	if st.TuplesSent != 2 || st.TuplesReceived != 2 {
		t.Fatalf("tuples sent/received = %d/%d, want 2/2", st.TuplesSent, st.TuplesReceived)
	}
	if st.FramesSent == 0 || st.FramesSent != st.FlushSize+st.FlushTimer+st.FlushControl+st.FlushClose {
		t.Fatalf("flush reasons %d+%d+%d+%d do not sum to frames %d",
			st.FlushSize, st.FlushTimer, st.FlushControl, st.FlushClose, st.FramesSent)
	}
	if st.ControlSent != 1 || st.ControlReceived != 1 {
		t.Fatalf("control sent/received = %d/%d, want 1/1", st.ControlSent, st.ControlReceived)
	}
	if st.BytesSent == 0 || st.BytesReceived == 0 {
		t.Fatal("byte counters not recorded")
	}
}

func waitGroupWithin(t *testing.T, wg *sync.WaitGroup, d time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("timed out waiting for deliveries")
	}
}
