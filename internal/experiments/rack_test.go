package experiments

import "testing"

func TestAblationRackAwareImprovesRackLocality(t *testing.T) {
	fig, err := AblationRackAware(testScale)
	if err != nil {
		t.Fatal(err)
	}
	flat := seriesByLabel(t, fig, "flat")
	aware := seriesByLabel(t, fig, "rack-aware")
	if len(flat.Points) != 3 || len(aware.Points) != 3 {
		t.Fatalf("points = %d/%d, want 3 each", len(flat.Points), len(aware.Points))
	}
	// Metric 3 is rack locality: hierarchical partitioning must not be
	// worse than flat (it optimizes exactly this quantity).
	flatRack := flat.Sorted()[2].Y
	awareRack := aware.Sorted()[2].Y
	if awareRack+0.02 < flatRack {
		t.Errorf("rack-aware rack locality %.3f clearly below flat %.3f", awareRack, flatRack)
	}
	// Server locality (metric 2) is in [0,1].
	for _, s := range fig.Series {
		pts := s.Sorted()
		if pts[1].Y < 0 || pts[1].Y > 1 || pts[2].Y < 0 || pts[2].Y > 1 {
			t.Errorf("series %s: locality metrics out of range: %+v", s.Label, pts)
		}
		if pts[2].Y < pts[1].Y {
			t.Errorf("series %s: rack locality %.3f below server locality %.3f",
				s.Label, pts[2].Y, pts[1].Y)
		}
	}
}
