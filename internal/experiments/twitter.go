package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/locastream/locastream/internal/core"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/metrics"
	"github.com/locastream/locastream/internal/simnet"
	"github.com/locastream/locastream/internal/workload"
)

// Figure10 reproduces the workload characterization "Occurrences of the
// hashtag #nevertrump in different states in the USA": the same hashtag
// correlates with different locations at different times, which is the
// motivation for online reoptimization (§4.3).
//
// The paper plots the authors' Twitter crawl; we sample an equivalent
// moving-correlation process: each state has a burst of activity for the
// tracked hashtag centered on a different day (Florida around March 3rd,
// Virginia around the 9th, Texas around the 11th — the 2016 primary
// calendar), on top of background noise.
func Figure10(scale Scale) (Figure, error) {
	tweetsPerDay := scale.tuples(40000, 2000)
	rng := rand.New(rand.NewSource(10))
	states := []struct {
		name string
		peak float64 // day of the activity burst
		amp  float64 // peak probability amplitude
	}{
		{name: "Florida", peak: 3, amp: 0.009},
		{name: "Virginia", peak: 9, amp: 0.010},
		{name: "Texas", peak: 11, amp: 0.008},
	}
	fig := Figure{
		ID:     "fig10",
		Title:  "occurrences of one hashtag per state over days (moving correlation)",
		XLabel: "day",
		YLabel: "frequency/day",
	}
	for _, st := range states {
		s := metrics.Series{Label: st.name}
		for day := 2; day <= 13; day++ {
			// Burst + background; sampled, not analytic, so the series
			// is as noisy as real data.
			p := 0.0004 + st.amp*math.Exp(-0.5*sq(float64(day)-st.peak))
			count := 0
			for i := 0; i < tweetsPerDay; i++ {
				if rng.Float64() < p {
					count++
				}
			}
			s.Append(float64(day), float64(count))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

func sq(x float64) float64 { return x * x }

// twitterSketchCapacity is large enough to make pair statistics
// effectively exact at experiment scale (the paper finds 1e6 edges / a
// few MB per POI sufficient).
const twitterSketchCapacity = 1 << 16

// Figure11 reproduces "Locality and load balance obtained after
// reconfiguration with a parallelism of 6, and period of one week":
// (a) locality over 25 weeks and (b) load balance, for online (weekly
// reconfiguration), offline (one reconfiguration after week 1) and
// hash-based routing.
func Figure11(scale Scale) ([]Figure, error) {
	return figure11WithPeriod(scale, 25, 1)
}

// figure11WithPeriod also powers the reconfiguration-period ablation.
func figure11WithPeriod(scale Scale, weeks, period int) ([]Figure, error) {
	const parallelism = 6
	weekTuples := scale.tuples(50000, 2500)

	type strategy struct {
		name   string
		mode   engine.FieldsMode
		online bool // reconfigure every period weeks; false: only once
	}
	strategies := []strategy{
		{name: "online", mode: engine.FieldsTable, online: true},
		{name: "offline", mode: engine.FieldsTable, online: false},
		{name: "hash-based", mode: engine.FieldsHash},
	}

	locFig := Figure{
		ID: "fig11a", Title: "locality over weeks (parallelism=6)",
		XLabel: "week", YLabel: "locality",
	}
	balFig := Figure{
		ID: "fig11b", Title: "load balance over weeks (parallelism=6)",
		XLabel: "week", YLabel: "max/avg",
	}

	for _, strat := range strategies {
		sim, err := newEvalSim(parallelism, strat.mode, simnet.Default10G(), twitterSketchCapacity)
		if err != nil {
			return nil, err
		}
		opt, _, err := newEvalOptimizer(parallelism, core.OptimizerOptions{Seed: 11, MaxEdges: 1 << 20})
		if err != nil {
			return nil, err
		}
		gen := workload.NewTwitter(workload.DefaultTwitterConfig())

		locSeries := metrics.Series{Label: strat.name}
		balSeries := metrics.Series{Label: strat.name}
		reconfigured := false
		for week := 0; week < weeks; week++ {
			sim.ResetWindow()
			sim.InjectAll(workload.Take(gen, weekTuples))
			locSeries.Append(float64(week), sim.FieldsTraffic().Locality())
			balSeries.Append(float64(week), metrics.Imbalance(serverLoads(sim, parallelism)))

			if strat.mode == engine.FieldsTable {
				due := strat.online && (week+1)%period == 0
				if !strat.online && !reconfigured {
					due = true
				}
				if due {
					tables, _, err := opt.ComputeTables(sim.PairStats(true))
					if err != nil {
						return nil, err
					}
					sim.ApplyTables(tables)
					reconfigured = true
				} else {
					// Statistics windows reset weekly regardless, so the
					// next reconfiguration only sees recent data.
					sim.PairStats(true)
				}
			}
			gen.NextWeek()
		}
		locFig.Series = append(locFig.Series, locSeries)
		balFig.Series = append(balFig.Series, balSeries)
	}
	return []Figure{locFig, balFig}, nil
}

// Figure12 reproduces "Locality achieved when varying number of
// considered edges, for different parallelisms": the quality/capacity
// trade-off of bounded statistics collection.
func Figure12(scale Scale) (Figure, error) {
	weekTuples := scale.tuples(60000, 3000)
	fig := Figure{
		ID: "fig12", Title: "locality vs number of considered edges",
		XLabel: "edges", YLabel: "locality",
	}
	budgets := []int{10, 32, 100, 316, 1000, 3162, 10000, 31623, 100000}

	for parallelism := 2; parallelism <= 6; parallelism++ {
		series := metrics.Series{Label: fmt.Sprintf("%d", parallelism)}

		// Week 1: collect (effectively exact) pair statistics under hash
		// routing.
		statsSim, err := newEvalSim(parallelism, engine.FieldsHash, simnet.Default10G(), twitterSketchCapacity)
		if err != nil {
			return Figure{}, err
		}
		gen := workload.NewTwitter(workload.DefaultTwitterConfig())
		statsSim.InjectAll(workload.Take(gen, weekTuples))
		stats := statsSim.PairStats(false)
		gen.NextWeek()

		for _, budget := range budgets {
			opt, _, err := newEvalOptimizer(parallelism, core.OptimizerOptions{
				Seed: 12, MaxEdges: budget,
			})
			if err != nil {
				return Figure{}, err
			}
			tables, _, err := opt.ComputeTables(stats)
			if err != nil {
				return Figure{}, err
			}

			// Measure achieved locality on the following week's data.
			measure, err := newEvalSim(parallelism, engine.FieldsTable, simnet.Default10G(), 0)
			if err != nil {
				return Figure{}, err
			}
			measure.ApplyTables(tables)
			week2 := workload.NewTwitter(workload.DefaultTwitterConfig())
			for i := 0; i < weekTuples; i++ { // fast-forward week 1
				week2.Next()
			}
			week2.NextWeek()
			measure.InjectAll(workload.Take(week2, weekTuples))
			series.Append(float64(budget), measure.FieldsTraffic().Locality())
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}
