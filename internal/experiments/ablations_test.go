package experiments

import "testing"

// smokeScale makes the ablation smoke tests fast; the shape-sensitive
// assertions live in the dedicated tests above.
const smokeScale = Scale(0.02)

func TestAblationsRunAndProduceSeries(t *testing.T) {
	figs, err := AllAblations(smokeScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 5 {
		t.Fatalf("%d ablations, want 5", len(figs))
	}
	for _, fig := range figs {
		if len(fig.Series) == 0 {
			t.Errorf("%s: no series", fig.ID)
		}
		for _, s := range fig.Series {
			if len(s.Points) == 0 {
				t.Errorf("%s/%s: no points", fig.ID, s.Label)
			}
			for _, p := range s.Points {
				if p.Y < 0 {
					t.Errorf("%s/%s: negative value %f", fig.ID, s.Label, p.Y)
				}
			}
		}
	}
}

func TestAblationRefinementNeverWorse(t *testing.T) {
	fig, err := AblationRefinement(smokeScale)
	if err != nil {
		t.Fatal(err)
	}
	withRef := seriesByLabel(t, fig, "multilevel+FM").Sorted()
	withoutRef := seriesByLabel(t, fig, "greedy-only").Sorted()
	for i := range withRef {
		// Allow small noise; refinement should not lose much and usually
		// wins clearly.
		if withRef[i].Y+0.1 < withoutRef[i].Y {
			t.Errorf("parallelism %.0f: FM %.3f clearly below greedy %.3f",
				withRef[i].X, withRef[i].Y, withoutRef[i].Y)
		}
	}
}

func TestFigureByIDCoversAblations(t *testing.T) {
	for _, id := range []string{
		"ablation-refinement", "ablation-sketch", "ablation-alpha",
		"ablation-period", "ablation-rack",
	} {
		figs, err := FigureByID(id, smokeScale)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(figs) != 1 {
			t.Fatalf("%s: %d figures", id, len(figs))
		}
	}
}
