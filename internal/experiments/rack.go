package experiments

import (
	"github.com/locastream/locastream/internal/core"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/metrics"
	"github.com/locastream/locastream/internal/simnet"
	"github.com/locastream/locastream/internal/topology"
	"github.com/locastream/locastream/internal/workload"
)

// AblationRackAware evaluates the hierarchical-locality extension from
// the paper's conclusion: 6 servers in 2 racks with an oversubscribed
// inter-rack link (4x slower per byte). It compares flat partitioning
// against rack-aware two-level partitioning on the Twitter workload,
// reporting throughput, server locality, and rack locality.
func AblationRackAware(scale Scale) (Figure, error) {
	const (
		parallelism     = 6
		interRackFactor = 4.0
	)
	weekTuples := scale.tuples(50000, 2500)
	rackOf := []int{0, 0, 0, 1, 1, 1}

	fig := Figure{
		ID:     "ablation-rack",
		Title:  "flat vs rack-aware partitioning (6 servers, 2 racks, 4x inter-rack cost)",
		XLabel: "metric", // 1 = Ktuples/s, 2 = locality, 3 = rack locality
		YLabel: "value",
	}

	run := func(rackAware bool) (tp, loc, rackLoc float64, err error) {
		topo, place, err := evalApp(parallelism)
		if err != nil {
			return 0, 0, 0, err
		}
		if err := place.AssignRacks(rackOf); err != nil {
			return 0, 0, 0, err
		}
		model := simnet.Default10G()
		model.InterRackFactor = interRackFactor
		policies, err := engine.NewPolicies(topo, place, engine.FieldsTable)
		if err != nil {
			return 0, 0, 0, err
		}
		src, err := engine.NewSourcePolicy(topo, place, topology.Fields, engine.FieldsTable)
		if err != nil {
			return 0, 0, 0, err
		}
		sim, err := engine.NewSim(engine.SimConfig{
			Topology: topo, Placement: place, Model: model,
			Policies: policies, SourcePolicy: src,
			SketchCapacity: twitterSketchCapacity,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		opt, err := core.NewOptimizer(topo, place, core.OptimizerOptions{
			Seed: 31, MaxEdges: 1 << 20, RackAware: rackAware,
		})
		if err != nil {
			return 0, 0, 0, err
		}

		// Week 1 under hash fallback collects statistics; week 2 runs on
		// the optimized tables with a heavier payload so the inter-rack
		// penalty matters.
		gen := workload.NewTwitter(workload.DefaultTwitterConfig())
		sim.InjectAll(workload.Take(gen, weekTuples))
		tables, _, err := opt.ComputeTables(sim.PairStats(true))
		if err != nil {
			return 0, 0, 0, err
		}
		sim.ApplyTables(tables)
		sim.ResetWindow()
		gen.NextWeek()
		padded := func() (topology.Tuple, bool) {
			t := gen.Next()
			t.Padding = 8192
			return t, true
		}
		for i := 0; i < weekTuples; i++ {
			t, _ := padded()
			sim.Inject(t)
		}
		tr := sim.FieldsTraffic()
		return sim.ThroughputPerSec() / 1000, tr.Locality(), tr.RackLocality(), nil
	}

	flat := metrics.Series{Label: "flat"}
	aware := metrics.Series{Label: "rack-aware"}
	for i, rackAware := range []bool{false, true} {
		tp, loc, rackLoc, err := run(rackAware)
		if err != nil {
			return Figure{}, err
		}
		s := &flat
		if i == 1 {
			s = &aware
		}
		s.Append(1, tp)
		s.Append(2, loc)
		s.Append(3, rackLoc)
	}
	fig.Series = append(fig.Series, flat, aware)
	return fig, nil
}
