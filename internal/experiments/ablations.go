package experiments

import (
	"fmt"

	"github.com/locastream/locastream/internal/core"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/metrics"
	"github.com/locastream/locastream/internal/simnet"
	"github.com/locastream/locastream/internal/workload"
)

// twitterLocalityWith measures achieved locality on week-2 Twitter data
// for tables computed from week-1 statistics under the given optimizer
// options and sketch capacity.
func twitterLocalityWith(parallelism, sketchCap, weekTuples int, opts core.OptimizerOptions) (achieved float64, plan *core.Plan, err error) {
	statsSim, err := newEvalSim(parallelism, engine.FieldsHash, simnet.Default10G(), sketchCap)
	if err != nil {
		return 0, nil, err
	}
	gen := workload.NewTwitter(workload.DefaultTwitterConfig())
	statsSim.InjectAll(workload.Take(gen, weekTuples))

	opt, _, err := newEvalOptimizer(parallelism, opts)
	if err != nil {
		return 0, nil, err
	}
	tables, plan, err := opt.ComputeTables(statsSim.PairStats(false))
	if err != nil {
		return 0, nil, err
	}

	measure, err := newEvalSim(parallelism, engine.FieldsTable, simnet.Default10G(), 0)
	if err != nil {
		return 0, nil, err
	}
	measure.ApplyTables(tables)
	gen.NextWeek()
	measure.InjectAll(workload.Take(gen, weekTuples))
	return measure.FieldsTraffic().Locality(), plan, nil
}

// AblationRefinement quantifies what the Fiduccia–Mattheyses refinement
// contributes: expected and achieved locality with refinement enabled vs
// disabled (greedy initial partition only).
func AblationRefinement(scale Scale) (Figure, error) {
	weekTuples := scale.tuples(50000, 2500)
	fig := Figure{
		ID:     "ablation-refinement",
		Title:  "partitioner refinement: achieved locality with vs without FM passes",
		XLabel: "parallelism",
		YLabel: "locality",
	}
	withRef := metrics.Series{Label: "multilevel+FM"}
	withoutRef := metrics.Series{Label: "greedy-only"}
	for parallelism := 2; parallelism <= 6; parallelism += 2 {
		loc, _, err := twitterLocalityWith(parallelism, twitterSketchCapacity, weekTuples,
			core.OptimizerOptions{Seed: 21, MaxEdges: 1 << 20})
		if err != nil {
			return Figure{}, err
		}
		withRef.Append(float64(parallelism), loc)

		loc, _, err = twitterLocalityWith(parallelism, twitterSketchCapacity, weekTuples,
			core.OptimizerOptions{Seed: 21, MaxEdges: 1 << 20, RefinePasses: -1})
		if err != nil {
			return Figure{}, err
		}
		withoutRef.Append(float64(parallelism), loc)
	}
	fig.Series = append(fig.Series, withRef, withoutRef)
	return fig, nil
}

// AblationSketchCapacity complements Fig. 12: instead of truncating exact
// statistics, it bounds the SpaceSaving sketches themselves and reports
// the achieved locality, validating the paper's "1 MB of memory per POI
// is sufficient" claim.
func AblationSketchCapacity(scale Scale) (Figure, error) {
	weekTuples := scale.tuples(50000, 2500)
	const parallelism = 6
	fig := Figure{
		ID:     "ablation-sketch",
		Title:  "achieved locality vs SpaceSaving sketch capacity (parallelism=6)",
		XLabel: "sketch-capacity",
		YLabel: "locality",
	}
	s := metrics.Series{Label: "locality"}
	for _, capacity := range []int{64, 256, 1024, 4096, 16384, 65536} {
		loc, _, err := twitterLocalityWith(parallelism, capacity, weekTuples,
			core.OptimizerOptions{Seed: 22, MaxEdges: 1 << 20})
		if err != nil {
			return Figure{}, err
		}
		s.Append(float64(capacity), loc)
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// AblationAlpha sweeps the imbalance bound α of §3.1: tighter bounds
// trade locality for balance.
func AblationAlpha(scale Scale) (Figure, error) {
	weekTuples := scale.tuples(50000, 2500)
	const parallelism = 6
	fig := Figure{
		ID:     "ablation-alpha",
		Title:  "locality and imbalance vs balance bound alpha (parallelism=6)",
		XLabel: "alpha",
		YLabel: "value",
	}
	locS := metrics.Series{Label: "achieved-locality"}
	imbS := metrics.Series{Label: "plan-imbalance"}
	for _, alpha := range []float64{1.0, 1.03, 1.1, 1.3, 2.0} {
		loc, plan, err := twitterLocalityWith(parallelism, twitterSketchCapacity, weekTuples,
			core.OptimizerOptions{Seed: 23, MaxEdges: 1 << 20, Alpha: alpha})
		if err != nil {
			return Figure{}, err
		}
		locS.Append(alpha, loc)
		imbS.Append(alpha, plan.Imbalance)
	}
	fig.Series = append(fig.Series, locS, imbS)
	return fig, nil
}

// AblationPeriod varies the reconfiguration period (§4.3 discusses that
// frequent reconfiguration is cheap and tracks drift better): average
// locality over 24 weeks when reconfiguring every 1, 2, 4 or 8 weeks.
func AblationPeriod(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "ablation-period",
		Title:  "average locality vs reconfiguration period (parallelism=6)",
		XLabel: "period-weeks",
		YLabel: "avg-locality",
	}
	s := metrics.Series{Label: "online"}
	for _, period := range []int{1, 2, 4, 8} {
		figs, err := figure11WithPeriod(scale, 24, period)
		if err != nil {
			return Figure{}, err
		}
		// Series 0 of fig11a is the online strategy; skip the warm-up
		// week (no tables yet).
		pts := figs[0].Series[0].Sorted()
		sum, n := 0.0, 0
		for _, p := range pts {
			if p.X >= 1 {
				sum += p.Y
				n++
			}
		}
		s.Append(float64(period), sum/float64(n))
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// AllFigures runs every paper figure at the given scale, in paper order.
func AllFigures(scale Scale) ([]Figure, error) {
	var out []Figure
	add := func(figs []Figure, err error) error {
		if err != nil {
			return err
		}
		out = append(out, figs...)
		return nil
	}
	if err := add(Figure7(scale)); err != nil {
		return nil, err
	}
	if err := add(Figure8(scale)); err != nil {
		return nil, err
	}
	if err := add(Figure9(scale)); err != nil {
		return nil, err
	}
	f10, err := Figure10(scale)
	if err != nil {
		return nil, err
	}
	out = append(out, f10)
	if err := add(Figure11(scale)); err != nil {
		return nil, err
	}
	f12, err := Figure12(scale)
	if err != nil {
		return nil, err
	}
	out = append(out, f12)
	if err := add(Figure13(scale)); err != nil {
		return nil, err
	}
	f14, err := Figure14(scale)
	if err != nil {
		return nil, err
	}
	out = append(out, f14)
	return out, nil
}

// AllAblations runs every ablation at the given scale.
func AllAblations(scale Scale) ([]Figure, error) {
	var out []Figure
	for _, fn := range []func(Scale) (Figure, error){
		AblationRefinement, AblationSketchCapacity, AblationAlpha, AblationPeriod,
		AblationRackAware,
	} {
		fig, err := fn(scale)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

// FigureByID runs one figure or ablation by its identifier prefix
// ("fig7", "fig11", "ablation-alpha", ...).
func FigureByID(id string, scale Scale) ([]Figure, error) {
	switch id {
	case "fig7":
		return Figure7(scale)
	case "fig8":
		return Figure8(scale)
	case "fig9":
		return Figure9(scale)
	case "fig10":
		f, err := Figure10(scale)
		return []Figure{f}, err
	case "fig11":
		return Figure11(scale)
	case "fig12":
		f, err := Figure12(scale)
		return []Figure{f}, err
	case "fig13":
		return Figure13(scale)
	case "fig14":
		f, err := Figure14(scale)
		return []Figure{f}, err
	case "ablation-refinement":
		f, err := AblationRefinement(scale)
		return []Figure{f}, err
	case "ablation-sketch":
		f, err := AblationSketchCapacity(scale)
		return []Figure{f}, err
	case "ablation-alpha":
		f, err := AblationAlpha(scale)
		return []Figure{f}, err
	case "ablation-period":
		f, err := AblationPeriod(scale)
		return []Figure{f}, err
	case "ablation-rack":
		f, err := AblationRackAware(scale)
		return []Figure{f}, err
	default:
		return nil, fmt.Errorf("experiments: unknown figure %q", id)
	}
}
