package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/locastream/locastream/internal/metrics"
)

// testScale keeps the experiment tests fast while preserving enough
// samples for the shape assertions.
const testScale = Scale(0.08)

func seriesByLabel(t *testing.T, fig Figure, label string) metrics.Series {
	t.Helper()
	for _, s := range fig.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("figure %s has no series %q", fig.ID, label)
	return metrics.Series{}
}

func lastY(s metrics.Series) float64 {
	pts := s.Sorted()
	return pts[len(pts)-1].Y
}

func meanY(s metrics.Series, fromX float64) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Sorted() {
		if p.X >= fromX {
			sum += p.Y
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestFigure7Shapes(t *testing.T) {
	figs, err := Figure7(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 {
		t.Fatalf("%d panels, want 6", len(figs))
	}
	for _, fig := range figs {
		aware := seriesByLabel(t, fig, "locality-aware")
		hash := seriesByLabel(t, fig, "hash-based")
		worst := seriesByLabel(t, fig, "worst-case")
		// At parallelism 6, the paper's ordering must hold.
		if lastY(aware) <= lastY(hash) {
			t.Errorf("%s: locality-aware %.0f <= hash %.0f at parallelism 6",
				fig.ID, lastY(aware), lastY(hash))
		}
		if lastY(hash) < lastY(worst) {
			t.Errorf("%s: hash %.0f < worst-case %.0f", fig.ID, lastY(hash), lastY(worst))
		}
	}

	// Panel f (100% locality, 20kB): locality-aware scales ~linearly;
	// the hash gap must be large (paper: ~3x).
	last := figs[5]
	aware := seriesByLabel(t, last, "locality-aware").Sorted()
	if aware[5].Y < 5*aware[0].Y {
		t.Errorf("fig7f: locality-aware not ~linear: p1=%.0f p6=%.0f", aware[0].Y, aware[5].Y)
	}
	hash := seriesByLabel(t, last, "hash-based")
	if lastY(hash)*2 > aware[5].Y {
		t.Errorf("fig7f: hash %.0f too close to locality-aware %.0f at 20kB", lastY(hash), aware[5].Y)
	}
}

func TestFigure8Shapes(t *testing.T) {
	figs, err := Figure8(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("%d panels, want 3", len(figs))
	}
	// Locality-aware throughput grows with the locality parameter;
	// hash-based does not benefit from it. With only `parallelism`
	// distinct keys the hash curve is lumpy (individual key alignments
	// weigh heavily), so the robust assertion is relative: the
	// locality-aware gain must dwarf any hash drift.
	for _, fig := range figs {
		aware := seriesByLabel(t, fig, "locality-aware").Sorted()
		awareGain := aware[len(aware)-1].Y - aware[0].Y
		if awareGain <= 0 {
			t.Errorf("%s: locality-aware does not grow with locality", fig.ID)
		}
		hash := seriesByLabel(t, fig, "hash-based").Sorted()
		hashDrift := hash[len(hash)-1].Y - hash[0].Y
		if hashDrift < 0 {
			hashDrift = -hashDrift
		}
		if awareGain < 2*hashDrift {
			t.Errorf("%s: locality-aware gain %.0f not well above hash drift %.0f",
				fig.ID, awareGain, hashDrift)
		}
	}
}

func TestFigure9Shapes(t *testing.T) {
	figs, err := Figure9(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("%d panels, want 3", len(figs))
	}
	// The locality-aware/hash gap grows with parallelism (compare the
	// largest padding point across panels).
	gap := func(fig Figure) float64 {
		return lastY(seriesByLabel(t, fig, "locality-aware")) /
			lastY(seriesByLabel(t, fig, "hash-based"))
	}
	if !(gap(figs[2]) > gap(figs[0])) {
		t.Errorf("gap at parallelism 6 (%.2f) not larger than at 2 (%.2f)",
			gap(figs[2]), gap(figs[0]))
	}
}

func TestFigure10MovingCorrelation(t *testing.T) {
	fig, err := Figure10(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("%d states, want 3", len(fig.Series))
	}
	// Each state's series must peak on (or next to — the series is
	// sampled, hence noisy) its own burst day.
	peaks := map[string]float64{"Florida": 3, "Virginia": 9, "Texas": 11}
	for _, s := range fig.Series {
		best, bestY := 0.0, -1.0
		for _, p := range s.Sorted() {
			if p.Y > bestY {
				best, bestY = p.X, p.Y
			}
		}
		if diff := best - peaks[s.Label]; diff < -1 || diff > 1 {
			t.Errorf("%s peaks on day %.0f, want %.0f±1", s.Label, best, peaks[s.Label])
		}
	}
}

func TestFigure11Shapes(t *testing.T) {
	figs, err := Figure11(testScale)
	if err != nil {
		t.Fatal(err)
	}
	loc, bal := figs[0], figs[1]

	hash := seriesByLabel(t, loc, "hash-based")
	online := seriesByLabel(t, loc, "online")
	offline := seriesByLabel(t, loc, "offline")

	// Hash locality ~ 1/6.
	if m := meanY(hash, 0); m < 0.10 || m > 0.25 {
		t.Errorf("hash locality mean = %.3f, want ~0.167", m)
	}
	// After warm-up, online must clearly beat hash and (on average) beat
	// offline as drift accumulates.
	if meanY(online, 2) < 2*meanY(hash, 2) {
		t.Errorf("online locality %.3f not >> hash %.3f", meanY(online, 2), meanY(hash, 2))
	}
	if meanY(online, 10) <= meanY(offline, 10) {
		t.Errorf("online %.3f <= offline %.3f in later weeks",
			meanY(online, 10), meanY(offline, 10))
	}

	// Load balance: every series stays >= 1; offline drifts above online
	// on average in later weeks.
	for _, s := range bal.Series {
		for _, p := range s.Sorted() {
			if p.Y < 1.0-1e-9 {
				t.Errorf("imbalance %.3f < 1 in series %s", p.Y, s.Label)
			}
		}
	}
	onBal := seriesByLabel(t, bal, "online")
	offBal := seriesByLabel(t, bal, "offline")
	if meanY(offBal, 10) < meanY(onBal, 10) {
		t.Errorf("offline imbalance %.3f < online %.3f in later weeks",
			meanY(offBal, 10), meanY(onBal, 10))
	}
}

func TestFigure12MoreEdgesMoreLocality(t *testing.T) {
	fig, err := Figure12(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("%d parallelism series, want 5", len(fig.Series))
	}
	for _, s := range fig.Series {
		pts := s.Sorted()
		first, last := pts[0].Y, pts[len(pts)-1].Y
		if last <= first {
			t.Errorf("parallelism %s: locality with all edges (%.3f) not above tiny budget (%.3f)",
				s.Label, last, first)
		}
	}
}

func TestFigure13ReconfigurationStepsUp(t *testing.T) {
	figs, err := Figure13(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 {
		t.Fatalf("%d panels, want 6", len(figs))
	}
	for _, fig := range figs {
		with := seriesByLabel(t, fig, "w/ reconfiguration")
		without := seriesByLabel(t, fig, "w/o reconfiguration")
		// Before the first reconfiguration the two configurations are
		// statistically identical; afterwards reconfiguration must win.
		pre := meanY(with, 1) // placeholder; compute over minutes 1-10 below
		_ = pre
		preW := rangeMean(with, 1, 10)
		preWo := rangeMean(without, 1, 10)
		if preW > preWo*1.2 || preW < preWo*0.8 {
			t.Errorf("%s: pre-reconfig throughputs differ: %.0f vs %.0f", fig.ID, preW, preWo)
		}
		postW := rangeMean(with, 11, 30)
		postWo := rangeMean(without, 11, 30)
		if postW <= postWo {
			t.Errorf("%s: post-reconfig %.0f <= baseline %.0f", fig.ID, postW, postWo)
		}
	}
}

func rangeMean(s metrics.Series, fromX, toX float64) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Sorted() {
		if p.X >= fromX && p.X <= toX {
			sum += p.Y
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestFigure14GapGrowsWithParallelism(t *testing.T) {
	fig, err := Figure14(testScale)
	if err != nil {
		t.Fatal(err)
	}
	with := seriesByLabel(t, fig, "w/ reconfiguration").Sorted()
	without := seriesByLabel(t, fig, "w/o reconfiguration").Sorted()
	if len(with) != 5 || len(without) != 5 {
		t.Fatalf("points: %d/%d, want 5 each", len(with), len(without))
	}
	firstGap := with[0].Y - without[0].Y
	lastGap := with[4].Y - without[4].Y
	if lastGap <= firstGap {
		t.Errorf("gap does not grow with parallelism: %.0f .. %.0f", firstGap, lastGap)
	}
	for i := range with {
		if with[i].Y <= without[i].Y {
			t.Errorf("parallelism %.0f: with %.0f <= without %.0f",
				with[i].X, with[i].Y, without[i].Y)
		}
	}
}

func TestRenderFigure(t *testing.T) {
	fig := Figure{
		ID: "test", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []metrics.Series{
			{Label: "s1", Points: []metrics.Point{{X: 1, Y: 10}, {X: 2, Y: 20}}},
			{Label: "s2", Points: []metrics.Point{{X: 2, Y: 200}}},
		},
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== test: demo ==", "s1", "s2", "10", "200", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureByID(t *testing.T) {
	figs, err := FigureByID("fig10", testScale)
	if err != nil || len(figs) != 1 {
		t.Fatalf("fig10: %v %d", err, len(figs))
	}
	if _, err := FigureByID("nope", testScale); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestScaleTuples(t *testing.T) {
	if got := Scale(0.5).tuples(1000, 10); got != 500 {
		t.Fatalf("tuples = %d", got)
	}
	if got := Scale(0.0001).tuples(1000, 10); got != 10 {
		t.Fatalf("min not applied: %d", got)
	}
}
