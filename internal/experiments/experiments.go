// Package experiments regenerates every figure of the evaluation section
// of Caneill et al. (Middleware'16). Each FigureN function returns the
// series the corresponding paper figure plots; cmd/benchpaper renders
// them as text and bench_test.go wraps them as benchmarks.
//
// Absolute throughput values come from the calibrated cost model in
// internal/simnet, not from the authors' HPE testbed; the comparisons
// (who wins, by what factor, where the curves bend) are the reproduced
// result. EXPERIMENTS.md records measured-vs-paper values.
package experiments

import (
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/core"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/metrics"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/simnet"
	"github.com/locastream/locastream/internal/topology"
)

// Figure is one reproduced plot: labelled series over a shared x-axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []metrics.Series
}

// Render writes the figure as an aligned text table, one row per x value
// and one column per series.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(tw, "\t%s", s.Label)
	}
	fmt.Fprintln(tw)

	// Collect the union of x values in order.
	seen := make(map[float64]bool)
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Sorted() {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sortFloats(xs)
	for _, x := range xs {
		fmt.Fprintf(tw, "%s", trimFloat(x))
		for _, s := range f.Series {
			y, ok := valueAt(s, x)
			if ok {
				fmt.Fprintf(tw, "\t%s", trimFloat(y))
			} else {
				fmt.Fprintf(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func valueAt(s metrics.Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Scale globally shrinks or grows experiment sizes: 1.0 is the default
// used by cmd/benchpaper; tests and quick benchmarks use smaller values.
type Scale float64

// tuples scales a tuple budget, keeping at least min.
func (s Scale) tuples(base, min int) int {
	n := int(float64(base) * float64(s))
	if n < min {
		return min
	}
	return n
}

// evalApp builds the paper's evaluation application (§4.1): source →
// A (counts field 0) → B (counts field 1), both stateful, fields-grouped,
// with parallelism instances on as many servers.
func evalApp(parallelism int) (*topology.Topology, *cluster.Placement, error) {
	topo, err := topology.NewBuilder("eval").
		AddOperator(topology.Operator{
			Name: "A", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(0) },
		}).
		AddOperator(topology.Operator{
			Name: "B", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(1) },
		}).
		Connect("A", "B", topology.Fields, 1).
		Build()
	if err != nil {
		return nil, nil, err
	}
	place, err := cluster.NewRoundRobin(topo, parallelism)
	if err != nil {
		return nil, nil, err
	}
	return topo, place, nil
}

// newEvalSim builds a simulator for the evaluation application.
func newEvalSim(parallelism int, mode engine.FieldsMode, model simnet.Model, sketchCap int) (*engine.Sim, error) {
	topo, place, err := evalApp(parallelism)
	if err != nil {
		return nil, err
	}
	policies, err := engine.NewPolicies(topo, place, mode)
	if err != nil {
		return nil, err
	}
	src, err := engine.NewSourcePolicy(topo, place, topology.Fields, mode)
	if err != nil {
		return nil, err
	}
	return engine.NewSim(engine.SimConfig{
		Topology:       topo,
		Placement:      place,
		Model:          model,
		Policies:       policies,
		SourcePolicy:   src,
		SourceKeyField: 0,
		SketchCapacity: sketchCap,
	})
}

// newEvalOptimizer builds an optimizer for the evaluation application.
func newEvalOptimizer(parallelism int, opts core.OptimizerOptions) (*core.Optimizer, *cluster.Placement, error) {
	topo, place, err := evalApp(parallelism)
	if err != nil {
		return nil, nil, err
	}
	opt, err := core.NewOptimizer(topo, place, opts)
	if err != nil {
		return nil, nil, err
	}
	return opt, place, nil
}

// identityRoutingTables converts the synthetic identity mapping into
// routing tables for ops A and B.
func identityRoutingTables(n int) map[string]*routing.Table {
	assign := make(map[string]int, n)
	for i := 0; i < n; i++ {
		assign[strconv.Itoa(i)] = i
	}
	return map[string]*routing.Table{
		"A": {Version: 1, Assign: assign},
		"B": {Version: 1, Assign: assign},
	}
}

// serverLoads sums per-instance loads of both operators per server for
// the evaluation app (instance i of each op lives on server i).
func serverLoads(sim *engine.Sim, parallelism int) []uint64 {
	loads := make([]uint64, parallelism)
	for _, op := range []string{"A", "B"} {
		for i, l := range sim.Loads(op) {
			loads[i] += l
		}
	}
	return loads
}
