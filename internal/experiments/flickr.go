package experiments

import (
	"fmt"

	"github.com/locastream/locastream/internal/core"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/metrics"
	"github.com/locastream/locastream/internal/simnet"
	"github.com/locastream/locastream/internal/workload"
)

// flickrRun executes the §4.4 protocol-validation experiment: 30
// one-minute windows, optionally reconfiguring after windows 10 and 20,
// returning the throughput (Ktuples/s) of every window.
func flickrRun(parallelism, padding int, model simnet.Model, windowTuples int, reconfigure bool) ([]float64, error) {
	mode := engine.FieldsHash
	sketch := 0
	if reconfigure {
		mode = engine.FieldsTable
		sketch = twitterSketchCapacity
	}
	sim, err := newEvalSim(parallelism, mode, model, sketch)
	if err != nil {
		return nil, err
	}
	opt, _, err := newEvalOptimizer(parallelism, core.OptimizerOptions{Seed: 13, MaxEdges: 1 << 20})
	if err != nil {
		return nil, err
	}
	cfg := workload.DefaultFlickrConfig()
	cfg.Padding = padding
	gen := workload.NewFlickr(cfg)

	const windows = 30
	out := make([]float64, 0, windows)
	for w := 0; w < windows; w++ {
		sim.ResetWindow()
		sim.InjectAll(workload.Take(gen, windowTuples))
		out = append(out, sim.ThroughputPerSec()/1000)
		if reconfigure && (w+1)%10 == 0 && w+1 < windows {
			tables, _, err := opt.ComputeTables(sim.PairStats(true))
			if err != nil {
				return nil, err
			}
			sim.ApplyTables(tables)
		}
	}
	return out, nil
}

// Figure13 reproduces "Evolution of the throughput with or without
// reconfiguration, for a parallelism of 6, different padding sizes and
// two types of network bandwidth": panels over {10 Gb/s, 1 Gb/s} ×
// {4 kB, 8 kB, 12 kB}, 30 minutes, reconfiguration every 10 minutes.
func Figure13(scale Scale) ([]Figure, error) {
	const parallelism = 6
	windowTuples := scale.tuples(15000, 800)
	networks := []struct {
		name  string
		model simnet.Model
	}{
		{name: "10Gb/s", model: simnet.Default10G()},
		{name: "1Gb/s", model: simnet.Default1G()},
	}

	var figs []Figure
	panel := 'a'
	for _, net := range networks {
		for _, padding := range []int{4096, 8192, 12288} {
			fig := Figure{
				ID:     fmt.Sprintf("fig13%c", panel),
				Title:  fmt.Sprintf("throughput over time (network=%s, padding=%d)", net.name, padding),
				XLabel: "minute",
				YLabel: "Ktuples/s",
			}
			for _, reconf := range []bool{true, false} {
				label := "w/o reconfiguration"
				if reconf {
					label = "w/ reconfiguration"
				}
				tps, err := flickrRun(parallelism, padding, net.model, windowTuples, reconf)
				if err != nil {
					return nil, err
				}
				s := metrics.Series{Label: label}
				for minute, tp := range tps {
					s.Append(float64(minute+1), tp)
				}
				fig.Series = append(fig.Series, s)
			}
			figs = append(figs, fig)
			panel++
		}
	}
	return figs, nil
}

// Figure14 reproduces "Average throughput for different parallelisms, and
// a padding of 4kB (on the 1Gb/s network). With reconfiguration, the
// average is measured after the first reconfiguration."
func Figure14(scale Scale) (Figure, error) {
	windowTuples := scale.tuples(15000, 800)
	fig := Figure{
		ID:     "fig14",
		Title:  "average throughput vs parallelism (padding=4kB, 1Gb/s)",
		XLabel: "parallelism",
		YLabel: "Ktuples/s",
	}
	with := metrics.Series{Label: "w/ reconfiguration"}
	without := metrics.Series{Label: "w/o reconfiguration"}
	for parallelism := 2; parallelism <= 6; parallelism++ {
		tps, err := flickrRun(parallelism, 4096, simnet.Default1G(), windowTuples, true)
		if err != nil {
			return Figure{}, err
		}
		with.Append(float64(parallelism), mean(tps[10:]))

		tps, err = flickrRun(parallelism, 4096, simnet.Default1G(), windowTuples, false)
		if err != nil {
			return Figure{}, err
		}
		without.Append(float64(parallelism), mean(tps))
	}
	fig.Series = append(fig.Series, with, without)
	return fig, nil
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}
