package simnet

import (
	"math"
	"strings"
	"testing"
)

func TestModelDefaults(t *testing.T) {
	m10 := Default10G()
	m1 := Default1G()
	if m1.BandwidthBytesPerSec*10 != m10.BandwidthBytesPerSec {
		t.Fatalf("1G bandwidth %f should be a tenth of 10G %f",
			m1.BandwidthBytesPerSec, m10.BandwidthBytesPerSec)
	}
	if m10.CPUPerTupleNs <= 0 || m10.RemoteFixedNs <= 0 {
		t.Fatal("default model has non-positive costs")
	}
}

func TestNICNsPerByte(t *testing.T) {
	m := Model{BandwidthBytesPerSec: 1e9}
	if got := m.NICNsPerByte(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("NICNsPerByte = %f, want 1", got)
	}
	var zero Model
	if zero.NICNsPerByte() != 0 {
		t.Fatal("zero bandwidth should report 0 ns/byte")
	}
}

func TestUsageAccounting(t *testing.T) {
	u := NewUsage(2)
	a := POI{Op: "A", Instance: 0}
	b := POI{Op: "B", Instance: 1}
	u.AddCPU(a, 100)
	u.AddCPU(a, 50)
	u.AddCPU(b, 60)
	u.AddNICOut(0, 40)
	u.AddNICIn(1, 30)

	if got := u.CPU(a); got != 150 {
		t.Fatalf("CPU(a) = %f", got)
	}
	busy, label := u.MaxBusyNs()
	if busy != 150 || label != "cpu:A[0]" {
		t.Fatalf("MaxBusyNs = %f %q", busy, label)
	}
}

func TestUsageNICBottleneck(t *testing.T) {
	u := NewUsage(2)
	u.AddCPU(POI{Op: "A", Instance: 0}, 10)
	u.AddNICOut(1, 500)
	_, label := u.MaxBusyNs()
	if !strings.HasPrefix(label, "nic-out:") {
		t.Fatalf("bottleneck label = %q, want nic-out", label)
	}
	u.AddNICIn(0, 900)
	_, label = u.MaxBusyNs()
	if !strings.HasPrefix(label, "nic-in:") {
		t.Fatalf("bottleneck label = %q, want nic-in", label)
	}
}

func TestUsageIgnoresInvalidServer(t *testing.T) {
	u := NewUsage(1)
	u.AddNICOut(-1, 100)
	u.AddNICOut(5, 100)
	u.AddNICIn(-1, 100)
	u.AddNICIn(5, 100)
	if busy, _ := u.MaxBusyNs(); busy != 0 {
		t.Fatalf("invalid server charges were recorded: %f", busy)
	}
}

func TestThroughputPerSec(t *testing.T) {
	u := NewUsage(1)
	if u.ThroughputPerSec(100) != 0 {
		t.Fatal("idle ledger should report 0 throughput")
	}
	u.AddCPU(POI{Op: "A", Instance: 0}, 1e9) // one second busy
	if got := u.ThroughputPerSec(100); math.Abs(got-100) > 1e-9 {
		t.Fatalf("ThroughputPerSec = %f, want 100", got)
	}
}

func TestUsageReset(t *testing.T) {
	u := NewUsage(2)
	u.AddCPU(POI{Op: "A", Instance: 0}, 10)
	u.AddNICOut(0, 10)
	u.AddNICIn(1, 10)
	u.Reset()
	if busy, label := u.MaxBusyNs(); busy != 0 || label != "idle" {
		t.Fatalf("after reset: %f %q", busy, label)
	}
}

func TestPOIString(t *testing.T) {
	if got := (POI{Op: "B", Instance: 2}).String(); got != "B[2]" {
		t.Fatalf("String() = %q", got)
	}
}
