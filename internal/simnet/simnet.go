// Package simnet is the calibrated cost model that substitutes for the
// paper's physical testbed (8 HPE ProLiant servers on a 10 Gb/s — or
// throttled 1 Gb/s — network). It models the three costs that shape the
// paper's throughput results:
//
//   - per-tuple CPU service time at every operator instance,
//   - cheap in-memory handoff between co-located instances ("only an
//     address in memory is transmitted from a thread to another", §2.2),
//   - expensive remote transfer: serialization/deserialization CPU on
//     both ends plus NIC transmission time proportional to tuple size.
//
// A Usage ledger accumulates busy time per resource (each POI's CPU
// thread, each server's NIC in either direction). Under saturation — the
// paper's benchmarks run the source as fast as possible — steady-state
// throughput is the tuple count divided by the busiest resource's total
// service demand, which reproduces the network-bottleneck behaviour the
// paper measures without requiring wall-clock-scale runs.
package simnet

import "fmt"

// Model holds the calibrated cost constants. All CPU costs are in
// nanoseconds; bandwidth in bytes per second.
type Model struct {
	// CPUPerTupleNs is the base processing cost of one tuple at one
	// operator instance.
	CPUPerTupleNs float64
	// LocalHandoffNs is the sender-side cost of passing a tuple to a
	// co-located instance (a pointer enqueue).
	LocalHandoffNs float64
	// RemoteFixedNs is the fixed per-message CPU overhead of a remote
	// send (framing, syscalls), charged on both sender and receiver.
	RemoteFixedNs float64
	// SerializeNsPerByte is the sender CPU cost per payload byte.
	SerializeNsPerByte float64
	// DeserializeNsPerByte is the receiver CPU cost per payload byte.
	DeserializeNsPerByte float64
	// BandwidthBytesPerSec is the full-duplex NIC bandwidth of every
	// server.
	BandwidthBytesPerSec float64
	// InterRackFactor multiplies NIC transmission time for transfers
	// crossing racks (hierarchical network extension). Values <= 1 mean
	// a flat network.
	InterRackFactor float64
	// InterClusterFactor multiplies NIC transmission time for transfers
	// crossing clusters (the metered cross-region link; the federation
	// layer assumes ~100× a rack hop). Values <= 1 fall back to
	// InterRackFactor.
	InterClusterFactor float64
}

// Default10G returns the model calibrated for the paper's 10 Gb/s
// testbed. The constants were chosen so that single-server throughput and
// the hash/locality-aware gap match the order of magnitude of Fig. 7.
func Default10G() Model {
	return Model{
		CPUPerTupleNs:        9000, // ~111 Ktuples/s per instance
		LocalHandoffNs:       300,
		RemoteFixedNs:        3000,
		SerializeNsPerByte:   1.0,
		DeserializeNsPerByte: 1.0,
		BandwidthBytesPerSec: 1.25e9, // 10 Gb/s
	}
}

// Default1G returns the model for the throttled 1 Gb/s configuration of
// §4.4.
func Default1G() Model {
	m := Default10G()
	m.BandwidthBytesPerSec = 1.25e8 // 1 Gb/s
	return m
}

// NICNsPerByte converts the bandwidth to a per-byte transmission time.
func (m Model) NICNsPerByte() float64 {
	if m.BandwidthBytesPerSec <= 0 {
		return 0
	}
	return 1e9 / m.BandwidthBytesPerSec
}

// InterRackNsPerByte is the per-byte time of transfers crossing racks.
func (m Model) InterRackNsPerByte() float64 {
	f := m.InterRackFactor
	if f < 1 {
		f = 1
	}
	return m.NICNsPerByte() * f
}

// InterClusterNsPerByte is the per-byte time of transfers crossing
// clusters; never cheaper than a cross-rack transfer.
func (m Model) InterClusterNsPerByte() float64 {
	f := m.InterClusterFactor
	if f < 1 {
		return m.InterRackNsPerByte()
	}
	ns := m.NICNsPerByte() * f
	if ir := m.InterRackNsPerByte(); ns < ir {
		return ir
	}
	return ns
}

// POI identifies one operator instance's CPU resource.
type POI struct {
	Op       string
	Instance int
}

// String returns e.g. "B[2]".
func (p POI) String() string { return fmt.Sprintf("%s[%d]", p.Op, p.Instance) }

// Usage accumulates busy nanoseconds per resource. The zero value is not
// usable; call NewUsage.
type Usage struct {
	servers  int
	cpuNs    map[POI]float64
	nicOutNs []float64
	nicInNs  []float64
}

// NewUsage returns a ledger for a cluster of the given size.
func NewUsage(servers int) *Usage {
	return &Usage{
		servers:  servers,
		cpuNs:    make(map[POI]float64),
		nicOutNs: make([]float64, servers),
		nicInNs:  make([]float64, servers),
	}
}

// AddCPU charges ns of CPU to one instance.
func (u *Usage) AddCPU(p POI, ns float64) { u.cpuNs[p] += ns }

// AddNICOut charges ns of egress NIC time to a server.
func (u *Usage) AddNICOut(server int, ns float64) {
	if server >= 0 && server < u.servers {
		u.nicOutNs[server] += ns
	}
}

// AddNICIn charges ns of ingress NIC time to a server.
func (u *Usage) AddNICIn(server int, ns float64) {
	if server >= 0 && server < u.servers {
		u.nicInNs[server] += ns
	}
}

// CPU returns the busy time of one instance.
func (u *Usage) CPU(p POI) float64 { return u.cpuNs[p] }

// MaxBusyNs returns the busy time of the bottleneck resource and a label
// describing it. An idle ledger reports (0, "idle").
func (u *Usage) MaxBusyNs() (float64, string) {
	best, label := 0.0, "idle"
	for p, ns := range u.cpuNs {
		if ns > best {
			best, label = ns, "cpu:"+p.String()
		}
	}
	for s, ns := range u.nicOutNs {
		if ns > best {
			best, label = ns, fmt.Sprintf("nic-out:%d", s)
		}
	}
	for s, ns := range u.nicInNs {
		if ns > best {
			best, label = ns, fmt.Sprintf("nic-in:%d", s)
		}
	}
	return best, label
}

// ThroughputPerSec converts the ledger into a saturation throughput for
// the given number of tuples (0 when nothing was charged).
func (u *Usage) ThroughputPerSec(tuples uint64) float64 {
	busy, _ := u.MaxBusyNs()
	if busy <= 0 {
		return 0
	}
	return float64(tuples) / busy * 1e9
}

// Reset clears all accumulated busy time.
func (u *Usage) Reset() {
	u.cpuNs = make(map[POI]float64)
	for i := range u.nicOutNs {
		u.nicOutNs[i] = 0
	}
	for i := range u.nicInNs {
		u.nicInNs[i] = 0
	}
}
