package scale

import "testing"

func TestScalerValidationAndDefaults(t *testing.T) {
	if _, err := NewScaler(Options{Min: 1, Max: 4}); err == nil {
		t.Error("zero target load accepted")
	}
	if _, err := NewScaler(Options{Min: 4, Max: 2, TargetLoad: 100}); err == nil {
		t.Error("max below min accepted")
	}
	s, err := NewScaler(Options{Max: 4, TargetLoad: 100})
	if err != nil {
		t.Fatal(err)
	}
	o := s.Options()
	if o.Min != 1 || o.Confirm != 2 || o.Cooldown != 1 {
		t.Fatalf("defaults = %+v, want Min 1 Confirm 2 Cooldown 1", o)
	}
	// Negative cooldown means "no cooldown", not the default.
	s, err = NewScaler(Options{Max: 4, TargetLoad: 100, Cooldown: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Options().Cooldown; got != 0 {
		t.Fatalf("negative cooldown = %d, want 0", got)
	}
}

func TestScalerDesiredClamps(t *testing.T) {
	s, err := NewScaler(Options{Min: 2, Max: 6, TargetLoad: 100})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		traffic uint64
		want    int
	}{
		{0, 2},     // clamped up to Min
		{100, 2},   // exactly one server's worth, still Min
		{201, 3},   // ceil
		{250, 3},   // ceil
		{600, 6},   // exactly Max
		{10000, 6}, // clamped down to Max
	}
	for _, c := range cases {
		if got := s.Desired(c.traffic); got != c.want {
			t.Errorf("Desired(%d) = %d, want %d", c.traffic, got, c.want)
		}
	}
}

// TestScalerConfirmThenFire: a sustained overload fires only after
// Confirm consecutive windows agree, and the fire arms the cooldown.
func TestScalerConfirmThenFire(t *testing.T) {
	s, err := NewScaler(Options{Min: 1, Max: 8, TargetLoad: 100, Confirm: 2, Cooldown: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, fired := s.Observe(900, 4); fired {
		t.Fatal("fired after one window, want confirmation first")
	}
	if got := s.Streak(); got != 1 {
		t.Fatalf("streak = %d, want 1", got)
	}
	target, fired := s.Observe(900, 4)
	if !fired || target != 8 {
		t.Fatalf("second window = (%d, %v), want fire at 8", target, fired)
	}
	if s.CooldownLeft() != 1 || s.Streak() != 0 {
		t.Fatalf("after fire: cooldown %d streak %d, want 1 and 0", s.CooldownLeft(), s.Streak())
	}
	// The cooldown window is consumed without a decision.
	if _, fired := s.Observe(900, 8); fired {
		t.Fatal("fired inside cooldown")
	}
	// Width matches demand now: streaks stay flat.
	if _, fired := s.Observe(750, 8); fired {
		t.Fatal("fired at matched width")
	}
	if s.Streak() != 0 {
		t.Fatalf("streak = %d at matched width, want 0", s.Streak())
	}
}

// TestScalerTransientSpikeSuppressed: one bursty window between calm
// ones never fires — the equal-width window resets the streak.
func TestScalerTransientSpikeSuppressed(t *testing.T) {
	s, err := NewScaler(Options{Min: 1, Max: 8, TargetLoad: 100, Confirm: 2, Cooldown: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, fired := s.Observe(900, 4); fired {
			t.Fatalf("round %d: spike fired", i)
		}
		if _, fired := s.Observe(400, 4); fired {
			t.Fatalf("round %d: calm window fired", i)
		}
		if s.Streak() != 0 {
			t.Fatalf("round %d: streak %d after calm window, want 0", i, s.Streak())
		}
	}
}

// TestScalerDirectionFlipResetsStreak: an up-window followed by
// down-windows restarts confirmation in the new direction.
func TestScalerDirectionFlipResetsStreak(t *testing.T) {
	s, err := NewScaler(Options{Min: 1, Max: 8, TargetLoad: 100, Confirm: 2, Cooldown: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(900, 4)
	if s.Streak() != 1 {
		t.Fatalf("streak = %d, want +1", s.Streak())
	}
	if _, fired := s.Observe(100, 4); fired {
		t.Fatal("flip window fired")
	}
	if s.Streak() != -1 {
		t.Fatalf("streak = %d after flip, want -1", s.Streak())
	}
	target, fired := s.Observe(100, 4)
	if !fired || target != 1 {
		t.Fatalf("confirmed shrink = (%d, %v), want fire at 1", target, fired)
	}
}

// TestScalerBackToBackDecisionsInsideCooldown: a demand reversal right
// after a decision waits out the cooldown before the next decision can
// even start confirming.
func TestScalerBackToBackDecisionsInsideCooldown(t *testing.T) {
	s, err := NewScaler(Options{Min: 1, Max: 8, TargetLoad: 100, Confirm: 1, Cooldown: 2})
	if err != nil {
		t.Fatal(err)
	}
	target, fired := s.Observe(900, 4)
	if !fired || target != 8 {
		t.Fatalf("first decision = (%d, %v), want fire at 8", target, fired)
	}
	// Demand collapses immediately; both cooldown windows suppress.
	for i := 0; i < 2; i++ {
		if _, fired := s.Observe(50, 8); fired {
			t.Fatalf("cooldown window %d fired", i)
		}
	}
	if s.CooldownLeft() != 0 {
		t.Fatalf("cooldown left = %d, want 0", s.CooldownLeft())
	}
	target, fired = s.Observe(50, 8)
	if !fired || target != 1 {
		t.Fatalf("post-cooldown decision = (%d, %v), want fire at 1", target, fired)
	}
}

// TestScalerNoteScaled: an externally-driven scale (App.ScaleTo)
// restarts hysteresis exactly like an internal decision.
func TestScalerNoteScaled(t *testing.T) {
	s, err := NewScaler(Options{Min: 1, Max: 8, TargetLoad: 100, Confirm: 3, Cooldown: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(900, 4)
	s.Observe(900, 4)
	if s.Streak() != 2 {
		t.Fatalf("streak = %d, want 2", s.Streak())
	}
	s.NoteScaled()
	if s.Streak() != 0 || s.CooldownLeft() != 2 {
		t.Fatalf("after NoteScaled: streak %d cooldown %d, want 0 and 2", s.Streak(), s.CooldownLeft())
	}
	if _, fired := s.Observe(900, 4); fired {
		t.Fatal("fired inside externally-armed cooldown")
	}
}
