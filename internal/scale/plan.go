// Package scale is the elastic-scaling subsystem: a minimal-movement
// repartition planner (PlanRescale) that generalizes the failure-repair
// pin-survivors-move-few logic to arbitrary membership changes, and a
// Scaler that turns the controller's load signals into add/remove-server
// decisions under the same hysteresis idiom the optimizer and the
// hot-key splitter use.
package scale

import (
	"fmt"
	"sort"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/keygraph"
	"github.com/locastream/locastream/internal/partition"
	"github.com/locastream/locastream/internal/routing"
)

// DefaultAlpha is the default balance bound of the rescale partitioning
// — deliberately looser than the optimizer's 1.03: during a membership
// change, keeping correlated key pairs together and moving few keys
// outranks strict balance, and the next planned reconfiguration restores
// the tight bound anyway.
const DefaultAlpha = 1.5

// PlanInput is everything PlanRescale needs to compute a
// minimal-movement, locality-preserving repartition against a new
// server set.
type PlanInput struct {
	// Place is the static instance placement, built at full capacity.
	Place *cluster.Placement
	// From is the usable-server vector before the change (nil means
	// every server). Servers in From but not To are leaving; servers in
	// To but not From are joining.
	From []bool
	// To is the usable-server vector after the change.
	To []bool
	// Tables are the currently deployed routing tables (per operator).
	Tables map[string]*routing.Table
	// Stats is the key-pair statistics window the locality-preserving
	// placement is computed from.
	Stats []engine.PairStat
	// Splits lists the keys currently promoted to replicated (split)
	// routing. A split key never enters the partitioning: it is pinned
	// at its first replica whose server is in To — the same choice
	// engine.PruneSplitReplicas makes — and only a split key with no
	// replica in To falls through to the ordinary move path.
	Splits []engine.SplitKeyInfo
	// ExtraKeys names keys (per operator) that belong to the key
	// universe beyond tables, splits and statistics — the repair path
	// passes the checkpointed keys here.
	ExtraKeys map[string][]string
	// OwnerOf resolves the current owner instance of a key not found in
	// Tables (the hash-fallback path); engine.Live.OwnerOf implements
	// it.
	OwnerOf func(op, key string) (int, bool)
	// StatefulOps are the operators holding keyed state — the only ones
	// whose moves carry a state migration.
	StatefulOps []string
	// Alpha is the balance bound of the partitioning (0 selects
	// DefaultAlpha); Seed fixes tie-breaking.
	Alpha float64
	Seed  int64
	// MaxMoves caps the voluntary moves toward joining servers (the
	// disruption bound). Forced moves — keys whose server leaves — are
	// never capped: they must go somewhere. <= 0 means unbounded.
	MaxMoves int
}

// SplitReown records where a split (replicated) key was re-owned during
// the plan: pinned at NewOwner, with Gone listing replica instances
// whose server left the To set (their partials, if checkpointed, merge
// into the new owner — the repair path consumes this).
type SplitReown struct {
	Op, Key  string
	NewOwner int
	// Moved reports that the original owner (first replica) left, so
	// the table pin changed.
	Moved bool
	Gone  []int
}

// Plan is the computed repartition.
type Plan struct {
	// Leaving and Joining are the servers removed from / added to the
	// usable set, ascending.
	Leaving []int
	Joining []int
	// Tables merges the untouched assignments with the new homes of
	// every moved key.
	Tables map[string]*routing.Table
	// Moves carries the live state migrations (stateful operators
	// only): for each moved key the owning instance before and after.
	// Feed them to engine.Reconfigure via Manager.DeployRescale. The
	// repair path ignores Moves — dead instances cannot snapshot — and
	// restores from the checkpoint instead.
	Moves map[string][]engine.KeyMove
	// Assigned maps op -> key -> adopting instance for every ordinary
	// (non-split) moved key; the repair path derives buffer arming and
	// restore records from it.
	Assigned map[string]map[string]int
	// SplitReowns lists the split keys re-pinned during the plan,
	// sorted by (op, key).
	SplitReowns []SplitReown
	// MovedKeys counts reassigned keys across all operators (forced +
	// voluntary + moved split pins).
	MovedKeys int
	// Bound is the a-priori ceiling on MovedKeys for this step: forced
	// moves plus the voluntary cap.
	Bound int
}

// PlanRescale computes a minimal-movement repartition against the To
// server set. Keys on staying servers are pinned and the retained key
// graph is re-partitioned under that constraint, so keys forced off
// leaving servers land next to the keys they exchange tuples with —
// locality is preserved — while nothing else moves. When servers join,
// a bounded number of voluntary moves (heaviest keys first, chosen by
// overlap with a from-scratch partition) shift load onto them without
// exceeding MaxMoves. Remove-one-server with no joiners degenerates to
// exactly the failure-repair plan.
func PlanRescale(in PlanInput) (*Plan, error) {
	if in.Place == nil {
		return nil, fmt.Errorf("scale: rescale needs a placement")
	}
	n := in.Place.Servers()
	if len(in.To) != n {
		return nil, fmt.Errorf("scale: %d membership entries for %d servers", len(in.To), n)
	}
	if in.From != nil && len(in.From) != n {
		return nil, fmt.Errorf("scale: %d from-membership entries for %d servers", len(in.From), n)
	}
	var toList []int
	for s, ok := range in.To {
		if ok {
			toList = append(toList, s)
		}
	}
	if len(toList) == 0 {
		return nil, fmt.Errorf("scale: no servers in target set")
	}
	partOf := make(map[int]int, len(toList)) // server -> part index
	for i, s := range toList {
		partOf[s] = i
	}
	inFrom := func(s int) bool { return in.From == nil || in.From[s] }
	plan := &Plan{
		Tables:   make(map[string]*routing.Table),
		Moves:    make(map[string][]engine.KeyMove),
		Assigned: make(map[string]map[string]int),
	}
	for s := 0; s < n; s++ {
		switch {
		case inFrom(s) && !in.To[s]:
			plan.Leaving = append(plan.Leaving, s)
		case in.To[s] && !inFrom(s):
			plan.Joining = append(plan.Joining, s)
		}
	}
	stateful := make(map[string]bool, len(in.StatefulOps))
	for _, op := range in.StatefulOps {
		stateful[op] = true
	}

	// The key universe: everything named by a routing table, a split,
	// an extra (checkpointed) key, or the retained key graph. Keys
	// outside it have neither state nor an explicit assignment; after
	// the alive-mask routing update they hash-detour deterministically.
	keysOf := make(map[string]map[string]bool)
	note := func(op, key string) {
		if keysOf[op] == nil {
			keysOf[op] = make(map[string]bool)
		}
		keysOf[op][key] = true
	}
	for op, t := range in.Tables {
		for key := range t.Assign {
			note(op, key)
		}
	}
	for op, keys := range in.ExtraKeys {
		for _, key := range keys {
			note(op, key)
		}
	}

	// Split keys route by their replica set, not the table. One with a
	// replica in To is re-owned in place: the first such replica in
	// original order becomes the owner and the key is pinned there, out
	// of the partitioning. Only a split key that lost every replica
	// falls through to the ordinary move path below.
	reownOf := make(map[keygraph.VertexID]*SplitReown)
	for _, si := range in.Splits {
		note(si.Op, si.Key)
		ro := &SplitReown{Op: si.Op, Key: si.Key, NewOwner: -1}
		for _, inst := range si.Replicas {
			s := in.Place.ServerOf(si.Op, inst)
			if s >= 0 && in.To[s] {
				if ro.NewOwner == -1 {
					ro.NewOwner = inst
				}
			} else {
				ro.Gone = append(ro.Gone, inst)
			}
		}
		if ro.NewOwner == -1 {
			continue // every replica left: ordinary move
		}
		if len(si.Replicas) > 0 {
			ownerS := in.Place.ServerOf(si.Op, si.Replicas[0])
			ro.Moved = ownerS < 0 || !in.To[ownerS]
		}
		reownOf[keygraph.VertexID{Op: si.Op, Key: si.Key}] = ro
	}

	graph := keygraph.New()
	for _, st := range in.Stats {
		graph.AddPairs(st.FromOp, st.ToOp, st.Pairs, 0)
	}
	for _, v := range graph.Vertices() {
		note(v.ID.Op, v.ID.Key)
	}

	// Current owners, split into pinned stayers and forced moves.
	ownerInst := func(op, key string) (int, bool) {
		if t := in.Tables[op]; t != nil {
			if inst, ok := t.Assign[key]; ok {
				return inst, true
			}
		}
		if in.OwnerOf != nil {
			if inst, ok := in.OwnerOf(op, key); ok {
				return inst, true
			}
		}
		return 0, false
	}
	type moveKey struct {
		op, key  string
		fromInst int // owning instance before the move (-1 unknown)
	}
	var forced []moveKey
	pinnedServer := make(map[keygraph.VertexID]int) // stayers + reowned splits
	currentServer := make(map[keygraph.VertexID]int)
	currentInst := make(map[keygraph.VertexID]int)
	ops := make([]string, 0, len(keysOf))
	for op := range keysOf {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		keys := make([]string, 0, len(keysOf[op]))
		for key := range keysOf[op] {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			id := keygraph.VertexID{Op: op, Key: key}
			if ro, ok := reownOf[id]; ok {
				pinnedServer[id] = in.Place.ServerOf(op, ro.NewOwner)
				continue
			}
			inst, ok := ownerInst(op, key)
			if !ok {
				continue // unroutable (no fields-grouped input): nothing to move
			}
			server := in.Place.ServerOf(op, inst)
			if server < 0 {
				continue
			}
			if in.To[server] {
				pinnedServer[id] = server
				currentServer[id] = server
				currentInst[id] = inst
			} else {
				forced = append(forced, moveKey{op: op, key: key, fromInst: inst})
			}
		}
	}

	for op, t := range in.Tables {
		plan.Tables[op] = t.Clone()
	}

	// Re-pin the re-owned splits whose owner left (sorted for
	// determinism). No state move — the surviving replica's live
	// partial stays valid throughout; the repair path folds departed
	// partials in via SplitReowns.
	reownIDs := make([]keygraph.VertexID, 0, len(reownOf))
	for id := range reownOf {
		reownIDs = append(reownIDs, id)
	}
	sort.Slice(reownIDs, func(i, j int) bool {
		if reownIDs[i].Op != reownIDs[j].Op {
			return reownIDs[i].Op < reownIDs[j].Op
		}
		return reownIDs[i].Key < reownIDs[j].Key
	})
	forcedMoves := 0
	for _, id := range reownIDs {
		ro := reownOf[id]
		plan.SplitReowns = append(plan.SplitReowns, *ro)
		if !ro.Moved {
			continue
		}
		table := plan.Tables[id.Op]
		if table == nil {
			table = &routing.Table{Assign: make(map[string]int)}
			plan.Tables[id.Op] = table
		}
		table.Assign[id.Key] = ro.NewOwner
		plan.MovedKeys++
		forcedMoves++
	}

	alpha := in.Alpha
	if alpha <= 0 {
		alpha = DefaultAlpha
	}

	assign := func(op, key string, inst int, fromInst int) {
		table := plan.Tables[op]
		if table == nil {
			table = &routing.Table{Assign: make(map[string]int)}
			plan.Tables[op] = table
		}
		table.Assign[key] = inst
		plan.MovedKeys++
		if plan.Assigned[op] == nil {
			plan.Assigned[op] = make(map[string]int)
		}
		plan.Assigned[op][key] = inst
		if stateful[op] && fromInst >= 0 && fromInst != inst {
			plan.Moves[op] = append(plan.Moves[op], engine.KeyMove{Key: key, From: fromInst, To: inst})
		}
	}

	// Forced placement: re-partition the retained key graph over the To
	// set with every staying vertex pinned to its current server. Only
	// the forced keys are free, so the partitioner places each next to
	// its heaviest staying neighbours under the balance constraint —
	// and cannot move anything else. Forced keys absent from the graph
	// spread deterministically by hash over the To servers.
	var ids []keygraph.VertexID
	var weights []uint64
	var adj [][]partition.Adj
	if graph.NumVertices() > 0 {
		var adjRaw [][]keygraph.Adj
		ids, weights, adjRaw = graph.CSR()
		adj = make([][]partition.Adj, len(adjRaw))
		for i, list := range adjRaw {
			conv := make([]partition.Adj, len(list))
			for j, a := range list {
				conv[j] = partition.Adj{To: a.To, Weight: a.Weight}
			}
			adj[i] = conv
		}
	}
	if len(forced) > 0 {
		forcedServer := make(map[keygraph.VertexID]int, len(forced))
		if len(ids) > 0 {
			pinned := make([]int, len(ids))
			for i, id := range ids {
				if s, ok := pinnedServer[id]; ok {
					pinned[i] = partOf[s]
				} else {
					pinned[i] = -1
				}
			}
			res, err := partition.Partition(
				&partition.Graph{Weights: weights, Adj: adj},
				partition.Options{K: len(toList), Alpha: alpha, Seed: in.Seed, Pinned: pinned},
			)
			if err != nil {
				return nil, fmt.Errorf("scale: rescale partition: %w", err)
			}
			for i, id := range ids {
				if pinned[i] == -1 {
					forcedServer[id] = toList[res.Parts[i]]
				}
			}
		}
		for _, m := range forced {
			server, ok := forcedServer[keygraph.VertexID{Op: m.op, Key: m.key}]
			if !ok {
				// No statistics for this key: spread by hash over To.
				server = toList[routing.HashKey(m.key, len(toList))]
			}
			inst, ok := AdoptInstance(in.Place, m.op, m.key, server, toList)
			if !ok {
				return nil, fmt.Errorf("scale: no usable instance of %q", m.op)
			}
			assign(m.op, m.key, inst, m.fromInst)
			forcedMoves++
		}
	}

	// Voluntary phase: when servers join, compute the partition the
	// optimizer would build from scratch at the new width, match its
	// parts to servers by maximum overlap with the current ownership
	// (so staying servers keep their clusters), and move only the keys
	// the from-scratch plan hands to a JOINING server — heaviest first,
	// at most MaxMoves of them. That keeps disruption bounded while the
	// moved keys are the ones whose relocation buys the most balance.
	voluntaryCap := 0
	if len(plan.Joining) > 0 && len(ids) > 0 {
		res, err := partition.Partition(
			&partition.Graph{Weights: weights, Adj: adj},
			partition.Options{K: len(toList), Alpha: alpha, Seed: in.Seed},
		)
		if err != nil {
			return nil, fmt.Errorf("scale: fresh partition: %w", err)
		}
		target := matchPartsToServers(res.Parts, ids, weights, currentServer, partOf, len(toList))
		joining := make(map[int]bool, len(plan.Joining))
		for _, s := range plan.Joining {
			joining[s] = true
		}
		type candidate struct {
			id     keygraph.VertexID
			weight uint64
			server int
		}
		var cands []candidate
		for i, id := range ids {
			cur, ok := currentServer[id]
			if !ok {
				continue // forced, split or unroutable: not a voluntary move
			}
			want := toList[target[res.Parts[i]]]
			if !joining[want] || want == cur {
				continue
			}
			cands = append(cands, candidate{id: id, weight: weights[i], server: want})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].weight != cands[j].weight {
				return cands[i].weight > cands[j].weight
			}
			if cands[i].id.Op != cands[j].id.Op {
				return cands[i].id.Op < cands[j].id.Op
			}
			return cands[i].id.Key < cands[j].id.Key
		})
		voluntaryCap = len(cands)
		if in.MaxMoves > 0 && in.MaxMoves < voluntaryCap {
			voluntaryCap = in.MaxMoves
		}
		taken := 0
		for _, c := range cands {
			if taken >= voluntaryCap {
				break
			}
			inst, ok := AdoptInstance(in.Place, c.id.Op, c.id.Key, c.server, toList)
			if !ok || inst == currentInst[c.id] {
				continue
			}
			assign(c.id.Op, c.id.Key, inst, currentInst[c.id])
			taken++
		}
	}
	plan.Bound = forcedMoves + voluntaryCap
	return plan, nil
}

// matchPartsToServers greedily matches from-scratch partition parts to
// To-set part indices by maximum overlap weight with the current
// ownership, so an existing server keeps the part most like what it
// already holds and the leftover parts land on the joining servers.
// Returns part -> To-set index.
func matchPartsToServers(parts []int, ids []keygraph.VertexID, weights []uint64,
	currentServer map[keygraph.VertexID]int, partOf map[int]int, k int) []int {
	overlap := make([][]uint64, k)
	for p := range overlap {
		overlap[p] = make([]uint64, k)
	}
	for i, id := range ids {
		if s, ok := currentServer[id]; ok {
			overlap[parts[i]][partOf[s]] += weights[i]
		}
	}
	type pair struct {
		p, idx int
		w      uint64
	}
	var pairs []pair
	for p := 0; p < k; p++ {
		for idx := 0; idx < k; idx++ {
			if overlap[p][idx] > 0 {
				pairs = append(pairs, pair{p: p, idx: idx, w: overlap[p][idx]})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].w != pairs[j].w {
			return pairs[i].w > pairs[j].w
		}
		if pairs[i].p != pairs[j].p {
			return pairs[i].p < pairs[j].p
		}
		return pairs[i].idx < pairs[j].idx
	})
	target := make([]int, k)
	for p := range target {
		target[p] = -1
	}
	usedIdx := make([]bool, k)
	for _, pr := range pairs {
		if target[pr.p] != -1 || usedIdx[pr.idx] {
			continue
		}
		target[pr.p] = pr.idx
		usedIdx[pr.idx] = true
	}
	next := 0
	for p := 0; p < k; p++ {
		if target[p] != -1 {
			continue
		}
		for usedIdx[next] {
			next++
		}
		target[p] = next
		usedIdx[next] = true
	}
	return target
}

// AdoptInstance picks the instance of op on server that adopts key,
// spreading co-located instances by hash (mirroring the optimizer's
// instanceOn). When op has no instance on the chosen server the usable
// servers are scanned in deterministic order for one that hosts the
// operator.
func AdoptInstance(place *cluster.Placement, op, key string, server int, usable []int) (int, bool) {
	if insts := place.InstancesOn(op, server); len(insts) > 0 {
		return insts[routing.HashKey(key, len(insts))], true
	}
	start := 0
	for i, s := range usable {
		if s == server {
			start = i
			break
		}
	}
	for i := 1; i < len(usable); i++ {
		s := usable[(start+i)%len(usable)]
		if insts := place.InstancesOn(op, s); len(insts) > 0 {
			return insts[routing.HashKey(key, len(insts))], true
		}
	}
	return 0, false
}
