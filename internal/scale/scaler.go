package scale

import "fmt"

// Options tune the Scaler's decision policy.
type Options struct {
	// Min and Max bound the active server count.
	Min, Max int
	// TargetLoad is the fields-grouped transfers per statistics window
	// one active server is sized for. The desired width is
	// ceil(window traffic / TargetLoad), clamped to [Min, Max].
	TargetLoad uint64
	// Confirm is the number of consecutive windows the desired width
	// must differ from the active width (in the same direction) before
	// a decision fires (default 2) — one bursty window neither grows
	// nor shrinks the cluster.
	Confirm int
	// Cooldown is the number of windows skipped after each decision
	// (default 1, negative disables), giving migrations time to settle
	// before the next measurement is trusted.
	Cooldown int
	// MaxMoves caps the voluntary key moves per scale-up step (passed
	// through to PlanRescale; <= 0 unbounded).
	MaxMoves int
}

func (o *Options) defaults() error {
	if o.Min < 1 {
		o.Min = 1
	}
	if o.Max < o.Min {
		return fmt.Errorf("scale: max %d below min %d", o.Max, o.Min)
	}
	if o.TargetLoad == 0 {
		return fmt.Errorf("scale: zero target load")
	}
	if o.Confirm < 1 {
		o.Confirm = 2
	}
	if o.Cooldown == 0 {
		o.Cooldown = 1
	} else if o.Cooldown < 0 {
		o.Cooldown = 0
	}
	return nil
}

// Scaler is the pure decision half of elastic scaling: fed one load
// observation per statistics window, it applies threshold + confirmation
// + cooldown hysteresis (the controller/splitter idiom) and emits the
// width the cluster should move to. It holds no engine references — the
// control plane owns wiring decisions to an engine. Not safe for
// concurrent use; the controller serializes ticks.
type Scaler struct {
	opts         Options
	upStreak     int
	downStreak   int
	cooldownLeft int
}

// NewScaler validates opts and returns a Scaler.
func NewScaler(opts Options) (*Scaler, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	return &Scaler{opts: opts}, nil
}

// Options returns the effective (defaulted) options.
func (s *Scaler) Options() Options { return s.opts }

// Desired returns the width the observed window traffic calls for,
// before hysteresis.
func (s *Scaler) Desired(windowTraffic uint64) int {
	want := int((windowTraffic + s.opts.TargetLoad - 1) / s.opts.TargetLoad)
	if want < s.opts.Min {
		want = s.opts.Min
	}
	if want > s.opts.Max {
		want = s.opts.Max
	}
	return want
}

// Observe feeds one statistics window. It returns (target, true) when a
// scale decision fires this window, (0, false) otherwise. After a
// decision the cooldown suppresses further decisions for Cooldown
// windows and both confirmation streaks restart.
func (s *Scaler) Observe(windowTraffic uint64, active int) (int, bool) {
	if s.cooldownLeft > 0 {
		s.cooldownLeft--
		return 0, false
	}
	want := s.Desired(windowTraffic)
	switch {
	case want > active:
		s.upStreak++
		s.downStreak = 0
	case want < active:
		s.downStreak++
		s.upStreak = 0
	default:
		s.upStreak, s.downStreak = 0, 0
		return 0, false
	}
	if s.upStreak >= s.opts.Confirm || s.downStreak >= s.opts.Confirm {
		s.noteScaled()
		return want, true
	}
	return 0, false
}

// noteScaled resets the hysteresis after a scale operation (whether
// decided here or forced externally via App.ScaleTo).
func (s *Scaler) noteScaled() {
	s.upStreak, s.downStreak = 0, 0
	s.cooldownLeft = s.opts.Cooldown
}

// NoteScaled informs the scaler of an externally-driven scale operation
// so its cooldown and streaks restart.
func (s *Scaler) NoteScaled() { s.noteScaled() }

// CooldownLeft returns the remaining cooldown windows.
func (s *Scaler) CooldownLeft() int { return s.cooldownLeft }

// Streak returns the current confirmation streak: positive counts
// consecutive windows wanting growth, negative wanting shrink.
func (s *Scaler) Streak() int {
	if s.downStreak > 0 {
		return -s.downStreak
	}
	return s.upStreak
}
