package scale

import (
	"fmt"
	"testing"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/spacesaving"
	"github.com/locastream/locastream/internal/topology"
)

// planPlace builds a 2-operator placement with one instance of each
// operator per server (instance i lands on server i under round-robin).
func planPlace(t testing.TB, servers int) *cluster.Placement {
	t.Helper()
	topo, err := topology.NewBuilder("rescale").
		AddOperator(topology.Operator{Name: "A", Parallelism: servers, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(0) }}).
		AddOperator(topology.Operator{Name: "B", Parallelism: servers, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(1) }}).
		Connect("A", "B", topology.Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	place, err := cluster.NewRoundRobin(topo, servers)
	if err != nil {
		t.Fatal(err)
	}
	return place
}

// mask builds a usable-server vector with only the listed servers set.
func mask(servers int, on ...int) []bool {
	m := make([]bool, servers)
	for _, s := range on {
		m[s] = true
	}
	return m
}

// TestPlanRescaleScaleDownForcedOnly covers a no-statistics scale-down:
// exactly the leaving server's keys move (table keys plus a
// checkpoint-only ghost resolved via OwnerOf), spread deterministically
// by hash over the remaining servers, with a state move per stateful
// key and the bound equal to the forced count.
func TestPlanRescaleScaleDownForcedOnly(t *testing.T) {
	const servers = 4
	place := planPlace(t, servers)
	tables := map[string]*routing.Table{
		"A": {Assign: map[string]int{}},
		"B": {Assign: map[string]int{}},
	}
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
	for i, k := range keys {
		tables["A"].Assign[k] = i % servers
		tables["B"].Assign[k] = i % servers
	}

	plan, err := PlanRescale(PlanInput{
		Place:     place,
		From:      mask(servers, 0, 1, 2, 3),
		To:        mask(servers, 0, 1, 2),
		Tables:    tables,
		ExtraKeys: map[string][]string{"A": {"ghost"}},
		OwnerOf: func(op, key string) (int, bool) {
			if key == "ghost" {
				return 3, true
			}
			return 0, false
		},
		StatefulOps: []string{"A", "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Leaving) != 1 || plan.Leaving[0] != 3 || len(plan.Joining) != 0 {
		t.Fatalf("Leaving = %v Joining = %v, want [3] and none", plan.Leaving, plan.Joining)
	}
	// k3 and k7 on both operators plus the ghost: 5 forced moves, and
	// with no joiners the bound IS the forced count.
	if plan.MovedKeys != 5 || plan.Bound != 5 {
		t.Fatalf("MovedKeys = %d Bound = %d, want 5 and 5", plan.MovedKeys, plan.Bound)
	}
	stayers := []int{0, 1, 2}
	for _, op := range []string{"A", "B"} {
		for i, k := range keys {
			got := plan.Tables[op].Assign[k]
			if i%servers != 3 {
				if got != i%servers {
					t.Errorf("staying key %s/%s moved: %d -> %d", op, k, i%servers, got)
				}
				continue
			}
			want := stayers[routing.HashKey(k, len(stayers))]
			if got != want {
				t.Errorf("forced %s/%s assigned to %d, want hash choice %d", op, k, got, want)
			}
		}
	}
	if got := plan.Tables["A"].Assign["ghost"]; got != stayers[routing.HashKey("ghost", 3)] {
		t.Errorf("ghost assigned to %d, want hash choice", got)
	}
	// One state move per forced stateful key, consistent with the table.
	if len(plan.Moves["A"]) != 3 || len(plan.Moves["B"]) != 2 {
		t.Fatalf("Moves = A:%d B:%d, want 3 and 2", len(plan.Moves["A"]), len(plan.Moves["B"]))
	}
	for op, moves := range plan.Moves {
		for _, m := range moves {
			if m.From != 3 {
				t.Errorf("move %s/%s from inst %d, want 3", op, m.Key, m.From)
			}
			if m.To != plan.Tables[op].Assign[m.Key] {
				t.Errorf("move %s/%s to inst %d, table says %d", op, m.Key, m.To, plan.Tables[op].Assign[m.Key])
			}
		}
	}
	// Assigned mirrors the forced keys.
	if len(plan.Assigned["A"]) != 3 || len(plan.Assigned["B"]) != 2 {
		t.Fatalf("Assigned = %+v, want 3 A keys and 2 B keys", plan.Assigned)
	}
}

// TestPlanRescaleFollowsKeyGraph: a forced key pair heavily correlated
// with a pinned stayer must land on the stayer's server, and the
// correlated pair must stay together — the locality-preserving path.
func TestPlanRescaleFollowsKeyGraph(t *testing.T) {
	const servers = 3
	place := planPlace(t, servers)
	tables := map[string]*routing.Table{
		"A": {Assign: map[string]int{"hot": 2, "warm": 2, "anchor": 0}},
		"B": {Assign: map[string]int{"hot": 2, "warm": 2, "anchor": 0}},
	}
	stats := []engine.PairStat{{
		FromOp: "A", ToOp: "B",
		Pairs: []spacesaving.PairCounter{
			{In: "hot", Out: "hot", Count: 100},
			{In: "warm", Out: "warm", Count: 90},
			{In: "hot", Out: "anchor", Count: 80},
			{In: "warm", Out: "hot", Count: 70},
			{In: "anchor", Out: "anchor", Count: 60},
		},
	}}

	plan, err := PlanRescale(PlanInput{
		Place:       place,
		From:        mask(servers, 0, 1, 2),
		To:          mask(servers, 0, 1),
		Tables:      tables,
		Stats:       stats,
		StatefulOps: []string{"A", "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.MovedKeys != 4 {
		t.Fatalf("MovedKeys = %d, want 4 (hot+warm on A and B)", plan.MovedKeys)
	}
	if got := plan.Tables["A"].Assign["anchor"]; got != 0 {
		t.Fatalf("pinned anchor moved to %d", got)
	}
	for _, key := range []string{"hot", "warm"} {
		a, b := plan.Tables["A"].Assign[key], plan.Tables["B"].Assign[key]
		if a == 2 || b == 2 {
			t.Fatalf("%s still assigned to the leaving server (A=%d B=%d)", key, a, b)
		}
		if a != b {
			t.Errorf("pair %s split: A=%d B=%d", key, a, b)
		}
	}
	if got := plan.Tables["A"].Assign["hot"]; got != 0 {
		t.Errorf("hot assigned to %d, want the anchor's server 0", got)
	}
}

// clusteredStats builds nClusters independent heavy key clusters (two
// keys each, cross-linked) — a workload whose from-scratch partition at
// a wider K spreads clusters onto the joining servers.
func clusteredStats(nClusters int) []engine.PairStat {
	st := engine.PairStat{FromOp: "A", ToOp: "B"}
	for c := 0; c < nClusters; c++ {
		a, b := fmt.Sprintf("k%d", 2*c), fmt.Sprintf("k%d", 2*c+1)
		st.Pairs = append(st.Pairs,
			spacesaving.PairCounter{In: a, Out: a, Count: 100},
			spacesaving.PairCounter{In: b, Out: b, Count: 100},
			spacesaving.PairCounter{In: a, Out: b, Count: 90},
		)
	}
	return []engine.PairStat{st}
}

// TestPlanRescaleScaleUpVoluntaryBounded: when servers join, only
// voluntary moves toward the joiners happen, every stayer not selected
// stays put, and MaxMoves caps the disruption.
func TestPlanRescaleScaleUpVoluntaryBounded(t *testing.T) {
	const servers = 4
	place := planPlace(t, servers)
	tables := map[string]*routing.Table{
		"A": {Assign: map[string]int{}},
		"B": {Assign: map[string]int{}},
	}
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		tables["A"].Assign[k] = i % 2
		tables["B"].Assign[k] = i % 2
	}
	in := PlanInput{
		Place:       place,
		From:        mask(servers, 0, 1),
		To:          mask(servers, 0, 1, 2, 3),
		Tables:      tables,
		Stats:       clusteredStats(4),
		StatefulOps: []string{"A", "B"},
	}

	plan, err := PlanRescale(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Joining) != 2 || plan.Joining[0] != 2 || plan.Joining[1] != 3 {
		t.Fatalf("Joining = %v, want [2 3]", plan.Joining)
	}
	if len(plan.Leaving) != 0 {
		t.Fatalf("Leaving = %v, want none", plan.Leaving)
	}
	if plan.MovedKeys == 0 {
		t.Fatal("no voluntary moves toward the joining servers")
	}
	if plan.MovedKeys > plan.Bound {
		t.Fatalf("MovedKeys %d exceeds Bound %d", plan.MovedKeys, plan.Bound)
	}
	for op, assigned := range plan.Assigned {
		for key, inst := range assigned {
			s := place.ServerOf(op, inst)
			if s != 2 && s != 3 {
				t.Errorf("voluntary move %s/%s landed on staying server %d", op, key, s)
			}
			if tables[op].Assign[key] == inst {
				t.Errorf("voluntary move %s/%s did not change instance", op, key)
			}
		}
	}
	// Keys not selected stay exactly where they were.
	for op, table := range tables {
		for key, inst := range table.Assign {
			if _, moved := plan.Assigned[op][key]; moved {
				continue
			}
			if got := plan.Tables[op].Assign[key]; got != inst {
				t.Errorf("unselected key %s/%s moved: %d -> %d", op, key, inst, got)
			}
		}
	}
	// State moves accompany every voluntary stateful move.
	moves := 0
	for _, ms := range plan.Moves {
		moves += len(ms)
	}
	if moves != plan.MovedKeys {
		t.Fatalf("state moves = %d, moved keys = %d", moves, plan.MovedKeys)
	}

	// A hard cap of one voluntary move bounds both the plan and its
	// a-priori ceiling.
	in.MaxMoves = 1
	capped, err := PlanRescale(in)
	if err != nil {
		t.Fatal(err)
	}
	if capped.MovedKeys > 1 || capped.Bound != 1 {
		t.Fatalf("capped plan: MovedKeys = %d Bound = %d, want <= 1 and 1", capped.MovedKeys, capped.Bound)
	}
	if capped.MovedKeys > plan.MovedKeys {
		t.Fatalf("capped plan moved more keys (%d) than unbounded (%d)", capped.MovedKeys, plan.MovedKeys)
	}
}

// TestPlanRescaleScaleUpNoStats: with no key graph there is nothing
// worth moving voluntarily — adding servers is a routing no-op until
// the next reconfiguration.
func TestPlanRescaleScaleUpNoStats(t *testing.T) {
	const servers = 3
	place := planPlace(t, servers)
	tables := map[string]*routing.Table{"A": {Assign: map[string]int{"k": 0}}}
	plan, err := PlanRescale(PlanInput{
		Place:       place,
		From:        mask(servers, 0),
		To:          mask(servers, 0, 1, 2),
		Tables:      tables,
		StatefulOps: []string{"A"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.MovedKeys != 0 || plan.Bound != 0 {
		t.Fatalf("MovedKeys = %d Bound = %d, want 0 and 0", plan.MovedKeys, plan.Bound)
	}
	if plan.Tables["A"].Assign["k"] != 0 {
		t.Fatal("stayer moved with no statistics")
	}
}

// TestPlanRescaleSplitReown: a split key with a replica on a leaving
// server is re-owned at its first replica still in the To set — no
// partitioning, no state move — and only a moved pin counts as a moved
// key.
func TestPlanRescaleSplitReown(t *testing.T) {
	const servers = 4
	place := planPlace(t, servers)
	tables := map[string]*routing.Table{
		"B": {Assign: map[string]int{"hot": 3, "cool": 0}},
	}
	plan, err := PlanRescale(PlanInput{
		Place:  place,
		From:   mask(servers, 0, 1, 2, 3),
		To:     mask(servers, 0, 1, 2),
		Tables: tables,
		Splits: []engine.SplitKeyInfo{
			{Op: "B", Key: "hot", Replicas: []int{3, 1}},  // owner leaves
			{Op: "B", Key: "cool", Replicas: []int{0, 3}}, // replica leaves
		},
		StatefulOps: []string{"A", "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.SplitReowns) != 2 {
		t.Fatalf("SplitReowns = %+v, want 2", plan.SplitReowns)
	}
	cool, hot := plan.SplitReowns[0], plan.SplitReowns[1]
	if hot.Key != "hot" || hot.NewOwner != 1 || !hot.Moved || len(hot.Gone) != 1 || hot.Gone[0] != 3 {
		t.Fatalf("hot reown = %+v, want owner 1, moved, gone [3]", hot)
	}
	if cool.Key != "cool" || cool.NewOwner != 0 || cool.Moved || len(cool.Gone) != 1 || cool.Gone[0] != 3 {
		t.Fatalf("cool reown = %+v, want owner 0, unmoved, gone [3]", cool)
	}
	if got := plan.Tables["B"].Assign["hot"]; got != 1 {
		t.Fatalf("hot pinned at %d, want surviving replica 1", got)
	}
	if got := plan.Tables["B"].Assign["cool"]; got != 0 {
		t.Fatalf("cool pinned at %d, want unchanged owner 0", got)
	}
	// Only the moved pin counts; re-owning never moves live state.
	if plan.MovedKeys != 1 {
		t.Fatalf("MovedKeys = %d, want 1", plan.MovedKeys)
	}
	if len(plan.Moves) != 0 || len(plan.Assigned) != 0 {
		t.Fatalf("split re-owning produced Moves %+v Assigned %+v", plan.Moves, plan.Assigned)
	}
}

func TestPlanRescaleErrors(t *testing.T) {
	place := planPlace(t, 2)
	if _, err := PlanRescale(PlanInput{}); err == nil {
		t.Error("nil placement accepted")
	}
	if _, err := PlanRescale(PlanInput{Place: place, To: []bool{true}}); err == nil {
		t.Error("short To vector accepted")
	}
	if _, err := PlanRescale(PlanInput{Place: place, To: mask(2, 0), From: []bool{true}}); err == nil {
		t.Error("short From vector accepted")
	}
	if _, err := PlanRescale(PlanInput{Place: place, To: mask(2)}); err == nil {
		t.Error("empty target set accepted")
	}
}

// TestAdoptInstanceFallsBack: when the chosen server hosts no instance
// of the operator, the usable servers are scanned deterministically for
// one that does.
func TestAdoptInstanceFallsBack(t *testing.T) {
	topo, err := topology.NewBuilder("partial").
		AddOperator(topology.Operator{Name: "A", Parallelism: 2, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(0) }}).
		AddOperator(topology.Operator{Name: "B", Parallelism: 4, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(1) }}).
		Connect("A", "B", topology.Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// A has instances only on servers 0 and 1; B everywhere.
	place, err := cluster.NewRoundRobin(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	inst, ok := AdoptInstance(place, "A", "k", 3, []int{0, 1, 2, 3})
	if !ok {
		t.Fatal("no instance found")
	}
	if s := place.ServerOf("A", inst); s != 0 && s != 1 {
		t.Fatalf("adopted on server %d, want a server hosting A", s)
	}
	if _, ok := AdoptInstance(place, "C", "k", 0, []int{0, 1}); ok {
		t.Fatal("unknown operator adopted")
	}
}

// BenchmarkRescalePlan measures the planner on a 4 -> 8 scale-up over a
// 512-key ring-correlated workload — the cost of one elastic decision.
func BenchmarkRescalePlan(b *testing.B) {
	const servers, keys = 8, 512
	place := planPlace(b, servers)
	tables := map[string]*routing.Table{
		"A": {Assign: map[string]int{}},
		"B": {Assign: map[string]int{}},
	}
	st := engine.PairStat{FromOp: "A", ToOp: "B"}
	for i := 0; i < keys; i++ {
		k, next := fmt.Sprintf("k%d", i), fmt.Sprintf("k%d", (i+1)%keys)
		tables["A"].Assign[k] = i % 4
		tables["B"].Assign[k] = i % 4
		st.Pairs = append(st.Pairs,
			spacesaving.PairCounter{In: k, Out: k, Count: 50},
			spacesaving.PairCounter{In: k, Out: next, Count: 10},
		)
	}
	in := PlanInput{
		Place:       place,
		From:        mask(servers, 0, 1, 2, 3),
		To:          mask(servers, 0, 1, 2, 3, 4, 5, 6, 7),
		Tables:      tables,
		Stats:       []engine.PairStat{st},
		StatefulOps: []string{"A", "B"},
		MaxMoves:    keys / 4,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanRescale(in); err != nil {
			b.Fatal(err)
		}
	}
}
