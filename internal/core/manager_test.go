package core

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/topology"
)

func newLiveEval(t *testing.T, parallelism int) (*engine.Live, *topology.Topology, *cluster.Placement) {
	t.Helper()
	topo, place := evalTopology(t, parallelism)
	policies, err := engine.NewPolicies(topo, place, engine.FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	src, err := engine.NewSourcePolicy(topo, place, topology.Fields, engine.FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	live, err := engine.NewLive(engine.LiveConfig{
		Topology:       topo,
		Placement:      place,
		Policies:       policies,
		SourcePolicy:   src,
		SourceKeyField: 0,
		SketchCapacity: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(live.Stop)
	return live, topo, place
}

func totalCount(t *testing.T, live *engine.Live, op string, parallelism int) uint64 {
	t.Helper()
	var total uint64
	for i := 0; i < parallelism; i++ {
		if err := live.ProcessorState(op, i, func(p topology.Processor) {
			total += p.(*topology.Counter).TotalCount()
		}); err != nil {
			t.Fatal(err)
		}
	}
	return total
}

func TestManagerOnlineOptimizationImprovesLocality(t *testing.T) {
	const parallelism = 4
	live, topo, place := newLiveEval(t, parallelism)
	mgr, err := NewManager(live, topo, place, ManagerOptions{
		Optimizer: OptimizerOptions{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}

	inject := func(n int) {
		for i := 0; i < n; i++ {
			k := strconv.Itoa(i % 16)
			_ = live.Inject(topology.Tuple{Values: []string{k, "t" + k}})
		}
		live.Drain()
	}

	inject(4000)
	before := live.FieldsTraffic().Locality()

	plan, err := mgr.Reconfigure()
	if err != nil {
		t.Fatal(err)
	}
	if plan.ExpectedLocality != 1.0 {
		t.Fatalf("ExpectedLocality = %f, want 1 (keys perfectly correlated)", plan.ExpectedLocality)
	}
	if plan.Imbalance > 1.2 {
		t.Fatalf("Imbalance = %f", plan.Imbalance)
	}

	// No state lost by migration.
	if got := totalCount(t, live, "B", parallelism); got != 4000 {
		t.Fatalf("B total after reconfiguration = %d, want 4000", got)
	}

	// Second phase: measure locality with the deployed tables only.
	firstPhase := live.FieldsTraffic()
	inject(4000)
	after := live.FieldsTraffic()
	after.LocalTuples -= firstPhase.LocalTuples
	after.RemoteTuples -= firstPhase.RemoteTuples
	if after.Locality() != 1.0 {
		t.Fatalf("locality after reconfiguration = %f, want 1.0 (before: %f)", after.Locality(), before)
	}
	if len(mgr.Tables()) != 2 {
		t.Fatalf("Tables() = %v, want entries for A and B", mgr.Tables())
	}
}

func TestManagerRepeatedReconfigurations(t *testing.T) {
	// Drifting correlations: the association between first and second
	// field changes every round; online reconfiguration must keep up and
	// never lose state.
	const parallelism = 3
	live, topo, place := newLiveEval(t, parallelism)
	mgr, err := NewManager(live, topo, place, ManagerOptions{
		Optimizer: OptimizerOptions{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}

	total := 0
	for round := 0; round < 4; round++ {
		for i := 0; i < 900; i++ {
			k := i % 9
			// The hashtag associated with location k rotates each round.
			tag := fmt.Sprintf("t%d", (k+round)%9)
			_ = live.Inject(topology.Tuple{Values: []string{strconv.Itoa(k), tag}})
			total++
		}
		live.Drain()
		plan, err := mgr.Reconfigure()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if plan.Version != uint64(round+1) {
			t.Fatalf("round %d: version %d", round, plan.Version)
		}
	}
	if got := totalCount(t, live, "A", parallelism); got != uint64(total) {
		t.Fatalf("A total = %d, want %d", got, total)
	}
	if got := totalCount(t, live, "B", parallelism); got != uint64(total) {
		t.Fatalf("B total = %d, want %d", got, total)
	}
}

func TestManagerReconfigureUnderLoad(t *testing.T) {
	const parallelism = 3
	live, topo, place := newLiveEval(t, parallelism)
	mgr, err := NewManager(live, topo, place, ManagerOptions{
		Optimizer: OptimizerOptions{Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}

	const total = 6000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			k := strconv.Itoa(i % 10)
			_ = live.Inject(topology.Tuple{Values: []string{k, "t" + k}})
		}
	}()
	for round := 0; round < 3; round++ {
		if _, err := mgr.Reconfigure(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	live.Drain()

	if got := totalCount(t, live, "B", parallelism); got != total {
		t.Fatalf("B total = %d, want %d (stream disrupted by reconfiguration)", got, total)
	}
}

func TestManagerPersistsBeforeDeploy(t *testing.T) {
	live, topo, place := newLiveEval(t, 2)
	store := &MemoryStore{}
	mgr, err := NewManager(live, topo, place, ManagerOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := strconv.Itoa(i % 4)
		_ = live.Inject(topology.Tuple{Values: []string{k, "t" + k}})
	}
	live.Drain()
	if _, err := mgr.Reconfigure(); err != nil {
		t.Fatal(err)
	}
	version, tables, ok, err := store.Load()
	if err != nil || !ok {
		t.Fatalf("Load: %v %v", ok, err)
	}
	if version != 1 || len(tables) == 0 {
		t.Fatalf("stored version %d tables %v", version, tables)
	}
}

func TestMemoryStoreEmptyLoad(t *testing.T) {
	store := &MemoryStore{}
	_, _, ok, err := store.Load()
	if err != nil || ok {
		t.Fatalf("empty store Load = %v %v", ok, err)
	}
}

func TestMemoryStoreIsolation(t *testing.T) {
	store := &MemoryStore{}
	tables := map[string]*routing.Table{"A": {Version: 1, Assign: map[string]int{"k": 1}}}
	if err := store.Save(1, tables); err != nil {
		t.Fatal(err)
	}
	if err := store.MarkDeployed(1); err != nil {
		t.Fatal(err)
	}
	tables["A"].Assign["k"] = 9
	_, loaded, _, _ := store.Load()
	if loaded["A"].Assign["k"] != 1 {
		t.Fatal("store shares table memory with caller")
	}
}

func TestStoresLoadOnlyDeployedVersions(t *testing.T) {
	stores := map[string]ConfigStore{
		"memory": &MemoryStore{},
		"file":   &FileStore{Dir: t.TempDir() + "/configs"},
	}
	for name, store := range stores {
		t.Run(name, func(t *testing.T) {
			tables := map[string]*routing.Table{"A": {Version: 1, Assign: map[string]int{"k": 0}}}
			// A saved-but-never-deployed configuration must be invisible
			// to recovery.
			if err := store.Save(1, tables); err != nil {
				t.Fatal(err)
			}
			if _, _, ok, err := store.Load(); err != nil || ok {
				t.Fatalf("Load after Save only = ok=%v err=%v, want invisible", ok, err)
			}
			if err := store.MarkDeployed(1); err != nil {
				t.Fatal(err)
			}
			version, _, ok, err := store.Load()
			if err != nil || !ok || version != 1 {
				t.Fatalf("Load after MarkDeployed = v%d ok=%v err=%v", version, ok, err)
			}
			// A newer save does not move the recovery target until marked.
			if err := store.Save(2, tables); err != nil {
				t.Fatal(err)
			}
			if version, _, _, _ := store.Load(); version != 1 {
				t.Fatalf("Load after unmarked Save = v%d, want 1", version)
			}
			if err := store.MarkDeployed(2); err != nil {
				t.Fatal(err)
			}
			if version, _, _, _ := store.Load(); version != 2 {
				t.Fatalf("Load = v%d, want 2", version)
			}
			// Marking an unsaved version is an error.
			if err := store.MarkDeployed(99); err == nil {
				t.Fatal("MarkDeployed(99) accepted an unsaved version")
			}
		})
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store := &FileStore{Dir: dir + "/configs"}

	if _, _, ok, err := store.Load(); err != nil || ok {
		t.Fatalf("empty file store Load = %v %v", ok, err)
	}

	tables := map[string]*routing.Table{
		"A": {Version: 3, Assign: map[string]int{"Asia": 0, "Oceania": 1}},
		"B": {Version: 3, Assign: map[string]int{"#java": 0}},
	}
	if err := store.Save(3, tables); err != nil {
		t.Fatal(err)
	}
	if err := store.MarkDeployed(3); err != nil {
		t.Fatal(err)
	}
	version, loaded, ok, err := store.Load()
	if err != nil || !ok {
		t.Fatalf("Load: %v %v", ok, err)
	}
	if version != 3 {
		t.Fatalf("version = %d", version)
	}
	if loaded["A"].Assign["Asia"] != 0 || loaded["A"].Assign["Oceania"] != 1 {
		t.Fatalf("loaded A = %v", loaded["A"])
	}
	if loaded["B"].Assign["#java"] != 0 {
		t.Fatalf("loaded B = %v", loaded["B"])
	}

	// A later deployed save supersedes.
	if err := store.Save(4, map[string]*routing.Table{"A": {Version: 4, Assign: map[string]int{"x": 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := store.MarkDeployed(4); err != nil {
		t.Fatal(err)
	}
	version, loaded, _, _ = store.Load()
	if version != 4 || len(loaded) != 1 {
		t.Fatalf("after second save: version %d tables %v", version, loaded)
	}
}

func TestDeployFailureLeavesStoreAndTablesUntouched(t *testing.T) {
	const parallelism = 3
	live, topo, place := newLiveEval(t, parallelism)
	store := &MemoryStore{}
	mgr, err := NewManager(live, topo, place, ManagerOptions{
		Optimizer: OptimizerOptions{Seed: 7},
		Store:     store,
	})
	if err != nil {
		t.Fatal(err)
	}

	// First configuration deploys cleanly.
	for i := 0; i < 900; i++ {
		k := strconv.Itoa(i % 9)
		_ = live.Inject(topology.Tuple{Values: []string{k, "t" + k}})
	}
	live.Drain()
	if _, err := mgr.Reconfigure(); err != nil {
		t.Fatal(err)
	}
	want := mgr.Tables()

	// Second candidate is computed from a shifted workload, but the
	// engine dies before the deployment: the failed version must be
	// visible neither in the manager's tables nor as the store's
	// recovery target.
	for i := 0; i < 900; i++ {
		k := strconv.Itoa(i % 9)
		tag := fmt.Sprintf("t%d", (i+1)%9)
		_ = live.Inject(topology.Tuple{Values: []string{k, tag}})
	}
	live.Drain()
	cand, err := mgr.Candidate()
	if err != nil {
		t.Fatal(err)
	}
	live.Stop()
	if err := mgr.DeployCandidate(cand); err == nil {
		t.Fatal("deploy to stopped engine succeeded")
	}

	got := mgr.Tables()
	for op, table := range want {
		if gt, ok := got[op]; !ok || gt.Version != table.Version {
			t.Fatalf("tables changed after failed deploy: %v vs %v", got[op], table)
		}
	}
	version, _, ok, err := store.Load()
	if err != nil || !ok {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	if version != 1 {
		t.Fatalf("recovery target = v%d after failed deploy, want v1", version)
	}
}

func TestSkippedRoundResetsStatsWindow(t *testing.T) {
	live, topo, place := newLiveEval(t, 3)
	mgr, err := NewManager(live, topo, place, ManagerOptions{
		Optimizer: OptimizerOptions{Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 900; i++ {
		k := strconv.Itoa(i % 9)
		_ = live.Inject(topology.Tuple{Values: []string{k, "t" + k}})
	}
	live.Drain()

	// An absurd migration cost forces a skip...
	_, impact, deployed, err := mgr.ReconfigureIfWorthwhile(1e12)
	if err != nil {
		t.Fatal(err)
	}
	if deployed {
		t.Fatalf("deployed despite cost 1e12/key: %+v", impact)
	}
	if impact.TrafficPerPeriod == 0 {
		t.Fatal("no traffic observed; skip not exercised")
	}
	// ...but the statistics window must restart anyway: the sketches
	// were reset by the collection, so a fresh collection sees nothing.
	for _, st := range live.CollectPairStats() {
		if len(st.Pairs) != 0 {
			t.Fatalf("stats window not reset by skipped round: %+v", st)
		}
	}
}

func TestManagerRecoverRedeploysLastDeployedConfig(t *testing.T) {
	const parallelism = 4
	dir := t.TempDir()
	store := &FileStore{Dir: dir}

	inject := func(live *engine.Live, n int) {
		for i := 0; i < n; i++ {
			k := strconv.Itoa(i % 16)
			_ = live.Inject(topology.Tuple{Values: []string{k, "t" + k}})
		}
		live.Drain()
	}

	// First life: deploy one optimized configuration, then die.
	live1, topo, place := newLiveEval(t, parallelism)
	mgr1, err := NewManager(live1, topo, place, ManagerOptions{
		Optimizer: OptimizerOptions{Seed: 11}, Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	inject(live1, 3200)
	if _, err := mgr1.Reconfigure(); err != nil {
		t.Fatal(err)
	}
	want := mgr1.Tables()
	live1.Stop()

	// Second life: a fresh engine and manager recover from the store.
	live2, topo2, place2 := newLiveEval(t, parallelism)
	mgr2, err := NewManager(live2, topo2, place2, ManagerOptions{
		Optimizer: OptimizerOptions{Seed: 11}, Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	version, ok, err := mgr2.Recover()
	if err != nil || !ok {
		t.Fatalf("Recover: ok=%v err=%v", ok, err)
	}
	if version != 1 {
		t.Fatalf("recovered version = %d, want 1", version)
	}
	got := mgr2.Tables()
	for op, table := range want {
		gt := got[op]
		if gt == nil || len(gt.Assign) != len(table.Assign) {
			t.Fatalf("recovered tables for %s = %v, want %v", op, gt, table)
		}
		for k, inst := range table.Assign {
			if gt.Assign[k] != inst {
				t.Fatalf("recovered %s[%q] = %d, want %d", op, k, gt.Assign[k], inst)
			}
		}
	}

	// The recovered tables are live: the correlated workload is 100%
	// local with no further reconfiguration.
	inject(live2, 3200)
	if loc := live2.FieldsTraffic().Locality(); loc != 1.0 {
		t.Fatalf("locality after recovery = %f, want 1.0", loc)
	}
	live2.Stop()
}

func TestManagerRecoverEmptyStore(t *testing.T) {
	live, topo, place := newLiveEval(t, 2)
	mgr, err := NewManager(live, topo, place, ManagerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := mgr.Recover(); ok || err != nil {
		t.Fatalf("Recover on empty store = ok=%v err=%v", ok, err)
	}
}
