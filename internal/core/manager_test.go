package core

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/topology"
)

func newLiveEval(t *testing.T, parallelism int) (*engine.Live, *topology.Topology, *cluster.Placement) {
	t.Helper()
	topo, place := evalTopology(t, parallelism)
	policies, err := engine.NewPolicies(topo, place, engine.FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	src, err := engine.NewSourcePolicy(topo, place, topology.Fields, engine.FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	live, err := engine.NewLive(engine.LiveConfig{
		Topology:       topo,
		Placement:      place,
		Policies:       policies,
		SourcePolicy:   src,
		SourceKeyField: 0,
		SketchCapacity: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(live.Stop)
	return live, topo, place
}

func totalCount(t *testing.T, live *engine.Live, op string, parallelism int) uint64 {
	t.Helper()
	var total uint64
	for i := 0; i < parallelism; i++ {
		if err := live.ProcessorState(op, i, func(p topology.Processor) {
			total += p.(*topology.Counter).TotalCount()
		}); err != nil {
			t.Fatal(err)
		}
	}
	return total
}

func TestManagerOnlineOptimizationImprovesLocality(t *testing.T) {
	const parallelism = 4
	live, topo, place := newLiveEval(t, parallelism)
	mgr, err := NewManager(live, topo, place, ManagerOptions{
		Optimizer: OptimizerOptions{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}

	inject := func(n int) {
		for i := 0; i < n; i++ {
			k := strconv.Itoa(i % 16)
			_ = live.Inject(topology.Tuple{Values: []string{k, "t" + k}})
		}
		live.Drain()
	}

	inject(4000)
	before := live.FieldsTraffic().Locality()

	plan, err := mgr.Reconfigure()
	if err != nil {
		t.Fatal(err)
	}
	if plan.ExpectedLocality != 1.0 {
		t.Fatalf("ExpectedLocality = %f, want 1 (keys perfectly correlated)", plan.ExpectedLocality)
	}
	if plan.Imbalance > 1.2 {
		t.Fatalf("Imbalance = %f", plan.Imbalance)
	}

	// No state lost by migration.
	if got := totalCount(t, live, "B", parallelism); got != 4000 {
		t.Fatalf("B total after reconfiguration = %d, want 4000", got)
	}

	// Second phase: measure locality with the deployed tables only.
	firstPhase := live.FieldsTraffic()
	inject(4000)
	after := live.FieldsTraffic()
	after.LocalTuples -= firstPhase.LocalTuples
	after.RemoteTuples -= firstPhase.RemoteTuples
	if after.Locality() != 1.0 {
		t.Fatalf("locality after reconfiguration = %f, want 1.0 (before: %f)", after.Locality(), before)
	}
	if len(mgr.Tables()) != 2 {
		t.Fatalf("Tables() = %v, want entries for A and B", mgr.Tables())
	}
}

func TestManagerRepeatedReconfigurations(t *testing.T) {
	// Drifting correlations: the association between first and second
	// field changes every round; online reconfiguration must keep up and
	// never lose state.
	const parallelism = 3
	live, topo, place := newLiveEval(t, parallelism)
	mgr, err := NewManager(live, topo, place, ManagerOptions{
		Optimizer: OptimizerOptions{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}

	total := 0
	for round := 0; round < 4; round++ {
		for i := 0; i < 900; i++ {
			k := i % 9
			// The hashtag associated with location k rotates each round.
			tag := fmt.Sprintf("t%d", (k+round)%9)
			_ = live.Inject(topology.Tuple{Values: []string{strconv.Itoa(k), tag}})
			total++
		}
		live.Drain()
		plan, err := mgr.Reconfigure()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if plan.Version != uint64(round+1) {
			t.Fatalf("round %d: version %d", round, plan.Version)
		}
	}
	if got := totalCount(t, live, "A", parallelism); got != uint64(total) {
		t.Fatalf("A total = %d, want %d", got, total)
	}
	if got := totalCount(t, live, "B", parallelism); got != uint64(total) {
		t.Fatalf("B total = %d, want %d", got, total)
	}
}

func TestManagerReconfigureUnderLoad(t *testing.T) {
	const parallelism = 3
	live, topo, place := newLiveEval(t, parallelism)
	mgr, err := NewManager(live, topo, place, ManagerOptions{
		Optimizer: OptimizerOptions{Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}

	const total = 6000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			k := strconv.Itoa(i % 10)
			_ = live.Inject(topology.Tuple{Values: []string{k, "t" + k}})
		}
	}()
	for round := 0; round < 3; round++ {
		if _, err := mgr.Reconfigure(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	live.Drain()

	if got := totalCount(t, live, "B", parallelism); got != total {
		t.Fatalf("B total = %d, want %d (stream disrupted by reconfiguration)", got, total)
	}
}

func TestManagerPersistsBeforeDeploy(t *testing.T) {
	live, topo, place := newLiveEval(t, 2)
	store := &MemoryStore{}
	mgr, err := NewManager(live, topo, place, ManagerOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := strconv.Itoa(i % 4)
		_ = live.Inject(topology.Tuple{Values: []string{k, "t" + k}})
	}
	live.Drain()
	if _, err := mgr.Reconfigure(); err != nil {
		t.Fatal(err)
	}
	version, tables, ok, err := store.Load()
	if err != nil || !ok {
		t.Fatalf("Load: %v %v", ok, err)
	}
	if version != 1 || len(tables) == 0 {
		t.Fatalf("stored version %d tables %v", version, tables)
	}
}

func TestMemoryStoreEmptyLoad(t *testing.T) {
	store := &MemoryStore{}
	_, _, ok, err := store.Load()
	if err != nil || ok {
		t.Fatalf("empty store Load = %v %v", ok, err)
	}
}

func TestMemoryStoreIsolation(t *testing.T) {
	store := &MemoryStore{}
	tables := map[string]*routing.Table{"A": {Version: 1, Assign: map[string]int{"k": 1}}}
	if err := store.Save(1, tables); err != nil {
		t.Fatal(err)
	}
	tables["A"].Assign["k"] = 9
	_, loaded, _, _ := store.Load()
	if loaded["A"].Assign["k"] != 1 {
		t.Fatal("store shares table memory with caller")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store := &FileStore{Dir: dir + "/configs"}

	if _, _, ok, err := store.Load(); err != nil || ok {
		t.Fatalf("empty file store Load = %v %v", ok, err)
	}

	tables := map[string]*routing.Table{
		"A": {Version: 3, Assign: map[string]int{"Asia": 0, "Oceania": 1}},
		"B": {Version: 3, Assign: map[string]int{"#java": 0}},
	}
	if err := store.Save(3, tables); err != nil {
		t.Fatal(err)
	}
	version, loaded, ok, err := store.Load()
	if err != nil || !ok {
		t.Fatalf("Load: %v %v", ok, err)
	}
	if version != 3 {
		t.Fatalf("version = %d", version)
	}
	if loaded["A"].Assign["Asia"] != 0 || loaded["A"].Assign["Oceania"] != 1 {
		t.Fatalf("loaded A = %v", loaded["A"])
	}
	if loaded["B"].Assign["#java"] != 0 {
		t.Fatalf("loaded B = %v", loaded["B"])
	}

	// A later save supersedes.
	if err := store.Save(4, map[string]*routing.Table{"A": {Version: 4, Assign: map[string]int{"x": 1}}}); err != nil {
		t.Fatal(err)
	}
	version, loaded, _, _ = store.Load()
	if version != 4 || len(loaded) != 1 {
		t.Fatalf("after second save: version %d tables %v", version, loaded)
	}
}
