package core

import (
	"sort"

	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/routing"
)

// FederatedCandidate is a global tiered candidate split along the
// cluster boundary: one ClusterCandidate per cluster carrying only that
// cluster's intra-cluster moves, plus the cross-cluster remainder. The
// federation layer gates each part separately — local moves pay the
// ordinary per-key migration cost, cross-cluster moves pay the
// inter-cluster multiple (100× by default) — and merges the approved
// parts into one deployment.
type FederatedCandidate struct {
	// Global is the unrestricted tiered candidate the parts were carved
	// from (its Stats/Splits feed the hot-key splitter as usual).
	Global *Candidate
	// Current is the deployed configuration the moves are relative to.
	Current map[string]*routing.Table
	// Clusters holds one entry per cluster that has at least one local
	// move, ordered by cluster id.
	Clusters []ClusterCandidate
	// Cross describes the cross-cluster move set.
	Cross CrossCandidate

	localMoves map[int][]keyMove
	crossMoves []keyMove
}

// ClusterCandidate is one cluster's share of a federated candidate: the
// current tables with only this cluster's intra-cluster moves applied,
// scored by the ordinary impact estimator — the per-cluster controller's
// measure→decide input.
type ClusterCandidate struct {
	// Cluster is the cluster id.
	Cluster int
	// Tables is the deployable configuration for this cluster alone.
	Tables map[string]*routing.Table
	// Impact scores deploying Tables instead of keeping Current.
	Impact Impact
	// KeysMoved is the number of keys whose owner changes (within the
	// cluster).
	KeysMoved int
}

// CrossCandidate is the federation layer's half of a federated
// candidate: the keys the global partition wants to move between
// clusters, and what routing them at their new homes saves on the
// inter-cluster link.
type CrossCandidate struct {
	// KeysMoved is the number of keys changing cluster.
	KeysMoved int
	// CurrentInterCluster and CandidateInterCluster are the pair-weight
	// volumes crossing clusters per statistics period without and with
	// the cross-cluster moves (both on top of every local move, so the
	// delta isolates what the cross moves themselves buy).
	CurrentInterCluster   float64
	CandidateInterCluster float64
	// SavedInterClusterPerPeriod is their difference.
	SavedInterClusterPerPeriod float64
	// CostMultiplier is the inter-cluster transfer cost relative to a
	// same-rack hop (the placement's TierCosts ratio, 100 by default):
	// migrating a key across clusters ships its state over the metered
	// link, so the gate charges this multiple of the ordinary per-key
	// cost.
	CostMultiplier float64
}

// Worthwhile reports whether the cross-cluster moves clear the
// federation cost gate: the inter-cluster tuple transfers saved per
// period must amortize migrating KeysMoved keys over the inter-cluster
// link, i.e. at CostMultiplier times the ordinary costPerKey.
func (cc CrossCandidate) Worthwhile(costPerKey float64) bool {
	if cc.KeysMoved == 0 {
		return false
	}
	return cc.SavedInterClusterPerPeriod >= costPerKey*cc.CostMultiplier*float64(cc.KeysMoved)
}

// keyMove records one key's current owner and where the global
// candidate wants it.
type keyMove struct {
	op       string
	key      string
	curInst  int
	candInst int
}

// alignClusters relabels the candidate's cluster-level assignment to
// agree maximally with the current deployment. A fresh two-level
// partition carries no label continuity: on a roughly symmetric
// workload the level-1 split can come back with whole clusters swapped,
// which reads as "move every key across the inter-cluster link" — a
// giant zero-saving cross move set that buries the real drift moves the
// federation gate should be judging. Only clusters with equal server
// counts may trade labels (the bijection must preserve capacity); the
// remap sends each candidate server to its positional counterpart in
// the relabeled cluster, so intra-cluster structure is untouched.
func (m *Manager) alignClusters(current, cand map[string]*routing.Table) {
	clusters := m.place.Clusters()
	if clusters < 2 {
		return
	}

	// agree[cc][uc]: keys the candidate puts in cluster cc that the
	// current deployment (hash fallback included) keeps in cluster uc.
	agree := make([][]int, clusters)
	for c := range agree {
		agree[c] = make([]int, clusters)
	}
	for op, t := range cand {
		if t == nil {
			continue
		}
		n := m.place.Parallelism(op)
		if n == 0 {
			continue
		}
		for key, inst := range t.Assign {
			cc := m.place.ClusterOf(m.place.ServerOf(op, inst))
			uc := m.place.ClusterOf(m.place.ServerOf(op, Owner(current[op], op, key, n)))
			if cc >= 0 && uc >= 0 {
				agree[cc][uc]++
			}
		}
	}

	// Greedy agreement-maximizing bijection within each size class.
	// Within a class every pairing is legal, so the loop always completes
	// a full permutation; ties break toward the lowest cluster ids.
	perm := make([]int, clusters)
	taken := make([]bool, clusters)  // physical label already granted
	mapped := make([]bool, clusters) // candidate label already relabeled
	for c := range perm {
		perm[c] = c
	}
	for round := 0; round < clusters; round++ {
		best, bc, bu := -1, -1, -1
		for cc := 0; cc < clusters; cc++ {
			if mapped[cc] {
				continue
			}
			for uc := 0; uc < clusters; uc++ {
				if taken[uc] ||
					len(m.place.ServersInCluster(cc)) != len(m.place.ServersInCluster(uc)) {
					continue
				}
				if agree[cc][uc] > best {
					best, bc, bu = agree[cc][uc], cc, uc
				}
			}
		}
		if bc < 0 {
			break
		}
		perm[bc] = bu
		mapped[bc], taken[bu] = true, true
	}
	identity := true
	for c, p := range perm {
		if p != c {
			identity = false
			break
		}
	}
	if identity {
		return
	}

	for op, t := range cand {
		if t == nil {
			continue
		}
		for key, inst := range t.Assign {
			s := m.place.ServerOf(op, inst)
			c := m.place.ClusterOf(s)
			if c < 0 || perm[c] == c {
				continue
			}
			from := m.place.ServersInCluster(c)
			to := m.place.ServersInCluster(perm[c])
			idx := -1
			for i, sv := range from {
				if sv == s {
					idx = i
					break
				}
			}
			if idx < 0 || idx >= len(to) {
				continue
			}
			if ni, ok := m.opt.instanceOn(op, to[idx], key); ok {
				t.Assign[key] = ni
			}
		}
	}
}

// FederatedCandidate computes a global tiered candidate and splits it
// along the cluster boundary. Like Candidate, it resets the statistics
// window; unlike Candidate it also prices the cross-cluster move set so
// the caller can gate it separately. costPerKey is the controller's
// ordinary per-key migration cost: cross moves that cannot individually
// amortize costPerKey times the inter-cluster multiple are pruned from
// the cross set (their keys keep the current owner), so a handful of
// genuinely drifted keys is never averaged against the partitioner's
// marginal relabelings. Zero disables pruning.
func (m *Manager) FederatedCandidate(costPerKey float64) (*FederatedCandidate, error) {
	cand, err := m.Candidate()
	if err != nil {
		return nil, err
	}
	current := m.tables
	fc := &FederatedCandidate{
		Global:     cand,
		Current:    cloneTables(current),
		localMoves: make(map[int][]keyMove),
	}

	// Classify every owner change by the clusters of its endpoints. The
	// cluster a local move belongs to is the (shared) cluster of both
	// owners; a move whose owners sit in different clusters crosses the
	// link.
	for _, op := range affectedOps(current, cand.Tables) {
		n := m.place.Parallelism(op)
		if n == 0 {
			continue
		}
		for _, key := range tableKeys(current[op], cand.Tables[op]) {
			curInst := Owner(current[op], op, key, n)
			candInst := Owner(cand.Tables[op], op, key, n)
			if curInst == candInst {
				continue
			}
			mv := keyMove{op: op, key: key, curInst: curInst, candInst: candInst}
			curCluster := m.place.ClusterOf(m.place.ServerOf(op, curInst))
			candCluster := m.place.ClusterOf(m.place.ServerOf(op, candInst))
			if curCluster == candCluster {
				fc.localMoves[curCluster] = append(fc.localMoves[curCluster], mv)
			} else {
				fc.crossMoves = append(fc.crossMoves, mv)
			}
		}
	}

	clusters := make([]int, 0, len(fc.localMoves))
	for c := range fc.localMoves {
		clusters = append(clusters, c)
	}
	sort.Ints(clusters)
	for _, c := range clusters {
		tables := cloneTables(current)
		applyMoves(tables, fc.localMoves[c], cand.Plan.Version)
		fc.Clusters = append(fc.Clusters, ClusterCandidate{
			Cluster:   c,
			Tables:    tables,
			Impact:    m.opt.EstimateImpact(cand.Stats, current, tables),
			KeysMoved: len(fc.localMoves[c]),
		})
	}

	costs := m.place.Costs()
	mult := costs[len(costs)-1]
	if rack := costs[1]; rack > 0 {
		mult = mult / rack
	}
	if mult < 1 {
		mult = 1
	}

	// Per-key pruning: keep only cross moves that individually clear the
	// inter-cluster gate.
	allCross := fc.crossMoves
	if len(allCross) > 0 && costPerKey > 0 {
		savings := m.crossSavings(cand.Stats, cand.Tables, allCross)
		kept := make([]keyMove, 0, len(allCross))
		for _, mv := range allCross {
			if savings[[2]string{mv.op, mv.key}] >= costPerKey*mult {
				kept = append(kept, mv)
			}
		}
		fc.crossMoves = kept
	}

	// Price the kept cross moves on top of every local move, so their
	// saving is exactly what crossing the link buys.
	noCross := cloneTables(cand.Tables)
	for _, mv := range allCross {
		setOwner(noCross, mv.op, mv.key, mv.curInst, cand.Plan.Version)
	}
	withCross := cloneTables(noCross)
	applyMoves(withCross, fc.crossMoves, cand.Plan.Version)
	curCross, candCross := m.opt.EstimateInterCluster(cand.Stats, noCross, withCross)
	fc.Cross = CrossCandidate{
		KeysMoved:                  len(fc.crossMoves),
		CurrentInterCluster:        curCross,
		CandidateInterCluster:      candCross,
		SavedInterClusterPerPeriod: curCross - candCross,
		CostMultiplier:             mult,
	}
	return fc, nil
}

// crossSavings estimates, for each cross-moved key, the inter-cluster
// pair weight its move alone removes: every pair touching the key is
// scored with the key at its current versus candidate owner while the
// partner key sits at its candidate owner. A pair between two moved
// keys is credited to both — an overcount the pruning heuristic
// tolerates (it only risks keeping a borderline move, never dropping a
// clearly good one).
func (m *Manager) crossSavings(stats []engine.PairStat, cand map[string]*routing.Table, moves []keyMove) map[[2]string]float64 {
	moved := make(map[[2]string]keyMove, len(moves))
	for _, mv := range moves {
		moved[[2]string{mv.op, mv.key}] = mv
	}
	savings := make(map[[2]string]float64, len(moves))
	cross := func(a, b int) float64 {
		if m.place.ClusterOf(a) != m.place.ClusterOf(b) {
			return 1
		}
		return 0
	}
	for _, st := range stats {
		fromN := m.place.Parallelism(st.FromOp)
		toN := m.place.Parallelism(st.ToOp)
		if fromN == 0 || toN == 0 {
			continue
		}
		for _, p := range st.Pairs {
			fromID := [2]string{st.FromOp, p.In}
			toID := [2]string{st.ToOp, p.Out}
			mvFrom, fromMoved := moved[fromID]
			mvTo, toMoved := moved[toID]
			if !fromMoved && !toMoved {
				continue
			}
			candFrom := m.place.ServerOf(st.FromOp, Owner(cand[st.FromOp], st.FromOp, p.In, fromN))
			candTo := m.place.ServerOf(st.ToOp, Owner(cand[st.ToOp], st.ToOp, p.Out, toN))
			candCross := cross(candFrom, candTo)
			if fromMoved {
				rev := cross(m.place.ServerOf(st.FromOp, mvFrom.curInst), candTo)
				savings[fromID] += (rev - candCross) * float64(p.Count)
			}
			if toMoved {
				rev := cross(candFrom, m.place.ServerOf(st.ToOp, mvTo.curInst))
				savings[toID] += (rev - candCross) * float64(p.Count)
			}
		}
	}
	return savings
}

// MergeFederated builds the deployable candidate from the approved
// parts: the current tables plus the local moves of every approved
// cluster, plus the cross-cluster moves when approveCross. The merged
// candidate's impact is re-estimated so the journal records what the
// merged deploy — not the unrestricted global one — is expected to buy.
// Returns nil when nothing was approved (there is nothing to deploy).
func (m *Manager) MergeFederated(fc *FederatedCandidate, approved map[int]bool, approveCross bool) *Candidate {
	version := fc.Global.Plan.Version
	tables := cloneTables(fc.Current)
	any := false
	for _, cc := range fc.Clusters {
		if !approved[cc.Cluster] {
			continue
		}
		any = true
		applyMoves(tables, fc.localMoves[cc.Cluster], version)
	}
	if approveCross && len(fc.crossMoves) > 0 {
		any = true
		applyMoves(tables, fc.crossMoves, version)
	}
	if !any {
		return nil
	}
	return &Candidate{
		Tables: tables,
		Plan:   fc.Global.Plan,
		Impact: m.opt.EstimateImpact(fc.Global.Stats, fc.Current, tables),
		Stats:  fc.Global.Stats,
		Splits: fc.Global.Splits,
	}
}

// applyMoves rewrites the owner of every moved key.
func applyMoves(tables map[string]*routing.Table, moves []keyMove, version uint64) {
	for _, mv := range moves {
		setOwner(tables, mv.op, mv.key, mv.candInst, version)
	}
}

// setOwner points one key at one instance, creating the table if needed.
func setOwner(tables map[string]*routing.Table, op, key string, inst int, version uint64) {
	t := tables[op]
	if t == nil {
		t = &routing.Table{Version: version, Assign: make(map[string]int)}
		tables[op] = t
	}
	t.Assign[key] = inst
}

// tableKeys returns the sorted union of explicitly assigned keys of two
// tables for one operator.
func tableKeys(a, b *routing.Table) []string {
	seen := make(map[string]bool)
	var out []string
	for _, t := range []*routing.Table{a, b} {
		if t == nil {
			continue
		}
		for k := range t.Assign {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	sort.Strings(out)
	return out
}
