package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/topology"
)

// ConfigStore persists routing configurations before deployment. The
// paper's manager "saves all routing configurations to stable storage
// before starting reconfiguration" for fault tolerance (§3.4).
type ConfigStore interface {
	// Save persists one configuration version.
	Save(version uint64, tables map[string]*routing.Table) error
	// Load returns the highest saved version (ok == false when none).
	Load() (version uint64, tables map[string]*routing.Table, ok bool, err error)
}

// MemoryStore is an in-process ConfigStore, the default. Safe for
// concurrent use.
type MemoryStore struct {
	mu      sync.Mutex
	version uint64
	tables  map[string]*routing.Table
	saved   bool
}

// Save implements ConfigStore.
func (m *MemoryStore) Save(version uint64, tables map[string]*routing.Table) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.version = version
	m.tables = cloneTables(tables)
	m.saved = true
	return nil
}

// Load implements ConfigStore.
func (m *MemoryStore) Load() (uint64, map[string]*routing.Table, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.saved {
		return 0, nil, false, nil
	}
	return m.version, cloneTables(m.tables), true, nil
}

// FileStore persists configurations as JSON files in a directory, one
// file per version plus a "latest" pointer.
type FileStore struct {
	// Dir is the target directory (created on first save).
	Dir string
}

type storedConfig struct {
	Version uint64                    `json:"version"`
	Tables  map[string]map[string]int `json:"tables"`
}

// Save implements ConfigStore.
func (f *FileStore) Save(version uint64, tables map[string]*routing.Table) error {
	if err := os.MkdirAll(f.Dir, 0o755); err != nil {
		return fmt.Errorf("config store: %w", err)
	}
	cfg := storedConfig{Version: version, Tables: make(map[string]map[string]int, len(tables))}
	for op, t := range tables {
		cfg.Tables[op] = t.Assign
	}
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("config store: encode: %w", err)
	}
	path := filepath.Join(f.Dir, fmt.Sprintf("config-%06d.json", version))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("config store: %w", err)
	}
	// The "latest" pointer is written last so a crash mid-save never
	// points at a missing file.
	latest := filepath.Join(f.Dir, "latest.json")
	if err := os.WriteFile(latest, data, 0o644); err != nil {
		return fmt.Errorf("config store: %w", err)
	}
	return nil
}

// Load implements ConfigStore.
func (f *FileStore) Load() (uint64, map[string]*routing.Table, bool, error) {
	data, err := os.ReadFile(filepath.Join(f.Dir, "latest.json"))
	if os.IsNotExist(err) {
		return 0, nil, false, nil
	}
	if err != nil {
		return 0, nil, false, fmt.Errorf("config store: %w", err)
	}
	var cfg storedConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, nil, false, fmt.Errorf("config store: decode: %w", err)
	}
	tables := make(map[string]*routing.Table, len(cfg.Tables))
	for op, assign := range cfg.Tables {
		tables[op] = &routing.Table{Version: cfg.Version, Assign: assign}
	}
	return cfg.Version, tables, true, nil
}

func cloneTables(tables map[string]*routing.Table) map[string]*routing.Table {
	out := make(map[string]*routing.Table, len(tables))
	for op, t := range tables {
		out[op] = t.Clone()
	}
	return out
}

// ManagerOptions configure a Manager.
type ManagerOptions struct {
	// Optimizer options (alpha, max edges, seed, ...).
	Optimizer OptimizerOptions
	// Store persists configurations; nil selects an in-memory store.
	Store ConfigStore
}

// Manager is the coordinator of §3.3-3.4: it collects key-pair statistics
// from the running application, computes optimized routing tables, and
// deploys them with the online reconfiguration protocol. Not safe for
// concurrent use.
type Manager struct {
	eng    *engine.Live
	topo   *topology.Topology
	place  *cluster.Placement
	opt    *Optimizer
	store  ConfigStore
	tables map[string]*routing.Table
}

// NewManager returns a manager driving the given live engine.
func NewManager(eng *engine.Live, topo *topology.Topology, place *cluster.Placement, opts ManagerOptions) (*Manager, error) {
	opt, err := NewOptimizer(topo, place, opts.Optimizer)
	if err != nil {
		return nil, err
	}
	store := opts.Store
	if store == nil {
		store = &MemoryStore{}
	}
	return &Manager{
		eng:    eng,
		topo:   topo,
		place:  place,
		opt:    opt,
		store:  store,
		tables: make(map[string]*routing.Table),
	}, nil
}

// Reconfigure executes one full round of Algorithm 1: collect statistics
// (resetting the sketches), compute new routing tables, persist them, and
// deploy them online with state migration. It returns the optimizer's
// plan for the new configuration.
func (m *Manager) Reconfigure() (*Plan, error) {
	stats := m.eng.CollectPairStats()
	tables, plan, err := m.opt.ComputeTables(stats)
	if err != nil {
		return nil, err
	}
	if err := m.deploy(tables, plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// ReconfigureIfWorthwhile computes a candidate configuration and deploys
// it only when the impact estimator predicts the locality saving to
// amortize the migration cost (costPerKey tuple transfers per migrated
// key and statistics period). deployed reports the decision. Whatever the
// decision, the statistics sketches restart a new window, so a skipped
// reconfiguration is re-evaluated on fresh data next time — this guards
// against the "ephemeral correlations" the paper's conclusion warns
// about.
func (m *Manager) ReconfigureIfWorthwhile(costPerKey float64) (plan *Plan, impact Impact, deployed bool, err error) {
	stats := m.eng.CollectPairStats()
	tables, plan, err := m.opt.ComputeTables(stats)
	if err != nil {
		return nil, Impact{}, false, err
	}
	impact = m.opt.EstimateImpact(stats, m.tables, tables)
	if !impact.Worthwhile(costPerKey) {
		return plan, impact, false, nil
	}
	if err := m.deploy(tables, plan); err != nil {
		return nil, impact, false, err
	}
	return plan, impact, true, nil
}

// deploy persists and rolls out a computed configuration.
func (m *Manager) deploy(tables map[string]*routing.Table, plan *Plan) error {
	if err := m.store.Save(plan.Version, tables); err != nil {
		return fmt.Errorf("core: persist configuration: %w", err)
	}
	moves := make(map[string][]engine.KeyMove)
	for _, op := range affectedOps(m.tables, tables) {
		if opr := m.topo.Operator(op); opr == nil || !opr.Stateful {
			continue
		}
		n := m.place.Parallelism(op)
		for _, mv := range DiffTables(m.tables[op], tables[op], op, n) {
			moves[op] = append(moves[op], engine.KeyMove{Key: mv.Key, From: mv.From, To: mv.To})
		}
	}
	if err := m.eng.Reconfigure(engine.ReconfigPlan{Tables: tables, Moves: moves}); err != nil {
		return err
	}
	m.tables = tables
	return nil
}

// Tables returns a copy of the currently deployed routing tables.
func (m *Manager) Tables() map[string]*routing.Table { return cloneTables(m.tables) }

// affectedOps returns the union of operators named in either
// configuration, sorted.
func affectedOps(oldT, newT map[string]*routing.Table) []string {
	seen := make(map[string]bool)
	var out []string
	for op := range oldT {
		if !seen[op] {
			seen[op] = true
			out = append(out, op)
		}
	}
	for op := range newT {
		if !seen[op] {
			seen[op] = true
			out = append(out, op)
		}
	}
	sort.Strings(out)
	return out
}
