package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/topology"
)

// ConfigStore persists routing configurations across manager restarts.
// The paper's manager "saves all routing configurations to stable storage
// before starting reconfiguration" for fault tolerance (§3.4); the store
// therefore distinguishes a *saved* configuration (written before the
// deployment starts) from a *deployed* one (marked only after every
// instance acknowledged and migrated). Load returns the latest deployed
// configuration, so restart recovery never resurrects a configuration
// that failed to go live.
type ConfigStore interface {
	// Save persists one configuration version ahead of its deployment.
	Save(version uint64, tables map[string]*routing.Table) error
	// MarkDeployed records that a previously saved version went live. It
	// is an error to mark a version that was never saved.
	MarkDeployed(version uint64) error
	// Load returns the highest version marked deployed (ok == false when
	// none).
	Load() (version uint64, tables map[string]*routing.Table, ok bool, err error)
}

// MemoryStore is an in-process ConfigStore, the default. Safe for
// concurrent use.
type MemoryStore struct {
	mu       sync.Mutex
	saved    map[uint64]map[string]*routing.Table
	deployed uint64
	live     bool
}

// Save implements ConfigStore.
func (m *MemoryStore) Save(version uint64, tables map[string]*routing.Table) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.saved == nil {
		m.saved = make(map[uint64]map[string]*routing.Table)
	}
	m.saved[version] = cloneTables(tables)
	return nil
}

// MarkDeployed implements ConfigStore.
func (m *MemoryStore) MarkDeployed(version uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.saved[version]; !ok {
		return fmt.Errorf("config store: version %d was never saved", version)
	}
	m.deployed = version
	m.live = true
	return nil
}

// Load implements ConfigStore.
func (m *MemoryStore) Load() (uint64, map[string]*routing.Table, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.live {
		return 0, nil, false, nil
	}
	return m.deployed, cloneTables(m.saved[m.deployed]), true, nil
}

// FileStore persists configurations as JSON files in a directory, one
// file per version plus a "latest" pointer.
type FileStore struct {
	// Dir is the target directory (created on first save).
	Dir string
}

type storedConfig struct {
	Version uint64                    `json:"version"`
	Tables  map[string]map[string]int `json:"tables"`
}

// Save implements ConfigStore: it writes the version file but not the
// "latest" pointer, which only MarkDeployed advances. A crash between the
// two leaves "latest" at the previous deployed configuration — exactly
// what a restarted manager must recover.
func (f *FileStore) Save(version uint64, tables map[string]*routing.Table) error {
	if err := os.MkdirAll(f.Dir, 0o755); err != nil {
		return fmt.Errorf("config store: %w", err)
	}
	cfg := storedConfig{Version: version, Tables: make(map[string]map[string]int, len(tables))}
	for op, t := range tables {
		cfg.Tables[op] = t.Assign
	}
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("config store: encode: %w", err)
	}
	if err := os.WriteFile(f.versionPath(version), data, 0o644); err != nil {
		return fmt.Errorf("config store: %w", err)
	}
	return nil
}

// MarkDeployed implements ConfigStore: it points "latest" at the saved
// version file.
func (f *FileStore) MarkDeployed(version uint64) error {
	data, err := os.ReadFile(f.versionPath(version))
	if os.IsNotExist(err) {
		return fmt.Errorf("config store: version %d was never saved", version)
	}
	if err != nil {
		return fmt.Errorf("config store: %w", err)
	}
	if err := os.WriteFile(filepath.Join(f.Dir, "latest.json"), data, 0o644); err != nil {
		return fmt.Errorf("config store: %w", err)
	}
	return nil
}

func (f *FileStore) versionPath(version uint64) string {
	return filepath.Join(f.Dir, fmt.Sprintf("config-%06d.json", version))
}

// Load implements ConfigStore.
func (f *FileStore) Load() (uint64, map[string]*routing.Table, bool, error) {
	data, err := os.ReadFile(filepath.Join(f.Dir, "latest.json"))
	if os.IsNotExist(err) {
		return 0, nil, false, nil
	}
	if err != nil {
		return 0, nil, false, fmt.Errorf("config store: %w", err)
	}
	var cfg storedConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, nil, false, fmt.Errorf("config store: decode: %w", err)
	}
	tables := make(map[string]*routing.Table, len(cfg.Tables))
	for op, assign := range cfg.Tables {
		tables[op] = &routing.Table{Version: cfg.Version, Assign: assign}
	}
	return cfg.Version, tables, true, nil
}

func cloneTables(tables map[string]*routing.Table) map[string]*routing.Table {
	out := make(map[string]*routing.Table, len(tables))
	for op, t := range tables {
		out[op] = t.Clone()
	}
	return out
}

// ManagerOptions configure a Manager.
type ManagerOptions struct {
	// Optimizer options (alpha, max edges, seed, ...).
	Optimizer OptimizerOptions
	// Store persists configurations; nil selects an in-memory store.
	Store ConfigStore
}

// Manager is the coordinator of §3.3-3.4: it collects key-pair statistics
// from the running application, computes optimized routing tables, and
// deploys them with the online reconfiguration protocol. Not safe for
// concurrent use.
type Manager struct {
	eng    *engine.Live
	topo   *topology.Topology
	place  *cluster.Placement
	opt    *Optimizer
	store  ConfigStore
	tables map[string]*routing.Table
}

// NewManager returns a manager driving the given live engine.
func NewManager(eng *engine.Live, topo *topology.Topology, place *cluster.Placement, opts ManagerOptions) (*Manager, error) {
	opt, err := NewOptimizer(topo, place, opts.Optimizer)
	if err != nil {
		return nil, err
	}
	store := opts.Store
	if store == nil {
		store = &MemoryStore{}
	}
	return &Manager{
		eng:    eng,
		topo:   topo,
		place:  place,
		opt:    opt,
		store:  store,
		tables: make(map[string]*routing.Table),
	}, nil
}

// Candidate is a computed-but-not-deployed configuration: the tables, the
// optimizer's plan and the estimated impact of deploying it instead of
// keeping the current configuration. The control plane evaluates
// candidates against its hysteresis rules before committing to a deploy.
type Candidate struct {
	Tables map[string]*routing.Table
	Plan   *Plan
	Impact Impact
	// Stats is the statistics window the candidate was computed from;
	// the control plane's hot-key splitter reads per-key heat from it.
	Stats []engine.PairStat
	// Splits is the engine's split set at computation time; those keys
	// are pinned in Tables and excluded from the key graph.
	Splits []engine.SplitKeyInfo
}

// Candidate runs the measurement half of Algorithm 1: collect statistics
// (resetting the sketch window), compute candidate routing tables and
// estimate the deployment impact — without deploying anything. The window
// reset happens regardless of what the caller decides, so a skipped
// candidate is re-evaluated on fresh data next round; this guards against
// the "ephemeral correlations" the paper's conclusion warns about.
func (m *Manager) Candidate() (*Candidate, error) {
	stats := m.eng.CollectPairStats()
	splits := m.eng.SplitSnapshot()
	tables, plan, err := m.opt.ComputeTablesSplit(stats, splits)
	if err != nil {
		return nil, err
	}
	if m.opt.tieredEnabled() {
		// Two-level partitions are label-unstable across windows: align
		// the candidate's cluster labels with the deployed configuration
		// before estimating impact, so a cosmetic cluster swap never
		// masquerades as a full cross-cluster migration.
		m.alignClusters(m.tables, tables)
	}
	return &Candidate{
		Tables: tables,
		Plan:   plan,
		Impact: m.opt.EstimateImpact(stats, m.tables, tables),
		Stats:  stats,
		Splits: splits,
	}, nil
}

// DeployCandidate persists and rolls out a previously computed candidate.
func (m *Manager) DeployCandidate(c *Candidate) error {
	return m.deploy(c.Tables, c.Plan)
}

// Reconfigure executes one full round of Algorithm 1: collect statistics
// (resetting the sketches), compute new routing tables, persist them, and
// deploy them online with state migration. It returns the optimizer's
// plan for the new configuration.
func (m *Manager) Reconfigure() (*Plan, error) {
	c, err := m.Candidate()
	if err != nil {
		return nil, err
	}
	if err := m.DeployCandidate(c); err != nil {
		return nil, err
	}
	return c.Plan, nil
}

// ReconfigureIfWorthwhile computes a candidate configuration and deploys
// it only when the impact estimator predicts the locality saving to
// amortize the migration cost (costPerKey tuple transfers per migrated
// key and statistics period). deployed reports the decision. Whatever the
// decision, the statistics sketches restart a new window (see Candidate).
func (m *Manager) ReconfigureIfWorthwhile(costPerKey float64) (plan *Plan, impact Impact, deployed bool, err error) {
	c, err := m.Candidate()
	if err != nil {
		return nil, Impact{}, false, err
	}
	if !c.Impact.Worthwhile(costPerKey) {
		return c.Plan, c.Impact, false, nil
	}
	if err := m.DeployCandidate(c); err != nil {
		return nil, c.Impact, false, err
	}
	return c.Plan, c.Impact, true, nil
}

// Recover loads the latest deployed configuration from the store and
// re-deploys it to the engine, completing the §3.4 fault-tolerance story:
// a restarted manager resumes from the tables that were actually live,
// not from a candidate that never finished deploying. There is no state
// to migrate — a fresh engine starts empty — so the recovery is a pure
// routing-table rollout. ok reports whether a configuration was found.
func (m *Manager) Recover() (version uint64, ok bool, err error) {
	version, tables, ok, err := m.store.Load()
	if err != nil || !ok {
		return 0, false, err
	}
	if err := m.eng.Reconfigure(engine.ReconfigPlan{Tables: tables}); err != nil {
		return 0, false, fmt.Errorf("core: re-deploy recovered configuration: %w", err)
	}
	m.tables = tables
	// Future candidates must supersede the recovered version.
	m.opt.EnsureVersion(version)
	return version, true, nil
}

// deploy persists and rolls out a computed configuration. The candidate
// is saved to stable storage before the rollout starts (§3.4), but it
// becomes the recovery target only after the engine accepted it: marking
// it deployed first would let a restart resurrect a configuration that
// never went live.
func (m *Manager) deploy(tables map[string]*routing.Table, plan *Plan) error {
	if err := m.store.Save(plan.Version, tables); err != nil {
		return fmt.Errorf("core: persist configuration: %w", err)
	}
	moves := make(map[string][]engine.KeyMove)
	for _, op := range affectedOps(m.tables, tables) {
		if opr := m.topo.Operator(op); opr == nil || !opr.Stateful {
			continue
		}
		n := m.place.Parallelism(op)
		for _, mv := range DiffTables(m.tables[op], tables[op], op, n) {
			moves[op] = append(moves[op], engine.KeyMove{Key: mv.Key, From: mv.From, To: mv.To})
		}
	}
	if err := m.eng.Reconfigure(engine.ReconfigPlan{Tables: tables, Moves: moves}); err != nil {
		return err
	}
	m.tables = tables
	if err := m.store.MarkDeployed(plan.Version); err != nil {
		return fmt.Errorf("core: mark configuration deployed: %w", err)
	}
	return nil
}

// Tables returns a copy of the currently deployed routing tables.
func (m *Manager) Tables() map[string]*routing.Table { return cloneTables(m.tables) }

// SetActiveServers forwards the elastic membership to the optimizer
// (ascending; nil restores full capacity), so every future candidate
// assigns keys to active servers only.
func (m *Manager) SetActiveServers(active []int) { m.opt.SetActiveServers(active) }

// DeployRescale persists and rolls out a rescale plan: precomputed
// tables plus the exact key moves the planner chose — unlike deploy,
// no DiffTables pass, because a minimal-movement plan already knows its
// moves and a diff against tables carrying voluntary assignments would
// recompute the same set anyway. The migration runs through the same
// §3.4 protocol as an optimizer deployment: every leaving server is
// still attached and participates. Returns the version the plan was
// deployed as.
func (m *Manager) DeployRescale(tables map[string]*routing.Table, moves map[string][]engine.KeyMove) (uint64, error) {
	version := m.opt.NextVersion()
	adopted := cloneTables(tables)
	for _, t := range adopted {
		t.Version = version
	}
	if err := m.store.Save(version, adopted); err != nil {
		return 0, fmt.Errorf("core: persist rescale configuration: %w", err)
	}
	if err := m.eng.Reconfigure(engine.ReconfigPlan{Tables: adopted, Moves: moves}); err != nil {
		return 0, err
	}
	m.tables = adopted
	if err := m.store.MarkDeployed(version); err != nil {
		return 0, fmt.Errorf("core: mark rescale configuration deployed: %w", err)
	}
	return version, nil
}

// ApplyRepair adopts failure-recovery routing tables as the deployed
// configuration, outside the planned reconfiguration protocol (a dead
// server cannot acknowledge a propagation wave). The tables are stamped
// with a fresh version, persisted, and become the manager's deployed
// view — so the next optimization diffs against the post-recovery
// assignment instead of computing bogus migrations from dead instances.
// The caller installs the same tables into the engine
// (engine.UpdateTables) — the manager only owns the bookkeeping here.
func (m *Manager) ApplyRepair(tables map[string]*routing.Table) (uint64, error) {
	version := m.opt.NextVersion()
	adopted := cloneTables(tables)
	for _, t := range adopted {
		t.Version = version
	}
	if err := m.store.Save(version, adopted); err != nil {
		return 0, fmt.Errorf("core: persist repair configuration: %w", err)
	}
	m.tables = adopted
	if err := m.store.MarkDeployed(version); err != nil {
		return 0, fmt.Errorf("core: mark repair configuration deployed: %w", err)
	}
	return version, nil
}

// affectedOps returns the union of operators named in either
// configuration, sorted.
func affectedOps(oldT, newT map[string]*routing.Table) []string {
	seen := make(map[string]bool)
	var out []string
	for op := range oldT {
		if !seen[op] {
			seen[op] = true
			out = append(out, op)
		}
	}
	for op := range newT {
		if !seen[op] {
			seen[op] = true
			out = append(out, op)
		}
	}
	sort.Strings(out)
	return out
}
