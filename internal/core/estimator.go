package core

import (
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/routing"
)

// Impact estimates what deploying a candidate configuration would gain
// and cost. It implements the estimator the paper leaves as future work
// ("design estimators able to predict the impact of a reconfiguration to
// provide more fine-grained information to the manager", §6): when the
// workload is volatile, reconfiguring for ephemeral correlations costs
// more (state migration) than it saves (network traffic).
type Impact struct {
	// CurrentLocality is the expected locality of keeping the deployed
	// tables, evaluated on the fresh statistics.
	CurrentLocality float64
	// CandidateLocality is the expected locality of the candidate
	// tables on the same statistics.
	CandidateLocality float64
	// TrafficPerPeriod is the fields-grouped tuple volume observed over
	// the statistics window (the sketch totals).
	TrafficPerPeriod uint64
	// SavedTuplesPerPeriod estimates how many tuple transfers per
	// statistics period would move off the network.
	SavedTuplesPerPeriod float64
	// KeysToMigrate is the number of keys whose owner changes.
	KeysToMigrate int
}

// Worthwhile reports whether the estimated steady-state saving justifies
// the migration: the locality gain must save at least costPerKey tuple
// transfers per migrated key over one statistics period. costPerKey
// amortizes the migration (state transfer, buffering, coordination); the
// paper's observation that "deploying an updated configuration ... is
// extremely fast" (§4.4) argues for small values.
func (im Impact) Worthwhile(costPerKey float64) bool {
	if im.KeysToMigrate == 0 {
		return im.CandidateLocality > im.CurrentLocality
	}
	return im.SavedTuplesPerPeriod >= costPerKey*float64(im.KeysToMigrate)
}

// EstimateImpact evaluates candidate tables against the deployed ones
// over the given pair statistics. Both configurations are scored by
// summing, over every observed key pair, the pair's weight when the two
// keys resolve to the same server — the exact objective the partitioner
// optimizes, but evaluated with hash fallback and on whichever tables are
// provided.
func (o *Optimizer) EstimateImpact(stats []engine.PairStat, current, candidate map[string]*routing.Table) Impact {
	var (
		total      uint64
		curLocal   float64
		candLocal  float64
		movedKeys  = make(map[[2]string]bool)
		seenTables = func(tables map[string]*routing.Table, op string) *routing.Table {
			if tables == nil {
				return nil
			}
			return tables[op]
		}
	)
	for _, st := range stats {
		fromN := o.place.Parallelism(st.FromOp)
		toN := o.place.Parallelism(st.ToOp)
		if fromN == 0 || toN == 0 {
			continue
		}
		for _, p := range st.Pairs {
			total += p.Count

			curFrom := o.serverOfOwner(st.FromOp, Owner(seenTables(current, st.FromOp), st.FromOp, p.In, fromN))
			curTo := o.serverOfOwner(st.ToOp, Owner(seenTables(current, st.ToOp), st.ToOp, p.Out, toN))
			if curFrom == curTo {
				curLocal += float64(p.Count)
			}

			candFrom := o.serverOfOwner(st.FromOp, Owner(seenTables(candidate, st.FromOp), st.FromOp, p.In, fromN))
			candTo := o.serverOfOwner(st.ToOp, Owner(seenTables(candidate, st.ToOp), st.ToOp, p.Out, toN))
			if candFrom == candTo {
				candLocal += float64(p.Count)
			}

			// Track owner changes for both endpoint keys.
			if ownerChanged(seenTables(current, st.FromOp), seenTables(candidate, st.FromOp), st.FromOp, p.In, fromN) {
				movedKeys[[2]string{st.FromOp, p.In}] = true
			}
			if ownerChanged(seenTables(current, st.ToOp), seenTables(candidate, st.ToOp), st.ToOp, p.Out, toN) {
				movedKeys[[2]string{st.ToOp, p.Out}] = true
			}
		}
	}
	im := Impact{TrafficPerPeriod: total, KeysToMigrate: len(movedKeys)}
	if total > 0 {
		im.CurrentLocality = curLocal / float64(total)
		im.CandidateLocality = candLocal / float64(total)
		im.SavedTuplesPerPeriod = candLocal - curLocal
	}
	return im
}

// EstimateInterCluster scores two configurations by the pair weight
// that crosses clusters per statistics period — the volume the
// federation layer's cost gate prices. Both are evaluated with hash
// fallback, exactly like EstimateImpact scores same-server weight.
func (o *Optimizer) EstimateInterCluster(stats []engine.PairStat, a, b map[string]*routing.Table) (aCross, bCross float64) {
	tbl := func(tables map[string]*routing.Table, op string) *routing.Table {
		if tables == nil {
			return nil
		}
		return tables[op]
	}
	for _, st := range stats {
		fromN := o.place.Parallelism(st.FromOp)
		toN := o.place.Parallelism(st.ToOp)
		if fromN == 0 || toN == 0 {
			continue
		}
		for _, p := range st.Pairs {
			aFrom := o.serverOfOwner(st.FromOp, Owner(tbl(a, st.FromOp), st.FromOp, p.In, fromN))
			aTo := o.serverOfOwner(st.ToOp, Owner(tbl(a, st.ToOp), st.ToOp, p.Out, toN))
			if o.place.ClusterOf(aFrom) != o.place.ClusterOf(aTo) {
				aCross += float64(p.Count)
			}
			bFrom := o.serverOfOwner(st.FromOp, Owner(tbl(b, st.FromOp), st.FromOp, p.In, fromN))
			bTo := o.serverOfOwner(st.ToOp, Owner(tbl(b, st.ToOp), st.ToOp, p.Out, toN))
			if o.place.ClusterOf(bFrom) != o.place.ClusterOf(bTo) {
				bCross += float64(p.Count)
			}
		}
	}
	return aCross, bCross
}

func ownerChanged(cur, cand *routing.Table, op, key string, n int) bool {
	return Owner(cur, op, key, n) != Owner(cand, op, key, n)
}

// serverOfOwner maps an owning instance to its server.
func (o *Optimizer) serverOfOwner(op string, inst int) int {
	return o.place.ServerOf(op, inst)
}
