package core

import (
	"fmt"
	"strconv"
	"testing"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/spacesaving"
	"github.com/locastream/locastream/internal/topology"
)

func evalTopology(t testing.TB, parallelism int) (*topology.Topology, *cluster.Placement) {
	t.Helper()
	topo, err := topology.NewBuilder("eval").
		AddOperator(topology.Operator{Name: "A", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(0) }}).
		AddOperator(topology.Operator{Name: "B", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(1) }}).
		Connect("A", "B", topology.Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	place, err := cluster.NewRoundRobin(topo, parallelism)
	if err != nil {
		t.Fatal(err)
	}
	return topo, place
}

func pairStat(fromOp, toOp string, triples ...interface{}) engine.PairStat {
	st := engine.PairStat{FromOp: fromOp, ToOp: toOp}
	for i := 0; i+2 < len(triples)+1; i += 3 {
		st.Pairs = append(st.Pairs, spacesaving.PairCounter{
			In:    triples[i].(string),
			Out:   triples[i+1].(string),
			Count: uint64(triples[i+2].(int)),
		})
	}
	return st
}

func TestOptimizerValidation(t *testing.T) {
	topo, place := evalTopology(t, 2)
	if _, err := NewOptimizer(nil, place, OptimizerOptions{}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := NewOptimizer(topo, nil, OptimizerOptions{}); err == nil {
		t.Error("nil placement accepted")
	}
	if _, err := NewOptimizer(topo, place, OptimizerOptions{Alpha: 0.5}); err == nil {
		t.Error("alpha < 1 accepted")
	}

	o, err := NewOptimizer(topo, place, OptimizerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.ComputeTables([]engine.PairStat{pairStat("X", "B", "a", "b", 1)}); err == nil {
		t.Error("unknown FromOp accepted")
	}
	if _, _, err := o.ComputeTables([]engine.PairStat{pairStat("A", "Y", "a", "b", 1)}); err == nil {
		t.Error("unknown ToOp accepted")
	}
}

func TestOptimizerEmptyStats(t *testing.T) {
	topo, place := evalTopology(t, 2)
	o, _ := NewOptimizer(topo, place, OptimizerOptions{})
	tables, plan, err := o.ComputeTables(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 0 {
		t.Fatalf("tables = %v, want empty", tables)
	}
	if plan.Version != 1 || plan.Keys != 0 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestOptimizerCoLocatesCorrelatedKeys(t *testing.T) {
	// The Fig. 4/5 scenario: Asia correlates with #java and #ruby,
	// Oceania with #python. The optimizer must put each cluster's keys
	// on the same server.
	topo, place := evalTopology(t, 2)
	o, _ := NewOptimizer(topo, place, OptimizerOptions{Seed: 1})
	tables, plan, err := o.ComputeTables([]engine.PairStat{
		pairStat("A", "B",
			"Asia", "#java", 3463,
			"Asia", "#ruby", 3011,
			"Africa", "#python", 2923,
			"Oceania", "#python", 3108,
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := tables["A"], tables["B"]
	if ta == nil || tb == nil {
		t.Fatalf("missing tables: %v", tables)
	}
	serverOfA := func(k string) int { return place.ServerOf("A", ta.Assign[k]) }
	serverOfB := func(k string) int { return place.ServerOf("B", tb.Assign[k]) }

	if serverOfA("Asia") != serverOfB("#java") {
		t.Error("Asia and #java not co-located")
	}
	if serverOfA("Asia") != serverOfB("#ruby") {
		t.Error("Asia and #ruby not co-located")
	}
	if serverOfA("Oceania") != serverOfB("#python") {
		t.Error("Oceania and #python not co-located")
	}
	if serverOfA("Africa") != serverOfB("#python") {
		t.Error("Africa and #python not co-located")
	}
	// Two clusters of nearly equal weight: they must use both servers.
	if serverOfA("Asia") == serverOfA("Oceania") {
		t.Error("both clusters on one server: load not balanced")
	}
	if plan.ExpectedLocality != 1.0 {
		t.Errorf("ExpectedLocality = %f, want 1 (no cut needed)", plan.ExpectedLocality)
	}
	if plan.Keys != 6 || plan.Edges != 4 {
		t.Errorf("plan = %+v", plan)
	}
}

func TestOptimizerVersionIncrements(t *testing.T) {
	topo, place := evalTopology(t, 2)
	o, _ := NewOptimizer(topo, place, OptimizerOptions{})
	_, p1, _ := o.ComputeTables(nil)
	_, p2, _ := o.ComputeTables(nil)
	if p1.Version != 1 || p2.Version != 2 || o.Version() != 2 {
		t.Fatalf("versions %d %d %d", p1.Version, p2.Version, o.Version())
	}
}

func TestOptimizerMaxEdges(t *testing.T) {
	topo, place := evalTopology(t, 2)
	o, _ := NewOptimizer(topo, place, OptimizerOptions{MaxEdges: 1, Seed: 3})
	_, plan, err := o.ComputeTables([]engine.PairStat{
		pairStat("A", "B", "a", "x", 100, "b", "y", 50, "c", "z", 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Edges != 1 {
		t.Fatalf("Edges = %d, want 1 (MaxEdges)", plan.Edges)
	}
	if plan.Keys != 2 {
		t.Fatalf("Keys = %d, want 2", plan.Keys)
	}
}

func TestOptimizerBalancesLoad(t *testing.T) {
	// Many uncorrelated pairs of equal weight: the partition must
	// respect the alpha bound.
	topo, place := evalTopology(t, 4)
	o, _ := NewOptimizer(topo, place, OptimizerOptions{Alpha: 1.03, Seed: 5})
	var pairs []spacesaving.PairCounter
	for i := 0; i < 200; i++ {
		pairs = append(pairs, spacesaving.PairCounter{
			In: fmt.Sprintf("in%d", i), Out: fmt.Sprintf("out%d", i), Count: 10,
		})
	}
	_, plan, err := o.ComputeTables([]engine.PairStat{{FromOp: "A", ToOp: "B", Pairs: pairs}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Imbalance > 1.1 {
		t.Fatalf("Imbalance = %f, want <= 1.1", plan.Imbalance)
	}
	if plan.ExpectedLocality != 1.0 {
		t.Fatalf("ExpectedLocality = %f, want 1 (pairs are disjoint)", plan.ExpectedLocality)
	}
}

func TestOptimizerTablesImproveSimLocality(t *testing.T) {
	// End-to-end: run the simulator with hash routing, collect stats,
	// optimize, rerun with tables: locality must rise well above 1/n.
	const n = 4
	topo, place := evalTopology(t, n)
	policies, err := engine.NewPolicies(topo, place, engine.FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	src, err := engine.NewSourcePolicy(topo, place, topology.Fields, engine.FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := engine.NewSim(engine.SimConfig{
		Topology: topo, Placement: place,
		Policies: policies, SourcePolicy: src,
		SourceKeyField: 0, SketchCapacity: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Perfectly correlated workload: key pairs (i, i').
	inject := func() {
		for i := 0; i < 8000; i++ {
			k := strconv.Itoa(i % 16)
			sim.Inject(topology.Tuple{Values: []string{k, k + "'"}})
		}
	}
	inject()
	before := sim.FieldsTraffic().Locality()

	o, _ := NewOptimizer(topo, place, OptimizerOptions{Seed: 7})
	tables, plan, err := o.ComputeTables(sim.PairStats(true))
	if err != nil {
		t.Fatal(err)
	}
	if plan.ExpectedLocality != 1.0 {
		t.Fatalf("ExpectedLocality = %f, want 1", plan.ExpectedLocality)
	}
	sim.ApplyTables(tables)
	sim.ResetWindow()
	inject()
	after := sim.FieldsTraffic().Locality()

	if after != 1.0 {
		t.Fatalf("locality after optimization = %f, want 1.0 (before %f)", after, before)
	}
	if before > 0.6 {
		t.Fatalf("hash-fallback locality suspiciously high: %f", before)
	}
}

func TestOwner(t *testing.T) {
	table := &routing.Table{Assign: map[string]int{"a": 2, "bad": 9}}
	if Owner(table, "B", "a", 4) != 2 {
		t.Error("table entry not used")
	}
	if got, want := Owner(table, "B", "zzz", 4), routing.SaltedHashKey("B", "zzz", 4); got != want {
		t.Error("hash fallback not used for missing key")
	}
	if got, want := Owner(table, "B", "bad", 4), routing.SaltedHashKey("B", "bad", 4); got != want {
		t.Error("invalid entry should fall back to hash")
	}
	if got, want := Owner(nil, "B", "a", 4), routing.SaltedHashKey("B", "a", 4); got != want {
		t.Error("nil table should hash")
	}
}

func TestDiffTables(t *testing.T) {
	oldT := &routing.Table{Assign: map[string]int{"a": 0, "b": 1, "c": 2}}
	newT := &routing.Table{Assign: map[string]int{"a": 1, "b": 1}}
	moves := DiffTables(oldT, newT, "B", 4)

	want := map[string][2]int{
		"a": {0, 1},
		"c": {2, Owner(nil, "B", "c", 4)},
	}
	// b stays at 1: no move. c drops out of the table: moves to hash
	// owner unless the hash already places it at 2.
	if Owner(nil, "B", "c", 4) == 2 {
		delete(want, "c")
	}
	if len(moves) != len(want) {
		t.Fatalf("moves = %+v, want %d entries", moves, len(want))
	}
	for _, m := range moves {
		w, ok := want[m.Key]
		if !ok || m.From != w[0] || m.To != w[1] {
			t.Errorf("unexpected move %+v", m)
		}
	}
	// Determinism: sorted by key.
	for i := 1; i < len(moves); i++ {
		if moves[i-1].Key >= moves[i].Key {
			t.Error("moves not sorted")
		}
	}
}

func TestDiffTablesNilCases(t *testing.T) {
	if moves := DiffTables(nil, nil, "B", 4); len(moves) != 0 {
		t.Fatalf("nil/nil diff = %v", moves)
	}
	newT := &routing.Table{Assign: map[string]int{"k": 3}}
	moves := DiffTables(nil, newT, "B", 4)
	if Owner(nil, "B", "k", 4) == 3 {
		if len(moves) != 0 {
			t.Fatalf("no-op move reported: %v", moves)
		}
	} else if len(moves) != 1 || moves[0].To != 3 {
		t.Fatalf("moves = %v", moves)
	}
}

func TestMovesByInstance(t *testing.T) {
	moves := []KeyMove{
		{Key: "a", From: 0, To: 1},
		{Key: "b", From: 0, To: 2},
		{Key: "c", From: 2, To: 0},
		{Key: "x", From: -1, To: 9}, // invalid, dropped
	}
	send, recv := MovesByInstance(moves, 3)
	if send[0]["a"] != 1 || send[0]["b"] != 2 || send[2]["c"] != 0 {
		t.Fatalf("send = %v", send)
	}
	if recv[1]["a"] != 0 || recv[2]["b"] != 0 || recv[0]["c"] != 2 {
		t.Fatalf("recv = %v", recv)
	}
	if len(send[1]) != 0 {
		t.Fatalf("instance 1 should send nothing: %v", send[1])
	}
}
