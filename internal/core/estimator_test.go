package core

import (
	"strconv"
	"testing"

	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/spacesaving"
	"github.com/locastream/locastream/internal/topology"
)

func TestEstimateImpactFromHashToOptimal(t *testing.T) {
	topo, place := evalTopology(t, 2)
	o, err := NewOptimizer(topo, place, OptimizerOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	stats := []engine.PairStat{pairStat("A", "B",
		"Asia", "#java", 1000,
		"Oceania", "#python", 1000,
	)}
	candidate, _, err := o.ComputeTables(stats)
	if err != nil {
		t.Fatal(err)
	}

	im := o.EstimateImpact(stats, nil, candidate)
	if im.TrafficPerPeriod != 2000 {
		t.Fatalf("TrafficPerPeriod = %d", im.TrafficPerPeriod)
	}
	if im.CandidateLocality != 1.0 {
		t.Fatalf("CandidateLocality = %f, want 1 (disjoint clusters)", im.CandidateLocality)
	}
	if im.CandidateLocality < im.CurrentLocality {
		t.Fatalf("candidate %f worse than hash baseline %f", im.CandidateLocality, im.CurrentLocality)
	}
	if im.SavedTuplesPerPeriod < 0 {
		t.Fatalf("SavedTuplesPerPeriod = %f", im.SavedTuplesPerPeriod)
	}
}

func TestEstimateImpactNoChangeNoMigration(t *testing.T) {
	topo, place := evalTopology(t, 2)
	o, _ := NewOptimizer(topo, place, OptimizerOptions{Seed: 1})
	stats := []engine.PairStat{pairStat("A", "B", "k", "v", 100)}
	tables, _, err := o.ComputeTables(stats)
	if err != nil {
		t.Fatal(err)
	}
	im := o.EstimateImpact(stats, tables, tables)
	if im.KeysToMigrate != 0 {
		t.Fatalf("KeysToMigrate = %d for identical tables", im.KeysToMigrate)
	}
	if im.SavedTuplesPerPeriod != 0 {
		t.Fatalf("SavedTuplesPerPeriod = %f", im.SavedTuplesPerPeriod)
	}
	if im.Worthwhile(1) {
		t.Fatal("identical configuration should not be worthwhile")
	}
}

func TestEstimateImpactSkipsUnknownOps(t *testing.T) {
	topo, place := evalTopology(t, 2)
	o, _ := NewOptimizer(topo, place, OptimizerOptions{})
	stats := []engine.PairStat{{FromOp: "ghost", ToOp: "B",
		Pairs: []spacesaving.PairCounter{{In: "x", Out: "y", Count: 5}}}}
	im := o.EstimateImpact(stats, nil, nil)
	if im.TrafficPerPeriod != 0 {
		t.Fatalf("unknown op contributed traffic: %+v", im)
	}
}

func TestImpactWorthwhileThreshold(t *testing.T) {
	im := Impact{
		SavedTuplesPerPeriod: 100,
		KeysToMigrate:        10,
	}
	if !im.Worthwhile(10) {
		t.Error("saving 100 for 10 keys at cost 10/key should be worthwhile")
	}
	if im.Worthwhile(11) {
		t.Error("cost 11/key should not be worthwhile")
	}
	gainOnly := Impact{CurrentLocality: 0.2, CandidateLocality: 0.5}
	if !gainOnly.Worthwhile(1000) {
		t.Error("zero-migration improvements are always worthwhile")
	}
}

func TestManagerReconfigureIfWorthwhile(t *testing.T) {
	const parallelism = 3
	live, topo, place := newLiveEval(t, parallelism)
	mgr, err := NewManager(live, topo, place, ManagerOptions{
		Optimizer: OptimizerOptions{Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Strongly correlated traffic: reconfiguration must be deployed.
	for i := 0; i < 3000; i++ {
		k := strconv.Itoa(i % 9)
		_ = live.Inject(topology.Tuple{Values: []string{k, "t" + k}})
	}
	live.Drain()
	plan, impact, deployed, err := mgr.ReconfigureIfWorthwhile(1)
	if err != nil {
		t.Fatal(err)
	}
	if !deployed {
		t.Fatalf("correlated workload not deployed: impact %+v", impact)
	}
	if plan == nil || plan.Version != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	if len(mgr.Tables()) == 0 {
		t.Fatal("tables not installed")
	}

	// Re-running immediately on an empty statistics window: nothing to
	// gain, so the candidate must be skipped.
	_, impact, deployed, err = mgr.ReconfigureIfWorthwhile(1)
	if err != nil {
		t.Fatal(err)
	}
	if deployed {
		t.Fatalf("empty window deployed anyway: impact %+v", impact)
	}
	// The deployed configuration must remain the first one.
	if v := mgr.Tables()["B"].Version; v != 1 {
		t.Fatalf("deployed version = %d, want 1", v)
	}
}
