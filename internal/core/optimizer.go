// Package core implements the paper's primary contribution: the manager
// that turns key-pair statistics into locality-aware routing tables
// (§3.3) and deploys them online with the DAG-ordered reconfiguration and
// state-migration protocol of §3.4 (Algorithm 1).
package core

import (
	"fmt"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/keygraph"
	"github.com/locastream/locastream/internal/partition"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/spacesaving"
	"github.com/locastream/locastream/internal/topology"
)

// OptimizerOptions tune the routing-table computation.
type OptimizerOptions struct {
	// Alpha is the load-imbalance bound passed to the partitioner. Zero
	// selects the paper's 1.03 (Metis default, §4.3).
	Alpha float64
	// MaxEdges bounds how many of the heaviest key pairs are considered
	// per operator pair (Fig. 12 studies this knob). Zero keeps all.
	MaxEdges int
	// Seed makes partitioning deterministic.
	Seed int64
	// CoarsenTo and RefinePasses are forwarded to the partitioner (zero
	// selects its defaults).
	CoarsenTo    int
	RefinePasses int
	// RackAware partitions hierarchically when the placement defines
	// more than one rack: keys are first split across racks (minimizing
	// the expensive inter-rack traffic) and then across each rack's
	// servers — the extension sketched in the paper's conclusion.
	RackAware bool
	// ClusterBlind partitions flat even when the placement defines
	// several clusters — the baseline for measuring what the two-level
	// cluster partition buys. Cluster traffic accounting and simulation
	// costs still apply; only the partitioner ignores the boundary.
	ClusterBlind bool
}

// Plan reports what a computed configuration promises. The expected
// locality is the one Metis reports in the paper ("Metis reports an
// expected locality of 75%", §4.3) — achieved locality on future data is
// lower because unseen keys fall back to hashing.
type Plan struct {
	// Version is the monotonically increasing configuration number.
	Version uint64
	// ExpectedLocality is 1 - cut/total over the statistics the tables
	// were computed from.
	ExpectedLocality float64
	// Imbalance is the partitioner's max/avg vertex-weight ratio.
	Imbalance float64
	// Keys is the number of distinct keys assigned.
	Keys int
	// Edges is the number of key pairs considered.
	Edges int
}

// Optimizer computes locality-aware routing tables from collected
// statistics. Not safe for concurrent use.
type Optimizer struct {
	topo    *topology.Topology
	place   *cluster.Placement
	opts    OptimizerOptions
	version uint64
	// active, when non-nil, restricts partitioning to these servers
	// (ascending) — the elastic membership. Nil means every server.
	active []int
}

// SetActiveServers restricts the next table computations to the given
// servers (ascending; nil restores full capacity). With a restricted
// membership the partitioner builds K=len(active) parts and maps part i
// to active[i], so no key is ever assigned to a parked server.
func (o *Optimizer) SetActiveServers(active []int) {
	if active == nil {
		o.active = nil
		return
	}
	o.active = append([]int(nil), active...)
}

// NewOptimizer returns an optimizer for the given deployment.
func NewOptimizer(topo *topology.Topology, place *cluster.Placement, opts OptimizerOptions) (*Optimizer, error) {
	if topo == nil || place == nil {
		return nil, fmt.Errorf("core: optimizer needs a topology and a placement")
	}
	if opts.Alpha == 0 {
		opts.Alpha = partition.DefaultAlpha
	}
	if opts.Alpha < 1 {
		return nil, fmt.Errorf("core: alpha %f < 1", opts.Alpha)
	}
	return &Optimizer{topo: topo, place: place, opts: opts}, nil
}

// ComputeTables builds the key graph from the statistics, partitions it
// across servers, and derives one routing table per operator named in the
// statistics. Keys absent from the tables keep hash routing (§3.3).
func (o *Optimizer) ComputeTables(stats []engine.PairStat) (map[string]*routing.Table, *Plan, error) {
	return o.ComputeTablesSplit(stats, nil)
}

// ComputeTablesSplit is ComputeTables with the currently split hot keys
// pinned: their pairs are excluded from the key graph (a key routed
// 2-of-d-choices has no single locality to optimize, and its enormous
// weight would dominate the partitioner's balance objective), and each
// split key is pinned to its current owner in the resulting tables so a
// deployment never migrates half a hot key while replicas hold partials.
func (o *Optimizer) ComputeTablesSplit(stats []engine.PairStat, splits []engine.SplitKeyInfo) (map[string]*routing.Table, *Plan, error) {
	o.version++
	plan := &Plan{Version: o.version, Imbalance: 1}

	splitKeys := make(map[string]map[string]int, len(splits))
	for _, s := range splits {
		if len(s.Replicas) == 0 {
			continue
		}
		if splitKeys[s.Op] == nil {
			splitKeys[s.Op] = make(map[string]int)
		}
		splitKeys[s.Op][s.Key] = s.Replicas[0]
	}

	g := keygraph.New()
	for _, st := range stats {
		if o.place.Parallelism(st.FromOp) == 0 {
			return nil, nil, fmt.Errorf("core: statistics mention unknown operator %q", st.FromOp)
		}
		if o.place.Parallelism(st.ToOp) == 0 {
			return nil, nil, fmt.Errorf("core: statistics mention unknown operator %q", st.ToOp)
		}
		g.AddPairs(st.FromOp, st.ToOp, filterSplitPairs(st, splitKeys), o.opts.MaxEdges)
	}
	plan.Keys = g.NumVertices()
	plan.Edges = g.NumEdges()
	if g.NumVertices() == 0 {
		// Nothing observed: empty tables, pure hash routing — with split
		// keys still pinned at their owners.
		tables := map[string]*routing.Table{}
		o.pinSplitKeys(tables, splitKeys, plan)
		return tables, plan, nil
	}

	ids, weights, adjRaw := g.CSR()
	adj := make([][]partition.Adj, len(adjRaw))
	for i, list := range adjRaw {
		conv := make([]partition.Adj, len(list))
		for j, a := range list {
			conv[j] = partition.Adj{To: a.To, Weight: a.Weight}
		}
		adj[i] = conv
	}
	servers := o.active // nil: all servers, identity part->server map
	popts := partition.Options{
		K:            o.place.Servers(),
		Alpha:        o.opts.Alpha,
		Seed:         o.opts.Seed,
		CoarsenTo:    o.opts.CoarsenTo,
		RefinePasses: o.opts.RefinePasses,
	}
	if servers != nil {
		popts.K = len(servers)
	}
	pg := &partition.Graph{Weights: weights, Adj: adj}
	var (
		res *partition.Result
		err error
	)
	// Hierarchical partitioning assumes the full server set; a
	// restricted elastic membership partitions flat until the cluster is
	// back at capacity. A placement with several clusters partitions
	// keys→cluster first (the cross-region link dominates every other
	// cost) unless ClusterBlind asks for the flat baseline; the rack
	// level additionally needs RackAware.
	switch {
	case o.place.Clusters() > 1 && !o.opts.ClusterBlind && servers == nil:
		res, err = partition.Tiered(pg, o.place.RackAssignment(), o.place.ClusterAssignment(), popts)
	case o.opts.RackAware && o.place.Racks() > 1 && servers == nil:
		res, err = partition.Hierarchical(pg, o.place.RackAssignment(), popts)
	default:
		res, err = partition.Partition(pg, popts)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("core: partition key graph: %w", err)
	}
	if tw := g.TotalEdgeWeight(); tw > 0 {
		plan.ExpectedLocality = 1 - float64(res.CutWeight)/float64(tw)
	}
	plan.Imbalance = res.Imbalance

	tables := make(map[string]*routing.Table)
	for i, id := range ids {
		server := res.Parts[i]
		if servers != nil {
			server = servers[res.Parts[i]]
		}
		inst, ok := o.instanceOn(id.Op, server, id.Key)
		if !ok {
			// No instance of this operator on the chosen server (only
			// possible with sparse placements): leave the key to hash
			// fallback.
			continue
		}
		table := tables[id.Op]
		if table == nil {
			table = &routing.Table{Version: o.version, Assign: make(map[string]int)}
			tables[id.Op] = table
		}
		table.Assign[id.Key] = inst
	}
	o.pinSplitKeys(tables, splitKeys, plan)
	return tables, plan, nil
}

// filterSplitPairs drops key pairs touching a split key on either side
// before they enter the key graph. It aliases the input slice when
// nothing is dropped, so the common unsplit case copies nothing.
func filterSplitPairs(st engine.PairStat, splitKeys map[string]map[string]int) []spacesaving.PairCounter {
	fromSplit, toSplit := splitKeys[st.FromOp], splitKeys[st.ToOp]
	if len(fromSplit) == 0 && len(toSplit) == 0 {
		return st.Pairs
	}
	touches := func(p spacesaving.PairCounter) bool {
		if _, ok := fromSplit[p.In]; ok {
			return true
		}
		_, ok := toSplit[p.Out]
		return ok
	}
	keep := st.Pairs
	for i, p := range st.Pairs {
		if touches(p) {
			keep = append(make([]spacesaving.PairCounter, 0, len(st.Pairs)-1), st.Pairs[:i]...)
			for _, q := range st.Pairs[i+1:] {
				if !touches(q) {
					keep = append(keep, q)
				}
			}
			break
		}
	}
	return keep
}

// pinSplitKeys forces every split key to its current owner in the
// candidate tables, overriding whatever the partitioner decided for
// other keys of the same operator. DiffTables then sees from == to for
// the key and plans no migration.
func (o *Optimizer) pinSplitKeys(tables map[string]*routing.Table, splitKeys map[string]map[string]int, plan *Plan) {
	for op, keys := range splitKeys {
		table := tables[op]
		if table == nil {
			table = &routing.Table{Version: plan.Version, Assign: make(map[string]int, len(keys))}
			tables[op] = table
		}
		for key, owner := range keys {
			table.Assign[key] = owner
		}
	}
}

// tieredEnabled reports whether the two-level cluster partition is in
// effect: a multi-cluster placement, not cluster-blind, and the full
// (non-elastic) membership — the first case of the partition switch.
func (o *Optimizer) tieredEnabled() bool {
	return o.place.Clusters() > 1 && !o.opts.ClusterBlind && o.active == nil
}

// instanceOn picks the instance of op on the given server that should own
// key. When several instances are co-located the key hash spreads keys
// among them.
func (o *Optimizer) instanceOn(op string, server int, key string) (int, bool) {
	insts := o.place.InstancesOn(op, server)
	if len(insts) == 0 {
		return 0, false
	}
	return insts[routing.HashKey(key, len(insts))], true
}

// Version returns the last computed configuration version.
func (o *Optimizer) Version() uint64 { return o.version }

// NextVersion allocates and returns a fresh configuration version, used
// by out-of-band table changes (failure repair) so they supersede the
// last optimized configuration and are superseded by the next one.
func (o *Optimizer) NextVersion() uint64 {
	o.version++
	return o.version
}

// EnsureVersion raises the version counter to at least v, so that
// configurations computed after recovering version v supersede it.
func (o *Optimizer) EnsureVersion(v uint64) {
	if o.version < v {
		o.version = v
	}
}
