package core

import (
	"sort"

	"github.com/locastream/locastream/internal/routing"
)

// Owner resolves the instance owning key under a routing table with hash
// fallback — the effective fields-grouping function of §3.3. table may be
// nil (pure hashing). op is the recipient operator name, used to salt the
// fallback hash exactly like the routing policies do.
func Owner(table *routing.Table, op, key string, instances int) int {
	if table != nil {
		if idx, ok := table.Assign[key]; ok && idx >= 0 && idx < instances {
			return idx
		}
	}
	return routing.SaltedHashKey(op, key, instances)
}

// KeyMove records one key changing owner between two configurations.
type KeyMove struct {
	Key  string
	From int
	To   int
}

// DiffTables computes the keys whose owner changes when newT replaces
// oldT for operator op with the given instance count. Only keys named in
// either table can change owners (all other keys hash identically under
// both configurations). Moves are sorted by key for determinism.
func DiffTables(oldT, newT *routing.Table, op string, instances int) []KeyMove {
	keys := make(map[string]struct{})
	if oldT != nil {
		for k := range oldT.Assign {
			keys[k] = struct{}{}
		}
	}
	if newT != nil {
		for k := range newT.Assign {
			keys[k] = struct{}{}
		}
	}
	var moves []KeyMove
	for k := range keys {
		from := Owner(oldT, op, k, instances)
		to := Owner(newT, op, k, instances)
		if from != to {
			moves = append(moves, KeyMove{Key: k, From: from, To: to})
		}
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].Key < moves[j].Key })
	return moves
}

// MovesByInstance groups moves into per-instance send lists (keys the
// instance must transfer out, with recipients) and receive lists (keys
// whose state the instance must await, with senders).
func MovesByInstance(moves []KeyMove, instances int) (send, recv []map[string]int) {
	send = make([]map[string]int, instances)
	recv = make([]map[string]int, instances)
	for i := 0; i < instances; i++ {
		send[i] = make(map[string]int)
		recv[i] = make(map[string]int)
	}
	for _, m := range moves {
		if m.From < 0 || m.From >= instances || m.To < 0 || m.To >= instances {
			continue
		}
		send[m.From][m.Key] = m.To
		recv[m.To][m.Key] = m.From
	}
	return send, recv
}
