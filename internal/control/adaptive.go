package control

import (
	"fmt"
	"time"
)

// This file is the control-plane half of adaptive wire flushing: on
// every tick the tuner reads the in-flight tuple depth from the tick's
// snapshot and retunes the transport's batching policy through the
// engine's flush API. Sustained pressure widens batches — a larger
// flush-bytes threshold and a longer interval amortize more frames per
// writev syscall, trading latency for throughput exactly when latency
// is already queue-dominated. A sustained idle stream walks the policy
// back toward the latency floor. Both transitions sit behind the same
// confirmation/cooldown hysteresis the deployment decision uses, so one
// bursty window cannot thrash the policy, and every applied retune is
// journaled with the signal that drove it.

// FlushOptions tune the adaptive flush tuner. The zero value disables
// it.
type FlushOptions struct {
	// Enabled turns the tuner on (requires an attached flush engine,
	// i.e. a TCP fabric).
	Enabled bool
	// HighWater is the in-flight tuple depth at or above which a window
	// counts as pressured (default 4096).
	HighWater int64
	// LowWater is the in-flight depth at or below which a window counts
	// as idle (default 256). Windows between the two watermarks reset
	// both streaks — the dead band of the hysteresis.
	LowWater int64
	// Step is the multiplicative factor applied per retune (default 2):
	// pressured windows multiply flush bytes and interval by Step, idle
	// windows divide by it.
	Step float64
	// Confirm is the number of consecutive pressured (idle) windows
	// required before the policy widens (tightens) — default 2.
	Confirm int
	// Cooldown is the number of ticks the tuner holds off after a
	// retune, letting the new policy show up in the signals before it
	// is judged (default 2).
	Cooldown int
	// MinBytes/MaxBytes bound the byte threshold the tuner will set
	// (defaults 4KiB and 1MiB). The transport clamps again on its own
	// wider envelope, so the tuner's band is the effective one.
	MinBytes int
	MaxBytes int
	// MinInterval/MaxInterval bound the flush interval the tuner will
	// set (defaults 200µs and 20ms).
	MinInterval time.Duration
	MaxInterval time.Duration
}

func (o *FlushOptions) defaults() {
	if o.HighWater <= 0 {
		o.HighWater = 4096
	}
	if o.LowWater <= 0 || o.LowWater >= o.HighWater {
		o.LowWater = o.HighWater / 16
	}
	if o.Step <= 1 {
		o.Step = 2
	}
	if o.Confirm < 1 {
		o.Confirm = 2
	}
	if o.Cooldown < 0 {
		o.Cooldown = 2
	}
	if o.MinBytes <= 0 {
		o.MinBytes = 4 << 10
	}
	if o.MaxBytes < o.MinBytes {
		o.MaxBytes = 1 << 20
	}
	if o.MinInterval <= 0 {
		o.MinInterval = 200 * time.Microsecond
	}
	if o.MaxInterval < o.MinInterval {
		o.MaxInterval = 20 * time.Millisecond
	}
}

// FlushEngine is the engine surface the tuner drives; *engine.Live
// implements it.
type FlushEngine interface {
	// WireFlushPolicy returns the transport's current batching
	// thresholds (zeros without a TCP fabric).
	WireFlushPolicy() (bytes int, interval time.Duration)
	// SetWireFlushPolicy retunes the thresholds on every node.
	SetWireFlushPolicy(bytes int, interval time.Duration)
}

// flushTuner holds the hysteresis state of the adaptive flush loop.
type flushTuner struct {
	opts FlushOptions
	eng  FlushEngine

	highStreak   int
	lowStreak    int
	cooldownLeft int
}

func newFlushTuner(eng FlushEngine, opts FlushOptions) *flushTuner {
	opts.defaults()
	return &flushTuner{opts: opts, eng: eng}
}

// run evaluates one tick's snapshot and applies at most one retune. It
// returns the journal entry for an applied retune (ok=false most
// ticks).
func (t *flushTuner) run(snap Snapshot, now time.Time, seq int, version uint64) (Decision, bool) {
	if t.cooldownLeft > 0 {
		t.cooldownLeft--
		return Decision{}, false
	}
	curBytes, curInterval := t.eng.WireFlushPolicy()
	if curBytes <= 0 || curInterval <= 0 {
		// No TCP fabric behind the engine; nothing to tune.
		return Decision{}, false
	}

	var dir string
	switch {
	case snap.InFlight >= t.opts.HighWater:
		t.highStreak++
		t.lowStreak = 0
		if t.highStreak < t.opts.Confirm {
			return Decision{}, false
		}
		dir = "widened"
	case snap.InFlight <= t.opts.LowWater:
		t.lowStreak++
		t.highStreak = 0
		if t.lowStreak < t.opts.Confirm {
			return Decision{}, false
		}
		dir = "tightened"
	default:
		t.highStreak, t.lowStreak = 0, 0
		return Decision{}, false
	}

	wantBytes, wantInterval := curBytes, curInterval
	if dir == "widened" {
		wantBytes = clampInt(int(float64(curBytes)*t.opts.Step), t.opts.MinBytes, t.opts.MaxBytes)
		wantInterval = clampDur(time.Duration(float64(curInterval)*t.opts.Step), t.opts.MinInterval, t.opts.MaxInterval)
	} else {
		wantBytes = clampInt(int(float64(curBytes)/t.opts.Step), t.opts.MinBytes, t.opts.MaxBytes)
		wantInterval = clampDur(time.Duration(float64(curInterval)/t.opts.Step), t.opts.MinInterval, t.opts.MaxInterval)
	}
	t.highStreak, t.lowStreak = 0, 0
	if wantBytes == curBytes && wantInterval == curInterval {
		// Already pinned at the bound; journaling a no-op every window
		// would drown the journal while pressure persists.
		return Decision{}, false
	}

	t.eng.SetWireFlushPolicy(wantBytes, wantInterval)
	t.cooldownLeft = t.opts.Cooldown
	// Read back what actually took effect: the transport clamps on its
	// own envelope and the journal should record the live policy, not
	// the request.
	gotBytes, gotInterval := t.eng.WireFlushPolicy()
	return Decision{
		Seq: seq, Time: now, Action: ActionRetuned, Version: version,
		Signals: snap,
		Reason: fmt.Sprintf("%s flush policy: %dB/%s → %dB/%s (in-flight %d vs high %d / low %d)",
			dir, curBytes, curInterval, gotBytes, gotInterval,
			snap.InFlight, t.opts.HighWater, t.opts.LowWater),
	}, true
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampDur(v, lo, hi time.Duration) time.Duration {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
