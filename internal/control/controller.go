// Package control is the autonomous control plane for a locality-aware
// streaming application: a closed measure→decide→migrate loop around the
// manager of §3.3–3.4.
//
// The paper's protocol is inherently periodic — the manager repeatedly
// collects pair statistics, repartitions the key graph and redeploys
// routing tables online — but the decision of *when* to redeploy is left
// to the operator. The Controller closes that loop: on every tick it
// snapshots the engine's cheap operational signals (locality, load
// imbalance, in-flight depth, wire drops), smooths them with an EWMA, and
// evaluates a candidate configuration against three hysteresis rules
// layered on the impact estimator's cost gate:
//
//   - min-gain threshold: the estimated locality gain must exceed a
//     configurable floor, so noise-level improvements never migrate
//     state;
//   - confirmation: the candidate must look worthwhile on K consecutive
//     statistics windows before it deploys, so one skewed window — an
//     "ephemeral correlation" in the paper's terms — cannot trigger a
//     migration;
//   - cooldown: after a deployment the controller holds off for a
//     configurable number of ticks, letting the stream re-stabilize
//     before it is measured again.
//
// Every decision — deployed, skipped, cooldown or error — is recorded in
// an append-only Journal together with the signal values that drove it,
// and the whole loop is observable live through the Introspect HTTP
// handler.
package control

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/locastream/locastream/internal/core"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/metrics"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/scale"
)

// Engine is the live-engine surface the controller measures.
type Engine interface {
	StatsSnapshot() engine.Stats
}

// Manager is the reconfiguration surface the controller drives;
// *core.Manager implements it.
type Manager interface {
	// Candidate computes a candidate configuration from the current
	// statistics window (resetting the window).
	Candidate() (*core.Candidate, error)
	// DeployCandidate persists and rolls out a candidate.
	DeployCandidate(*core.Candidate) error
	// Recover re-deploys the last persisted configuration.
	Recover() (version uint64, ok bool, err error)
	// Tables returns the currently deployed routing tables.
	Tables() map[string]*routing.Table
}

// Options tune the controller.
type Options struct {
	// Period is the tick interval for Start (default 10s). Tick can
	// always be called manually regardless.
	Period time.Duration
	// CostPerKey is the impact estimator's amortization threshold:
	// deploying must save at least this many tuple transfers per
	// migrated key per statistics period (default 1).
	CostPerKey float64
	// MinGain is the minimum estimated locality gain
	// (candidate − current, in [0,1]) required to deploy (default 0,
	// disabled).
	MinGain float64
	// Confirm is the number of consecutive worthwhile candidates
	// required before deploying (default 1 — deploy on first).
	Confirm int
	// Cooldown is the number of ticks to skip after a deployment
	// (default 0, no cooldown).
	Cooldown int
	// SmoothingAlpha is the EWMA factor for the locality and imbalance
	// series (default 0.3).
	SmoothingAlpha float64
	// History bounds the snapshot ring (default 128).
	History int
	// JournalCapacity bounds the in-memory decision ring (default 256).
	JournalCapacity int
	// Sink, when set, additionally receives every decision (e.g. a
	// JSONL file).
	Sink Sink
	// Clock injects time; nil selects the system clock.
	Clock Clock
	// SkipRecovery disables the constructor's re-deployment of the last
	// persisted configuration.
	SkipRecovery bool
	// Split tunes the hot-key splitter; it runs only when Split.Enabled
	// and a split engine is attached (AttachSplitEngine).
	Split SplitOptions
	// Flush tunes the adaptive flush tuner; it runs only when
	// Flush.Enabled and a flush engine is attached (AttachFlushEngine).
	Flush FlushOptions
}

func (o *Options) defaults() {
	if o.Period <= 0 {
		o.Period = 10 * time.Second
	}
	if o.CostPerKey <= 0 {
		o.CostPerKey = 1
	}
	if o.Confirm < 1 {
		o.Confirm = 1
	}
	if o.Cooldown < 0 {
		o.Cooldown = 0
	}
	if o.SmoothingAlpha <= 0 || o.SmoothingAlpha > 1 {
		o.SmoothingAlpha = 0.3
	}
	if o.History <= 0 {
		o.History = 128
	}
	if o.JournalCapacity <= 0 {
		o.JournalCapacity = 256
	}
	if o.Clock == nil {
		o.Clock = SystemClock()
	}
}

// Status is the controller's public state, served on /status.
type Status struct {
	Running          bool      `json:"running"`
	Ticks            int       `json:"ticks"`
	Deploys          int       `json:"deploys"`
	Skips            int       `json:"skips"`
	Cooldowns        int       `json:"cooldowns"`
	Errors           int       `json:"errors"`
	Version          uint64    `json:"version"`
	Streak           int       `json:"streak"`
	Confirm          int       `json:"confirm"`
	CooldownLeft     int       `json:"cooldown_left"`
	Recovered        bool      `json:"recovered"`
	RecoveredVersion uint64    `json:"recovered_version,omitempty"`
	SmoothedLocality float64   `json:"smoothed_locality"`
	LastDecision     *Decision `json:"last_decision,omitempty"`

	// Wire is the transport's cumulative frame/byte/compression counters
	// at status time (all-zero without a TCP fabric); the three derived
	// figures are the ones operators actually watch — how much the
	// dictionary+LZ layer shrinks cross-server traffic.
	Wire                 metrics.WireStats `json:"wire"`
	WireCompressionRatio float64           `json:"wire_compression_ratio"`
	WireDictHitRate      float64           `json:"wire_dict_hit_rate"`
	WireBytesPerTuple    float64           `json:"wire_bytes_per_tuple"`

	// Split mirrors the engine's hot-key splitting counters (all zero
	// when splitting is disabled); SplitKeys lists the currently
	// promoted keys with their replica sets; Promotions and Demotions
	// count the splitter's journaled transitions.
	Split      engine.SplitStats     `json:"split"`
	SplitKeys  []engine.SplitKeyInfo `json:"split_keys,omitempty"`
	Promotions int                   `json:"promotions"`
	Demotions  int                   `json:"demotions"`

	// Retunes counts the adaptive flush tuner's journaled policy
	// changes; FlushBytes/FlushInterval report the transport's current
	// batching thresholds (both zero when no flush engine is attached or
	// the engine runs without a TCP fabric).
	Retunes       int           `json:"retunes"`
	FlushBytes    int           `json:"flush_bytes,omitempty"`
	FlushInterval time.Duration `json:"flush_interval,omitempty"`

	// Scale reports the elastic-scaling state (nil when no scale engine
	// is attached); also served alone on /scale.
	Scale *ScaleStatus `json:"scale,omitempty"`

	// Federation reports the hierarchical control-plane state (nil when
	// no federation layer is attached): the per-cluster loops and the
	// cross-cluster gate.
	Federation *FederationStatus `json:"federation,omitempty"`

	// Paused reports that a server failure was observed and optimization
	// is held until the fault-tolerance subsystem reports recovery.
	Paused bool `json:"paused"`
	// Failures and FailureRecoveries count the NoteFailure/NoteRecovery
	// notifications received from the fault-tolerance subsystem;
	// PausedTicks counts ticks skipped while paused.
	Failures          int `json:"failures"`
	FailureRecoveries int `json:"failure_recoveries"`
	PausedTicks       int `json:"paused_ticks"`
}

// Controller owns the closed reconfiguration loop. Create with New; all
// exported methods are safe for concurrent use.
type Controller struct {
	eng     Engine
	mgr     Manager
	opts    Options
	journal *Journal

	mu           sync.Mutex
	sig          *signals
	ring         *snapRing
	version      uint64
	streak       int
	cooldownLeft int
	deploys      int
	skips        int
	cooldowns    int
	errors       int
	recovered    bool
	recoveredVer uint64
	paused       bool
	failures     int
	frecoveries  int
	pausedTicks  int
	faultInfo    func() interface{}
	stateRd      StateReader
	splitter     *splitter
	promotions   int
	demotions    int
	tuner        *flushTuner
	retunes      int
	scaler       *scale.Scaler
	scaleEng     ScaleEngine
	scales       int
	lastScale    *ScaleResult
	fedr         *federator

	loopMu  sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	running bool
}

// New validates the options, recovers the last persisted configuration
// (unless SkipRecovery) and returns a controller ready to Tick or Start.
func New(eng Engine, mgr Manager, opts Options) (*Controller, error) {
	if eng == nil || mgr == nil {
		return nil, errors.New("control: controller needs an engine and a manager")
	}
	opts.defaults()
	c := &Controller{
		eng:     eng,
		mgr:     mgr,
		opts:    opts,
		journal: NewJournal(opts.JournalCapacity, opts.Sink),
		sig:     newSignals(opts.SmoothingAlpha),
		ring:    newSnapRing(opts.History),
	}
	if !opts.SkipRecovery {
		version, ok, err := mgr.Recover()
		if err != nil {
			return nil, fmt.Errorf("control: recover persisted configuration: %w", err)
		}
		if ok {
			c.version = version
			c.recovered = true
			c.recoveredVer = version
			c.journal.Record(Decision{
				Time:    opts.Clock.Now(),
				Action:  ActionRecovered,
				Reason:  fmt.Sprintf("re-deployed persisted configuration v%d", version),
				Version: version,
			})
		}
	}
	return c, nil
}

// Tick runs one measure→decide→migrate round and returns the recorded
// decision. The controller's Start loop calls Tick on every clock tick;
// tests and batch drivers call it directly.
func (c *Controller) Tick() Decision {
	d, snap, scaleOK := c.tickLocked()
	// Elastic scaling runs after c.mu is released: a ScaleTo drains
	// state through the checkpoint supervisor, whose event hooks call
	// back into this controller (NoteFailure takes c.mu) — holding c.mu
	// across the drain would be an AB-BA deadlock. Paused, cooldown and
	// error ticks never reach the scaler, so scaling holds during a
	// failure recovery exactly like optimization does.
	if scaleOK {
		c.runScaler(snap)
	}
	return d
}

// tickLocked is the measure→decide→migrate round proper, entirely under
// c.mu. It reports whether the tick is eligible for a scaling decision.
func (c *Controller) tickLocked() (Decision, Snapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()

	snap := c.sig.collect(c.eng.StatsSnapshot(), c.opts.Clock.Now())
	c.ring.push(snap)

	d := Decision{
		Seq:     snap.Seq,
		Time:    snap.Time,
		Version: c.version,
		Signals: snap,
	}

	if c.paused {
		c.pausedTicks++
		d.Action = ActionPaused
		d.Reason = "optimization paused: failure recovery in progress"
		d.Streak = c.streak
		c.journal.Record(d)
		return d, snap, false
	}

	if c.cooldownLeft > 0 {
		c.cooldownLeft--
		c.cooldowns++
		d.Action = ActionCooldown
		d.Reason = fmt.Sprintf("post-migration cooldown, %d tick(s) left", c.cooldownLeft)
		d.Streak = c.streak
		c.journal.Record(d)
		return d, snap, false
	}

	var cand *core.Candidate
	if c.fedr != nil {
		// Hierarchical path: per-cluster loops decide the local moves,
		// the federation gate the cross-cluster ones (federation.go).
		// The global tiered candidate comes back for the splitter.
		var extra []Decision
		cand, extra = c.federatedDecideLocked(&d)
		c.journal.Record(d)
		for _, ed := range extra {
			c.journal.Record(ed)
		}
		if d.Action == ActionError {
			return d, snap, false
		}
	} else {
		var err error
		cand, err = c.mgr.Candidate()
		if err != nil {
			c.streak = 0
			c.errors++
			d.Action = ActionError
			d.Reason = "candidate computation failed"
			d.Err = err.Error()
			c.journal.Record(d)
			return d, snap, false
		}
		d.CurrentLocality = cand.Impact.CurrentLocality
		d.CandidateLocality = cand.Impact.CandidateLocality
		d.SavedTuplesPerPeriod = cand.Impact.SavedTuplesPerPeriod
		d.KeysToMigrate = cand.Impact.KeysToMigrate
		gain := cand.Impact.CandidateLocality - cand.Impact.CurrentLocality

		switch {
		case !cand.Impact.Worthwhile(c.opts.CostPerKey):
			c.streak = 0
			c.skips++
			d.Action = ActionSkipped
			d.Reason = fmt.Sprintf(
				"not worthwhile: saving %.1f tuples/period does not amortize migrating %d keys at cost %.1f/key",
				cand.Impact.SavedTuplesPerPeriod, cand.Impact.KeysToMigrate, c.opts.CostPerKey)
		case gain < c.opts.MinGain:
			c.streak = 0
			c.skips++
			d.Action = ActionSkipped
			d.Reason = fmt.Sprintf("locality gain %.4f below minimum %.4f", gain, c.opts.MinGain)
		default:
			c.streak++
			if c.streak < c.opts.Confirm {
				c.skips++
				d.Action = ActionSkipped
				d.Reason = fmt.Sprintf("awaiting confirmation (%d/%d consecutive worthwhile windows)",
					c.streak, c.opts.Confirm)
			} else if err := c.mgr.DeployCandidate(cand); err != nil {
				c.streak = 0
				c.errors++
				d.Action = ActionError
				d.Reason = "deployment failed"
				d.Err = err.Error()
			} else {
				c.streak = 0
				c.cooldownLeft = c.opts.Cooldown
				c.deploys++
				c.version = cand.Plan.Version
				d.Action = ActionDeployed
				d.Version = cand.Plan.Version
				d.Reason = fmt.Sprintf(
					"deployed v%d: locality %.3f → %.3f (est.), %d keys migrated",
					cand.Plan.Version, cand.Impact.CurrentLocality, cand.Impact.CandidateLocality,
					cand.Impact.KeysToMigrate)
			}
		}
		d.Streak = c.streak
		c.journal.Record(d)
	}

	// The hot-key splitter runs after the deployment decision, so a
	// promotion always reads the key's owner from the tables that are
	// actually live, and a deployed candidate never migrates a key the
	// same tick promoted (the candidate pinned the split set it was
	// computed against).
	if c.splitter != nil && c.opts.Split.Enabled && d.Action != ActionError {
		for _, sd := range c.splitter.run(cand, snap.Time, snap.Seq, c.version) {
			switch sd.Action {
			case ActionPromoted:
				c.promotions++
			case ActionDemoted:
				c.demotions++
			case ActionError:
				c.errors++
			}
			c.journal.Record(sd)
		}
	}
	// The adaptive flush tuner runs after the deployment decision and
	// the splitter: a deployed candidate floods the wire with migration
	// snapshots, and the tuner should see that pressure in the *next*
	// window's in-flight depth rather than retune mid-deployment on a
	// half-collected one.
	if c.tuner != nil && c.opts.Flush.Enabled && d.Action != ActionError {
		if td, ok := c.tuner.run(snap, snap.Time, snap.Seq, c.version); ok {
			c.retunes++
			c.journal.Record(td)
		}
	}
	// Elastic scaling runs last (see Tick): it sees the tick's window
	// after the optimizer and the splitter had their say, so a scale
	// operation's migration never interleaves with a same-tick
	// deployment.
	return d, snap, d.Action != ActionError
}

// AttachSplitEngine connects the hot-key splitter to the live engine's
// split API. Without it (or with Options.Split.Enabled unset) the
// controller never promotes or demotes keys.
func (c *Controller) AttachSplitEngine(eng SplitEngine) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.splitter = newSplitter(eng, c.opts.Split)
}

// AttachFlushEngine connects the adaptive flush tuner to the live
// engine's wire flush API. Without it (or with Options.Flush.Enabled
// unset) the controller never retunes the transport's batching policy.
func (c *Controller) AttachFlushEngine(eng FlushEngine) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tuner = newFlushTuner(eng, c.opts.Flush)
}

// Start launches the periodic loop. It is a no-op when already running.
// Stop the controller before stopping the underlying engine.
func (c *Controller) Start() {
	c.loopMu.Lock()
	defer c.loopMu.Unlock()
	if c.running {
		return
	}
	c.running = true
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	// The ticker is created here, not in the goroutine, so that an
	// injected clock has it registered by the time Start returns.
	go c.loop(c.opts.Clock.NewTicker(c.opts.Period), c.stop, c.done)
}

func (c *Controller) loop(ticker Ticker, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C():
			c.Tick()
		case <-stop:
			return
		}
	}
}

// Stop halts the periodic loop and waits for the in-flight tick, if any,
// to finish. Idempotent; Tick remains callable afterwards.
func (c *Controller) Stop() {
	c.loopMu.Lock()
	defer c.loopMu.Unlock()
	if !c.running {
		return
	}
	close(c.stop)
	<-c.done
	c.running = false
}

// NoteFailure records a confirmed server failure in the journal and
// pauses optimization: the statistics window now straddles a membership
// change, so candidates computed from it are meaningless until the
// fault-tolerance subsystem finishes recovery (NoteRecovery). The
// failure itself is handled by that subsystem; the controller only
// journals and steps aside.
func (c *Controller) NoteFailure(server int, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.paused = true
	c.failures++
	c.journal.Record(Decision{
		Time:    c.opts.Clock.Now(),
		Action:  ActionFailed,
		Reason:  fmt.Sprintf("server %d failed: %s", server, reason),
		Version: c.version,
		Seq:     c.sig.seq,
	})
}

// NoteRecovery resumes optimization after a failure recovery: the
// repair configuration version supersedes the controller's view, the
// confirmation streak restarts (pre-failure windows no longer describe
// the deployment), and the recovery is journaled.
func (c *Controller) NoteRecovery(server int, version uint64, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.paused = false
	c.frecoveries++
	c.streak = 0
	if version > c.version {
		c.version = version
	}
	c.journal.Record(Decision{
		Time:    c.opts.Clock.Now(),
		Action:  ActionRecovered,
		Reason:  fmt.Sprintf("server %d recovered: %s", server, reason),
		Version: c.version,
		Seq:     c.sig.seq,
	})
}

// SetFaultInfo installs the fault-tolerance status provider served on
// the introspection handler's /checkpoints endpoint (404 until set).
func (c *Controller) SetFaultInfo(provider func() interface{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faultInfo = provider
}

func (c *Controller) faultInfoProvider() func() interface{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faultInfo
}

// StateReader serves point-in-time reads of the checkpoint store for
// the introspection handler's /state endpoints. Results are plain
// JSON-encodable values, so the control plane stays decoupled from the
// store's concrete types the same way SetFaultInfo keeps it decoupled
// from the supervisor's.
type StateReader interface {
	// LookupState returns one key's checkpointed state as of version
	// (0 = latest); found is false when the key had none.
	LookupState(op, key string, version uint64) (result any, found bool, err error)
	// ScanState returns one operator's full keyed state as of version.
	ScanState(op string, version uint64) (any, error)
	// StateOps lists the operators with checkpointed state, sorted.
	StateOps() []string
}

// ErrStateCompacted is the error a StateReader returns (wrapped or
// verbatim) when the requested version predates the store's compaction
// floor; the /state endpoints map it to 410 Gone.
var ErrStateCompacted = errors.New("control: requested state version was compacted away")

// SetStateReader installs the queryable-state provider served on the
// introspection handler's /state endpoints (404 until set).
func (c *Controller) SetStateReader(r StateReader) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stateRd = r
}

func (c *Controller) stateReader() StateReader {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stateRd
}

// Journal returns the decision journal.
func (c *Controller) Journal() *Journal { return c.journal }

// Snapshots returns the retained signal snapshots, oldest first.
func (c *Controller) Snapshots() []Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.all()
}

// Tables returns the currently deployed routing tables.
func (c *Controller) Tables() map[string]*routing.Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mgr.Tables()
}

// Status returns the controller's current state.
func (c *Controller) Status() Status {
	c.loopMu.Lock()
	running := c.running
	c.loopMu.Unlock()

	engStats := c.eng.StatsSnapshot()
	wire := engStats.Wire

	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Running:              running,
		Wire:                 wire,
		Split:                engStats.Split,
		WireCompressionRatio: wire.CompressionRatio(),
		WireDictHitRate:      wire.DictHitRate(),
		WireBytesPerTuple:    wire.WireBytesPerTuple(),
		Ticks:                c.sig.seq,
		Deploys:              c.deploys,
		Skips:                c.skips,
		Cooldowns:            c.cooldowns,
		Errors:               c.errors,
		Version:              c.version,
		Streak:               c.streak,
		Confirm:              c.opts.Confirm,
		CooldownLeft:         c.cooldownLeft,
		Recovered:            c.recovered,
		RecoveredVersion:     c.recoveredVer,

		Paused:            c.paused,
		Failures:          c.failures,
		FailureRecoveries: c.frecoveries,
		PausedTicks:       c.pausedTicks,

		Promotions: c.promotions,
		Demotions:  c.demotions,

		Scale: c.scaleStatusLocked(),
	}
	if c.fedr != nil {
		st.Federation = c.fedr.statusLocked()
	}
	if c.splitter != nil {
		st.SplitKeys = c.splitter.eng.SplitSnapshot()
	}
	st.Retunes = c.retunes
	if c.tuner != nil {
		st.FlushBytes, st.FlushInterval = c.tuner.eng.WireFlushPolicy()
	}
	if snap, ok := c.ring.last(); ok {
		st.SmoothedLocality = snap.SmoothedLocality
	}
	if recent := c.journal.Recent(1); len(recent) == 1 {
		st.LastDecision = &recent[0]
	}
	return st
}
