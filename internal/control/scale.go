package control

import (
	"fmt"

	"github.com/locastream/locastream/internal/scale"
)

// This file is the control-plane half of elastic scaling: on every tick
// the scaler reads the window's fields-grouped traffic from the signal
// snapshot, and on sustained threshold crossings — with the same
// confirmation + cooldown hysteresis the deployment decision and the
// hot-key splitter use — drives the attached engine to a new width. The
// decision policy itself lives in internal/scale (pure, engine-free);
// this file owns the wiring, the journaling and the introspection.

// ScaleEngine is the surface a scale decision drives; the App's scale
// adapter implements it. ScaleTo runs the full sequence — demote
// affected splits, drain state through a checkpoint, plan the
// minimal-movement repartition, migrate via the §3.4 protocol, flip the
// membership — and reports what moved.
type ScaleEngine interface {
	// ActiveServers returns the current elastic membership width.
	ActiveServers() int
	// ServerCapacity returns the ceiling the placement was built for.
	ServerCapacity() int
	// ScaleTo resizes the cluster to n active servers.
	ScaleTo(n int) (ScaleResult, error)
}

// ScaleResult describes one completed scale operation.
type ScaleResult struct {
	// From and To are the membership widths before and after.
	From int `json:"from"`
	To   int `json:"to"`
	// MovedKeys is how many keys the rescale plan reassigned;
	// MoveBound is the plan's a-priori ceiling (forced moves plus the
	// voluntary cap) — MovedKeys never exceeds it.
	MovedKeys int `json:"moved_keys"`
	MoveBound int `json:"move_bound"`
	// Version is the configuration version the rescale deployed as.
	Version uint64 `json:"version"`
}

// ScaleStatus is the elastic-scaling slice of the controller's status,
// also served on /scale.
type ScaleStatus struct {
	Active       int          `json:"active"`
	Capacity     int          `json:"capacity"`
	Min          int          `json:"min"`
	Max          int          `json:"max"`
	Scales       int          `json:"scales"`
	CooldownLeft int          `json:"cooldown_left"`
	Streak       int          `json:"streak"`
	LastResult   *ScaleResult `json:"last_result,omitempty"`
}

// AttachScaleEngine connects the elastic scaler to an engine. Without
// it the controller never resizes the cluster. Returns an error when
// opts are unusable (zero TargetLoad, max below min).
func (c *Controller) AttachScaleEngine(eng ScaleEngine, opts scale.Options) error {
	sc, err := scale.NewScaler(opts)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.scaleEng = eng
	c.scaler = sc
	return nil
}

// runScaler evaluates the scaling policy for one tick. Called from Tick
// AFTER c.mu is released: the policy decision (Observe) and the result
// bookkeeping each take c.mu briefly, but the ScaleTo itself runs
// unlocked — it drains state through the checkpoint supervisor, whose
// event hooks call back into this controller. A concurrent tick cannot
// double-fire: Observe arms the cooldown the moment it fires.
func (c *Controller) runScaler(snap Snapshot) {
	c.mu.Lock()
	if c.scaler == nil || c.scaleEng == nil {
		c.mu.Unlock()
		return
	}
	eng := c.scaleEng
	active := eng.ActiveServers()
	target, fire := c.scaler.Observe(snap.WindowTraffic, active)
	targetLoad := c.scaler.Options().TargetLoad
	c.mu.Unlock()
	if !fire || target == active {
		return
	}
	res, err := eng.ScaleTo(target)
	c.mu.Lock()
	defer c.mu.Unlock()
	d := Decision{Seq: snap.Seq, Time: snap.Time, Signals: snap}
	if err != nil {
		c.errors++
		d.Action = ActionError
		d.Err = err.Error()
		d.Reason = fmt.Sprintf("scale %d -> %d servers failed", active, target)
		d.Version = c.version
		c.journal.Record(d)
		return
	}
	c.scales++
	c.lastScale = &res
	if res.Version > c.version {
		c.version = res.Version
	}
	// The statistics window straddles the move: restart the deployment
	// confirmation streak like a failure recovery does.
	c.streak = 0
	d.Action = ActionScaled
	d.Version = c.version
	d.KeysToMigrate = res.MovedKeys
	d.Reason = fmt.Sprintf(
		"scaled %d -> %d servers: %d fields transfers/window vs target %d/server; moved %d keys (bound %d)",
		res.From, res.To, snap.WindowTraffic, targetLoad,
		res.MovedKeys, res.MoveBound)
	c.journal.Record(d)
}

// scaleStatusLocked builds the status slice (c.mu held); nil when no
// scale engine is attached.
func (c *Controller) scaleStatusLocked() *ScaleStatus {
	if c.scaler == nil || c.scaleEng == nil {
		return nil
	}
	opts := c.scaler.Options()
	return &ScaleStatus{
		Active:       c.scaleEng.ActiveServers(),
		Capacity:     c.scaleEng.ServerCapacity(),
		Min:          opts.Min,
		Max:          opts.Max,
		Scales:       c.scales,
		CooldownLeft: c.scaler.CooldownLeft(),
		Streak:       c.scaler.Streak(),
		LastResult:   c.lastScale,
	}
}

// ScaleStatusSnapshot returns the current scaling state (nil when no
// scale engine is attached).
func (c *Controller) ScaleStatusSnapshot() *ScaleStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.scaleStatusLocked()
}
