package control

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler returns the live-introspection API over the controller:
//
//	GET /status       controller state (ticks, deploys, streak, cooldown,
//	                  failure/pause state)
//	GET /snapshots    the retained signal snapshots, oldest first
//	GET /journal      the decision journal (?n=K limits to the last K)
//	GET /tables       the deployed routing tables per operator
//	GET /checkpoints  the fault-tolerance subsystem's status (checkpoint
//	                  volume, per-server liveness, recovery reports);
//	                  404 until a provider is attached with SetFaultInfo
//
// Everything is served as JSON from in-memory state; requests never
// touch the data path beyond the same atomics a Tick reads, so the
// endpoint is safe to poll against a loaded engine.
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, c.Status())
	})
	mux.HandleFunc("/snapshots", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, c.Snapshots())
	})
	mux.HandleFunc("/journal", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if raw := r.URL.Query().Get("n"); raw != "" {
			parsed, err := strconv.Atoi(raw)
			if err != nil || parsed < 0 {
				http.Error(w, "invalid n", http.StatusBadRequest)
				return
			}
			n = parsed
		}
		writeJSON(w, r, c.Journal().Recent(n))
	})
	mux.HandleFunc("/tables", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, c.Tables())
	})
	mux.HandleFunc("/checkpoints", func(w http.ResponseWriter, r *http.Request) {
		provider := c.faultInfoProvider()
		if provider == nil {
			http.Error(w, "no fault-tolerance subsystem attached", http.StatusNotFound)
			return
		}
		writeJSON(w, r, provider())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, r *http.Request, v interface{}) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding in-memory values cannot fail for these types; a broken
	// connection mid-write surfaces to the client, not here.
	_ = enc.Encode(v)
}
