package control

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// Handler returns the live-introspection API over the controller:
//
//	GET /status       controller state (ticks, deploys, streak, cooldown,
//	                  failure/pause state)
//	GET /snapshots    the retained signal snapshots, oldest first
//	GET /journal      the decision journal (?n=K limits to the last K)
//	GET /tables       the deployed routing tables per operator
//	GET /checkpoints  the fault-tolerance subsystem's status (checkpoint
//	                  volume, per-server liveness, recovery reports);
//	                  404 until a provider is attached with SetFaultInfo
//	GET /state            the operators with queryable checkpointed state
//	GET /state/{op}       one operator's keyed state (?version=V for a
//	                      point-in-time snapshot; omitted or 0 = latest)
//	GET /state/{op}/{key} one key's state, same ?version semantics; 404
//	                      when the key had no state at that version
//
// The /state endpoints serve 404 until a store is attached with
// SetStateReader and 410 Gone for versions compaction already folded
// away. Everything is served as JSON from in-memory state; requests
// never touch the data path beyond the same atomics a Tick reads, so
// the endpoint is safe to poll against a loaded engine.
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, c.Status())
	})
	mux.HandleFunc("/snapshots", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, c.Snapshots())
	})
	mux.HandleFunc("/journal", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if raw := r.URL.Query().Get("n"); raw != "" {
			parsed, err := strconv.Atoi(raw)
			if err != nil || parsed < 0 {
				http.Error(w, "invalid n", http.StatusBadRequest)
				return
			}
			n = parsed
		}
		writeJSON(w, r, c.Journal().Recent(n))
	})
	mux.HandleFunc("/tables", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, c.Tables())
	})
	mux.HandleFunc("/scale", func(w http.ResponseWriter, r *http.Request) {
		st := c.ScaleStatusSnapshot()
		if st == nil {
			http.Error(w, "no scale engine attached", http.StatusNotFound)
			return
		}
		writeJSON(w, r, st)
	})
	mux.HandleFunc("/checkpoints", func(w http.ResponseWriter, r *http.Request) {
		provider := c.faultInfoProvider()
		if provider == nil {
			http.Error(w, "no fault-tolerance subsystem attached", http.StatusNotFound)
			return
		}
		writeJSON(w, r, provider())
	})
	mux.HandleFunc("/state", func(w http.ResponseWriter, r *http.Request) {
		sr := c.stateReader()
		if sr == nil {
			http.Error(w, "no queryable state store attached", http.StatusNotFound)
			return
		}
		writeJSON(w, r, map[string][]string{"ops": sr.StateOps()})
	})
	mux.HandleFunc("/state/{op}", func(w http.ResponseWriter, r *http.Request) {
		sr := c.stateReader()
		if sr == nil {
			http.Error(w, "no queryable state store attached", http.StatusNotFound)
			return
		}
		version, ok := stateVersion(w, r)
		if !ok {
			return
		}
		res, err := sr.ScanState(r.PathValue("op"), version)
		if err != nil {
			stateError(w, err)
			return
		}
		writeJSON(w, r, res)
	})
	mux.HandleFunc("/state/{op}/{key}", func(w http.ResponseWriter, r *http.Request) {
		sr := c.stateReader()
		if sr == nil {
			http.Error(w, "no queryable state store attached", http.StatusNotFound)
			return
		}
		version, ok := stateVersion(w, r)
		if !ok {
			return
		}
		res, found, err := sr.LookupState(r.PathValue("op"), r.PathValue("key"), version)
		if err != nil {
			stateError(w, err)
			return
		}
		if !found {
			http.Error(w, "no state for key at that version", http.StatusNotFound)
			return
		}
		writeJSON(w, r, res)
	})
	return mux
}

// stateVersion parses the ?version query parameter (absent = 0 =
// latest), replying 400 itself when the value is malformed.
func stateVersion(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	raw := r.URL.Query().Get("version")
	if raw == "" {
		return 0, true
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		http.Error(w, "invalid version", http.StatusBadRequest)
		return 0, false
	}
	return v, true
}

// stateError maps a StateReader failure to its status code: a version
// the store compacted away is 410 Gone, anything else is a 500.
func stateError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrStateCompacted) {
		http.Error(w, err.Error(), http.StatusGone)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

func writeJSON(w http.ResponseWriter, r *http.Request, v interface{}) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding in-memory values cannot fail for these types; a broken
	// connection mid-write surfaces to the client, not here.
	_ = enc.Encode(v)
}
