package control

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestControllerPausesAcrossFailure verifies the controller steps aside
// while the fault-tolerance subsystem recovers: NoteFailure journals the
// failure and pauses ticks (no candidate is computed from a window that
// straddles a membership change), NoteRecovery journals the repair
// version, resumes ticking, and restarts the confirmation streak.
func TestControllerPausesAcrossFailure(t *testing.T) {
	h := newHarness(t, 3, nil)
	c := newTestController(t, h, Options{CostPerKey: 1, Confirm: 1})

	h.injectCorrelated(t, 1800, 9, 0)
	if d := c.Tick(); d.Action != ActionDeployed {
		t.Fatalf("healthy tick = %+v, want deployed", d)
	}

	c.NoteFailure(2, "heartbeat failure confirmed")
	st := c.Status()
	if !st.Paused || st.Failures != 1 {
		t.Fatalf("status after failure = %+v", st)
	}
	// Paused ticks decide nothing and leave the measurement loop alone.
	for i := 0; i < 2; i++ {
		if d := c.Tick(); d.Action != ActionPaused {
			t.Fatalf("paused tick = %+v, want %q", d, ActionPaused)
		}
	}
	if st := c.Status(); st.PausedTicks != 2 {
		t.Fatalf("PausedTicks = %d, want 2", st.PausedTicks)
	}

	repairVersion := c.Status().Version + 5
	c.NoteRecovery(2, repairVersion, "4 keys reassigned")
	st = c.Status()
	if st.Paused || st.FailureRecoveries != 1 || st.Streak != 0 {
		t.Fatalf("status after recovery = %+v", st)
	}
	if st.Version != repairVersion {
		t.Fatalf("version = %d, want repair version %d", st.Version, repairVersion)
	}

	// The journal tells the whole story, oldest first: deployed, failed,
	// the two paused ticks, recovered.
	wantActions := []Action{ActionDeployed, ActionFailed, ActionPaused, ActionPaused, ActionRecovered}
	decs := c.Journal().Recent(len(wantActions))
	if len(decs) != len(wantActions) {
		t.Fatalf("journal has %d entries, want %d", len(decs), len(wantActions))
	}
	for i, want := range wantActions {
		if decs[i].Action != want {
			t.Fatalf("journal[%d] = %+v, want %q", i, decs[i], want)
		}
	}

	// Optimization resumes: the next tick decides normally again.
	h.injectCorrelated(t, 1800, 9, 0)
	if d := c.Tick(); d.Action == ActionPaused {
		t.Fatalf("tick after recovery still paused: %+v", d)
	}
}

// TestHandlerCheckpoints verifies the /checkpoints endpoint: 404 until a
// fault-tolerance provider is attached, then its status as JSON.
func TestHandlerCheckpoints(t *testing.T) {
	_, c, handler := setupHTTP(t)

	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/checkpoints", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /checkpoints without a subsystem = %d, want 404", rec.Code)
	}

	c.SetFaultInfo(func() interface{} {
		return map[string]interface{}{"liveness": []string{"alive", "alive", "alive"}}
	})
	var got struct {
		Liveness []string `json:"liveness"`
	}
	getJSON(t, handler, "/checkpoints", &got)
	if len(got.Liveness) != 3 || got.Liveness[0] != "alive" {
		t.Fatalf("/checkpoints = %+v", got)
	}

	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/checkpoints", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /checkpoints = %d, want 405", rec.Code)
	}
}
