package control

import (
	"strings"
	"testing"
	"time"
)

// fakeFlushEngine records flush-policy retunes and applies the
// transport's clamping semantics in miniature (the tuner must journal
// what took effect, not what it asked for).
type fakeFlushEngine struct {
	bytes    int
	interval time.Duration
	sets     int
}

func (f *fakeFlushEngine) WireFlushPolicy() (int, time.Duration) { return f.bytes, f.interval }
func (f *fakeFlushEngine) SetWireFlushPolicy(bytes int, interval time.Duration) {
	f.bytes, f.interval = bytes, interval
	f.sets++
}

func tunerOpts() FlushOptions {
	return FlushOptions{
		Enabled:     true,
		HighWater:   1000,
		LowWater:    100,
		Step:        2,
		Confirm:     2,
		Cooldown:    1,
		MinBytes:    4 << 10,
		MaxBytes:    1 << 20,
		MinInterval: 200 * time.Microsecond,
		MaxInterval: 20 * time.Millisecond,
	}
}

func snapWithInFlight(seq int, inFlight int64) Snapshot {
	return Snapshot{Seq: seq, Time: time.Unix(1700000000+int64(seq), 0), InFlight: inFlight}
}

func TestFlushTunerWidensUnderPressure(t *testing.T) {
	eng := &fakeFlushEngine{bytes: 64 << 10, interval: time.Millisecond}
	tuner := newFlushTuner(eng, tunerOpts())

	// First pressured window only builds the streak.
	if _, ok := tuner.run(snapWithInFlight(1, 5000), time.Now(), 1, 7); ok {
		t.Fatal("retuned on a single pressured window despite Confirm=2")
	}
	if eng.sets != 0 {
		t.Fatal("policy touched before confirmation")
	}
	// Second confirms and widens.
	d, ok := tuner.run(snapWithInFlight(2, 5000), time.Now(), 2, 7)
	if !ok {
		t.Fatal("confirmed pressure did not retune")
	}
	if d.Action != ActionRetuned {
		t.Fatalf("action = %s, want %s", d.Action, ActionRetuned)
	}
	if !strings.Contains(d.Reason, "widened") {
		t.Fatalf("reason %q does not say widened", d.Reason)
	}
	if eng.bytes != 128<<10 || eng.interval != 2*time.Millisecond {
		t.Fatalf("policy after widen = %d/%v, want %d/%v", eng.bytes, eng.interval, 128<<10, 2*time.Millisecond)
	}
	if d.Version != 7 || d.Seq != 2 {
		t.Fatalf("journal entry carries version %d seq %d, want 7/2", d.Version, d.Seq)
	}
	// Cooldown: the next pressured window is skipped outright.
	if _, ok := tuner.run(snapWithInFlight(3, 5000), time.Now(), 3, 7); ok {
		t.Fatal("retuned during cooldown")
	}
	// After cooldown, two more pressured windows widen again.
	tuner.run(snapWithInFlight(4, 5000), time.Now(), 4, 7)
	if _, ok := tuner.run(snapWithInFlight(5, 5000), time.Now(), 5, 7); !ok {
		t.Fatal("post-cooldown confirmed pressure did not retune")
	}
	if eng.bytes != 256<<10 {
		t.Fatalf("second widen: bytes = %d, want %d", eng.bytes, 256<<10)
	}
}

func TestFlushTunerTightensWhenIdle(t *testing.T) {
	eng := &fakeFlushEngine{bytes: 64 << 10, interval: 4 * time.Millisecond}
	tuner := newFlushTuner(eng, tunerOpts())

	tuner.run(snapWithInFlight(1, 0), time.Now(), 1, 1)
	d, ok := tuner.run(snapWithInFlight(2, 0), time.Now(), 2, 1)
	if !ok {
		t.Fatal("confirmed idleness did not retune")
	}
	if !strings.Contains(d.Reason, "tightened") {
		t.Fatalf("reason %q does not say tightened", d.Reason)
	}
	if eng.bytes != 32<<10 || eng.interval != 2*time.Millisecond {
		t.Fatalf("policy after tighten = %d/%v, want %d/%v", eng.bytes, eng.interval, 32<<10, 2*time.Millisecond)
	}
}

func TestFlushTunerDeadBandResetsStreaks(t *testing.T) {
	eng := &fakeFlushEngine{bytes: 64 << 10, interval: time.Millisecond}
	tuner := newFlushTuner(eng, tunerOpts())

	// Alternating pressured and in-band windows never confirm.
	for i := 1; i <= 10; i++ {
		inFlight := int64(5000)
		if i%2 == 0 {
			inFlight = 500 // inside the dead band
		}
		if _, ok := tuner.run(snapWithInFlight(i, inFlight), time.Now(), i, 1); ok {
			t.Fatalf("window %d retuned without consecutive confirmation", i)
		}
	}
	if eng.sets != 0 {
		t.Fatal("dead-banded signal still moved the policy")
	}
	// An idle window right after a pressured one must also reset the
	// high streak (direction flips restart confirmation).
	tuner.run(snapWithInFlight(11, 5000), time.Now(), 11, 1)
	if _, ok := tuner.run(snapWithInFlight(12, 0), time.Now(), 12, 1); ok {
		t.Fatal("direction flip confirmed a retune")
	}
}

func TestFlushTunerPinnedAtBoundStaysQuiet(t *testing.T) {
	opts := tunerOpts()
	eng := &fakeFlushEngine{bytes: opts.MaxBytes, interval: opts.MaxInterval}
	tuner := newFlushTuner(eng, opts)

	// Sustained pressure against the ceiling must not journal a no-op
	// retune every Confirm windows.
	for i := 1; i <= 8; i++ {
		if d, ok := tuner.run(snapWithInFlight(i, 5000), time.Now(), i, 1); ok {
			t.Fatalf("window %d journaled a no-op retune: %q", i, d.Reason)
		}
	}
	if eng.sets != 0 {
		t.Fatal("pinned policy was re-set")
	}
}

func TestFlushTunerIgnoresMissingFabric(t *testing.T) {
	eng := &fakeFlushEngine{} // zeros: engine runs without a TCP fabric
	tuner := newFlushTuner(eng, tunerOpts())
	for i := 1; i <= 4; i++ {
		if _, ok := tuner.run(snapWithInFlight(i, 5000), time.Now(), i, 1); ok {
			t.Fatal("retuned with no fabric behind the engine")
		}
	}
	if eng.sets != 0 {
		t.Fatal("policy set with no fabric")
	}
}

// TestControllerAdaptiveFlushLoop drives the tuner through the real
// controller tick path: an attached flush engine, pressured windows
// from the live harness... the in-flight depth is zero on a drained
// engine, so the controller-level test exercises the tighten direction
// — the journal gains a retuned entry, Status reports the retune count
// and the live policy.
func TestControllerAdaptiveFlushLoop(t *testing.T) {
	h := newHarness(t, 2, nil)
	opts := tunerOpts()
	c := newTestController(t, h, Options{Flush: opts})
	eng := &fakeFlushEngine{bytes: 64 << 10, interval: 4 * time.Millisecond}
	c.AttachFlushEngine(eng)

	h.injectCorrelated(t, 200, 8, 0)
	for i := 0; i < 2; i++ {
		c.Tick()
	}
	st := c.Status()
	if st.Retunes != 1 {
		t.Fatalf("Status.Retunes = %d, want 1 (drained engine tightens once, then cools down)", st.Retunes)
	}
	if st.FlushBytes != eng.bytes || st.FlushInterval != eng.interval {
		t.Fatalf("Status policy = %d/%v, engine has %d/%v", st.FlushBytes, st.FlushInterval, eng.bytes, eng.interval)
	}
	if eng.bytes != 32<<10 {
		t.Fatalf("engine bytes = %d, want %d after one tighten", eng.bytes, 32<<10)
	}
	var retuned int
	for _, d := range c.Journal().All() {
		if d.Action == ActionRetuned {
			retuned++
			if d.Signals.Seq == 0 {
				t.Fatal("retune journal entry carries no signals")
			}
		}
	}
	if retuned != 1 {
		t.Fatalf("journal holds %d retuned entries, want 1", retuned)
	}
}
