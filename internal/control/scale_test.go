package control

import (
	"errors"
	"net/http/httptest"
	"testing"

	"github.com/locastream/locastream/internal/scale"
)

// fakeScaleEngine records ScaleTo calls without a real engine: the
// controller's wiring — hysteresis, journaling, pausing — is under test
// here, not the migration (scale_test.go in the root package covers
// that end to end).
type fakeScaleEngine struct {
	active, capacity int
	calls            []int
	fail             bool
}

func (f *fakeScaleEngine) ActiveServers() int  { return f.active }
func (f *fakeScaleEngine) ServerCapacity() int { return f.capacity }
func (f *fakeScaleEngine) ScaleTo(n int) (ScaleResult, error) {
	f.calls = append(f.calls, n)
	if f.fail {
		return ScaleResult{}, errors.New("injected scale failure")
	}
	res := ScaleResult{From: f.active, To: n, MovedKeys: 3, MoveBound: 5, Version: 9}
	f.active = n
	return res, nil
}

func scaledEntries(c *Controller) []Decision {
	var out []Decision
	for _, d := range c.Journal().All() {
		if d.Action == ActionScaled {
			out = append(out, d)
		}
	}
	return out
}

// TestScaleFiresOnSustainedLoad: sustained window traffic above the
// per-server target widens the cluster after the confirmation streak,
// journals a scaled decision with its signals, and surfaces the result
// in Status and on /scale.
func TestScaleFiresOnSustainedLoad(t *testing.T) {
	h := newHarness(t, 4, nil)
	c := newTestController(t, h, Options{CostPerKey: 1, Confirm: 1})
	eng := &fakeScaleEngine{active: 2, capacity: 4}
	if err := c.AttachScaleEngine(eng, scale.Options{
		Min: 1, Max: 4, TargetLoad: 500, Confirm: 2, Cooldown: 1,
	}); err != nil {
		t.Fatal(err)
	}

	// Window 1: overload observed, confirmation streak starts — no call.
	h.injectCorrelated(t, 1800, 9, 0)
	c.Tick()
	if len(eng.calls) != 0 {
		t.Fatalf("scaled after one window: %v", eng.calls)
	}
	st := c.ScaleStatusSnapshot()
	if st == nil || st.Streak != 1 || st.Scales != 0 {
		t.Fatalf("status after window 1 = %+v, want streak 1", st)
	}

	// Window 2: confirmed — the engine is driven to the clamped width.
	h.injectCorrelated(t, 1800, 9, 0)
	c.Tick()
	if len(eng.calls) != 1 || eng.calls[0] != 4 {
		t.Fatalf("calls = %v, want [4]", eng.calls)
	}
	scaled := scaledEntries(c)
	if len(scaled) != 1 {
		t.Fatalf("scaled journal entries = %d, want 1", len(scaled))
	}
	d := scaled[0]
	if d.KeysToMigrate != 3 || d.Version != 9 || d.Reason == "" || d.Signals.WindowTraffic == 0 {
		t.Fatalf("scaled decision = %+v, want 3 keys at v9 with signals", d)
	}

	st = c.ScaleStatusSnapshot()
	if st.Active != 4 || st.Capacity != 4 || st.Scales != 1 || st.CooldownLeft != 1 {
		t.Fatalf("status after scale = %+v", st)
	}
	if st.LastResult == nil || st.LastResult.To != 4 || st.LastResult.MoveBound != 5 {
		t.Fatalf("last result = %+v", st.LastResult)
	}
	if full := c.Status(); full.Scale == nil || full.Scale.Scales != 1 {
		t.Fatalf("Status().Scale = %+v", full.Scale)
	}

	// /scale serves the same slice.
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/scale", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /scale = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestScaleCooldownSuppressesBackToBackDecisions: a demand reversal
// right after a scale waits out the cooldown — no second ScaleTo inside
// it — then fires.
func TestScaleCooldownSuppressesBackToBackDecisions(t *testing.T) {
	h := newHarness(t, 4, nil)
	c := newTestController(t, h, Options{CostPerKey: 1, Confirm: 1})
	eng := &fakeScaleEngine{active: 4, capacity: 4}
	if err := c.AttachScaleEngine(eng, scale.Options{
		Min: 2, Max: 4, TargetLoad: 10000, Confirm: 1, Cooldown: 2,
	}); err != nil {
		t.Fatal(err)
	}

	// Light traffic vs a huge target: desired width clamps to Min.
	h.injectCorrelated(t, 400, 4, 0)
	c.Tick()
	if len(eng.calls) != 1 || eng.calls[0] != 2 {
		t.Fatalf("calls = %v, want [2]", eng.calls)
	}
	// Two cooldown windows: no decision regardless of what demand says.
	for i := 0; i < 2; i++ {
		h.injectCorrelated(t, 400, 4, 0)
		c.Tick()
		if len(eng.calls) != 1 {
			t.Fatalf("cooldown window %d scaled: %v", i, eng.calls)
		}
	}
	if len(scaledEntries(c)) != 1 {
		t.Fatalf("scaled journal entries = %d during cooldown, want 1", len(scaledEntries(c)))
	}
	// Width now matches demand (desired = Min = active): steady state.
	h.injectCorrelated(t, 400, 4, 0)
	c.Tick()
	if len(eng.calls) != 1 {
		t.Fatalf("steady state scaled again: %v", eng.calls)
	}
}

// TestScalePausedDuringRecovery: while a failure recovery is in flight
// the controller skips the whole tick — including the scaler — and
// resumes when the recovery completes.
func TestScalePausedDuringRecovery(t *testing.T) {
	h := newHarness(t, 4, nil)
	c := newTestController(t, h, Options{CostPerKey: 1, Confirm: 1})
	eng := &fakeScaleEngine{active: 2, capacity: 4}
	if err := c.AttachScaleEngine(eng, scale.Options{
		Min: 1, Max: 4, TargetLoad: 500, Confirm: 1, Cooldown: 0,
	}); err != nil {
		t.Fatal(err)
	}

	c.NoteFailure(1, "injected failure")
	h.injectCorrelated(t, 1800, 9, 0)
	if d := c.Tick(); d.Action != ActionPaused {
		t.Fatalf("paused tick = %s, want %s", d.Action, ActionPaused)
	}
	if len(eng.calls) != 0 {
		t.Fatalf("scaled while paused: %v", eng.calls)
	}
	if st := c.ScaleStatusSnapshot(); st.Streak != 0 {
		t.Fatalf("scaler observed a paused window: streak %d", st.Streak)
	}

	c.NoteRecovery(1, 5, "recovery done")
	h.injectCorrelated(t, 1800, 9, 0)
	c.Tick()
	if len(eng.calls) != 1 || eng.calls[0] != 4 {
		t.Fatalf("calls after recovery = %v, want [4]", eng.calls)
	}
}

// TestScaleErrorJournaled: a failing ScaleTo becomes an error decision,
// not a crash — and the width stays put.
func TestScaleErrorJournaled(t *testing.T) {
	h := newHarness(t, 4, nil)
	c := newTestController(t, h, Options{CostPerKey: 1, Confirm: 1})
	eng := &fakeScaleEngine{active: 2, capacity: 4, fail: true}
	if err := c.AttachScaleEngine(eng, scale.Options{
		Min: 1, Max: 4, TargetLoad: 500, Confirm: 1, Cooldown: 0,
	}); err != nil {
		t.Fatal(err)
	}

	h.injectCorrelated(t, 1800, 9, 0)
	c.Tick()
	if len(eng.calls) != 1 {
		t.Fatalf("calls = %v, want one attempt", eng.calls)
	}
	var errDecision *Decision
	for _, d := range c.Journal().All() {
		if d.Action == ActionError && d.Err != "" {
			errDecision = &d
			break
		}
	}
	if errDecision == nil {
		t.Fatalf("no error decision journaled: %+v", c.Journal().All())
	}
	st := c.ScaleStatusSnapshot()
	if st.Scales != 0 || st.Active != 2 || st.LastResult != nil {
		t.Fatalf("status after failed scale = %+v", st)
	}
}

// TestAttachScaleEngineValidation: unusable options are rejected, and
// before a successful attach the scale surface stays dark.
func TestAttachScaleEngineValidation(t *testing.T) {
	h := newHarness(t, 2, nil)
	c := newTestController(t, h, Options{Confirm: 1})
	if st := c.ScaleStatusSnapshot(); st != nil {
		t.Fatalf("scale status before attach = %+v, want nil", st)
	}
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/scale", nil))
	if rec.Code != 404 {
		t.Fatalf("GET /scale before attach = %d, want 404", rec.Code)
	}
	eng := &fakeScaleEngine{active: 1, capacity: 2}
	if err := c.AttachScaleEngine(eng, scale.Options{Min: 1, Max: 2}); err == nil {
		t.Error("zero target load accepted")
	}
	if err := c.AttachScaleEngine(eng, scale.Options{Min: 3, Max: 2, TargetLoad: 10}); err == nil {
		t.Error("max below min accepted")
	}
	if st := c.ScaleStatusSnapshot(); st != nil {
		t.Fatal("failed attach left a scale engine behind")
	}
}
