package control

import (
	"fmt"
	"sort"
	"time"

	"github.com/locastream/locastream/internal/core"
	"github.com/locastream/locastream/internal/engine"
)

// This file is the control-plane half of hot-key splitting: on every
// tick the splitter reads per-key heat from the candidate's statistics
// window, promotes keys whose load exceeds a threshold share of their
// operator's capacity to 2-choice replicated routing, and demotes keys
// that cooled down — both through the engine's split API, both under the
// same confirmation hysteresis the deployment decision uses, so one
// skewed window can neither split nor merge a key.

// SplitOptions tune the hot-key splitter. The zero value disables it.
type SplitOptions struct {
	// Enabled turns the splitter on (requires an attached split engine
	// and engine.LiveConfig.KeySplitting).
	Enabled bool
	// Threshold is the promotion threshold as a multiple of an
	// operator's fair per-instance share: a key routing more than
	// Threshold × (total/parallelism) tuples in one statistics window is
	// hot (default 1.5).
	Threshold float64
	// DemoteFraction scales the demotion threshold relative to the
	// promotion one; a split key whose share falls below
	// DemoteFraction × Threshold × fair is cold (default 0.5). Keeping
	// it well under 1 gives the two transitions a dead band.
	DemoteFraction float64
	// TopK bounds how many keys may be split per operator at once
	// (default 4).
	TopK int
	// Replicas is the number of instances a promoted key spreads over
	// (default 2 — the partial key grouping of Nasir et al.).
	Replicas int
	// Confirm is the number of consecutive windows a key must stay hot
	// (cold) before it promotes (demotes) — default 2.
	Confirm int
}

func (o *SplitOptions) defaults() {
	if o.Threshold <= 0 {
		o.Threshold = 1.5
	}
	if o.DemoteFraction <= 0 || o.DemoteFraction >= 1 {
		o.DemoteFraction = 0.5
	}
	if o.TopK <= 0 {
		o.TopK = 4
	}
	if o.Replicas < 2 {
		o.Replicas = 2
	}
	if o.Confirm < 1 {
		o.Confirm = 2
	}
}

// SplitEngine is the engine surface the splitter drives; *engine.Live
// implements it.
type SplitEngine interface {
	CanSplit(op string) bool
	Parallelism(op string) int
	PromoteSplit(op, key string, replicas int) ([]int, error)
	DemoteSplit(op, key string) error
	SplitSnapshot() []engine.SplitKeyInfo
}

// splitter holds the hysteresis state of the hot-key loop.
type splitter struct {
	opts SplitOptions
	eng  SplitEngine
	// hot / cold count consecutive windows a key spent above the promote
	// threshold / below the demote threshold, keyed by op+"\x00"+key.
	hot  map[string]int
	cold map[string]int
}

func newSplitter(eng SplitEngine, opts SplitOptions) *splitter {
	opts.defaults()
	return &splitter{opts: opts, eng: eng, hot: map[string]int{}, cold: map[string]int{}}
}

func splitID(op, key string) string { return op + "\x00" + key }

// keyHeat is one key's observed routing volume within one window.
type keyHeat struct {
	op    string
	key   string
	count uint64
}

// heatFromStats derives per-key heat for every splittable operator from
// the window's pair statistics. An operator observed as a routing target
// (ToOp) is measured by the Out-key marginals of its in-edges; the
// source operator — never a ToOp — by the In-key marginals of its
// out-edges. The sketches bound the error: marginals of top-k pair
// counters underestimate, which only delays a promotion, never forces a
// bogus one.
func heatFromStats(stats []engine.PairStat, splittable func(string) bool) map[string]map[string]uint64 {
	heat := make(map[string]map[string]uint64)
	isTarget := make(map[string]bool)
	for _, st := range stats {
		isTarget[st.ToOp] = true
	}
	add := func(op, key string, n uint64) {
		if key == "" || !splittable(op) {
			return
		}
		m := heat[op]
		if m == nil {
			m = make(map[string]uint64)
			heat[op] = m
		}
		m[key] += n
	}
	for _, st := range stats {
		for _, p := range st.Pairs {
			add(st.ToOp, p.Out, p.Count)
			if !isTarget[st.FromOp] {
				add(st.FromOp, p.In, p.Count)
			}
		}
	}
	return heat
}

// run evaluates one statistics window and performs the confirmed
// transitions. It returns journal entries describing each promotion and
// demotion (empty most ticks).
func (s *splitter) run(cand *core.Candidate, now time.Time, seq int, version uint64) []Decision {
	heat := heatFromStats(cand.Stats, s.eng.CanSplit)

	split := make(map[string]bool, len(cand.Splits))
	perOp := make(map[string]int)
	for _, si := range cand.Splits {
		split[splitID(si.Op, si.Key)] = true
		perOp[si.Op]++
	}

	var out []Decision
	record := func(action Action, op, key, reason string) {
		out = append(out, Decision{
			Seq: seq, Time: now, Action: action, Version: version,
			Reason: fmt.Sprintf("%s %s/%q: %s", action, op, key, reason),
		})
	}

	ops := make([]string, 0, len(heat))
	for op := range heat {
		ops = append(ops, op)
	}
	sort.Strings(ops)

	seen := make(map[string]bool)
	for _, op := range ops {
		keys := heat[op]
		var total uint64
		for _, n := range keys {
			total += n
		}
		n := s.eng.Parallelism(op)
		if total == 0 || n < 2 {
			continue
		}
		fair := float64(total) / float64(n)
		promoteAt := s.opts.Threshold * fair
		demoteAt := s.opts.DemoteFraction * promoteAt

		// Hottest first so TopK keeps the heaviest hitters.
		ranked := make([]keyHeat, 0, len(keys))
		for k, c := range keys {
			ranked = append(ranked, keyHeat{op: op, key: k, count: c})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].count != ranked[j].count {
				return ranked[i].count > ranked[j].count
			}
			return ranked[i].key < ranked[j].key
		})

		for _, kh := range ranked {
			id := splitID(op, kh.key)
			seen[id] = true
			switch {
			case !split[id]:
				if float64(kh.count) > promoteAt {
					s.hot[id]++
				} else {
					delete(s.hot, id)
					continue
				}
				if s.hot[id] < s.opts.Confirm || perOp[op] >= s.opts.TopK {
					continue
				}
				replicas, err := s.eng.PromoteSplit(op, kh.key, s.opts.Replicas)
				delete(s.hot, id)
				if err != nil {
					record(ActionError, op, kh.key, "promotion failed: "+err.Error())
					continue
				}
				perOp[op]++
				record(ActionPromoted, op, kh.key,
					fmt.Sprintf("%d tuples/window > %.0f (%.1fx fair share), replicas %v",
						kh.count, promoteAt, s.opts.Threshold, replicas))
			case float64(kh.count) < demoteAt:
				s.cold[id]++
				if s.cold[id] < s.opts.Confirm {
					continue
				}
				s.demote(op, kh.key, id, record,
					fmt.Sprintf("%d tuples/window < %.0f for %d windows", kh.count, demoteAt, s.opts.Confirm))
				perOp[op]--
			default:
				delete(s.cold, id)
			}
		}
	}

	// Split keys that vanished from the window entirely are the coldest
	// of all: no sketch counter survived for them.
	for _, si := range cand.Splits {
		id := splitID(si.Op, si.Key)
		if seen[id] {
			continue
		}
		s.cold[id]++
		if s.cold[id] >= s.opts.Confirm {
			s.demote(si.Op, si.Key, id, record,
				fmt.Sprintf("absent from %d consecutive statistics windows", s.opts.Confirm))
		}
	}
	return out
}

func (s *splitter) demote(op, key, id string, record func(Action, string, string, string), reason string) {
	delete(s.cold, id)
	if err := s.eng.DemoteSplit(op, key); err != nil {
		record(ActionError, op, key, "demotion failed: "+err.Error())
		return
	}
	record(ActionDemoted, op, key, reason)
}
