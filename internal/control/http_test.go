package control

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func setupHTTP(t *testing.T) (*harness, *Controller, http.Handler) {
	t.Helper()
	h := newHarness(t, 3, nil)
	c := newTestController(t, h, Options{CostPerKey: 1, Confirm: 1})
	h.injectCorrelated(t, 1800, 9, 0)
	c.Tick()
	h.injectCorrelated(t, 1800, 9, 0)
	c.Tick()
	return h, c, c.Handler()
}

func getJSON(t *testing.T, handler http.Handler, path string, into interface{}) {
	t.Helper()
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", path, rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s Content-Type = %q", path, ct)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, rec.Body.String())
	}
}

func TestHandlerStatus(t *testing.T) {
	_, c, handler := setupHTTP(t)
	var st Status
	getJSON(t, handler, "/status", &st)
	if st.Ticks != 2 || st.Deploys != 1 {
		t.Fatalf("/status = %+v, want 2 ticks and 1 deploy", st)
	}
	if st.Version != c.Status().Version {
		t.Fatalf("/status version %d != controller %d", st.Version, c.Status().Version)
	}
	if st.LastDecision == nil || st.LastDecision.Action != ActionSkipped {
		t.Fatalf("/status last decision = %+v", st.LastDecision)
	}
}

func TestHandlerSnapshots(t *testing.T) {
	_, _, handler := setupHTTP(t)
	var snaps []Snapshot
	getJSON(t, handler, "/snapshots", &snaps)
	if len(snaps) != 2 || snaps[0].Seq != 1 || snaps[1].Seq != 2 {
		t.Fatalf("/snapshots = %+v", snaps)
	}
	if snaps[0].WindowTraffic == 0 {
		t.Fatal("/snapshots lost the traffic signal in JSON")
	}
	if snaps[1].WindowLocality != 1.0 {
		t.Fatalf("/snapshots post-deploy locality = %f, want 1.0", snaps[1].WindowLocality)
	}
}

func TestHandlerJournal(t *testing.T) {
	_, _, handler := setupHTTP(t)
	var all []Decision
	getJSON(t, handler, "/journal", &all)
	if len(all) != 2 || all[0].Action != ActionDeployed || all[1].Action != ActionSkipped {
		t.Fatalf("/journal = %+v", all)
	}
	var last []Decision
	getJSON(t, handler, "/journal?n=1", &last)
	if len(last) != 1 || last[0].Seq != 2 {
		t.Fatalf("/journal?n=1 = %+v", last)
	}
}

func TestHandlerTables(t *testing.T) {
	_, _, handler := setupHTTP(t)
	var tables map[string]struct {
		Version uint64            `json:"Version"`
		Assign  map[string]uint32 `json:"Assign"`
	}
	getJSON(t, handler, "/tables", &tables)
	if len(tables) != 2 {
		t.Fatalf("/tables = %+v, want entries for A and B", tables)
	}
	for op, table := range tables {
		if len(table.Assign) == 0 {
			t.Fatalf("/tables[%s] has no assignments", op)
		}
	}
}

// fakeStateReader serves a two-op catalog with one key; versions below
// 5 have been compacted away.
type fakeStateReader struct{}

func (fakeStateReader) LookupState(op, key string, version uint64) (any, bool, error) {
	if version != 0 && version < 5 {
		return nil, false, ErrStateCompacted
	}
	if op != "count" || key != "k1" {
		return nil, false, nil
	}
	return map[string]any{"op": op, "key": key, "version": 7}, true, nil
}

func (fakeStateReader) ScanState(op string, version uint64) (any, error) {
	if version != 0 && version < 5 {
		return nil, ErrStateCompacted
	}
	return map[string]any{"op": op, "keys": 1}, nil
}

func (fakeStateReader) StateOps() []string { return []string{"count", "top"} }

func TestHandlerState(t *testing.T) {
	_, c, handler := setupHTTP(t)

	// Without a reader every /state route is 404.
	for _, path := range []string{"/state", "/state/count", "/state/count/k1"} {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusNotFound {
			t.Fatalf("GET %s without reader = %d, want 404", path, rec.Code)
		}
	}

	c.SetStateReader(fakeStateReader{})

	var ops map[string][]string
	getJSON(t, handler, "/state", &ops)
	if len(ops["ops"]) != 2 || ops["ops"][0] != "count" {
		t.Fatalf("/state = %+v", ops)
	}

	var scan map[string]any
	getJSON(t, handler, "/state/count", &scan)
	if scan["op"] != "count" {
		t.Fatalf("/state/count = %+v", scan)
	}

	var key map[string]any
	getJSON(t, handler, "/state/count/k1?version=7", &key)
	if key["key"] != "k1" {
		t.Fatalf("/state/count/k1 = %+v", key)
	}

	// Unknown key at a live version: 404.
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/state/count/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /state/count/nope = %d, want 404", rec.Code)
	}

	// Malformed version: 400.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/state/count/k1?version=x", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("GET /state/count/k1?version=x = %d, want 400", rec.Code)
	}

	// Compacted-away version: 410 Gone, on lookups and scans alike.
	for _, path := range []string{"/state/count/k1?version=2", "/state/count?version=2"} {
		rec = httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusGone {
			t.Fatalf("GET %s = %d, want 410", path, rec.Code)
		}
	}

	// Writes stay rejected.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/state/count/k1", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /state/count/k1 = %d, want 405", rec.Code)
	}
}

func TestHandlerRejectsBadRequests(t *testing.T) {
	_, _, handler := setupHTTP(t)

	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/status", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /status = %d, want 405", rec.Code)
	}

	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/journal?n=bogus", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("GET /journal?n=bogus = %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/journal?n=-1", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("GET /journal?n=-1 = %d, want 400", rec.Code)
	}
}
