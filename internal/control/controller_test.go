package control

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/core"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/topology"
)

// harness is a real live engine plus manager under controller test: the
// paper's two-operator evaluation topology with correlated keys.
type harness struct {
	live  *engine.Live
	mgr   *core.Manager
	topo  *topology.Topology
	place *cluster.Placement
}

func newHarness(t *testing.T, parallelism int, store core.ConfigStore) *harness {
	t.Helper()
	topo, err := topology.NewBuilder("eval").
		AddOperator(topology.Operator{Name: "A", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(0) }}).
		AddOperator(topology.Operator{Name: "B", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(1) }}).
		Connect("A", "B", topology.Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	place, err := cluster.NewRoundRobin(topo, parallelism)
	if err != nil {
		t.Fatal(err)
	}
	policies, err := engine.NewPolicies(topo, place, engine.FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	src, err := engine.NewSourcePolicy(topo, place, topology.Fields, engine.FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	live, err := engine.NewLive(engine.LiveConfig{
		Topology:       topo,
		Placement:      place,
		Policies:       policies,
		SourcePolicy:   src,
		SourceKeyField: 0,
		SketchCapacity: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(live.Stop)
	mgr, err := core.NewManager(live, topo, place, core.ManagerOptions{
		Optimizer: core.OptimizerOptions{Seed: 11},
		Store:     store,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &harness{live: live, mgr: mgr, topo: topo, place: place}
}

// injectCorrelated streams n tuples whose second field is a fixed
// function of the first (shifted by rot), the perfectly correlated
// workload of §4.2, and drains them.
func (h *harness) injectCorrelated(t *testing.T, n, keys, rot int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := i % keys
		tag := fmt.Sprintf("t%d", (k+rot)%keys)
		if err := h.live.Inject(topology.Tuple{Values: []string{strconv.Itoa(k), tag}}); err != nil {
			t.Fatal(err)
		}
	}
	h.live.Drain()
}

func newTestController(t *testing.T, h *harness, opts Options) *Controller {
	t.Helper()
	if opts.Clock == nil {
		opts.Clock = NewManualClock(time.Unix(1700000000, 0))
	}
	c, err := New(h.live, h.mgr, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestControllerConvergesOnSkewedWorkload is the acceptance scenario: a
// skewed synthetic workload converges under the controller alone — no
// manual Reconfigure call anywhere — with window locality strictly
// improving and the journal holding both a deployed and a skipped
// decision with their signal values.
func TestControllerConvergesOnSkewedWorkload(t *testing.T) {
	h := newHarness(t, 4, nil)
	c := newTestController(t, h, Options{CostPerKey: 1, Confirm: 1, Cooldown: 0})

	const rounds = 4
	for round := 0; round < rounds; round++ {
		h.injectCorrelated(t, 3200, 16, 0)
		c.Tick()
	}

	snaps := c.Snapshots()
	if len(snaps) != rounds {
		t.Fatalf("snapshots = %d, want %d", len(snaps), rounds)
	}
	// Tick 1 measures the hash-routed phase; the deployment at its end
	// makes every later window fully local: strict improvement, then
	// monotone.
	if snaps[1].WindowLocality <= snaps[0].WindowLocality {
		t.Fatalf("locality did not strictly improve: %f then %f",
			snaps[0].WindowLocality, snaps[1].WindowLocality)
	}
	for i := 2; i < rounds; i++ {
		if snaps[i].WindowLocality < snaps[i-1].WindowLocality {
			t.Fatalf("locality regressed at tick %d: %f -> %f",
				i+1, snaps[i-1].WindowLocality, snaps[i].WindowLocality)
		}
	}
	if got := snaps[rounds-1].WindowLocality; got != 1.0 {
		t.Fatalf("final window locality = %f, want 1.0 (perfectly correlated keys)", got)
	}
	for _, s := range snaps {
		if s.WindowTraffic == 0 {
			t.Fatalf("snapshot %d saw no traffic", s.Seq)
		}
		if s.WireDrops != 0 {
			t.Fatalf("snapshot %d: wire drops %d", s.Seq, s.WireDrops)
		}
	}

	decisions := c.Journal().All()
	if len(decisions) != rounds {
		t.Fatalf("journal = %d decisions, want %d", len(decisions), rounds)
	}
	var deployed, skipped *Decision
	for i := range decisions {
		switch decisions[i].Action {
		case ActionDeployed:
			if deployed == nil {
				deployed = &decisions[i]
			}
		case ActionSkipped:
			if skipped == nil {
				skipped = &decisions[i]
			}
		}
	}
	if deployed == nil || skipped == nil {
		t.Fatalf("journal lacks a deployed and a skipped decision: %+v", decisions)
	}
	// Both kinds of decisions carry the signal values that drove them.
	if deployed.Signals.WindowTraffic == 0 || deployed.CandidateLocality != 1.0 {
		t.Fatalf("deployed decision lacks signals: %+v", deployed)
	}
	if deployed.KeysToMigrate == 0 {
		t.Fatalf("deployed decision migrated no keys: %+v", deployed)
	}
	if skipped.Signals.WindowTraffic == 0 {
		t.Fatalf("skipped decision lacks signals: %+v", skipped)
	}
	if skipped.Reason == "" || deployed.Reason == "" {
		t.Fatal("decisions lack reasons")
	}

	st := c.Status()
	if st.Deploys != 1 || st.Version == 0 {
		t.Fatalf("status = %+v, want exactly 1 deploy", st)
	}
	if st.SmoothedLocality <= snaps[0].WindowLocality {
		t.Fatalf("smoothed locality %f not pulled up toward 1.0", st.SmoothedLocality)
	}
}

// TestControllerConfirmationSuppressesTransientFlip: with Confirm = 2, a
// single statistics window showing a flipped correlation is never
// deployed — the flip reverts before a second confirming window arrives.
func TestControllerConfirmationSuppressesTransientFlip(t *testing.T) {
	h := newHarness(t, 3, nil)
	c := newTestController(t, h, Options{CostPerKey: 1, Confirm: 2, Cooldown: 0})

	// Two stable windows deploy the base configuration (streak 1, then
	// streak 2 = confirm).
	h.injectCorrelated(t, 1800, 9, 0)
	if d := c.Tick(); d.Action != ActionSkipped || d.Streak != 1 {
		t.Fatalf("tick 1 = %s (streak %d), want skipped awaiting confirmation", d.Action, d.Streak)
	}
	h.injectCorrelated(t, 1800, 9, 0)
	if d := c.Tick(); d.Action != ActionDeployed {
		t.Fatalf("tick 2 = %s (%s), want deployed", d.Action, d.Reason)
	}
	base := c.Status().Version

	// One transient window with the correlation flipped: worthwhile on
	// its own, but unconfirmed — must be suppressed.
	h.injectCorrelated(t, 1800, 9, 4)
	d := c.Tick()
	if d.Action != ActionSkipped || d.Streak != 1 {
		t.Fatalf("flip tick = %s (streak %d, %s), want skipped awaiting confirmation",
			d.Action, d.Streak, d.Reason)
	}
	if d.KeysToMigrate == 0 {
		t.Fatalf("flip candidate moved no keys — the flip was not observed: %+v", d)
	}

	// The workload reverts: the new candidate matches the deployed
	// tables, the streak resets, and the flip never deploys.
	h.injectCorrelated(t, 1800, 9, 0)
	d = c.Tick()
	if d.Action != ActionSkipped || d.Streak != 0 {
		t.Fatalf("revert tick = %s (streak %d, %s), want skipped with streak reset",
			d.Action, d.Streak, d.Reason)
	}
	if st := c.Status(); st.Deploys != 1 || st.Version != base {
		t.Fatalf("status after flip = %+v, want version %d and exactly 1 deploy", st, base)
	}
}

// TestControllerCooldownSuppressesReconfiguration: with a cooldown, the
// ticks right after a deployment never even compute a candidate, so a
// correlation flip inside the cooldown cannot trigger a migration.
func TestControllerCooldownSuppressesReconfiguration(t *testing.T) {
	h := newHarness(t, 3, nil)
	c := newTestController(t, h, Options{CostPerKey: 1, Confirm: 1, Cooldown: 2})

	h.injectCorrelated(t, 1800, 9, 0)
	if d := c.Tick(); d.Action != ActionDeployed {
		t.Fatalf("tick 1 = %s, want deployed", d.Action)
	}
	base := c.Status().Version

	// The correlation flips during the cooldown window.
	h.injectCorrelated(t, 1800, 9, 4)
	if d := c.Tick(); d.Action != ActionCooldown {
		t.Fatalf("tick 2 = %s, want cooldown", d.Action)
	}
	h.injectCorrelated(t, 1800, 9, 4)
	if d := c.Tick(); d.Action != ActionCooldown {
		t.Fatalf("tick 3 = %s, want cooldown", d.Action)
	}
	if st := c.Status(); st.Deploys != 1 || st.Version != base || st.Cooldowns != 2 {
		t.Fatalf("status during cooldown = %+v", st)
	}

	// After the cooldown the controller acts again.
	h.injectCorrelated(t, 1800, 9, 4)
	if d := c.Tick(); d.Action != ActionDeployed {
		t.Fatalf("tick 4 = %s, want deployed once cooldown expired", d.Action)
	}
}

// TestControllerRecoversFromFileStore: killing the controller (and its
// engine) and recreating both against the same FileStore restores the
// last deployed tables — the §3.4 fault-tolerance story, closed by the
// controller's constructor.
func TestControllerRecoversFromFileStore(t *testing.T) {
	dir := t.TempDir()

	// First life: converge and deploy, then die.
	h1 := newHarness(t, 4, &core.FileStore{Dir: dir})
	c1 := newTestController(t, h1, Options{CostPerKey: 1, Confirm: 1})
	h1.injectCorrelated(t, 3200, 16, 0)
	if d := c1.Tick(); d.Action != ActionDeployed {
		t.Fatalf("first life tick = %s, want deployed", d.Action)
	}
	want := c1.Tables()
	h1.live.Stop()

	// Second life: a fresh engine; the controller recovers at
	// construction, before any tick.
	h2 := newHarness(t, 4, &core.FileStore{Dir: dir})
	c2 := newTestController(t, h2, Options{CostPerKey: 1, Confirm: 1})

	st := c2.Status()
	if !st.Recovered || st.Version != 1 {
		t.Fatalf("status after recovery = %+v, want recovered v1", st)
	}
	journal := c2.Journal().All()
	if len(journal) != 1 || journal[0].Action != ActionRecovered {
		t.Fatalf("journal after recovery = %+v, want one recovered entry", journal)
	}
	got := c2.Tables()
	for op, table := range want {
		gt := got[op]
		if gt == nil || len(gt.Assign) != len(table.Assign) {
			t.Fatalf("recovered tables for %s = %v, want %v", op, gt, table)
		}
		for k, inst := range table.Assign {
			if gt.Assign[k] != inst {
				t.Fatalf("recovered %s[%q] = %d, want %d", op, k, gt.Assign[k], inst)
			}
		}
	}

	// The recovered configuration is live: the workload is fully local
	// with no tick and no reconfiguration.
	h2.injectCorrelated(t, 3200, 16, 0)
	if loc := h2.live.FieldsTraffic().Locality(); loc != 1.0 {
		t.Fatalf("locality after recovery = %f, want 1.0", loc)
	}
}

// TestControllerStartStopManualClock drives the background loop with an
// injected clock: one Advance delivers exactly one tick, and Stop joins
// the loop deterministically — no sleeps.
func TestControllerStartStopManualClock(t *testing.T) {
	h := newHarness(t, 2, nil)
	clock := NewManualClock(time.Unix(1700000000, 0))
	c := newTestController(t, h, Options{Confirm: 1, Clock: clock, Period: time.Second})

	h.injectCorrelated(t, 400, 4, 0)
	c.Start()
	c.Start() // idempotent
	clock.Advance(time.Second)
	c.Stop()
	c.Stop() // idempotent

	if got := c.Journal().Total(); got != 1 {
		t.Fatalf("decisions after one advance = %d, want 1", got)
	}
	if st := c.Status(); st.Running {
		t.Fatal("still running after Stop")
	}
	// The loop is restartable.
	c.Start()
	clock.Advance(time.Second)
	c.Stop()
	if got := c.Journal().Total(); got != 2 {
		t.Fatalf("decisions after restart = %d, want 2", got)
	}
}

// TestControllerTickOnStoppedEngine: a tick against a dead engine records
// a skip or error but never blocks or panics.
func TestControllerTickOnStoppedEngine(t *testing.T) {
	h := newHarness(t, 2, nil)
	c := newTestController(t, h, Options{Confirm: 1})
	h.injectCorrelated(t, 400, 4, 0)
	h.live.Stop()
	d := c.Tick()
	if d.Action == ActionDeployed {
		t.Fatalf("deployed on a stopped engine: %+v", d)
	}
}

func TestControllerValidation(t *testing.T) {
	h := newHarness(t, 2, nil)
	if _, err := New(nil, h.mgr, Options{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(h.live, nil, Options{}); err == nil {
		t.Error("nil manager accepted")
	}
}

func TestControllerMinGainGate(t *testing.T) {
	h := newHarness(t, 3, nil)
	// An impossible gain floor: nothing ever deploys, every decision is
	// a skip naming the gate.
	c := newTestController(t, h, Options{CostPerKey: 0.001, MinGain: 2, Confirm: 1})
	h.injectCorrelated(t, 1800, 9, 0)
	d := c.Tick()
	if d.Action != ActionSkipped || d.Streak != 0 {
		t.Fatalf("decision = %s (streak %d), want skipped by min-gain", d.Action, d.Streak)
	}
	if st := c.Status(); st.Deploys != 0 {
		t.Fatalf("deploys = %d, want 0", st.Deploys)
	}
}
