package control

import (
	"time"

	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/metrics"
)

// Snapshot is one controller tick's view of the engine: the raw window
// deltas since the previous tick plus the EWMA-smoothed series the
// decision rules consume. Snapshots are kept in a bounded ring and served
// by the introspection handler.
type Snapshot struct {
	// Seq is the tick number, starting at 1.
	Seq int `json:"seq"`
	// Time is the clock reading at collection.
	Time time.Time `json:"time"`

	// WindowTraffic is the number of fields-grouped transfers observed
	// since the previous tick.
	WindowTraffic uint64 `json:"window_traffic"`
	// WindowLocality is the fraction of those transfers that stayed on
	// one server (0 when the window saw no traffic).
	WindowLocality float64 `json:"window_locality"`
	// WindowRackLocality additionally counts transfers that stayed
	// inside one rack.
	WindowRackLocality float64 `json:"window_rack_locality"`
	// WindowClusterLocality additionally counts transfers that stayed
	// inside one cluster; 1 − it is the fraction that paid the
	// inter-cluster link.
	WindowClusterLocality float64 `json:"window_cluster_locality"`
	// WindowInterClusterTuples is the number of the window's transfers
	// that crossed clusters — the raw quantity the federation layer's
	// 100× cost gate prices.
	WindowInterClusterTuples uint64 `json:"window_inter_cluster_tuples"`
	// SmoothedLocality is the EWMA of WindowLocality over non-empty
	// windows.
	SmoothedLocality float64 `json:"smoothed_locality"`

	// MaxImbalance is the worst per-operator load imbalance
	// (max/avg tuples processed per instance) over the window.
	MaxImbalance float64 `json:"max_imbalance"`
	// SmoothedImbalance is the EWMA of MaxImbalance.
	SmoothedImbalance float64 `json:"smoothed_imbalance"`

	// InFlight is the injected-but-unprocessed tuple count at collection
	// time.
	InFlight int64 `json:"in_flight"`
	// WireDrops is the cumulative count of undeliverable transport
	// messages; a healthy deployment keeps it at 0.
	WireDrops uint64 `json:"wire_drops"`

	// WireCompressionRatio, WireDictHitRate and WireBytesPerTuple
	// summarize the transport's dictionary/LZ compression (cumulative;
	// zero without a TCP fabric). The ratio is raw-equivalent over
	// on-wire bytes — the factor by which compression shrank the
	// cross-server traffic the optimizer is trying to avoid.
	WireCompressionRatio float64 `json:"wire_compression_ratio"`
	WireDictHitRate      float64 `json:"wire_dict_hit_rate"`
	WireBytesPerTuple    float64 `json:"wire_bytes_per_tuple"`

	// Loads is the cumulative per-instance tuple count per operator.
	Loads map[string][]uint64 `json:"loads"`
}

// signals turns raw engine stats into windowed, smoothed snapshots. Not
// safe for concurrent use; the controller serializes access.
type signals struct {
	prev    engine.Stats
	havePrv bool
	seq     int

	locEWMA metrics.EWMA
	imbEWMA metrics.EWMA
}

func newSignals(alpha float64) *signals {
	return &signals{
		locEWMA: metrics.EWMA{Alpha: alpha},
		imbEWMA: metrics.EWMA{Alpha: alpha},
	}
}

// collect reads one engine snapshot and derives the window view since the
// previous call.
func (s *signals) collect(st engine.Stats, now time.Time) Snapshot {
	s.seq++
	snap := Snapshot{
		Seq:       s.seq,
		Time:      now,
		InFlight:  st.InFlight,
		WireDrops: st.WireDrops,
		Loads:     st.Loads,

		WireCompressionRatio: st.Wire.CompressionRatio(),
		WireDictHitRate:      st.Wire.DictHitRate(),
		WireBytesPerTuple:    st.Wire.WireBytesPerTuple(),
	}

	window := st.Fields
	if s.havePrv {
		window = subTraffic(st.Fields, s.prev.Fields)
	}
	snap.WindowTraffic = window.Total()
	snap.WindowInterClusterTuples = window.InterClusterTuples()
	if snap.WindowTraffic > 0 {
		snap.WindowLocality = window.Locality()
		snap.WindowRackLocality = window.RackLocality()
		snap.WindowClusterLocality = window.ClusterLocality()
		snap.SmoothedLocality = s.locEWMA.Observe(snap.WindowLocality)
	} else {
		// An idle window carries no locality information; hold the
		// average instead of dragging it toward zero.
		snap.SmoothedLocality = s.locEWMA.Value()
	}

	snap.MaxImbalance = 1
	for op, loads := range st.Loads {
		win := loads
		if s.havePrv {
			win = subLoads(loads, s.prev.Loads[op])
		}
		if im := metrics.Imbalance(win); im > snap.MaxImbalance {
			snap.MaxImbalance = im
		}
	}
	snap.SmoothedImbalance = s.imbEWMA.Observe(snap.MaxImbalance)

	s.prev = st
	s.havePrv = true
	return snap
}

// subTraffic returns cur - prev per counter (the per-window view of the
// engine's cumulative accumulators).
func subTraffic(cur, prev metrics.Traffic) metrics.Traffic {
	return metrics.Traffic{
		LocalTuples:   cur.LocalTuples - prev.LocalTuples,
		RemoteTuples:  cur.RemoteTuples - prev.RemoteTuples,
		LocalBytes:    cur.LocalBytes - prev.LocalBytes,
		RemoteBytes:   cur.RemoteBytes - prev.RemoteBytes,
		RackTuples:    cur.RackTuples - prev.RackTuples,
		RackBytes:     cur.RackBytes - prev.RackBytes,
		ClusterTuples: cur.ClusterTuples - prev.ClusterTuples,
		ClusterBytes:  cur.ClusterBytes - prev.ClusterBytes,
	}
}

func subLoads(cur, prev []uint64) []uint64 {
	out := make([]uint64, len(cur))
	for i := range cur {
		out[i] = cur[i]
		if i < len(prev) && prev[i] <= cur[i] {
			out[i] = cur[i] - prev[i]
		}
	}
	return out
}

// snapRing is a bounded ring of snapshots, oldest first.
type snapRing struct {
	buf   []Snapshot
	start int
	n     int
}

func newSnapRing(capacity int) *snapRing {
	if capacity < 1 {
		capacity = 1
	}
	return &snapRing{buf: make([]Snapshot, capacity)}
}

func (r *snapRing) push(s Snapshot) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = s
		r.n++
		return
	}
	r.buf[r.start] = s
	r.start = (r.start + 1) % len(r.buf)
}

// all returns the retained snapshots, oldest first.
func (r *snapRing) all() []Snapshot {
	out := make([]Snapshot, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

func (r *snapRing) last() (Snapshot, bool) {
	if r.n == 0 {
		return Snapshot{}, false
	}
	return r.buf[(r.start+r.n-1)%len(r.buf)], true
}
